/// \file adc_scenario.cpp
/// CLI front-end of the scenario engine (src/scenario/).
///
///   adc_scenario run <spec.json>... [--cache-dir D] [--report-dir D]
///                                   [--threads N] [--max-jobs N]
///                                   [--no-cache] [--min-hit-rate F]
///   adc_scenario validate <spec.json>...
///   adc_scenario hash <spec.json>
///   adc_scenario cache stats [--cache-dir D] [--format=text|json]
///   adc_scenario cache clear [--cache-dir D] [--stale [--lease-ms N]]
///   adc_scenario client submit <spec.json> --socket S [--report-dir D] ...
///   adc_scenario client status|shutdown --socket S
///
/// The `client` command talks to a running adc_scenariod over its Unix
/// socket (docs/SERVICE.md); `client submit` streams cell events and writes
/// the same report files as `run` — byte-identical for the same spec.
///
/// Exit status: 0 on success, 1 on any validation/run failure (including an
/// unmet --min-hit-rate), 2 on usage errors.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "scenario/cache.hpp"
#include "scenario/hash.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "service/protocol.hpp"
#include "service/socket.hpp"

namespace {

namespace json = adc::common::json;
using namespace adc::scenario;

void print_usage() {
  std::printf(
      "usage: adc_scenario <command> ...\n"
      "  run <spec.json>...       expand, execute (cache-aware) and report\n"
      "      --cache-dir D        cache root (default: ADC_SCENARIO_CACHE_DIR or .adc-cache)\n"
      "      --report-dir D       write <name>_report.{json,csv} into D\n"
      "      --threads N          worker threads (default: runtime resolution)\n"
      "      --max-jobs N         compute at most N cache misses (interruption budget)\n"
      "      --no-cache           force recomputation; nothing read or stored\n"
      "      --min-hit-rate F     fail (exit 1) when cache hits / jobs < F\n"
      "      --print-metrics      print per-job metric rows\n"
      "  validate <spec.json>...  parse + validate only\n"
      "  hash <spec.json>         print the spec hash and every job hash\n"
      "  cache stats|clear [--cache-dir D]\n"
      "      --format=text|json   stats output format (default text)\n"
      "      --stale              clear: remove only orphaned .tmp files and\n"
      "                           claims staler than --lease-ms (default 10000)\n"
      "  client submit <spec.json> --socket S\n"
      "      --report-dir D       write <name>_report.{json,csv} into D\n"
      "      --max-jobs N         server computes at most N cache misses\n"
      "      --min-hit-rate F     fail (exit 1) when cache hits / jobs < F\n"
      "      --cancel-after N     send cancel after N streamed cells\n"
      "      --id ID              request id (default: the scenario name)\n"
      "      --print-events       echo every raw server event line\n"
      "  client status --socket S    print the server status document\n"
      "  client shutdown --socket S  ask the server to stop\n");
}

struct CliError {
  int exit_code;
};

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "adc_scenario: %s\n", message.c_str());
  print_usage();
  throw CliError{2};
}

std::string take_value(const std::vector<std::string>& args, std::size_t& i) {
  if (i + 1 >= args.size()) usage_error("missing value for " + args[i]);
  return args[++i];
}

int run_command(const std::vector<std::string>& args) {
  RunOptions options;
  double min_hit_rate = -1.0;
  bool print_metrics = false;
  std::vector<std::string> spec_paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--cache-dir") {
      options.cache_dir = take_value(args, i);
    } else if (arg == "--report-dir") {
      options.report_dir = take_value(args, i);
    } else if (arg == "--threads") {
      options.threads = static_cast<unsigned>(std::strtoul(take_value(args, i).c_str(),
                                                           nullptr, 10));
    } else if (arg == "--max-jobs") {
      options.max_jobs = std::strtoull(take_value(args, i).c_str(), nullptr, 10);
    } else if (arg == "--no-cache") {
      options.use_cache = false;
    } else if (arg == "--min-hit-rate") {
      min_hit_rate = std::strtod(take_value(args, i).c_str(), nullptr);
    } else if (arg == "--print-metrics") {
      print_metrics = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error("unknown option " + arg);
    } else {
      spec_paths.push_back(arg);
    }
  }
  if (spec_paths.empty()) usage_error("run: no spec files given");

  ScenarioRunner runner(options);
  bool ok = true;
  for (const auto& path : spec_paths) {
    const auto spec = load_spec_file(path);
    const auto result = runner.run(spec);
    const double hit_rate =
        result.jobs_total == 0
            ? 1.0
            : static_cast<double>(result.cache_hits) / static_cast<double>(result.jobs_total);
    std::printf("scenario %s: %zu jobs, %zu cache hits (%.1f%%), %zu computed, %zu skipped\n",
                spec.name.c_str(), result.jobs_total, result.cache_hits, 100.0 * hit_rate,
                result.computed, result.skipped);
    if (!result.report_json_path.empty()) {
      std::printf("  report: %s\n", result.report_json_path.c_str());
    }
    if (result.manifest_path.has_value()) {
      std::printf("  manifest: %s\n", result.manifest_path->c_str());
    }
    if (const auto* summary = result.report.find("summary")) {
      std::printf("  summary: %s\n", json::dump_compact(*summary).c_str());
    }
    if (print_metrics || result.jobs_total == 1) {
      for (const auto& row : result.report.find("results")->items()) {
        const auto* metrics = row.find("metrics");
        std::printf("  seed %llu point %s -> %s\n",
                    static_cast<unsigned long long>(row.find("seed")->as_uint64()),
                    json::dump_compact(*row.find("point")).c_str(),
                    metrics->is_null() ? "(not computed)"
                                       : json::dump_compact(*metrics).c_str());
      }
    }
    if (min_hit_rate >= 0.0 && hit_rate < min_hit_rate) {
      std::fprintf(stderr, "adc_scenario: %s hit rate %.3f below required %.3f\n",
                   spec.name.c_str(), hit_rate, min_hit_rate);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

int validate_command(const std::vector<std::string>& args) {
  if (args.empty()) usage_error("validate: no spec files given");
  int failures = 0;
  for (const auto& path : args) {
    try {
      const auto spec = load_spec_file(path);
      const auto jobs = expand_jobs(spec);
      std::printf("%s: OK (name=%s, measurement=%s, %zu jobs)\n", path.c_str(),
                  spec.name.c_str(), std::string(to_string(spec.measurement.type)).c_str(),
                  jobs.size());
    } catch (const adc::common::AdcError& e) {
      std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(), e.what());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int hash_command(const std::vector<std::string>& args) {
  if (args.size() != 1) usage_error("hash: expected exactly one spec file");
  const auto spec = load_spec_file(args[0]);
  const auto jobs = expand_jobs(spec);
  std::printf("spec_hash   %s\n", spec_hash(spec).c_str());
  std::printf("fingerprint %s\n", to_hex(golden_code_fingerprint()).c_str());
  std::printf("jobs        %zu\n", jobs.size());
  constexpr std::size_t kMaxPrinted = 32;
  for (std::size_t i = 0; i < jobs.size() && i < kMaxPrinted; ++i) {
    const auto resolved = resolve_job(spec, jobs[i]);
    std::printf("  %s  %s\n", job_hash(resolved).c_str(),
                json::canonical(job_document(resolved)).c_str());
  }
  if (jobs.size() > kMaxPrinted) {
    std::printf("  ... %zu more\n", jobs.size() - kMaxPrinted);
  }
  return 0;
}

int cache_command(const std::vector<std::string>& args) {
  if (args.empty()) usage_error("cache: expected stats or clear");
  std::string root;
  std::string format = "text";
  bool stale_only = false;
  std::uint64_t lease_ms = 10000;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--cache-dir") {
      std::size_t j = i;
      root = take_value(args, j);
      ++i;
    } else if (args[i] == "--format") {
      std::size_t j = i;
      format = take_value(args, j);
      ++i;
    } else if (args[i].rfind("--format=", 0) == 0) {
      format = args[i].substr(std::string("--format=").size());
    } else if (args[i] == "--stale") {
      stale_only = true;
    } else if (args[i] == "--lease-ms") {
      std::size_t j = i;
      lease_ms = std::strtoull(take_value(args, j).c_str(), nullptr, 10);
      ++i;
    } else {
      usage_error("unknown option " + args[i]);
    }
  }
  if (format != "text" && format != "json") {
    usage_error("cache: --format must be text or json, got \"" + format + "\"");
  }
  ResultCache cache(root);
  if (args[0] == "stats") {
    if (format == "json") {
      std::printf("%s", json::dump(cache.stats_document()).c_str());
      return 0;
    }
    const auto stats = cache.stats();
    std::printf("cache_dir %s\nentries %llu\nbytes %llu\n", cache.root().c_str(),
                static_cast<unsigned long long>(stats.entries),
                static_cast<unsigned long long>(stats.bytes));
    if (stats.tmp_files != 0 || stats.claim_files != 0) {
      std::printf("tmp_files %llu (orphaned store temporaries)\n"
                  "claim_files %llu (fleet claims; stale ones are litter)\n",
                  static_cast<unsigned long long>(stats.tmp_files),
                  static_cast<unsigned long long>(stats.claim_files));
      std::printf("hint: `adc_scenario cache clear --stale` reclaims orphans\n");
    }
    return 0;
  }
  if (args[0] == "clear") {
    if (stale_only) {
      const auto now = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count());
      const auto sweep = cache.clear_stale(now, lease_ms);
      std::printf("removed %llu orphaned tmp files and %llu stale claims from %s\n",
                  static_cast<unsigned long long>(sweep.tmp_removed),
                  static_cast<unsigned long long>(sweep.claims_removed),
                  cache.root().c_str());
      return 0;
    }
    const auto removed = cache.clear();
    std::printf("cleared %llu entries from %s\n",
                static_cast<unsigned long long>(removed), cache.root().c_str());
    return 0;
  }
  usage_error("cache: unknown subcommand " + args[0]);
}

// ---------------------------------------------------------------------------
// `client` — talk to a running adc_scenariod (docs/SERVICE.md).

namespace service = adc::service;

/// Read server events until one of type `wanted` arrives; error events are
/// fatal (printed, CliError{1}). A closed connection is fatal too.
json::JsonValue await_event(service::UnixStream& stream, const std::string& wanted) {
  std::string line;
  for (;;) {
    const auto status = stream.read_line(line, -1);
    if (status != service::UnixStream::ReadStatus::kLine) {
      std::fprintf(stderr, "adc_scenario: server closed the connection\n");
      throw CliError{1};
    }
    const auto event = json::parse(line);
    const std::string type = service::event_type(event);
    if (type == wanted) return event;
    if (type == "error") {
      std::fprintf(stderr, "adc_scenario: server error [%s]: %s\n",
                   event.find("code")->as_string().c_str(),
                   event.find("message")->as_string().c_str());
      throw CliError{1};
    }
  }
}

void write_report_files(const std::string& report_dir, const std::string& name,
                        const json::JsonValue& report) {
  std::error_code ec;
  std::filesystem::create_directories(report_dir, ec);
  if (ec) {
    std::fprintf(stderr, "adc_scenario: cannot create %s\n", report_dir.c_str());
    throw CliError{1};
  }
  const auto write = [](const std::string& path, const std::string& text) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
    if (!out) {
      std::fprintf(stderr, "adc_scenario: cannot write %s\n", path.c_str());
      throw CliError{1};
    }
  };
  const std::string json_path = report_dir + "/" + name + "_report.json";
  write(json_path, json::dump(report));
  write(report_dir + "/" + name + "_report.csv", report_csv(report));
  std::printf("  report: %s\n", json_path.c_str());
}

int client_submit(const std::vector<std::string>& args) {
  std::string spec_path;
  std::string socket_path;
  std::string report_dir;
  std::string request_id;
  std::uint64_t max_jobs = 0;
  std::uint64_t cancel_after = 0;
  bool cancel_requested = false;
  double min_hit_rate = -1.0;
  bool print_events = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--socket") {
      socket_path = take_value(args, i);
    } else if (arg == "--report-dir") {
      report_dir = take_value(args, i);
    } else if (arg == "--id") {
      request_id = take_value(args, i);
    } else if (arg == "--max-jobs") {
      max_jobs = std::strtoull(take_value(args, i).c_str(), nullptr, 10);
    } else if (arg == "--cancel-after") {
      cancel_after = std::strtoull(take_value(args, i).c_str(), nullptr, 10);
      cancel_requested = true;
    } else if (arg == "--min-hit-rate") {
      min_hit_rate = std::strtod(take_value(args, i).c_str(), nullptr);
    } else if (arg == "--print-events") {
      print_events = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error("unknown option " + arg);
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      usage_error("client submit: expected exactly one spec file");
    }
  }
  if (spec_path.empty()) usage_error("client submit: no spec file given");
  if (socket_path.empty()) usage_error("client submit: --socket is required");

  // Validate locally first: a bad spec fails fast with the full parser
  // diagnostics instead of a one-line protocol error.
  std::ifstream in(spec_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "adc_scenario: cannot read %s\n", spec_path.c_str());
    return 1;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const auto doc = json::parse(text);
  const auto spec = parse_spec(doc);
  if (request_id.empty()) request_id = spec.name;

  auto stream = service::UnixStream::connect(socket_path);
  (void)await_event(stream, "hello");

  auto request = json::JsonValue::object();
  request.set("type", "run");
  request.set("id", request_id);
  request.set("spec", doc);
  if (max_jobs != 0) {
    auto options = json::JsonValue::object();
    options.set("max_jobs", max_jobs);
    request.set("options", std::move(options));
  }
  if (!stream.write_line(json::dump_compact(request))) {
    std::fprintf(stderr, "adc_scenario: cannot reach server at %s\n",
                 socket_path.c_str());
    return 1;
  }

  std::uint64_t cells_seen = 0;
  bool cancel_sent = false;
  std::string line;
  for (;;) {
    const auto status = stream.read_line(line, -1);
    if (status != service::UnixStream::ReadStatus::kLine) {
      std::fprintf(stderr, "adc_scenario: server closed the connection\n");
      return 1;
    }
    const auto event = json::parse(line);
    const std::string type = service::event_type(event);
    if (print_events) std::printf("%s\n", line.c_str());
    if (type == "cell") {
      ++cells_seen;
      if (cancel_requested && !cancel_sent && cells_seen >= cancel_after) {
        auto cancel = json::JsonValue::object();
        cancel.set("type", "cancel");
        cancel.set("id", request_id);
        (void)stream.write_line(json::dump_compact(cancel));
        cancel_sent = true;
      }
      continue;
    }
    if (type == "cancelled") {
      std::printf("scenario %s: cancelled after %llu delivered cells\n",
                  spec.name.c_str(),
                  static_cast<unsigned long long>(
                      event.find("delivered")->as_uint64()));
      return 0;
    }
    if (type == "error") {
      std::fprintf(stderr, "adc_scenario: server error [%s]: %s\n",
                   event.find("code")->as_string().c_str(),
                   event.find("message")->as_string().c_str());
      return 1;
    }
    if (type != "summary") continue;  // accepted / unknown future events

    const std::uint64_t jobs = event.find("jobs")->as_uint64();
    const std::uint64_t hits = event.find("cache_hits")->as_uint64();
    const std::uint64_t deduped = event.find("deduped")->as_uint64();
    const std::uint64_t computed = event.find("computed")->as_uint64();
    const std::uint64_t skipped = event.find("skipped")->as_uint64();
    const double hit_rate =
        jobs == 0 ? 1.0 : static_cast<double>(hits) / static_cast<double>(jobs);
    std::printf(
        "scenario %s: %llu jobs, %llu cache hits (%.1f%%), %llu deduped, "
        "%llu computed, %llu skipped\n",
        spec.name.c_str(), static_cast<unsigned long long>(jobs),
        static_cast<unsigned long long>(hits), 100.0 * hit_rate,
        static_cast<unsigned long long>(deduped),
        static_cast<unsigned long long>(computed),
        static_cast<unsigned long long>(skipped));
    if (!report_dir.empty()) {
      write_report_files(report_dir, spec.name, *event.find("report"));
    }
    if (min_hit_rate >= 0.0 && hit_rate < min_hit_rate) {
      std::fprintf(stderr, "adc_scenario: %s hit rate %.3f below required %.3f\n",
                   spec.name.c_str(), hit_rate, min_hit_rate);
      return 1;
    }
    return 0;
  }
}

int client_command(const std::vector<std::string>& args) {
  if (args.empty()) usage_error("client: expected submit, status, or shutdown");
  const std::string sub = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  if (sub == "submit") return client_submit(rest);
  if (sub != "status" && sub != "shutdown") {
    usage_error("client: unknown subcommand " + sub);
  }

  std::string socket_path;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] == "--socket") {
      socket_path = take_value(rest, i);
    } else {
      usage_error("unknown option " + rest[i]);
    }
  }
  if (socket_path.empty()) usage_error("client " + sub + ": --socket is required");

  auto stream = service::UnixStream::connect(socket_path);
  (void)await_event(stream, "hello");
  auto request = json::JsonValue::object();
  request.set("type", sub);
  if (!stream.write_line(json::dump_compact(request))) {
    std::fprintf(stderr, "adc_scenario: cannot reach server at %s\n",
                 socket_path.c_str());
    return 1;
  }
  if (sub == "status") {
    std::printf("%s", json::dump(await_event(stream, "status")).c_str());
  } else {
    (void)await_event(stream, "bye");
    std::printf("server at %s is shutting down\n", socket_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty()) usage_error("no command given");
    const std::string command = args[0];
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (command == "run") return run_command(rest);
    if (command == "validate") return validate_command(rest);
    if (command == "hash") return hash_command(rest);
    if (command == "cache") return cache_command(rest);
    if (command == "client") return client_command(rest);
    if (command == "--help" || command == "help") {
      print_usage();
      return 0;
    }
    usage_error("unknown command " + command);
  } catch (const CliError& e) {
    return e.exit_code;
  } catch (const adc::common::AdcError& e) {
    std::fprintf(stderr, "adc_scenario: %s\n", e.what());
    return 1;
  }
}
