/// \file adc_scenario.cpp
/// CLI front-end of the scenario engine (src/scenario/).
///
///   adc_scenario run <spec.json>... [--cache-dir D] [--report-dir D]
///                                   [--threads N] [--max-jobs N]
///                                   [--no-cache] [--min-hit-rate F]
///   adc_scenario validate <spec.json>...
///   adc_scenario hash <spec.json>
///   adc_scenario cache stats [--cache-dir D]
///   adc_scenario cache clear [--cache-dir D]
///
/// Exit status: 0 on success, 1 on any validation/run failure (including an
/// unmet --min-hit-rate), 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "scenario/cache.hpp"
#include "scenario/hash.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace {

namespace json = adc::common::json;
using namespace adc::scenario;

void print_usage() {
  std::printf(
      "usage: adc_scenario <command> ...\n"
      "  run <spec.json>...       expand, execute (cache-aware) and report\n"
      "      --cache-dir D        cache root (default: ADC_SCENARIO_CACHE_DIR or .adc-cache)\n"
      "      --report-dir D       write <name>_report.{json,csv} into D\n"
      "      --threads N          worker threads (default: runtime resolution)\n"
      "      --max-jobs N         compute at most N cache misses (interruption budget)\n"
      "      --no-cache           force recomputation; nothing read or stored\n"
      "      --min-hit-rate F     fail (exit 1) when cache hits / jobs < F\n"
      "      --print-metrics      print per-job metric rows\n"
      "  validate <spec.json>...  parse + validate only\n"
      "  hash <spec.json>         print the spec hash and every job hash\n"
      "  cache stats|clear [--cache-dir D]\n");
}

struct CliError {
  int exit_code;
};

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "adc_scenario: %s\n", message.c_str());
  print_usage();
  throw CliError{2};
}

std::string take_value(const std::vector<std::string>& args, std::size_t& i) {
  if (i + 1 >= args.size()) usage_error("missing value for " + args[i]);
  return args[++i];
}

int run_command(const std::vector<std::string>& args) {
  RunOptions options;
  double min_hit_rate = -1.0;
  bool print_metrics = false;
  std::vector<std::string> spec_paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--cache-dir") {
      options.cache_dir = take_value(args, i);
    } else if (arg == "--report-dir") {
      options.report_dir = take_value(args, i);
    } else if (arg == "--threads") {
      options.threads = static_cast<unsigned>(std::strtoul(take_value(args, i).c_str(),
                                                           nullptr, 10));
    } else if (arg == "--max-jobs") {
      options.max_jobs = std::strtoull(take_value(args, i).c_str(), nullptr, 10);
    } else if (arg == "--no-cache") {
      options.use_cache = false;
    } else if (arg == "--min-hit-rate") {
      min_hit_rate = std::strtod(take_value(args, i).c_str(), nullptr);
    } else if (arg == "--print-metrics") {
      print_metrics = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error("unknown option " + arg);
    } else {
      spec_paths.push_back(arg);
    }
  }
  if (spec_paths.empty()) usage_error("run: no spec files given");

  ScenarioRunner runner(options);
  bool ok = true;
  for (const auto& path : spec_paths) {
    const auto spec = load_spec_file(path);
    const auto result = runner.run(spec);
    const double hit_rate =
        result.jobs_total == 0
            ? 1.0
            : static_cast<double>(result.cache_hits) / static_cast<double>(result.jobs_total);
    std::printf("scenario %s: %zu jobs, %zu cache hits (%.1f%%), %zu computed, %zu skipped\n",
                spec.name.c_str(), result.jobs_total, result.cache_hits, 100.0 * hit_rate,
                result.computed, result.skipped);
    if (!result.report_json_path.empty()) {
      std::printf("  report: %s\n", result.report_json_path.c_str());
    }
    if (result.manifest_path.has_value()) {
      std::printf("  manifest: %s\n", result.manifest_path->c_str());
    }
    if (const auto* summary = result.report.find("summary")) {
      std::printf("  summary: %s\n", json::dump_compact(*summary).c_str());
    }
    if (print_metrics || result.jobs_total == 1) {
      for (const auto& row : result.report.find("results")->items()) {
        const auto* metrics = row.find("metrics");
        std::printf("  seed %llu point %s -> %s\n",
                    static_cast<unsigned long long>(row.find("seed")->as_uint64()),
                    json::dump_compact(*row.find("point")).c_str(),
                    metrics->is_null() ? "(not computed)"
                                       : json::dump_compact(*metrics).c_str());
      }
    }
    if (min_hit_rate >= 0.0 && hit_rate < min_hit_rate) {
      std::fprintf(stderr, "adc_scenario: %s hit rate %.3f below required %.3f\n",
                   spec.name.c_str(), hit_rate, min_hit_rate);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

int validate_command(const std::vector<std::string>& args) {
  if (args.empty()) usage_error("validate: no spec files given");
  int failures = 0;
  for (const auto& path : args) {
    try {
      const auto spec = load_spec_file(path);
      const auto jobs = expand_jobs(spec);
      std::printf("%s: OK (name=%s, measurement=%s, %zu jobs)\n", path.c_str(),
                  spec.name.c_str(), std::string(to_string(spec.measurement.type)).c_str(),
                  jobs.size());
    } catch (const adc::common::AdcError& e) {
      std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(), e.what());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int hash_command(const std::vector<std::string>& args) {
  if (args.size() != 1) usage_error("hash: expected exactly one spec file");
  const auto spec = load_spec_file(args[0]);
  const auto jobs = expand_jobs(spec);
  std::printf("spec_hash   %s\n", spec_hash(spec).c_str());
  std::printf("fingerprint %s\n", to_hex(golden_code_fingerprint()).c_str());
  std::printf("jobs        %zu\n", jobs.size());
  constexpr std::size_t kMaxPrinted = 32;
  for (std::size_t i = 0; i < jobs.size() && i < kMaxPrinted; ++i) {
    const auto resolved = resolve_job(spec, jobs[i]);
    std::printf("  %s  %s\n", job_hash(resolved).c_str(),
                json::canonical(job_document(resolved)).c_str());
  }
  if (jobs.size() > kMaxPrinted) {
    std::printf("  ... %zu more\n", jobs.size() - kMaxPrinted);
  }
  return 0;
}

int cache_command(const std::vector<std::string>& args) {
  if (args.empty()) usage_error("cache: expected stats or clear");
  std::string root;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--cache-dir") {
      std::size_t j = i;
      root = take_value(args, j);
      ++i;
    } else {
      usage_error("unknown option " + args[i]);
    }
  }
  ResultCache cache(root);
  if (args[0] == "stats") {
    const auto stats = cache.stats();
    std::printf("cache_dir %s\nentries %llu\nbytes %llu\n", cache.root().c_str(),
                static_cast<unsigned long long>(stats.entries),
                static_cast<unsigned long long>(stats.bytes));
    return 0;
  }
  if (args[0] == "clear") {
    const auto removed = cache.clear();
    std::printf("cleared %llu entries from %s\n",
                static_cast<unsigned long long>(removed), cache.root().c_str());
    return 0;
  }
  usage_error("cache: unknown subcommand " + args[0]);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty()) usage_error("no command given");
    const std::string command = args[0];
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (command == "run") return run_command(rest);
    if (command == "validate") return validate_command(rest);
    if (command == "hash") return hash_command(rest);
    if (command == "cache") return cache_command(rest);
    if (command == "--help" || command == "help") {
      print_usage();
      return 0;
    }
    usage_error("unknown command " + command);
  } catch (const CliError& e) {
    return e.exit_code;
  } catch (const adc::common::AdcError& e) {
    std::fprintf(stderr, "adc_scenario: %s\n", e.what());
    return 1;
  }
}
