#!/usr/bin/env bash
# Run the google-benchmark perf suite and write a machine-readable JSON
# result (BENCH_runtime.json by default) — the repo's performance trajectory
# artifact, uploaded by CI on every push.
#
# Usage: tools/run_bench.sh [output.json]
#   BUILD_DIR           build tree to use (default: build)
#   ADC_RUNTIME_THREADS worker-thread override for the parallel benchmarks
#   ADC_BENCH_FILTER    --benchmark_filter regex (default: all benchmarks)
#   ADC_BENCH_ALLOW_NONRELEASE=1  run anyway on a non-Release build tree
#                       (the JSON then carries build_type=<type> in its
#                       context block so the numbers cannot be mistaken for
#                       a trajectory point)
#   ADC_BENCH_ALLOW_CPU_SCALING=1  accept results recorded with CPU
#                       frequency scaling enabled (laptop/dev boxes); the
#                       post-run verification fails otherwise
#
# After the run the emitted JSON context is verified — not just the build
# tree that was *asked for*, but what the binary *reported about itself*:
# simulator_build_type must be "release" (an NDEBUG-derived custom context;
# Debian's libbenchmark always self-reports library_build_type "debug"
# regardless of how this repo was compiled, so the stock field cannot be
# trusted), cpu_scaling_enabled must be false, and the batch_isa context
# must be present. A mismatch exits non-zero so a poisoned trajectory
# artifact can never be committed silently.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_runtime.json}"
BUILD_DIR="${BUILD_DIR:-build}"
BIN="$BUILD_DIR/bench/perf_simulator"

if [ ! -x "$BIN" ]; then
  echo "run_bench.sh: building $BIN" >&2
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" --target perf_simulator -j
fi

# A Debug (or sanitizer) build tree produces numbers 5-20x off the real
# trajectory; a committed baseline recorded from one poisons every later
# comparison. Refuse unless the caller explicitly opts in, and annotate the
# JSON context when they do.
BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null || true)"
EXTRA_ARGS=()
if [ "${BUILD_TYPE:-}" != "Release" ]; then
  if [ "${ADC_BENCH_ALLOW_NONRELEASE:-0}" != "1" ]; then
    echo "run_bench.sh: REFUSING to benchmark a non-Release build tree" >&2
    echo "  $BUILD_DIR has CMAKE_BUILD_TYPE='${BUILD_TYPE:-<unset>}' (need Release)." >&2
    echo "  Reconfigure with -DCMAKE_BUILD_TYPE=Release, or set" >&2
    echo "  ADC_BENCH_ALLOW_NONRELEASE=1 to record annotated numbers anyway." >&2
    exit 3
  fi
  echo "run_bench.sh: WARNING: benchmarking a '${BUILD_TYPE:-<unset>}' build;" \
       "numbers are NOT comparable to the Release trajectory" >&2
  EXTRA_ARGS+=("--benchmark_context=build_type=${BUILD_TYPE:-unset}")
fi

"$BIN" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_filter="${ADC_BENCH_FILTER:-.*}" \
  --benchmark_counters_tabular=true \
  ${EXTRA_ARGS[@]+"${EXTRA_ARGS[@]}"}

# Post-run context verification: trust what the binary emitted, not what we
# requested. Exits non-zero on mismatch so CI and baseline regeneration can
# never keep a result recorded under the wrong conditions.
EXPECT_RELEASE=1
[ "${ADC_BENCH_ALLOW_NONRELEASE:-0}" = "1" ] && EXPECT_RELEASE=0
ALLOW_SCALING="${ADC_BENCH_ALLOW_CPU_SCALING:-0}"
python3 - "$OUT" "$EXPECT_RELEASE" "$ALLOW_SCALING" <<'PYEOF'
import json, sys

path, expect_release, allow_scaling = sys.argv[1], sys.argv[2] == "1", sys.argv[3] == "1"
try:
    ctx = json.load(open(path, encoding="utf-8"))["context"]
except (OSError, KeyError, json.JSONDecodeError) as e:
    sys.exit(f"run_bench.sh: {path} is not benchmark JSON with a context block: {e}")

errors = []
build = ctx.get("simulator_build_type")
if expect_release and build != "release":
    errors.append(
        f"simulator_build_type is {build!r}, want 'release' — the binary itself "
        "was compiled with assertions on; numbers are not trajectory-comparable"
    )
if ctx.get("cpu_scaling_enabled", False) and not allow_scaling:
    errors.append(
        "cpu_scaling_enabled is true — frequency governor will skew timings "
        "(set ADC_BENCH_ALLOW_CPU_SCALING=1 to record annotated dev numbers)"
    )
if "batch_isa" not in ctx:
    errors.append("batch_isa context missing — batch dispatch did not report its tier")

if errors:
    print(f"run_bench.sh: POST-RUN CONTEXT VERIFICATION FAILED for {path}:", file=sys.stderr)
    for e in errors:
        print(f"  - {e}", file=sys.stderr)
    sys.exit(4)
print(
    f"run_bench.sh: context verified (simulator_build_type={build}, "
    f"cpu_scaling_enabled={ctx.get('cpu_scaling_enabled')}, "
    f"batch_isa={ctx.get('batch_isa')})"
)
PYEOF

echo "run_bench.sh: wrote $OUT"
