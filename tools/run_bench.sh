#!/usr/bin/env bash
# Run the google-benchmark perf suite and write a machine-readable JSON
# result (BENCH_runtime.json by default) — the repo's performance trajectory
# artifact, uploaded by CI on every push.
#
# Usage: tools/run_bench.sh [output.json]
#   BUILD_DIR           build tree to use (default: build)
#   ADC_RUNTIME_THREADS worker-thread override for the parallel benchmarks
#   ADC_BENCH_FILTER    --benchmark_filter regex (default: all benchmarks)
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_runtime.json}"
BUILD_DIR="${BUILD_DIR:-build}"
BIN="$BUILD_DIR/bench/perf_simulator"

if [ ! -x "$BIN" ]; then
  echo "run_bench.sh: building $BIN" >&2
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" --target perf_simulator -j
fi

"$BIN" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_filter="${ADC_BENCH_FILTER:-.*}" \
  --benchmark_counters_tabular=true

echo "run_bench.sh: wrote $OUT"
