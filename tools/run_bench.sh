#!/usr/bin/env bash
# Run the google-benchmark perf suite and write a machine-readable JSON
# result (BENCH_runtime.json by default) — the repo's performance trajectory
# artifact, uploaded by CI on every push.
#
# Usage: tools/run_bench.sh [output.json]
#   BUILD_DIR           build tree to use (default: build)
#   ADC_RUNTIME_THREADS worker-thread override for the parallel benchmarks
#   ADC_BENCH_FILTER    --benchmark_filter regex (default: all benchmarks)
#   ADC_BENCH_ALLOW_NONRELEASE=1  run anyway on a non-Release build tree
#                       (the JSON then carries build_type=<type> in its
#                       context block so the numbers cannot be mistaken for
#                       a trajectory point)
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_runtime.json}"
BUILD_DIR="${BUILD_DIR:-build}"
BIN="$BUILD_DIR/bench/perf_simulator"

if [ ! -x "$BIN" ]; then
  echo "run_bench.sh: building $BIN" >&2
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" --target perf_simulator -j
fi

# A Debug (or sanitizer) build tree produces numbers 5-20x off the real
# trajectory; a committed baseline recorded from one poisons every later
# comparison. Refuse unless the caller explicitly opts in, and annotate the
# JSON context when they do.
BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null || true)"
EXTRA_ARGS=()
if [ "${BUILD_TYPE:-}" != "Release" ]; then
  if [ "${ADC_BENCH_ALLOW_NONRELEASE:-0}" != "1" ]; then
    echo "run_bench.sh: REFUSING to benchmark a non-Release build tree" >&2
    echo "  $BUILD_DIR has CMAKE_BUILD_TYPE='${BUILD_TYPE:-<unset>}' (need Release)." >&2
    echo "  Reconfigure with -DCMAKE_BUILD_TYPE=Release, or set" >&2
    echo "  ADC_BENCH_ALLOW_NONRELEASE=1 to record annotated numbers anyway." >&2
    exit 3
  fi
  echo "run_bench.sh: WARNING: benchmarking a '${BUILD_TYPE:-<unset>}' build;" \
       "numbers are NOT comparable to the Release trajectory" >&2
  EXTRA_ARGS+=("--benchmark_context=build_type=${BUILD_TYPE:-unset}")
fi

"$BIN" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_filter="${ADC_BENCH_FILTER:-.*}" \
  --benchmark_counters_tabular=true \
  ${EXTRA_ARGS[@]+"${EXTRA_ARGS[@]}"}

echo "run_bench.sh: wrote $OUT"
