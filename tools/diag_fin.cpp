#include <cstdio>
#include "pipeline/design.hpp"
#include "testbench/sweep.hpp"
using namespace adc;
using pipeline::NonIdealities;
static void run(const char* label, pipeline::AdcConfig cfg) {
  testbench::DynamicTestOptions o;
  auto pts = testbench::sweep_input_frequency(cfg, {10e6, 100e6}, o);
  std::printf("%-24s", label);
  for (auto& p : pts)
    std::printf("  [%3.0fMHz SNR %6.2f SNDR %6.2f SFDR %6.2f]", p.x/1e6,
                p.result.metrics.snr_db, p.result.metrics.sndr_db, p.result.metrics.sfdr_db);
  std::printf("\n");
}
int main() {
  auto base = pipeline::nominal_design();
  run("ALL ON", base);
  auto off = NonIdealities::all_off();
  auto one = [&](const char* n, auto setter) {
    auto c = base; c.enable = off; setter(c.enable); run(n, c);
  };
  { auto c = base; c.enable = off; run("ALL OFF", c); }
  one("only jitter", [](NonIdealities& e){ e.aperture_jitter = true; });
  one("only tracking", [](NonIdealities& e){ e.tracking_nonlinearity = true; });
  one("jitter+tracking", [](NonIdealities& e){ e.aperture_jitter = true; e.tracking_nonlinearity = true; });
  one("only thermal", [](NonIdealities& e){ e.thermal_noise = true; });
  one("only settling", [](NonIdealities& e){ e.incomplete_settling = true; });
  one("only mismatch", [](NonIdealities& e){ e.capacitor_mismatch = true; });
  return 0;
}
