/// \file adc_scenariod.cpp
/// The scenario service daemon (src/service/).
///
///   adc_scenariod --socket PATH [--cache-dir D] [--max-inflight N]
///                 [--max-requests N]
///
/// Binds PATH as a Unix-domain socket and serves the newline-delimited JSON
/// protocol of docs/SERVICE.md until SIGINT/SIGTERM or a client `shutdown`
/// request. Exit status: 0 on a clean shutdown, 1 on a startup failure
/// (unwritable cache root, unbindable socket), 2 on usage errors.
#include <poll.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "service/server.hpp"

namespace {

void print_usage() {
  std::printf(
      "usage: adc_scenariod --socket PATH [options]\n"
      "  --socket PATH      Unix-domain socket to listen on (required)\n"
      "  --cache-dir D      cache root (default: ADC_SCENARIO_CACHE_DIR or .adc-cache)\n"
      "  --max-inflight N   concurrently computing cells per connection (default 4)\n"
      "  --max-requests N   simultaneously active requests per connection (default 8)\n");
}

std::sig_atomic_t volatile g_signalled = 0;

void on_signal(int) { g_signalled = 1; }

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  adc::service::ServiceOptions options;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "adc_scenariod: missing value for %s\n", arg.c_str());
        print_usage();
        std::exit(2);
      }
      return args[++i];
    };
    if (arg == "--socket") {
      options.socket_path = value();
    } else if (arg == "--cache-dir") {
      options.cache_dir = value();
    } else if (arg == "--max-inflight") {
      options.max_inflight_per_connection =
          static_cast<std::size_t>(std::strtoull(value().c_str(), nullptr, 10));
    } else if (arg == "--max-requests") {
      options.max_requests_per_connection =
          static_cast<std::size_t>(std::strtoull(value().c_str(), nullptr, 10));
    } else if (arg == "--help") {
      print_usage();
      return 0;
    } else {
      std::fprintf(stderr, "adc_scenariod: unknown option %s\n", arg.c_str());
      print_usage();
      return 2;
    }
  }
  if (options.socket_path.empty()) {
    std::fprintf(stderr, "adc_scenariod: --socket is required\n");
    print_usage();
    return 2;
  }

  adc::service::ScenarioService server(std::move(options));
  try {
    server.start();
  } catch (const adc::common::AdcError& e) {
    std::fprintf(stderr, "adc_scenariod: %s\n", e.what());
    return 1;
  }
  std::printf("adc_scenariod: listening on %s (cache %s)\n",
              server.socket_path().c_str(), server.cache_root().c_str());
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_signalled == 0 && !server.shutdown_requested()) {
    // Sleep via poll so signals interrupt the wait immediately.
    ::poll(nullptr, 0, 200);
  }
  std::printf("adc_scenariod: shutting down\n");
  server.stop();
  return 0;
}
