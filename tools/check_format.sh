#!/usr/bin/env bash
# Check that every C++ source file matches .clang-format, without rewriting
# anything. Exits nonzero and prints a diff-style report on violations.
#
# Usage: tools/check_format.sh [clang-format-binary]
set -euo pipefail

cd "$(dirname "$0")/.."

CLANG_FORMAT="${1:-${CLANG_FORMAT:-clang-format}}"

if ! command -v "$CLANG_FORMAT" > /dev/null 2>&1; then
  echo "check_format: '$CLANG_FORMAT' not found; install clang-format or pass its path" >&2
  exit 2
fi

# Everything we compile, plus the linter's fixtures (they are read, not built,
# but still live in the tree as C++).
mapfile -t files < <(find src tests bench examples tools \
  \( -name '*.cpp' -o -name '*.hpp' \) -not -path '*/build/*' | sort)

"$CLANG_FORMAT" --dry-run -Werror "${files[@]}"
echo "check_format: ${#files[@]} files clean"
