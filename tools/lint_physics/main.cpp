/// lint_physics — domain linter for the simulator tree.
///
/// Usage:
///   lint_physics <repo_root>          scan src/ tests/ bench/ examples/ tools/
///   lint_physics --file <path>...     scan specific files (fixture self-test)
///
/// Exit code 0 when clean, 1 when any rule fires, 2 on usage errors.
/// Registered as the `lint_physics` ctest, so a violation fails the suite.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_rules.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::cerr << "usage: lint_physics <repo_root> | lint_physics --file <path>...\n";
    return 2;
  }

  std::vector<adc::lint::Finding> findings;
  if (args.front() == "--file") {
    if (args.size() < 2) {
      std::cerr << "lint_physics: --file needs at least one path\n";
      return 2;
    }
    for (std::size_t i = 1; i < args.size(); ++i) {
      std::ifstream in(args[i]);
      if (!in) {
        std::cerr << "lint_physics: cannot open " << args[i] << "\n";
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      const auto file_findings = adc::lint::lint_file(args[i], buf.str());
      findings.insert(findings.end(), file_findings.begin(), file_findings.end());
    }
  } else {
    std::size_t files_scanned = 0;
    findings = adc::lint::lint_tree(args.front(), &files_scanned);
    if (files_scanned == 0) {
      std::cerr << "lint_physics: no source files under " << args.front()
                << " (wrong repo root?)\n";
      return 2;
    }
  }

  for (const auto& finding : findings) {
    std::cout << adc::lint::to_string(finding) << "\n";
  }
  if (!findings.empty()) {
    std::cout << "lint_physics: " << findings.size() << " finding(s)\n";
    return 1;
  }
  return 0;
}
