/// lint_physics — domain linter for the simulator tree.
///
/// Usage:
///   lint_physics [options] <repo_root>    scan src/ tests/ bench/ examples/ tools/
///   lint_physics [options] --file <path>...  scan specific files (fixture self-test)
///
/// Options:
///   --format=text|json|sarif   output format (default text)
///   --output <path>            write the report to a file instead of stdout
///   --include-graph <path>     tree mode only: write the directory-level
///                              include graph (lint_physics/include_graph/v1)
///
/// Exit code 0 when clean, 1 when any rule fires, 2 on usage/config errors.
/// Registered as the `lint_physics` ctest, so a violation fails the suite;
/// the CI lint lane runs --format=sarif and uploads the report artifact.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_rules.hpp"
#include "report.hpp"

namespace {

int usage() {
  std::cerr << "usage: lint_physics [--format=text|json|sarif] [--output PATH]\n"
               "                    [--include-graph PATH] <repo_root>\n"
               "       lint_physics [--format=...] [--output PATH] --file <path>...\n";
  return 2;
}

bool write_out(const std::string& path, const std::string& text) {
  if (path.empty()) {
    std::cout << text;
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "lint_physics: cannot write " << path << "\n";
    return false;
  }
  out << text;
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  std::string format = "text";
  std::string output;
  std::string graph_path;
  bool file_mode = false;
  std::vector<std::string> inputs;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
    } else if (arg == "--format" && i + 1 < args.size()) {
      format = args[++i];
    } else if (arg == "--output" && i + 1 < args.size()) {
      output = args[++i];
    } else if (arg == "--include-graph" && i + 1 < args.size()) {
      graph_path = args[++i];
    } else if (arg == "--file") {
      file_mode = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "lint_physics: unknown option " << arg << "\n";
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (format != "text" && format != "json" && format != "sarif") {
    std::cerr << "lint_physics: unknown format '" << format << "'\n";
    return usage();
  }
  if (inputs.empty()) return usage();

  // A mis-declared layer DAG must fail loudly before any file is judged.
  if (const auto cycle = adc::lint::find_dag_cycle(adc::lint::default_layer_dag());
      !cycle.empty()) {
    std::cerr << "lint_physics: declared layer DAG has a cycle:";
    for (const auto& layer : cycle) std::cerr << " " << layer;
    std::cerr << "\n";
    return 2;
  }

  std::vector<adc::lint::Finding> findings;
  std::string repo_root;
  if (file_mode) {
    for (const auto& input : inputs) {
      std::ifstream in(input);
      if (!in) {
        std::cerr << "lint_physics: cannot open " << input << "\n";
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      const auto file_findings = adc::lint::lint_file(input, buf.str());
      findings.insert(findings.end(), file_findings.begin(), file_findings.end());
    }
  } else {
    if (inputs.size() != 1) return usage();
    repo_root = inputs.front();
    std::size_t files_scanned = 0;
    adc::lint::IncludeGraph graph;
    findings = adc::lint::lint_tree(repo_root, &files_scanned,
                                    graph_path.empty() ? nullptr : &graph);
    if (files_scanned == 0) {
      std::cerr << "lint_physics: no source files under " << repo_root
                << " (wrong repo root?)\n";
      return 2;
    }
    if (!graph_path.empty() && !write_out(graph_path, adc::lint::to_json(graph) + "\n")) {
      return 2;
    }
  }

  std::string rendered;
  if (format == "text") {
    rendered = adc::lint::to_text(findings);
  } else if (format == "json") {
    rendered = adc::lint::to_json(findings, repo_root) + "\n";
  } else {
    rendered = adc::lint::to_sarif(findings, repo_root) + "\n";
  }
  if (!write_out(output, rendered)) return 2;

  if (!findings.empty()) {
    // Keep the summary out of machine-readable stdout documents.
    auto& summary = (format == "text" && output.empty()) ? std::cout : std::cerr;
    summary << "lint_physics: " << findings.size() << " finding(s)\n";
    return 1;
  }
  return 0;
}
