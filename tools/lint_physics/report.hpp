/// \file report.hpp
/// Machine-readable output for lint_physics findings.
///
/// Three formats share one findings list:
///   text   the classic "file:line: [rule] message" lines (human / ctest log)
///   json   lint_physics/findings/v1 — a stable array for scripting
///   sarif  SARIF 2.1.0 — uploaded as a CI artifact so code-scanning UIs can
///          render findings at the offending line
/// plus the directory-level include graph (lint_physics/include_graph/v1)
/// extracted during a tree scan, which documents the layer DAG as built.
///
/// All emitters are deterministic: same findings in, same bytes out. File
/// paths are reported relative to `repo_root` when they sit under it.
#pragma once

#include <string>
#include <vector>

#include "lint_rules.hpp"

namespace adc::lint {

[[nodiscard]] std::string to_text(const std::vector<Finding>& findings);

[[nodiscard]] std::string to_json(const std::vector<Finding>& findings,
                                  const std::string& repo_root = {});

[[nodiscard]] std::string to_sarif(const std::vector<Finding>& findings,
                                   const std::string& repo_root = {});

[[nodiscard]] std::string to_json(const IncludeGraph& graph);

}  // namespace adc::lint
