#include "report.hpp"

#include <cstdio>
#include <sstream>

namespace adc::lint {

namespace {

/// RFC 8259 string escaping, ASCII-conservative (control chars to \u00XX).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Report paths relative to the repo root so artifacts are machine-portable.
std::string relativize(const std::string& file, const std::string& repo_root) {
  if (repo_root.empty()) return file;
  std::string prefix = repo_root;
  if (prefix.back() != '/') prefix += '/';
  if (file.rfind(prefix, 0) == 0) return file.substr(prefix.size());
  return file;
}

}  // namespace

std::string to_text(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const auto& finding : findings) out << to_string(finding) << "\n";
  return out.str();
}

std::string to_json(const std::vector<Finding>& findings, const std::string& repo_root) {
  std::ostringstream out;
  out << "{\"schema\":\"lint_physics/findings/v1\",\"count\":" << findings.size()
      << ",\"findings\":[";
  bool first = true;
  for (const auto& f : findings) {
    if (!first) out << ",";
    first = false;
    out << "{\"file\":\"" << json_escape(relativize(f.file, repo_root)) << "\",\"line\":" << f.line
        << ",\"rule\":\"" << json_escape(f.rule) << "\",\"message\":\"" << json_escape(f.message)
        << "\"}";
  }
  out << "]}";
  return out.str();
}

std::string to_sarif(const std::vector<Finding>& findings, const std::string& repo_root) {
  std::ostringstream out;
  out << "{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
         "Schemata/sarif-schema-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{"
         "\"tool\":{\"driver\":{\"name\":\"lint_physics\","
         "\"informationUri\":\"https://example.invalid/docs/STATIC_ANALYSIS.md\","
         "\"rules\":[";
  bool first = true;
  for (const auto& rule : rule_catalog()) {
    if (!first) out << ",";
    first = false;
    out << "{\"id\":\"" << json_escape(std::string(rule.id)) << "\",\"shortDescription\":{"
        << "\"text\":\"" << json_escape(std::string(rule.summary)) << "\"}}";
  }
  out << "]}},\"results\":[";
  first = true;
  for (const auto& f : findings) {
    if (!first) out << ",";
    first = false;
    out << "{\"ruleId\":\"" << json_escape(f.rule) << "\",\"level\":\"error\","
        << "\"message\":{\"text\":\"" << json_escape(f.message) << "\"},"
        << "\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\""
        << json_escape(relativize(f.file, repo_root)) << "\"},\"region\":{\"startLine\":"
        << (f.line == 0 ? 1 : f.line) << "}}}]}";
  }
  out << "]}]}";
  return out.str();
}

std::string to_json(const IncludeGraph& graph) {
  std::ostringstream out;
  out << "{\"schema\":\"lint_physics/include_graph/v1\",\"layers\":{";
  bool first = true;
  for (const auto& [layer, deps] : default_layer_dag().deps) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(layer) << "\":[";
    for (std::size_t i = 0; i < deps.size(); ++i) {
      if (i > 0) out << ",";
      out << "\"" << json_escape(deps[i]) << "\"";
    }
    out << "]";
  }
  out << "},\"edges\":[";
  first = true;
  for (const auto& edge : graph.edges) {
    if (!first) out << ",";
    first = false;
    out << "{\"from\":\"" << json_escape(edge.from) << "\",\"to\":\"" << json_escape(edge.to)
        << "\",\"count\":" << edge.count << ",\"allowed\":" << (edge.allowed ? "true" : "false")
        << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace adc::lint
