/// \file lexer.hpp
/// Preprocessor-aware token scanner for the lint_physics analyzer.
///
/// The original linter ran regexes over comment-stripped lines, which left
/// two blind spots: raw string literals (R"(...)") desynchronized the
/// stripper, and rules that need adjacency ("identifier followed by an open
/// paren", "growth call on an object that was reserved earlier in this
/// scope") cannot be expressed line-by-line. This lexer produces:
///
///   * a token stream (identifiers, pp-numbers, string/char placeholders,
///     punctuators) with 1-based line numbers, comments and literal
///     *contents* removed — a banned token inside a comment, string, or raw
///     string can never reach a rule;
///   * the file's #include directives (path, quote vs angle form, line);
///   * comment-stripped code lines for the rules that are genuinely
///     line-shaped (si-literal context, nodiscard-accessor declarations);
///   * every `lint-ok` suppression marker found in a *comment* (markers in
///     string literals are data, not suppressions), with its reason text.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace adc::lint {

enum class TokenKind {
  kIdentifier,  ///< identifier or keyword (rules match on spelling)
  kNumber,      ///< pp-number: 42, 1.2e9, 0x1p3, 550.0_fF
  kString,      ///< string literal placeholder (contents dropped)
  kChar,        ///< char literal placeholder (contents dropped)
  kPunct,       ///< punctuator; multi-char operators ("::", "->") kept whole
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;      ///< spelling; empty for string/char placeholders
  std::size_t line = 0;  ///< 1-based line of the token's first character
};

struct IncludeDirective {
  std::string path;      ///< text between the delimiters, as written
  bool angled = false;   ///< true for <...>, false for "..."
  std::size_t line = 0;  ///< 1-based
};

/// A `lint-ok` marker found in a comment.
struct Suppression {
  std::size_t line = 0;  ///< 1-based line the marker (and its target) sit on
  std::string reason;    ///< text after "lint-ok:", trimmed; empty if absent
  bool has_reason = false;
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  std::vector<std::string> code_lines;  ///< comments/literal contents blanked
  std::vector<Suppression> suppressions;
};

/// Lex a translation unit. Never fails: malformed input (unterminated
/// literals, stray bytes) degrades to fewer tokens, not an error — the
/// compiler is the arbiter of well-formedness, the linter only needs to be
/// conservative.
[[nodiscard]] LexedFile lex(const std::string& text);

}  // namespace adc::lint
