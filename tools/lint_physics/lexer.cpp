#include "lexer.hpp"

#include <array>
#include <cctype>
#include <string_view>

namespace adc::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string(s.substr(b, e - b));
}

/// True when masked[i] opens a raw string literal: a '"' directly preceded by
/// 'R' with an optional u8/u/U/L encoding prefix, where the prefix is not the
/// tail of a longer identifier (someIdentifierR"..." is not a raw string).
bool opens_raw_string(const std::string& text, std::size_t i, std::size_t* prefix_start) {
  if (text[i] != '"' || i == 0 || text[i - 1] != 'R') return false;
  std::size_t start = i - 1;
  if (start > 0) {
    const char p = text[start - 1];
    if (p == 'u' || p == 'U' || p == 'L') {
      if (start > 1 && text[start - 2] == 'u' && p == '8') {
        // "u8R" spelled as ...u, 8?  u8 prefix is 'u' then '8'; handled below.
      }
      start -= 1;
    } else if (p == '8' && start > 1 && text[start - 2] == 'u') {
      start -= 2;
    }
  }
  if (start > 0 && is_ident_char(text[start - 1])) return false;
  *prefix_start = start;
  return true;
}

/// Parse an include directive from the original text of one line.
bool parse_include(std::string_view line_text, std::string* path, bool* angled) {
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < line_text.size() && (line_text[i] == ' ' || line_text[i] == '\t')) ++i;
  };
  skip_ws();
  if (i >= line_text.size() || line_text[i] != '#') return false;
  ++i;
  skip_ws();
  static constexpr std::string_view kInclude = "include";
  if (line_text.substr(i, kInclude.size()) != kInclude) return false;
  i += kInclude.size();
  skip_ws();
  if (i >= line_text.size()) return false;
  const char open = line_text[i];
  const char close = open == '<' ? '>' : open == '"' ? '"' : '\0';
  if (close == '\0') return false;
  const std::size_t end = line_text.find(close, i + 1);
  if (end == std::string_view::npos) return false;
  *path = std::string(line_text.substr(i + 1, end - i - 1));
  *angled = open == '<';
  return true;
}

}  // namespace

LexedFile lex(const std::string& text) {
  LexedFile out;

  // ---- pass 1: mask comments and literal contents, record includes and
  // comment text (for lint-ok suppressions), preserving line structure.
  // Comments are kept as per-line *segments*: "value = 1;  ///< doc  // lint-ok: x"
  // has two segments on one line, and only a segment that *starts* with the
  // marker is a suppression — prose mentioning lint-ok is not.
  std::string masked = text;
  std::vector<std::vector<std::string>> comment_segments(1);
  std::size_t line = 0;       // 0-based while scanning
  bool new_segment = false;   // next comment char opens a fresh segment
  auto comment_append = [&](char c) {
    if (comment_segments.size() <= line) comment_segments.resize(line + 1);
    if (new_segment || comment_segments[line].empty()) {
      comment_segments[line].emplace_back();
      new_segment = false;
    }
    comment_segments[line].back().push_back(c);
  };

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  bool line_had_code = false;  // any non-whitespace seen in code state this line

  for (std::size_t i = 0; i < masked.size(); ++i) {
    const char c = masked[i];
    const char next = i + 1 < masked.size() ? masked[i + 1] : '\0';
    if (c == '\n') {
      ++line;
      line_had_code = false;
      new_segment = true;  // a block comment crossing the newline starts a fresh segment
      if (state == State::kLineComment || state == State::kString || state == State::kChar) {
        state = State::kCode;  // tolerate unterminated constructs at EOL
      }
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '#' && !line_had_code) {
          // Capture the directive from the original text before the path
          // string gets masked below.
          const std::size_t eol = text.find('\n', i);
          const std::string_view dir(text.data() + i,
                                     (eol == std::string::npos ? text.size() : eol) - i);
          std::string path;
          bool angled = false;
          if (parse_include(dir, &path, &angled)) {
            out.includes.push_back({path, angled, line + 1});
          }
          line_had_code = true;
          break;
        }
        if (c != ' ' && c != '\t') line_had_code = true;
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          new_segment = true;
          masked[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          new_segment = true;
          masked[i] = ' ';
          masked[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          std::size_t prefix_start = 0;
          if (opens_raw_string(masked, i, &prefix_start)) {
            // R"delim( ... )delim" — find the matching terminator, then mask
            // the whole literal down to a plain "" placeholder.
            const std::size_t paren = masked.find('(', i + 1);
            std::string delim =
                paren == std::string::npos ? std::string() : masked.substr(i + 1, paren - i - 1);
            const std::string terminator = ")" + delim + "\"";
            std::size_t end = paren == std::string::npos ? std::string::npos
                                                         : masked.find(terminator, paren + 1);
            if (end == std::string::npos) end = masked.size();  // unterminated: mask to EOF
            const std::size_t close =
                end == masked.size() ? masked.size() - 1 : end + terminator.size() - 1;
            for (std::size_t k = prefix_start; k <= close && k < masked.size(); ++k) {
              if (masked[k] == '\n') {
                ++line;
              } else {
                masked[k] = ' ';
              }
            }
            masked[prefix_start] = '"';
            if (close < masked.size()) masked[close] = '"';
            i = close;
          } else {
            state = State::kString;
          }
        } else if (c == '\'') {
          // A quote directly after an identifier/number character is a digit
          // separator (1'000'000), not a char literal.
          if (i > 0 && is_ident_char(masked[i - 1])) break;
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        comment_append(c);
        masked[i] = ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          masked[i] = ' ';
          masked[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else {
          comment_append(c);
          masked[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\') {
          masked[i] = ' ';
          if (next != '\n' && next != '\0') {
            masked[i + 1] = ' ';
            ++i;
          }
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          state = State::kCode;
        } else {
          masked[i] = ' ';
        }
        break;
    }
  }

  // ---- code lines (masked, line structure preserved).
  {
    std::size_t start = 0;
    for (std::size_t i = 0; i <= masked.size(); ++i) {
      if (i == masked.size() || masked[i] == '\n') {
        out.code_lines.emplace_back(masked, start, i - start);
        start = i + 1;
      }
    }
  }

  // ---- suppressions: "lint-ok" is a marker only where a comment *starts*
  // (after doc decoration like '/', '<', '!', '*') or directly after an inner
  // "//" ("///< doc  // lint-ok: x" is one segment to the lexer). A comment
  // merely mentioning lint-ok in prose is not a marker, and "lint-ok-hygiene"
  // (the rule name) is a different word.
  static constexpr std::string_view kMarker = "lint-ok";
  constexpr auto is_decoration = [](char c) {
    return c == '/' || c == '<' || c == '!' || c == '*' || c == ' ' || c == '\t';
  };
  for (std::size_t l = 0; l < comment_segments.size(); ++l) {
    bool line_done = false;
    for (const std::string& segment : comment_segments[l]) {
      for (std::size_t at = segment.find(kMarker); at != std::string::npos;
           at = segment.find(kMarker, at + 1)) {
        const std::string_view after = std::string_view(segment).substr(at + kMarker.size());
        if (!after.empty() && (is_ident_char(after.front()) || after.front() == '-')) {
          continue;  // lint-okay, lint-ok-hygiene, ...: different words
        }
        std::size_t p = at;
        while (p > 0 && (segment[p - 1] == ' ' || segment[p - 1] == '\t')) --p;
        const bool at_segment_start =
            p == 0 || [&] {
              for (std::size_t k = 0; k < p; ++k) {
                if (!is_decoration(segment[k])) return false;
              }
              return true;
            }();
        const bool after_inner_comment = p >= 2 && segment.compare(p - 2, 2, "//") == 0;
        if (!at_segment_start && !after_inner_comment) continue;
        Suppression s;
        s.line = l + 1;
        const std::string trimmed = trim(after);
        if (!trimmed.empty() && trimmed.front() == ':') {
          s.reason = trim(std::string_view(trimmed).substr(1));
          s.has_reason = !s.reason.empty();
        }
        out.suppressions.push_back(s);
        line_done = true;  // one marker per line is enough
        break;
      }
      if (line_done) break;
    }
  }

  // ---- pass 2: tokenize the masked text.
  static constexpr std::array<std::string_view, 21> kTwoCharPunct{
      "::", "->", "##", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
      "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "++", "--"};
  std::size_t tok_line = 1;
  for (std::size_t i = 0; i < masked.size();) {
    const char c = masked[i];
    if (c == '\n') {
      ++tok_line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (is_ident_start(c)) {
      const std::size_t start = i;
      while (i < masked.size() && is_ident_char(masked[i])) ++i;
      out.tokens.push_back({TokenKind::kIdentifier, masked.substr(start, i - start), tok_line});
      continue;
    }
    if (is_digit(c) || (c == '.' && i + 1 < masked.size() && is_digit(masked[i + 1]))) {
      // pp-number: digits, idents, dots, digit separators, and a sign that
      // directly follows an exponent marker (1.2e-9, 0x1p+3).
      const std::size_t start = i;
      ++i;
      while (i < masked.size()) {
        const char d = masked[i];
        if (is_ident_char(d) || d == '.' || d == '\'') {
          ++i;
        } else if ((d == '+' || d == '-') &&
                   (masked[i - 1] == 'e' || masked[i - 1] == 'E' || masked[i - 1] == 'p' ||
                    masked[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      out.tokens.push_back({TokenKind::kNumber, masked.substr(start, i - start), tok_line});
      continue;
    }
    if (c == '"') {
      const std::size_t end = masked.find('"', i + 1);
      out.tokens.push_back({TokenKind::kString, "", tok_line});
      i = end == std::string::npos ? masked.size() : end + 1;
      continue;
    }
    if (c == '\'') {
      const std::size_t end = masked.find('\'', i + 1);
      out.tokens.push_back({TokenKind::kChar, "", tok_line});
      i = end == std::string::npos ? masked.size() : end + 1;
      continue;
    }
    std::string punct(1, c);
    if (i + 1 < masked.size()) {
      const std::string two{c, masked[i + 1]};
      for (const auto candidate : kTwoCharPunct) {
        if (two == candidate) {
          punct = two;
          break;
        }
      }
    }
    out.tokens.push_back({TokenKind::kPunct, punct, tok_line});
    i += punct.size();
  }

  return out;
}

}  // namespace adc::lint
