/// \file lint_rules.hpp
/// Repo-specific lint rules that generic tooling cannot express.
///
/// The generic layers (warnings, clang-tidy, sanitizers) catch language-level
/// problems. These rules encode *simulator* conventions whose violation shows
/// up as quietly-wrong physics — or, since PR 4, as a silently forked
/// content-addressed result cache — rather than a crash. All rules run on the
/// token stream produced by lexer.hpp, so banned spellings inside comments,
/// strings, and raw strings are invisible to them.
///
///   rng-facade          all randomness flows through the seeded Rng façade in
///                       src/common/random.*; std::rand/std::random_device/
///                       time()-seeding anywhere else silently breaks
///                       reproducibility of Monte-Carlo results.
///   profile-math        per-sample code in the model layers (src/analog/,
///                       src/pipeline/) never calls <cmath> transcendentals
///                       directly; it routes through the profile-dispatched
///                       adc::common::math::*_p kernels so the `fast`
///                       fidelity profile actually takes the polynomial path.
///                       The fast-profile draw pipeline (common/counter_rng*,
///                       common/noise_plane) is also in scope, and there even
///                       std::sqrt/std::hypot are findings: fast contract v2
///                       pins division-free draw math (fastmath::sqrt_fast),
///                       and a libm call would both re-open the divider-port
///                       wall and silently change the pinned deviates.
///   no-printf           src/ libraries never printf to stdout/stderr; results
///                       are returned, reports go through testbench/report.
///   si-literal          config-struct defaults in headers use the units.hpp
///                       literals (12.0_pF), not raw scale factors (12e-12).
///   nodiscard-accessor  const measurement accessors carry [[nodiscard]].
///   hot-path-alloc      no raw heap (new/malloc/make_unique) and no
///                       unreserved container growth in the per-sample model
///                       layers src/analog/, src/pipeline/, src/digital/ —
///                       the static form of PR 3's allocation-free kernel
///                       contract. Growth after a reserve/resize/assign on
///                       the same object in an enclosing scope is the batch
///                       fill pattern and stays legal.
///   determinism         no wall-clock/thread-identity reads (std::chrono,
///                       time(), clock(), this_thread, rdtsc) outside
///                       src/runtime/ (telemetry) and src/service/ (socket
///                       poll/condition-variable deadlines), and no
///                       unordered_{map,set} anywhere in src/ — iteration
///                       order would leak into common/json serialization or
///                       the FNV-1a cache hash and silently fork the
///                       content-addressed cache.
///   include-layering    quote includes must follow the declared layer DAG
///                       (default_layer_dag); an upward or cyclic #include is
///                       a finding, and the extracted directory-level graph
///                       is exported for the docs/CI artifact.
///   lint-ok-hygiene     a `// lint-ok: reason` that suppresses nothing, or a
///                       lint-ok without a reason, is itself a finding — the
///                       allowlist cannot rot.
///
/// A finding is suppressed per line with a trailing `// lint-ok: reason`.
#pragma once

#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace adc::lint {

/// One rule violation at a specific line.
struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Rule metadata for machine-readable reports (SARIF rules array).
struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// Every rule the analyzer knows, in stable order.
[[nodiscard]] const std::vector<RuleInfo>& rule_catalog();

/// The declared architecture: each layer under src/ lists the layers it may
/// directly include from (its own layer is always allowed). The enforced
/// relation is the transitive closure.
struct LayerDag {
  std::vector<std::pair<std::string, std::vector<std::string>>> deps;
};

/// The repo's layer DAG:
///
///   common
///     ├── analog ── bias ─┐
///     ├── clocking ───────┤
///     ├── digital ────────┼── pipeline ── power ── survey
///     ├── dsp ────────────┘      │          │
///     │     └────────────────────┤          │
///     ├── runtime ─┐       calibration   twostep*
///     └──────── testbench ───┐
///                        scenario
///
/// (*twostep depends on analog/clocking/dsp directly, not on pipeline.)
/// tests/, bench/, examples/, and tools/ sit above everything.
[[nodiscard]] const LayerDag& default_layer_dag();

/// Transitive closure of a DAG's allowed-dependency relation, or nullopt when
/// the declared graph contains a cycle (a mis-declared DAG must fail loudly,
/// not silently allow everything on the cycle).
[[nodiscard]] std::optional<std::map<std::string, std::set<std::string>>> dag_closure(
    const LayerDag& dag);

/// The layers of one cycle in the declared graph, or empty when acyclic.
[[nodiscard]] std::vector<std::string> find_dag_cycle(const LayerDag& dag);

/// One directory-level include edge observed while linting.
struct IncludeEdge {
  std::string from;
  std::string to;
  std::size_t count = 0;
  bool allowed = true;
};

/// Aggregated directory-level include graph for the whole tree.
struct IncludeGraph {
  std::vector<IncludeEdge> edges;  ///< sorted by (from, to), counts merged
};

/// Findings plus the include edges of one file.
struct FileReport {
  std::vector<Finding> findings;
  std::vector<IncludeEdge> edges;
};

/// Lint a single file's contents. `path` determines which rules apply (header
/// vs source, under src/ or not, which layer); `contents` is the full text.
[[nodiscard]] FileReport lint_file_report(const std::filesystem::path& path,
                                          const std::string& contents);

/// Convenience wrapper returning findings only.
[[nodiscard]] std::vector<Finding> lint_file(const std::filesystem::path& path,
                                             const std::string& contents);

/// Recursively lint every .cpp/.hpp under `repo_root`'s source directories
/// (src, tests, bench, examples, tools), skipping build trees and the linter's
/// own directory (whose sources and fixtures mention the banned tokens).
/// When `files_scanned` is non-null it receives the number of files read, so
/// callers can distinguish "clean" from "scanned nothing" (e.g. a wrong root).
/// When `graph` is non-null it receives the aggregated include graph.
[[nodiscard]] std::vector<Finding> lint_tree(const std::filesystem::path& repo_root,
                                             std::size_t* files_scanned = nullptr,
                                             IncludeGraph* graph = nullptr);

/// Render a finding as "file:line: [rule] message".
[[nodiscard]] std::string to_string(const Finding& finding);

}  // namespace adc::lint
