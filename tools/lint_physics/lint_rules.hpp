/// \file lint_rules.hpp
/// Repo-specific lint rules that generic tooling cannot express.
///
/// The generic layers (warnings, clang-tidy, sanitizers) catch language-level
/// problems. These rules encode *simulator* conventions whose violation shows
/// up as quietly-wrong physics rather than a crash:
///
///   rng-facade          all randomness flows through the seeded Rng façade in
///                       src/common/random.*; std::rand/std::random_device/
///                       time()-seeding anywhere else silently breaks
///                       reproducibility of Monte-Carlo results.
///   profile-math        per-sample code in the model layers (src/analog/,
///                       src/pipeline/) never calls <cmath> transcendentals
///                       directly; it routes through the profile-dispatched
///                       adc::common::math::*_p kernels so the `fast`
///                       fidelity profile actually takes the polynomial
///                       path. Exact-profile-only files (the transient
///                       solver) are allowlisted; construction-time or
///                       cached evaluations carry a `lint-ok` with a reason.
///   no-printf           src/ libraries never printf to stdout/stderr; results
///                       are returned, reports go through testbench/report.
///   si-literal          config-struct defaults in headers use the units.hpp
///                       literals (12.0_pF), not raw scale factors (12e-12),
///                       so a dropped exponent cannot mis-size a capacitor.
///   nodiscard-accessor  const measurement accessors carry [[nodiscard]]; a
///                       discarded measurement is always a bug.
///
/// A finding can be suppressed per line with a trailing `// lint-ok: reason`.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace adc::lint {

/// One rule violation at a specific line.
struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Lint a single file's contents. `path` determines which rules apply (header
/// vs source, under src/ or not); `contents` is the full file text.
[[nodiscard]] std::vector<Finding> lint_file(const std::filesystem::path& path,
                                             const std::string& contents);

/// Recursively lint every .cpp/.hpp under `repo_root`'s source directories
/// (src, tests, bench, examples, tools), skipping build trees and the linter's
/// own directory (whose sources and fixtures mention the banned tokens).
/// When `files_scanned` is non-null it receives the number of files read, so
/// callers can distinguish "clean" from "scanned nothing" (e.g. a wrong root).
[[nodiscard]] std::vector<Finding> lint_tree(const std::filesystem::path& repo_root,
                                             std::size_t* files_scanned = nullptr);

/// Render a finding as "file:line: [rule] message".
[[nodiscard]] std::string to_string(const Finding& finding);

}  // namespace adc::lint
