#include "lint_rules.hpp"

#include <array>
#include <fstream>
#include <regex>
#include <sstream>

namespace adc::lint {

namespace {

namespace fs = std::filesystem;

/// Replace comments and string/char literals with spaces, preserving line
/// structure, so rule regexes never match documentation or message text.
std::string strip_comments_and_strings(const std::string& text) {
  std::string out = text;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          if (c != '\n') out[i] = ' ';
          if (next != '\n' && next != '\0') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          if (c != '\n') out[i] = ' ';
          if (next != '\n' && next != '\0') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

bool path_contains(const fs::path& path, std::string_view needle) {
  return path.generic_string().find(needle) != std::string::npos;
}

/// `// lint-ok: reason` on the original line suppresses every rule there.
bool is_suppressed(const std::string& original_line) {
  return original_line.find("lint-ok") != std::string::npos;
}

const std::regex& banned_random_re() {
  static const std::regex re(
      R"((\bstd\s*::\s*rand\b)|(\bsrand\s*\()|(\brand\s*\()|(\brandom_device\b)|(\bstd\s*::\s*time\s*\()|(\btime\s*\(\s*(NULL|nullptr|0)\s*\)))");
  return re;
}

const std::regex& printf_family_re() {
  static const std::regex re(
      R"(\b(printf|fprintf|sprintf|snprintf|vprintf|vfprintf|puts|putchar)\s*\()");
  return re;
}

// A <cmath> transcendental called directly. sqrt/abs/fma and friends are
// single instructions and stay allowed; these are the libm calls the fast
// profile replaces with polynomial kernels.
const std::regex& cmath_transcendental_re() {
  static const std::regex re(
      R"(\bstd\s*::\s*(exp2?|expm1|log|log2|log10|log1p|pow|sin|cos|tan|sincos|sinh|cosh|tanh|asin|acos|atan2?)\s*\()");
  return re;
}

// Exact-profile-only files under the model layers: code with no fast-profile
// variant (the transient solver is exact by definition — it integrates the
// waveform the fast contract abstracts away), where direct libm *is* the
// contract.
bool is_exact_profile_file(const fs::path& path) {
  return path_contains(path, "analog/transient.");
}

// A raw SI scale factor (1e-12 and friends) used as an initializer. Exponents
// ±{3,6,9,12,15} are exactly the prefixes units.hpp provides literals for.
const std::regex& si_literal_re() {
  static const std::regex re(R"([={,(]\s*[0-9][0-9.]*[eE][+-]?(3|6|9|12|15)\b)");
  return re;
}

// A zero-argument const member declaration, e.g. "double value() const;".
const std::regex& const_accessor_re() {
  static const std::regex re(
      R"(^\s*(?:virtual\s+)?(?!void\b)(?:const\s+)?[A-Za-z_][A-Za-z0-9_:<>,*& ]*[&* ]\s*[a-z_][A-Za-z0-9_]*\(\)\s*const\b)");
  return re;
}

void scan_line(const fs::path& path, std::size_t line_no, const std::string& code_line,
               const std::string& prev_code_line, const std::string& original_line,
               std::vector<Finding>& findings) {
  const bool in_src = path_contains(path, "src/");
  const bool is_header = path.extension() == ".hpp";
  const bool is_rng_facade = path_contains(path, "common/random.");
  const std::string file = path.generic_string();

  if (!is_rng_facade && std::regex_search(code_line, banned_random_re())) {
    findings.push_back({file, line_no, "rng-facade",
                        "raw RNG/time seeding; use the seeded adc::common::Rng facade "
                        "(src/common/random.hpp) so results stay reproducible"});
  }
  const bool in_model_layer =
      path_contains(path, "src/analog/") || path_contains(path, "src/pipeline/");
  if (in_model_layer && !is_exact_profile_file(path) &&
      std::regex_search(code_line, cmath_transcendental_re())) {
    findings.push_back({file, line_no, "profile-math",
                        "direct <cmath> transcendental in a per-sample model layer bypasses "
                        "the fidelity-profile dispatch; call adc::common::math::*_p "
                        "(common/fastmath.hpp), or mark construction-time/cached sites "
                        "lint-ok with the reason"});
  }
  if (in_src && std::regex_search(code_line, printf_family_re())) {
    findings.push_back({file, line_no, "no-printf",
                        "printf-family call in a src/ library; return values or use the "
                        "testbench report layer instead"});
  }
  if (in_src && is_header && !path_contains(path, "common/units.hpp") &&
      code_line.find("constexpr") == std::string::npos &&
      std::regex_search(code_line, si_literal_re())) {
    findings.push_back({file, line_no, "si-literal",
                        "raw SI scale factor in a header initializer; use a units.hpp "
                        "literal (e.g. 12.0_pF, 110.0_MHz, 150.0_uA)"});
  }
  if (in_src && is_header && code_line.find("operator") == std::string::npos &&
      std::regex_search(code_line, const_accessor_re()) &&
      original_line.find("[[nodiscard]]") == std::string::npos &&
      prev_code_line.find("[[nodiscard]]") == std::string::npos) {
    findings.push_back({file, line_no, "nodiscard-accessor",
                        "const measurement accessor without [[nodiscard]]; a discarded "
                        "measurement is always a bug"});
  }
}

}  // namespace

std::vector<Finding> lint_file(const fs::path& path, const std::string& contents) {
  std::vector<Finding> findings;
  const std::string code = strip_comments_and_strings(contents);

  std::istringstream code_lines(code);
  std::istringstream original_lines(contents);
  std::string code_line;
  std::string original_line;
  std::string prev_code_line;
  std::size_t line_no = 0;
  while (std::getline(code_lines, code_line)) {
    std::getline(original_lines, original_line);
    ++line_no;
    if (!is_suppressed(original_line)) {
      scan_line(path, line_no, code_line, prev_code_line, original_line, findings);
    }
    prev_code_line = code_line;
  }
  return findings;
}

std::vector<Finding> lint_tree(const fs::path& repo_root, std::size_t* files_scanned) {
  std::vector<Finding> findings;
  std::size_t scanned = 0;
  static constexpr std::array<std::string_view, 5> kRoots{"src", "tests", "bench", "examples",
                                                          "tools"};
  for (const auto root : kRoots) {
    const fs::path dir = repo_root / root;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& path = entry.path();
      const auto ext = path.extension();
      if (ext != ".cpp" && ext != ".hpp") continue;
      // The linter's own sources and fixtures spell out the banned tokens.
      if (path_contains(path, "lint_physics")) continue;
      if (path_contains(path, "/build")) continue;
      std::ifstream in(path);
      std::ostringstream buf;
      buf << in.rdbuf();
      ++scanned;
      auto file_findings = lint_file(path, buf.str());
      findings.insert(findings.end(), file_findings.begin(), file_findings.end());
    }
  }
  if (files_scanned != nullptr) *files_scanned = scanned;
  return findings;
}

std::string to_string(const Finding& finding) {
  std::ostringstream out;
  out << finding.file << ":" << finding.line << ": [" << finding.rule << "] " << finding.message;
  return out.str();
}

}  // namespace adc::lint
