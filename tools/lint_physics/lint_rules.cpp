#include "lint_rules.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <regex>
#include <sstream>

#include "lexer.hpp"

namespace adc::lint {

namespace {

namespace fs = std::filesystem;

bool path_contains(const fs::path& path, std::string_view needle) {
  return path.generic_string().find(needle) != std::string::npos;
}

template <std::size_t N>
bool any_of_ids(const std::array<std::string_view, N>& set, std::string_view text) {
  return std::find(set.begin(), set.end(), text) != set.end();
}

// ---------------------------------------------------------------------------
// Layer DAG

const std::vector<std::string>& known_layers() {
  static const std::vector<std::string> layers{
      "common",  "analog",      "clocking", "dsp",    "digital",  "runtime", "bias",
      "pipeline", "batch",      "power",    "twostep", "survey", "calibration", "testbench",
      "scenario", "fleet", "service"};
  return layers;
}

/// Directory component directly under src/, or empty when not a src file.
std::string layer_of(const fs::path& path) {
  const std::string generic = path.generic_string();
  const std::size_t at = generic.rfind("src/");
  if (at == std::string::npos) return {};
  const std::size_t begin = at + 4;
  const std::size_t slash = generic.find('/', begin);
  if (slash == std::string::npos) return {};
  const std::string dir = generic.substr(begin, slash - begin);
  const auto& layers = known_layers();
  return std::find(layers.begin(), layers.end(), dir) != layers.end() ? dir : std::string();
}

/// Top-level root a non-src file belongs to ("tests", "bench", ...), for the
/// include-graph export. Empty when unknown.
std::string root_of(const fs::path& path) {
  const std::string generic = path.generic_string();
  for (const std::string_view root : {"tests/", "bench/", "examples/", "tools/"}) {
    if (generic.find(root) != std::string::npos) {
      return std::string(root.substr(0, root.size() - 1));
    }
  }
  return {};
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> catalog{
      {"rng-facade", "raw RNG or wall-clock seeding outside the seeded Rng facade"},
      {"profile-math", "direct <cmath> transcendental (or sqrt in the draw pipeline) "
                       "bypassing fidelity-profile dispatch"},
      {"no-printf", "printf-family call inside a src/ library"},
      {"si-literal", "raw SI scale factor where a units.hpp literal exists"},
      {"nodiscard-accessor", "const measurement accessor without [[nodiscard]]"},
      {"hot-path-alloc", "heap allocation or unreserved growth in a per-sample model layer"},
      {"determinism", "wall-clock/thread-identity read or unordered container in a "
                      "result-producing layer"},
      {"include-layering", "#include that violates the declared layer DAG"},
      {"lint-ok-hygiene", "stale or reasonless lint-ok suppression"},
  };
  return catalog;
}

const LayerDag& default_layer_dag() {
  static const LayerDag dag{{
      {"common", {}},
      {"analog", {"common"}},
      {"clocking", {"common"}},
      {"dsp", {"common"}},
      {"digital", {"common"}},
      {"runtime", {"common"}},
      {"bias", {"common", "analog"}},
      {"pipeline", {"common", "analog", "clocking", "bias", "digital", "dsp"}},
      {"batch", {"common", "analog", "dsp", "pipeline"}},
      {"power", {"common", "pipeline"}},
      {"twostep", {"common", "analog", "clocking", "dsp"}},
      {"calibration", {"common", "digital", "pipeline"}},
      {"survey", {"common", "power"}},
      {"testbench", {"common", "batch", "dsp", "pipeline", "runtime"}},
      {"scenario", {"common", "batch", "pipeline", "power", "runtime", "testbench"}},
      {"fleet", {"common", "runtime", "scenario"}},
      {"service", {"common", "runtime", "scenario"}},
  }};
  return dag;
}

std::vector<std::string> find_dag_cycle(const LayerDag& dag) {
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [layer, deps] : dag.deps) adj[layer] = deps;
  // Colored DFS: 0 = unvisited, 1 = on stack, 2 = done.
  std::map<std::string, int> color;
  std::vector<std::string> stack;
  std::vector<std::string> cycle;
  auto dfs = [&](auto&& self, const std::string& node) -> bool {
    color[node] = 1;
    stack.push_back(node);
    for (const auto& dep : adj[node]) {
      if (color[dep] == 1) {
        const auto at = std::find(stack.begin(), stack.end(), dep);
        cycle.assign(at, stack.end());
        cycle.push_back(dep);
        return true;
      }
      if (color[dep] == 0 && self(self, dep)) return true;
    }
    stack.pop_back();
    color[node] = 2;
    return false;
  };
  for (const auto& [layer, deps] : dag.deps) {
    if (color[layer] == 0 && dfs(dfs, layer)) return cycle;
  }
  return {};
}

std::optional<std::map<std::string, std::set<std::string>>> dag_closure(const LayerDag& dag) {
  if (!find_dag_cycle(dag).empty()) return std::nullopt;
  std::map<std::string, std::set<std::string>> closure;
  auto resolve = [&](auto&& self, const std::string& node) -> const std::set<std::string>& {
    auto found = closure.find(node);
    if (found != closure.end()) return found->second;
    std::set<std::string> deps;
    for (const auto& [layer, direct] : dag.deps) {
      if (layer != node) continue;
      for (const auto& dep : direct) {
        deps.insert(dep);
        const auto& transitive = self(self, dep);
        deps.insert(transitive.begin(), transitive.end());
      }
    }
    return closure.emplace(node, std::move(deps)).first->second;
  };
  for (const auto& [layer, direct] : dag.deps) resolve(resolve, layer);
  return closure;
}

namespace {

// ---------------------------------------------------------------------------
// Token-stream rules

constexpr std::array<std::string_view, 8> kPrintfFamily{
    "printf", "fprintf", "sprintf", "snprintf", "vprintf", "vfprintf", "puts", "putchar"};

// <cmath> transcendentals the fast profile replaces with polynomial kernels;
// sqrt/abs/fma and friends are single instructions and stay allowed in the
// model layers (the draw pipeline additionally bans sqrt — see
// scan_profile_math).
constexpr std::array<std::string_view, 20> kTranscendentals{
    "exp",  "exp2", "expm1", "log",  "log2", "log10", "log1p", "pow",  "sin",  "cos",
    "tan",  "sincos", "sinh", "cosh", "tanh", "asin",  "acos",  "atan", "atan2", "cbrt"};

constexpr std::array<std::string_view, 6> kMallocFamily{"malloc", "calloc",       "realloc",
                                                        "free",   "aligned_alloc", "strdup"};

constexpr std::array<std::string_view, 7> kGrowthCalls{
    "push_back", "emplace_back", "push_front", "emplace_front", "insert", "emplace", "append"};

constexpr std::array<std::string_view, 3> kCapacityCalls{"reserve", "resize", "assign"};

constexpr std::array<std::string_view, 9> kWallClockCalls{
    "time",     "clock",  "gettimeofday", "clock_gettime", "timespec_get",
    "localtime", "gmtime", "mktime",      "ftime"};

constexpr std::array<std::string_view, 4> kUnorderedContainers{
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};

// A raw SI scale factor (1e-12 and friends) used as an initializer. Exponents
// ±{3,6,9,12,15} are exactly the prefixes units.hpp provides literals for.
const std::regex& si_literal_number_re() {
  static const std::regex re(R"(^[0-9][0-9.]*[eE][+-]?(3|6|9|12|15)$)");
  return re;
}

// A zero-argument const member declaration, e.g. "double value() const;".
const std::regex& const_accessor_re() {
  static const std::regex re(
      R"(^\s*(?:virtual\s+)?(?!void\b)(?:const\s+)?[A-Za-z_][A-Za-z0-9_:<>,*& ]*[&* ]\s*[a-z_][A-Za-z0-9_]*\(\)\s*const\b)");
  return re;
}

struct FileContext {
  std::string file;       // generic path string, as reported
  bool in_src = false;
  bool is_header = false;
  bool is_rng_facade = false;     // src/common/random.* defines the facade
  bool in_math_layer = false;     // src/analog | src/pipeline | src/batch (profile-math)
  bool in_draw_pipeline = false;  // common/counter_rng* | common/noise_plane:
                                  // fast contract v2 is division/sqrt-free, so
                                  // even std::sqrt is a finding there
  bool is_exact_profile = false;  // transient solver: direct libm is the contract
  bool in_alloc_layer = false;    // src/analog | src/pipeline | src/batch | src/digital
  bool in_clock_exempt = false;   // src/runtime (telemetry), src/service
                                  // (socket/poll deadlines) and src/fleet
                                  // (claim heartbeats/polling) may read clocks
  std::string layer;              // src/<layer>, empty outside src or unknown
};

FileContext make_context(const fs::path& path) {
  FileContext ctx;
  ctx.file = path.generic_string();
  ctx.in_src = path_contains(path, "src/");
  ctx.is_header = path.extension() == ".hpp";
  ctx.is_rng_facade = path_contains(path, "common/random.");
  const bool in_analog = path_contains(path, "src/analog/");
  const bool in_pipeline = path_contains(path, "src/pipeline/");
  const bool in_batch = path_contains(path, "src/batch/");
  ctx.in_math_layer = in_analog || in_pipeline || in_batch;
  ctx.in_draw_pipeline = path_contains(path, "common/counter_rng") ||
                         path_contains(path, "common/noise_plane");
  ctx.is_exact_profile = path_contains(path, "analog/transient.");
  ctx.in_alloc_layer =
      in_analog || in_pipeline || in_batch || path_contains(path, "src/digital/");
  ctx.in_clock_exempt = path_contains(path, "src/runtime/") ||
                        path_contains(path, "src/service/") ||
                        path_contains(path, "src/fleet/");
  ctx.layer = layer_of(path);
  return ctx;
}

class TokenScanner {
 public:
  TokenScanner(const FileContext& ctx, const LexedFile& lexed, std::vector<Finding>& findings)
      : ctx_(ctx), tokens_(lexed.tokens), code_lines_(lexed.code_lines), findings_(findings) {}

  void scan() {
    reserved_scopes_.emplace_back();  // file-level scope
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      track_scopes(i);
      scan_rng_facade(i);
      scan_profile_math(i);
      scan_printf(i);
      scan_si_literal(i);
      scan_alloc(i);
      scan_determinism(i);
    }
  }

 private:
  bool id_at(std::size_t i, std::string_view text) const {
    return i < tokens_.size() && tokens_[i].kind == TokenKind::kIdentifier &&
           tokens_[i].text == text;
  }
  bool punct_at(std::size_t i, std::string_view text) const {
    return i < tokens_.size() && tokens_[i].kind == TokenKind::kPunct && tokens_[i].text == text;
  }
  bool ident(std::size_t i) const {
    return i < tokens_.size() && tokens_[i].kind == TokenKind::kIdentifier;
  }
  /// Token is `std` `::` `<name>` starting at i.
  bool std_qualified(std::size_t i, std::string_view name) const {
    return id_at(i, "std") && punct_at(i + 1, "::") && id_at(i + 2, name);
  }
  bool member_access_before(std::size_t i) const {
    return i > 0 && (punct_at(i - 1, ".") || punct_at(i - 1, "->"));
  }
  bool scope_before(std::size_t i) const { return i > 0 && punct_at(i - 1, "::"); }
  /// Heuristic: the identifier at i reads as a *call*, not a declaration —
  /// the preceding token is not a type name / declarator fragment.
  bool call_context(std::size_t i) const {
    if (i == 0) return true;
    const Token& prev = tokens_[i - 1];
    if (prev.kind == TokenKind::kIdentifier) {
      return prev.text == "return" || prev.text == "case" || prev.text == "co_return";
    }
    return prev.kind == TokenKind::kPunct && prev.text != "." && prev.text != "->" &&
           prev.text != "::" && prev.text != "&" && prev.text != "*" && prev.text != "~";
  }
  void add(std::size_t line, std::string rule, std::string message) {
    findings_.push_back({ctx_.file, line, std::move(rule), std::move(message)});
  }

  void track_scopes(std::size_t i) {
    if (punct_at(i, "{")) {
      reserved_scopes_.emplace_back();
    } else if (punct_at(i, "}")) {
      if (reserved_scopes_.size() > 1) reserved_scopes_.pop_back();
    } else if ((punct_at(i, ".") || punct_at(i, "->")) && ident(i + 1) &&
               any_of_ids(kCapacityCalls, tokens_[i + 1].text) && punct_at(i + 2, "(")) {
      // `obj.reserve(` / `obj.resize(` / `obj.assign(`: the object is sized
      // for the batch; later growth on it is the legal fill pattern.
      if (i > 0 && ident(i - 1)) reserved_scopes_.back().insert(tokens_[i - 1].text);
    }
  }

  bool is_reserved(const std::string& object) const {
    for (auto it = reserved_scopes_.rbegin(); it != reserved_scopes_.rend(); ++it) {
      if (it->count(object) > 0) return true;
    }
    return false;
  }

  void scan_rng_facade(std::size_t i) {
    if (ctx_.is_rng_facade) return;
    const auto& t = tokens_[i];
    if (t.kind != TokenKind::kIdentifier) return;
    const char* const msg =
        "raw RNG/time seeding; use the seeded adc::common::Rng facade "
        "(src/common/random.hpp) so results stay reproducible";
    if (t.text == "rand" && punct_at(i + 1, "(") && !member_access_before(i)) {
      add(t.line, "rng-facade", msg);
    } else if (t.text == "srand" && punct_at(i + 1, "(") && !member_access_before(i)) {
      add(t.line, "rng-facade", msg);
    } else if (t.text == "random_device") {
      add(t.line, "rng-facade", msg);
    } else if (t.text == "time" && punct_at(i + 1, "(")) {
      const bool std_call = i >= 2 && id_at(i - 2, "std") && punct_at(i - 1, "::");
      const bool null_seed = id_at(i + 2, "NULL") || id_at(i + 2, "nullptr") ||
                             (i + 2 < tokens_.size() && tokens_[i + 2].kind == TokenKind::kNumber &&
                              tokens_[i + 2].text == "0");
      if ((std_call || (!member_access_before(i) && !scope_before(i))) && null_seed) {
        add(t.line, "rng-facade", msg);
      }
    }
  }

  void scan_profile_math(std::size_t i) {
    if ((!ctx_.in_math_layer && !ctx_.in_draw_pipeline) || ctx_.is_exact_profile) return;
    if (!id_at(i, "std") || !punct_at(i + 1, "::")) return;
    if (!ident(i + 2) || !punct_at(i + 3, "(")) return;
    const std::string& callee = tokens_[i + 2].text;
    if (any_of_ids(kTranscendentals, callee)) {
      add(tokens_[i + 2].line, "profile-math",
          ctx_.in_draw_pipeline
              ? "direct <cmath> transcendental in the fast-profile draw pipeline; "
                "fast contract v2 pins the division-free fastmath kernels "
                "(common/fastmath.hpp) — a libm call here silently changes the "
                "pinned deviates and forks the golden-code fingerprint"
              : "direct <cmath> transcendental in a per-sample model layer bypasses "
                "the fidelity-profile dispatch; call adc::common::math::*_p "
                "(common/fastmath.hpp), or mark construction-time/cached sites "
                "lint-ok with the reason");
    } else if (ctx_.in_draw_pipeline && (callee == "sqrt" || callee == "hypot")) {
      // sqrt is allowed in the model layers (a single instruction), but the
      // draw pipeline's whole point since contract v2 is keeping the divider/
      // sqrt ports idle — and vsqrtpd there would re-open the throughput wall.
      add(tokens_[i + 2].line, "profile-math",
          "std::" + callee +
              " in the fast-profile draw pipeline re-opens the divider-port "
              "wall fast contract v2 removed; use fastmath::sqrt_fast "
              "(common/fastmath.hpp), or mark a non-draw site lint-ok with "
              "the reason");
    }
  }

  void scan_printf(std::size_t i) {
    if (!ctx_.in_src) return;
    if (!ident(i) || !any_of_ids(kPrintfFamily, tokens_[i].text)) return;
    if (!punct_at(i + 1, "(") || member_access_before(i)) return;
    add(tokens_[i].line, "no-printf",
        "printf-family call in a src/ library; return values or use the "
        "testbench report layer instead");
  }

  void scan_si_literal(std::size_t i) {
    if (!ctx_.in_src || !ctx_.is_header || path_like_units()) return;
    const auto& t = tokens_[i];
    if (t.kind != TokenKind::kNumber || !std::regex_match(t.text, si_literal_number_re())) return;
    if (i == 0 || tokens_[i - 1].kind != TokenKind::kPunct) return;
    const std::string& prev = tokens_[i - 1].text;
    if (prev != "=" && prev != "{" && prev != "," && prev != "(") return;
    if (t.line - 1 < code_lines_.size() &&
        code_lines_[t.line - 1].find("constexpr") != std::string::npos) {
      return;  // constexpr physical-constant definitions are exempt
    }
    add(t.line, "si-literal",
        "raw SI scale factor in a header initializer; use a units.hpp "
        "literal (e.g. 12.0_pF, 110.0_MHz, 150.0_uA)");
  }

  bool path_like_units() const { return ctx_.file.find("common/units.hpp") != std::string::npos; }

  void scan_alloc(std::size_t i) {
    if (!ctx_.in_alloc_layer) return;
    const auto& t = tokens_[i];
    if (t.kind != TokenKind::kIdentifier) return;
    const char* const heap_msg =
        "raw heap allocation in a per-sample model layer (allocation-free "
        "kernel contract, PR 3); hoist to construction time or mark the "
        "construction-time site lint-ok with the reason";
    if (t.text == "new") {
      add(t.line, "hot-path-alloc", heap_msg);
      return;
    }
    if (any_of_ids(kMallocFamily, t.text) && punct_at(i + 1, "(") && !member_access_before(i)) {
      add(t.line, "hot-path-alloc", heap_msg);
      return;
    }
    if ((t.text == "make_unique" || t.text == "make_shared") &&
        (punct_at(i + 1, "<") || punct_at(i + 1, "("))) {
      add(t.line, "hot-path-alloc", heap_msg);
      return;
    }
    if (any_of_ids(kGrowthCalls, t.text) && member_access_before(i) && punct_at(i + 1, "(")) {
      const std::string object = i >= 2 && ident(i - 2) ? tokens_[i - 2].text : std::string();
      if (object.empty() || !is_reserved(object)) {
        add(t.line, "hot-path-alloc",
            "container growth without a prior reserve/resize on '" +
                (object.empty() ? std::string("<expression>") : object) +
                "' in this scope (allocation-free kernel contract, PR 3); "
                "reserve at the batch boundary, or lint-ok a construction-time "
                "or fixed-capacity site with the reason");
      }
    }
  }

  void scan_determinism(std::size_t i) {
    if (!ctx_.in_src) return;
    const auto& t = tokens_[i];
    if (t.kind != TokenKind::kIdentifier) return;
    // Unordered containers are banned tree-wide under src/: their iteration
    // order is implementation-defined, and anything that reaches common/json
    // serialization or the FNV-1a cache hash would fork the content-addressed
    // cache between builds.
    if (any_of_ids(kUnorderedContainers, t.text)) {
      add(t.line, "determinism",
          "unordered container in a result-producing layer: iteration order "
          "would leak into common/json serialization or the cache hash and "
          "fork the content-addressed cache; use std::map / a sorted vector, "
          "or lint-ok with a proof the order never escapes");
      return;
    }
    // The telemetry layer owns the clocks; the service layer legitimately
    // waits on sockets, polls and condition-variable deadlines.
    if (ctx_.in_clock_exempt) return;
    const char* const clock_msg =
        "wall-clock/thread-identity read in a result-producing layer breaks "
        "run-to-run determinism; timing belongs to src/runtime/ telemetry "
        "(RunManifest), src/service/ I/O deadlines or src/fleet/ claim "
        "leases, results must depend only on seeds and specs";
    if (t.text == "chrono" || t.text == "this_thread" || t.text == "rdtsc" ||
        t.text == "__rdtsc" || t.text == "__builtin_ia32_rdtsc") {
      add(t.line, "determinism", clock_msg);
      return;
    }
    if (any_of_ids(kWallClockCalls, t.text) && punct_at(i + 1, "(")) {
      const bool std_call = i >= 2 && id_at(i - 2, "std") && punct_at(i - 1, "::");
      if (std_call || (!member_access_before(i) && !scope_before(i) && call_context(i))) {
        add(t.line, "determinism", clock_msg);
      }
    }
  }

  const FileContext& ctx_;
  const std::vector<Token>& tokens_;
  const std::vector<std::string>& code_lines_;
  std::vector<Finding>& findings_;
  std::vector<std::set<std::string>> reserved_scopes_;
};

// nodiscard-accessor stays line-shaped: it matches a declaration form, and the
// lexer's comment/string-blanked code lines give it clean input.
void scan_nodiscard(const FileContext& ctx, const LexedFile& lexed,
                    std::vector<Finding>& findings) {
  if (!ctx.in_src || !ctx.is_header) return;
  std::string prev_line;
  for (std::size_t n = 0; n < lexed.code_lines.size(); ++n) {
    const std::string& line = lexed.code_lines[n];
    if (line.find("operator") == std::string::npos &&
        std::regex_search(line, const_accessor_re()) &&
        line.find("[[nodiscard]]") == std::string::npos &&
        prev_line.find("[[nodiscard]]") == std::string::npos) {
      findings.push_back({ctx.file, n + 1, "nodiscard-accessor",
                          "const measurement accessor without [[nodiscard]]; a discarded "
                          "measurement is always a bug"});
    }
    prev_line = line;
  }
}

void scan_layering(const FileContext& ctx, const LexedFile& lexed,
                   std::vector<Finding>& findings, std::vector<IncludeEdge>& edges) {
  const auto closure = dag_closure(default_layer_dag());
  const std::string from = !ctx.layer.empty() ? ctx.layer : root_of(ctx.file);
  const bool enforce = !ctx.layer.empty() && closure.has_value();
  for (const auto& inc : lexed.includes) {
    if (inc.angled) continue;  // system headers are not part of the DAG
    const std::size_t slash = inc.path.find('/');
    if (slash == std::string::npos) continue;  // same-directory include
    const std::string to = inc.path.substr(0, slash);
    const auto& layers = known_layers();
    if (std::find(layers.begin(), layers.end(), to) == layers.end()) continue;
    bool allowed = true;
    if (enforce && to != ctx.layer) {
      const auto deps = closure->find(ctx.layer);
      allowed = deps != closure->end() && deps->second.count(to) > 0;
      if (!allowed) {
        findings.push_back(
            {ctx.file, inc.line, "include-layering",
             "#include \"" + inc.path + "\" violates the layer DAG: '" + ctx.layer +
                 "' may not depend on '" + to +
                 "' (see default_layer_dag in tools/lint_physics); invert the "
                 "dependency, move the file, or lint-ok with the reason"});
      }
    }
    if (!from.empty()) {
      auto found = std::find_if(edges.begin(), edges.end(), [&](const IncludeEdge& e) {
        return e.from == from && e.to == to;
      });
      if (found == edges.end()) {
        edges.push_back({from, to, 1, allowed});
      } else {
        ++found->count;
        found->allowed = found->allowed && allowed;
      }
    }
  }
}

}  // namespace

FileReport lint_file_report(const fs::path& path, const std::string& contents) {
  FileReport report;
  const FileContext ctx = make_context(path);
  const LexedFile lexed = lex(contents);

  // Candidates: every rule fires regardless of suppressions, so that the
  // hygiene pass can tell a live suppression from a stale one.
  std::vector<Finding> candidates;
  TokenScanner(ctx, lexed, candidates).scan();
  scan_nodiscard(ctx, lexed, candidates);
  scan_layering(ctx, lexed, candidates, report.edges);

  std::set<std::size_t> suppressed_lines;
  for (const auto& s : lexed.suppressions) suppressed_lines.insert(s.line);

  for (auto& finding : candidates) {
    if (suppressed_lines.count(finding.line) == 0) {
      report.findings.push_back(std::move(finding));
    }
  }
  for (const auto& s : lexed.suppressions) {
    if (!s.has_reason) {
      report.findings.push_back({ctx.file, s.line, "lint-ok-hygiene",
                                 "lint-ok without a reason; the reason is mandatory and "
                                 "greppable (write `// lint-ok: <why this is sound>`)"});
      continue;
    }
    const bool live = std::any_of(candidates.begin(), candidates.end(),
                                  [&](const Finding& f) { return f.line == s.line; });
    if (!live) {
      report.findings.push_back({ctx.file, s.line, "lint-ok-hygiene",
                                 "stale lint-ok: no rule fires on this line any more; "
                                 "delete the suppression so the allowlist cannot rot"});
    }
  }
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const Finding& a, const Finding& b) { return a.line < b.line; });
  return report;
}

std::vector<Finding> lint_file(const fs::path& path, const std::string& contents) {
  return lint_file_report(path, contents).findings;
}

std::vector<Finding> lint_tree(const fs::path& repo_root, std::size_t* files_scanned,
                               IncludeGraph* graph) {
  std::vector<Finding> findings;
  std::map<std::pair<std::string, std::string>, IncludeEdge> merged;
  std::size_t scanned = 0;
  static constexpr std::array<std::string_view, 5> kRoots{"src", "tests", "bench", "examples",
                                                          "tools"};
  for (const auto root : kRoots) {
    const fs::path dir = repo_root / root;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& path = entry.path();
      const auto ext = path.extension();
      if (ext != ".cpp" && ext != ".hpp") continue;
      // The linter's own sources and fixtures spell out the banned tokens.
      if (path_contains(path, "lint_physics")) continue;
      if (path_contains(path, "/build")) continue;
      std::ifstream in(path);
      std::ostringstream buf;
      buf << in.rdbuf();
      ++scanned;
      auto report = lint_file_report(path, buf.str());
      findings.insert(findings.end(), report.findings.begin(), report.findings.end());
      for (const auto& edge : report.edges) {
        auto& slot = merged[{edge.from, edge.to}];
        if (slot.count == 0) {
          slot = edge;
        } else {
          slot.count += edge.count;
          slot.allowed = slot.allowed && edge.allowed;
        }
      }
    }
  }
  if (files_scanned != nullptr) *files_scanned = scanned;
  if (graph != nullptr) {
    graph->edges.clear();
    for (auto& [key, edge] : merged) graph->edges.push_back(std::move(edge));
  }
  return findings;
}

std::string to_string(const Finding& finding) {
  std::ostringstream out;
  out << finding.file << ":" << finding.line << ": [" << finding.rule << "] " << finding.message;
  return out.str();
}

}  // namespace adc::lint
