/// Known-bad fixture for the nodiscard-accessor rule: const measurement
/// accessors without [[nodiscard]]. Never compiled; scanned by the self-test.
#pragma once

namespace adc::fixture {

class BadMeter {
 public:
  double enob() const { return enob_; }              // nodiscard-accessor finding
  double noise_power() const { return noise_; }      // nodiscard-accessor finding
  [[nodiscard]] double snr_db() const { return snr_; }  // fine

 private:
  double enob_ = 0.0;
  double noise_ = 0.0;
  double snr_ = 0.0;
};

}  // namespace adc::fixture
