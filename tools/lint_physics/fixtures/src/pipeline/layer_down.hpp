// Companion to fixtures/src/analog/bad_layer_up.hpp: the legal half of the
// directory cycle. pipeline -> analog is in the DAG, so this file alone is
// clean; the cycle is broken (and reported) at the upward analog -> pipeline
// edge in bad_layer_up.hpp. Never compiled; scanned by the self-test.
#pragma once

#include "analog/bad_layer_up.hpp"  // fine: pipeline -> analog is in the DAG

namespace fixture {

inline double stage_uses_device(double v) { return residue_shortcut(v) * 0.5; }

}  // namespace fixture
