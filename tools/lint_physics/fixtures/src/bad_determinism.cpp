// Known-bad fixture for the determinism rule: wall-clock reads and unordered
// containers in a result-producing layer (any src/ path outside src/runtime/).
// Never compiled; scanned by the self-test, which pins the finding counts.
#include <chrono>         // finding: chrono in a result-producing layer
#include <unordered_map>  // finding: unordered container

namespace fixture {

double wall_seconds() {
  const auto now = std::chrono::steady_clock::now();  // finding: chrono
  return static_cast<double>(now.time_since_epoch().count());
}

long ticks() {
  return clock();  // finding: wall-clock read
}

// Iterating an unordered container and serializing the result would fork the
// content-addressed cache: the element order is implementation-defined.
double sum_settings(const std::unordered_map<int, double>& settings) {  // finding
  double sum = 0.0;
  for (const auto& [key, value] : settings) sum += value;
  return sum;
}

}  // namespace fixture
