// Known-bad fixture for the lint-ok-hygiene rule: suppressions that no longer
// suppress anything, and a suppression without the mandatory reason. Never
// compiled; scanned by the self-test.
namespace fixture {

// No rule fires on this line, so the suppression is rot.
inline int answer() { return 42; }  // lint-ok: nothing to suppress here

// Reasonless suppressions defeat the greppable-allowlist policy.
inline double half() { return 0.5; }  // lint-ok

}  // namespace fixture
