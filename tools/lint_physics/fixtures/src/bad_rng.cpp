/// Known-bad fixture for the rng-facade rule: raw RNG and wall-clock seeding
/// outside src/common/random.*. Never compiled; scanned by the self-test.
#include <cstdlib>
#include <ctime>
#include <random>

namespace adc::fixture {

double unreproducible_noise() {
  std::srand(static_cast<unsigned>(std::time(nullptr)));  // rng-facade finding
  return static_cast<double>(std::rand());                // rng-facade finding
}

std::uint64_t hardware_seed() {
  std::random_device rd;  // rng-facade: nondeterministic seed source
  return rd();
}

}  // namespace adc::fixture
