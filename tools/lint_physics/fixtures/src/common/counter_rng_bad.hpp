// Known-bad fixture for the profile-math rule's draw-pipeline scope: the
// fast-profile draw pipeline (common/counter_rng*, common/noise_plane) pins
// division-free draw math since fast contract v2, so direct <cmath>
// transcendentals AND std::sqrt are findings here. Never compiled; test
// data only.
#include <cmath>

namespace fixture {

double radius_from_uniform(double u1) {
  return std::sqrt(-2.0 * std::log(u1));  // two findings: sqrt and log
}

double angle_cos(double u2) {
  return std::cos(6.283185307179586 * u2);  // finding: bypasses sincos_fast
}

double norm(double a, double b) {
  return std::hypot(a, b);  // finding: hidden sqrt
}

// abs/fma stay single instructions with no divider-port traffic: no finding.
double folded(double x) { return std::abs(std::fma(x, x, 1.0)); }

// The escape hatch still works for sites outside the bulk draw loops.
double diagnostic_moment(double m2) {
  return std::sqrt(m2);  // lint-ok: test-only moment check, not a draw path
}

}  // namespace fixture
