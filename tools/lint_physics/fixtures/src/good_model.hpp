/// Known-good fixture: follows every lint_physics convention.
/// Referenced by tests/test_lint_physics.cpp; never compiled into the build.
#pragma once

#include "common/random.hpp"
#include "common/units.hpp"

namespace adc::fixture {

using namespace adc::common::literals;

/// Config struct with unit-literal defaults (si-literal rule).
struct GoodSpec {
  double sampling_cap = 550.0_fF;
  double conversion_rate = 110.0_MHz;
  double bias_current = 150.0_uA;
};

/// Model whose accessors carry [[nodiscard]] and whose noise flows through
/// the Rng facade (rng-facade, nodiscard-accessor rules).
class GoodModel {
 public:
  explicit GoodModel(const GoodSpec& spec) : spec_(spec) {}

  [[nodiscard]] double sampling_cap() const { return spec_.sampling_cap; }
  [[nodiscard]] const GoodSpec& spec() const { return spec_; }

  double noisy_sample(adc::common::Rng& rng) { return rng.gaussian(1.0); }

 private:
  GoodSpec spec_;
};

// Mentioning std::rand in a comment is fine: rules see code, not prose.
// A *live* suppression keeps working too — si-literal fires here and the
// reasoned lint-ok silences it (a stale lint-ok would itself be a finding):
inline double vendor_cap_interop = 3e-15;  // lint-ok: mirrors vendor header verbatim

}  // namespace adc::fixture
