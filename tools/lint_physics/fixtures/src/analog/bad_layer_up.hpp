// Known-bad fixture for the include-layering rule: an analog-layer header
// reaching *up* the DAG into pipeline. Together with
// fixtures/src/pipeline/layer_down.hpp (which legally includes this file)
// it forms a directory-level cycle; the linter reports the upward edge.
// Never compiled; scanned by the self-test.
#pragma once

#include "common/units.hpp"   // fine: analog -> common is in the DAG
#include "pipeline/stage.hpp" // finding: analog may not depend on pipeline

namespace fixture {

// A device model has no business knowing the stage that contains it.
inline double residue_shortcut(double v) { return 2.0 * v; }

}  // namespace fixture
