// Known-bad fixture for the hot-path-alloc rule: heap traffic inside a
// per-sample model layer (the path contains src/analog/). Never compiled;
// scanned by the self-test, which pins the exact finding count.
#include <cstdlib>
#include <vector>

namespace fixture {

// Growth with no reserve anywhere in scope: a per-sample push would malloc
// mid-conversion the first time capacity runs out.
void grow(std::vector<double>& v, double x) {
  v.push_back(x);  // finding: unreserved growth
}

double* leak(std::size_t n) {
  return new double[n];  // finding: raw heap
}

void* raw(std::size_t n) {
  return std::malloc(n);  // finding: raw heap
}

// An allocation hidden behind a macro is still visible to the token stream —
// the macro body is lexed like any other code.
#define APPEND_SAMPLE(vec, x) (vec).push_back(x)  // finding: unreserved growth

// The batch fill pattern: one reserve at the batch boundary, then per-sample
// pushes. This is exactly PR 3's allocation discipline — no finding.
void batch_fill(std::vector<double>& out, std::size_t n) {
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<double>(i));
  }
}

// The documented escape hatch for construction-time table building.
void build_table(std::vector<double>& table) {
  table.push_back(1.0);  // lint-ok: construction-time table build, not per-sample
}

}  // namespace fixture
