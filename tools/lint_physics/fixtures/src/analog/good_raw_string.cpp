// Known-good fixture: every banned spelling below sits inside a comment,
// string, or raw string literal, where the token-aware lexer must not see it.
// The old line-regex scanner desynchronized on raw strings; this file pins
// the fix. Path places it in src/analog/, the strictest layer. Never compiled.

namespace fixture {

// Prose mentions that would all fire if rules saw comments:
//   std::rand() printf("x") std::exp(x) v.push_back(x) new double[4]
//   std::chrono::steady_clock::now() std::unordered_map<int, int>
/* #include "pipeline/stage.hpp" inside a block comment is not an include */

inline const char* doc() {
  return R"(raw strings hide nothing from the old scanner:
    std::rand() seeded with time(nullptr),
    printf("%d"), malloc(64), codes.push_back(c),
    std::chrono and std::unordered_map<int, int> — all just prose here,
    even with a tricky quote " and a )delimiter lookalike)";
}

inline const char* escaped() { return "std::exp(-t) \"quoted\" new int[2]"; }

inline char marker() { return '"'; }

}  // namespace fixture
