// Known-bad fixture for the profile-math rule: per-sample model code calling
// <cmath> transcendentals directly instead of the profile-dispatched
// adc::common::math::*_p kernels. Never compiled; test data only.
#include <cmath>

namespace fixture {

double settle_tail(double mag, double t_over_tau) {
  return mag * std::exp(-t_over_tau);  // finding: bypasses exp_p dispatch
}

double junction_cap(double cj0, double u, double phi, double m) {
  return cj0 / std::pow(1.0 + u / phi, m);  // finding: bypasses pow_p dispatch
}

double softplus(double vov, double s) {
  return s * std::log1p(std::exp(vov / s));  // two findings: log1p and exp
}

// sqrt and abs are single instructions, not libm table walks: no finding.
double rms(double a, double b) { return std::sqrt(std::abs(a * b)); }

// The documented escape hatch for construction-time/cached evaluations.
double cached_recharge(double period, double tau) {
  return std::exp(-period / tau);  // lint-ok: cached on period change, not per-sample
}

}  // namespace fixture
