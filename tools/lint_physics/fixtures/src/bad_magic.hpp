/// Known-bad fixture for the si-literal rule: raw SI scale factors in config
/// defaults where units.hpp literals exist. Never compiled; scanned by the
/// self-test.
#pragma once

namespace adc::fixture {

struct BadSpec {
  double sampling_cap = 550e-15;    // si-literal: should be 550.0_fF
  double conversion_rate = 110e6;   // si-literal: should be 110.0_MHz
  double jitter_rms = 0.45e-12;     // si-literal: should be 0.45_ps
};

}  // namespace adc::fixture
