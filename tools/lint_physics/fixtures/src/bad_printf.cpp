/// Known-bad fixture for the no-printf rule: direct console output from a
/// src/ library. Never compiled; scanned by the self-test.
#include <cstdio>

namespace adc::fixture {

void report_enob(double enob) {
  std::printf("ENOB = %.2f bits\n", enob);  // no-printf finding
}

}  // namespace adc::fixture
