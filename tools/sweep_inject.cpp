#include <cstdio>
#include "pipeline/design.hpp"
#include "testbench/dynamic_test.hpp"
int main() {
  for (double soft : {0.03, 0.05, 0.08, 0.12}) {
    for (double frac : {0.02, 0.04, 0.06, 0.09}) {
      auto cfg = adc::pipeline::nominal_design();
      cfg.input_switch.injection_softening = soft;
      cfg.input_switch.injection_fraction = frac;
      adc::pipeline::PipelineAdc a(cfg);
      adc::testbench::DynamicTestOptions o;
      auto r = adc::testbench::run_dynamic_test(a, o);
      std::printf("soft %.2f frac %.2f : SNR %6.2f SNDR %6.2f SFDR %6.2f THD %7.2f spur HD%d\n",
                  soft, frac, r.metrics.snr_db, r.metrics.sndr_db, r.metrics.sfdr_db,
                  r.metrics.thd_db, r.metrics.spur_harmonic_order);
    }
  }
  return 0;
}
