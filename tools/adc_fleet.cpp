/// \file adc_fleet.cpp
/// CLI front-end of the fleet engine (src/fleet/): sharded multi-process
/// sweeps over a shared content-addressed cache.
///
///   adc_fleet run <spec.json> --workers N [--cache-dir D] [--report-dir D]
///                             [--lease-ms N] [--poll-ms N] [--threads N]
///                             [--max-jobs N] [--no-scavenge]
///                             [--min-hit-rate F]
///       fork N local workers (shards 0..N-1), wait for them, merge.
///   adc_fleet worker <spec.json> --shard k/W [--cache-dir D] [--owner ID]
///                             [--lease-ms N] [--poll-ms N] [--threads N]
///                             [--max-jobs N] [--no-scavenge] [--quiet]
///       run one worker process (one machine of a multi-machine fleet).
///   adc_fleet merge <spec.json> --shards W [--cache-dir D] [--report-dir D]
///                             [--min-hit-rate F]
///       merge a finished fleet's results into the single report.
///   adc_fleet status <spec.json> [--cache-dir D] [--lease-ms N]
///       show grid completion and outstanding claims (live vs stale).
///
/// The merged report is byte-identical to `adc_scenario run` of the same
/// spec (docs/FLEET.md). Exit status: 0 on success, 1 on failure (worker
/// died, merge incomplete, --min-hit-rate unmet), 2 on usage errors.
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "fleet/manifest.hpp"
#include "fleet/merge.hpp"
#include "fleet/plan.hpp"
#include "fleet/worker.hpp"
#include "scenario/spec.hpp"

namespace {

namespace json = adc::common::json;

void print_usage() {
  std::printf(
      "usage: adc_fleet <command> <spec.json> ...\n"
      "  run     --workers N       fork N local workers, wait, merge\n"
      "  worker  --shard k/W       run one worker (shard k of W)\n"
      "  merge   --shards W        merge manifests + cache into one report\n"
      "  status                    show completion and outstanding claims\n"
      "common options:\n"
      "  --cache-dir D     shared cache root (default: ADC_SCENARIO_CACHE_DIR\n"
      "                    or .adc-cache)\n"
      "  --report-dir D    run/merge: write <name>_report.{json,csv} into D\n"
      "  --lease-ms N      claim lease; staler claims are stolen (default 10000)\n"
      "  --poll-ms N       sleep between probes while blocked (default 50)\n"
      "  --threads N       worker threads per process (default: runtime)\n"
      "  --max-jobs N      worker computes at most N jobs (budget)\n"
      "  --no-scavenge     don't sweep other shards' leftovers\n"
      "  --owner ID        claim owner id (default <host>:<pid>)\n"
      "  --min-hit-rate F  run/merge: fail when any worker's warm-hit\n"
      "                    fraction is below F (resume health gate)\n"
      "  --quiet           worker: no per-round progress lines\n");
}

struct CliError {
  int exit_code;
};

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "adc_fleet: %s\n", message.c_str());
  print_usage();
  throw CliError{2};
}

std::string take_value(const std::vector<std::string>& args, std::size_t& i) {
  if (i + 1 >= args.size()) usage_error("missing value for " + args[i]);
  return args[++i];
}

/// Shared option bag for every subcommand; each ignores what it doesn't use.
struct FleetCli {
  std::string spec_path;
  std::string cache_dir;
  std::string report_dir;
  unsigned workers = 0;
  unsigned shard = 0;
  unsigned shards = 0;
  bool shard_given = false;
  std::string owner;
  std::uint64_t lease_ms = 10000;
  std::uint64_t poll_ms = 50;
  unsigned threads = 0;
  std::size_t max_jobs = 0;
  bool scavenge = true;
  double min_hit_rate = -1.0;
  bool quiet = false;
};

FleetCli parse_cli(const std::vector<std::string>& args) {
  FleetCli cli;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--cache-dir") {
      cli.cache_dir = take_value(args, i);
    } else if (arg == "--report-dir") {
      cli.report_dir = take_value(args, i);
    } else if (arg == "--workers") {
      cli.workers = static_cast<unsigned>(
          std::strtoul(take_value(args, i).c_str(), nullptr, 10));
    } else if (arg == "--shards") {
      cli.shards = static_cast<unsigned>(
          std::strtoul(take_value(args, i).c_str(), nullptr, 10));
    } else if (arg == "--shard") {
      const std::string value = take_value(args, i);
      const auto slash = value.find('/');
      if (slash == std::string::npos) usage_error("--shard expects k/W, got " + value);
      cli.shard = static_cast<unsigned>(
          std::strtoul(value.substr(0, slash).c_str(), nullptr, 10));
      cli.shards = static_cast<unsigned>(
          std::strtoul(value.substr(slash + 1).c_str(), nullptr, 10));
      cli.shard_given = true;
    } else if (arg == "--owner") {
      cli.owner = take_value(args, i);
    } else if (arg == "--lease-ms") {
      cli.lease_ms = std::strtoull(take_value(args, i).c_str(), nullptr, 10);
    } else if (arg == "--poll-ms") {
      cli.poll_ms = std::strtoull(take_value(args, i).c_str(), nullptr, 10);
    } else if (arg == "--threads") {
      cli.threads = static_cast<unsigned>(
          std::strtoul(take_value(args, i).c_str(), nullptr, 10));
    } else if (arg == "--max-jobs") {
      cli.max_jobs = std::strtoull(take_value(args, i).c_str(), nullptr, 10);
    } else if (arg == "--no-scavenge") {
      cli.scavenge = false;
    } else if (arg == "--min-hit-rate") {
      cli.min_hit_rate = std::strtod(take_value(args, i).c_str(), nullptr);
    } else if (arg == "--quiet") {
      cli.quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error("unknown option " + arg);
    } else if (cli.spec_path.empty()) {
      cli.spec_path = arg;
    } else {
      usage_error("expected exactly one spec file");
    }
  }
  if (cli.spec_path.empty()) usage_error("no spec file given");
  return cli;
}

adc::fleet::WorkerOptions worker_options(const FleetCli& cli) {
  adc::fleet::WorkerOptions options;
  options.cache_dir = cli.cache_dir;
  options.shards = cli.shards;
  options.shard = cli.shard;
  options.owner = cli.owner;
  options.lease_ms = cli.lease_ms;
  options.poll_ms = cli.poll_ms;
  options.threads = cli.threads;
  options.max_jobs = cli.max_jobs;
  options.scavenge = cli.scavenge;
  return options;
}

/// Per-round progress printer with a simple throughput-based ETA.
class ProgressPrinter {
 public:
  ProgressPrinter(unsigned shard, unsigned shards)
      : shard_(shard), shards_(shards),
        start_(std::chrono::steady_clock::now()) {}

  void operator()(const adc::fleet::WorkerProgress& p) const {
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
    std::string eta = "--";
    const std::size_t remaining = p.total - p.done;
    if (p.computed > 0 && remaining > 0 && elapsed > 0) {
      const double per_job = static_cast<double>(elapsed) /
                             static_cast<double>(p.computed);
      eta = std::to_string(
                static_cast<long long>(per_job * static_cast<double>(remaining) /
                                       1000.0)) +
            "s";
    }
    std::fprintf(stderr,
                 "shard %u/%u%s: %zu/%zu done (%zu hit, %zu computed, %zu "
                 "elsewhere) eta %s\n",
                 shard_, shards_, p.scavenging ? " [scavenge]" : "", p.done,
                 p.total, p.cache_hits, p.computed, p.elsewhere, eta.c_str());
  }

 private:
  unsigned shard_;
  unsigned shards_;
  std::chrono::steady_clock::time_point start_;
};

void print_worker_summary(const adc::fleet::WorkerResult& result) {
  const auto& m = result.manifest;
  std::printf(
      "shard %u/%u (%s): %zu shard jobs, %zu grid hits, %zu computed "
      "(%zu scavenged), %zu elsewhere, %zu skipped, %llu pool jobs%s\n",
      m.shard, m.shards, m.owner.c_str(), m.shard_jobs, m.cache_hits, m.computed,
      m.scavenged, m.elsewhere, m.skipped,
      static_cast<unsigned long long>(m.pool_jobs),
      m.complete ? "" : " [incomplete]");
  std::printf("  manifest: %s\n", result.manifest_path.c_str());
}

int check_hit_rate(double min_hit_rate, const adc::fleet::MergeResult& merged) {
  if (min_hit_rate >= 0.0 && merged.min_hit_rate < min_hit_rate) {
    std::fprintf(stderr,
                 "adc_fleet: worker warm-hit rate %.3f below required %.3f\n",
                 merged.min_hit_rate, min_hit_rate);
    return 1;
  }
  return 0;
}

void print_merge_summary(const adc::fleet::MergeResult& merged,
                         const std::string& scenario) {
  std::printf("fleet %s: %zu jobs merged from %zu shard manifests, min warm-hit "
              "rate %.3f\n",
              scenario.c_str(), merged.jobs_total, merged.manifests.size(),
              merged.min_hit_rate);
  if (!merged.report_json_path.empty()) {
    std::printf("  report: %s\n", merged.report_json_path.c_str());
  }
  std::printf("  fleet manifest: %s\n", merged.fleet_manifest_path.c_str());
  if (const auto* summary = merged.report.find("summary")) {
    std::printf("  summary: %s\n", json::dump_compact(*summary).c_str());
  }
}

int worker_command(const FleetCli& cli) {
  if (!cli.shard_given) usage_error("worker: --shard k/W is required");
  const auto spec = adc::scenario::load_spec_file(cli.spec_path);
  auto options = worker_options(cli);
  ProgressPrinter printer(cli.shard, cli.shards);
  if (!cli.quiet) options.progress = printer;
  const auto result = adc::fleet::run_worker(spec, options);
  print_worker_summary(result);
  return result.manifest.complete || cli.max_jobs != 0 ? 0 : 1;
}

int run_command(const FleetCli& cli) {
  if (cli.workers == 0) usage_error("run: --workers N (N >= 1) is required");
  const auto spec = adc::scenario::load_spec_file(cli.spec_path);

  // Fork one child per shard. This happens before any thread is created in
  // this process (no pool, no heartbeat), so fork() is safe; each child
  // builds its own pool after the fork.
  std::vector<pid_t> children;
  children.reserve(cli.workers);
  for (unsigned k = 0; k < cli.workers; ++k) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "adc_fleet: fork failed for shard %u\n", k);
      for (const pid_t child : children) ::kill(child, SIGTERM);
      return 1;
    }
    if (pid == 0) {
      // Child: run the worker and exit without unwinding into the parent's
      // CLI state.
      int code = 1;
      try {
        auto options = worker_options(cli);
        options.shards = cli.workers;
        options.shard = k;
        ProgressPrinter printer(k, cli.workers);
        if (!cli.quiet) options.progress = printer;
        const auto result = adc::fleet::run_worker(spec, options);
        print_worker_summary(result);
        code = result.manifest.complete ? 0 : 1;
      } catch (const adc::common::AdcError& e) {
        std::fprintf(stderr, "adc_fleet worker %u: %s\n", k, e.what());
      }
      std::exit(code);
    }
    children.push_back(pid);
  }

  bool workers_ok = true;
  for (unsigned k = 0; k < cli.workers; ++k) {
    int status = 0;
    if (::waitpid(children[k], &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "adc_fleet: worker for shard %u failed\n", k);
      workers_ok = false;
    }
  }
  if (!workers_ok && cli.max_jobs == 0) return 1;

  adc::fleet::MergeOptions merge;
  merge.cache_dir = cli.cache_dir;
  merge.report_dir = cli.report_dir;
  merge.shards = cli.workers;
  const auto merged = adc::fleet::merge_fleet(spec, merge);
  print_merge_summary(merged, spec.name);
  return check_hit_rate(cli.min_hit_rate, merged);
}

int merge_command(const FleetCli& cli) {
  if (cli.shards == 0) usage_error("merge: --shards W is required");
  const auto spec = adc::scenario::load_spec_file(cli.spec_path);
  adc::fleet::MergeOptions merge;
  merge.cache_dir = cli.cache_dir;
  merge.report_dir = cli.report_dir;
  merge.shards = cli.shards;
  const auto merged = adc::fleet::merge_fleet(spec, merge);
  print_merge_summary(merged, spec.name);
  return check_hit_rate(cli.min_hit_rate, merged);
}

int status_command(const FleetCli& cli) {
  const auto spec = adc::scenario::load_spec_file(cli.spec_path);
  const auto status = adc::fleet::fleet_status(spec, cli.cache_dir);
  std::printf("fleet %s: %zu/%zu jobs cached, %zu outstanding claims\n",
              spec.name.c_str(), status.cached, status.jobs_total,
              status.claims.size());
  const std::uint64_t now = adc::fleet::wall_clock_ms();
  for (const auto& claim : status.claims) {
    const std::uint64_t age =
        now >= claim.info.heartbeat_ms ? now - claim.info.heartbeat_ms : 0;
    const bool stale = age >= cli.lease_ms;
    std::printf("  %s owner=%s heartbeat_age=%llums%s\n", claim.hash.c_str(),
                claim.info.owner.empty() ? "(corrupt)" : claim.info.owner.c_str(),
                static_cast<unsigned long long>(age), stale ? " [stale]" : "");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty()) usage_error("no command given");
    const std::string command = args[0];
    if (command == "--help" || command == "help") {
      print_usage();
      return 0;
    }
    const FleetCli cli = parse_cli({args.begin() + 1, args.end()});
    if (command == "run") return run_command(cli);
    if (command == "worker") return worker_command(cli);
    if (command == "merge") return merge_command(cli);
    if (command == "status") return status_command(cli);
    usage_error("unknown command " + command);
  } catch (const CliError& e) {
    return e.exit_code;
  } catch (const adc::common::AdcError& e) {
    std::fprintf(stderr, "adc_fleet: %s\n", e.what());
    return 1;
  }
}
