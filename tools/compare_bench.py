#!/usr/bin/env python3
"""Compare two google-benchmark JSON result files and flag regressions.

Usage:
    tools/compare_bench.py BASELINE.json CURRENT.json [--threshold 0.15]

Matches benchmarks by name and compares per-iteration real time (the
benchmark library's primary measurement; items_per_second is derived from
it). A benchmark regresses when its current time exceeds the baseline by
more than the threshold (default 15 %, chosen above the observed run-to-run
noise of the CI runners so the report stays quiet on healthy changes).

Exit status: 0 when nothing regressed, 1 when at least one benchmark did,
2 on malformed input. CI wires this as a *non-blocking* report: the job
prints the table and the verdict but a regression does not fail the build —
benchmark machines are shared and noisy, so a human reads the report before
acting on it.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_benchmarks(path: str) -> dict[str, dict]:
    """Map benchmark name -> entry, keeping only real iteration runs."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"compare_bench: cannot read {path}: {err}")
    out: dict[str, dict] = {}
    for entry in doc.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev of repetitions) would double-count.
        if entry.get("run_type", "iteration") != "iteration":
            continue
        name = entry.get("name")
        if name and "real_time" in entry:
            out[name] = entry
    return out


def fmt_time(ns: float) -> str:
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3g} {unit}"
    return f"{ns:.3g} ns"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="google-benchmark JSON of the base revision")
    parser.add_argument("current", help="google-benchmark JSON of the candidate")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="relative slowdown that counts as a regression (default 0.15)",
    )
    args = parser.parse_args()

    base = load_benchmarks(args.baseline)
    curr = load_benchmarks(args.current)
    if not base or not curr:
        print("compare_bench: no iteration benchmarks found in one of the inputs")
        return 2

    common = [name for name in base if name in curr]
    if not common:
        print("compare_bench: no benchmarks in common")
        return 2

    width = max(len(n) for n in common)
    regressions = []
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}  {'delta':>8}")
    for name in common:
        t_base = base[name]["real_time"]
        t_curr = curr[name]["real_time"]
        delta = t_curr / t_base - 1.0 if t_base > 0 else float("inf")
        mark = ""
        if delta > args.threshold:
            regressions.append((name, delta))
            mark = "  <-- REGRESSION"
        print(
            f"{name:<{width}}  {fmt_time(t_base):>10}  {fmt_time(t_curr):>10}"
            f"  {delta:>+7.1%}{mark}"
        )

    only_base = sorted(set(base) - set(curr))
    only_curr = sorted(set(curr) - set(base))
    if only_base:
        print(f"\nonly in baseline: {', '.join(only_base)}")
    if only_curr:
        print(f"only in current:  {', '.join(only_curr)}")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) slower than baseline by >"
              f" {args.threshold:.0%}:")
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}")
        return 1
    print(f"\nno regression beyond {args.threshold:.0%} on {len(common)} benchmarks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
