#!/usr/bin/env python3
"""Compare two google-benchmark JSON result files and flag regressions.

Usage:
    tools/compare_bench.py BASELINE.json CURRENT.json [--threshold 0.15] [--json]

Matches benchmarks by name and compares per-iteration real time (the
benchmark library's primary measurement; items_per_second is derived from
it). A benchmark regresses when its current time exceeds the baseline by
more than the threshold (default 15 %, chosen above the observed run-to-run
noise of the CI runners so the report stays quiet on healthy changes).

A missing, unreadable or empty *baseline* is not an error: the first run of
a new benchmark suite (or a freshly created CI cache) has nothing to compare
against, so the script says so and exits 0. A malformed *current* file is a
real failure of the run under test and exits 2.

With --json the verdict is emitted as a machine-readable document on stdout
(status, per-benchmark rows, threshold) for CI artifact upload; the human
table moves to stderr.

Besides the regression check, the report surfaces *scalar/batch throughput
pairs*: a benchmark named `<Base>Batch[/arg]` is paired with `<Base>[/arg]`
and their items_per_second ratio is printed (and emitted under
"throughput_pairs" with --json) for both files. This is the batch
conversion engine's speedup trajectory — CI uploads it with every bench
artifact. A `*Batch` benchmark with no scalar twin (or with no
items_per_second counter on either side) is reported as a warning rather
than silently dropped — a renamed scalar benchmark must not quietly erase
the pair from the trajectory.

With --markdown FILE the pairs are additionally appended to FILE as a
GitHub-flavored markdown table (plus the regression verdict); CI points
this at $GITHUB_STEP_SUMMARY so the speedup table renders on the pull
request's checks page.

Exit status: 0 when nothing regressed (or there was no baseline), 1 when at
least one benchmark did, 2 on malformed current input. CI wires this as a
*non-blocking* report: the job prints the table and the verdict but a
regression does not fail the build — benchmark machines are shared and
noisy, so a human reads the report before acting on it.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_benchmarks(path: str) -> dict[str, dict] | None:
    """Map benchmark name -> entry, keeping only real iteration runs.

    Returns None when the file is missing or not valid benchmark JSON.
    """
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError):
        return None
    out: dict[str, dict] = {}
    for entry in doc.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev of repetitions) would double-count.
        if entry.get("run_type", "iteration") != "iteration":
            continue
        name = entry.get("name")
        if name and "real_time" in entry:
            out[name] = entry
    return out


def throughput_pairs(benchmarks: dict[str, dict]) -> tuple[list[dict], list[str]]:
    """Pair `<Base>Batch[/arg]` rows with `<Base>[/arg]` by items_per_second.

    Returns (pairs, warnings). Each pair row carries the scalar and batch
    throughputs and their ratio (batch / scalar — the batch engine's
    aggregate speedup). A batch row that cannot be paired — no scalar twin,
    or items_per_second missing on either side — produces a warning string
    instead of vanishing: a renamed or counter-less scalar benchmark must
    not silently erase the pair from the speedup trajectory.
    """
    pairs = []
    warnings = []
    for name, entry in sorted(benchmarks.items()):
        head, _, arg = name.partition("/")
        if not head.endswith("Batch"):
            continue
        scalar_name = head[: -len("Batch")] + (f"/{arg}" if arg else "")
        scalar = benchmarks.get(scalar_name)
        if scalar is None:
            warnings.append(f"{name}: no scalar twin {scalar_name!r} — pair skipped")
            continue
        batch_ips = entry.get("items_per_second")
        scalar_ips = scalar.get("items_per_second")
        if not batch_ips or not scalar_ips:
            which = scalar_name if not scalar_ips else name
            warnings.append(f"{name}: {which!r} has no items_per_second — pair skipped")
            continue
        pairs.append(
            {
                "scalar": scalar_name,
                "batch": name,
                "scalar_items_per_second": scalar_ips,
                "batch_items_per_second": batch_ips,
                "ratio": batch_ips / scalar_ips,
            }
        )
    return pairs, warnings


def print_pairs(label: str, pairs: list[dict], warnings: list[str], report) -> None:
    if not pairs and not warnings:
        return
    print(f"\nscalar/batch throughput pairs ({label}):", file=report)
    if pairs:
        width = max(len(p["batch"]) for p in pairs)
        for p in pairs:
            print(
                f"  {p['batch']:<{width}}  {p['scalar_items_per_second'] / 1e6:8.2f} -> "
                f"{p['batch_items_per_second'] / 1e6:8.2f} M items/s   x{p['ratio']:.2f}",
                file=report,
            )
    for warning in warnings:
        print(f"  WARNING: {warning}", file=report)


def pairs_markdown(label: str, pairs: list[dict], warnings: list[str]) -> str:
    """Render one file's throughput pairs as a GitHub-flavored markdown table."""
    lines = [f"#### Scalar/batch throughput pairs ({label})", ""]
    if pairs:
        lines += [
            "| batch benchmark | scalar (M items/s) | batch (M items/s) | speedup |",
            "| --- | ---: | ---: | ---: |",
        ]
        for p in pairs:
            lines.append(
                f"| `{p['batch']}` | {p['scalar_items_per_second'] / 1e6:.2f} "
                f"| {p['batch_items_per_second'] / 1e6:.2f} | x{p['ratio']:.2f} |"
            )
    else:
        lines.append("_no scalar/batch pairs found_")
    for warning in warnings:
        lines.append(f"- :warning: {warning}")
    lines.append("")
    return "\n".join(lines)


def write_markdown(path: str, sections: list[str]) -> None:
    """Append the markdown report to `path` ($GITHUB_STEP_SUMMARY in CI)."""
    try:
        with open(path, "a", encoding="utf-8") as f:
            f.write("\n".join(sections) + "\n")
    except OSError as err:
        print(f"compare_bench: cannot write markdown report: {err}", file=sys.stderr)


def fmt_time(ns: float) -> str:
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3g} {unit}"
    return f"{ns:.3g} ns"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="google-benchmark JSON of the base revision")
    parser.add_argument("current", help="google-benchmark JSON of the candidate")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="relative slowdown that counts as a regression (default 0.15)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit a machine-readable verdict on stdout (table goes to stderr)",
    )
    parser.add_argument(
        "--markdown",
        metavar="FILE",
        help="append a markdown report (verdict + throughput-pair tables) to "
        "FILE — CI points this at $GITHUB_STEP_SUMMARY",
    )
    args = parser.parse_args()

    report = sys.stderr if args.as_json else sys.stdout

    def emit_json(document: dict) -> None:
        if args.as_json:
            json.dump(document, sys.stdout, indent=2)
            sys.stdout.write("\n")

    curr = load_benchmarks(args.current)
    if curr is None or not curr:
        print(f"compare_bench: no iteration benchmarks in {args.current}", file=sys.stderr)
        return 2

    curr_pairs, curr_pair_warnings = throughput_pairs(curr)

    base = load_benchmarks(args.baseline)
    if base is None or not base:
        reason = "missing or unreadable" if base is None else "empty"
        print(
            f"compare_bench: baseline {args.baseline} is {reason}; "
            "nothing to compare against (first run?) — skipping comparison",
            file=report,
        )
        print_pairs("current", curr_pairs, curr_pair_warnings, report)
        if args.markdown:
            write_markdown(
                args.markdown,
                [
                    "### Benchmark comparison",
                    "",
                    f"_baseline `{args.baseline}` is {reason} — comparison skipped_",
                    "",
                    pairs_markdown("current", curr_pairs, curr_pair_warnings),
                ],
            )
        emit_json(
            {
                "status": "no_baseline",
                "baseline": args.baseline,
                "current": args.current,
                "threshold": args.threshold,
                "benchmarks": [],
                "throughput_pairs": curr_pairs,
                "throughput_pair_warnings": curr_pair_warnings,
            }
        )
        return 0

    common = [name for name in base if name in curr]
    if not common:
        print("compare_bench: no benchmarks in common — skipping comparison", file=report)
        emit_json(
            {
                "status": "no_overlap",
                "baseline": args.baseline,
                "current": args.current,
                "threshold": args.threshold,
                "benchmarks": [],
                "only_in_baseline": sorted(base),
                "only_in_current": sorted(curr),
            }
        )
        return 0

    width = max(len(n) for n in common)
    regressions = []
    rows = []
    print(
        f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}  {'delta':>8}",
        file=report,
    )
    for name in common:
        t_base = base[name]["real_time"]
        t_curr = curr[name]["real_time"]
        delta = t_curr / t_base - 1.0 if t_base > 0 else float("inf")
        regressed = delta > args.threshold
        if regressed:
            regressions.append((name, delta))
        rows.append(
            {
                "name": name,
                "baseline_ns": t_base,
                "current_ns": t_curr,
                "delta": delta,
                "regression": regressed,
            }
        )
        mark = "  <-- REGRESSION" if regressed else ""
        print(
            f"{name:<{width}}  {fmt_time(t_base):>10}  {fmt_time(t_curr):>10}"
            f"  {delta:>+7.1%}{mark}",
            file=report,
        )

    only_base = sorted(set(base) - set(curr))
    only_curr = sorted(set(curr) - set(base))
    if only_base:
        print(f"\nonly in baseline: {', '.join(only_base)}", file=report)
    if only_curr:
        print(f"only in current:  {', '.join(only_curr)}", file=report)

    base_pairs, base_pair_warnings = throughput_pairs(base)
    print_pairs("baseline", base_pairs, base_pair_warnings, report)
    print_pairs("current", curr_pairs, curr_pair_warnings, report)

    if args.markdown:
        verdict = (
            f"**{len(regressions)} regression(s)** beyond {args.threshold:.0%}: "
            + ", ".join(f"`{name}` ({delta:+.1%})" for name, delta in regressions)
            if regressions
            else f"no regression beyond {args.threshold:.0%} on {len(common)} benchmarks"
        )
        write_markdown(
            args.markdown,
            [
                "### Benchmark comparison",
                "",
                verdict,
                "",
                pairs_markdown("baseline", base_pairs, base_pair_warnings),
                pairs_markdown("current", curr_pairs, curr_pair_warnings),
            ],
        )

    emit_json(
        {
            "status": "regression" if regressions else "ok",
            "baseline": args.baseline,
            "current": args.current,
            "threshold": args.threshold,
            "benchmarks": rows,
            "only_in_baseline": only_base,
            "only_in_current": only_curr,
            "baseline_throughput_pairs": base_pairs,
            "throughput_pairs": curr_pairs,
            "baseline_throughput_pair_warnings": base_pair_warnings,
            "throughput_pair_warnings": curr_pair_warnings,
        }
    )

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) slower than baseline by >"
            f" {args.threshold:.0%}:",
            file=report,
        )
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}", file=report)
        return 1
    print(
        f"\nno regression beyond {args.threshold:.0%} on {len(common)} benchmarks",
        file=report,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
