#include <cstdio>
#include "pipeline/design.hpp"
#include "testbench/dynamic_test.hpp"
#include "testbench/static_test.hpp"

using namespace adc;
using pipeline::NonIdealities;

static void run(const char* label, pipeline::AdcConfig cfg) {
  pipeline::PipelineAdc a(cfg);
  testbench::DynamicTestOptions o;
  o.target_fin_hz = 10e6;
  o.record_length = 1 << 13;
  auto r = testbench::run_dynamic_test(a, o);
  std::printf("%-28s SNR %6.2f  SNDR %6.2f  SFDR %6.2f  THD %7.2f  ENOB %5.2f\n",
              label, r.metrics.snr_db, r.metrics.sndr_db, r.metrics.sfdr_db,
              r.metrics.thd_db, r.metrics.enob);
}

int main() {
  auto base = pipeline::nominal_design();
  run("ALL ON", base);
  { auto c = base; c.enable = NonIdealities::all_off(); run("ALL OFF (ideal)", c); }

  auto off = NonIdealities::all_off();
  auto one = [&](const char* n, auto setter) {
    auto c = base; c.enable = off; setter(c.enable); run(n, c);
  };
  one("only thermal_noise", [](NonIdealities& e){ e.thermal_noise = true; });
  one("only jitter", [](NonIdealities& e){ e.aperture_jitter = true; });
  one("only cap_mismatch", [](NonIdealities& e){ e.capacitor_mismatch = true; });
  one("only comparators", [](NonIdealities& e){ e.comparator_imperfections = true; });
  one("only finite_gain", [](NonIdealities& e){ e.finite_opamp_gain = true; });
  one("only settling", [](NonIdealities& e){ e.incomplete_settling = true; });
  one("only tracking", [](NonIdealities& e){ e.tracking_nonlinearity = true; });
  one("only leakage", [](NonIdealities& e){ e.hold_leakage = true; });
  one("only reference", [](NonIdealities& e){ e.reference_imperfections = true; });
  one("only bias_ripple", [](NonIdealities& e){ e.bias_ripple = true; });

  // Static linearity at the nominal configuration (histogram, 1M samples).
  {
    pipeline::PipelineAdc a(base);
    testbench::HistogramTestOptions ho;
    ho.samples = 1u << 20;
    auto lin = testbench::run_histogram_test(a, ho);
    std::printf("\nstatic: DNL %+.2f/%+.2f LSB (paper +/-1.2)  INL %+.2f/%+.2f LSB (paper -1.5/+1)  missing=%zu\n",
                lin.dnl_min, lin.dnl_max, lin.inl_min, lin.inl_max, lin.missing_codes.size());
  }
  return 0;
}
