#include <cstdio>
#include "common/math_util.hpp"
#include "pipeline/design.hpp"
#include "power/power_model.hpp"
#include "testbench/sweep.hpp"
int main() {
  using namespace adc;
  auto base = pipeline::nominal_design();
  testbench::DynamicTestOptions o;

  std::printf("--- Fig5: vs conversion rate (fin<=10MHz) ---\n");
  std::vector<double> rates{2e6, 5e6, 10e6, 20e6, 40e6, 60e6, 80e6, 100e6, 110e6,
                            120e6, 130e6, 140e6, 150e6, 160e6, 180e6};
  auto pts = testbench::sweep_conversion_rate(base, rates, o);
  power::PowerModel pm(pipeline::nominal_power_spec());
  for (auto& p : pts) {
    pipeline::AdcConfig c = base; c.conversion_rate = p.x;
    pipeline::PipelineAdc a(c);
    std::printf("fcr %5.0f MS/s: SNR %6.2f SNDR %6.2f SFDR %6.2f  P=%6.1f mW\n",
                p.x/1e6, p.result.metrics.snr_db, p.result.metrics.sndr_db,
                p.result.metrics.sfdr_db, pm.estimate(a, p.x).total()*1e3);
  }

  std::printf("--- Fig6: vs input frequency at 110MS/s ---\n");
  std::vector<double> fins{1e6, 5e6, 10e6, 20e6, 30e6, 40e6, 55e6, 70e6, 85e6,
                           100e6, 120e6, 150e6};
  auto pts2 = testbench::sweep_input_frequency(base, fins, o);
  for (auto& p : pts2) {
    std::printf("fin %5.1f MHz: SNR %6.2f SNDR %6.2f SFDR %6.2f\n",
                p.x/1e6, p.result.metrics.snr_db, p.result.metrics.sndr_db,
                p.result.metrics.sfdr_db);
  }
  return 0;
}
