/// \file ablation_switch.cpp
/// Ablation A3: input-switch family versus input frequency.
///
/// The paper ships bulk-switched transmission gates and explicitly rejects
/// bootstrapping ("due to potential lifetime issues") while blaming the
/// resulting switch nonlinearity for the Fig. 6 SFDR fall. This bench shows
/// the whole trade: plain TG < bulk-switched TG < bootstrapped, and what the
/// rejected bootstrap would have bought at high input frequencies.
#include <cstdio>
#include <string>
#include <vector>

#include "analog/switches.hpp"
#include "pipeline/design.hpp"
#include "testbench/compare.hpp"
#include "testbench/report.hpp"
#include "testbench/sweep.hpp"

int main() {
  using namespace adc;
  using testbench::AsciiTable;

  std::printf("=== Ablation A3: input-switch family vs input frequency ===\n\n");

  struct Variant {
    const char* label;
    analog::SwitchType type;
  };
  const std::vector<Variant> variants{
      {"plain TG (bulk at VDD)", analog::SwitchType::kTransmissionGate},
      {"bulk-switched TG (paper)", analog::SwitchType::kBulkSwitchedTg},
      {"bootstrapped (rejected)", analog::SwitchType::kBootstrapped},
  };

  testbench::DynamicTestOptions opt;
  opt.record_length = 1 << 13;
  const std::vector<double> fins{10e6, 40e6, 100e6};

  AsciiTable table({"switch", "SFDR@10MHz", "SFDR@40MHz", "SFDR@100MHz", "SNDR@40MHz"});
  std::vector<std::vector<double>> sfdr_rows;
  std::vector<double> sndr40;
  for (const auto& v : variants) {
    auto cfg = pipeline::nominal_design();
    cfg.input_switch.type = v.type;
    const auto pts = testbench::sweep_input_frequency(cfg, fins, opt);
    std::vector<double> row;
    for (const auto& p : pts) row.push_back(p.result.metrics.sfdr_db);
    sfdr_rows.push_back(row);
    sndr40.push_back(pts[1].result.metrics.sndr_db);
    table.add_row({v.label, AsciiTable::num(row[0], 1), AsciiTable::num(row[1], 1),
                   AsciiTable::num(row[2], 1), AsciiTable::num(sndr40.back(), 1)});
  }
  std::printf("%s\n", table.render().c_str());

  testbench::PaperComparison cmp("Ablation A3");
  cmp.add_shape("bulk switching beats the plain TG", "lower Ron, less distortion",
                AsciiTable::num(sfdr_rows[1][2] - sfdr_rows[0][2], 1) +
                    " dB SFDR @100MHz",
                sfdr_rows[1][2] >= sfdr_rows[0][2]);
  cmp.add_shape("bootstrap would fix the Fig. 6 fall",
                "paper: \"can be solved by bootstrapping\"",
                std::string("+") + AsciiTable::num(sfdr_rows[2][2] - sfdr_rows[1][2], 1) +
                    " dB SFDR @100MHz",
                sfdr_rows[2][2] > sfdr_rows[1][2] + 5.0);
  cmp.add("why the paper still shipped the TG", "bootstrap lifetime risk at 1.8 V",
          "modelled: kBootstrapped exists but is not the default", "");
  std::printf("%s\n", cmp.render().c_str());
  return 0;
}
