/// \file fig4_power_vs_rate.cpp
/// Regenerates the paper's Fig. 4: power dissipation versus conversion rate.
///
/// Paper anchors: 97 mW at 110 MS/s, 110 mW at 130 MS/s, visibly linear.
/// The linearity comes from eq. (1): every stage bias current is
/// C_B * f_CR * V_BIAS mirrored up, so analog power scales with the clock;
/// the CV^2f correction logic adds a second linear term and the
/// bandgap/reference blocks a small static offset.
#include <cstdio>
#include <vector>

#include "common/csv.hpp"
#include "common/math_util.hpp"
#include "pipeline/design.hpp"
#include "power/power_model.hpp"
#include "testbench/compare.hpp"
#include "testbench/report.hpp"

int main() {
  using namespace adc;
  using testbench::AsciiTable;

  std::printf("=== Fig. 4: power dissipation vs conversion rate ===\n");
  std::printf("input: 10 MHz, 2 Vpp; power model calibrated at the nominal point\n\n");

  pipeline::PipelineAdc adc_instance(pipeline::nominal_design());
  const power::PowerModel model(pipeline::nominal_power_spec());

  std::vector<double> rates_msps;
  std::vector<double> total_mw;
  AsciiTable table({"f_CR (MS/s)", "pipeline (mW)", "refs (mW)", "digital (mW)",
                    "other (mW)", "TOTAL (mW)"});
  for (double rate = 10e6; rate <= 130e6 + 1.0; rate += 10e6) {
    const auto p = model.estimate(adc_instance, rate);
    rates_msps.push_back(rate / 1e6);
    total_mw.push_back(p.total() * 1e3);
    table.add_row({AsciiTable::num(rate / 1e6, 0), AsciiTable::num(p.pipeline_analog * 1e3, 1),
                   AsciiTable::num(p.reference_buffer * 1e3, 1),
                   AsciiTable::num(p.digital * 1e3, 1),
                   AsciiTable::num((p.bias_generator + p.bandgap_cm + p.comparators) * 1e3, 1),
                   AsciiTable::num(p.total() * 1e3, 1)});
  }
  std::printf("%s\n", table.render().c_str());

  testbench::PlotSeries series;
  series.label = "power dissipation";
  series.symbol = 'o';
  series.x = rates_msps;
  series.y = total_mw;
  testbench::PlotOptions plot;
  plot.title = "Fig. 4: Power dissipation (mW) vs conversion rate (MS/s)";
  plot.x_label = "conversion rate (MS/s)";
  plot.y_label = "mW";
  plot.fixed_y = true;
  plot.y_min = 0.0;
  plot.y_max = 120.0;
  std::printf("%s\n", testbench::render_plot(std::vector{series}, plot).c_str());

  // Linearity of the curve (the paper's visual claim, quantified).
  const auto fit = common::linear_fit(rates_msps, total_mw);
  const double p110 = model.estimate(adc_instance, 110e6).total() * 1e3;
  const double p130 = model.estimate(adc_instance, 130e6).total() * 1e3;

  testbench::PaperComparison cmp("Fig. 4");
  cmp.add_numeric("power @ 110 MS/s", 97.0, p110, "mW");
  cmp.add_numeric("power @ 130 MS/s", 110.0, p130, "mW");
  cmp.add_shape("power vs f_CR", "linear (eq. 1)",
                "linear, R^2 = " + AsciiTable::num(fit.r_squared, 6), fit.r_squared > 0.999);
  cmp.add("slope", "-", AsciiTable::num(fit.slope, 3) + " mW per MS/s", "");
  cmp.add("static offset", "-", AsciiTable::num(fit.intercept, 1) + " mW (bandgap+refs)", "");
  std::printf("%s\n", cmp.render().c_str());

  common::CsvTable csv({"f_cr_msps", "power_mw"});
  for (std::size_t i = 0; i < rates_msps.size(); ++i) {
    csv.add_row({rates_msps[i], total_mw[i]});
  }
  if (const auto path = common::write_bench_csv("fig4_power_vs_rate", csv)) {
    std::printf("csv: %s\n", path->c_str());
  }
  return 0;
}
