/// \file extension_interleaved.cpp
/// Extension bench: 220 MS/s from two of the paper's 110 MS/s IP blocks,
/// ping-pong time-interleaved.
///
/// The SC bias generator makes each lane's power scale with its own 110 MS/s
/// clock, so the pair delivers 2x the rate for 2x the power — but the lane
/// mismatch (two different dies) raises the classic interleaving image at
/// f_s/2 - f_in until the digital lane trim removes its offset/gain part;
/// clock skew leaves a residual image that grows with input frequency.
#include <cmath>
#include <cstdio>

#include "dsp/fft.hpp"
#include "dsp/signal.hpp"
#include "dsp/spectrum.hpp"
#include "pipeline/design.hpp"
#include "pipeline/interleaved.hpp"
#include "testbench/compare.hpp"
#include "testbench/report.hpp"

namespace {

struct Measurement {
  double sndr_db = 0.0;
  double sfdr_db = 0.0;
  double image_dbc = 0.0;
};

Measurement measure(adc::pipeline::InterleavedAdc& adc, double fin) {
  const std::size_t n = 1 << 13;
  const double fs = adc.conversion_rate();
  const auto tone = adc::dsp::coherent_frequency(fin, fs, n);
  const adc::dsp::SineSignal sig(0.985, tone.frequency_hz);
  const auto codes = adc.convert(sig, n);
  const auto volts =
      adc::dsp::codes_to_volts(codes, adc.resolution_bits(), adc.full_scale_vpp());
  adc::dsp::SpectrumOptions opt;
  opt.fundamental_bin = tone.cycles;
  const auto m = adc::dsp::analyze_tone(volts, fs, opt);
  const auto ps = adc::dsp::power_spectrum(volts);
  Measurement r;
  r.sndr_db = m.sndr_db;
  r.sfdr_db = m.sfdr_db;
  r.image_dbc = 10.0 * std::log10(ps[n / 2 - tone.cycles] / ps[tone.cycles]);
  return r;
}

}  // namespace

int main() {
  using namespace adc;
  using testbench::AsciiTable;

  std::printf("=== Extension: 2x time-interleaved operation (220 MS/s) ===\n\n");

  pipeline::InterleavedAdc raw_pair(pipeline::nominal_design(), /*skew=*/1.5e-12);
  pipeline::InterleavedAdc trimmed_pair(pipeline::nominal_design(), 1.5e-12);
  const auto trim = trimmed_pair.calibrate_lanes(512);

  AsciiTable table({"f_in (MHz)", "image raw (dBc)", "image trimmed (dBc)",
                    "SNDR trimmed (dB)"});
  for (double fin : {10e6, 30e6, 70e6}) {
    const auto before = measure(raw_pair, fin);
    const auto after = measure(trimmed_pair, fin);
    table.add_row({AsciiTable::num(fin / 1e6, 0), AsciiTable::num(before.image_dbc, 1),
                   AsciiTable::num(after.image_dbc, 1), AsciiTable::num(after.sndr_db, 2)});
  }
  std::printf("%s\n", table.render().c_str());

  testbench::PaperComparison cmp("Interleaving (extension)");
  cmp.add("lane trim measured", "-",
          "offset " + AsciiTable::num(trim.offset_codes, 2) + " LSB, gain " +
              AsciiTable::num(trim.gain, 5),
          "foreground, 512 averages");
  const auto m10 = measure(trimmed_pair, 10e6);
  cmp.add_numeric("SNDR @ 220 MS/s, fin 10 MHz", 64.2, m10.sndr_db, "dB",
                  "vs the single die at 110 MS/s");
  cmp.add("residual image after trim", "timing skew only",
          "grows with fin (see table): 2*pi*fin*skew/2 law", "");
  cmp.add("power", "2 x P(110 MS/s) = 194 mW", "eq. (1) scales each lane independently",
          "");
  std::printf("%s\n", cmp.render().c_str());
  return 0;
}
