/// \file perf_simulator.cpp
/// google-benchmark micro-benchmarks for the simulator kernels: conversion
/// throughput, FFT, and the full dynamic-test loop. These guard the cost of
/// the Monte-Carlo sweeps (a Fig. 5 sweep runs ~15 captures of 8k samples).
#include <benchmark/benchmark.h>

#include "dsp/fft.hpp"
#include "dsp/signal.hpp"
#include "dsp/spectrum.hpp"
#include "pipeline/design.hpp"
#include "testbench/dynamic_test.hpp"

namespace {

void BM_ConvertNominal(benchmark::State& state) {
  adc::pipeline::PipelineAdc converter(adc::pipeline::nominal_design());
  const adc::dsp::SineSignal tone(0.985, 10.0037e6);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(converter.convert(tone, n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ConvertNominal)->Arg(1 << 10)->Arg(1 << 13);

void BM_ConvertIdeal(benchmark::State& state) {
  adc::pipeline::PipelineAdc converter(adc::pipeline::ideal_design());
  const adc::dsp::SineSignal tone(0.985, 10.0037e6);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(converter.convert(tone, n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ConvertIdeal)->Arg(1 << 13);

void BM_FftReal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = std::sin(0.01 * static_cast<double>(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(adc::dsp::fft_real(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftReal)->Arg(1 << 13)->Arg(1 << 16);

void BM_AnalyzeTone(benchmark::State& state) {
  const std::size_t n = 1 << 13;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0 * 3.14159265358979 * 745.0 * static_cast<double>(i) /
                    static_cast<double>(n));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(adc::dsp::analyze_tone(x, 110e6));
  }
}
BENCHMARK(BM_AnalyzeTone);

void BM_FullDynamicTest(benchmark::State& state) {
  adc::pipeline::PipelineAdc converter(adc::pipeline::nominal_design());
  adc::testbench::DynamicTestOptions opt;
  opt.record_length = 1 << 12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(adc::testbench::run_dynamic_test(converter, opt));
  }
}
BENCHMARK(BM_FullDynamicTest);

void BM_DcConversion(benchmark::State& state) {
  adc::pipeline::PipelineAdc converter(adc::pipeline::nominal_design());
  double v = -0.9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(converter.convert_dc(v));
    v += 1e-4;
    if (v > 0.9) v = -0.9;
  }
}
BENCHMARK(BM_DcConversion);

}  // namespace

BENCHMARK_MAIN();
