/// \file perf_simulator.cpp
/// google-benchmark micro-benchmarks for the simulator kernels: conversion
/// throughput, FFT, and the full dynamic-test loop. These guard the cost of
/// the Monte-Carlo sweeps (a Fig. 5 sweep runs ~15 captures of 8k samples),
/// plus the parallel runtime itself: pool fan-out overhead and the
/// end-to-end Monte-Carlo / rate-sweep workloads at 1 and N threads (the
/// serial-vs-parallel pair is the speedup the runtime exists to deliver).
/// `tools/run_bench.sh` runs this binary with JSON output as the repo's
/// performance trajectory artifact.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "dsp/fft.hpp"
#include "dsp/signal.hpp"
#include "dsp/spectrum.hpp"
#include "pipeline/design.hpp"
#include "runtime/parallel.hpp"
#include "testbench/dynamic_test.hpp"
#include "testbench/monte_carlo.hpp"
#include "testbench/sweep.hpp"

namespace {

void BM_ConvertNominal(benchmark::State& state) {
  adc::pipeline::PipelineAdc converter(adc::pipeline::nominal_design());
  const adc::dsp::SineSignal tone(0.985, 10.0037e6);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(converter.convert(tone, n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ConvertNominal)->Arg(1 << 10)->Arg(1 << 13);

// The same nominal die under the fast fidelity profile (counter-based noise
// planes + polynomial math kernels; common/fidelity.hpp). The ratio of this
// to BM_ConvertNominal is the profile's headline speedup.
void BM_ConvertNominalFast(benchmark::State& state) {
  auto config = adc::pipeline::nominal_design();
  config.fidelity = adc::common::FidelityProfile::kFast;
  adc::pipeline::PipelineAdc converter(config);
  const adc::dsp::SineSignal tone(0.985, 10.0037e6);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(converter.convert(tone, n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ConvertNominalFast)->Arg(1 << 10)->Arg(1 << 13);

void BM_ConvertIdeal(benchmark::State& state) {
  adc::pipeline::PipelineAdc converter(adc::pipeline::ideal_design());
  const adc::dsp::SineSignal tone(0.985, 10.0037e6);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(converter.convert(tone, n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ConvertIdeal)->Arg(1 << 13);

void BM_FftReal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = std::sin(0.01 * static_cast<double>(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(adc::dsp::fft_real(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftReal)->Arg(1 << 13)->Arg(1 << 16);

void BM_AnalyzeTone(benchmark::State& state) {
  const std::size_t n = 1 << 13;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0 * 3.14159265358979 * 745.0 * static_cast<double>(i) /
                    static_cast<double>(n));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(adc::dsp::analyze_tone(x, 110e6));
  }
}
BENCHMARK(BM_AnalyzeTone);

void BM_FullDynamicTest(benchmark::State& state) {
  adc::pipeline::PipelineAdc converter(adc::pipeline::nominal_design());
  adc::testbench::DynamicTestOptions opt;
  opt.record_length = 1 << 12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(adc::testbench::run_dynamic_test(converter, opt));
  }
}
BENCHMARK(BM_FullDynamicTest);

void BM_DcConversion(benchmark::State& state) {
  adc::pipeline::PipelineAdc converter(adc::pipeline::nominal_design());
  double v = -0.9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(converter.convert_dc(v));
    v += 1e-4;
    if (v > 0.9) v = -0.9;
  }
}
BENCHMARK(BM_DcConversion);

// --- Parallel runtime -------------------------------------------------------

// Pure scheduling overhead: fan N trivial jobs through the pool and wait.
void BM_RuntimeFanout(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto out = adc::runtime::parallel_map<double>(
        n, [](std::size_t i) { return static_cast<double>(i) * 1.0000001; });
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RuntimeFanout)->Arg(64)->Arg(512);

// The mc_yield workload shape at thread count = state.range(0) (0 = default).
// Comparing threads=1 against the default count measures the real speedup.
void BM_MonteCarloSndr(benchmark::State& state) {
  adc::testbench::MonteCarloOptions mc;
  mc.num_dies = 8;
  mc.first_seed = 42;
  mc.threads = static_cast<int>(state.range(0));
  const auto metric = [](adc::pipeline::PipelineAdc& die) {
    adc::testbench::DynamicTestOptions opt;
    opt.record_length = 1 << 10;
    return adc::testbench::run_dynamic_test(die, opt).metrics.sndr_db;
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        adc::testbench::run_monte_carlo(adc::pipeline::nominal_design(), metric, mc));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * mc.num_dies);
}
BENCHMARK(BM_MonteCarloSndr)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// The Fig. 5 workload shape: a conversion-rate sweep, serial vs parallel.
void BM_RateSweep(benchmark::State& state) {
  const auto cfg = adc::pipeline::nominal_design();
  adc::testbench::DynamicTestOptions opt;
  opt.record_length = 1 << 10;
  const std::vector<double> rates{20e6, 60e6, 110e6, 140e6};
  const auto threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    const adc::runtime::ScopedThreadOverride pin(
        threads > 0 ? threads : adc::runtime::default_thread_count());
    benchmark::DoNotOptimize(adc::testbench::sweep_conversion_rate(cfg, rates, opt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rates.size()));
}
BENCHMARK(BM_RateSweep)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
