/// \file perf_simulator.cpp
/// google-benchmark micro-benchmarks for the simulator kernels: conversion
/// throughput, FFT, and the full dynamic-test loop. These guard the cost of
/// the Monte-Carlo sweeps (a Fig. 5 sweep runs ~15 captures of 8k samples),
/// plus the parallel runtime itself: pool fan-out overhead and the
/// end-to-end Monte-Carlo / rate-sweep workloads at 1 and N threads (the
/// serial-vs-parallel pair is the speedup the runtime exists to deliver).
/// `tools/run_bench.sh` runs this binary with JSON output as the repo's
/// performance trajectory artifact.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "batch/batch_api.hpp"
#include "batch/converter.hpp"
#include "common/counter_rng.hpp"
#include "common/isa_dispatch.hpp"
#include "dsp/fft.hpp"
#include "dsp/signal.hpp"
#include "dsp/spectrum.hpp"
#include "pipeline/design.hpp"
#include "runtime/parallel.hpp"
#include "testbench/dynamic_test.hpp"
#include "testbench/monte_carlo.hpp"
#include "testbench/sweep.hpp"

namespace {

void BM_ConvertNominal(benchmark::State& state) {
  adc::pipeline::PipelineAdc converter(adc::pipeline::nominal_design());
  const adc::dsp::SineSignal tone(0.985, 10.0037e6);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(converter.convert(tone, n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ConvertNominal)->Arg(1 << 10)->Arg(1 << 13);

// The same nominal die under the fast fidelity profile (counter-based noise
// planes + polynomial math kernels; common/fidelity.hpp). The ratio of this
// to BM_ConvertNominal is the profile's headline speedup.
void BM_ConvertNominalFast(benchmark::State& state) {
  auto config = adc::pipeline::nominal_design();
  config.fidelity = adc::common::FidelityProfile::kFast;
  adc::pipeline::PipelineAdc converter(config);
  const adc::dsp::SineSignal tone(0.985, 10.0037e6);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(converter.convert(tone, n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ConvertNominalFast)->Arg(1 << 10)->Arg(1 << 13);

// The batch engine on the same workload: one full die-block (8 dies, one
// per SIMD lane) through the SoA kernel at the runtime-selected ISA tier.
// Items = samples x dies, so items_per_second compares directly against
// BM_ConvertNominalFast — the ratio is the batch engine's aggregate speedup
// (tools/compare_bench.py reports it as a scalar/batch pair).
void BM_ConvertNominalFastBatch(benchmark::State& state) {
  auto config = adc::pipeline::nominal_design();
  config.fidelity = adc::common::FidelityProfile::kFast;
  std::vector<std::uint64_t> seeds(adc::batch::kLanes);
  for (std::size_t d = 0; d < seeds.size(); ++d) {
    seeds[d] = adc::pipeline::kNominalSeed + d;
  }
  adc::batch::BatchConverter converter(config, seeds);
  const adc::dsp::SineSignal tone(0.985, 10.0037e6);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(converter.convert(tone, n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * seeds.size()));
}
BENCHMARK(BM_ConvertNominalFastBatch)->Arg(1 << 10)->Arg(1 << 13);

// The Philox + Box-Muller noise fill in isolation — the term that was
// 41-58% of batch conversion time under fast contract v1 and the direct
// target of the v2 division-free draw math. Scalar twin: the baseline-ISA
// fill every per-die conversion uses. Items = deviates.
void BM_NoiseFill(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> out(n);
  std::uint64_t epoch = 0;
  for (auto _ : state) {
    adc::common::philox_normal_fill(adc::pipeline::kNominalSeed, ++epoch, 0,
                                    std::span<double>(out));
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NoiseFill)->Arg(1 << 13)->Arg(1 << 16);

// The same fill through the batch engine's runtime-dispatched kernel (the
// widest tier the CPU executes — see the batch_isa context key). The ratio
// to BM_NoiseFill is the draw pipeline's own ISA speedup, separated from
// the stage-chain arithmetic that surrounds it in the conversion pairs.
void BM_NoiseFillBatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> out(n);
  const auto& ops = adc::batch::kernel_ops(adc::common::active_batch_isa());
  std::uint64_t epoch = 0;
  for (auto _ : state) {
    ops.normal_fill(adc::pipeline::kNominalSeed, ++epoch, 0, out.data(), n);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NoiseFillBatch)->Arg(1 << 13)->Arg(1 << 16);

void BM_ConvertIdeal(benchmark::State& state) {
  adc::pipeline::PipelineAdc converter(adc::pipeline::ideal_design());
  const adc::dsp::SineSignal tone(0.985, 10.0037e6);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(converter.convert(tone, n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ConvertIdeal)->Arg(1 << 13);

void BM_FftReal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = std::sin(0.01 * static_cast<double>(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(adc::dsp::fft_real(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftReal)->Arg(1 << 13)->Arg(1 << 16);

void BM_AnalyzeTone(benchmark::State& state) {
  const std::size_t n = 1 << 13;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0 * 3.14159265358979 * 745.0 * static_cast<double>(i) /
                    static_cast<double>(n));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(adc::dsp::analyze_tone(x, 110e6));
  }
}
BENCHMARK(BM_AnalyzeTone);

void BM_FullDynamicTest(benchmark::State& state) {
  adc::pipeline::PipelineAdc converter(adc::pipeline::nominal_design());
  adc::testbench::DynamicTestOptions opt;
  opt.record_length = 1 << 12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(adc::testbench::run_dynamic_test(converter, opt));
  }
}
BENCHMARK(BM_FullDynamicTest);

void BM_DcConversion(benchmark::State& state) {
  adc::pipeline::PipelineAdc converter(adc::pipeline::nominal_design());
  double v = -0.9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(converter.convert_dc(v));
    v += 1e-4;
    if (v > 0.9) v = -0.9;
  }
}
BENCHMARK(BM_DcConversion);

// --- Parallel runtime -------------------------------------------------------

// Pure scheduling overhead: fan N trivial jobs through the pool and wait.
void BM_RuntimeFanout(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto out = adc::runtime::parallel_map<double>(
        n, [](std::size_t i) { return static_cast<double>(i) * 1.0000001; });
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RuntimeFanout)->Arg(64)->Arg(512);

// The mc_yield workload shape at thread count = state.range(0) (0 = default).
// Comparing threads=1 against the default count measures the real speedup.
void BM_MonteCarloSndr(benchmark::State& state) {
  adc::testbench::MonteCarloOptions mc;
  mc.num_dies = 8;
  mc.first_seed = 42;
  mc.threads = static_cast<int>(state.range(0));
  const auto metric = [](adc::pipeline::PipelineAdc& die) {
    adc::testbench::DynamicTestOptions opt;
    opt.record_length = 1 << 10;
    return adc::testbench::run_dynamic_test(die, opt).metrics.sndr_db;
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        adc::testbench::run_monte_carlo(adc::pipeline::nominal_design(), metric, mc));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * mc.num_dies);
}
BENCHMARK(BM_MonteCarloSndr)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// End-to-end yield-style workload under the fast profile: 16 dies, full
// dynamic test (capture + FFT + metrics) per die. The scalar variant runs
// the per-die loop; the Batch variant is the same workload through
// run_monte_carlo_dynamic and the batch conversion engine. Single-threaded
// on purpose so the pair isolates the engine, not the pool; items = dies x
// record samples, directly comparable across the pair.
void BM_MonteCarloFastSndr(benchmark::State& state) {
  auto config = adc::pipeline::nominal_design();
  config.fidelity = adc::common::FidelityProfile::kFast;
  adc::testbench::DynamicTestOptions test;
  test.record_length = 1 << 11;
  adc::testbench::MonteCarloOptions mc;
  mc.num_dies = 16;
  mc.first_seed = 42;
  mc.threads = 1;
  const auto metric = [&test](adc::pipeline::PipelineAdc& die) {
    return adc::testbench::run_dynamic_test(die, test).metrics.sndr_db;
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(adc::testbench::run_monte_carlo(config, metric, mc));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * mc.num_dies *
                          static_cast<std::int64_t>(test.record_length));
}
BENCHMARK(BM_MonteCarloFastSndr)->Unit(benchmark::kMillisecond);

void BM_MonteCarloFastSndrBatch(benchmark::State& state) {
  auto config = adc::pipeline::nominal_design();
  config.fidelity = adc::common::FidelityProfile::kFast;
  adc::testbench::DynamicTestOptions test;
  test.record_length = 1 << 11;
  adc::testbench::MonteCarloOptions mc;
  mc.num_dies = 16;
  mc.first_seed = 42;
  mc.threads = 1;
  const auto metric = [](const adc::testbench::DynamicTestResult& r) {
    return r.metrics.sndr_db;
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(adc::testbench::run_monte_carlo_dynamic(config, test, metric, mc));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * mc.num_dies *
                          static_cast<std::int64_t>(test.record_length));
}
BENCHMARK(BM_MonteCarloFastSndrBatch)->Unit(benchmark::kMillisecond);

// The Fig. 5 workload shape: a conversion-rate sweep, serial vs parallel.
void BM_RateSweep(benchmark::State& state) {
  const auto cfg = adc::pipeline::nominal_design();
  adc::testbench::DynamicTestOptions opt;
  opt.record_length = 1 << 10;
  const std::vector<double> rates{20e6, 60e6, 110e6, 140e6};
  const auto threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    const adc::runtime::ScopedThreadOverride pin(
        threads > 0 ? threads : adc::runtime::default_thread_count());
    benchmark::DoNotOptimize(adc::testbench::sweep_conversion_rate(cfg, rates, opt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rates.size()));
}
BENCHMARK(BM_RateSweep)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the emitted JSON must carry
// trustworthy provenance. The library's own "library_build_type" context
// reports how *libbenchmark* was compiled (Debian's package ships a
// no-NDEBUG build that always says "debug"), not how this simulator was
// compiled — so we emit our own context keys and tools/run_bench.sh
// verifies them after every run.
int main(int argc, char** argv) {
  benchmark::AddCustomContext("simulator_build_type",
#ifdef NDEBUG
                              "release"
#else
                              "debug"
#endif
  );
  benchmark::AddCustomContext("batch_isa",
                              adc::common::to_string(adc::common::active_batch_isa()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
