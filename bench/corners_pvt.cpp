/// \file corners_pvt.cpp
/// Extension bench: the PVT corner matrix an IP block must sign off.
///
/// The paper reports room-temperature numbers; an IP datasheet guarantees
/// -40..125 C and VDD +/-10 %. The temperature physics in the model — kT/C
/// noise, junction leakage doubling every 10 K, mobility ~ T^-1.5 — plus the
/// bandgap-held references produce the corner behavior below.
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <vector>

#include "pipeline/design.hpp"
#include "runtime/manifest.hpp"
#include "runtime/parallel.hpp"
#include "testbench/compare.hpp"
#include "testbench/dynamic_test.hpp"
#include "testbench/report.hpp"
#include "testbench/sweep.hpp"

int main() {
  using namespace adc;
  using testbench::AsciiTable;

  std::printf("=== PVT corners: SNDR/SNR at 110 MS/s, fin = 10 MHz ===\n\n");

  struct Corner {
    const char* label;
    double t_kelvin;
    double vdd;
  };
  const std::vector<Corner> corners{
      {"cold/-10% (233 K, 1.62 V)", 233.0, 1.62},
      {"cold/nom  (233 K, 1.80 V)", 233.0, 1.80},
      {"room/nom  (300 K, 1.80 V)", 300.0, 1.80},
      {"room/-10% (300 K, 1.62 V)", 300.0, 1.62},
      {"room/+10% (300 K, 1.98 V)", 300.0, 1.98},
      {"hot/nom   (398 K, 1.80 V)", 398.0, 1.80},
      {"hot/-10%  (398 K, 1.62 V)", 398.0, 1.62},
  };

  runtime::RunManifest manifest("corners_pvt");
  manifest.set_count("threads", runtime::effective_thread_count(0));
  manifest.set_count("corner_count", corners.size());

  // Every corner is an independent re-instantiation of the same die, so the
  // whole matrix is one batch on the runtime; results come back corner-ordered.
  std::vector<dsp::SpectrumMetrics> corner_metrics;
  {
    const auto scope = manifest.phase("corner_matrix", corners.size());
    corner_metrics = runtime::parallel_map<dsp::SpectrumMetrics>(
        corners.size(), [&corners](std::size_t i) {
          auto cfg = pipeline::nominal_design();
          cfg.temperature_k = corners[i].t_kelvin;
          cfg.vdd = corners[i].vdd;
          cfg.input_switch.vdd = corners[i].vdd;
          pipeline::PipelineAdc die(cfg);
          testbench::DynamicTestOptions corner_opt;
          corner_opt.record_length = 1 << 13;
          return testbench::run_dynamic_test(die, corner_opt).metrics;
        });
  }

  AsciiTable table({"corner", "SNR (dB)", "SNDR (dB)", "SFDR (dB)", "ENOB"});
  double worst_sndr = 1e9;
  double room_sndr = 0.0;
  for (std::size_t i = 0; i < corners.size(); ++i) {
    const auto& corner = corners[i];
    const auto& m = corner_metrics[i];
    table.add_row({corner.label, AsciiTable::num(m.snr_db, 2), AsciiTable::num(m.sndr_db, 2),
                   AsciiTable::num(m.sfdr_db, 2), AsciiTable::num(m.enob, 2)});
    worst_sndr = std::min(worst_sndr, m.sndr_db);
    const bool room_nominal =
        std::abs(corner.t_kelvin - 300.0) < 0.5 && std::abs(corner.vdd - 1.80) < 0.005;
    if (room_nominal) room_sndr = m.sndr_db;
  }
  std::printf("%s\n", table.render().c_str());

  // Hot silicon also moves the Fig. 5 corners: show the low-rate edge.
  auto hot = pipeline::nominal_design();
  hot.temperature_k = 398.0;
  testbench::DynamicTestOptions opt;
  opt.record_length = 1 << 12;
  std::vector<testbench::SweepPoint> room_low;
  std::vector<testbench::SweepPoint> hot_low;
  {
    const auto scope = manifest.phase("low_rate_edges", 4);
    room_low = testbench::sweep_conversion_rate(pipeline::nominal_design(),
                                                {5e6, 20e6}, opt);
    hot_low = testbench::sweep_conversion_rate(hot, {5e6, 20e6}, opt);
  }

  testbench::PaperComparison cmp("PVT corners (extension)");
  cmp.add_numeric("room-temperature SNDR", 64.2, room_sndr, "dB");
  cmp.add("worst-corner SNDR", "not reported",
          AsciiTable::num(worst_sndr, 1) + " dB (hot & low VDD)",
          worst_sndr > 60.0 ? "IP still >9.7 ENOB" : "fails 10-bit spec");
  cmp.add("leakage corner moves with temperature",
          "low-rate droop grows with T",
          "SFDR @5 MS/s: " + AsciiTable::num(room_low[0].result.metrics.sfdr_db, 1) +
              " dB (300 K) -> " + AsciiTable::num(hot_low[0].result.metrics.sfdr_db, 1) +
              " dB (398 K)",
          "");
  std::printf("%s\n", cmp.render().c_str());

  runtime::global_pool().wait_idle();  // settle counters before the snapshot
  manifest.set_pool_telemetry(runtime::global_pool().counters(),
                              runtime::global_pool().latency_histogram());
  if (const auto path = manifest.write_to_env_dir()) {
    std::printf("manifest: %s\n", path->c_str());
  }
  return 0;
}
