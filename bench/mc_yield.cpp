/// \file mc_yield.cpp
/// Extension bench: Monte-Carlo yield of the IP block against its datasheet.
///
/// The paper characterizes one die; an IP vendor (the paper's business,
/// section 1) ships thousands. This bench fabricates 25 dies (seeds), runs
/// the Table I dynamic test on each, and reports the SNDR/SFDR distributions
/// and the yield against the published numbers — the question a licensee
/// actually asks.
#include <cstdio>

#include "pipeline/design.hpp"
#include "runtime/manifest.hpp"
#include "runtime/parallel.hpp"
#include "testbench/dynamic_test.hpp"
#include "testbench/monte_carlo.hpp"
#include "testbench/report.hpp"

int main() {
  using namespace adc;
  using testbench::AsciiTable;

  std::printf("=== Monte-Carlo yield: 25 dies of the nominal design ===\n\n");

  testbench::MonteCarloOptions mc;
  mc.num_dies = 25;
  mc.first_seed = 42;

  runtime::RunManifest manifest("mc_yield");
  manifest.set_seed_range(mc.first_seed, static_cast<std::uint64_t>(mc.num_dies));
  manifest.set_count("threads", runtime::effective_thread_count(0));

  auto dynamic_metric = [](auto getter) {
    return [getter](pipeline::PipelineAdc& die) {
      testbench::DynamicTestOptions opt;
      opt.record_length = 1 << 12;
      return getter(testbench::run_dynamic_test(die, opt).metrics);
    };
  };

  auto timed_mc = [&](const char* phase_name, auto getter) {
    const auto scope =
        manifest.phase(phase_name, static_cast<std::uint64_t>(mc.num_dies));
    return testbench::run_monte_carlo(pipeline::nominal_design(),
                                      dynamic_metric(getter), mc);
  };

  const auto sndr =
      timed_mc("mc_sndr", [](const dsp::SpectrumMetrics& m) { return m.sndr_db; });
  const auto sfdr =
      timed_mc("mc_sfdr", [](const dsp::SpectrumMetrics& m) { return m.sfdr_db; });
  const auto snr =
      timed_mc("mc_snr", [](const dsp::SpectrumMetrics& m) { return m.snr_db; });

  AsciiTable table({"metric", "mean", "sigma", "min", "max", "yield vs paper value"});
  table.add_row({"SNR (dB)", AsciiTable::num(snr.mean, 2), AsciiTable::num(snr.std_dev, 2),
                 AsciiTable::num(snr.min, 2), AsciiTable::num(snr.max, 2),
                 AsciiTable::num(100.0 * snr.yield_at_least(66.0), 0) + " % >= 66.0"});
  table.add_row({"SNDR (dB)", AsciiTable::num(sndr.mean, 2),
                 AsciiTable::num(sndr.std_dev, 2), AsciiTable::num(sndr.min, 2),
                 AsciiTable::num(sndr.max, 2),
                 AsciiTable::num(100.0 * sndr.yield_at_least(63.0), 0) + " % >= 63.0"});
  table.add_row({"SFDR (dB)", AsciiTable::num(sfdr.mean, 2),
                 AsciiTable::num(sfdr.std_dev, 2), AsciiTable::num(sfdr.min, 2),
                 AsciiTable::num(sfdr.max, 2),
                 AsciiTable::num(100.0 * sfdr.yield_at_least(67.0), 0) + " % >= 67.0"});
  std::printf("%s\n", table.render().c_str());

  // SNDR histogram across dies.
  testbench::PlotSeries pts{"per-die SNDR", 'o', {}, {}};
  for (std::size_t i = 0; i < sndr.values.size(); ++i) {
    pts.x.push_back(static_cast<double>(i));
    pts.y.push_back(sndr.values[i]);
  }
  testbench::PlotOptions plot;
  plot.title = "SNDR across 25 fabricated dies (paper's die: 64.2 dB)";
  plot.x_label = "die index";
  plot.y_label = "dB";
  plot.height = 12;
  std::printf("%s\n", testbench::render_plot(std::vector{pts}, plot).c_str());

  std::printf(
      "The paper's published 64.2 dB SNDR sits %.1f sigma from the population\n"
      "mean of this model: its die was a typical one, not a golden sample.\n",
      (64.2 - sndr.mean) / (sndr.std_dev > 0 ? sndr.std_dev : 1.0));

  runtime::global_pool().wait_idle();  // settle counters before the snapshot
  manifest.set_pool_telemetry(runtime::global_pool().counters(),
                              runtime::global_pool().latency_histogram());
  if (const auto path = manifest.write_to_env_dir()) {
    std::printf("manifest: %s\n", path->c_str());
  }
  return 0;
}
