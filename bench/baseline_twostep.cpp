/// \file baseline_twostep.cpp
/// Baseline comparison: the paper's pipeline versus the two-step
/// architecture of its closest competitor ([5] Zjajo et al., ESSCIRC 2003 —
/// nearest to this design in FM and area per the paper's Fig. 8).
///
/// Both converters are built from the same device substrate (same switches,
/// comparators, opamp macromodel, process constants), so the comparison is
/// architectural, not a modelling artifact. The bench reproduces the
/// relative Fig. 8 placement and shows *why*: the two-step's beta ~ 1/6.7
/// cascaded residue amplifiers and its 190 clocked comparators cost power
/// and top speed; its 2-cycle latency is the one axis it wins.
#include <cstdio>
#include <vector>

#include "dsp/signal.hpp"
#include "dsp/spectrum.hpp"
#include "pipeline/design.hpp"
#include "power/fom.hpp"
#include "power/power_model.hpp"
#include "testbench/compare.hpp"
#include "testbench/dynamic_test.hpp"
#include "testbench/report.hpp"
#include "twostep/twostep.hpp"

namespace {

adc::dsp::SpectrumMetrics measure_twostep(adc::twostep::TwoStepAdc& adc, double rate) {
  const auto tone = adc::dsp::coherent_frequency(10e6, rate, 1 << 13);
  const adc::dsp::SineSignal sig(0.985, tone.frequency_hz);
  const auto codes = adc.convert(sig, 1 << 13);
  const auto volts = adc::dsp::codes_to_volts(codes, adc.resolution_bits(), 2.0);
  adc::dsp::SpectrumOptions opt;
  opt.fundamental_bin = tone.cycles;
  return adc::dsp::analyze_tone(volts, rate, opt);
}

}  // namespace

int main() {
  using namespace adc;
  using testbench::AsciiTable;

  std::printf("=== Baseline: pipeline (this paper) vs two-step ([5]) ===\n");
  std::printf("same device substrate, architectural comparison\n\n");

  const power::PowerModel pipeline_power(pipeline::nominal_power_spec());

  AsciiTable table({"rate (MS/s)", "pipeline ENOB", "two-step ENOB", "pipeline mW",
                    "two-step mW"});
  struct Point {
    double rate;
    double pipe_enob, two_enob, pipe_mw, two_mw;
  };
  std::vector<Point> points;
  for (double rate : {40e6, 80e6, 110e6, 140e6}) {
    auto pipe_cfg = pipeline::nominal_design();
    pipe_cfg.conversion_rate = rate;
    pipeline::PipelineAdc pipe(pipe_cfg);
    testbench::DynamicTestOptions opt;
    opt.record_length = 1 << 13;
    const auto pm = testbench::run_dynamic_test(pipe, opt).metrics;
    const double pipe_mw = pipeline_power.estimate(pipe, rate).total() * 1e3;

    auto two_cfg = twostep::reference_design();
    two_cfg.conversion_rate = rate;
    twostep::TwoStepAdc two(two_cfg);
    const auto tm = measure_twostep(two, rate);
    const double two_mw = twostep::estimate_power(two) * 1e3;

    table.add_row({AsciiTable::num(rate / 1e6, 0), AsciiTable::num(pm.enob, 2),
                   AsciiTable::num(tm.enob, 2), AsciiTable::num(pipe_mw, 1),
                   AsciiTable::num(two_mw, 1)});
    points.push_back({rate, pm.enob, tm.enob, pipe_mw, two_mw});
  }
  std::printf("%s\n", table.render().c_str());

  // FoM at each architecture's design point (the Fig. 8 comparison).
  const auto& pipe_at_110 = points[2];
  const auto& two_at_80 = points[1];
  const double fm_pipe =
      power::paper_fm(pipe_at_110.pipe_enob, 110e6, 0.86e-6, pipe_at_110.pipe_mw * 1e-3);
  const double fm_two =
      power::paper_fm(two_at_80.two_enob, 80e6, 1.6e-6, two_at_80.two_mw * 1e-3);

  testbench::PaperComparison cmp("Baseline vs [5]");
  cmp.add_numeric("pipeline FM at 110 MS/s (paper: ~1781)", 1781.0, fm_pipe, "");
  cmp.add_numeric("two-step FM at 80 MS/s ([5]-class: ~356)", 356.0, fm_two, "");
  cmp.add_shape("pipeline holds a higher FM", "Fig. 8 ordering",
                fm_pipe > 2.0 * fm_two ? "reproduced" : "not reproduced",
                fm_pipe > 2.0 * fm_two);
  cmp.add_shape("two-step degrades faster above its design rate",
                "beta ~ 1/6.7 residue amps run out of settling",
                points[3].two_enob < points[1].two_enob - 0.7 ? "reproduced" : "flat",
                points[3].two_enob < points[1].two_enob - 0.7);
  cmp.add("latency", "pipeline 6 cycles", "two-step 2 cycles",
          "the two-step's advantage (control loops)");
  cmp.add("comparator count", "pipeline 23", "two-step 190",
          "the flash-power signature");
  std::printf("%s\n", cmp.render().c_str());
  return 0;
}
