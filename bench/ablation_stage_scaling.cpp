/// \file ablation_stage_scaling.cpp
/// Ablation A1: the paper's stage scaling (1 : 2/3 : 1/3) versus no scaling
/// and versus aggressive geometric scaling.
///
/// Paper claim (section 2): scaling gives "lower area and lower power
/// consumption with only small degradation in converter performance". This
/// bench quantifies all three columns of that sentence.
#include <cstdio>
#include <vector>

#include "power/area.hpp"
#include "power/power_model.hpp"
#include "pipeline/design.hpp"
#include "testbench/compare.hpp"
#include "testbench/dynamic_test.hpp"
#include "testbench/report.hpp"

int main() {
  using namespace adc;
  using testbench::AsciiTable;

  std::printf("=== Ablation A1: stage scaling policy ===\n\n");

  struct Policy {
    const char* label;
    pipeline::ScalingPolicy policy;
  };
  const std::vector<Policy> policies{
      {"uniform (no scaling)", pipeline::ScalingPolicy::uniform()},
      {"paper (1, 2/3, 1/3)", pipeline::ScalingPolicy::paper()},
      {"geometric r=0.5 floor=0.15", pipeline::ScalingPolicy::geometric(0.5, 0.15)},
      {"too-aggressive r=0.33 floor=0.05",
       pipeline::ScalingPolicy::geometric(1.0 / 3.0, 0.05)},
  };

  const power::PowerModel pm(pipeline::nominal_power_spec());
  const power::AreaModel am(pipeline::nominal_area_spec());

  AsciiTable table({"policy", "SNR (dB)", "SNDR (dB)", "ENOB", "pipeline power (mW)",
                    "ADC area (mm^2)"});
  double sndr_uniform = 0.0;
  double sndr_paper = 0.0;
  double power_uniform = 0.0;
  double power_paper = 0.0;
  for (const auto& p : policies) {
    auto cfg = pipeline::nominal_design();
    cfg.scaling = p.policy;
    pipeline::PipelineAdc converter(cfg);
    testbench::DynamicTestOptions opt;
    opt.record_length = 1 << 13;
    const auto m = testbench::run_dynamic_test(converter, opt).metrics;
    const double pipeline_mw = pm.estimate(converter).pipeline_analog * 1e3;
    const double area_mm2 = am.estimate(p.policy, converter.stage_count()).total() * 1e6;
    table.add_row({p.label, AsciiTable::num(m.snr_db, 2), AsciiTable::num(m.sndr_db, 2),
                   AsciiTable::num(m.enob, 2), AsciiTable::num(pipeline_mw, 1),
                   AsciiTable::num(area_mm2, 2)});
    if (std::string(p.label).find("uniform") == 0) {
      sndr_uniform = m.sndr_db;
      power_uniform = pipeline_mw;
    }
    if (std::string(p.label).find("paper") == 0) {
      sndr_paper = m.sndr_db;
      power_paper = pipeline_mw;
    }
  }
  std::printf("%s\n", table.render().c_str());

  testbench::PaperComparison cmp("Ablation A1");
  cmp.add("pipeline power saving vs unscaled", "substantial (10 -> 4.33 units)",
          AsciiTable::num((1.0 - power_paper / power_uniform) * 100.0, 0) + " %", "");
  cmp.add_shape("\"only small degradation\"", "< 1 dB SNDR",
                AsciiTable::num(sndr_uniform - sndr_paper, 2) + " dB",
                sndr_uniform - sndr_paper < 1.0);
  std::printf("%s\n", cmp.render().c_str());
  return 0;
}
