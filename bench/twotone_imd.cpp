/// \file twotone_imd.cpp
/// Extension bench: two-tone intermodulation across the input band.
///
/// The paper characterizes single-tone SFDR (Fig. 6); its target comms
/// applications (section 1) also meet blockers. This bench sweeps a two-tone
/// pair across the band and reports IMD3/IMD2. The result is instructive:
/// unlike Fig. 6's SFDR, the IMD3 floor stays flat with frequency, because
/// the slope-type tracking nonlinearity folds little energy into close-in
/// intermods — the static charge-injection cubic sets the floor.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "pipeline/design.hpp"
#include "testbench/compare.hpp"
#include "testbench/report.hpp"
#include "testbench/two_tone.hpp"

int main() {
  using namespace adc;
  using testbench::AsciiTable;

  std::printf("=== Two-tone IMD vs tone centre (110 MS/s, -6 dBFS per tone) ===\n\n");

  pipeline::PipelineAdc converter(pipeline::nominal_design());

  const std::vector<double> centers{5e6, 10e6, 20e6, 30e6, 45e6};
  AsciiTable table({"centre (MHz)", "tones (dBFS)", "IMD3 low (dBc)", "IMD3 high (dBc)",
                    "IMD2 (dBc)"});
  std::vector<double> imd3;
  for (double c : centers) {
    testbench::TwoToneOptions opt;
    opt.center_hz = c;
    opt.record_length = 1 << 13;
    const auto r = testbench::run_two_tone_test(converter, opt);
    table.add_row({AsciiTable::num(c / 1e6, 0), AsciiTable::num(r.tone_power_db, 1),
                   AsciiTable::num(r.imd3_low_dbc, 1), AsciiTable::num(r.imd3_high_dbc, 1),
                   AsciiTable::num(r.imd2_dbc, 1)});
    imd3.push_back(std::max(r.imd3_low_dbc, r.imd3_high_dbc));
  }
  std::printf("%s\n", table.render().c_str());

  testbench::PaperComparison cmp("Two-tone IMD (extension)");
  cmp.add("IMD3 at low centre", "not reported (single-tone only)",
          AsciiTable::num(imd3.front(), 1) + " dBc @5 MHz", "");
  double spread = 0.0;
  for (double v : imd3) spread = std::max(spread, v - imd3.front());
  cmp.add_shape(
      "IMD3 nearly flat across centres", "expected: memory effect",
      "within " + AsciiTable::num(spread, 1) + " dB over 5-45 MHz",
      spread < 6.0);
  cmp.add("why flat while Fig. 6's SFDR falls", "-",
          "the R_on(v)*dv/dt tracking term is a *slope* (memory) nonlinearity: "
          "for closely spaced tones it folds little energy to 2f1-f2, so the "
          "static charge-injection cubic sets the IMD floor",
          "");
  cmp.add("IMD2 suppression", "differential topology",
          "even products stay below odd ones (see table)", "");
  std::printf("%s\n", cmp.render().c_str());
  return 0;
}
