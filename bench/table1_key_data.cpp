/// \file table1_key_data.cpp
/// Regenerates the paper's Table I: the full datasheet of the converter at
/// the nominal operating point — dynamic metrics (coherent 10 MHz capture),
/// static linearity (4M-sample sine histogram), power, area and the figure
/// of merit.
#include <cmath>
#include <cstdio>

#include "dsp/inl_spectrum.hpp"
#include "power/area.hpp"
#include "power/fom.hpp"
#include "power/power_model.hpp"
#include "pipeline/design.hpp"
#include "testbench/compare.hpp"
#include "testbench/dynamic_test.hpp"
#include "testbench/report.hpp"
#include "testbench/static_test.hpp"

int main() {
  using namespace adc;
  using testbench::AsciiTable;

  std::printf("=== Table I: key data at 110 MS/s ===\n\n");

  pipeline::PipelineAdc converter(pipeline::nominal_design());

  // Dynamic characterization: coherent 10 MHz tone, 8k-point FFT.
  testbench::DynamicTestOptions dyn_opt;
  dyn_opt.record_length = 1 << 13;
  const auto dyn = testbench::run_dynamic_test(converter, dyn_opt);

  // Static characterization: 4M-sample sine histogram (as a real bench).
  testbench::HistogramTestOptions stat_opt;
  stat_opt.samples = 1 << 22;
  const auto lin = testbench::run_histogram_test(converter, stat_opt);

  // Power and area.
  const power::PowerModel power_model(pipeline::nominal_power_spec());
  const auto p = power_model.estimate(converter);
  const power::AreaModel area_model(pipeline::nominal_area_spec());
  const auto a = area_model.estimate(converter.config().scaling,
                                     converter.stage_count());
  const double fm =
      power::paper_fm(dyn.metrics.enob, converter.conversion_rate(), a.total(), p.total());

  AsciiTable table({"parameter", "simulated", "paper"});
  table.add_row({"Technology", "0.18um behavioral model", "0.18um digital CMOS"});
  table.add_row({"Nominal supply voltage", "1.8 V", "1.8 V"});
  table.add_row({"Resolution", "12 bit", "12 bit"});
  table.add_row({"Full-scale analog input", "2 Vpp", "2 Vpp"});
  table.add_row({"Conversion rate", "110 MS/s", "110 MS/s"});
  table.add_row({"Area", AsciiTable::num(a.total() * 1e6, 2) + " mm^2", "0.86 mm^2"});
  table.add_row({"Analog power consumption",
                 AsciiTable::num(p.total() * 1e3, 1) + " mW", "97 mW"});
  table.add_row({"DNL", AsciiTable::num(lin.dnl_min, 2) + "/+" +
                            AsciiTable::num(lin.dnl_max, 2) + " LSB",
                 "+/-1.2 LSB"});
  table.add_row({"INL", AsciiTable::num(lin.inl_min, 2) + "/+" +
                            AsciiTable::num(lin.inl_max, 2) + " LSB",
                 "-1.5/+1 LSB"});
  table.add_row({"SNR (fin=10MHz)", AsciiTable::num(dyn.metrics.snr_db, 1) + " dB",
                 "67.1 dB"});
  table.add_row({"SNDR (fin=10MHz)", AsciiTable::num(dyn.metrics.sndr_db, 1) + " dB",
                 "64.2 dB"});
  table.add_row({"SFDR (fin=10MHz)", AsciiTable::num(dyn.metrics.sfdr_db, 1) + " dB",
                 "69.4 dB"});
  table.add_row({"ENOB (fin=10MHz)", AsciiTable::num(dyn.metrics.enob, 2) + " bit",
                 "10.4 bit"});
  table.add_row({"FM (eq. 2)", AsciiTable::num(fm, 0), "~1781"});
  std::printf("%s\n", table.render().c_str());

  // Numeric deltas.
  testbench::PaperComparison cmp("Table I");
  cmp.add_numeric("SNR", 67.1, dyn.metrics.snr_db, "dB");
  cmp.add_numeric("SNDR", 64.2, dyn.metrics.sndr_db, "dB");
  cmp.add_numeric("SFDR", 69.4, dyn.metrics.sfdr_db, "dB");
  cmp.add_numeric("ENOB", 10.4, dyn.metrics.enob, "bit");
  cmp.add_numeric("power", 97.0, p.total() * 1e3, "mW");
  cmp.add_numeric("area", 0.86, a.total() * 1e6, "mm^2");
  cmp.add_numeric("DNL max", 1.2, lin.dnl_max, "LSB");
  cmp.add_numeric("DNL min", -1.2, lin.dnl_min, "LSB");
  cmp.add_numeric("INL max", 1.0, lin.inl_max, "LSB");
  cmp.add_numeric("INL min", -1.5, lin.inl_min, "LSB");
  cmp.add_numeric("missing codes", 0.0, static_cast<double>(lin.missing_codes.size()),
                  "");
  std::printf("%s\n", cmp.render().c_str());

  // Harmonic detail (not in the paper's table; useful for debugging drift).
  AsciiTable harm({"harmonic", "dBc", "folded frequency (MHz)"});
  for (const auto& h : dyn.metrics.harmonics) {
    if (h.order > 5) continue;
    harm.add_row({"HD" + std::to_string(h.order), AsciiTable::num(h.dbc, 1),
                  AsciiTable::num(h.frequency_hz / 1e6, 2)});
  }
  std::printf("%s\n", harm.render().c_str());

  // Static/dynamic consistency: harmonics predicted from the measured INL
  // versus the harmonics of the dynamic capture. Agreement at 10 MHz shows
  // the Table I spurs are static (mismatch + charge injection), as the
  // DESIGN.md mechanism table claims.
  const auto predicted = dsp::predict_harmonics_from_inl(lin.inl, 12, 0.985);
  AsciiTable consistency({"harmonic", "predicted from INL (dBc)", "measured (dBc)"});
  for (const auto& h : dyn.metrics.harmonics) {
    if (h.order > 5) continue;
    consistency.add_row({"HD" + std::to_string(h.order),
                         AsciiTable::num(predicted.harmonic_dbc[static_cast<std::size_t>(h.order)], 1),
                         AsciiTable::num(h.dbc, 1)});
  }
  consistency.add_row({"THD", AsciiTable::num(predicted.thd_db, 1),
                       AsciiTable::num(dyn.metrics.thd_db, 1)});
  std::printf("%s\n", consistency.render().c_str());

  // INL profile (coarse ASCII rendition of the INL curve).
  testbench::PlotSeries inl{"INL (LSB)", '.', {}, {}};
  for (std::size_t k = 8; k < lin.inl.size() - 8; k += 16) {
    inl.x.push_back(static_cast<double>(k));
    inl.y.push_back(lin.inl[k]);
  }
  testbench::PlotOptions plot;
  plot.title = "INL vs output code";
  plot.x_label = "code";
  plot.y_label = "LSB";
  plot.height = 12;
  std::printf("%s\n", testbench::render_plot(std::vector{inl}, plot).c_str());
  return 0;
}
