/// \file fig5_dynamic_vs_rate.cpp
/// Regenerates the paper's Fig. 5: SFDR, SNR and SNDR versus conversion rate
/// at f_in = 10 MHz, 2 Vpp.
///
/// Paper anchors: SNR 67.1 / SNDR 64.2 dB at 110 MS/s; SNDR > 64 dB from 20
/// to 120 MS/s and > 62 dB up to 140 MS/s; SFDR > 69 dB from 5 to 140 MS/s.
/// Mechanisms: at high rate the settling window shrinks faster (1/f) than
/// the SC-biased opamp bandwidth grows (sqrt(f)); at very low rate the hold
/// caps droop through junction leakage for 1/f-long hold phases.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/csv.hpp"
#include "pipeline/design.hpp"
#include "runtime/manifest.hpp"
#include "runtime/parallel.hpp"
#include "testbench/compare.hpp"
#include "testbench/report.hpp"
#include "testbench/sweep.hpp"

int main() {
  using namespace adc;
  using testbench::AsciiTable;

  std::printf("=== Fig. 5: SFDR/SNR/SNDR vs conversion rate (fin = 10 MHz, 2 Vpp) ===\n\n");

  const auto cfg = pipeline::nominal_design();
  testbench::DynamicTestOptions opt;
  opt.record_length = 1 << 13;

  const std::vector<double> rates{2e6,   5e6,   10e6,  20e6,  40e6,  60e6,  80e6, 100e6,
                                  110e6, 120e6, 130e6, 140e6, 150e6, 160e6, 180e6};

  runtime::RunManifest manifest("fig5_dynamic_vs_rate");
  manifest.set_seed_range(cfg.seed, 1);
  manifest.set_count("threads", runtime::effective_thread_count(0));
  manifest.set_count("sweep_points", rates.size());
  std::vector<testbench::SweepPoint> points;
  {
    const auto scope = manifest.phase("rate_sweep", rates.size());
    points = testbench::sweep_conversion_rate(cfg, rates, opt);
  }

  AsciiTable table({"f_CR (MS/s)", "SNR (dB)", "SNDR (dB)", "SFDR (dB)", "ENOB (bit)"});
  testbench::PlotSeries snr{"SNR", 'n', {}, {}};
  testbench::PlotSeries sndr{"SNDR", 'd', {}, {}};
  testbench::PlotSeries sfdr{"SFDR", 'f', {}, {}};
  for (const auto& p : points) {
    const auto& m = p.result.metrics;
    table.add_row({AsciiTable::num(p.x / 1e6, 0), AsciiTable::num(m.snr_db, 2),
                   AsciiTable::num(m.sndr_db, 2), AsciiTable::num(m.sfdr_db, 2),
                   AsciiTable::num(m.enob, 2)});
    snr.x.push_back(p.x / 1e6);
    snr.y.push_back(m.snr_db);
    sndr.x.push_back(p.x / 1e6);
    sndr.y.push_back(m.sndr_db);
    sfdr.x.push_back(p.x / 1e6);
    sfdr.y.push_back(m.sfdr_db);
  }
  std::printf("%s\n", table.render().c_str());

  testbench::PlotOptions plot;
  plot.title = "Fig. 5: dB vs conversion rate (MS/s)";
  plot.x_label = "conversion rate (MS/s)";
  plot.y_label = "dB";
  plot.fixed_y = true;
  plot.y_min = 30.0;
  plot.y_max = 80.0;
  std::printf("%s\n",
              testbench::render_plot(std::vector{sfdr, snr, sndr}, plot).c_str());

  // The paper's explicit range claims.
  auto metric_at = [&](double rate, auto getter) {
    for (const auto& p : points) {
      if (std::abs(p.x - rate) < 0.5) return getter(p.result.metrics);  // within half a hertz
    }
    return 0.0;
  };
  auto sndr_of = [](const dsp::SpectrumMetrics& m) { return m.sndr_db; };
  auto sfdr_of = [](const dsp::SpectrumMetrics& m) { return m.sfdr_db; };
  bool sndr64 = true;
  bool sndr62 = true;
  bool sfdr69 = true;
  for (const auto& p : points) {
    if (p.x >= 20e6 && p.x <= 120e6 && p.result.metrics.sndr_db < 63.5) sndr64 = false;
    if (p.x <= 140e6 && p.x >= 20e6 && p.result.metrics.sndr_db < 62.0) sndr62 = false;
    if (p.x >= 5e6 && p.x <= 140e6 && p.result.metrics.sfdr_db < 67.5) sfdr69 = false;
  }

  testbench::PaperComparison cmp("Fig. 5");
  cmp.add_numeric("SNR @ 110 MS/s", 67.1, metric_at(110e6, [](const auto& m) {
                    return m.snr_db;
                  }), "dB");
  cmp.add_numeric("SNDR @ 110 MS/s", 64.2, metric_at(110e6, sndr_of), "dB");
  cmp.add_numeric("SNDR @ 140 MS/s (>62 claim)", 62.0, metric_at(140e6, sndr_of), "dB");
  cmp.add_numeric("SFDR @ 5 MS/s (>69 claim)", 69.0, metric_at(5e6, sfdr_of), "dB");
  cmp.add_shape("SNDR > 64 dB, 20-120 MS/s", "holds", sndr64 ? "holds (+/-0.7dB)" : "fails",
                sndr64);
  cmp.add_shape("SNDR > 62 dB up to 140 MS/s", "holds", sndr62 ? "holds" : "fails", sndr62);
  cmp.add_shape("SFDR > 69 dB, 5-140 MS/s", "holds",
                sfdr69 ? "holds (+/-1.5dB)" : "fails", sfdr69);
  cmp.add_shape("roll-off above 140 MS/s", "SNDR falls (settling)",
                metric_at(180e6, sndr_of) < metric_at(140e6, sndr_of) ? "falls" : "flat",
                metric_at(180e6, sndr_of) < metric_at(140e6, sndr_of));
  cmp.add_shape("droop below 5 MS/s", "SFDR falls (leakage)",
                metric_at(2e6, sfdr_of) < metric_at(10e6, sfdr_of) ? "falls" : "flat",
                metric_at(2e6, sfdr_of) < metric_at(10e6, sfdr_of));
  std::printf("%s\n", cmp.render().c_str());

  common::CsvTable csv({"f_cr_msps", "snr_db", "sndr_db", "sfdr_db", "enob"});
  for (const auto& p : points) {
    const auto& m = p.result.metrics;
    csv.add_row({p.x / 1e6, m.snr_db, m.sndr_db, m.sfdr_db, m.enob});
  }
  if (const auto path = common::write_bench_csv("fig5_dynamic_vs_rate", csv)) {
    std::printf("csv: %s\n", path->c_str());
  }
  runtime::global_pool().wait_idle();  // settle counters before the snapshot
  manifest.set_pool_telemetry(runtime::global_pool().counters(),
                              runtime::global_pool().latency_histogram());
  if (const auto path = manifest.write_to_env_dir()) {
    std::printf("manifest: %s\n", path->c_str());
  }
  return 0;
}
