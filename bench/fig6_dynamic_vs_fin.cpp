/// \file fig6_dynamic_vs_fin.cpp
/// Regenerates the paper's Fig. 6: SFDR, SNR and SNDR versus input frequency
/// at 110 MS/s, 2 Vpp (under-sampled above 55 MHz, as the paper measured).
///
/// Paper anchors: SNR > 66 dB up to 100 MHz, then jitter-limited; SNDR > 60
/// dB up to 40 MHz, then falling with SFDR; the SFDR fall is blamed on the
/// nonlinear on-resistance/parasitics of the un-bootstrapped input switches.
#include <cstdio>
#include <vector>

#include "common/csv.hpp"
#include "pipeline/design.hpp"
#include "runtime/manifest.hpp"
#include "runtime/parallel.hpp"
#include "testbench/compare.hpp"
#include "testbench/report.hpp"
#include "testbench/sweep.hpp"

int main() {
  using namespace adc;
  using testbench::AsciiTable;

  std::printf(
      "=== Fig. 6: SFDR/SNR/SNDR vs input frequency (110 MS/s, 2 Vpp) ===\n\n");

  const auto cfg = pipeline::nominal_design();
  testbench::DynamicTestOptions opt;
  opt.record_length = 1 << 13;

  const std::vector<double> fins{1e6,  5e6,  10e6, 20e6,  30e6,  40e6,  55e6,
                                 70e6, 85e6, 100e6, 120e6, 135e6, 150e6};

  runtime::RunManifest manifest("fig6_dynamic_vs_fin");
  manifest.set_seed_range(cfg.seed, 1);
  manifest.set_count("threads", runtime::effective_thread_count(0));
  manifest.set_count("sweep_points", fins.size());
  std::vector<testbench::SweepPoint> points;
  {
    const auto scope = manifest.phase("fin_sweep", fins.size());
    points = testbench::sweep_input_frequency(cfg, fins, opt);
  }

  AsciiTable table({"f_in (MHz)", "SNR (dB)", "SNDR (dB)", "SFDR (dB)", "worst spur"});
  testbench::PlotSeries snr{"SNR", 'n', {}, {}};
  testbench::PlotSeries sndr{"SNDR", 'd', {}, {}};
  testbench::PlotSeries sfdr{"SFDR", 'f', {}, {}};
  for (const auto& p : points) {
    const auto& m = p.result.metrics;
    const std::string spur =
        m.spur_harmonic_order > 0 ? "HD" + std::to_string(m.spur_harmonic_order)
                                  : "non-harmonic";
    table.add_row({AsciiTable::num(p.x / 1e6, 1), AsciiTable::num(m.snr_db, 2),
                   AsciiTable::num(m.sndr_db, 2), AsciiTable::num(m.sfdr_db, 2), spur});
    snr.x.push_back(p.x / 1e6);
    snr.y.push_back(m.snr_db);
    sndr.x.push_back(p.x / 1e6);
    sndr.y.push_back(m.sndr_db);
    sfdr.x.push_back(p.x / 1e6);
    sfdr.y.push_back(m.sfdr_db);
  }
  std::printf("%s\n", table.render().c_str());

  testbench::PlotOptions plot;
  plot.title = "Fig. 6: dB vs input frequency (MHz) at 110 MS/s";
  plot.x_label = "input frequency (MHz)";
  plot.y_label = "dB";
  plot.fixed_y = true;
  plot.y_min = 0.0;
  plot.y_max = 80.0;
  std::printf("%s\n",
              testbench::render_plot(std::vector{sfdr, snr, sndr}, plot).c_str());

  auto at = [&](double f, auto getter) {
    double best = 1e12;
    double val = 0.0;
    for (const auto& p : points) {
      const double d = std::abs(p.x - f);
      if (d < best) {
        best = d;
        val = getter(p.result.metrics);
      }
    }
    return val;
  };
  auto snr_of = [](const dsp::SpectrumMetrics& m) { return m.snr_db; };
  auto sndr_of = [](const dsp::SpectrumMetrics& m) { return m.sndr_db; };
  auto sfdr_of = [](const dsp::SpectrumMetrics& m) { return m.sfdr_db; };

  bool snr66 = true;
  for (const auto& p : points) {
    if (p.x <= 100e6 && p.result.metrics.snr_db < 65.5) snr66 = false;
  }
  bool sndr60 = true;
  for (const auto& p : points) {
    if (p.x <= 40e6 && p.result.metrics.sndr_db < 60.0) sndr60 = false;
  }

  testbench::PaperComparison cmp("Fig. 6");
  cmp.add_numeric("SNR @ 10 MHz", 67.1, at(10e6, snr_of), "dB");
  cmp.add_numeric("SNDR @ 10 MHz", 64.2, at(10e6, sndr_of), "dB");
  cmp.add_numeric("SFDR @ 10 MHz", 69.4, at(10e6, sfdr_of), "dB");
  cmp.add_numeric("SNR @ 100 MHz (>66 claim)", 66.0, at(100e6, snr_of), "dB");
  cmp.add_numeric("SNDR @ 40 MHz (>60 claim)", 60.0, at(40e6, sndr_of), "dB");
  cmp.add_shape("SNR flat to 100 MHz, then jitter-limited", "holds",
                snr66 && at(150e6, snr_of) < at(10e6, snr_of) - 1.0 ? "holds" : "fails",
                snr66 && at(150e6, snr_of) < at(10e6, snr_of) - 1.0);
  cmp.add_shape("SNDR > 60 dB to 40 MHz, falling after", "holds",
                sndr60 && at(70e6, sndr_of) < 60.0 ? "holds" : "fails",
                sndr60 && at(70e6, sndr_of) < 60.0);
  cmp.add_shape("SFDR falls with fin (input-switch nonlinearity)", "holds",
                at(100e6, sfdr_of) < at(10e6, sfdr_of) - 8.0 ? "holds" : "fails",
                at(100e6, sfdr_of) < at(10e6, sfdr_of) - 8.0);
  std::printf("%s\n", cmp.render().c_str());

  common::CsvTable csv({"fin_mhz", "snr_db", "sndr_db", "sfdr_db"});
  for (const auto& p : points) {
    const auto& m = p.result.metrics;
    csv.add_row({p.x / 1e6, m.snr_db, m.sndr_db, m.sfdr_db});
  }
  if (const auto path = common::write_bench_csv("fig6_dynamic_vs_fin", csv)) {
    std::printf("csv: %s\n", path->c_str());
  }
  runtime::global_pool().wait_idle();  // settle counters before the snapshot
  manifest.set_pool_telemetry(runtime::global_pool().counters(),
                              runtime::global_pool().latency_histogram());
  if (const auto path = manifest.write_to_env_dir()) {
    std::printf("manifest: %s\n", path->c_str());
  }
  return 0;
}
