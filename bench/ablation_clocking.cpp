/// \file ablation_clocking.cpp
/// Ablation A2: the paper's non-overlap removal (local switch sequencing)
/// versus conventional global non-overlap clocking.
///
/// Paper claim (section 3): "Removing the non-overlap means that the stage
/// has longer time to settle and the gain-bandwidth of the opamp can be
/// lowered, which further results in lower power consumption." The bench
/// shows (a) the same converter loses SNDR at high rates when the guard
/// interval is put back, and (b) how much opamp GBW — hence bias current and
/// power — the conventional scheme needs to match the paper's performance.
#include <cstdio>
#include <vector>

#include "clocking/two_phase.hpp"
#include "pipeline/design.hpp"
#include "testbench/compare.hpp"
#include "testbench/report.hpp"
#include "testbench/sweep.hpp"

int main() {
  using namespace adc;
  using testbench::AsciiTable;

  std::printf("=== Ablation A2: non-overlap removal (local sequential clocking) ===\n\n");

  auto local_cfg = pipeline::nominal_design();
  auto conv_cfg = pipeline::nominal_design();
  conv_cfg.phases.scheme = clocking::ClockingScheme::kConventionalNonOverlap;

  testbench::DynamicTestOptions opt;
  opt.record_length = 1 << 13;
  const std::vector<double> rates{40e6, 80e6, 110e6, 130e6, 140e6, 160e6};
  const auto local_pts = testbench::sweep_conversion_rate(local_cfg, rates, opt);
  const auto conv_pts = testbench::sweep_conversion_rate(conv_cfg, rates, opt);

  AsciiTable table({"f_CR (MS/s)", "SNDR local (dB)", "SNDR non-overlap (dB)",
                    "penalty (dB)"});
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double a = local_pts[i].result.metrics.sndr_db;
    const double b = conv_pts[i].result.metrics.sndr_db;
    table.add_row({AsciiTable::num(rates[i] / 1e6, 0), AsciiTable::num(a, 2),
                   AsciiTable::num(b, 2), AsciiTable::num(a - b, 2)});
  }
  std::printf("%s\n", table.render().c_str());

  // How much extra GBW (hence bias current, P ~ I at fixed VDD) does the
  // conventional scheme need to recover the local scheme's 110 MS/s SNDR?
  const double target = local_pts[2].result.metrics.sndr_db;
  double gbw_scale = 1.0;
  double matched_sndr = 0.0;
  for (double scale = 1.0; scale <= 1.6; scale += 0.05) {
    auto cfg = conv_cfg;
    cfg.stage.opamp.gbw_hz *= scale;
    cfg.stage.opamp.slew_rate *= scale;
    pipeline::PipelineAdc converter(cfg);
    const auto m = testbench::run_dynamic_test(converter, opt).metrics;
    if (m.sndr_db >= target - 0.1) {
      gbw_scale = scale;
      matched_sndr = m.sndr_db;
      break;
    }
  }
  // gm ~ sqrt(I): a GBW factor k costs k^2 in bias current and power.
  const double power_factor = gbw_scale * gbw_scale;

  testbench::PaperComparison cmp("Ablation A2");
  cmp.add("settling window gained @110 MS/s", "580 ps (700 ps NOV -> 120 ps local)",
          "580 ps", "by construction");
  cmp.add_numeric("SNDR penalty of non-overlap @140 MS/s",
                  0.0, conv_pts[4].result.metrics.sndr_db -
                           local_pts[4].result.metrics.sndr_db,
                  "dB", "negative = conventional is worse");
  cmp.add("GBW needed by conventional scheme to match",
          "higher GBW -> higher power",
          "x" + AsciiTable::num(gbw_scale, 2) + " GBW (SNDR " +
              AsciiTable::num(matched_sndr, 1) + " dB)",
          "");
  cmp.add("pipeline bias power factor (gm~sqrt(I): I ~ GBW^2)", "-",
          "x" + AsciiTable::num(power_factor, 2), "the paper's saving");
  std::printf("%s\n", cmp.render().c_str());
  return 0;
}
