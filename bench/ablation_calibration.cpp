/// \file ablation_calibration.cpp
/// Ablation A5 (extension beyond the paper): foreground digital calibration
/// of the stage weights.
///
/// The paper achieves its Table I linearity with raw capacitor matching.
/// This bench shows what the post-2004 alternative buys: measure every MSB
/// stage's realized DAC weight through the backend and reconstruct with the
/// measured weights. Three dies are characterized:
///  * the paper's nominal die (well matched — calibration mostly trades
///    mismatch noise for exposed front-end distortion);
///  * a "sloppy" die with 8x worse matching and a 66 dB opamp (a cheaper,
///    lower-power analog design) — calibration rescues it;
///  * the same sloppy die with bootstrapped inputs — calibration plus a
///    clean front end reaches near-12-bit linearity from cheap analog.
#include <cstdio>
#include <vector>

#include "calibration/foreground.hpp"
#include "dsp/signal.hpp"
#include "dsp/spectrum.hpp"
#include "pipeline/design.hpp"
#include "testbench/compare.hpp"
#include "testbench/report.hpp"

namespace {

adc::pipeline::AdcConfig sloppy_design() {
  auto cfg = adc::pipeline::nominal_design();
  cfg.stage.c1.sigma_mismatch = 0.004;
  cfg.stage.c2.sigma_mismatch = 0.004;
  cfg.stage1_dac_skew = 0.004;
  cfg.stage.opamp.dc_gain = 2000.0;  // 66 dB
  return cfg;
}

struct Row {
  double snr_raw, sndr_raw, sfdr_raw;
  double snr_cal, sndr_cal, sfdr_cal;
};

Row characterize(const adc::pipeline::AdcConfig& cfg) {
  using namespace adc;
  pipeline::PipelineAdc converter(cfg);
  const double fs = converter.conversion_rate();
  const auto tone = dsp::coherent_frequency(10e6, fs, 1 << 13);
  const dsp::SineSignal sig(0.985 * converter.full_scale_vpp() / 2.0, tone.frequency_hz);
  const auto raws = converter.convert_raw(sig, 1 << 13);

  dsp::SpectrumOptions opt;
  opt.fundamental_bin = tone.cycles;
  const double lsb = converter.full_scale_vpp() / 4096.0;

  auto analyze = [&](const calibration::CalibrationTable& table) {
    const calibration::CalibratedReconstructor recon(table);
    std::vector<double> volts;
    volts.reserve(raws.size());
    for (const auto& raw : raws) volts.push_back((recon.reconstruct(raw) - 2047.5) * lsb);
    return dsp::analyze_tone(volts, fs, opt);
  };

  const auto raw_m = analyze(calibration::CalibrationTable::nominal(10, 2));
  const calibration::ForegroundCalibrator cal({512});
  const auto table = cal.calibrate(converter);
  const auto cal_m = analyze(table);
  return {raw_m.snr_db, raw_m.sndr_db, raw_m.sfdr_db,
          cal_m.snr_db, cal_m.sndr_db, cal_m.sfdr_db};
}

}  // namespace

int main() {
  using namespace adc;
  using testbench::AsciiTable;

  std::printf("=== Ablation A5: foreground digital weight calibration ===\n\n");

  auto boot = sloppy_design();
  boot.input_switch.type = analog::SwitchType::kBootstrapped;

  struct Case {
    const char* label;
    pipeline::AdcConfig cfg;
  };
  const std::vector<Case> cases{
      {"nominal die (paper matching)", pipeline::nominal_design()},
      {"sloppy die (8x mismatch, 66dB opamp)", sloppy_design()},
      {"sloppy die + bootstrapped input", boot},
  };

  AsciiTable table({"die", "SNDR raw", "SNDR cal", "SFDR raw", "SFDR cal", "SNR raw",
                    "SNR cal"});
  std::vector<Row> rows;
  for (const auto& c : cases) {
    const Row r = characterize(c.cfg);
    rows.push_back(r);
    table.add_row({c.label, AsciiTable::num(r.sndr_raw, 1), AsciiTable::num(r.sndr_cal, 1),
                   AsciiTable::num(r.sfdr_raw, 1), AsciiTable::num(r.sfdr_cal, 1),
                   AsciiTable::num(r.snr_raw, 1), AsciiTable::num(r.snr_cal, 1)});
  }
  std::printf("%s\n", table.render().c_str());

  testbench::PaperComparison cmp("Ablation A5 (extension)");
  cmp.add_shape("calibration rescues cheap analog", "expected from literature",
                "+" + AsciiTable::num(rows[1].sndr_cal - rows[1].sndr_raw, 1) +
                    " dB SNDR / +" +
                    AsciiTable::num(rows[1].sfdr_cal - rows[1].sfdr_raw, 1) +
                    " dB SFDR on the sloppy die",
                rows[1].sndr_cal > rows[1].sndr_raw + 8.0);
  cmp.add_shape("front end limits the calibrated die",
                "switch nonlinearity is not weight-correctable",
                "clean-front-end die reaches SFDR " + AsciiTable::num(rows[2].sfdr_cal, 1) +
                    " dB vs " + AsciiTable::num(rows[1].sfdr_cal, 1) + " dB",
                rows[2].sfdr_cal > rows[1].sfdr_cal + 3.0);
  cmp.add("take-away", "-",
          "the paper's raw-matching approach and calibration+cheap-analog reach "
          "similar SNDR; calibration shifts cost from capacitors to logic",
          "");
  std::printf("%s\n", cmp.render().c_str());
  return 0;
}
