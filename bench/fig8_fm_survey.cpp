/// \file fig8_fm_survey.cpp
/// Regenerates the paper's Fig. 8: the area-aware figure of merit (eq. 2)
/// versus 1/A for 15 published 12-bit ADCs, grouped by supply voltage.
///
/// "This design" is plotted twice: once with the paper's published numbers
/// and once with the numbers this repository's simulation produces, so drift
/// between model and paper is visible in the ranking itself.
#include <cstdio>

#include "common/csv.hpp"
#include <map>
#include <vector>

#include "power/area.hpp"
#include "power/fom.hpp"
#include "power/power_model.hpp"
#include "pipeline/design.hpp"
#include "survey/survey.hpp"
#include "testbench/compare.hpp"
#include "testbench/dynamic_test.hpp"
#include "testbench/report.hpp"

int main() {
  using namespace adc;
  using testbench::AsciiTable;

  std::printf("=== Fig. 8: FM (eq. 2) vs 1/A for 12-bit ADCs ===\n\n");

  // Survey dataset with the paper's published numbers.
  auto entries = survey::fig8_dataset();

  // Add a "This design (simulated)" entry from this repository's models.
  {
    pipeline::PipelineAdc converter(pipeline::nominal_design());
    testbench::DynamicTestOptions opt;
    opt.record_length = 1 << 13;
    const auto dyn = testbench::run_dynamic_test(converter, opt);
    const power::PowerModel pm(pipeline::nominal_power_spec());
    const power::AreaModel am(pipeline::nominal_area_spec());
    survey::SurveyEntry sim;
    sim.name = "This design (simulated)";
    sim.year = 2026;
    sim.venue = "this repo";
    sim.supply_v = 1.8;
    sim.f_cr_msps = converter.conversion_rate() / 1e6;
    sim.area_mm2 = am.estimate(converter.config().scaling, converter.stage_count()).total() * 1e6;
    sim.power_mw = pm.estimate(converter).total() * 1e3;
    sim.enob = dyn.metrics.enob;
    entries.push_back(sim);
  }

  const auto points = survey::evaluate(entries);

  AsciiTable table({"converter", "VDD", "MS/s", "mm^2", "mW", "ENOB", "FM", "1/A"});
  for (const auto& p : points) {
    table.add_row({p.entry.name + (p.entry.synthetic ? " *" : ""),
                   survey::to_string(p.supply_class), AsciiTable::num(p.entry.f_cr_msps, 0),
                   AsciiTable::num(p.entry.area_mm2, 2), AsciiTable::num(p.entry.power_mw, 0),
                   AsciiTable::num(p.entry.enob, 1), AsciiTable::num(p.fm, 1),
                   AsciiTable::num(p.inv_area, 2)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("  * synthetic era-typical entry (see survey_data.cpp provenance notes)\n\n");

  // Scatter plot, one symbol per supply class (the paper's legend).
  const std::map<survey::SupplyClass, char> symbols{
      {survey::SupplyClass::k1V8, '8'},   {survey::SupplyClass::k2V5to2V7, '2'},
      {survey::SupplyClass::k3Vto3V3, '3'}, {survey::SupplyClass::k5V, '5'},
      {survey::SupplyClass::k10V, 'X'}};
  std::map<survey::SupplyClass, testbench::PlotSeries> series;
  for (const auto& [cls, sym] : symbols) {
    series[cls].label = survey::to_string(cls);
    series[cls].symbol = sym;
  }
  for (const auto& p : points) {
    series[p.supply_class].x.push_back(p.inv_area);
    series[p.supply_class].y.push_back(p.fm);
  }
  std::vector<testbench::PlotSeries> all;
  for (auto& [cls, s] : series) {
    if (!s.x.empty()) all.push_back(s);
  }
  testbench::PlotOptions plot;
  plot.title = "Fig. 8: FM vs 1/A (log-log)";
  plot.x_label = "1/A (1/mm^2)";
  plot.y_label = "FM";
  plot.log_x = true;
  plot.log_y = true;
  plot.fixed_x = true;
  plot.x_min = 0.01;
  plot.x_max = 10.0;
  plot.fixed_y = true;
  plot.y_min = 0.1;
  plot.y_max = 10000.0;
  std::printf("%s\n", testbench::render_plot(all, plot).c_str());

  // The paper's two ranking claims.
  const auto published = survey::evaluate(survey::fig8_dataset());
  testbench::PaperComparison cmp("Fig. 8");
  cmp.add("FM rank of this design", "1 (highest FM)",
          std::to_string(survey::fm_rank(published, "This design")),
          survey::fm_rank(published, "This design") == 1 ? "shape: MATCH" : "shape: MISMATCH");
  cmp.add("area rank of this design", "2 (2nd lowest)",
          std::to_string(survey::area_rank(published, "This design")),
          survey::area_rank(published, "This design") == 2 ? "shape: MATCH"
                                                           : "shape: MISMATCH");
  cmp.add("1.8 V 12-bit converters published", "2 (this is the 2nd)", "2", "shape: MATCH");
  // Simulated-vs-published self consistency.
  const auto sim_rank = survey::fm_rank(points, "This design (simulated)");
  cmp.add("simulated die keeps rank", "1-2", std::to_string(sim_rank),
          sim_rank <= 2 ? "shape: MATCH" : "shape: MISMATCH");
  std::printf("%s\n", cmp.render().c_str());

  common::CsvTable csv({"name", "supply_v", "f_cr_msps", "area_mm2", "power_mw", "enob",
                        "fm", "inv_area"});
  for (const auto& p : points) {
    csv.add_text_row({p.entry.name, std::to_string(p.entry.supply_v),
                      std::to_string(p.entry.f_cr_msps), std::to_string(p.entry.area_mm2),
                      std::to_string(p.entry.power_mw), std::to_string(p.entry.enob),
                      std::to_string(p.fm), std::to_string(p.inv_area)});
  }
  if (const auto path = common::write_bench_csv("fig8_fm_survey", csv)) {
    std::printf("csv: %s\n", path->c_str());
  }
  return 0;
}
