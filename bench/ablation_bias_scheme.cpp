/// \file ablation_bias_scheme.cpp
/// Ablation A4: the SC bias generator (eq. 1) versus a conventional fixed
/// generator, across capacitor process corners and conversion rates.
///
/// The paper's argument for eq. (1): "In modern CMOS technologies the spread
/// in the absolute value of capacitors is large. Instead of large fixed bias
/// currents ... the bias currents in this design are made dependent on the
/// absolute value of the capacitances." The SC generator self-adjusts: at a
/// slow-cap (+20 %) corner its current rises with the load it must drive; a
/// fixed generator must carry that margin at every corner and every rate.
#include <cstdio>
#include <vector>

#include "pipeline/design.hpp"
#include "power/power_model.hpp"
#include "testbench/compare.hpp"
#include "testbench/dynamic_test.hpp"
#include "testbench/report.hpp"

namespace {

/// Apply a global capacitor corner to every capacitor in the design (the
/// loads *and* the SC generator's C_B track, as they do on one die).
adc::pipeline::AdcConfig at_corner(adc::pipeline::AdcConfig cfg, double spread) {
  cfg.stage.c1.global_spread = spread;
  cfg.stage.c2.global_spread = spread;
  cfg.sc_bias.cb.global_spread = spread;
  // The opamp load grows with the capacitor corner; its nominal-bias
  // calibration point does not move (same transistors), so a +20 % load
  // needs +20 % current for the same settling -- exactly what eq. 1 delivers.
  cfg.stage.opamp.gbw_hz /= (1.0 + spread);
  return cfg;
}

}  // namespace

int main() {
  using namespace adc;
  using testbench::AsciiTable;

  std::printf("=== Ablation A4: SC bias generator vs fixed bias across corners ===\n\n");

  const power::PowerModel pm(pipeline::nominal_power_spec());
  testbench::DynamicTestOptions opt;
  opt.record_length = 1 << 13;

  AsciiTable table({"corner", "scheme", "SNDR @110MS/s (dB)", "pipeline power (mW)",
                    "power @20MS/s (mW)"});
  struct Cell {
    double sndr = 0.0;
    double power110 = 0.0;
  };
  Cell sc_slow;
  Cell fixed_slow;
  for (double corner : {-0.2, 0.0, 0.2}) {
    for (auto scheme : {pipeline::BiasScheme::kSwitchedCapacitor,
                        pipeline::BiasScheme::kFixed}) {
      auto cfg = at_corner(pipeline::nominal_design(), corner);
      cfg.bias_scheme = scheme;
      pipeline::PipelineAdc converter(cfg);
      const auto m = testbench::run_dynamic_test(converter, opt).metrics;
      const double p110 = pm.estimate(converter, 110e6).pipeline_analog * 1e3;
      const double p20 = pm.estimate(converter, 20e6).pipeline_analog * 1e3;
      const char* name =
          scheme == pipeline::BiasScheme::kSwitchedCapacitor ? "SC (eq. 1)" : "fixed";
      table.add_row({AsciiTable::num(corner * 100.0, 0) + " %", name,
                     AsciiTable::num(m.sndr_db, 2), AsciiTable::num(p110, 1),
                     AsciiTable::num(p20, 1)});
      if (corner > 0.1) {  // the slow (+20 % capacitance) corner
        if (scheme == pipeline::BiasScheme::kSwitchedCapacitor) {
          sc_slow = {m.sndr_db, p110};
        } else {
          fixed_slow = {m.sndr_db, p110};
        }
      }
    }
  }
  std::printf("%s\n", table.render().c_str());

  testbench::PaperComparison cmp("Ablation A4");
  cmp.add_shape("SC current tracks the slow-cap corner",
                "full settling performance at +20 % caps",
                "SNDR " + AsciiTable::num(sc_slow.sndr, 1) + " dB (SC) vs " +
                    AsciiTable::num(fixed_slow.sndr, 1) + " dB (fixed w/ margin)",
                sc_slow.sndr >= fixed_slow.sndr - 1.0);
  cmp.add("fixed scheme at 20 MS/s", "burns the worst-case margin",
          "rate-independent pipeline power (see table)", "");
  cmp.add("SC scheme at 20 MS/s", "current scales 5.5x down with the clock",
          "linear power scaling (Fig. 4)", "");
  std::printf("%s\n", cmp.render().c_str());
  return 0;
}
