/// Tests for the fleet engine (src/fleet/): deterministic hash-range
/// sharding, crash-resume with a SIGKILLed worker, merge byte-identity
/// across worker counts, exactly-once computation under concurrent workers,
/// and the zero-pool-jobs warm-run guarantee.
///
/// NOTE: CrashResume MUST be the first test in this binary. It forks a real
/// worker process, and fork() is only safe before this process has spawned
/// any threads (the global pool is created lazily by the first execute
/// phase, the heartbeat thread by the first ClaimGuard). gtest runs tests
/// in declaration order within a file, so keep it at the top.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "fleet/manifest.hpp"
#include "fleet/merge.hpp"
#include "fleet/plan.hpp"
#include "fleet/worker.hpp"
#include "runtime/parallel.hpp"
#include "scenario/cache.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace fs = std::filesystem;
namespace json = adc::common::json;
using namespace adc::fleet;
using adc::scenario::parse_spec_text;
using adc::scenario::ResultCache;
using adc::scenario::RunOptions;
using adc::scenario::ScenarioRunner;

namespace {

/// A fast-profile yield study small enough for CI but wide enough that a
/// forked worker is reliably mid-run when the parent kills it.
const char* kFleetYieldSpec = R"({
  "name": "yield_fleet",
  "stimulus": {
    "type": "tone",
    "frequency_hz": 10e6,
    "amplitude_fraction": 0.985,
    "record_length": 2048
  },
  "measurement": {"type": "yield", "metric": "sndr_db", "limit": 63.0},
  "die": {"fidelity": "fast"},
  "seeds": {"first": 42, "count": 48}
})";

/// Per-test scratch directory (caches, reports, manifests).
class FleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           ("adc_fleet_" + std::to_string(::getpid()) + "_" + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& leaf) const {
    return (dir_ / leaf).string();
  }

  fs::path dir_;
};

/// The single-process reference report for a spec, computed in its own
/// cache directory.
json::JsonValue reference_report(const adc::scenario::ScenarioSpec& spec,
                                 const std::string& cache_dir) {
  RunOptions options;
  options.cache_dir = cache_dir;
  return ScenarioRunner(options).run(spec).report;
}

}  // namespace

TEST_F(FleetTest, CrashResumeWithKilledWorkerStaysByteIdentical) {
  const auto spec = parse_spec_text(kFleetYieldSpec);
  const std::string cache_dir = path("cache");

  // Fork the victim FIRST — this process has no threads yet. The child runs
  // shard 0 of 2 with one compute thread (slow on purpose) and is SIGKILLed
  // as soon as its first payloads hit the shared cache, leaving behind a
  // partially filled shard and possibly live claim sidecars.
  const pid_t victim = ::fork();
  ASSERT_GE(victim, 0);
  if (victim == 0) {
    WorkerOptions options;
    options.cache_dir = cache_dir;
    options.shards = 2;
    options.shard = 0;
    options.owner = "victim";
    options.threads = 1;
    options.lease_ms = 1000;
    options.poll_ms = 10;
    try {
      (void)run_worker(spec, options);
    } catch (...) {
    }
    ::_exit(0);
  }

  // Wait (max ~30s) for evidence of progress, then kill mid-run.
  ResultCache probe(cache_dir);
  const auto plan = adc::scenario::plan_scenario(spec);
  bool saw_progress = false;
  for (int i = 0; i < 3000 && !saw_progress; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    for (const auto& hash : plan.hashes) {
      if (fs::exists(fs::path(probe.root()) / hash.substr(0, 2) / (hash + ".json"))) {
        saw_progress = true;
        break;
      }
    }
  }
  ASSERT_TRUE(saw_progress) << "victim worker never stored a payload";
  ASSERT_EQ(::kill(victim, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(victim, &status, 0), victim);
  ASSERT_TRUE(WIFSIGNALED(status));

  // Resume: the surviving worker owns shard 1 but scavenges shard 0's
  // leftovers, stealing the victim's stale claims once the 1s lease lapses.
  WorkerOptions survivor;
  survivor.cache_dir = cache_dir;
  survivor.shards = 2;
  survivor.shard = 1;
  survivor.owner = "survivor";
  survivor.lease_ms = 1000;
  survivor.poll_ms = 20;
  const auto result = run_worker(spec, survivor);
  EXPECT_TRUE(result.manifest.complete);
  EXPECT_GT(result.manifest.computed, 0u);

  // The merged report matches the single-process reference byte for byte
  // (shard 0's manifest died with the victim, so merge on the cache alone).
  MergeOptions merge;
  merge.cache_dir = cache_dir;
  merge.report_dir = path("reports");
  merge.shards = 2;
  merge.require_manifests = false;
  const auto merged = merge_fleet(spec, merge);
  const auto reference = reference_report(spec, path("cache-ref"));
  EXPECT_EQ(json::dump(merged.report), json::dump(reference));

  // A re-issued worker for the dead shard finds everything warm: zero
  // computation, zero pool jobs, full manifest for a clean merge.
  WorkerOptions reissue;
  reissue.cache_dir = cache_dir;
  reissue.shards = 2;
  reissue.shard = 0;
  reissue.owner = "reissue";
  const auto rerun = run_worker(spec, reissue);
  EXPECT_TRUE(rerun.manifest.complete);
  EXPECT_EQ(rerun.manifest.computed, 0u);
  EXPECT_EQ(rerun.manifest.cache_hits, rerun.manifest.jobs_total);
  EXPECT_EQ(rerun.pool_after.submitted, rerun.pool_before.submitted);

  MergeOptions full;
  full.cache_dir = cache_dir;
  full.shards = 2;
  const auto remerged = merge_fleet(spec, full);
  EXPECT_EQ(json::dump(remerged.report), json::dump(reference));
}

TEST(FleetPlanTest, ShardPartitionIsDeterministicAndComplete) {
  const auto spec = parse_spec_text(kFleetYieldSpec);
  for (const unsigned shards : {1u, 2u, 3u, 4u}) {
    const auto a = plan_fleet(spec, shards);
    const auto b = plan_fleet(spec, shards);
    ASSERT_EQ(a.shard_of.size(), a.scenario.jobs.size());
    EXPECT_EQ(a.shard_of, b.shard_of) << "partition not deterministic at W=" << shards;
    std::size_t total = 0;
    for (const auto size : a.shard_sizes) total += size;
    EXPECT_EQ(total, a.scenario.jobs.size());
    for (std::size_t i = 0; i < a.shard_of.size(); ++i) {
      EXPECT_LT(a.shard_of[i], shards);
      EXPECT_EQ(a.shard_of[i], shard_of_hash(a.scenario.hashes[i], shards));
    }
  }
  // W=1 assigns everything to shard 0.
  const auto single = plan_fleet(spec, 1);
  for (const auto shard : single.shard_of) EXPECT_EQ(shard, 0u);

  // The range partition is a pure function of the hash value.
  EXPECT_EQ(shard_of_hash("0000000000000000", 4), 0u);
  EXPECT_EQ(shard_of_hash("ffffffffffffffff", 4), 3u);
  EXPECT_EQ(hash_value("00000000000000ff"), 255u);
  EXPECT_THROW((void)hash_value("not-a-hash"), adc::common::ConfigError);
}

TEST_F(FleetTest, MergedReportIsByteIdenticalForAnyWorkerCount) {
  const auto spec = parse_spec_text(kFleetYieldSpec);
  const auto reference = reference_report(spec, path("cache-ref"));
  RunOptions ref_files;
  ref_files.cache_dir = path("cache-ref");
  ref_files.report_dir = path("reports-ref");
  (void)ScenarioRunner(ref_files).run(spec);

  for (const unsigned workers : {1u, 2u, 4u}) {
    const std::string tag = std::to_string(workers);
    for (unsigned k = 0; k < workers; ++k) {
      WorkerOptions options;
      options.cache_dir = path("cache-w" + tag);
      options.shards = workers;
      options.shard = k;
      options.owner = "w" + std::to_string(k);
      const auto result = run_worker(spec, options);
      EXPECT_TRUE(result.manifest.complete);
    }
    MergeOptions merge;
    merge.cache_dir = path("cache-w" + tag);
    merge.report_dir = path("reports-w" + tag);
    merge.shards = workers;
    const auto merged = merge_fleet(spec, merge);
    ASSERT_EQ(merged.manifests.size(), workers);
    EXPECT_EQ(json::dump(merged.report), json::dump(reference))
        << "merged report drifted at W=" << workers;

    // File-level byte identity, the same check the CI lane runs with cmp.
    for (const char* leaf : {"yield_fleet_report.json", "yield_fleet_report.csv"}) {
      std::ifstream ref_in(path("reports-ref") + "/" + leaf, std::ios::binary);
      std::ifstream fleet_in(path("reports-w" + tag) + "/" + leaf, std::ios::binary);
      const std::string ref_bytes((std::istreambuf_iterator<char>(ref_in)),
                                  std::istreambuf_iterator<char>());
      const std::string fleet_bytes((std::istreambuf_iterator<char>(fleet_in)),
                                    std::istreambuf_iterator<char>());
      ASSERT_FALSE(ref_bytes.empty());
      EXPECT_EQ(fleet_bytes, ref_bytes) << leaf << " differs at W=" << workers;
    }
  }
}

TEST_F(FleetTest, ConcurrentWorkersComputeEachJobExactlyOnce) {
  const auto spec = parse_spec_text(kFleetYieldSpec);
  const std::string cache_dir = path("cache");

  WorkerResult results[2];
  std::vector<std::thread> workers;
  for (unsigned k = 0; k < 2; ++k) {
    workers.emplace_back([&, k] {
      WorkerOptions options;
      options.cache_dir = cache_dir;
      options.shards = 2;
      options.shard = k;
      options.owner = "w" + std::to_string(k);
      options.lease_ms = 60000;  // no steals: strict exactly-once
      options.poll_ms = 10;
      results[k] = run_worker(spec, options);
    });
  }
  for (auto& t : workers) t.join();

  EXPECT_TRUE(results[0].manifest.complete);
  EXPECT_TRUE(results[1].manifest.complete);
  // The claim protocol's double-check-under-claim makes computation
  // exactly-once whenever no claim is stolen: the two workers partition the
  // grid exactly.
  EXPECT_EQ(results[0].manifest.computed + results[1].manifest.computed,
            results[0].manifest.jobs_total);

  const auto merged = [&] {
    MergeOptions merge;
    merge.cache_dir = cache_dir;
    merge.shards = 2;
    return merge_fleet(spec, merge);
  }();
  EXPECT_EQ(json::dump(merged.report),
            json::dump(reference_report(spec, path("cache-ref"))));
}

TEST_F(FleetTest, WarmFleetRunSubmitsZeroPoolJobsPerWorker) {
  const auto spec = parse_spec_text(kFleetYieldSpec);
  const std::string cache_dir = path("cache");

  // Cold fill; on a multi-core host this engages the pool, which is what
  // makes the warm zero-delta below a real assertion rather than 0 == 0.
  // (On a 1-core host parallel_map takes its serial path and the global
  // pool is never touched, so the cold check would be vacuous anyway.)
  WorkerOptions cold;
  cold.cache_dir = cache_dir;
  cold.shards = 1;
  cold.shard = 0;
  const auto cold_result = run_worker(spec, cold);
  ASSERT_TRUE(cold_result.manifest.complete);
  if (adc::runtime::effective_thread_count(0) > 1) {
    EXPECT_GT(cold_result.pool_after.submitted, cold_result.pool_before.submitted);
  }

  // Fully warm W=4 fleet: every worker serves its whole view from cache and
  // submits zero pool jobs — the fleet acceptance pin.
  for (unsigned k = 0; k < 4; ++k) {
    WorkerOptions warm;
    warm.cache_dir = cache_dir;
    warm.shards = 4;
    warm.shard = k;
    const auto result = run_worker(spec, warm);
    EXPECT_TRUE(result.manifest.complete);
    EXPECT_EQ(result.manifest.computed, 0u);
    EXPECT_EQ(result.manifest.cache_hits, result.manifest.jobs_total);
    EXPECT_EQ(result.pool_after.submitted, result.pool_before.submitted)
        << "warm worker " << k << " submitted pool jobs";
    EXPECT_EQ(result.manifest.pool_jobs, 0u);
  }
}

TEST_F(FleetTest, BudgetStopWritesIncompleteManifestAndResumes) {
  const auto spec = parse_spec_text(kFleetYieldSpec);
  WorkerOptions budget;
  budget.cache_dir = path("cache");
  budget.shards = 1;
  budget.shard = 0;
  budget.max_jobs = 8;
  const auto partial = run_worker(spec, budget);
  EXPECT_FALSE(partial.manifest.complete);
  EXPECT_EQ(partial.manifest.computed, 8u);
  EXPECT_EQ(partial.manifest.skipped, partial.manifest.jobs_total - 8u);

  // An incomplete fleet refuses to merge, naming the gap.
  MergeOptions merge;
  merge.cache_dir = path("cache");
  merge.shards = 1;
  EXPECT_THROW((void)merge_fleet(spec, merge), adc::common::MeasurementError);

  // An unbudgeted re-run resumes over the 8 cached payloads and completes.
  WorkerOptions resume = budget;
  resume.max_jobs = 0;
  const auto finished = run_worker(spec, resume);
  EXPECT_TRUE(finished.manifest.complete);
  EXPECT_EQ(finished.manifest.cache_hits, 8u);
  EXPECT_EQ(finished.manifest.computed, finished.manifest.jobs_total - 8u);
  EXPECT_EQ(json::dump(merge_fleet(spec, merge).report),
            json::dump(reference_report(spec, path("cache-ref"))));
}

TEST_F(FleetTest, ManifestRoundTripsAndRejectsMismatch) {
  ShardManifest m;
  m.scenario = "demo";
  m.spec_hash = "0123456789abcdef";
  m.fingerprint = "fedcba9876543210";
  m.shard = 1;
  m.shards = 3;
  m.owner = "host:123";
  m.jobs_total = 48;
  m.shard_jobs = 17;
  m.cache_hits = 5;
  m.computed = 12;
  m.scavenged = 2;
  m.elsewhere = 31;
  m.skipped = 0;
  m.pool_jobs = 7;
  m.complete = true;

  const auto doc = manifest_document(m);
  const auto back = parse_manifest(json::parse(json::dump(doc)));
  EXPECT_EQ(json::dump(manifest_document(back)), json::dump(doc));

  const std::string dir = (fs::temp_directory_path() /
                           ("adc_fleet_manifest_" + std::to_string(::getpid())))
                              .string();
  fs::remove_all(dir);
  const std::string written = write_manifest(m, dir);
  EXPECT_EQ(written, dir + "/" + manifest_filename("demo", 1, 3));
  const auto loaded = load_manifest(dir, "demo", 1, 3);
  EXPECT_EQ(json::dump(manifest_document(loaded)), json::dump(doc));
  // Wrong coordinates are a hard error, not a silent mismatch.
  EXPECT_THROW((void)load_manifest(dir, "demo", 2, 3), adc::common::ConfigError);
  fs::remove_all(dir);

  auto corrupt = json::parse(json::dump(doc));
  corrupt.set("shards", std::uint64_t{0});
  EXPECT_THROW((void)parse_manifest(corrupt), adc::common::ConfigError);
}
