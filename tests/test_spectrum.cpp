/// Unit tests for the single-tone spectrum analyser — validated against
/// closed-form signals where every metric is known exactly.
#include "dsp/spectrum.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/random.hpp"

namespace ad = adc::dsp;

namespace {

constexpr double kFs = 100e6;
constexpr std::size_t kN = 8192;

std::vector<double> tone(std::size_t cycles, double amplitude, double phase = 0.0) {
  std::vector<double> x(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    x[i] = amplitude * std::sin(2.0 * std::numbers::pi * static_cast<double>(cycles) *
                                    static_cast<double>(i) / static_cast<double>(kN) +
                                phase);
  }
  return x;
}

void add(std::vector<double>& x, const std::vector<double>& y) {
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += y[i];
}

}  // namespace

TEST(Spectrum, PureToneHasHugeSnr) {
  const auto m = ad::analyze_tone(tone(777, 1.0), kFs);
  EXPECT_EQ(m.fundamental_bin, 777u);
  EXPECT_NEAR(m.signal_amplitude, 1.0, 1e-6);
  EXPECT_GT(m.snr_db, 250.0);
  EXPECT_GT(m.sfdr_db, 250.0);
}

TEST(Spectrum, FundamentalFrequencyReported) {
  const auto m = ad::analyze_tone(tone(777, 1.0), kFs);
  EXPECT_NEAR(m.fundamental_freq_hz, 777.0 * kFs / kN, 1e-3);
  EXPECT_EQ(m.record_length, kN);
}

TEST(Spectrum, KnownNoiseGivesKnownSnr) {
  adc::common::Rng rng(17);
  auto x = tone(777, 1.0);
  const double sigma = 1e-3;
  for (auto& v : x) v += rng.gaussian(sigma);
  const auto m = ad::analyze_tone(x, kFs);
  // SNR = 10*log10((A^2/2) / sigma^2) = 10*log10(0.5/1e-6) = 56.99 dB.
  EXPECT_NEAR(m.snr_db, 56.99, 0.35);
  EXPECT_NEAR(m.enob, adc::common::enob_from_sndr_db(m.sndr_db), 1e-9);
}

TEST(Spectrum, KnownHd3GivesExactThdAndSfdr) {
  auto x = tone(701, 1.0);
  add(x, tone(3 * 701, 1e-3));  // HD3 at -60 dBc
  const auto m = ad::analyze_tone(x, kFs);
  EXPECT_NEAR(m.thd_db, -60.0, 0.05);
  EXPECT_NEAR(m.sfdr_db, 60.0, 0.05);
  EXPECT_EQ(m.spur_harmonic_order, 3);
  ASSERT_FALSE(m.harmonics.empty());
  const auto& h3 = m.harmonics[1];  // harmonics[0] is HD2
  EXPECT_EQ(h3.order, 3);
  EXPECT_NEAR(h3.dbc, -60.0, 0.05);
}

TEST(Spectrum, MultipleHarmonicsSumIntoThd) {
  auto x = tone(701, 1.0);
  add(x, tone(2 * 701, 1e-3));  // HD2 -60 dBc
  add(x, tone(3 * 701, 1e-3));  // HD3 -60 dBc
  const auto m = ad::analyze_tone(x, kFs);
  EXPECT_NEAR(m.thd_db, -56.99, 0.1);  // two equal -60s add 3 dB
  EXPECT_NEAR(m.sfdr_db, 60.0, 0.1);   // but the worst single spur is -60
}

TEST(Spectrum, HarmonicAliasingIsTracked) {
  // Fundamental at bin 3000 of 8192 -> HD2 at 6000 folds to 8192-6000=2192.
  auto x = tone(3001, 1.0);
  const double f2 = ad::alias_frequency(2.0 * 3001.0 * kFs / kN, kFs);
  const auto bin2 = static_cast<std::size_t>(std::llround(f2 / (kFs / kN)));
  EXPECT_EQ(bin2, 8192 - 2 * 3001);
  add(x, tone(bin2, 1e-3));
  const auto m = ad::analyze_tone(x, kFs);
  ASSERT_GE(m.harmonics.size(), 1u);
  EXPECT_EQ(m.harmonics[0].order, 2);
  EXPECT_EQ(m.harmonics[0].bin, bin2);
  EXPECT_NEAR(m.harmonics[0].dbc, -60.0, 0.1);
  EXPECT_NEAR(m.thd_db, -60.0, 0.1);
}

TEST(Spectrum, NonHarmonicSpurSetsSfdrButNotThd) {
  auto x = tone(701, 1.0);
  add(x, tone(997, 1e-3));  // an interleaving-style spur, not a harmonic
  const auto m = ad::analyze_tone(x, kFs);
  EXPECT_NEAR(m.sfdr_db, 60.0, 0.1);
  EXPECT_EQ(m.spur_harmonic_order, 0);
  EXPECT_LT(m.thd_db, -200.0);  // THD counts harmonics only
  // The spur is still counted against SNDR (as noise).
  EXPECT_NEAR(m.sndr_db, 60.0, 0.1);
}

TEST(Spectrum, DcIsExcluded) {
  auto x = tone(701, 1.0);
  for (auto& v : x) v += 0.5;  // large DC offset
  const auto m = ad::analyze_tone(x, kFs);
  EXPECT_EQ(m.fundamental_bin, 701u);
  EXPECT_GT(m.snr_db, 200.0);
}

TEST(Spectrum, ForcedFundamentalBin) {
  // Two tones; force analysis onto the smaller one.
  auto x = tone(701, 0.1);
  add(x, tone(1501, 1.0));
  ad::SpectrumOptions opt;
  opt.fundamental_bin = 701;
  const auto m = ad::analyze_tone(x, kFs, opt);
  EXPECT_EQ(m.fundamental_bin, 701u);
  EXPECT_NEAR(m.signal_amplitude, 0.1, 1e-6);
  EXPECT_NEAR(m.sfdr_db, -20.0, 0.1);  // the other tone is 20 dB *above*
}

TEST(Spectrum, HarmonicBaseOverrideForUndersampling) {
  // Undersampled capture: true tone at 1.5*fs - folds to bin f_alias.
  const double f_true = 1.2e8;  // > fs/2 = 50 MHz
  const double f_alias = ad::alias_frequency(f_true, kFs);
  EXPECT_NEAR(f_alias, 2e7, 1.0);
  // Place the alias and the folded HD2 (2*f_true aliases to 4e7).
  const auto abin = static_cast<std::size_t>(std::llround(f_alias / (kFs / kN)));
  const double f_h2 = ad::alias_frequency(2.0 * f_true, kFs);
  const auto h2bin = static_cast<std::size_t>(std::llround(f_h2 / (kFs / kN)));
  auto x = tone(abin, 1.0);
  add(x, tone(h2bin, 1e-3));
  ad::SpectrumOptions opt;
  opt.fundamental_bin = abin;
  opt.harmonic_base_hz = f_true;
  const auto m = ad::analyze_tone(x, kFs, opt);
  ASSERT_GE(m.harmonics.size(), 1u);
  EXPECT_EQ(m.harmonics[0].order, 2);
  EXPECT_EQ(m.harmonics[0].bin, h2bin);
  EXPECT_NEAR(m.thd_db, -60.0, 0.1);
}

TEST(Spectrum, WindowedNonCoherentCapture) {
  // A tone *between* bins: rectangular analysis smears it, Blackman-Harris
  // still recovers amplitude and a clean floor.
  std::vector<double> x(kN);
  const double f = 700.5 * kFs / kN;
  adc::common::Rng rng(23);
  for (std::size_t i = 0; i < kN; ++i) {
    x[i] = std::sin(2.0 * std::numbers::pi * f * static_cast<double>(i) / kFs) +
           rng.gaussian(1e-3);
  }
  ad::SpectrumOptions opt;
  opt.window = ad::WindowType::kBlackmanHarris4;
  const auto m = ad::analyze_tone(x, kFs, opt);
  EXPECT_NEAR(m.signal_amplitude, 1.0, 0.02);
  EXPECT_NEAR(m.snr_db, 56.99, 1.5);
}

TEST(Spectrum, AliasFrequency) {
  EXPECT_DOUBLE_EQ(ad::alias_frequency(10e6, 100e6), 10e6);
  EXPECT_DOUBLE_EQ(ad::alias_frequency(60e6, 100e6), 40e6);
  EXPECT_DOUBLE_EQ(ad::alias_frequency(110e6, 100e6), 10e6);
  EXPECT_DOUBLE_EQ(ad::alias_frequency(250e6, 100e6), 50e6);
}

TEST(Spectrum, CodesToVolts) {
  const std::vector<int> codes{0, 2047, 2048, 4095};
  const auto v = adc::dsp::codes_to_volts(codes, 12, 2.0);
  const double lsb = 2.0 / 4096.0;
  EXPECT_NEAR(v[0], -2047.5 * lsb, 1e-12);
  EXPECT_NEAR(v[1], -0.5 * lsb, 1e-12);
  EXPECT_NEAR(v[2], 0.5 * lsb, 1e-12);
  EXPECT_NEAR(v[3], 2047.5 * lsb, 1e-12);
}

TEST(Spectrum, Errors) {
  EXPECT_THROW((void)ad::analyze_tone(std::vector<double>(8, 0.0), kFs),
               adc::common::ConfigError);
  EXPECT_THROW((void)ad::analyze_tone(std::vector<double>(100, 0.0), kFs),
               adc::common::ConfigError);
  EXPECT_THROW((void)ad::analyze_tone(tone(701, 1.0), -1.0), adc::common::ConfigError);
}

class AmplitudeSweep : public ::testing::TestWithParam<double> {};

TEST_P(AmplitudeSweep, AmplitudeRecoveredExactly) {
  const double a = GetParam();
  const auto m = ad::analyze_tone(tone(1555, a), kFs);
  EXPECT_NEAR(m.signal_amplitude, a, 1e-9 + 1e-6 * a);
}

INSTANTIATE_TEST_SUITE_P(Amplitudes, AmplitudeSweep,
                         ::testing::Values(1e-3, 0.1, 0.5, 0.985, 1.0, 2.0));
