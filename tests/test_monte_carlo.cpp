/// Tests for the Monte-Carlo yield runner.
#include "testbench/monte_carlo.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/fidelity.hpp"
#include "pipeline/design.hpp"
#include "testbench/dynamic_test.hpp"

namespace ap = adc::pipeline;
namespace tb = adc::testbench;

namespace {

double quick_sndr(ap::PipelineAdc& adc) {
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 11;
  return tb::run_dynamic_test(adc, opt).metrics.sndr_db;
}

}  // namespace

TEST(MonteCarlo, StatsAndDeterminism) {
  tb::MonteCarloOptions opt;
  opt.num_dies = 8;
  opt.first_seed = 500;
  const auto a = tb::run_monte_carlo(ap::nominal_design(), quick_sndr, opt);
  const auto b = tb::run_monte_carlo(ap::nominal_design(), quick_sndr, opt);
  ASSERT_EQ(a.values.size(), 8u);
  EXPECT_EQ(a.values, b.values);  // same seeds -> same dies -> same metrics
  EXPECT_GE(a.max, a.mean);
  EXPECT_LE(a.min, a.mean);
  EXPECT_GE(a.std_dev, 0.0);
}

TEST(MonteCarlo, DiesActuallyDiffer) {
  tb::MonteCarloOptions opt;
  opt.num_dies = 6;
  const auto r = tb::run_monte_carlo(ap::nominal_design(), quick_sndr, opt);
  EXPECT_GT(r.max - r.min, 0.01);  // mismatch draws differ between dies
  EXPECT_LT(r.max - r.min, 5.0);   // but the design is production-worthy
}

TEST(MonteCarlo, YieldAccounting) {
  tb::MonteCarloResult r;
  r.values = {60.0, 62.0, 64.0, 66.0};
  EXPECT_DOUBLE_EQ(r.yield_at_least(63.0), 0.5);
  EXPECT_DOUBLE_EQ(r.yield_at_least(59.0), 1.0);
  EXPECT_DOUBLE_EQ(r.yield_at_most(61.0), 0.25);
  EXPECT_DOUBLE_EQ(tb::MonteCarloResult{}.yield_at_least(0.0), 0.0);
}

TEST(MonteCarlo, SingleThreadMatchesParallel) {
  tb::MonteCarloOptions serial;
  serial.num_dies = 5;
  serial.threads = 1;
  tb::MonteCarloOptions parallel = serial;
  parallel.threads = 4;
  const auto a = tb::run_monte_carlo(ap::nominal_design(), quick_sndr, serial);
  const auto b = tb::run_monte_carlo(ap::nominal_design(), quick_sndr, parallel);
  EXPECT_EQ(a.values, b.values);
}

TEST(MonteCarlo, ThrowingMetricPropagatesToCaller) {
  // Regression: the pre-runtime thread spawn std::terminate'd the process
  // when a DieMetric threw inside a worker. The runtime port must capture
  // the exception and rethrow it on the calling thread, serial and parallel.
  const auto faulty = [](ap::PipelineAdc& adc) -> double {
    if (adc.config().seed == 1003) {
      throw adc::common::MeasurementError("die 1003: no fundamental tone");
    }
    return quick_sndr(adc);
  };
  for (const int threads : {1, 4}) {
    tb::MonteCarloOptions opt;
    opt.num_dies = 8;
    opt.first_seed = 1000;
    opt.threads = threads;
    try {
      (void)tb::run_monte_carlo(ap::nominal_design(), faulty, opt);
      FAIL() << "expected MeasurementError at threads=" << threads;
    } catch (const adc::common::MeasurementError& e) {
      EXPECT_STREQ(e.what(), "die 1003: no fundamental tone");
    }
  }
  // The runner still works after a failed run.
  tb::MonteCarloOptions opt;
  opt.num_dies = 3;
  const auto ok = tb::run_monte_carlo(ap::nominal_design(), quick_sndr, opt);
  EXPECT_EQ(ok.values.size(), 3u);
}

TEST(MonteCarlo, RejectsBadInput) {
  tb::MonteCarloOptions opt;
  opt.num_dies = 0;
  EXPECT_THROW((void)tb::run_monte_carlo(ap::nominal_design(), quick_sndr, opt),
               adc::common::ConfigError);
  opt.num_dies = 1;
  EXPECT_THROW((void)tb::run_monte_carlo(ap::nominal_design(), nullptr, opt),
               adc::common::ConfigError);
}

TEST(MonteCarlo, DynamicRunnerMatchesScalarMetricBitExact) {
  // 10 dies under the fast profile = one full batched block of 8 plus a
  // 2-die scalar-fallback tail, so one comparison covers both execution
  // paths of run_dynamic_test_dies against the reference per-die loop.
  ap::AdcConfig fast = ap::nominal_design();
  fast.fidelity = adc::common::FidelityProfile::kFast;
  tb::DynamicTestOptions test;
  test.record_length = 1 << 11;
  tb::MonteCarloOptions opt;
  opt.num_dies = 10;
  opt.first_seed = 700;
  const auto batched = tb::run_monte_carlo_dynamic(
      fast, test, [](const tb::DynamicTestResult& r) { return r.metrics.sndr_db; }, opt);
  const auto scalar = tb::run_monte_carlo(
      fast,
      [&test](ap::PipelineAdc& adc) { return tb::run_dynamic_test(adc, test).metrics.sndr_db; },
      opt);
  ASSERT_EQ(batched.values.size(), 10u);
  EXPECT_EQ(batched.values, scalar.values);  // bitwise: the engine is not a fidelity knob
}

TEST(MonteCarlo, DynamicRunnerMatchesScalarWithAveraging) {
  // The averaged path interleaves captures differently (batch: one
  // convert() per record for all dies; scalar: all records per die) but the
  // positional noise draws make the per-die record sequences identical.
  ap::AdcConfig fast = ap::nominal_design();
  fast.fidelity = adc::common::FidelityProfile::kFast;
  tb::DynamicTestOptions test;
  test.record_length = 1 << 10;
  test.averages = 2;
  tb::MonteCarloOptions opt;
  opt.num_dies = 8;
  opt.first_seed = 900;
  const auto batched = tb::run_monte_carlo_dynamic(
      fast, test, [](const tb::DynamicTestResult& r) { return r.metrics.snr_db; }, opt);
  const auto scalar = tb::run_monte_carlo(
      fast,
      [&test](ap::PipelineAdc& adc) { return tb::run_dynamic_test(adc, test).metrics.snr_db; },
      opt);
  EXPECT_EQ(batched.values, scalar.values);
}

TEST(MonteCarlo, BatchedYieldIsThreadCountInvariant) {
  ap::AdcConfig fast = ap::nominal_design();
  fast.fidelity = adc::common::FidelityProfile::kFast;
  tb::DynamicTestOptions test;
  test.record_length = 1 << 11;
  const auto metric = [](const tb::DynamicTestResult& r) { return r.metrics.sndr_db; };
  tb::MonteCarloOptions serial;
  serial.num_dies = 20;  // two batched blocks + a ragged scalar tail
  serial.first_seed = 42;
  serial.threads = 1;
  tb::MonteCarloOptions parallel = serial;
  parallel.threads = 4;
  const auto a = tb::run_monte_carlo_dynamic(fast, test, metric, serial);
  const auto b = tb::run_monte_carlo_dynamic(fast, test, metric, parallel);
  EXPECT_EQ(a.values, b.values);
  EXPECT_DOUBLE_EQ(a.yield_at_least(63.0), b.yield_at_least(63.0));
}

TEST(MonteCarlo, DynamicRunnerRejectsBadInput) {
  const auto metric = [](const tb::DynamicTestResult& r) { return r.metrics.sndr_db; };
  tb::MonteCarloOptions opt;
  opt.num_dies = 0;
  EXPECT_THROW((void)tb::run_monte_carlo_dynamic(ap::nominal_design(), {}, metric, opt),
               adc::common::ConfigError);
  opt.num_dies = 1;
  EXPECT_THROW((void)tb::run_monte_carlo_dynamic(ap::nominal_design(), {}, nullptr, opt),
               adc::common::ConfigError);
}

TEST(MonteCarlo, IdealDiesAreIdentical) {
  // Without Monte-Carlo draws every seed fabricates the same (perfect) die.
  tb::MonteCarloOptions opt;
  opt.num_dies = 4;
  const auto r = tb::run_monte_carlo(ap::ideal_design(), quick_sndr, opt);
  EXPECT_NEAR(r.max - r.min, 0.0, 1e-9);
}
