/// Unit tests for the sampling clock with aperture jitter.
#include "clocking/clock.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/random.hpp"
#include "dsp/signal.hpp"
#include "dsp/fft.hpp"
#include "dsp/spectrum.hpp"
#include "pipeline/design.hpp"

namespace ck = adc::clocking;

TEST(SamplingClock, NoJitterIsExactGrid) {
  adc::common::Rng rng(1);
  ck::SamplingClock clk({110e6, 0.0}, rng);
  EXPECT_DOUBLE_EQ(clk.period(), 1.0 / 110e6);
  for (std::size_t n : {0u, 1u, 17u, 1000u}) {
    EXPECT_DOUBLE_EQ(clk.sample_instant(n), static_cast<double>(n) / 110e6);
  }
}

TEST(SamplingClock, JitterStatistics) {
  adc::common::Rng rng(2);
  const double sigma = 1e-12;
  ck::SamplingClock clk({110e6, sigma}, rng);
  const std::size_t n = 100000;
  std::vector<double> deltas;
  deltas.reserve(n);
  const double period = clk.period();
  for (std::size_t k = 0; k < n; ++k) {
    deltas.push_back(clk.sample_instant(k) - static_cast<double>(k) * period);
  }
  EXPECT_NEAR(adc::common::mean(deltas), 0.0, 3e-14);
  EXPECT_NEAR(adc::common::std_dev(deltas), sigma, 3e-14);
}

TEST(SamplingClock, InstantsVectorMatchesScalar) {
  adc::common::Rng a(3);
  adc::common::Rng b(3);
  ck::SamplingClock c1({110e6, 0.5e-12}, a);
  ck::SamplingClock c2({110e6, 0.5e-12}, b);
  const auto v = c1.instants(32);
  for (std::size_t k = 0; k < v.size(); ++k) {
    EXPECT_DOUBLE_EQ(v[k], c2.sample_instant(k));
  }
}

TEST(SamplingClock, JitterSmallComparedToPeriod) {
  adc::common::Rng rng(4);
  ck::SamplingClock clk({110e6, 0.5e-12}, rng);
  const auto t = clk.instants(10000);
  for (std::size_t k = 1; k < t.size(); ++k) {
    EXPECT_GT(t[k], t[k - 1]);  // instants stay ordered at these sigmas
  }
}

TEST(SamplingClock, RandomWalkAccumulates) {
  adc::common::Rng rng(6);
  ck::ClockSpec spec{110e6, 0.0};
  spec.random_walk_rms_s = 1e-13;
  ck::SamplingClock clk(spec, rng);
  // Variance of the walk grows ~ linearly with sample count.
  const auto t = clk.instants(20000);
  const double period = clk.period();
  std::vector<double> early;
  std::vector<double> late;
  for (std::size_t k = 0; k < 2000; ++k) {
    early.push_back(t[k] - static_cast<double>(k) * period);
  }
  for (std::size_t k = 18000; k < 20000; ++k) {
    late.push_back(t[k] - static_cast<double>(k) * period);
  }
  EXPECT_GT(adc::common::std_dev(late) + std::abs(adc::common::mean(late)),
            3.0 * (adc::common::std_dev(early) + std::abs(adc::common::mean(early))));
}

TEST(SamplingClock, ResetWalkRestoresOrigin) {
  adc::common::Rng rng(7);
  ck::ClockSpec spec{110e6, 0.0};
  spec.random_walk_rms_s = 1e-12;
  ck::SamplingClock clk(spec, rng);
  (void)clk.instants(1000);
  clk.reset_walk();
  // Immediately after reset the next instant deviates by only one step.
  const double dev = clk.sample_instant(0);
  EXPECT_LT(std::abs(dev), 6e-12);
}

TEST(SamplingClock, WanderMakesCarrierSkirts) {
  // Random-walk jitter concentrates noise *around* the carrier; white
  // jitter spreads it flat. Compare close-in vs far-out noise density.
  adc::pipeline::AdcConfig cfg = adc::pipeline::ideal_design();
  cfg.enable.aperture_jitter = true;
  cfg.clock.jitter_rms_s = 0.0;
  cfg.clock.random_walk_rms_s = 0.25e-12;
  adc::pipeline::PipelineAdc adc(cfg);
  const double fs = adc.conversion_rate();
  const auto tone = adc::dsp::coherent_frequency(10e6, fs, 1 << 13);
  const adc::dsp::SineSignal sig(0.985, tone.frequency_hz);
  const auto codes = adc.convert(sig, 1 << 13);
  const auto volts = adc::dsp::codes_to_volts(codes, 12, 2.0);
  const auto ps = adc::dsp::power_spectrum(volts);
  double close = 0.0;
  double far = 0.0;
  for (std::size_t k = 2; k <= 40; ++k) {
    close += ps[tone.cycles + k] + ps[tone.cycles - k];
    const std::size_t fk = tone.cycles + 1500 + k;
    far += 2.0 * ps[fk];
  }
  EXPECT_GT(close, 20.0 * far);
}

TEST(SamplingClock, InvalidSpecThrows) {
  adc::common::Rng rng(5);
  EXPECT_THROW(ck::SamplingClock({0.0, 0.0}, rng), adc::common::ConfigError);
  EXPECT_THROW(ck::SamplingClock({1e6, -1.0}, rng), adc::common::ConfigError);
  ck::ClockSpec bad{1e6, 0.0};
  bad.random_walk_rms_s = -1.0;
  EXPECT_THROW(ck::SamplingClock(bad, rng), adc::common::ConfigError);
}
