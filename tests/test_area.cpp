/// Unit tests for the silicon-area model.
#include "power/area.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "pipeline/design.hpp"

namespace pw = adc::power;
namespace ap = adc::pipeline;

TEST(AreaModel, TotalMatchesPaperDie) {
  const pw::AreaModel model(ap::nominal_area_spec());
  const auto a = model.estimate(ap::ScalingPolicy::paper(), 10);
  EXPECT_NEAR(a.total(), 0.86e-6, 0.02e-6);
}

TEST(AreaModel, BreakdownSums) {
  const pw::AreaModel model(ap::nominal_area_spec());
  const auto a = model.estimate(ap::ScalingPolicy::paper(), 10);
  EXPECT_NEAR(a.pipeline + a.flash + a.bias_and_references + a.digital + a.clocking +
                  a.routing,
              a.total(), 1e-15);
  EXPECT_GT(a.pipeline, 0.0);
}

TEST(AreaModel, ScalingShrinksThePipeline) {
  const pw::AreaModel model(ap::nominal_area_spec());
  const auto scaled = model.estimate(ap::ScalingPolicy::paper(), 10);
  const auto unscaled = model.estimate(ap::ScalingPolicy::uniform(), 10);
  EXPECT_LT(scaled.pipeline, 0.55 * unscaled.pipeline);
  // Only the pipeline block changes.
  EXPECT_DOUBLE_EQ(scaled.digital, unscaled.digital);
}

TEST(AreaModel, StageAreaFloorLimitsTheSaving) {
  // An absurdly aggressive policy cannot shrink a stage below the floor
  // (comparators, clocking and routing do not scale with the caps).
  const pw::AreaModel model(ap::nominal_area_spec());
  const auto tiny = model.estimate(ap::ScalingPolicy::geometric(0.3, 0.01), 10);
  const auto spec = ap::nominal_area_spec();
  EXPECT_GT(tiny.pipeline, 9.0 * 0.35 * spec.stage_unit);
}

TEST(AreaModel, InvalidSpecThrows) {
  pw::AreaSpec spec;
  spec.stage_unit = 0.0;
  EXPECT_THROW(pw::AreaModel{spec}, adc::common::ConfigError);
}
