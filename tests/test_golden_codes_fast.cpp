/// \file test_golden_codes_fast.cpp
/// Pins the `fast`-profile output codes of the characterized nominal die.
///
/// The fast profile is a *second* determinism contract, not a loosening of
/// the first: counter-based noise planes and polynomial transcendentals
/// produce different bits than the exact kernel, but the bits they produce
/// are pinned just as hard. These vectors freeze the fast kernel as shipped
/// — a later "optimization" that reorders a noise slot, re-fits a surrogate,
/// or retunes a polynomial must either reproduce them or explicitly bump
/// the contract and regenerate (together with the pinned deviates in
/// test_fast_rng.cpp).
///
/// The call order mirrors tests/test_golden_codes.cpp: convert() -> stream
/// -> convert_dc, so the two tables line up row for row. Each capture opens
/// a fresh noise epoch; the epoch *count* is part of the pinned sequence,
/// but the draws inside a capture depend only on (epoch, position) — never
/// on what earlier captures converted (see CaptureDrawsDependOnEpochIndex).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/fidelity.hpp"
#include "dsp/signal.hpp"
#include "pipeline/adc.hpp"
#include "pipeline/design.hpp"
#include "runtime/parallel.hpp"

namespace {

using adc::common::FidelityProfile;
using adc::pipeline::AdcConfig;
using adc::pipeline::PipelineAdc;

/// The same probe tone as the exact-profile golden vectors.
const adc::dsp::SineSignal& golden_tone() {
  static const adc::dsp::SineSignal tone(0.985, 10.0037e6);
  return tone;
}

AdcConfig fast_nominal(std::uint64_t seed = adc::pipeline::kNominalSeed) {
  AdcConfig config = adc::pipeline::nominal_design(seed);
  config.fidelity = FidelityProfile::kFast;
  return config;
}

// Golden vectors generated from the fast kernel at the commit introducing
// the fidelity-profile axis, with the exact call sequence of
// GoldenCodesFast.NominalDieSequence below.
//
// Re-verified under fast contract v2 (division-free log/sqrt draw math,
// kFastContractVersion == 2): the deviates moved by 1-2 ulp but every
// pinned *code* rounds identically — noise sigmas are microvolts against
// millivolt LSBs, so an ulp-level deviate shift is ~1e-10 LSB and the
// tables below are byte-for-byte the v1 tables. The underlying deviate
// pins in test_fast_rng.cpp did change and were regenerated.
const std::vector<int> kFastConvert64 = {
    2039, 3145, 3901, 4068, 3595, 2629, 1478, 507,  27,   189,  940,  2044, 3148,
    3904, 4068, 3593, 2624, 1474, 503,  27,   190,  943,  2048, 3152, 3905, 4068,
    3589, 2619, 1469, 501,  27,   193,  947,  2054, 3157, 3907, 4067, 3586, 2616,
    1465, 498,  25,   194,  951,  2058, 3160, 3909, 4066, 3583, 2611, 1460, 495,
    25,   196,  955,  2063, 3164, 3911, 4065, 3580, 2607, 1456, 492,  24};

const std::vector<int> kFastStream48 = {
    2039, 3144, 3902, 4069, 3596, 2629, 1479, 507,  28,   189,  939,  2044,
    3149, 3904, 4068, 3593, 2624, 1473, 504,  27,   190,  944,  2049, 3152,
    3906, 4067, 3589, 2620, 1469, 501,  26,   193,  947,  2053, 3157, 3908,
    4067, 3586, 2615, 1465, 498,  26,   195,  951,  2059, 3161, 3910, 4067};

const std::vector<int> kFastIdeal32 = {
    2047, 3138, 3883, 4044, 3571, 2614, 1477, 521, 50,  214, 960,
    2052, 3142, 3885, 4043, 3568, 2609, 1472, 518, 50,  216, 964,
    2057, 3146, 3887, 4043, 3565, 2605, 1468, 515, 49,  218};

const std::vector<int> kFastDc5 = {182, 1406, 2047, 2611, 4016};

TEST(GoldenCodesFast, NominalDieSequence) {
  PipelineAdc converter(fast_nominal());

  EXPECT_EQ(converter.convert(golden_tone(), 64), kFastConvert64);

  const auto stream = converter.convert_stream(golden_tone(), 48);
  EXPECT_EQ(stream.latency_cycles, 6);
  ASSERT_EQ(stream.codes.size(), 48u);
  EXPECT_EQ(stream.codes, kFastStream48);

  EXPECT_EQ(converter.convert_dc(-0.9), kFastDc5[0]);
  EXPECT_EQ(converter.convert_dc(-0.31), kFastDc5[1]);
  EXPECT_EQ(converter.convert_dc(0.0), kFastDc5[2]);
  EXPECT_EQ(converter.convert_dc(0.2718), kFastDc5[3]);
  EXPECT_EQ(converter.convert_dc(0.95), kFastDc5[4]);
}

TEST(GoldenCodesFast, IdealDesign) {
  AdcConfig config = adc::pipeline::ideal_design();
  config.fidelity = FidelityProfile::kFast;
  PipelineAdc ideal(config);
  // The ideal design disables every noise and nonlinearity source, so the
  // two profiles disagree only through transcendental rounding — which this
  // table shows is below a code: it equals the exact-profile kGoldenIdeal32.
  EXPECT_EQ(ideal.convert(golden_tone(), 32), kFastIdeal32);
}

/// Positional determinism: a capture's draws are a function of the epoch
/// *index* and the sample position, never of what earlier captures
/// converted. Two dies with different histories but equal epoch counts
/// produce identical codes. (The exact profile cannot make this promise —
/// the polar method's rejection loop makes its RNG state data-dependent.)
TEST(GoldenCodesFast, CaptureDrawsDependOnEpochIndexNotHistory) {
  PipelineAdc a(fast_nominal());
  PipelineAdc b(fast_nominal());
  (void)a.convert_dc(0.123);  // both consume exactly one epoch,
  (void)b.convert_dc(0.9);    // with very different inputs
  const auto codes_a = a.convert(golden_tone(), 64);
  const auto codes_b = b.convert(golden_tone(), 64);
  EXPECT_EQ(codes_a, codes_b);
  // The epoch count is part of the sequence: capture #2 reads different
  // noise than the pinned capture #1.
  EXPECT_NE(codes_a, kFastConvert64);
}

/// The parallel-runtime determinism contract holds under the fast profile:
/// batch conversion is bit-identical at 1 worker and at N workers, and the
/// seed-0 die reproduces the pinned vector.
TEST(GoldenCodesFast, ThreadCountInvariant) {
  constexpr std::size_t kDies = 8;
  constexpr std::size_t kSamples = 24;
  const auto job = [](std::size_t i) {
    PipelineAdc converter(fast_nominal(adc::pipeline::kNominalSeed + i));
    return converter.convert(golden_tone(), kSamples);
  };

  std::vector<std::vector<int>> serial;
  std::vector<std::vector<int>> threaded;
  {
    adc::runtime::ScopedThreadOverride one(1);
    serial = adc::runtime::parallel_map<std::vector<int>>(kDies, job);
  }
  {
    adc::runtime::ScopedThreadOverride four(4);
    threaded = adc::runtime::parallel_map<std::vector<int>>(kDies, job);
  }

  ASSERT_EQ(serial.size(), kDies);
  ASSERT_EQ(threaded.size(), kDies);
  for (std::size_t i = 0; i < kDies; ++i) {
    EXPECT_EQ(serial[i], threaded[i]) << "die " << i;
  }
  EXPECT_EQ(std::vector<int>(kFastConvert64.begin(),
                             kFastConvert64.begin() + kSamples),
            serial[0]);
}

}  // namespace
