/// Unit tests for the radix-2 FFT.
#include "dsp/fft.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"

using adc::dsp::Complex;

namespace {

std::vector<double> sine(std::size_t n, std::size_t cycles, double amplitude,
                         double phase = 0.0) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = amplitude * std::sin(2.0 * std::numbers::pi * static_cast<double>(cycles) *
                                    static_cast<double>(i) / static_cast<double>(n) +
                                phase);
  }
  return x;
}

}  // namespace

TEST(Fft, ImpulseIsFlat) {
  std::vector<Complex> data(16, Complex(0.0, 0.0));
  data[0] = Complex(1.0, 0.0);
  adc::dsp::fft_in_place(data);
  for (const auto& v : data) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, DcConcentratesInBinZero) {
  std::vector<Complex> data(32, Complex(2.0, 0.0));
  adc::dsp::fft_in_place(data);
  EXPECT_NEAR(data[0].real(), 64.0, 1e-9);
  for (std::size_t k = 1; k < data.size(); ++k) {
    EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-9);
  }
}

TEST(Fft, SingleToneLandsInItsBin) {
  const std::size_t n = 256;
  const std::size_t cycles = 19;
  const auto x = sine(n, cycles, 1.0);
  const auto spec = adc::dsp::fft_real(x);
  // |X_k| = A*n/2 at the tone bin, ~0 elsewhere.
  EXPECT_NEAR(std::abs(spec[cycles]), static_cast<double>(n) / 2.0, 1e-8);
  EXPECT_NEAR(std::abs(spec[n - cycles]), static_cast<double>(n) / 2.0, 1e-8);
  EXPECT_NEAR(std::abs(spec[cycles + 2]), 0.0, 1e-8);
}

TEST(Fft, RoundTripRestoresInput) {
  adc::common::Rng rng(3);
  std::vector<Complex> data(128);
  for (auto& v : data) v = Complex(rng.gaussian(1.0), rng.gaussian(1.0));
  const auto original = data;
  adc::dsp::fft_in_place(data);
  adc::dsp::ifft_in_place(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
  }
}

TEST(Fft, ParsevalHolds) {
  adc::common::Rng rng(4);
  const std::size_t n = 512;
  std::vector<double> x(n);
  for (auto& v : x) v = rng.gaussian(1.0);
  double time_energy = 0.0;
  for (double v : x) time_energy += v * v;
  const auto spec = adc::dsp::fft_real(x);
  double freq_energy = 0.0;
  for (const auto& v : spec) freq_energy += std::norm(v);
  freq_energy /= static_cast<double>(n);
  EXPECT_NEAR(freq_energy, time_energy, 1e-6 * time_energy);
}

TEST(Fft, Linearity) {
  adc::common::Rng rng(5);
  const std::size_t n = 64;
  std::vector<double> a(n);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.gaussian(1.0);
    b[i] = rng.gaussian(1.0);
  }
  std::vector<double> sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  const auto sa = adc::dsp::fft_real(a);
  const auto sb = adc::dsp::fft_real(b);
  const auto ss = adc::dsp::fft_real(sum);
  for (std::size_t k = 0; k < n; ++k) {
    const Complex expected = 2.0 * sa[k] + 3.0 * sb[k];
    EXPECT_NEAR(std::abs(ss[k] - expected), 0.0, 1e-9);
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> data(100, Complex(0.0, 0.0));
  EXPECT_THROW(adc::dsp::fft_in_place(data), adc::common::ConfigError);
}

TEST(PowerSpectrum, ToneAmplitudeNormalization) {
  // A sine of amplitude A must show power A^2/2 in its bin for any n.
  for (std::size_t n : {64u, 1024u, 8192u}) {
    const double a = 0.7;
    const auto ps = adc::dsp::power_spectrum(sine(n, 7, a, 0.3));
    EXPECT_NEAR(ps[7], a * a / 2.0, 1e-9) << "n=" << n;
  }
}

TEST(PowerSpectrum, DcNormalization) {
  std::vector<double> x(128, 1.5);
  const auto ps = adc::dsp::power_spectrum(x);
  EXPECT_NEAR(ps[0], 1.5 * 1.5, 1e-12);  // DC power is not doubled
}

TEST(PowerSpectrum, NyquistBinNotDoubled) {
  // Alternating +A/-A is the Nyquist tone; its power is A^2 (not 2*A^2).
  std::vector<double> x(64);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = (i % 2 == 0) ? 1.0 : -1.0;
  const auto ps = adc::dsp::power_spectrum(x);
  EXPECT_NEAR(ps[32], 1.0, 1e-12);
}

TEST(PowerSpectrum, TotalPowerMatchesTimeDomain) {
  adc::common::Rng rng(6);
  const std::size_t n = 1024;
  std::vector<double> x(n);
  for (auto& v : x) v = rng.gaussian(0.5);
  double mean_square = 0.0;
  for (double v : x) mean_square += v * v;
  mean_square /= static_cast<double>(n);
  const auto ps = adc::dsp::power_spectrum(x);
  double total = 0.0;
  for (double p : ps) total += p;
  EXPECT_NEAR(total, mean_square, 1e-9);
}
