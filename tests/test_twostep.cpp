/// Tests for the two-step (subranging) baseline converter.
#include "twostep/twostep.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dsp/linearity.hpp"
#include "dsp/signal.hpp"
#include "dsp/spectrum.hpp"

namespace ats = adc::twostep;

namespace {

ats::TwoStepConfig ideal_config() {
  auto cfg = ats::reference_design();
  cfg.enable = ats::TwoStepNonIdealities::all_off();
  return cfg;
}

adc::dsp::SpectrumMetrics dynamic_test(ats::TwoStepAdc& adc, double fin = 10e6,
                                       std::size_t n = 1 << 12) {
  const double fs = adc.conversion_rate();
  const auto tone = adc::dsp::coherent_frequency(fin, fs, n);
  const adc::dsp::SineSignal sig(0.985 * adc.full_scale_vpp() / 2.0, tone.frequency_hz);
  const auto codes = adc.convert(sig, n);
  const auto volts =
      adc::dsp::codes_to_volts(codes, adc.resolution_bits(), adc.full_scale_vpp());
  adc::dsp::SpectrumOptions opt;
  opt.fundamental_bin = tone.cycles;
  return adc::dsp::analyze_tone(volts, fs, opt);
}

}  // namespace

TEST(TwoStep, Geometry) {
  ats::TwoStepAdc adc(ideal_config());
  EXPECT_EQ(adc.resolution_bits(), 12);
  EXPECT_EQ(adc.latency_cycles(), 2);  // vs the pipeline's 6
  EXPECT_EQ(adc.comparator_count(), 63u + 127u);
  EXPECT_DOUBLE_EQ(adc.residue_gain(), 32.0);
}

TEST(TwoStep, IdealConverterReaches12Bits) {
  ats::TwoStepAdc adc(ideal_config());
  const auto m = dynamic_test(adc);
  EXPECT_GT(m.enob, 11.8);
}

TEST(TwoStep, IdealTransferEndpointsAndMidScale) {
  ats::TwoStepAdc adc(ideal_config());
  EXPECT_EQ(adc.convert_dc(-1.1), 0);
  EXPECT_EQ(adc.convert_dc(1.1), 4095);
  EXPECT_NEAR(adc.convert_dc(0.0), 2048, 1);
}

TEST(TwoStep, IdealTransferIsMonotone) {
  ats::TwoStepAdc adc(ideal_config());
  int prev = 0;
  std::vector<int> codes;
  for (double v = -1.05; v <= 1.05; v += 0.001) codes.push_back(adc.convert_dc(v));
  EXPECT_TRUE(adc::dsp::is_monotonic(codes));
  (void)prev;
}

TEST(TwoStep, FineOverRangeAbsorbsCoarseOffsets) {
  // Sloppy coarse comparators move segment boundaries; the fine flash's 2x
  // over-range digitizes the grown residue: ENOB holds.
  // The fine over-range covers boundary shifts up to half a coarse segment
  // (15.6 mV); 4 mV sigma keeps essentially every comparator inside it.
  auto cfg = ideal_config();
  cfg.enable.comparator_imperfections = true;
  cfg.coarse_comparator.sigma_offset = 4e-3;
  cfg.fine_comparator.sigma_offset = 0.0;
  ats::TwoStepAdc adc(cfg);
  EXPECT_GT(dynamic_test(adc).enob, 11.6);
}

TEST(TwoStep, CoarseOffsetsBeyondOverRangeBreakIt) {
  auto cfg = ideal_config();
  cfg.enable.comparator_imperfections = true;
  cfg.coarse_comparator.sigma_offset = 20e-3;  // tails exceed half a segment
  cfg.fine_comparator.sigma_offset = 0.0;
  ats::TwoStepAdc adc(cfg);
  EXPECT_LT(dynamic_test(adc).enob, 11.3);
}

TEST(TwoStep, LadderMismatchSetsLinearity) {
  // Segment mismatch largely averages out along the ladder (random-walk
  // INL), so visible spurs need a fairly coarse ladder.
  auto cfg = ideal_config();
  cfg.enable.ladder_mismatch = true;
  cfg.ladder_sigma = 0.02;
  ats::TwoStepAdc adc(cfg);
  const auto m = dynamic_test(adc);
  EXPECT_LT(m.sfdr_db, 80.0);
  EXPECT_GT(m.sfdr_db, 50.0);
}

TEST(TwoStep, SettlingCollapsesAboveTheDesignRate) {
  // The beta ~ 1/(sqrt(32)+1) residue amplifier is the bottleneck: at
  // 150 MS/s the same amplifier leaves visible settling error.
  auto cfg = ideal_config();
  cfg.enable.incomplete_settling = true;
  ats::TwoStepAdc at_80(cfg);
  const double at_design = dynamic_test(at_80).enob;
  cfg.conversion_rate = 150e6;
  ats::TwoStepAdc at_150(cfg);
  const double overclocked = dynamic_test(at_150).enob;
  EXPECT_GT(at_design, 11.5);
  EXPECT_LT(overclocked, at_design - 1.0);
}

TEST(TwoStep, ReferenceDesignLandsNearPublishedEnob) {
  // [5] reports ~10.2 ENOB at 80 MS/s; the reference design with every
  // mechanism enabled should sit in that neighbourhood.
  ats::TwoStepAdc adc(ats::reference_design());
  const auto m = dynamic_test(adc, 10e6, 1 << 13);
  EXPECT_GT(m.enob, 9.6);
  EXPECT_LT(m.enob, 11.2);
}

TEST(TwoStep, PowerEstimateNearPublishedClass) {
  ats::TwoStepAdc adc(ats::reference_design());
  const double watts = ats::estimate_power(adc);
  EXPECT_GT(watts, 0.08);
  EXPECT_LT(watts, 0.25);
}

TEST(TwoStep, SeedReproducible) {
  ats::TwoStepAdc a(ats::reference_design(7));
  ats::TwoStepAdc b(ats::reference_design(7));
  const adc::dsp::SineSignal tone(0.9, 9.77e6);
  EXPECT_EQ(a.convert(tone, 256), b.convert(tone, 256));
}

TEST(TwoStep, RejectsBadConfig) {
  auto cfg = ats::reference_design();
  cfg.coarse_bits = 2;
  EXPECT_THROW(ats::TwoStepAdc{cfg}, adc::common::ConfigError);
  cfg = ats::reference_design();
  cfg.settle_fraction = 0.0;
  EXPECT_THROW(ats::TwoStepAdc{cfg}, adc::common::ConfigError);
}
