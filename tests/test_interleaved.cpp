/// Tests for the two-way time-interleaved converter (the "double the rate
/// with two IP blocks" extension) and its signature mismatch spurs.
#include "pipeline/interleaved.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dsp/fft.hpp"
#include "dsp/signal.hpp"
#include "dsp/spectrum.hpp"
#include "pipeline/design.hpp"

namespace ap = adc::pipeline;
namespace ad = adc::dsp;

namespace {

/// Measure the interleaved pair with a coherent tone at the combined rate.
ad::SpectrumMetrics measure(ap::InterleavedAdc& adc, double fin = 10e6,
                            std::size_t n = 1 << 13) {
  const double fs = adc.conversion_rate();
  const auto tone = ad::coherent_frequency(fin, fs, n);
  const ad::SineSignal sig(0.985, tone.frequency_hz);
  const auto codes = adc.convert(sig, n);
  const auto volts = ad::codes_to_volts(codes, adc.resolution_bits(), adc.full_scale_vpp());
  ad::SpectrumOptions opt;
  opt.fundamental_bin = tone.cycles;
  return ad::analyze_tone(volts, fs, opt);
}

/// Power at the interleaving image f_s/2 - f_in [dBc].
double image_spur_dbc(ap::InterleavedAdc& adc, double fin = 10e6,
                      std::size_t n = 1 << 13) {
  const double fs = adc.conversion_rate();
  const auto tone = ad::coherent_frequency(fin, fs, n);
  const ad::SineSignal sig(0.985, tone.frequency_hz);
  const auto codes = adc.convert(sig, n);
  const auto volts = ad::codes_to_volts(codes, adc.resolution_bits(), adc.full_scale_vpp());
  const auto ps = ad::power_spectrum(volts);
  const std::size_t image_bin = n / 2 - tone.cycles;
  return 10.0 * std::log10(ps[image_bin] / ps[tone.cycles]);
}

}  // namespace

TEST(Interleaved, DoublesTheRate) {
  ap::InterleavedAdc adc(ap::ideal_design());
  EXPECT_DOUBLE_EQ(adc.conversion_rate(), 220e6);
  EXPECT_EQ(adc.resolution_bits(), 12);
}

TEST(Interleaved, IdealLanesAreTransparent) {
  // Two perfect dies interleave into a perfect 220 MS/s converter.
  ap::InterleavedAdc adc(ap::ideal_design());
  const auto m = measure(adc);
  EXPECT_GT(m.enob, 11.9);
}

TEST(Interleaved, RealDiesShowTheImageSpur) {
  // Two *different* nominal dies: their offset/gain mismatch modulates at
  // f_s/2 and raises the classic image at f_s/2 - f_in.
  ap::InterleavedAdc ideal(ap::ideal_design());
  ap::InterleavedAdc real(ap::nominal_design());
  EXPECT_LT(image_spur_dbc(ideal), -95.0);
  EXPECT_GT(image_spur_dbc(real), -75.0);
}

TEST(Interleaved, LaneCalibrationSuppressesTheSpur) {
  ap::InterleavedAdc adc(ap::nominal_design());
  const double before = image_spur_dbc(adc);
  const auto c = adc.calibrate_lanes(512);
  const double after = image_spur_dbc(adc);
  EXPECT_LT(after, before - 6.0);  // offset/gain part removed
  EXPECT_NE(c.offset_codes, 0.0);
  EXPECT_NE(c.gain, 1.0);
}

TEST(Interleaved, TimingSkewSpurGrowsWithInputFrequency) {
  // Offset/gain calibration cannot touch the timing-skew image, whose
  // amplitude goes as 2*pi*fin*skew/2 — it grows with fin.
  auto base = ap::ideal_design();
  ap::InterleavedAdc adc(base, /*timing_skew_s=*/3e-12);
  const double lo = image_spur_dbc(adc, 5e6);
  const double hi = image_spur_dbc(adc, 45e6);
  EXPECT_GT(hi, lo + 12.0);  // ~19 dB for 9x frequency
  // Analytic check at 45 MHz: spur/carrier = pi*fin*skew.
  const double expected = 20.0 * std::log10(M_PI * 45e6 * 3e-12);
  EXPECT_NEAR(hi, expected, 3.0);
}

TEST(Interleaved, CalibrationCoefficientsAreSane) {
  ap::InterleavedAdc adc(ap::nominal_design());
  const auto c = adc.calibrate_lanes(256);
  EXPECT_LT(std::abs(c.offset_codes), 20.0);   // a few LSB of offset
  EXPECT_NEAR(c.gain, 1.0, 0.01);              // sub-percent gain mismatch
}

TEST(Interleaved, RejectsAbsurdSkew) {
  EXPECT_THROW(ap::InterleavedAdc(ap::ideal_design(), 5e-9), adc::common::ConfigError);
}
