/// Unit tests for one 1.5-bit pipeline stage.
#include "pipeline/stage.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/random.hpp"

namespace ap = adc::pipeline;
using adc::digital::StageCode;

namespace {

ap::StageSpec clean_spec() {
  ap::StageSpec s;
  s.c1 = {275e-15, 0.0, 0.0};
  s.c2 = {275e-15, 0.0, 0.0};
  s.parasitic_input_cap = 0.0;
  s.opamp.dc_gain = 1e12;
  s.opamp.gbw_hz = 800e6;
  s.opamp.slew_rate = 1e12;
  s.opamp.bias_nominal = 8e-3;
  s.opamp.output_swing = 2.0;
  s.opamp.gm_compression = 0.0;
  s.adsc_comparator.sigma_offset = 0.0;
  s.adsc_comparator.noise_rms = 0.0;
  s.adsc_comparator.metastable_window = 0.0;
  s.leakage.i0 = 0.0;
  s.leakage.sigma_mismatch = 0.0;
  s.noise_excess = 0.0;
  return s;
}

ap::PipelineStage make_stage(const ap::StageSpec& spec, double scale = 1.0,
                             std::uint64_t seed = 1) {
  adc::common::Rng rng(seed);
  return ap::PipelineStage(spec, scale, 1.0, rng);
}

constexpr double kForever = 1.0;  // settle window >> tau

}  // namespace

TEST(PipelineStage, IdealDecisionBoundaries) {
  auto stage = make_stage(clean_spec());
  EXPECT_EQ(stage.ideal_decision(0.0), StageCode::kZero);
  EXPECT_EQ(stage.ideal_decision(0.26), StageCode::kPlus);
  EXPECT_EQ(stage.ideal_decision(-0.26), StageCode::kMinus);
  EXPECT_EQ(stage.ideal_decision(0.24), StageCode::kZero);
}

TEST(PipelineStage, IdealResidueTransfer) {
  auto stage = make_stage(clean_spec());
  adc::common::Rng noise(2);
  // In the flat middle segment the residue is exactly 2*v.
  for (double v : {-0.2, -0.1, 0.0, 0.05, 0.2}) {
    const auto r = stage.process(v, 1.0, 8e-3, kForever, 0.0, noise);
    EXPECT_EQ(r.code, StageCode::kZero);
    EXPECT_NEAR(r.residue, 2.0 * v, 1e-9) << v;
  }
  // Outer segments subtract the DAC level.
  const auto hi = stage.process(0.5, 1.0, 8e-3, kForever, 0.0, noise);
  EXPECT_EQ(hi.code, StageCode::kPlus);
  EXPECT_NEAR(hi.residue, 0.0, 1e-9);
  const auto lo = stage.process(-0.75, 1.0, 8e-3, kForever, 0.0, noise);
  EXPECT_EQ(lo.code, StageCode::kMinus);
  EXPECT_NEAR(lo.residue, -0.5, 1e-9);
}

TEST(PipelineStage, ResidueStaysInRangeForInRangeInputs) {
  auto stage = make_stage(clean_spec());
  adc::common::Rng noise(3);
  for (double v = -0.999; v <= 0.999; v += 0.01) {
    const auto r = stage.process(v, 1.0, 8e-3, kForever, 0.0, noise);
    EXPECT_LE(std::abs(r.residue), 1.0 + 1e-9) << v;
  }
}

TEST(PipelineStage, CapacitorMismatchChangesGain) {
  auto spec = clean_spec();
  spec.c1.sigma_mismatch = 0.01;  // exaggerated for visibility
  spec.c2.sigma_mismatch = 0.01;
  auto stage = make_stage(spec, 1.0, 42);
  EXPECT_NE(stage.interstage_gain(), 2.0);
  EXPECT_NEAR(stage.interstage_gain(), 2.0, 0.1);
  adc::common::Rng noise(4);
  const auto r = stage.process(0.1, 1.0, 8e-3, kForever, 0.0, noise);
  EXPECT_NEAR(r.residue, stage.interstage_gain() * 0.1, 1e-9);
}

TEST(PipelineStage, ScaledStageShrinksCapsAndNoise) {
  auto spec = clean_spec();
  spec.noise_excess = 1.0;
  auto full = make_stage(spec, 1.0, 5);
  auto third = make_stage(spec, 1.0 / 3.0, 5);
  EXPECT_NEAR(third.sampling_cap(), full.sampling_cap() / 3.0, 1e-18);
  // kT/C noise grows as sqrt(3) for the 1/3-size stage.
  EXPECT_NEAR(third.sample_noise_rms() / full.sample_noise_rms(), std::sqrt(3.0), 1e-9);
  EXPECT_DOUBLE_EQ(third.scale(), 1.0 / 3.0);
}

TEST(PipelineStage, SampleNoiseStatisticsMatchSpec) {
  auto spec = clean_spec();
  spec.noise_excess = 2.0;
  auto stage = make_stage(spec);
  adc::common::Rng noise(6);
  std::vector<double> residues;
  for (int i = 0; i < 20000; ++i) {
    residues.push_back(stage.process(0.0, 1.0, 8e-3, kForever, 0.0, noise).residue);
  }
  // residue = 2 * (sampled noise): sigma_res = 2 * sigma_sample.
  EXPECT_NEAR(adc::common::std_dev(residues), 2.0 * stage.sample_noise_rms(),
              0.05 * stage.sample_noise_rms());
}

TEST(PipelineStage, DroopShiftsResidueAtLongHold) {
  auto spec = clean_spec();
  spec.leakage.i0 = 5e-9;
  spec.leakage.k_v = 1.0;
  spec.leakage.sigma_mismatch = 0.0;
  auto stage = make_stage(spec);
  adc::common::Rng noise(7);
  const auto fast = stage.process(0.2, 1.0, 8e-3, kForever, 4.5e-9, noise);
  const auto slow = stage.process(0.2, 1.0, 8e-3, kForever, 250e-9, noise);
  EXPECT_GT(std::abs(fast.residue - slow.residue), 1e-6);
}

TEST(PipelineStage, IncompleteSettlingLeavesError) {
  auto spec = clean_spec();
  spec.opamp.dc_gain = 1e12;
  auto stage = make_stage(spec);
  adc::common::Rng noise(8);
  const double tau = stage.opamp().time_constant(stage.beta(), 8e-3);
  const auto r5 = stage.process(0.2, 1.0, 8e-3, 5.0 * tau, 0.0, noise);
  const auto r9 = stage.process(0.2, 1.0, 8e-3, 9.0 * tau, 0.0, noise);
  EXPECT_GT(std::abs(r5.residue - 0.4), std::abs(r9.residue - 0.4));
  EXPECT_NEAR(r9.residue, 0.4, 0.4 * std::exp(-8.0));
}

TEST(PipelineStage, LowBiasSettlesWorse) {
  auto stage = make_stage(clean_spec());
  adc::common::Rng noise(9);
  const auto full = stage.process(0.2, 1.0, 8e-3, 3e-9, 0.0, noise);
  const auto starved = stage.process(0.2, 1.0, 0.5e-3, 3e-9, 0.0, noise);
  EXPECT_GT(std::abs(starved.residue - 0.4), std::abs(full.residue - 0.4));
}

TEST(PipelineStage, ClipFlagOnOverrange) {
  auto spec = clean_spec();
  spec.opamp.output_swing = 1.45;
  auto stage = make_stage(spec);
  adc::common::Rng noise(10);
  // 2*0.9 - 0 would be 1.8 > swing if the decision were forced to zero; with
  // the correct +1 decision the residue is 0.8. Force via injected offsets.
  stage.inject_comparator_offset(1, 10.0);   // upper comparator never fires
  stage.inject_comparator_offset(0, -10.0);  // lower comparator always fires
  const auto r = stage.process(0.9, 1.0, 8e-3, kForever, 0.0, noise);
  EXPECT_EQ(r.code, StageCode::kZero);
  EXPECT_TRUE(r.clipped);
  EXPECT_NEAR(std::abs(r.residue), 1.45, 1e-9);
}

TEST(PipelineStage, ComparatorOffsetMovesDecisionNotResidueLaw) {
  auto stage = make_stage(clean_spec());
  stage.inject_comparator_offset(1, 0.05);  // upper threshold now 0.30
  adc::common::Rng noise(11);
  const auto r = stage.process(0.27, 1.0, 8e-3, kForever, 0.0, noise);
  EXPECT_EQ(r.code, StageCode::kZero);          // wrong decision...
  EXPECT_NEAR(r.residue, 0.54, 1e-9);           // ...but a consistent residue
}

TEST(PipelineStage, BetaFromCapacitors) {
  auto spec = clean_spec();
  spec.parasitic_input_cap = 110e-15;
  auto stage = make_stage(spec);
  EXPECT_NEAR(stage.beta(), 275.0 / (275.0 + 275.0 + 110.0), 1e-9);
}

TEST(PipelineStage, InvalidArgsThrow) {
  EXPECT_THROW((void)make_stage(clean_spec(), 0.0), adc::common::ConfigError);
  EXPECT_THROW((void)make_stage(clean_spec(), 1.5), adc::common::ConfigError);
  auto stage = make_stage(clean_spec());
  EXPECT_THROW(stage.inject_comparator_offset(2, 0.0), adc::common::ConfigError);
}

class ResidueContinuitySweep : public ::testing::TestWithParam<double> {};

TEST_P(ResidueContinuitySweep, TransferIsPiecewiseLinearWithUnitJumps) {
  // Around each decision threshold the residue jumps by exactly V_REF
  // (ideal caps): the property the digital correction inverts.
  const double th = GetParam();
  auto stage = make_stage(clean_spec());
  adc::common::Rng noise(12);
  const double eps = 1e-6;
  const auto below = stage.process(th - eps, 1.0, 8e-3, kForever, 0.0, noise);
  const auto above = stage.process(th + eps, 1.0, 8e-3, kForever, 0.0, noise);
  EXPECT_NEAR(std::abs(above.residue - below.residue), 1.0, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ResidueContinuitySweep,
                         ::testing::Values(0.25, -0.25));
