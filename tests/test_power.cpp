/// Unit tests for the power model (paper Fig. 4 and Table I power row).
#include "power/power_model.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "pipeline/design.hpp"

namespace pw = adc::power;
namespace ap = adc::pipeline;

namespace {

ap::PipelineAdc nominal_adc() { return ap::PipelineAdc(ap::nominal_design()); }

pw::PowerModel nominal_model() { return pw::PowerModel(ap::nominal_power_spec()); }

}  // namespace

TEST(PowerModel, NominalPointMatchesPaper) {
  auto adc = nominal_adc();
  const auto p = nominal_model().estimate(adc, 110e6);
  EXPECT_NEAR(p.total(), 97e-3, 2e-3);
}

TEST(PowerModel, PaperSecondPoint) {
  auto adc = nominal_adc();
  const auto p = nominal_model().estimate(adc, 130e6);
  EXPECT_NEAR(p.total(), 110e-3, 3e-3);
}

TEST(PowerModel, LinearInConversionRate) {
  auto adc = nominal_adc();
  const auto model = nominal_model();
  std::vector<double> f;
  std::vector<double> p;
  for (double rate = 10e6; rate <= 140e6; rate += 10e6) {
    f.push_back(rate);
    p.push_back(model.estimate(adc, rate).total());
  }
  const auto fit = adc::common::linear_fit(f, p);
  EXPECT_GT(fit.r_squared, 0.9999);
  EXPECT_GT(fit.intercept, 0.0);  // static blocks
  EXPECT_LT(fit.intercept, 0.03); // but analog dominates
}

TEST(PowerModel, BreakdownSumsToTotal) {
  auto adc = nominal_adc();
  const auto p = nominal_model().estimate(adc);
  EXPECT_NEAR(p.pipeline_analog + p.bias_generator + p.reference_buffer + p.bandgap_cm +
                  p.comparators + p.digital,
              p.total(), 1e-12);
  // Analog pipeline dominates at speed (a pipeline ADC truism).
  EXPECT_GT(p.pipeline_analog, 0.5 * p.total());
}

TEST(PowerModel, ScalingPolicySavesPipelinePower) {
  auto paper_cfg = ap::nominal_design();
  auto uniform_cfg = ap::nominal_design();
  uniform_cfg.scaling = ap::ScalingPolicy::uniform();
  ap::PipelineAdc paper(paper_cfg);
  ap::PipelineAdc uniform(uniform_cfg);
  const auto model = nominal_model();
  const double p_paper = model.estimate(paper, 110e6).pipeline_analog;
  const double p_uniform = model.estimate(uniform, 110e6).pipeline_analog;
  EXPECT_NEAR(p_uniform / p_paper, 10.0 / (13.0 / 3.0), 0.05);
}

TEST(PowerModel, FixedBiasBurnsMoreAtLowRate) {
  auto sc_cfg = ap::nominal_design();
  auto fixed_cfg = ap::nominal_design();
  fixed_cfg.bias_scheme = ap::BiasScheme::kFixed;
  ap::PipelineAdc sc(sc_cfg);
  ap::PipelineAdc fixed(fixed_cfg);
  const auto model = nominal_model();
  // At 20 MS/s the SC generator scales down 5.5x; the fixed one cannot.
  EXPECT_GT(model.estimate(fixed, 20e6).pipeline_analog,
            4.0 * model.estimate(sc, 20e6).pipeline_analog);
}

TEST(PowerModel, RejectsNonPositiveRate) {
  auto adc = nominal_adc();
  EXPECT_THROW((void)nominal_model().estimate(adc, 0.0), adc::common::ConfigError);
}
