/// Failure-injection tests: broken blocks must produce the signatures a
/// characterization bench would flag.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dsp/linearity.hpp"
#include "pipeline/adc.hpp"
#include "pipeline/design.hpp"
#include "testbench/dynamic_test.hpp"
#include "testbench/static_test.hpp"

namespace ap = adc::pipeline;
namespace tb = adc::testbench;

TEST(FailureInjection, StuckComparatorKillsEnob) {
  ap::PipelineAdc adc(ap::ideal_design());
  // Stage-1 upper comparator stuck low (offset far above the range).
  adc.stage_mutable(0).inject_comparator_offset(1, 10.0);
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 12;
  const auto m = tb::run_dynamic_test(adc, opt).metrics;
  EXPECT_LT(m.enob, 9.0);
}

TEST(FailureInjection, StuckComparatorTruncatesTheRange) {
  ap::PipelineAdc adc(ap::ideal_design());
  adc.stage_mutable(0).inject_comparator_offset(1, 10.0);
  // With the stage-1 upper comparator stuck low, positive inputs above
  // V_REF/4 leave a residue of 2v that the opamp swing clips: the transfer
  // saturates early and the top of the code range is unreachable.
  int max_code = 0;
  for (double v = -1.05; v <= 1.05; v += 0.001) {
    max_code = std::max(max_code, adc.convert_dc(v));
  }
  EXPECT_LT(max_code, 4000);
  // A healthy die reaches 4095.
  ap::PipelineAdc healthy(ap::ideal_design());
  EXPECT_EQ(healthy.convert_dc(1.05), 4095);
}

TEST(FailureInjection, OpampGainCollapseDegradesLinearity) {
  ap::AdcConfig cfg = ap::ideal_design();
  cfg.enable.finite_opamp_gain = true;
  cfg.stage.opamp.dc_gain = 200.0;  // a failed two-stage opamp
  ap::PipelineAdc adc(cfg);
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 12;
  const auto m = tb::run_dynamic_test(adc, opt).metrics;
  EXPECT_LT(m.enob, 10.0);
  EXPECT_LT(m.sfdr_db, 65.0);
}

TEST(FailureInjection, ReferenceErrorIsPureGainError) {
  // A 5 % low reference rescales the transfer but costs no linearity: the
  // DAC, ADSC thresholds and flash all track it.
  ap::AdcConfig cfg = ap::ideal_design();
  cfg.refs.nominal_vref = 0.95;
  ap::PipelineAdc adc(cfg);
  // Mid-scale unchanged.
  EXPECT_NEAR(adc.convert_dc(0.0), 2048, 1);
  // The code for 0.5 V moves by the gain factor.
  const int code = adc.convert_dc(0.5);
  EXPECT_NEAR(code, 2048 + static_cast<int>(0.5 / 0.95 * 2048.0), 2);
  // Linearity intact.
  const auto edges = tb::extract_transfer_edges(adc, 30);
  const auto lin = adc::dsp::edges_linearity(edges, 12);
  EXPECT_LT(std::abs(lin.inl_max), 0.1);
}

TEST(FailureInjection, StarvedBiasBreaksSettling) {
  // A broken mirror (1/20 of the intended current) leaves residues far from
  // settled: massive distortion.
  ap::AdcConfig cfg = ap::ideal_design();
  cfg.enable.incomplete_settling = true;
  cfg.mirror_master_gain = 0.5;  // instead of 10
  ap::PipelineAdc adc(cfg);
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 12;
  const auto m = tb::run_dynamic_test(adc, opt).metrics;
  EXPECT_LT(m.enob, 8.0);
}

TEST(FailureInjection, MassiveLeakageVisibleEvenAtSpeed) {
  ap::AdcConfig cfg = ap::ideal_design();
  cfg.enable.hold_leakage = true;
  cfg.stage.leakage.i0 = 1e-6;  // a resistive defect, not junction leakage
  ap::PipelineAdc adc(cfg);
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 12;
  const auto m = tb::run_dynamic_test(adc, opt).metrics;
  EXPECT_LT(m.sfdr_db, 80.0);
}

TEST(FailureInjection, DeadStageDetectableInHistogram) {
  ap::PipelineAdc adc(ap::ideal_design());
  // Both stage-3 comparators stuck: the stage always outputs code 0.
  adc.stage_mutable(2).inject_comparator_offset(0, -10.0);
  adc.stage_mutable(2).inject_comparator_offset(1, 10.0);
  tb::HistogramTestOptions opt;
  opt.samples = 1 << 18;
  bool failed_somehow = false;
  try {
    const auto lin = tb::run_histogram_test(adc, opt);
    failed_somehow = !lin.missing_codes.empty() || lin.dnl_max > 0.8;
  } catch (const adc::common::MeasurementError&) {
    failed_somehow = true;  // end codes unreachable also counts as detection
  }
  EXPECT_TRUE(failed_somehow);
}
