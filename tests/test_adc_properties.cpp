/// Property tests on the full converter: the redundancy boundary, noise
/// monotonicity, and power scaling invariants.
#include <cmath>

#include <gtest/gtest.h>

#include "pipeline/adc.hpp"
#include "pipeline/design.hpp"
#include "testbench/dynamic_test.hpp"

namespace ap = adc::pipeline;
namespace tb = adc::testbench;

namespace {

double enob_with_stage1_offset(double offset) {
  ap::AdcConfig cfg = ap::ideal_design();
  ap::PipelineAdc adc(cfg);
  adc.stage_mutable(0).inject_comparator_offset(1, offset);
  adc.stage_mutable(0).inject_comparator_offset(0, -offset);
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 12;
  return tb::run_dynamic_test(adc, opt).metrics.enob;
}

}  // namespace

/// The paper's redundancy claim, tested to the boundary: ADSC comparator
/// offsets below V_REF/4 (250 mV here) are digitally corrected; beyond the
/// boundary the converter breaks abruptly.
class RedundancyBoundary : public ::testing::TestWithParam<double> {};

TEST_P(RedundancyBoundary, OffsetsBelowQuarterVrefAreFree) {
  const double offset = GetParam();
  EXPECT_GT(enob_with_stage1_offset(offset), 11.9) << offset;
}

INSTANTIATE_TEST_SUITE_P(WithinRedundancy, RedundancyBoundary,
                         ::testing::Values(0.0, 0.05, 0.1, 0.15, 0.2, 0.24));

class RedundancyViolation : public ::testing::TestWithParam<double> {};

TEST_P(RedundancyViolation, OffsetsBeyondQuarterVrefBreakTheConverter) {
  const double offset = GetParam();
  EXPECT_LT(enob_with_stage1_offset(offset), 11.0) << offset;
}

INSTANTIATE_TEST_SUITE_P(BeyondRedundancy, RedundancyViolation,
                         ::testing::Values(0.30, 0.40, 0.50));

/// ENOB must be monotone non-increasing in every noise knob.
class NoiseMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(NoiseMonotonicity, MoreThermalNoiseNeverHelps) {
  const double excess = GetParam();
  ap::AdcConfig cfg = ap::nominal_design();
  cfg.enable = ap::NonIdealities::all_off();
  cfg.enable.thermal_noise = true;
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 12;

  cfg.stage.noise_excess = excess;
  ap::PipelineAdc a(cfg);
  const double snr_a = tb::run_dynamic_test(a, opt).metrics.snr_db;

  cfg.stage.noise_excess = excess * 2.0;
  ap::PipelineAdc b(cfg);
  const double snr_b = tb::run_dynamic_test(b, opt).metrics.snr_db;

  EXPECT_GT(snr_a, snr_b);
  // And the 3 dB step for doubled noise power once thermal dominates.
  if (excess >= 4.0) {
    EXPECT_NEAR(snr_a - snr_b, 3.0, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Excess, NoiseMonotonicity, ::testing::Values(1.0, 4.0, 16.0));

TEST(PowerScalingProperty, BiasCurrentLinearInRate) {
  ap::PipelineAdc adc(ap::nominal_design());
  const double i55 = adc.pipeline_bias_current(55e6);
  const double i110 = adc.pipeline_bias_current(110e6);
  const double i220 = adc.pipeline_bias_current(220e6);
  EXPECT_NEAR(i110 / i55, 2.0, 1e-9);
  EXPECT_NEAR(i220 / i110, 2.0, 1e-9);
}

TEST(PowerScalingProperty, ScalingPolicyOrdersPipelineCurrent) {
  auto paper_cfg = ap::nominal_design();
  auto uniform_cfg = ap::nominal_design();
  uniform_cfg.scaling = ap::ScalingPolicy::uniform();
  ap::PipelineAdc paper(paper_cfg);
  ap::PipelineAdc uniform(uniform_cfg);
  // Unscaled pipeline burns 10/4.33 = 2.3x the stage current.
  EXPECT_NEAR(uniform.pipeline_bias_current(110e6) / paper.pipeline_bias_current(110e6),
              10.0 / (13.0 / 3.0), 0.05);
}

TEST(AmplitudeProperty, MetricsDegradeGracefullyBelowFullScale) {
  // At -6 dBFS the SNR drops by ~6 dB (noise is input-independent).
  ap::PipelineAdc adc(ap::nominal_design());
  tb::DynamicTestOptions full;
  full.record_length = 1 << 12;
  tb::DynamicTestOptions half = full;
  half.amplitude_fraction = 0.4925;
  const auto m_full = tb::run_dynamic_test(adc, full).metrics;
  const auto m_half = tb::run_dynamic_test(adc, half).metrics;
  EXPECT_NEAR(m_full.snr_db - m_half.snr_db, 6.0, 1.5);
}

TEST(LatencyProperty, StreamLatencyIndependentOfContent) {
  ap::PipelineAdc adc(ap::nominal_design());
  const adc::dsp::SineSignal a(0.9, 7.1e6);
  const adc::dsp::SineSignal b(0.2, 31.7e6);
  EXPECT_EQ(adc.convert_stream(a, 64).latency_cycles,
            adc.convert_stream(b, 64).latency_cycles);
}
