/// Unit tests for the redundancy error-correction logic — including the
/// core property: an ADSC decision error within +/- V_REF/4 changes the raw
/// codes but not the corrected output.
#include "digital/correction.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ad = adc::digital;

namespace {

/// Ideal 1.5-bit decision at nominal thresholds.
ad::StageCode ideal_decision(double v, double vref) {
  if (v > vref / 4.0) return ad::StageCode::kPlus;
  if (v < -vref / 4.0) return ad::StageCode::kMinus;
  return ad::StageCode::kZero;
}

/// Run an ideal 1.5-bit pipeline in doubles, optionally forcing stage
/// `force_stage` to a wrong decision `forced` (redundancy test).
ad::RawConversion ideal_chain(double vin, int stages, int flash_bits, double vref,
                              int force_stage = -1,
                              ad::StageCode forced = ad::StageCode::kZero) {
  ad::RawConversion raw;
  double x = vin;
  for (int i = 0; i < stages; ++i) {
    ad::StageCode d = ideal_decision(x, vref);
    if (i == force_stage) d = forced;
    raw.stage_codes.push_back(d);
    x = 2.0 * x - static_cast<double>(ad::value(d)) * vref;
  }
  const int half_levels = 1 << (flash_bits - 1);
  int f = 0;
  for (int k = 0; k < (1 << flash_bits) - 1; ++k) {
    const double th = static_cast<double>(k - half_levels + 1) * vref / half_levels;
    if (x > th) ++f;
  }
  raw.flash_code = static_cast<ad::FlashCode>(f);
  return raw;
}

/// The ideal 12-bit code for vin in [-vref, vref].
int ideal_code(double vin, int bits, double vref) {
  const double levels = std::pow(2.0, bits);
  auto code = static_cast<int>(std::floor((vin + vref) / (2.0 * vref) * levels));
  if (code < 0) code = 0;
  if (code >= static_cast<int>(levels)) code = static_cast<int>(levels) - 1;
  return code;
}

}  // namespace

TEST(ErrorCorrection, MidScale) {
  const ad::ErrorCorrection ec(10, 2);
  EXPECT_EQ(ec.resolution_bits(), 12);
  EXPECT_EQ(ec.mid_code(), 2048);
  // All-zero decisions with the flash just above mid land at mid code.
  ad::RawConversion raw;
  raw.stage_codes.assign(10, ad::StageCode::kZero);
  raw.flash_code = 2;
  EXPECT_EQ(ec.correct(raw), 2048);
}

TEST(ErrorCorrection, FullScaleEndpoints) {
  const ad::ErrorCorrection ec(10, 2);
  ad::RawConversion lo;
  lo.stage_codes.assign(10, ad::StageCode::kMinus);
  lo.flash_code = 0;
  EXPECT_EQ(ec.correct(lo), 0);
  ad::RawConversion hi;
  hi.stage_codes.assign(10, ad::StageCode::kPlus);
  hi.flash_code = 3;
  EXPECT_EQ(ec.correct(hi), 4095);
}

TEST(ErrorCorrection, MatchesIdealQuantizerAcrossTheRange) {
  const ad::ErrorCorrection ec(10, 2);
  const double vref = 1.0;
  for (int k = -2000; k <= 2000; ++k) {
    // Sample mid-code voltages to avoid boundary ambiguity.
    const double v = (static_cast<double>(k) + 0.5) / 2048.0 * vref;
    if (std::abs(v) >= vref) continue;
    const auto raw = ideal_chain(v, 10, 2, vref);
    EXPECT_EQ(ec.correct(raw), ideal_code(v, 12, vref)) << "v=" << v;
  }
}

TEST(ErrorCorrection, RedundancyAbsorbsWrongDecisions) {
  // Force stage k to the neighbouring (wrong) decision towards the stage
  // input's own side: the residue stays inside +/- V_REF (the half bit of
  // overlap), so later stages re-encode the error and the corrected output
  // is unchanged. This is the redundancy property the paper relies on for
  // its loose ADSC comparators.
  const ad::ErrorCorrection ec(10, 2);
  const double vref = 1.0;
  for (int stage = 0; stage < 6; ++stage) {
    for (double v : {0.2499, 0.2501, -0.2499, -0.2501, 0.1, -0.05, 0.613, -0.387}) {
      const auto clean = ideal_chain(v, 10, 2, vref);
      // Recompute the forced stage's *input* to pick a legal wrong decision:
      // from kZero move towards the input's sign; from kPlus/kMinus move to
      // kZero. Either way the residue stays within +/- V_REF.
      double x = v;
      for (int i = 0; i < stage; ++i) {
        x = 2.0 * x -
            static_cast<double>(ad::value(clean.stage_codes[static_cast<std::size_t>(i)])) *
                vref;
      }
      const auto original = clean.stage_codes[static_cast<std::size_t>(stage)];
      // A wrong-by-one decision is only reachable by a bounded comparator
      // offset when the stage input lies within V_REF/4 of the threshold;
      // beyond that, flipping +/-1 to 0 would overrange the residue (and no
      // |offset| < V_REF/4 comparator would produce it). Skip those points.
      if (original != ad::StageCode::kZero && std::abs(x) >= vref / 2.0) continue;
      const auto flipped =
          original == ad::StageCode::kZero
              ? (x >= 0 ? ad::StageCode::kPlus : ad::StageCode::kMinus)
              : ad::StageCode::kZero;
      const auto forced = ideal_chain(v, 10, 2, vref, stage, flipped);
      const int c_clean = ec.correct(clean);
      const int c_forced = ec.correct(forced);
      EXPECT_NEAR(c_clean, c_forced, 1) << "stage " << stage << " v " << v;
    }
  }
}

TEST(ErrorCorrection, SaturatesOutOfRangePaths) {
  const ad::ErrorCorrection ec(10, 2);
  // A decision path that digitally underflows (all minus plus a forced
  // minus where plus was correct) clamps at 0 rather than wrapping.
  ad::RawConversion raw;
  raw.stage_codes.assign(10, ad::StageCode::kMinus);
  raw.flash_code = 0;
  raw.stage_codes[0] = ad::StageCode::kMinus;
  EXPECT_GE(ec.correct(raw), 0);
  raw.stage_codes.assign(10, ad::StageCode::kPlus);
  raw.flash_code = 3;
  EXPECT_LE(ec.correct(raw), 4095);
}

TEST(ErrorCorrection, OtherGeometries) {
  // 8 stages + 3-bit flash = 11 bits.
  const ad::ErrorCorrection ec(8, 3);
  EXPECT_EQ(ec.resolution_bits(), 11);
  EXPECT_EQ(ec.mid_code(), 1024);
  ad::RawConversion raw;
  raw.stage_codes.assign(8, ad::StageCode::kZero);
  raw.flash_code = 4;  // 2^(3-1)
  EXPECT_EQ(ec.correct(raw), 1024);
  const double vref = 1.0;
  for (double v : {-0.7, -0.31, 0.0, 0.123, 0.5, 0.77}) {
    const auto chain = ideal_chain(v, 8, 3, vref);
    EXPECT_NEAR(ec.correct(chain), ideal_code(v, 11, vref), 1) << v;
  }
}

TEST(ErrorCorrection, RejectsBadInput) {
  EXPECT_THROW(ad::ErrorCorrection(0, 2), adc::common::ConfigError);
  EXPECT_THROW(ad::ErrorCorrection(10, 0), adc::common::ConfigError);
  EXPECT_THROW(ad::ErrorCorrection(30, 4), adc::common::ConfigError);
  const ad::ErrorCorrection ec(10, 2);
  ad::RawConversion wrong;
  wrong.stage_codes.assign(9, ad::StageCode::kZero);
  EXPECT_THROW((void)ec.correct(wrong), adc::common::ConfigError);
}

class OffsetInjectionSweep : public ::testing::TestWithParam<double> {};

TEST_P(OffsetInjectionSweep, ThresholdOffsetBelowQuarterVrefIsInvisible) {
  // Move every stage-1 decision threshold by `offset` (a comparator offset):
  // the raw codes change, the corrected code does not (within 1 LSB).
  const double offset = GetParam();
  const ad::ErrorCorrection ec(10, 2);
  const double vref = 1.0;
  for (double v = -0.95; v < 0.95; v += 0.01) {
    // Chain with a shifted stage-1 threshold.
    ad::RawConversion raw;
    double x = v;
    for (int i = 0; i < 10; ++i) {
      ad::StageCode d;
      if (i == 0) {
        if (x > vref / 4.0 + offset) {
          d = ad::StageCode::kPlus;
        } else if (x < -vref / 4.0 + offset) {
          d = ad::StageCode::kMinus;
        } else {
          d = ad::StageCode::kZero;
        }
      } else {
        d = ideal_decision(x, vref);
      }
      raw.stage_codes.push_back(d);
      x = 2.0 * x - static_cast<double>(ad::value(d)) * vref;
    }
    const int half_levels = 2;
    int f = 0;
    for (int k = 0; k < 3; ++k) {
      const double th = static_cast<double>(k - half_levels + 1) * vref / half_levels;
      if (x > th) ++f;
    }
    raw.flash_code = static_cast<ad::FlashCode>(f);
    EXPECT_NEAR(ec.correct(raw), ideal_code(v, 12, vref), 1) << "offset " << offset
                                                             << " v " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Offsets, OffsetInjectionSweep,
                         ::testing::Values(-0.24, -0.1, -0.01, 0.01, 0.1, 0.24));
