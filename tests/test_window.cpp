/// Unit tests for window functions.
#include "dsp/window.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

using adc::dsp::WindowType;

TEST(Window, RectangularIsUnity) {
  const auto w = adc::dsp::make_window(WindowType::kRectangular, 64);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
  EXPECT_DOUBLE_EQ(adc::dsp::coherent_gain(w), 1.0);
  EXPECT_DOUBLE_EQ(adc::dsp::noise_gain(w), 1.0);
  EXPECT_DOUBLE_EQ(adc::dsp::enbw_bins(w), 1.0);
}

TEST(Window, HannGains) {
  const auto w = adc::dsp::make_window(WindowType::kHann, 4096);
  EXPECT_NEAR(adc::dsp::coherent_gain(w), 0.5, 1e-3);
  EXPECT_NEAR(adc::dsp::noise_gain(w), 0.375, 1e-3);
  EXPECT_NEAR(adc::dsp::enbw_bins(w), 1.5, 1e-2);
}

TEST(Window, BlackmanHarrisGains) {
  const auto w = adc::dsp::make_window(WindowType::kBlackmanHarris4, 4096);
  // Textbook values for the 4-term Blackman-Harris window.
  EXPECT_NEAR(adc::dsp::coherent_gain(w), 0.35875, 1e-3);
  EXPECT_NEAR(adc::dsp::enbw_bins(w), 2.0, 0.02);
}

TEST(Window, ValuesWithinUnitRange) {
  for (auto type : {WindowType::kHann, WindowType::kBlackmanHarris4}) {
    const auto w = adc::dsp::make_window(type, 257);
    for (double v : w) {
      EXPECT_GE(v, -1e-6);
      EXPECT_LE(v, 1.0 + 1e-12);
    }
  }
}

TEST(Window, HannStartsAtZero) {
  const auto w = adc::dsp::make_window(WindowType::kHann, 128);
  EXPECT_NEAR(w[0], 0.0, 1e-12);
  // Periodic (DFT-even) convention: peak at n/2.
  EXPECT_NEAR(w[64], 1.0, 1e-12);
}

TEST(Window, ApplyWindowMultiplies) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> w{0.5, 0.5, 2.0, 1.0};
  adc::dsp::apply_window(x, w);
  EXPECT_DOUBLE_EQ(x[0], 0.5);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
  EXPECT_DOUBLE_EQ(x[2], 6.0);
  EXPECT_DOUBLE_EQ(x[3], 4.0);
}

TEST(Window, ApplyWindowSizeMismatchThrows) {
  std::vector<double> x{1.0, 2.0};
  const std::vector<double> w{1.0};
  EXPECT_THROW(adc::dsp::apply_window(x, w), adc::common::ConfigError);
}

TEST(Window, LeakageSpans) {
  EXPECT_EQ(adc::dsp::leakage_span_bins(WindowType::kRectangular), 0u);
  EXPECT_EQ(adc::dsp::leakage_span_bins(WindowType::kHann), 2u);
  EXPECT_EQ(adc::dsp::leakage_span_bins(WindowType::kBlackmanHarris4), 4u);
}

TEST(Window, Names) {
  EXPECT_EQ(adc::dsp::to_string(WindowType::kRectangular), "rectangular");
  EXPECT_EQ(adc::dsp::to_string(WindowType::kHann), "hann");
  EXPECT_EQ(adc::dsp::to_string(WindowType::kBlackmanHarris4), "blackman-harris-4");
}

TEST(Window, ZeroLengthThrows) {
  EXPECT_THROW((void)adc::dsp::make_window(WindowType::kHann, 0), adc::common::ConfigError);
}

class WindowGainOrdering : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WindowGainOrdering, EnbwGrowsWithSidelobeSuppression) {
  const std::size_t n = GetParam();
  const auto rect = adc::dsp::make_window(WindowType::kRectangular, n);
  const auto hann = adc::dsp::make_window(WindowType::kHann, n);
  const auto bh = adc::dsp::make_window(WindowType::kBlackmanHarris4, n);
  EXPECT_LT(adc::dsp::enbw_bins(rect), adc::dsp::enbw_bins(hann));
  EXPECT_LT(adc::dsp::enbw_bins(hann), adc::dsp::enbw_bins(bh));
}

INSTANTIATE_TEST_SUITE_P(Lengths, WindowGainOrdering,
                         ::testing::Values(64, 256, 1024, 8192));
