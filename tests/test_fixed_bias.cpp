/// Unit tests for the conventional fixed bias generator (ablation baseline).
#include "bias/fixed_bias.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"

namespace ab = adc::bias;

TEST(FixedBias, RateIndependent) {
  ab::FixedBiasSpec spec;
  spec.design_current = 1e-3;
  spec.margin = 1.35;
  spec.sigma_process = 0.0;
  adc::common::Rng rng(1);
  const ab::FixedBiasGenerator gen(spec, rng);
  EXPECT_DOUBLE_EQ(gen.master_current(10e6), gen.master_current(200e6));
  EXPECT_DOUBLE_EQ(gen.master_current(110e6), 1.35e-3);
}

TEST(FixedBias, MarginBurnsPowerAtLowRates) {
  // The paper's argument for eq. (1): the fixed generator delivers its
  // worst-case current even at 20 MS/s, where the SC generator delivers 5.5x
  // less.
  ab::FixedBiasSpec spec;
  spec.design_current = 1e-3;
  spec.margin = 1.35;
  spec.sigma_process = 0.0;
  adc::common::Rng rng(2);
  const ab::FixedBiasGenerator gen(spec, rng);
  const double sc_like_at_20 = 1e-3 * 20e6 / 110e6;
  EXPECT_GT(gen.master_current(20e6), 7.0 * sc_like_at_20);
}

TEST(FixedBias, ProcessSpreadApplied) {
  ab::FixedBiasSpec spec;
  spec.design_current = 1e-3;
  spec.margin = 1.0;
  spec.sigma_process = 0.10;
  adc::common::Rng a(3);
  adc::common::Rng b(3);
  EXPECT_DOUBLE_EQ(ab::FixedBiasGenerator(spec, a).master_current(1.0),
                   ab::FixedBiasGenerator(spec, b).master_current(1.0));
  adc::common::Rng c(4);
  EXPECT_NE(ab::FixedBiasGenerator(spec, c).master_current(1.0), 1e-3);
}

TEST(FixedBias, InvalidSpecThrows) {
  ab::FixedBiasSpec spec;
  spec.design_current = 0.0;
  adc::common::Rng rng(5);
  EXPECT_THROW(ab::FixedBiasGenerator(spec, rng), adc::common::ConfigError);
  spec.design_current = 1e-3;
  spec.margin = 0.5;
  EXPECT_THROW(ab::FixedBiasGenerator(spec, rng), adc::common::ConfigError);
}
