/// Unit tests for the measurement harness (dynamic test, static test,
/// sweeps) against converters with known properties.
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "pipeline/design.hpp"
#include "runtime/parallel.hpp"
#include "testbench/dynamic_test.hpp"
#include "testbench/static_test.hpp"
#include "testbench/sweep.hpp"

namespace ap = adc::pipeline;
namespace tb = adc::testbench;

TEST(DynamicTest, IdealConverterReads12Bits) {
  ap::PipelineAdc adc(ap::ideal_design());
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 12;
  const auto r = tb::run_dynamic_test(adc, opt);
  EXPECT_NEAR(r.metrics.enob, 12.0, 0.1);
  // The tone snapped to an odd coherent bin near the request.
  EXPECT_EQ(r.tone.cycles % 2, 1u);
  EXPECT_NEAR(r.tone.frequency_hz, 10e6, 2.0 * 110e6 / 4096.0);
}

TEST(DynamicTest, ForcedBinMatchesToneSelection) {
  ap::PipelineAdc adc(ap::ideal_design());
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 12;
  const auto r = tb::run_dynamic_test(adc, opt);
  EXPECT_EQ(r.metrics.fundamental_bin, r.tone.cycles);
}

TEST(DynamicTest, AmplitudeFractionControlsSignalPower) {
  ap::PipelineAdc adc(ap::ideal_design());
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 12;
  opt.amplitude_fraction = 0.5;
  const auto r = tb::run_dynamic_test(adc, opt);
  EXPECT_NEAR(r.metrics.signal_amplitude, 0.5, 0.01);
}

TEST(DynamicTest, RejectsSillyAmplitude) {
  ap::PipelineAdc adc(ap::ideal_design());
  tb::DynamicTestOptions opt;
  opt.amplitude_fraction = 2.0;
  EXPECT_THROW((void)tb::run_dynamic_test(adc, opt), adc::common::ConfigError);
}

TEST(StaticTest, HistogramOnIdealIsClean) {
  ap::PipelineAdc adc(ap::ideal_design());
  tb::HistogramTestOptions opt;
  opt.samples = 1 << 19;
  const auto lin = tb::run_histogram_test(adc, opt);
  EXPECT_LT(std::abs(lin.dnl_max), 0.3);
  EXPECT_TRUE(lin.missing_codes.empty());
}

TEST(StaticTest, RequiresOverdrive) {
  ap::PipelineAdc adc(ap::ideal_design());
  tb::HistogramTestOptions opt;
  opt.overdrive_fraction = 0.9;
  EXPECT_THROW((void)tb::run_histogram_test(adc, opt), adc::common::ConfigError);
}

TEST(StaticTest, EdgeExtractionMatchesIdealTransfer) {
  ap::PipelineAdc adc(ap::ideal_design());
  const auto edges = tb::extract_transfer_edges(adc, 30);
  ASSERT_EQ(edges.size(), 4095u);
  // Edge between codes 2047 and 2048 sits at 0 V; edges are one LSB apart.
  EXPECT_NEAR(edges[2047], 0.0, 1e-5);
  EXPECT_NEAR(edges[2048] - edges[2047], 2.0 / 4096.0, 1e-5);
}

TEST(StaticTest, EdgeExtractionRefusesNoisyConverter) {
  ap::PipelineAdc adc(ap::nominal_design());  // thermal noise enabled
  EXPECT_THROW((void)tb::extract_transfer_edges(adc), adc::common::MeasurementError);
}

TEST(DynamicTest, AveragingTightensTheNoiseEstimate) {
  // Repeated measurements of ONE die: the SNR estimate's scatter shrinks
  // when each measurement averages 8 records (die-to-die variation must be
  // excluded, so a single converter is re-measured).
  ap::PipelineAdc die(ap::nominal_design());
  auto measure = [&die](int averages) {
    tb::DynamicTestOptions opt;
    opt.record_length = 1 << 10;
    opt.averages = averages;
    return tb::run_dynamic_test(die, opt).metrics.snr_db;
  };
  std::vector<double> single;
  std::vector<double> averaged;
  for (int rep = 0; rep < 8; ++rep) single.push_back(measure(1));
  for (int rep = 0; rep < 8; ++rep) averaged.push_back(measure(8));
  auto spread = [](const std::vector<double>& v) {
    double lo = v[0];
    double hi = v[0];
    for (double x : v) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    return hi - lo;
  };
  EXPECT_LT(spread(averaged), spread(single));
  // And the estimates agree in the mean.
  EXPECT_NEAR(adc::common::mean(single), adc::common::mean(averaged), 0.5);
}

TEST(DynamicTest, AveragesRejectsZero) {
  ap::PipelineAdc adc(ap::ideal_design());
  tb::DynamicTestOptions opt;
  opt.averages = 0;
  EXPECT_THROW((void)tb::run_dynamic_test(adc, opt), adc::common::ConfigError);
}

TEST(Sweep, ConversionRateKeepsToneInBand) {
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 11;
  const auto pts = tb::sweep_conversion_rate(ap::ideal_design(), {4e6, 40e6, 110e6}, opt);
  ASSERT_EQ(pts.size(), 3u);
  for (const auto& p : pts) {
    EXPECT_LT(p.result.tone.frequency_hz, p.x / 2.0);
    EXPECT_GT(p.result.metrics.enob, 11.8) << p.x;
  }
  // At 110 MS/s the requested 10 MHz is honoured.
  EXPECT_NEAR(pts[2].result.tone.frequency_hz, 10e6, 0.2e6);
}

TEST(Sweep, InputFrequencyHandlesUndersampling) {
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 11;
  const auto pts = tb::sweep_input_frequency(ap::ideal_design(), {10e6, 70e6, 120e6}, opt);
  ASSERT_EQ(pts.size(), 3u);
  // All tones digitize cleanly on the ideal converter, above Nyquist too.
  for (const auto& p : pts) {
    EXPECT_GT(p.result.metrics.enob, 11.8) << p.x;
  }
  EXPECT_GT(pts[2].x, 110e6 / 2.0);  // genuinely undersampled point
}

TEST(Sweep, SameDieAcrossPoints) {
  // The sweep must re-instantiate the same Monte-Carlo die at each point.
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 11;
  auto cfg = ap::nominal_design();
  const auto a = tb::sweep_conversion_rate(cfg, {110e6}, opt);
  const auto b = tb::sweep_conversion_rate(cfg, {110e6}, opt);
  EXPECT_DOUBLE_EQ(a[0].result.metrics.sndr_db, b[0].result.metrics.sndr_db);
}

namespace {

// Bit-pattern equality: the runtime's determinism contract promises results
// identical to the last ULP, not merely "close".
void expect_bit_identical(const std::vector<tb::SweepPoint>& a,
                          const std::vector<tb::SweepPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(bits(a[i].x), bits(b[i].x)) << "point " << i;
    EXPECT_EQ(bits(a[i].result.metrics.snr_db), bits(b[i].result.metrics.snr_db)) << i;
    EXPECT_EQ(bits(a[i].result.metrics.sndr_db), bits(b[i].result.metrics.sndr_db)) << i;
    EXPECT_EQ(bits(a[i].result.metrics.sfdr_db), bits(b[i].result.metrics.sfdr_db)) << i;
  }
}

}  // namespace

TEST(Sweep, RateSweepBitIdenticalAcrossThreadCounts) {
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 11;
  const auto cfg = ap::nominal_design();
  const std::vector<double> rates{20e6, 60e6, 110e6, 140e6};
  std::vector<tb::SweepPoint> serial;
  std::vector<tb::SweepPoint> parallel;
  {
    const adc::runtime::ScopedThreadOverride pin(1);
    serial = tb::sweep_conversion_rate(cfg, rates, opt);
  }
  {
    const adc::runtime::ScopedThreadOverride pin(4);
    parallel = tb::sweep_conversion_rate(cfg, rates, opt);
  }
  expect_bit_identical(serial, parallel);
  // Repeated parallel runs are stable too (no hidden shared state).
  {
    const adc::runtime::ScopedThreadOverride pin(4);
    expect_bit_identical(parallel, tb::sweep_conversion_rate(cfg, rates, opt));
  }
}

TEST(Sweep, FinSweepBitIdenticalAcrossThreadCounts) {
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 11;
  const auto cfg = ap::nominal_design();
  const std::vector<double> fins{5e6, 20e6, 40e6, 70e6};
  std::vector<tb::SweepPoint> serial;
  std::vector<tb::SweepPoint> parallel;
  {
    const adc::runtime::ScopedThreadOverride pin(1);
    serial = tb::sweep_input_frequency(cfg, fins, opt);
  }
  {
    const adc::runtime::ScopedThreadOverride pin(4);
    parallel = tb::sweep_input_frequency(cfg, fins, opt);
  }
  expect_bit_identical(serial, parallel);
}

TEST(Sweep, ParallelPointFailurePropagates) {
  // A point whose re-clocked config is invalid throws inside a runtime
  // worker; the batch must rethrow the ConfigError on the caller instead of
  // terminating (the old detached-thread behavior).
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 11;
  EXPECT_THROW(
      (void)tb::sweep_conversion_rate(ap::ideal_design(), {40e6, -110e6, 20e6}, opt),
      adc::common::ConfigError);
}
