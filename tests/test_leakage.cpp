/// Unit tests for the hold-node leakage (droop) model.
#include "analog/leakage.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"

namespace aa = adc::analog;

namespace {

aa::LeakageSpec matched_spec(double i0, double kv) {
  aa::LeakageSpec s;
  s.i0 = i0;
  s.k_v = kv;
  s.sigma_mismatch = 0.0;
  return s;
}

}  // namespace

TEST(HoldLeakage, NoneIsZero) {
  const auto leak = aa::HoldLeakage::none();
  EXPECT_DOUBLE_EQ(leak.differential_droop(0.7, 1e-7, 1e-12), 0.0);
}

TEST(HoldLeakage, MatchedSidesLeaveOnlySignalTerm) {
  adc::common::Rng rng(1);
  const aa::HoldLeakage leak(matched_spec(1e-9, 1.0), rng);
  // With matched sides, droop = i0*k_v*v * t/C (the constant parts cancel).
  const double droop = leak.differential_droop(0.5, 100e-9, 1e-12);
  EXPECT_NEAR(droop, 1e-9 * 1.0 * 0.5 * 100e-9 / 1e-12, 1e-9);
  EXPECT_DOUBLE_EQ(leak.differential_droop(0.0, 100e-9, 1e-12), 0.0);
}

TEST(HoldLeakage, ScalesWithHoldTimeAndCap) {
  adc::common::Rng rng(2);
  const aa::HoldLeakage leak(matched_spec(2e-9, 0.8), rng);
  const double d1 = leak.differential_droop(0.5, 50e-9, 1e-12);
  const double d2 = leak.differential_droop(0.5, 100e-9, 1e-12);
  const double d3 = leak.differential_droop(0.5, 50e-9, 2e-12);
  EXPECT_NEAR(d2, 2.0 * d1, 1e-15);
  EXPECT_NEAR(d3, 0.5 * d1, 1e-15);
}

TEST(HoldLeakage, InverseRateDependence) {
  // The Fig. 5 mechanism: at 5 MS/s the hold window is 22x longer than at
  // 110 MS/s, so the droop error is 22x larger.
  adc::common::Rng rng(3);
  const aa::HoldLeakage leak(matched_spec(1e-9, 0.9), rng);
  const double c = 0.55e-12;
  const double at_110 = leak.differential_droop(0.6, 0.5 / 110e6, c);
  const double at_5 = leak.differential_droop(0.6, 0.5 / 5e6, c);
  EXPECT_NEAR(at_5 / at_110, 22.0, 1e-6);
}

TEST(HoldLeakage, MismatchCreatesOffsetTerm) {
  aa::LeakageSpec s = matched_spec(1e-9, 0.9);
  s.sigma_mismatch = 0.2;
  adc::common::Rng rng(4);
  const aa::HoldLeakage leak(s, rng);
  // With mismatched sides, even a zero-signal hold droops differentially.
  EXPECT_NE(leak.differential_droop(0.0, 100e-9, 1e-12), 0.0);
}

TEST(HoldLeakage, ZeroHoldTimeIsZero) {
  adc::common::Rng rng(5);
  const aa::HoldLeakage leak(matched_spec(1e-9, 0.9), rng);
  EXPECT_DOUBLE_EQ(leak.differential_droop(0.5, 0.0, 1e-12), 0.0);
}

TEST(HoldLeakage, NegativeLeakageThrows) {
  aa::LeakageSpec s = matched_spec(-1e-9, 0.9);
  adc::common::Rng rng(6);
  EXPECT_THROW(aa::HoldLeakage(s, rng), adc::common::ConfigError);
}
