/// Unit tests for the Fig. 8 survey dataset and FM ranking.
#include "survey/survey.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace sv = adc::survey;

TEST(Survey, FifteenEntries) {
  const auto data = sv::fig8_dataset();
  EXPECT_EQ(data.size(), 15u);
  int this_design = 0;
  for (const auto& e : data) {
    EXPECT_EQ(e.resolution_bits, 12);
    EXPECT_GT(e.f_cr_msps, 0.0);
    EXPECT_GT(e.area_mm2, 0.0);
    EXPECT_GT(e.power_mw, 0.0);
    EXPECT_GT(e.enob, 9.0);
    if (e.is_this_design) ++this_design;
  }
  EXPECT_EQ(this_design, 1);
}

TEST(Survey, ThisDesignHasHighestFm) {
  const auto points = sv::evaluate(sv::fig8_dataset());
  EXPECT_EQ(sv::fm_rank(points, "This design"), 1u);
}

TEST(Survey, ThisDesignHasSecondLowestArea) {
  // "...this design has the highest FM and the 2nd lowest area consumption."
  const auto points = sv::evaluate(sv::fig8_dataset());
  EXPECT_EQ(sv::area_rank(points, "This design"), 2u);
}

TEST(Survey, SecondPublished1V8Part) {
  // "this converter is the 2nd published 12b ADC with 1.8V supply voltage".
  const auto points = sv::evaluate(sv::fig8_dataset());
  int count_1v8 = 0;
  for (const auto& p : points) {
    if (p.supply_class == sv::SupplyClass::k1V8) ++count_1v8;
  }
  EXPECT_EQ(count_1v8, 2);
}

TEST(Survey, FmValuesMatchEquationTwo) {
  const auto points = sv::evaluate(sv::fig8_dataset());
  for (const auto& p : points) {
    if (p.entry.is_this_design) {
      EXPECT_NEAR(p.fm, 1781.0, 15.0);
      EXPECT_NEAR(p.inv_area, 1.0 / 0.86, 1e-6);
    }
  }
}

TEST(Survey, SupplyClassification) {
  EXPECT_EQ(sv::classify_supply(1.8), sv::SupplyClass::k1V8);
  EXPECT_EQ(sv::classify_supply(2.5), sv::SupplyClass::k2V5to2V7);
  EXPECT_EQ(sv::classify_supply(2.7), sv::SupplyClass::k2V5to2V7);
  EXPECT_EQ(sv::classify_supply(3.3), sv::SupplyClass::k3Vto3V3);
  EXPECT_EQ(sv::classify_supply(5.0), sv::SupplyClass::k5V);
  EXPECT_EQ(sv::classify_supply(10.0), sv::SupplyClass::k10V);
}

TEST(Survey, CitedComparatorsPresent) {
  const auto data = sv::fig8_dataset();
  int cited = 0;
  for (const auto& e : data) {
    if (e.name.find("[5]") == 0 || e.name.find("[6]") == 0 || e.name.find("[7]") == 0) {
      ++cited;
      EXPECT_FALSE(e.synthetic);
    }
  }
  EXPECT_EQ(cited, 3);
}

TEST(Survey, OlderGenerationsHaveLowerFm) {
  // The technology trajectory the paper's Fig. 8 shows: 5 V era parts sit in
  // the bottom-left, low-voltage parts in the top-right.
  const auto points = sv::evaluate(sv::fig8_dataset());
  double best_5v = 0.0;
  double best_1v8 = 0.0;
  for (const auto& p : points) {
    if (p.supply_class == sv::SupplyClass::k5V || p.supply_class == sv::SupplyClass::k10V) {
      best_5v = std::max(best_5v, p.fm);
    }
    if (p.supply_class == sv::SupplyClass::k1V8) best_1v8 = std::max(best_1v8, p.fm);
  }
  EXPECT_GT(best_1v8, 10.0 * best_5v);
}

TEST(Survey, UnknownNameThrows) {
  const auto points = sv::evaluate(sv::fig8_dataset());
  EXPECT_THROW((void)sv::fm_rank(points, "no such ADC"), adc::common::MeasurementError);
}
