/// Unit tests for the behavioral MOS model.
#include "analog/mos.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace aa = adc::analog;

TEST(Mos, FactoryParameters) {
  const auto n = aa::MosParams::nmos_018(10.0);
  const auto p = aa::MosParams::pmos_018(10.0);
  EXPECT_EQ(n.type, aa::MosType::kNmos);
  EXPECT_EQ(p.type, aa::MosType::kPmos);
  EXPECT_GT(n.kp, p.kp);  // electron mobility > hole mobility
  EXPECT_DOUBLE_EQ(n.w_over_l, 10.0);
}

TEST(Mos, BodyEffectRaisesVth) {
  const aa::Mos m(aa::MosParams::nmos_018(1.0));
  EXPECT_DOUBLE_EQ(m.vth(0.0), m.params().vth0);
  EXPECT_GT(m.vth(0.5), m.vth(0.0));
  EXPECT_GT(m.vth(1.0), m.vth(0.5));
  // Negative vsb clamps (no forward-bias modelling).
  EXPECT_DOUBLE_EQ(m.vth(-0.3), m.params().vth0);
}

TEST(Mos, SaturationCurrent) {
  const aa::Mos m(aa::MosParams::nmos_018(20.0));
  EXPECT_DOUBLE_EQ(m.id_sat(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(m.id_sat(0.0), 0.0);
  const double i1 = m.id_sat(0.2);
  const double i2 = m.id_sat(0.4);
  EXPECT_GT(i1, 0.0);
  // Mobility degradation: less than the pure square-law 4x.
  EXPECT_GT(i2, 3.0 * i1);
  EXPECT_LT(i2, 4.0 * i1);
}

TEST(Mos, GmSquareRootLaw) {
  const aa::Mos m(aa::MosParams::nmos_018(50.0));
  const double g1 = m.gm_at_id(1e-3);
  const double g4 = m.gm_at_id(4e-3);
  EXPECT_GT(g1, 0.0);
  // gm ~ sqrt(Id): 4x current gives ~2x gm (within the mobility correction).
  EXPECT_NEAR(g4 / g1, 2.0, 0.25);
  EXPECT_DOUBLE_EQ(m.gm_at_id(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.gm_at_id(-1e-3), 0.0);
}

TEST(Mos, TriodeConductanceMonotoneInOverdrive) {
  const aa::Mos m(aa::MosParams::nmos_018(10.0));
  double prev = 0.0;
  for (double vov = 0.05; vov < 1.2; vov += 0.05) {
    const double g = m.g_on(vov);
    EXPECT_GT(g, prev);
    prev = g;
  }
}

TEST(Mos, TriodeConductanceSoftTurnOff) {
  const aa::Mos m(aa::MosParams::nmos_018(10.0));
  // Deeply off: negligible conductance, but continuous (no kink).
  EXPECT_LT(m.g_on(-0.5), 1e-7);
  EXPECT_GT(m.g_on(0.0), 0.0);  // subthreshold tail
  EXPECT_LT(m.g_on(0.0), m.g_on(0.1));
}

TEST(Mos, GOnContinuityAroundThreshold) {
  // The softplus turn-off must be smooth: finite difference slope bounded.
  const aa::Mos m(aa::MosParams::nmos_018(10.0));
  double prev = m.g_on(-0.3);
  for (double vov = -0.3; vov <= 0.3; vov += 0.005) {
    const double g = m.g_on(vov);
    EXPECT_LT(std::abs(g - prev), 0.01 * m.g_on(1.0) + 1e-12);
    prev = g;
  }
}

TEST(Mos, InvalidParamsThrow) {
  aa::MosParams bad = aa::MosParams::nmos_018(1.0);
  bad.w_over_l = -1.0;
  EXPECT_THROW(aa::Mos{bad}, adc::common::ConfigError);
  bad = aa::MosParams::nmos_018(1.0);
  bad.kp = 0.0;
  EXPECT_THROW(aa::Mos{bad}, adc::common::ConfigError);
}

class GOnWidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(GOnWidthSweep, ConductanceScalesWithWidth) {
  const double wl = GetParam();
  const aa::Mos unit(aa::MosParams::nmos_018(1.0));
  const aa::Mos wide(aa::MosParams::nmos_018(wl));
  EXPECT_NEAR(wide.g_on(0.5) / unit.g_on(0.5), wl, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Widths, GOnWidthSweep, ::testing::Values(2.0, 10.0, 60.0, 300.0));
