/// Tests for the scenario service (src/service/): wire-protocol parsing,
/// socket line framing, streamed-report/batch-report byte identity, the
/// shared warm tier (zero pool submissions on a warm run), single-flight
/// dedup across concurrent tenants, cancellation via message and via
/// disconnect (with bit-identical resume from the surviving cache entries),
/// admission control, and error paths.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "runtime/parallel.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/socket.hpp"

namespace fs = std::filesystem;
namespace json = adc::common::json;
using adc::common::ConfigError;
using namespace adc::service;

namespace {

/// A fast 4-job dynamic sweep (2 rates x 2 seeds, 256-sample records).
const char* kSmallSpec = R"({
  "name": "small",
  "stimulus": {"type": "tone", "frequency_hz": 10e6, "record_length": 256},
  "measurement": {"type": "dynamic"},
  "seeds": {"first": 42, "count": 2},
  "sweep": [{"key": "die.conversion_rate_hz", "values": [60e6, 110e6]}]
})";

/// A dearer 4-job sweep (4096-sample records) for races that need the first
/// request still active when the second arrives.
const char* kSlowSpec = R"({
  "name": "slower",
  "stimulus": {"type": "tone", "frequency_hz": 10e6, "record_length": 4096},
  "measurement": {"type": "dynamic"},
  "seeds": {"first": 7, "count": 2},
  "sweep": [{"key": "die.conversion_rate_hz", "values": [60e6, 110e6]}]
})";

json::JsonValue run_request(const char* spec_text, const std::string& id,
                            std::uint64_t max_jobs = 0) {
  auto request = json::JsonValue::object();
  request.set("type", "run");
  request.set("id", id);
  request.set("spec", json::parse(spec_text));
  if (max_jobs != 0) {
    auto options = json::JsonValue::object();
    options.set("max_jobs", max_jobs);
    request.set("options", std::move(options));
  }
  return request;
}

/// The batch CLI's report for `spec_text` computed in-process with its own
/// cold cache — the byte-identity reference for streamed summaries.
json::JsonValue batch_report(const char* spec_text, const std::string& cache_dir) {
  adc::scenario::RunOptions options;
  options.cache_dir = cache_dir;
  adc::scenario::ScenarioRunner runner(options);
  return runner.run(adc::scenario::parse_spec_text(spec_text)).report;
}

/// One protocol conversation: connects, swallows the hello, then reads
/// events on demand. Every read carries a generous deadline so a wedged
/// server fails the test instead of hanging it.
class TestClient {
 public:
  explicit TestClient(const std::string& socket_path)
      : stream_(UnixStream::connect(socket_path)) {
    const auto hello = next_event();
    EXPECT_EQ(event_type(hello), "hello");
    EXPECT_EQ(hello.find("protocol")->as_uint64(), kProtocolVersion);
  }

  void send(const json::JsonValue& request) {
    ASSERT_TRUE(stream_.write_line(json::dump_compact(request)));
  }

  /// Next event line as a document; a closed/wedged stream returns null.
  json::JsonValue next_event(int timeout_ms = 60000) {
    std::string line;
    const auto status = stream_.read_line(line, timeout_ms);
    if (status != UnixStream::ReadStatus::kLine) return json::JsonValue();
    return json::parse(line);
  }

  /// Read until an event of `wanted` type arrives, collecting every `cell`
  /// event passed on the way into `cells`.
  json::JsonValue await(const std::string& wanted,
                        std::vector<json::JsonValue>* cells = nullptr) {
    for (;;) {
      auto event = next_event();
      if (event.is_null()) {
        ADD_FAILURE() << "connection closed while waiting for \"" << wanted << "\"";
        return event;
      }
      const std::string type = event_type(event);
      if (cells != nullptr && type == "cell") cells->push_back(event);
      if (type == wanted) return event;
      if (type == "error" && wanted != "error") {
        ADD_FAILURE() << "server error while waiting for \"" << wanted
                      << "\": " << json::dump_compact(event);
        return event;
      }
    }
  }

  void close() { stream_.close(); }

 private:
  UnixStream stream_;
};

/// Fixture owning a scratch directory, a service instance, and its socket.
class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           ("adc_service_" + std::to_string(::getpid()) + "_" + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    service_.reset();
    fs::remove_all(dir_);
  }

  /// Start a service on a fresh socket + cache under the scratch dir.
  ScenarioService& start_service(std::size_t max_inflight = 4,
                                 std::size_t max_requests = 8) {
    ServiceOptions options;
    options.socket_path = (dir_ / "s.sock").string();
    options.cache_dir = (dir_ / "cache").string();
    options.max_inflight_per_connection = max_inflight;
    options.max_requests_per_connection = max_requests;
    service_ = std::make_unique<ScenarioService>(options);
    service_->start();
    return *service_;
  }

  [[nodiscard]] std::string path(const std::string& leaf) const {
    return (dir_ / leaf).string();
  }

  fs::path dir_;
  std::unique_ptr<ScenarioService> service_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Protocol parsing (no sockets involved)

TEST(ServiceProtocol, ParseRequestValidates) {
  EXPECT_THROW((void)parse_request("not json"), ConfigError);
  EXPECT_THROW((void)parse_request("[1, 2]"), ConfigError);
  EXPECT_THROW((void)parse_request(R"({"id": "x"})"), ConfigError);
  EXPECT_THROW((void)parse_request(R"({"type": "launch"})"), ConfigError);
  EXPECT_THROW((void)parse_request(R"({"type": "run", "id": "x"})"), ConfigError);
  EXPECT_THROW((void)parse_request(R"({"type": "run", "spec": {}})"), ConfigError);
  EXPECT_THROW((void)parse_request(R"({"type": "cancel"})"), ConfigError);
  EXPECT_THROW((void)parse_request(
                   R"({"type": "run", "id": "x", "spec": {}, "options": {"bogus": 1}})"),
               ConfigError);

  const auto run = parse_request(
      R"({"type": "run", "id": "r1", "spec": {"name": "x"}, "options": {"max_jobs": 3}})");
  EXPECT_EQ(run.type, Request::Type::kRun);
  EXPECT_EQ(run.id, "r1");
  EXPECT_EQ(run.max_jobs, 3u);
  EXPECT_TRUE(run.spec.is_object());

  EXPECT_EQ(parse_request(R"({"type": "status"})").type, Request::Type::kStatus);
  EXPECT_EQ(parse_request(R"({"type": "shutdown"})").type, Request::Type::kShutdown);
}

TEST(ServiceProtocol, EventBuildersRoundTrip) {
  const auto cell = cell_event("r1", 3, "abc123", CellOrigin::kDedup,
                               json::parse(R"({"snr_db": 70.5})"));
  const auto parsed = json::parse(encode_event(cell));
  EXPECT_EQ(event_type(parsed), "cell");
  EXPECT_EQ(parsed.find("origin")->as_string(), "dedup");
  EXPECT_EQ(parsed.find("index")->as_uint64(), 3u);
  EXPECT_EQ(parsed.find("metrics")->find("snr_db")->as_double(), 70.5);

  const auto error = error_event("", error_code::kBadRequest, "nope");
  EXPECT_FALSE(error.contains("id"));
  EXPECT_EQ(error.find("code")->as_string(), "bad_request");
}

// ---------------------------------------------------------------------------
// Socket framing

TEST_F(ServiceTest, SocketLineFramingRoundTrips) {
  UnixListener listener(path("frame.sock"));
  std::thread peer([&] {
    auto accepted = listener.accept(10000);
    ASSERT_TRUE(accepted.has_value());
    // Two frames in one write, then a partial line closed without newline.
    ASSERT_TRUE(accepted->write_line("first\nsecond"));
    accepted->close();
  });
  auto client = UnixStream::connect(path("frame.sock"));
  std::string line;
  ASSERT_EQ(client.read_line(line, 10000), UnixStream::ReadStatus::kLine);
  EXPECT_EQ(line, "first");
  ASSERT_EQ(client.read_line(line, 10000), UnixStream::ReadStatus::kLine);
  EXPECT_EQ(line, "second");
  // The trailing unterminated bytes are discarded at EOF.
  EXPECT_EQ(client.read_line(line, 10000), UnixStream::ReadStatus::kClosed);
  peer.join();
}

TEST_F(ServiceTest, SocketPathTooLongIsRejected) {
  const std::string long_path = path(std::string(200, 'x'));
  EXPECT_THROW((void)UnixListener(long_path), ConfigError);
  EXPECT_THROW((void)UnixStream::connect(long_path), ConfigError);
}

TEST_F(ServiceTest, SocketWriteDeadlineBoundsAStalledPeer) {
  UnixListener listener(path("stall.sock"));
  auto client = UnixStream::connect(path("stall.sock"));
  auto accepted = listener.accept(10000);
  ASSERT_TRUE(accepted.has_value());

  // The client never reads: the socket buffers fill, after which every
  // write must fail within its deadline instead of blocking forever.
  const std::string line(64 * 1024, 'x');
  const auto start = std::chrono::steady_clock::now();
  bool failed = false;
  for (int i = 0; i < 100 && !failed; ++i) {
    failed = !accepted->write_line(line, /*timeout_ms=*/250);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(failed) << "writes to a stalled peer kept succeeding";
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(), 30);
}

TEST_F(ServiceTest, ListenerRefusesToStealALiveListenersPath) {
  UnixListener first(path("live.sock"));
  try {
    UnixListener second(path("live.sock"));
    FAIL() << "second listener bound a path a live listener is serving";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("already in use"), std::string::npos);
  }
  // The live listener is untouched: a client can still connect.
  std::thread peer([&] {
    auto conn = first.accept(10000);
    EXPECT_TRUE(conn.has_value());
  });
  auto client = UnixStream::connect(path("live.sock"));
  EXPECT_TRUE(client.valid());
  peer.join();
}

TEST_F(ServiceTest, ListenerReclaimsAStaleSocketFile) {
  // Simulate a crashed daemon: a bound socket file whose owner is gone.
  const std::string stale = path("stale.sock");
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, stale.c_str(), stale.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)), 0);
  ::close(fd);  // no unlink: the file stays behind, but nothing answers

  UnixListener listener(stale);  // reclaims the stale file instead of throwing
  std::thread peer([&] {
    auto conn = listener.accept(10000);
    EXPECT_TRUE(conn.has_value());
  });
  auto client = UnixStream::connect(stale);
  EXPECT_TRUE(client.valid());
  peer.join();
}

// ---------------------------------------------------------------------------
// End-to-end service behaviour

TEST_F(ServiceTest, StreamedReportMatchesBatchByteForByte) {
  auto& service = start_service();
  TestClient client(service.socket_path());
  client.send(run_request(kSmallSpec, "r1"));

  const auto accepted = client.await("accepted");
  EXPECT_EQ(accepted.find("jobs")->as_uint64(), 4u);
  std::vector<json::JsonValue> cells;
  const auto summary = client.await("summary", &cells);

  ASSERT_EQ(cells.size(), 4u);
  for (const auto& cell : cells) {
    EXPECT_EQ(cell.find("origin")->as_string(), "miss");  // cold cache
  }
  EXPECT_EQ(summary.find("computed")->as_uint64(), 4u);
  EXPECT_EQ(summary.find("cache_hits")->as_uint64(), 0u);

  const auto reference = batch_report(kSmallSpec, path("batch_cache"));
  EXPECT_EQ(json::dump(*summary.find("report")), json::dump(reference));
}

TEST_F(ServiceTest, WarmRunServedEntirelyFromCacheWithZeroSubmissions) {
  auto& service = start_service();
  {
    TestClient first(service.socket_path());
    first.send(run_request(kSmallSpec, "cold"));
    (void)first.await("summary");
  }
  const auto before = adc::runtime::global_pool().counters().submitted;

  TestClient second(service.socket_path());
  second.send(run_request(kSmallSpec, "warm"));
  std::vector<json::JsonValue> cells;
  const auto summary = second.await("summary", &cells);

  EXPECT_EQ(summary.find("cache_hits")->as_uint64(), 4u);
  EXPECT_EQ(summary.find("computed")->as_uint64(), 0u);
  ASSERT_EQ(cells.size(), 4u);
  for (const auto& cell : cells) {
    EXPECT_EQ(cell.find("origin")->as_string(), "hit");
  }
  EXPECT_EQ(adc::runtime::global_pool().counters().submitted, before)
      << "a fully cached request must not submit pool jobs";
}

TEST_F(ServiceTest, AcceptedAlwaysPrecedesCellsEvenOnAWarmCache) {
  auto& service = start_service();
  {
    TestClient prime(service.socket_path());
    prime.send(run_request(kSmallSpec, "prime"));
    (void)prime.await("summary");
  }
  // On a fully warm cache the scheduler can produce every cell and the
  // summary the instant the run is published; the per-connection FIFO must
  // still deliver `accepted` first, the cells next, and the summary last.
  for (int round = 0; round < 5; ++round) {
    TestClient client(service.socket_path());
    client.send(run_request(kSmallSpec, "warm" + std::to_string(round)));
    std::vector<std::string> order;
    for (;;) {
      const auto event = client.next_event();
      ASSERT_FALSE(event.is_null()) << "connection closed mid-run";
      order.push_back(event_type(event));
      ASSERT_NE(order.back(), "error") << json::dump_compact(event);
      if (order.back() == "summary") break;
    }
    ASSERT_EQ(order.size(), 6u);
    EXPECT_EQ(order.front(), "accepted");
    for (std::size_t i = 1; i + 1 < order.size(); ++i) EXPECT_EQ(order[i], "cell");
  }
}

TEST_F(ServiceTest, ConcurrentDuplicateRequestsComputeEachCellOnce) {
  auto& service = start_service();
  const auto before = adc::runtime::global_pool().counters().submitted;

  std::atomic<std::uint64_t> computed{0};
  std::atomic<std::uint64_t> shared{0};  // hits + dedups
  std::vector<std::string> reports(2);
  std::vector<std::thread> tenants;
  for (int t = 0; t < 2; ++t) {
    tenants.emplace_back([&, t] {
      TestClient client(service.socket_path());
      client.send(run_request(kSmallSpec, "dup"));
      const auto summary = client.await("summary");
      if (summary.is_null() || event_type(summary) != "summary") return;
      computed += summary.find("computed")->as_uint64();
      shared += summary.find("cache_hits")->as_uint64() +
                summary.find("deduped")->as_uint64();
      reports[t] = json::dump(*summary.find("report"));
    });
  }
  for (auto& tenant : tenants) tenant.join();

  // 4 unique cells, cold cache: each computed exactly once fleet-wide; the
  // other tenant's copies came from the cache or the in-flight computation.
  EXPECT_EQ(computed.load(), 4u);
  EXPECT_EQ(shared.load(), 4u);
  EXPECT_EQ(adc::runtime::global_pool().counters().submitted, before + 4);
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_FALSE(reports[0].empty());
}

TEST_F(ServiceTest, CancelMessageStopsSchedulingAndResumesBitIdentically) {
  auto& service = start_service(/*max_inflight=*/1);
  {
    TestClient client(service.socket_path());
    client.send(run_request(kSlowSpec, "r1"));
    (void)client.await("accepted");
    auto cancel = json::JsonValue::object();
    cancel.set("type", "cancel");
    cancel.set("id", "r1");
    client.send(cancel);
    std::vector<json::JsonValue> cells;
    const auto cancelled = client.await("cancelled", &cells);
    ASSERT_EQ(event_type(cancelled), "cancelled");
    EXPECT_LT(cancelled.find("delivered")->as_uint64(), 4u)
        << "cancel right after accept should stop well short of the sweep";
    // Cells finishing after the cancel are recorded but not streamed; the
    // terminal event must claim exactly the cells the client was sent.
    EXPECT_EQ(cancelled.find("delivered")->as_uint64(), cells.size());
  }

  // Whatever cells finished were stored; an identical request completes and
  // matches the batch report byte for byte.
  TestClient resumed(service.socket_path());
  resumed.send(run_request(kSlowSpec, "r2"));
  const auto summary = resumed.await("summary");
  EXPECT_EQ(summary.find("jobs")->as_uint64(), 4u);
  const auto reference = batch_report(kSlowSpec, path("batch_cache"));
  EXPECT_EQ(json::dump(*summary.find("report")), json::dump(reference));
}

TEST_F(ServiceTest, DisconnectCancelsInflightWithoutPoisoningTheCache) {
  auto& service = start_service(/*max_inflight=*/1);
  {
    TestClient client(service.socket_path());
    client.send(run_request(kSlowSpec, "doomed"));
    (void)client.await("accepted");
    client.close();  // vanish mid-sweep
  }
  // The disconnect cancels the request once its in-flight cells drain.
  for (int i = 0; i < 600; ++i) {
    if (service.counters().requests_cancelled >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(service.counters().requests_cancelled, 1u);

  TestClient survivor(service.socket_path());
  survivor.send(run_request(kSlowSpec, "retry"));
  const auto summary = survivor.await("summary");
  const auto reference = batch_report(kSlowSpec, path("batch_cache"));
  EXPECT_EQ(json::dump(*summary.find("report")), json::dump(reference));
}

TEST_F(ServiceTest, MaxJobsBudgetSkipsExcessMisses) {
  auto& service = start_service();
  TestClient client(service.socket_path());
  client.send(run_request(kSmallSpec, "budget", /*max_jobs=*/2));
  const auto summary = client.await("summary");
  EXPECT_EQ(summary.find("computed")->as_uint64(), 2u);
  EXPECT_EQ(summary.find("skipped")->as_uint64(), 2u);
  // Skipped cells appear in the report as rows with null metrics, exactly as
  // in a batch run interrupted by --max-jobs.
  std::size_t null_rows = 0;
  for (const auto& row : summary.find("report")->find("results")->items()) {
    if (row.find("metrics")->is_null()) ++null_rows;
  }
  EXPECT_EQ(null_rows, 2u);
}

TEST_F(ServiceTest, AdmissionRejectsRequestsBeyondTheBound) {
  auto& service = start_service(/*max_inflight=*/1, /*max_requests=*/1);
  TestClient client(service.socket_path());
  client.send(run_request(kSlowSpec, "first"));
  client.send(run_request(kSmallSpec, "second"));  // while `first` is active

  const auto error = client.await("error");
  EXPECT_EQ(error.find("code")->as_string(), error_code::kAdmission);
  EXPECT_EQ(error.find("id")->as_string(), "second");
  // The admitted request is unaffected by the rejection.
  const auto summary = client.await("summary");
  EXPECT_EQ(summary.find("id")->as_string(), "first");
  EXPECT_EQ(summary.find("jobs")->as_uint64(), 4u);
}

TEST_F(ServiceTest, DuplicateRequestIdIsRejected) {
  auto& service = start_service(/*max_inflight=*/1);
  TestClient client(service.socket_path());
  client.send(run_request(kSlowSpec, "same"));
  client.send(run_request(kSmallSpec, "same"));
  const auto error = client.await("error");
  EXPECT_EQ(error.find("code")->as_string(), error_code::kDuplicateId);
  (void)client.await("summary");
}

TEST_F(ServiceTest, MalformedLinesAndInvalidSpecsGetStructuredErrors) {
  auto& service = start_service();
  TestClient client(service.socket_path());

  client.send(json::JsonValue("not an object"));
  auto error = client.await("error");
  EXPECT_EQ(error.find("code")->as_string(), error_code::kBadRequest);

  auto bad_run = json::JsonValue::object();
  bad_run.set("type", "run");
  bad_run.set("id", "bad");
  bad_run.set("spec", json::parse(R"({"name": "x"})"));
  client.send(bad_run);
  error = client.await("error");
  EXPECT_EQ(error.find("code")->as_string(), error_code::kInvalidSpec);
  EXPECT_EQ(error.find("id")->as_string(), "bad");

  auto cancel = json::JsonValue::object();
  cancel.set("type", "cancel");
  cancel.set("id", "ghost");
  client.send(cancel);
  error = client.await("error");
  EXPECT_EQ(error.find("code")->as_string(), error_code::kUnknownRequest);
}

TEST_F(ServiceTest, StatusReportsRequestsCacheAndPool) {
  auto& service = start_service();
  {
    TestClient warmup(service.socket_path());
    warmup.send(run_request(kSmallSpec, "w"));
    (void)warmup.await("summary");
  }
  TestClient client(service.socket_path());
  auto status_request = json::JsonValue::object();
  status_request.set("type", "status");
  client.send(status_request);
  const auto status = client.await("status");

  EXPECT_EQ(status.find("protocol")->as_uint64(), kProtocolVersion);
  EXPECT_EQ(status.find("counters")->find("requests_completed")->as_uint64(), 1u);
  EXPECT_EQ(status.find("counters")->find("cells_computed")->as_uint64(), 4u);
  EXPECT_EQ(status.find("cache")->find("entries")->as_uint64(), 4u);
  EXPECT_TRUE(status.find("pool")->find("submitted")->is_integer());
  EXPECT_TRUE(status.find("requests")->is_array());
}

TEST_F(ServiceTest, ShutdownRequestDrainsAndRejectsNewWork) {
  auto& service = start_service();
  TestClient client(service.socket_path());
  auto shutdown = json::JsonValue::object();
  shutdown.set("type", "shutdown");
  client.send(shutdown);
  (void)client.await("bye");
  EXPECT_TRUE(service.shutdown_requested());

  client.send(run_request(kSmallSpec, "late"));
  const auto error = client.await("error");
  EXPECT_EQ(error.find("code")->as_string(), error_code::kShuttingDown);
  service.stop();
}

TEST_F(ServiceTest, UnusableCacheRootFailsStartWithOneClearError) {
  // A plain file where the cache root should be: creation must fail.
  const std::string file_as_root = path("not_a_dir");
  std::ofstream(file_as_root) << "occupied";
  ServiceOptions options;
  options.socket_path = path("s.sock");
  options.cache_dir = file_as_root;
  ScenarioService service(options);
  try {
    service.start();
    FAIL() << "start() accepted a file as the cache root";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(file_as_root), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("cache root"), std::string::npos);
  }
}
