/// Unit tests for the back-end flash converter.
#include "pipeline/flash.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"

namespace ap = adc::pipeline;

namespace {

adc::analog::ComparatorSpec clean_cmp() {
  adc::analog::ComparatorSpec s;
  s.sigma_offset = 0.0;
  s.noise_rms = 0.0;
  s.metastable_window = 0.0;
  return s;
}

}  // namespace

TEST(FlashConverter, TwoBitThresholds) {
  adc::common::Rng rng(1);
  ap::FlashConverter flash(2, clean_cmp(), 1.0, rng);
  EXPECT_EQ(flash.bits(), 2);
  EXPECT_EQ(flash.comparator_count(), 3u);
  EXPECT_DOUBLE_EQ(flash.nominal_threshold(0), -0.5);
  EXPECT_DOUBLE_EQ(flash.nominal_threshold(1), 0.0);
  EXPECT_DOUBLE_EQ(flash.nominal_threshold(2), 0.5);
}

TEST(FlashConverter, QuantizesAllSegments) {
  adc::common::Rng rng(2);
  ap::FlashConverter flash(2, clean_cmp(), 1.0, rng);
  EXPECT_EQ(flash.quantize(-0.75, 1.0), 0);
  EXPECT_EQ(flash.quantize(-0.25, 1.0), 1);
  EXPECT_EQ(flash.quantize(0.25, 1.0), 2);
  EXPECT_EQ(flash.quantize(0.75, 1.0), 3);
}

TEST(FlashConverter, IdealMatchesNoisyWhenClean) {
  adc::common::Rng rng(3);
  ap::FlashConverter flash(2, clean_cmp(), 1.0, rng);
  for (double v = -0.95; v <= 0.95; v += 0.01) {
    EXPECT_EQ(flash.quantize(v, 1.0), flash.ideal_quantize(v)) << v;
  }
}

TEST(FlashConverter, ThresholdsTrackReference) {
  adc::common::Rng rng(4);
  ap::FlashConverter flash(2, clean_cmp(), 1.0, rng);
  // With a 10% low reference, the 0.5 threshold moves to 0.45.
  EXPECT_EQ(flash.quantize(0.47, 0.9), 3);
  EXPECT_EQ(flash.quantize(0.47, 1.0), 2);
}

TEST(FlashConverter, OffsetsMoveEdges) {
  auto spec = clean_cmp();
  spec.sigma_offset = 50e-3;
  adc::common::Rng rng(5);
  ap::FlashConverter flash(2, spec, 1.0, rng);
  // Some input near a nominal edge decides differently from ideal.
  int diffs = 0;
  for (double v = -0.95; v <= 0.95; v += 0.001) {
    if (flash.quantize(v, 1.0) != flash.ideal_quantize(v)) ++diffs;
  }
  EXPECT_GT(diffs, 0);
  EXPECT_LT(diffs, 400);  // offsets are tens of mV, not the whole range
}

TEST(FlashConverter, ThreeBitGeometry) {
  adc::common::Rng rng(6);
  ap::FlashConverter flash(3, clean_cmp(), 1.0, rng);
  EXPECT_EQ(flash.comparator_count(), 7u);
  EXPECT_DOUBLE_EQ(flash.nominal_threshold(0), -0.75);
  EXPECT_DOUBLE_EQ(flash.nominal_threshold(6), 0.75);
  EXPECT_EQ(flash.quantize(0.99, 1.0), 7);
  EXPECT_EQ(flash.quantize(-0.99, 1.0), 0);
}

TEST(FlashConverter, InvalidConfigThrows) {
  adc::common::Rng rng(7);
  EXPECT_THROW(ap::FlashConverter(0, clean_cmp(), 1.0, rng), adc::common::ConfigError);
  EXPECT_THROW(ap::FlashConverter(5, clean_cmp(), 1.0, rng), adc::common::ConfigError);
  EXPECT_THROW(ap::FlashConverter(2, clean_cmp(), -1.0, rng), adc::common::ConfigError);
}
