/// \file test_batch.cpp
/// Bit-identity contract of the batch conversion engine (src/batch).
///
/// The batch engine is a throughput optimization, never a fidelity knob:
/// for every die, every sample and every ISA tier, its codes must be
/// byte-identical to PipelineAdc::convert() under the fast profile. These
/// tests pin that contract across batch shapes (single die, ragged blocks,
/// multi-block), capture sequences (the shared noise epoch), stimulus kinds,
/// and instruction tiers (forced SSE2 vs the runtime-selected one), plus the
/// golden fast codes of the characterized nominal die through the batch
/// entry point.
#include "batch/converter.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "batch/batch_api.hpp"
#include "common/error.hpp"
#include "common/fidelity.hpp"
#include "common/isa_dispatch.hpp"
#include "dsp/signal.hpp"
#include "pipeline/adc.hpp"
#include "pipeline/design.hpp"

namespace {

using adc::batch::BatchConverter;
using adc::common::BatchIsa;
using adc::common::FidelityProfile;
using adc::pipeline::AdcConfig;
using adc::pipeline::PipelineAdc;

const adc::dsp::SineSignal& golden_tone() {
  static const adc::dsp::SineSignal tone(0.985, 10.0037e6);
  return tone;
}

AdcConfig fast_nominal() {
  AdcConfig config = adc::pipeline::nominal_design();
  config.fidelity = FidelityProfile::kFast;
  return config;
}

std::vector<std::uint64_t> make_seeds(std::size_t dies) {
  std::vector<std::uint64_t> seeds;
  for (std::size_t d = 0; d < dies; ++d) {
    seeds.push_back(adc::pipeline::kNominalSeed + d);
  }
  return seeds;
}

/// Scalar reference: a fresh die per seed, `captures` sequential convert()
/// calls, returning the last capture's codes (the epoch count is part of the
/// pinned sequence).
std::vector<std::vector<int>> scalar_reference(const AdcConfig& base,
                                               const std::vector<std::uint64_t>& seeds,
                                               const adc::dsp::Signal& signal, std::size_t n,
                                               int captures = 1) {
  std::vector<std::vector<int>> out;
  for (const std::uint64_t seed : seeds) {
    AdcConfig cfg = base;
    cfg.seed = seed;
    PipelineAdc die(cfg);
    std::vector<int> codes;
    for (int c = 0; c < captures; ++c) codes = die.convert(signal, n);
    out.push_back(std::move(codes));
  }
  return out;
}

TEST(Batch, GoldenFastCodesThroughBatchEntryPoint) {
  // The first 64 fast-profile codes of the characterized nominal die — the
  // same pinned vector as test_golden_codes_fast.cpp. The batch engine must
  // reproduce the golden contract, not merely agree with today's scalar
  // binary.
  const std::vector<int> kFastConvert64 = {
      2039, 3145, 3901, 4068, 3595, 2629, 1478, 507,  27,   189,  940,  2044, 3148,
      3904, 4068, 3593, 2624, 1474, 503,  27,   190,  943,  2048, 3152, 3905, 4068,
      3589, 2619, 1469, 501,  27,   193,  947,  2054, 3157, 3907, 4067, 3586, 2616,
      1465, 498,  25,   194,  951,  2058, 3160, 3909, 4066, 3583, 2611, 1460, 495,
      25,   196,  955,  2063, 3164, 3911, 4065, 3580, 2607, 1456, 492,  24};
  const std::vector<std::uint64_t> seeds = {adc::pipeline::kNominalSeed};
  BatchConverter batch(fast_nominal(), seeds);
  const auto codes = batch.convert(golden_tone(), 64);
  ASSERT_EQ(codes.size(), 1u);
  EXPECT_EQ(codes[0], kFastConvert64);
}

TEST(Batch, BitIdenticalAcrossShapes) {
  // S x D shapes covering: single sample/die, ragged sub-block, multi-block
  // with a full and a ragged block, and a chunk-boundary-crossing capture.
  const struct {
    std::size_t samples;
    std::size_t dies;
  } shapes[] = {{1, 1}, {7, 3}, {64, 16}, {300, 5}};
  for (const auto& shape : shapes) {
    SCOPED_TRACE(testing::Message() << shape.samples << "x" << shape.dies);
    const auto seeds = make_seeds(shape.dies);
    BatchConverter batch(fast_nominal(), seeds);
    const auto got = batch.convert(golden_tone(), shape.samples);
    const auto want = scalar_reference(fast_nominal(), seeds, golden_tone(), shape.samples);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t d = 0; d < got.size(); ++d) {
      SCOPED_TRACE(testing::Message() << "die " << d);
      EXPECT_EQ(got[d], want[d]);
    }
  }
}

TEST(Batch, RepeatedCapturesAdvanceTheSharedEpoch) {
  // Capture #2 of a converter must match capture #2 of each scalar die —
  // the noise epoch advances identically on both paths.
  const auto seeds = make_seeds(3);
  BatchConverter batch(fast_nominal(), seeds);
  (void)batch.convert(golden_tone(), 32);
  const auto second = batch.convert(golden_tone(), 32);
  const auto want = scalar_reference(fast_nominal(), seeds, golden_tone(), 32, /*captures=*/2);
  for (std::size_t d = 0; d < seeds.size(); ++d) {
    EXPECT_EQ(second[d], want[d]) << "die " << d;
  }
}

TEST(Batch, MultiToneStimulusBitIdentical) {
  const adc::dsp::MultiToneSignal tone({{0.49, 9.7e6, 0.0}, {0.49, 12.3e6, 1.25}});
  const auto seeds = make_seeds(2);
  BatchConverter batch(fast_nominal(), seeds);
  const auto got = batch.convert(tone, 100);
  const auto want = scalar_reference(fast_nominal(), seeds, tone, 100);
  for (std::size_t d = 0; d < seeds.size(); ++d) {
    EXPECT_EQ(got[d], want[d]) << "die " << d;
  }
}

TEST(Batch, IdealAndPartialNonidealitiesBitIdentical) {
  // Exercises the kernel's disabled-path selects: the all-off design (no
  // noise, no jitter, no droop) and a mixed config (thermal off, rest on).
  AdcConfig ideal = adc::pipeline::ideal_design();
  ideal.fidelity = FidelityProfile::kFast;
  AdcConfig mixed = fast_nominal();
  mixed.enable.thermal_noise = false;
  mixed.enable.aperture_jitter = false;
  for (const AdcConfig& cfg : {ideal, mixed}) {
    const auto seeds = make_seeds(2);
    BatchConverter batch(cfg, seeds);
    const auto got = batch.convert(golden_tone(), 50);
    const auto want = scalar_reference(cfg, seeds, golden_tone(), 50);
    for (std::size_t d = 0; d < seeds.size(); ++d) {
      EXPECT_EQ(got[d], want[d]) << "die " << d;
    }
  }
}

TEST(Batch, ForcedSse2MatchesRuntimeTier) {
  // The cross-tier contract: the baseline kernel and whatever tier runtime
  // detection picked produce byte-identical codes. On an AVX-512 machine
  // this pins sse2 == avx512; on an SSE2-only machine it degenerates to
  // self-comparison (still a valid run, just not a cross check).
  const auto seeds = make_seeds(9);  // one full block + a 1-die ragged block
  BatchConverter forced(fast_nominal(), seeds, BatchIsa::kSse2);
  BatchConverter native(fast_nominal(), seeds);
  const auto a = forced.convert(golden_tone(), 100);
  const auto b = native.convert(golden_tone(), 100);
  for (std::size_t d = 0; d < seeds.size(); ++d) {
    EXPECT_EQ(a[d], b[d]) << "die " << d;
  }
}

TEST(Batch, SoAMathPortsBitIdenticalAcrossTiers) {
  // The exported span kernels (Philox normal fill, exp) across every tier
  // the hardware can execute, element for element.
  const BatchIsa top = adc::common::detect_batch_isa();
  constexpr std::size_t kN = 1000;
  std::vector<double> ref_fill(kN);
  adc::batch::kernel_ops(BatchIsa::kSse2).normal_fill(0x1234u, 7u, 3u, ref_fill.data(), kN);
  std::vector<double> xs(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    xs[i] = -720.0 + static_cast<double>(i) * 1.5;  // spans both exp clamps
  }
  std::vector<double> ref_exp(kN);
  adc::batch::kernel_ops(BatchIsa::kSse2).exp_span(xs.data(), ref_exp.data(), kN);
  for (const BatchIsa isa : {BatchIsa::kAvx2, BatchIsa::kAvx512}) {
    if (isa > top) continue;
    std::vector<double> fill(kN);
    adc::batch::kernel_ops(isa).normal_fill(0x1234u, 7u, 3u, fill.data(), kN);
    std::vector<double> ex(kN);
    adc::batch::kernel_ops(isa).exp_span(xs.data(), ex.data(), kN);
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(fill[i]), std::bit_cast<std::uint64_t>(ref_fill[i]))
          << adc::common::to_string(isa) << " fill[" << i << "]";
      ASSERT_EQ(std::bit_cast<std::uint64_t>(ex[i]), std::bit_cast<std::uint64_t>(ref_exp[i]))
          << adc::common::to_string(isa) << " exp[" << i << "]";
    }
  }
}

TEST(Batch, SupportGatesAndErrors) {
  EXPECT_TRUE(BatchConverter::supports(fast_nominal(), golden_tone()));
  EXPECT_FALSE(BatchConverter::supports_config(adc::pipeline::nominal_design()));  // exact
  const adc::dsp::RampSignal ramp(-1.0, 1.0, 1e-6);
  EXPECT_FALSE(BatchConverter::supports_signal(ramp));

  EXPECT_THROW(BatchConverter(adc::pipeline::nominal_design(), make_seeds(1)),
               adc::common::ConfigError);
  EXPECT_THROW(BatchConverter(fast_nominal(), std::span<const std::uint64_t>{}),
               adc::common::ConfigError);
  BatchConverter batch(fast_nominal(), make_seeds(1));
  EXPECT_THROW((void)batch.convert(ramp, 8), adc::common::ConfigError);
}

TEST(Batch, IsaResolutionPolicy) {
  EXPECT_EQ(adc::common::parse_batch_isa("avx2"), BatchIsa::kAvx2);
  EXPECT_EQ(adc::common::parse_batch_isa("AVX-512"), std::nullopt);
  // Clamp-down: asking for a stronger tier than the hardware yields the
  // hardware's tier; asking for a weaker one is honored.
  EXPECT_EQ(adc::common::resolve_batch_isa("avx512", BatchIsa::kSse2), BatchIsa::kSse2);
  EXPECT_EQ(adc::common::resolve_batch_isa("sse2", BatchIsa::kAvx512), BatchIsa::kSse2);
  EXPECT_THROW((void)adc::common::resolve_batch_isa("neon", BatchIsa::kAvx512),
               adc::common::ConfigError);
}

TEST(Batch, ZeroSampleCaptureStillAdvancesEpoch) {
  const auto seeds = make_seeds(1);
  BatchConverter batch(fast_nominal(), seeds);
  const auto empty = batch.convert(golden_tone(), 0);
  ASSERT_EQ(empty.size(), 1u);
  EXPECT_TRUE(empty[0].empty());
  // Scalar: convert(0) also opens (and burns) an epoch.
  AdcConfig cfg = fast_nominal();
  cfg.seed = seeds[0];
  PipelineAdc die(cfg);
  (void)die.convert(golden_tone(), 0);
  EXPECT_EQ(batch.convert(golden_tone(), 16)[0], die.convert(golden_tone(), 16));
}

}  // namespace
