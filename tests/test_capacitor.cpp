/// Unit tests for capacitors with mismatch and kT/C noise helper.
#include "analog/capacitor.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/random.hpp"

namespace aa = adc::analog;

TEST(Capacitor, IdealIsExact) {
  const auto c = aa::Capacitor::ideal(1e-12);
  EXPECT_DOUBLE_EQ(c.value(), 1e-12);
  EXPECT_DOUBLE_EQ(c.nominal(), 1e-12);
  EXPECT_DOUBLE_EQ(c.relative_error(), 0.0);
}

TEST(Capacitor, GlobalSpreadShiftsValue) {
  adc::common::Rng rng(1);
  const aa::CapacitorSpec spec{1e-12, 0.0, 0.15};
  const aa::Capacitor c(spec, rng);
  EXPECT_NEAR(c.value(), 1.15e-12, 1e-18);
  EXPECT_NEAR(c.relative_error(), 0.15, 1e-9);
}

TEST(Capacitor, MismatchStatistics) {
  adc::common::Rng rng(2);
  const aa::CapacitorSpec spec{1e-12, 0.01, 0.0};
  std::vector<double> errors;
  for (int i = 0; i < 20000; ++i) {
    const aa::Capacitor c(spec, rng);
    errors.push_back(c.relative_error());
  }
  EXPECT_NEAR(adc::common::mean(errors), 0.0, 5e-4);
  EXPECT_NEAR(adc::common::std_dev(errors), 0.01, 5e-4);
}

TEST(Capacitor, SeedReproducible) {
  adc::common::Rng a(7);
  adc::common::Rng b(7);
  const aa::CapacitorSpec spec{1e-12, 0.005, 0.0};
  EXPECT_DOUBLE_EQ(aa::Capacitor(spec, a).value(), aa::Capacitor(spec, b).value());
}

TEST(Capacitor, InvalidSpecsThrow) {
  adc::common::Rng rng(3);
  EXPECT_THROW(aa::Capacitor(aa::CapacitorSpec{-1e-12, 0.0, 0.0}, rng),
               adc::common::ConfigError);
  EXPECT_THROW(aa::Capacitor(aa::CapacitorSpec{1e-12, 0.9, 0.0}, rng),
               adc::common::ConfigError);
  EXPECT_THROW(aa::Capacitor::ideal(0.0), adc::common::ConfigError);
}

TEST(KtcNoise, TextbookValue) {
  // kT/C at 300 K, 1 pF: sqrt(4.14e-21 / 1e-12) = 64.3 uV.
  EXPECT_NEAR(aa::ktc_noise_rms(1e-12), 64.3e-6, 0.5e-6);
  // Scales as 1/sqrt(C).
  EXPECT_NEAR(aa::ktc_noise_rms(0.25e-12) / aa::ktc_noise_rms(1e-12), 2.0, 1e-9);
}

TEST(KtcNoise, RejectsNonPositive) {
  EXPECT_THROW((void)aa::ktc_noise_rms(0.0), adc::common::ConfigError);
}
