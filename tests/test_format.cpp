/// Unit tests for output-word format conversions.
#include "digital/format.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ad = adc::digital;

TEST(Format, OffsetBinaryToTwosComplement) {
  EXPECT_EQ(ad::twos_complement_from_offset_binary(0, 12), -2048);
  EXPECT_EQ(ad::twos_complement_from_offset_binary(2048, 12), 0);
  EXPECT_EQ(ad::twos_complement_from_offset_binary(4095, 12), 2047);
}

TEST(Format, TwosComplementToOffsetBinary) {
  EXPECT_EQ(ad::offset_binary_from_twos_complement(-2048, 12), 0);
  EXPECT_EQ(ad::offset_binary_from_twos_complement(0, 12), 2048);
  EXPECT_EQ(ad::offset_binary_from_twos_complement(2047, 12), 4095);
}

TEST(Format, RangeChecks) {
  EXPECT_THROW((void)ad::twos_complement_from_offset_binary(-1, 12),
               adc::common::ConfigError);
  EXPECT_THROW((void)ad::twos_complement_from_offset_binary(4096, 12),
               adc::common::ConfigError);
  EXPECT_THROW((void)ad::offset_binary_from_twos_complement(2048, 12),
               adc::common::ConfigError);
}

TEST(Format, GrayAdjacentCodesDifferInOneBit) {
  for (std::uint32_t c = 0; c < 4095; ++c) {
    const auto g1 = ad::gray_from_binary(c);
    const auto g2 = ad::gray_from_binary(c + 1);
    EXPECT_EQ(__builtin_popcount(g1 ^ g2), 1) << c;
  }
}

TEST(Format, GrayRoundTripExhaustive12Bit) {
  for (std::uint32_t c = 0; c < 4096; ++c) {
    EXPECT_EQ(ad::binary_from_gray(ad::gray_from_binary(c)), c);
  }
}

class TwosComplementSweep : public ::testing::TestWithParam<int> {};

TEST_P(TwosComplementSweep, RoundTripAllCodes) {
  const int bits = GetParam();
  for (int code = 0; code < (1 << bits); ++code) {
    const int tc = ad::twos_complement_from_offset_binary(code, bits);
    EXPECT_EQ(ad::offset_binary_from_twos_complement(tc, bits), code);
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, TwosComplementSweep, ::testing::Values(4, 8, 12));
