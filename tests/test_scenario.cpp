/// Tests for the scenario engine (src/scenario/): spec validation naming the
/// offending key, sweep expansion, key-order-independent hashing, cache
/// correctness (bit-identical hits, corrupt-entry eviction, env-var root),
/// and interrupted-run resume producing bit-identical reports.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "common/fidelity.hpp"
#include "common/json.hpp"
#include "scenario/cache.hpp"
#include "scenario/hash.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace fs = std::filesystem;
namespace json = adc::common::json;
using adc::common::ConfigError;
using namespace adc::scenario;

namespace {

/// A fast 4-job dynamic sweep (2 rates x 2 seeds, 256-sample records).
const char* kSmallSpec = R"({
  "name": "small",
  "stimulus": {"type": "tone", "frequency_hz": 10e6, "record_length": 256},
  "measurement": {"type": "dynamic"},
  "seeds": {"first": 42, "count": 2},
  "sweep": [{"key": "die.conversion_rate_hz", "values": [60e6, 110e6]}]
})";

/// The same document with every object's keys reordered.
const char* kSmallSpecReordered = R"({
  "sweep": [{"values": [60e6, 110e6], "key": "die.conversion_rate_hz"}],
  "seeds": {"count": 2, "first": 42},
  "measurement": {"type": "dynamic"},
  "stimulus": {"record_length": 256, "frequency_hz": 10e6, "type": "tone"},
  "name": "small"
})";

std::string validation_error(const std::string& text) {
  try {
    (void)parse_spec_text(text);
  } catch (const ConfigError& e) {
    return e.what();
  }
  return "";
}

/// Fixture managing a per-test scratch directory for caches and reports.
class ScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           ("adc_scenario_" + std::to_string(::getpid()) + "_" + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& leaf) const {
    return (dir_ / leaf).string();
  }

  fs::path dir_;
};

}  // namespace

TEST(ScenarioSpec, ValidationErrorsNameTheOffendingKey) {
  EXPECT_NE(validation_error(R"({"measurement": {"type": "dynamic"}})")
                .find("missing required key \"name\""),
            std::string::npos);
  EXPECT_NE(validation_error(R"({"name": "x"})")
                .find("missing required key \"measurement\""),
            std::string::npos);
  EXPECT_NE(validation_error(
                R"({"name": "x", "die": {"frobnicate": 1}, "measurement": {"type": "power"}})")
                .find("unknown key \"die.frobnicate\""),
            std::string::npos);
  EXPECT_NE(validation_error(R"({"name": "x", "stimulus": {"record_length": 1000},
                                 "measurement": {"type": "dynamic"}})")
                .find("\"stimulus.record_length\" must be a power of two"),
            std::string::npos);
  EXPECT_NE(validation_error(
                R"({"name": "x", "measurement": {"type": "yield", "metric": "sndr_db"}})")
                .find("missing required key \"measurement.limit\""),
            std::string::npos);
  EXPECT_NE(validation_error(
                R"({"name": "x", "measurement": {"type": "dynamic", "samples": 8192}})")
                .find("\"measurement.samples\" only applies"),
            std::string::npos);
  EXPECT_NE(validation_error(R"({"name": "x", "measurement": {"type": "power"},
                                 "sweep": [{"key": "die.oops", "values": [1]}]})")
                .find("unknown sweep key \"die.oops\""),
            std::string::npos);
  EXPECT_NE(validation_error(R"({"name": "x", "measurement": {"type": "power"},
      "sweep": [{"key": "die.vdd", "values": [1.8]}, {"key": "die.vdd", "values": [1.7]}]})")
                .find("duplicate sweep axis \"die.vdd\""),
            std::string::npos);
  EXPECT_NE(validation_error(R"({"name": "x", "stimulus": {"type": "ramp"},
                                 "measurement": {"type": "dynamic"}})")
                .find("\"stimulus.type\" \"ramp\" is incompatible"),
            std::string::npos);
  EXPECT_NE(validation_error(R"({"name": "x", "measurement": {"type": "power"},
      "sweep": [{"key": "stimulus.frequency_hz", "values": [1e6]}]})")
                .find("does not apply to measurement type \"power\""),
            std::string::npos);
}

TEST(ScenarioSpec, ExpansionIsRowMajorWithSeedsInnermost) {
  const auto spec = parse_spec_text(R"({
    "name": "grid", "measurement": {"type": "power"},
    "seeds": {"first": 7, "count": 2},
    "sweep": [
      {"key": "die.conversion_rate_hz", "values": [10e6, 20e6]},
      {"key": "die.temperature_k", "values": [250.0, 300.0, 350.0]}
    ]})");
  const auto jobs = expand_jobs(spec);
  ASSERT_EQ(jobs.size(), 12u);
  // First axis slowest, seeds innermost.
  EXPECT_EQ(jobs[0].axis_values, (std::vector<double>{10e6, 250.0}));
  EXPECT_EQ(jobs[0].seed, 7u);
  EXPECT_EQ(jobs[1].axis_values, (std::vector<double>{10e6, 250.0}));
  EXPECT_EQ(jobs[1].seed, 8u);
  EXPECT_EQ(jobs[2].axis_values, (std::vector<double>{10e6, 300.0}));
  EXPECT_EQ(jobs[11].axis_values, (std::vector<double>{20e6, 350.0}));
  for (std::size_t i = 0; i < jobs.size(); ++i) EXPECT_EQ(jobs[i].index, i);
}

TEST(ScenarioHash, StableAcrossKeyOrder) {
  const auto a = parse_spec_text(kSmallSpec);
  const auto b = parse_spec_text(kSmallSpecReordered);
  EXPECT_EQ(spec_hash(a), spec_hash(b));
  const auto jobs_a = expand_jobs(a);
  const auto jobs_b = expand_jobs(b);
  ASSERT_EQ(jobs_a.size(), jobs_b.size());
  for (std::size_t i = 0; i < jobs_a.size(); ++i) {
    EXPECT_EQ(job_hash(resolve_job(a, jobs_a[i])), job_hash(resolve_job(b, jobs_b[i])));
  }
}

TEST(ScenarioHash, DistinguishesPhysics) {
  const auto spec = parse_spec_text(kSmallSpec);
  const auto jobs = expand_jobs(spec);
  // Different seed, different operating point -> different key.
  EXPECT_NE(job_hash(resolve_job(spec, jobs[0])), job_hash(resolve_job(spec, jobs[1])));
  EXPECT_NE(job_hash(resolve_job(spec, jobs[0])), job_hash(resolve_job(spec, jobs[2])));
  // A changed stimulus changes the key.
  auto longer = parse_spec_text(std::string(kSmallSpec));
  longer.stimulus.record_length = 512;
  EXPECT_NE(job_hash(resolve_job(spec, jobs[0])), job_hash(resolve_job(longer, jobs[0])));
  // The name is presentation, not physics.
  auto renamed = json::parse(kSmallSpec);
  renamed.set("name", "renamed");
  EXPECT_EQ(spec_hash(spec), spec_hash(parse_spec(renamed)));
}

TEST_F(ScenarioTest, WarmRunIsBitIdenticalAndSubmitsZeroPoolJobs) {
  const auto spec = parse_spec_text(kSmallSpec);
  RunOptions options;
  options.cache_dir = path("cache");
  ScenarioRunner runner(options);

  const auto cold = runner.run(spec);
  EXPECT_EQ(cold.jobs_total, 4u);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.computed, 4u);

  const auto warm = runner.run(spec);
  EXPECT_EQ(warm.cache_hits, 4u);
  EXPECT_EQ(warm.computed, 0u);
  // The report a warm run assembles from cached payloads is byte-identical
  // to the cold run's.
  EXPECT_EQ(json::dump(cold.report), json::dump(warm.report));
  // And a fully cached run never touched the pool: that is the telemetry
  // CI checks in the manifest.
  EXPECT_EQ(warm.pool_before.submitted, warm.pool_after.submitted);
  EXPECT_EQ(warm.pool_before.executed, warm.pool_after.executed);
}

TEST_F(ScenarioTest, CorruptEntryIsEvictedAndRecomputed) {
  const auto spec = parse_spec_text(kSmallSpec);
  RunOptions options;
  options.cache_dir = path("cache");
  ScenarioRunner runner(options);
  const auto cold = runner.run(spec);

  // Truncate one entry on disk.
  fs::path victim;
  for (const auto& entry : fs::recursive_directory_iterator(options.cache_dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      victim = entry.path();
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out << R"({"hash": "truncated)";
  }

  const auto healed = runner.run(spec);
  EXPECT_EQ(healed.cache_hits, 3u);
  EXPECT_EQ(healed.computed, 1u);
  EXPECT_EQ(healed.cache_evictions, 1u);
  EXPECT_EQ(json::dump(cold.report), json::dump(healed.report));
}

TEST_F(ScenarioTest, EnvVarCacheDirIsHonored) {
  const std::string env_dir = path("env-cache");
  ASSERT_EQ(::setenv("ADC_SCENARIO_CACHE_DIR", env_dir.c_str(), 1), 0);
  EXPECT_EQ(ResultCache::default_root(), env_dir);

  const auto spec = parse_spec_text(R"({
    "name": "envtest",
    "stimulus": {"record_length": 256},
    "measurement": {"type": "dynamic"}
  })");
  ScenarioRunner runner;  // empty cache_dir -> env resolution
  const auto result = runner.run(spec);
  ::unsetenv("ADC_SCENARIO_CACHE_DIR");

  EXPECT_EQ(result.computed, 1u);
  ResultCache cache(env_dir);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(ResultCache::default_root(), ".adc-cache");
}

TEST_F(ScenarioTest, InterruptedRunResumesBitIdentically) {
  const auto spec = parse_spec_text(kSmallSpec);

  // Reference: uninterrupted run in its own cache.
  RunOptions reference_options;
  reference_options.cache_dir = path("cache-reference");
  const auto reference = ScenarioRunner(reference_options).run(spec);

  // Interrupted: a 1-job budget, twice, then the finishing run.
  RunOptions resumed_options;
  resumed_options.cache_dir = path("cache-resumed");
  resumed_options.max_jobs = 1;
  const auto first = ScenarioRunner(resumed_options).run(spec);
  EXPECT_EQ(first.computed, 1u);
  EXPECT_EQ(first.skipped, 3u);
  // Uncomputed points are reported with null metrics.
  EXPECT_TRUE(first.report.find("results")->items()[3].find("metrics")->is_null());

  const auto second = ScenarioRunner(resumed_options).run(spec);
  EXPECT_EQ(second.cache_hits, 1u);
  EXPECT_EQ(second.computed, 1u);

  RunOptions finish_options;
  finish_options.cache_dir = resumed_options.cache_dir;
  const auto final_run = ScenarioRunner(finish_options).run(spec);
  EXPECT_EQ(final_run.cache_hits, 2u);
  EXPECT_EQ(final_run.computed, 2u);
  EXPECT_EQ(final_run.skipped, 0u);

  // The stitched-together run is byte-identical to the uninterrupted one.
  EXPECT_EQ(json::dump(reference.report), json::dump(final_run.report));
}

TEST_F(ScenarioTest, ReportFilesAreWrittenAndStable) {
  const auto spec = parse_spec_text(kSmallSpec);
  RunOptions options;
  options.cache_dir = path("cache");
  options.report_dir = path("reports");
  ScenarioRunner runner(options);
  const auto cold = runner.run(spec);
  ASSERT_FALSE(cold.report_json_path.empty());
  ASSERT_TRUE(fs::exists(cold.report_json_path));
  ASSERT_TRUE(fs::exists(cold.report_csv_path));

  std::ifstream in(cold.report_json_path, std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  // The file round-trips through the parser and matches the in-memory report.
  EXPECT_EQ(json::dump(json::parse(text)), json::dump(cold.report));

  // CSV: header + one row per job.
  std::ifstream csv(cold.report_csv_path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(csv, line)) ++lines;
  EXPECT_EQ(lines, 1u + cold.jobs_total);
}

TEST_F(ScenarioTest, CacheStatsAndClear) {
  const auto spec = parse_spec_text(kSmallSpec);
  RunOptions options;
  options.cache_dir = path("cache");
  (void)ScenarioRunner(options).run(spec);

  ResultCache cache(options.cache_dir);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_EQ(cache.clear(), 4u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST_F(ScenarioTest, CacheStatsDocumentIsMachineReadable) {
  RunOptions options;
  options.cache_dir = path("cache");
  (void)ScenarioRunner(options).run(parse_spec_text(kSmallSpec));

  ResultCache cache(options.cache_dir);
  (void)cache.load("0000000000000000");  // one recorded miss
  const auto doc = cache.stats_document();
  EXPECT_EQ(doc.find("cache_dir")->as_string(), cache.root());
  EXPECT_EQ(doc.find("entries")->as_uint64(), 4u);
  EXPECT_GT(doc.find("bytes")->as_uint64(), 0u);
  EXPECT_EQ(doc.find("tmp_files")->as_uint64(), 0u);
  EXPECT_EQ(doc.find("claim_files")->as_uint64(), 0u);
  const auto* session = doc.find("session");
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->find("misses")->as_uint64(), 1u);
  EXPECT_EQ(session->find("hits")->as_uint64(), 0u);
  // The document survives a compact round trip (CI parses it with jq).
  EXPECT_EQ(json::dump_compact(json::parse(json::dump(doc))), json::dump_compact(doc));
}

TEST_F(ScenarioTest, UnusableCacheRootIsOneClearError) {
  std::ofstream(path("occupied")) << "a file, not a directory";

  // A file where the root should be: both creation and probe writes fail.
  ResultCache as_file(path("occupied"));
  try {
    as_file.ensure_writable();
    FAIL() << "ensure_writable accepted a plain file as the cache root";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("scenario cache root"), std::string::npos);
    EXPECT_NE(what.find(path("occupied")), std::string::npos);
  }

  // A nested path under that file cannot be created either.
  ResultCache under_file(path("occupied") + "/nested");
  EXPECT_THROW(under_file.ensure_writable(), ConfigError);

  // A cache-aware run reports the same error up front instead of a raw
  // filesystem exception mid-run.
  RunOptions options;
  options.cache_dir = path("occupied");
  EXPECT_THROW((void)ScenarioRunner(options).run(parse_spec_text(kSmallSpec)),
               ConfigError);

  // A writable root passes the same probe.
  ResultCache good(path("cache"));
  EXPECT_NO_THROW(good.ensure_writable());
}

/// The fidelity profile is physics as far as the cache is concerned: the
/// same spec under `fast` must miss every `exact` entry (and vice versa),
/// while a warm re-run of either profile stays 100% hits. A cache that
/// cross-pollinated profiles would silently serve one contract's codes as
/// the other's.
TEST_F(ScenarioTest, CacheIsolatesFidelityProfiles) {
  auto with_fidelity = [](const char* profile) {
    auto doc = json::parse(kSmallSpec);
    auto die = json::JsonValue::object();
    die.set("fidelity", profile);
    doc.set("die", std::move(die));
    return parse_spec(doc);
  };
  const auto exact_spec = with_fidelity("exact");
  const auto fast_spec = with_fidelity("fast");
  EXPECT_NE(spec_hash(exact_spec), spec_hash(fast_spec));

  RunOptions options;
  options.cache_dir = path("cache");
  ScenarioRunner runner(options);

  const auto fast_cold = runner.run(fast_spec);
  EXPECT_EQ(fast_cold.cache_hits, 0u);
  EXPECT_EQ(fast_cold.computed, 4u);

  // The exact run lands in the same cache directory but shares no entries.
  const auto exact_cold = runner.run(exact_spec);
  EXPECT_EQ(exact_cold.cache_hits, 0u);
  EXPECT_EQ(exact_cold.computed, 4u);

  // Warm re-runs of both profiles after the interleaving: all hits, and the
  // reports are byte-identical to their own cold run — not to each other's.
  const auto exact_warm = runner.run(exact_spec);
  EXPECT_EQ(exact_warm.cache_hits, 4u);
  EXPECT_EQ(exact_warm.computed, 0u);
  EXPECT_EQ(json::dump(exact_warm.report), json::dump(exact_cold.report));

  const auto fast_warm = runner.run(fast_spec);
  EXPECT_EQ(fast_warm.cache_hits, 4u);
  EXPECT_EQ(fast_warm.computed, 0u);
  EXPECT_EQ(json::dump(fast_warm.report), json::dump(fast_cold.report));

  EXPECT_NE(json::dump(fast_cold.report), json::dump(exact_cold.report));
}

/// A fast-contract bump (kFastContractVersion, folded into the golden-code
/// fingerprint) must retire every cache entry written under the previous
/// contract: v1 keys are unreachable from a v2 build, so a v2 run recomputes
/// everything and never reads — or clobbers — a v1 entry, even in the same
/// cache directory. This is the isolation the version constant buys beyond
/// the behavioral code digest (which could in principle collide across a
/// contract change that happens to reproduce the probe codes — exactly what
/// the v1 -> v2 division-free draw-math revision did).
TEST_F(ScenarioTest, CacheIsolatesFastContractVersions) {
  auto doc = json::parse(kSmallSpec);
  auto die = json::JsonValue::object();
  die.set("fidelity", "fast");
  doc.set("die", std::move(die));
  const auto spec = parse_spec(doc);

  const std::uint64_t version = adc::common::kFastContractVersion;
  ASSERT_GE(version, 2u);
  const std::uint64_t old_fp = golden_code_fingerprint_for(version - 1);
  EXPECT_NE(old_fp, golden_code_fingerprint());
  EXPECT_EQ(golden_code_fingerprint_for(version), golden_code_fingerprint());

  // Plant a poison payload under every job's *previous-contract* key.
  const auto plan = plan_scenario(spec);
  const auto jobs = expand_jobs(spec);
  ASSERT_EQ(plan.hashes.size(), jobs.size());
  ResultCache cache(path("cache"));
  cache.ensure_writable();
  std::vector<std::string> old_keys;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto job = resolve_job(spec, jobs[i]);
    EXPECT_EQ(plan.hashes[i], job_hash_with_fingerprint(job, golden_code_fingerprint()));
    const std::string old_key = job_hash_with_fingerprint(job, old_fp);
    EXPECT_NE(old_key, plan.hashes[i]) << "job " << i;
    auto poison = json::JsonValue::object();
    poison.set("poison", true);
    cache.store(old_key, poison);
    old_keys.push_back(old_key);
  }

  // The current build plans only current-version keys: the run sees a cold
  // cache and computes every job.
  RunOptions options;
  options.cache_dir = path("cache");
  ScenarioRunner runner(options);
  const auto cold = runner.run(spec);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.computed, jobs.size());

  // ... and the old-contract entries are still there, untouched: retiring a
  // contract never rewrites history (a rollback build would still find its
  // own entries intact).
  for (const auto& key : old_keys) {
    const auto entry = cache.load(key);
    ASSERT_TRUE(entry.has_value()) << key;
    EXPECT_TRUE(entry->contains("poison")) << key;
  }

  // Warm re-run under the current contract: all hits.
  const auto warm = runner.run(spec);
  EXPECT_EQ(warm.cache_hits, jobs.size());
  EXPECT_EQ(warm.computed, 0u);
}

namespace {

/// yield200's shape under the fast profile, shrunk for CI: 16 dies (two
/// full batch die-blocks), 2k records, same tone, metric and limit.
const char* kFastYieldSpec = R"({
  "name": "yield_fast",
  "stimulus": {
    "type": "tone",
    "frequency_hz": 10e6,
    "amplitude_fraction": 0.985,
    "record_length": 2048
  },
  "measurement": {"type": "yield", "metric": "sndr_db", "limit": 63.0},
  "die": {"fidelity": "fast"},
  "seeds": {"first": 42, "count": 16}
})";

}  // namespace

TEST_F(ScenarioTest, ClaimLifecycleAndStaleSteal) {
  ResultCache cache(path("cache"));
  cache.ensure_writable();
  const std::string hash = "00c0ffee00c0ffee";

  // Fresh acquisition; a second owner inside the lease is busy; the holder
  // re-acquires (re-entrant) and refreshes.
  EXPECT_EQ(cache.try_claim(hash, "a", 1000, 500), ClaimOutcome::kAcquired);
  EXPECT_EQ(cache.try_claim(hash, "b", 1200, 500), ClaimOutcome::kBusy);
  EXPECT_EQ(cache.try_claim(hash, "a", 1300, 500), ClaimOutcome::kAcquired);
  EXPECT_TRUE(cache.refresh_claim(hash, "a", 1400));
  EXPECT_FALSE(cache.refresh_claim(hash, "b", 1400));
  const auto info = cache.read_claim(hash);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->owner, "a");
  EXPECT_EQ(info->heartbeat_ms, 1400u);

  // Past the lease the claim is stale: a new owner steals it, and the old
  // owner's refresh fails (it has forfeited the job).
  EXPECT_EQ(cache.try_claim(hash, "b", 2000, 500), ClaimOutcome::kAcquired);
  EXPECT_FALSE(cache.refresh_claim(hash, "a", 2100));
  EXPECT_TRUE(cache.refresh_claim(hash, "b", 2100));

  // Release by a non-owner is a no-op; release by the owner removes it.
  cache.release_claim(hash, "a");
  EXPECT_TRUE(cache.read_claim(hash).has_value());
  cache.release_claim(hash, "b");
  EXPECT_FALSE(cache.read_claim(hash).has_value());
}

TEST_F(ScenarioTest, ClaimContentionHasExactlyOneWinner) {
  // N threads race try_claim on the same hash with distinct owners: the
  // O_CREAT|O_EXCL discipline admits exactly one.
  ResultCache cache(path("cache"));
  cache.ensure_writable();
  const std::string hash = "00000000deadbeef";
  constexpr int kRacers = 8;
  std::atomic<int> winners{0};
  std::vector<std::thread> racers;
  racers.reserve(kRacers);
  for (int r = 0; r < kRacers; ++r) {
    racers.emplace_back([&cache, &winners, &hash, r] {
      if (cache.try_claim(hash, "owner" + std::to_string(r), 1000, 60000) ==
          ClaimOutcome::kAcquired) {
        winners.fetch_add(1);
      }
    });
  }
  for (auto& t : racers) t.join();
  EXPECT_EQ(winners.load(), 1);
  const auto claims = cache.claims();
  ASSERT_EQ(claims.size(), 1u);
  EXPECT_EQ(claims[0].hash, hash);
}

TEST_F(ScenarioTest, RacingRunnersComputeEachJobExactlyOnce) {
  // Two concurrent runs of the same spec over one cache, each gating its
  // execute phase on claims: every job is computed by exactly one of them,
  // and both end with the identical (complete or completable) cache bytes.
  const auto spec = parse_spec_text(kSmallSpec);
  const std::string cache_dir = path("cache");
  ResultCache claims(cache_dir);
  claims.ensure_writable();

  auto run_claimed = [&](const std::string& owner) {
    RunOptions options;
    options.cache_dir = cache_dir;
    options.hooks.acquire = [&claims, owner](std::size_t, const std::string& hash) {
      // Claims are held for the test's duration (never released), so the
      // loser can never recompute a winner's job.
      return claims.try_claim(hash, owner, 1000, 60000) == ClaimOutcome::kAcquired;
    };
    return ScenarioRunner(options).run(spec);
  };

  RunResult a;
  RunResult b;
  std::thread ta([&] { a = run_claimed("a"); });
  std::thread tb([&] { b = run_claimed("b"); });
  ta.join();
  tb.join();

  // Claims serialize computation: each of the 4 jobs is computed by exactly
  // one runner. A job one runner did not compute shows up for it as either
  // a cache hit (stored before its probe) or claimed-elsewhere.
  EXPECT_EQ(a.computed + b.computed, 4u);
  EXPECT_EQ(a.claimed_elsewhere + a.cache_hits, b.computed);
  EXPECT_EQ(b.claimed_elsewhere + b.cache_hits, a.computed);

  // The shared cache holds all four payloads, byte-identical to an
  // unraced run in a fresh cache.
  RunOptions reference;
  reference.cache_dir = path("cache-ref");
  const auto ref = ScenarioRunner(reference).run(spec);
  ResultCache raced(cache_dir);
  ResultCache unraced(reference.cache_dir);
  const auto plan = plan_scenario(spec);
  for (const auto& hash : plan.hashes) {
    const auto raced_payload = raced.load(hash);
    const auto ref_payload = unraced.load(hash);
    ASSERT_TRUE(raced_payload.has_value());
    ASSERT_TRUE(ref_payload.has_value());
    EXPECT_EQ(json::dump(*raced_payload), json::dump(*ref_payload));
  }
  // A warm re-run over the raced cache re-emits the reference bytes.
  RunOptions warm;
  warm.cache_dir = cache_dir;
  EXPECT_EQ(json::dump(ScenarioRunner(warm).run(spec).report), json::dump(ref.report));
}

TEST_F(ScenarioTest, OrphanedSidecarsAreCountedAndSweptStale) {
  const auto spec = parse_spec_text(kSmallSpec);
  RunOptions options;
  options.cache_dir = path("cache");
  (void)ScenarioRunner(options).run(spec);

  ResultCache cache(options.cache_dir);
  // Litter the root the way a killed process would: an orphaned store
  // temporary, one stale claim, one fresh claim.
  fs::create_directories(fs::path(cache.root()) / "ab");
  std::ofstream((fs::path(cache.root()) / "ab" / "abcd000000000000.json.tmp99").string())
      << "{partial";
  ASSERT_EQ(cache.try_claim("00000000000000aa", "dead", 1000, 60000),
            ClaimOutcome::kAcquired);
  ASSERT_EQ(cache.try_claim("00000000000000bb", "live", 100000, 60000),
            ClaimOutcome::kAcquired);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 4u);  // litter is invisible to the entry count
  EXPECT_EQ(stats.tmp_files, 1u);
  EXPECT_EQ(stats.claim_files, 2u);

  // The stale sweep removes the temporary and the expired claim; the fresh
  // claim (a live fleet's working set) and every entry survive.
  const auto sweep = cache.clear_stale(100000, 60000);
  EXPECT_EQ(sweep.tmp_removed, 1u);
  EXPECT_EQ(sweep.claims_removed, 1u);
  const auto after = cache.stats();
  EXPECT_EQ(after.entries, 4u);
  EXPECT_EQ(after.tmp_files, 0u);
  EXPECT_EQ(after.claim_files, 1u);
  EXPECT_FALSE(cache.read_claim("00000000000000aa").has_value());
  EXPECT_TRUE(cache.read_claim("00000000000000bb").has_value());

  // A full clear also removes the remaining claim sidecar.
  EXPECT_EQ(cache.clear(), 4u);
  EXPECT_EQ(cache.stats().claim_files, 0u);
}

TEST_F(ScenarioTest, BatchedYieldRunIsBitIdenticalToScalarExecution) {
  // The acceptance pin of the batch wiring: a fast-profile yield sweep
  // routed through the batch conversion engine must leave the exact cache
  // bytes and report bytes a per-job scalar execution produces.
  const auto spec = parse_spec_text(kFastYieldSpec);
  const auto plan = plan_scenario(spec);
  ASSERT_EQ(plan.jobs.size(), 16u);

  // Scalar reference: every job through the public per-job entry point.
  std::vector<std::optional<json::JsonValue>> scalar(plan.jobs.size());
  for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
    scalar[i] = ScenarioRunner::execute_job(resolve_job(spec, plan.jobs[i]));
  }
  const auto scalar_report = build_report(spec, plan, scalar);

  RunOptions options;
  options.cache_dir = path("cache");
  const auto batched = ScenarioRunner(options).run(spec);
  EXPECT_EQ(batched.computed, 16u);
  EXPECT_EQ(json::dump(batched.report), json::dump(scalar_report));

  // Same content under the same content addresses: every cached payload
  // byte-matches the scalar payload for its hash.
  ResultCache cache(options.cache_dir);
  for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
    const auto entry = cache.load(plan.hashes[i]);
    ASSERT_TRUE(entry.has_value()) << "missing cache entry for job " << i;
    EXPECT_EQ(json::dump(*entry), json::dump(*scalar[i])) << "payload mismatch at job " << i;
  }

  // The yield summary survived the batched path (it requires every payload
  // to carry the metric).
  const auto* summary = batched.report.find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->find("metric")->as_string(), "sndr_db");
}

TEST_F(ScenarioTest, BatchedYieldHandlesScatteredCacheHitsAndThreadCounts) {
  // Pre-seeding scattered jobs from the scalar path leaves non-consecutive
  // misses, so the execute phase forms ragged die-blocks over
  // non-contiguous seeds; the merged report must still match end to end,
  // at any thread count.
  const auto spec = parse_spec_text(kFastYieldSpec);
  const auto plan = plan_scenario(spec);

  std::vector<std::optional<json::JsonValue>> scalar(plan.jobs.size());
  for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
    scalar[i] = ScenarioRunner::execute_job(resolve_job(spec, plan.jobs[i]));
  }
  const auto scalar_report = build_report(spec, plan, scalar);

  RunOptions scattered;
  scattered.cache_dir = path("cache-scattered");
  {
    ResultCache cache(scattered.cache_dir);
    cache.ensure_writable();
    for (const std::size_t i : {1u, 6u, 7u, 12u}) cache.store(plan.hashes[i], *scalar[i]);
  }
  const auto resumed = ScenarioRunner(scattered).run(spec);
  EXPECT_EQ(resumed.cache_hits, 4u);
  EXPECT_EQ(resumed.computed, 12u);
  EXPECT_EQ(json::dump(resumed.report), json::dump(scalar_report));

  for (const unsigned threads : {1u, 3u}) {
    RunOptions options;
    options.cache_dir = path("cache-t" + std::to_string(threads));
    options.threads = threads;
    const auto run = ScenarioRunner(options).run(spec);
    EXPECT_EQ(json::dump(run.report), json::dump(scalar_report))
        << "report drifted at threads=" << threads;
  }
}
