/// \file test_golden_codes.cpp
/// Pins the exact output codes of the characterized nominal die.
///
/// The conversion kernel is refactored for speed under a hard contract: the
/// produced codes must stay *bit-identical* — every floating-point operation
/// and every RNG draw in program order is part of the observable behavior.
/// These tests freeze that behavior against golden vectors generated from
/// the pre-refactor kernel, so any "optimization" that reorders a noise
/// draw, reassociates an expression, or drops a flush cycle fails loudly
/// instead of silently refabricating the die.
///
/// The call order below matters and must not be rearranged: the nominal
/// converter's RNG streams advance across calls, so convert() -> stream ->
/// convert_dc is part of the pinned sequence.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "dsp/signal.hpp"
#include "pipeline/adc.hpp"
#include "pipeline/design.hpp"
#include "runtime/parallel.hpp"

namespace {

using adc::pipeline::AdcConfig;
using adc::pipeline::PipelineAdc;

/// Same probe tone for every golden vector: near-full-scale, deliberately
/// non-coherent frequency so every sample lands on a distinct phase.
const adc::dsp::SineSignal& golden_tone() {
  static const adc::dsp::SineSignal tone(0.985, 10.0037e6);
  return tone;
}

// Golden vectors generated from the pre-refactor kernel (commit d73840f)
// with the exact call sequence of GoldenCodes.NominalDieSequence below.
const std::vector<int> kGoldenConvert64 = {
    2039, 3145, 3901, 4068, 3596, 2628, 1478, 507,  28,   189,  939,  2044, 3148,
    3904, 4068, 3593, 2624, 1474, 504,  27,   191,  943,  2049, 3152, 3906, 4067,
    3590, 2620, 1470, 501,  27,   192,  947,  2054, 3157, 3907, 4068, 3587, 2615,
    1465, 498,  25,   194,  951,  2058, 3160, 3909, 4067, 3583, 2611, 1460, 495,
    24,   196,  955,  2063, 3164, 3912, 4066, 3580, 2606, 1456, 492,  24};

const std::vector<int> kGoldenStream48 = {
    2039, 3144, 3902, 4069, 3596, 2628, 1478, 508,  27,   189,  939,  2044,
    3149, 3903, 4068, 3594, 2624, 1473, 505,  27,   190,  943,  2049, 3153,
    3905, 4067, 3589, 2619, 1469, 501,  26,   193,  947,  2054, 3156, 3908,
    4067, 3586, 2616, 1465, 498,  26,   194,  951,  2058, 3161, 3910, 4066};

const std::vector<int> kGoldenIdeal32 = {
    2047, 3138, 3883, 4044, 3571, 2614, 1477, 521, 50,  214, 960,
    2052, 3142, 3885, 4043, 3568, 2609, 1472, 518, 50,  216, 964,
    2057, 3146, 3887, 4043, 3565, 2605, 1468, 515, 49,  218};

const std::vector<int> kGoldenDc5 = {183, 1405, 2048, 2610, 4016};

TEST(GoldenCodes, NominalDieSequence) {
  PipelineAdc converter(adc::pipeline::nominal_design());

  EXPECT_EQ(converter.convert(golden_tone(), 64), kGoldenConvert64);

  // convert_stream exercises the alignment FIFO's flush path: the first
  // latency_cycles conversions are still in flight when the input stops, so
  // the stream must drain the FIFO to return exactly n codes.
  const auto stream = converter.convert_stream(golden_tone(), 48);
  EXPECT_EQ(stream.latency_cycles, 6);
  ASSERT_EQ(stream.codes.size(), 48u);
  EXPECT_EQ(stream.codes, kGoldenStream48);

  EXPECT_EQ(converter.convert_dc(-0.9), kGoldenDc5[0]);
  EXPECT_EQ(converter.convert_dc(-0.31), kGoldenDc5[1]);
  EXPECT_EQ(converter.convert_dc(0.0), kGoldenDc5[2]);
  EXPECT_EQ(converter.convert_dc(0.2718), kGoldenDc5[3]);
  EXPECT_EQ(converter.convert_dc(0.95), kGoldenDc5[4]);
}

TEST(GoldenCodes, IdealDesign) {
  PipelineAdc ideal(adc::pipeline::ideal_design());
  EXPECT_EQ(ideal.convert(golden_tone(), 32), kGoldenIdeal32);
}

/// The parallel runtime's determinism contract applied to conversion: each
/// job fabricates its own die from (design, seed + i), so the batch result
/// must be bit-identical at 1 worker and at N workers.
TEST(GoldenCodes, ThreadCountInvariant) {
  constexpr std::size_t kDies = 8;
  constexpr std::size_t kSamples = 24;
  const auto job = [](std::size_t i) {
    PipelineAdc converter(
        adc::pipeline::nominal_design(adc::pipeline::kNominalSeed + i));
    return converter.convert(golden_tone(), kSamples);
  };

  std::vector<std::vector<int>> serial;
  std::vector<std::vector<int>> threaded;
  {
    adc::runtime::ScopedThreadOverride one(1);
    serial = adc::runtime::parallel_map<std::vector<int>>(kDies, job);
  }
  {
    adc::runtime::ScopedThreadOverride four(4);
    threaded = adc::runtime::parallel_map<std::vector<int>>(kDies, job);
  }

  ASSERT_EQ(serial.size(), kDies);
  ASSERT_EQ(threaded.size(), kDies);
  for (std::size_t i = 0; i < kDies; ++i) {
    EXPECT_EQ(serial[i], threaded[i]) << "die " << i;
  }
  // The seed-0 die is the golden die: the batch path must reproduce the
  // pinned vector, not merely agree with itself.
  EXPECT_EQ(std::vector<int>(kGoldenConvert64.begin(),
                             kGoldenConvert64.begin() + kSamples),
            serial[0]);
}

/// Pearson correlation coefficient of two equal-length samples.
double correlation(const std::vector<double>& a, const std::vector<double>& b) {
  const auto n = static_cast<double>(a.size());
  double ma = 0.0;
  double mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double sab = 0.0;
  double saa = 0.0;
  double sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sab += (a[i] - ma) * (b[i] - mb);
    saa += (a[i] - ma) * (a[i] - ma);
    sbb += (b[i] - mb) * (b[i] - mb);
  }
  return sab / std::sqrt(saa * sbb);
}

/// Monte-Carlo draws for distinct mechanisms must come from independent RNG
/// sub-streams: the stage-1 C1/C2 mismatch and the two ADSC comparator
/// offsets of the same stage must be uncorrelated across dies. A shared or
/// re-seeded stream (the classic "every mechanism sees the same draws" bug)
/// shows up here as |r| near 1.
TEST(GoldenCodes, MechanismDrawsAreIndependentAcrossSeeds) {
  constexpr std::size_t kDies = 200;
  std::vector<double> mismatch(kDies);
  std::vector<double> offset_low(kDies);
  std::vector<double> offset_high(kDies);
  for (std::size_t i = 0; i < kDies; ++i) {
    PipelineAdc converter(adc::pipeline::nominal_design(1000 + i));
    const auto& stage = converter.stage(0);
    mismatch[i] = stage.c1() / stage.c2() - 1.0;
    offset_low[i] = stage.comparator_offset(0);
    offset_high[i] = stage.comparator_offset(1);
  }

  // Each mechanism must actually vary across dies (the draw happened)...
  EXPECT_GT(correlation(mismatch, mismatch), 0.99);
  EXPECT_GT(correlation(offset_low, offset_low), 0.99);

  // ...and the mechanisms must not share a stream. With n = 200 independent
  // pairs, |r| has sigma ~ 1/sqrt(n) ~ 0.071; 0.25 is a > 3.5-sigma bound.
  EXPECT_LT(std::abs(correlation(mismatch, offset_low)), 0.25);
  EXPECT_LT(std::abs(correlation(mismatch, offset_high)), 0.25);
  EXPECT_LT(std::abs(correlation(offset_low, offset_high)), 0.25);
}

}  // namespace
