/// Integration tests: the ideal-configured converter must behave as a
/// perfect 12-bit quantizer (the golden reference for everything else).
#include <cmath>

#include <gtest/gtest.h>

#include "dsp/linearity.hpp"
#include "dsp/signal.hpp"
#include "pipeline/adc.hpp"
#include "pipeline/design.hpp"
#include "testbench/dynamic_test.hpp"
#include "testbench/static_test.hpp"

namespace ap = adc::pipeline;

namespace {

ap::PipelineAdc make_ideal() { return ap::PipelineAdc(ap::ideal_design()); }

}  // namespace

TEST(IdealAdc, Geometry) {
  auto adc = make_ideal();
  EXPECT_EQ(adc.resolution_bits(), 12);
  EXPECT_EQ(adc.stage_count(), 10u);
  EXPECT_EQ(adc.flash().bits(), 2);
  EXPECT_NEAR(adc.lsb(), 2.0 / 4096.0, 1e-12);
  EXPECT_EQ(adc.latency_cycles(), 6);
}

TEST(IdealAdc, MidScaleAtZero) {
  auto adc = make_ideal();
  const int code = adc.convert_dc(0.0);
  EXPECT_NEAR(code, 2048, 1);
}

TEST(IdealAdc, EndCodesAtFullScale) {
  auto adc = make_ideal();
  EXPECT_EQ(adc.convert_dc(-1.05), 0);
  EXPECT_EQ(adc.convert_dc(1.05), 4095);
}

TEST(IdealAdc, TransferMatchesIdealQuantizer) {
  auto adc = make_ideal();
  for (int k = 0; k < 4096; k += 37) {
    // Mid-code voltage of code k.
    const double v = (static_cast<double>(k) + 0.5) / 2048.0 - 1.0;
    EXPECT_EQ(adc.convert_dc(v), k) << "code " << k;
  }
}

TEST(IdealAdc, MonotonicOnRamp) {
  auto adc = make_ideal();
  std::vector<double> ramp;
  for (double v = -1.1; v <= 1.1; v += 0.0007) ramp.push_back(v);
  const auto codes = adc.convert_samples(ramp);
  EXPECT_TRUE(adc::dsp::is_monotonic(codes));
}

TEST(IdealAdc, EnobIsTwelveBits) {
  auto adc = make_ideal();
  adc::testbench::DynamicTestOptions opt;
  opt.record_length = 1 << 13;
  const auto r = adc::testbench::run_dynamic_test(adc, opt);
  EXPECT_GT(r.metrics.enob, 11.95);
  EXPECT_LT(r.metrics.enob, 12.05);
  EXPECT_GT(r.metrics.sfdr_db, 85.0);
}

TEST(IdealAdc, EdgesLinearityNearZero) {
  auto adc = make_ideal();
  const auto edges = adc::testbench::extract_transfer_edges(adc, 36);
  const auto lin = adc::dsp::edges_linearity(edges, 12);
  EXPECT_LT(std::abs(lin.dnl_max), 0.02);
  EXPECT_LT(std::abs(lin.dnl_min), 0.02);
  EXPECT_LT(std::abs(lin.inl_max), 0.03);
  EXPECT_TRUE(lin.missing_codes.empty());
}

TEST(IdealAdc, StreamMatchesDirectConversion) {
  auto adc = make_ideal();
  const adc::dsp::SineSignal tone(0.9, 10.00341e6);
  const auto direct = adc.convert(tone, 256);
  auto adc2 = ap::PipelineAdc(ap::ideal_design());
  const auto stream = adc2.convert_stream(tone, 256);
  EXPECT_EQ(stream.latency_cycles, 6);
  ASSERT_EQ(stream.codes.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(stream.codes[i], direct[i]) << i;
  }
}

TEST(IdealAdc, ResidueCurveShape) {
  auto adc = make_ideal();
  // Stage-1 residue: sawtooth with slope 2 and +/- V_REF/2 plateaus at the
  // decision points.
  EXPECT_NEAR(adc.residue_after_stage(0, 0.0), 0.0, 1e-9);
  EXPECT_NEAR(adc.residue_after_stage(0, 0.1), 0.2, 1e-9);
  EXPECT_NEAR(adc.residue_after_stage(0, 0.3), -0.4, 1e-9);
  EXPECT_NEAR(adc.residue_after_stage(0, -0.3), 0.4, 1e-9);
  // Deeper stages keep the residue bounded.
  for (double v = -0.99; v <= 0.99; v += 0.03) {
    EXPECT_LE(std::abs(adc.residue_after_stage(5, v)), 1.0 + 1e-6) << v;
  }
}

TEST(IdealAdc, HistogramLinearityClean) {
  auto adc = make_ideal();
  adc::testbench::HistogramTestOptions opt;
  opt.samples = 1 << 20;
  const auto lin = adc::testbench::run_histogram_test(adc, opt);
  EXPECT_LT(std::abs(lin.dnl_max), 0.2);  // 256 hits/code: statistical bound
  EXPECT_LT(std::abs(lin.inl_max), 0.3);
  EXPECT_TRUE(lin.missing_codes.empty());
}

TEST(IdealAdc, BiasIntrospection) {
  auto adc = make_ideal();
  // Stage currents follow the paper's scaling ratios.
  EXPECT_NEAR(adc.stage_bias_current(1) / adc.stage_bias_current(0), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(adc.stage_bias_current(5) / adc.stage_bias_current(0), 1.0 / 3.0, 1e-9);
  // Master current per eq. (1) at 110 MS/s.
  EXPECT_NEAR(adc.master_bias_current(), 12e-12 * 110e6 * 0.6, 1e-5);
}

TEST(IdealAdc, ConvertSamplesHandlesOverrange) {
  auto adc = make_ideal();
  const std::vector<double> v{-3.0, 3.0, 0.0};
  const auto codes = adc.convert_samples(v);
  EXPECT_EQ(codes[0], 0);
  EXPECT_EQ(codes[1], 4095);
  EXPECT_NEAR(codes[2], 2048, 1);
}
