/// Unit tests for the seeded RNG façade.
#include "common/random.hpp"

#include <bit>
#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "common/math_util.hpp"

namespace ac = adc::common;

TEST(Rng, SameSeedSameStream) {
  ac::Rng a(42);
  ac::Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.gaussian(1.0), b.gaussian(1.0));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  ac::Rng a(1);
  ac::Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    // Bitwise comparison: we are counting exact stream collisions.
    const auto xa = std::bit_cast<std::uint64_t>(a.gaussian(1.0));
    const auto xb = std::bit_cast<std::uint64_t>(b.gaussian(1.0));
    if (xa == xb) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ChildStreamsAreStable) {
  ac::Rng parent(7);
  ac::Rng c1 = parent.child("stage", 3);
  ac::Rng c2 = parent.child("stage", 3);
  EXPECT_EQ(c1.seed(), c2.seed());
  EXPECT_DOUBLE_EQ(c1.gaussian(1.0), c2.gaussian(1.0));
}

TEST(Rng, ChildStreamsAreDistinctByTagAndIndex) {
  ac::Rng parent(7);
  EXPECT_NE(parent.child("stage", 3).seed(), parent.child("stage", 4).seed());
  EXPECT_NE(parent.child("stage", 3).seed(), parent.child("comparator", 3).seed());
  EXPECT_NE(parent.child("stage").seed(), parent.seed());
}

TEST(Rng, ChildIndependentOfParentDrawCount) {
  // Deriving a child must not depend on how many draws the parent made.
  ac::Rng a(99);
  ac::Rng b(99);
  (void)b.gaussian(1.0);
  (void)b.gaussian(1.0);
  EXPECT_EQ(a.child("x").seed(), b.child("x").seed());
}

TEST(Rng, GaussianBitIdenticalToStdNormalDistribution) {
  // The inline Marsaglia-polar fast path must reproduce
  // std::normal_distribution<double> on mt19937_64 bit for bit — converter
  // golden codes (and every seeded Monte-Carlo result recorded before the
  // fast path landed) depend on this exact stream.
  const std::uint64_t seeds[] = {0, 1, 42, 0x5EED2004, 0xFFFFFFFFFFFFFFFFull};
  for (const auto seed : seeds) {
    ac::Rng rng(seed);
    std::mt19937_64 engine(seed);
    std::normal_distribution<double> normal(0.0, 1.0);
    for (int i = 0; i < 10000; ++i) {
      const auto got = std::bit_cast<std::uint64_t>(rng.gaussian(1.0));
      const auto want = std::bit_cast<std::uint64_t>(normal(engine));
      ASSERT_EQ(got, want) << "seed " << seed << " draw " << i;
    }
  }
}

TEST(Rng, GaussianSigmaScalingMatchesStd) {
  // sigma * N(0,1) with the same scaling order the façade has always used.
  ac::Rng rng(777);
  std::mt19937_64 engine(777);
  std::normal_distribution<double> normal(0.0, 1.0);
  for (int i = 0; i < 1000; ++i) {
    const double sigma = 1e-3 * static_cast<double>(i + 1);
    ASSERT_EQ(std::bit_cast<std::uint64_t>(rng.gaussian(sigma)),
              std::bit_cast<std::uint64_t>(sigma * normal(engine)));
  }
}

TEST(Rng, GaussianMoments) {
  ac::Rng rng(2024);
  const auto draws = rng.gaussian_vector(200000, 3.0);
  EXPECT_NEAR(ac::mean(draws), 0.0, 0.05);
  EXPECT_NEAR(ac::std_dev(draws), 3.0, 0.05);
}

TEST(Rng, GaussianZeroSigma) {
  ac::Rng rng(5);
  EXPECT_DOUBLE_EQ(rng.gaussian(0.0), 0.0);
}

TEST(Rng, UniformRange) {
  ac::Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  ac::Rng rng(12);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, IndexBounds) {
  ac::Rng rng(13);
  bool saw_zero = false;
  bool saw_max = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.index(7);
    EXPECT_LT(v, 7u);
    if (v == 0) saw_zero = true;
    if (v == 6) saw_max = true;
  }
  EXPECT_TRUE(saw_zero);
  EXPECT_TRUE(saw_max);
}

TEST(Rng, GaussianVectorLength) {
  ac::Rng rng(14);
  EXPECT_EQ(rng.gaussian_vector(17, 1.0).size(), 17u);
  EXPECT_TRUE(rng.gaussian_vector(0, 1.0).empty());
}
