/// Contract macros: fire with location in Debug, compile to nothing in
/// Release. The suite runs in both configurations (the sanitizer CI lane is a
/// Debug build), so every expectation is gated on ADC_ENABLE_CONTRACTS rather
/// than assuming one build type.
#include "common/contracts.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace {

using adc::common::all_finite;
using adc::common::in_closed_range;
using adc::common::is_nondecreasing;

TEST(ContractHelpers, AllFiniteAcceptsFiniteRejectsNanAndInf) {
  const std::vector<double> good{0.0, -1.5, 1e300};
  EXPECT_TRUE(all_finite(good));
  const std::vector<double> with_nan{0.0, std::numeric_limits<double>::quiet_NaN()};
  EXPECT_FALSE(all_finite(with_nan));
  const std::vector<double> with_inf{std::numeric_limits<double>::infinity()};
  EXPECT_FALSE(all_finite(with_inf));
  EXPECT_TRUE(all_finite(std::vector<double>{}));
}

TEST(ContractHelpers, InClosedRangeIsInclusive) {
  EXPECT_TRUE(in_closed_range(0.0, 0.0, 1.0));
  EXPECT_TRUE(in_closed_range(1.0, 0.0, 1.0));
  EXPECT_FALSE(in_closed_range(1.0 + 1e-12, 0.0, 1.0));
  EXPECT_FALSE(in_closed_range(std::numeric_limits<double>::quiet_NaN(), 0.0, 1.0));
}

TEST(ContractHelpers, IsNondecreasingAllowsTiesRejectsDips) {
  const std::vector<double> flat{1.0, 1.0, 2.0};
  EXPECT_TRUE(is_nondecreasing(flat));
  const std::vector<double> dip{1.0, 0.5};
  EXPECT_FALSE(is_nondecreasing(dip));
  EXPECT_TRUE(is_nondecreasing(std::vector<double>{}));
}

#if ADC_ENABLE_CONTRACTS

TEST(ContractsDebugDeathTest, ExpectAbortsWithMessageAndLocation) {
  EXPECT_DEATH(ADC_EXPECT(1 + 1 == 3, "arithmetic broke"),
               "ADC_EXPECT.*arithmetic broke");
}

TEST(ContractsDebugDeathTest, EnsureAbortsWithMessageAndLocation) {
  EXPECT_DEATH(ADC_ENSURE(false, "postcondition violated"),
               "ADC_ENSURE.*postcondition violated");
}

TEST(ContractsDebug, PassingConditionIsSilent) {
  int evaluations = 0;
  ADC_EXPECT([&] { ++evaluations; return true; }(), "must not fire");
  EXPECT_EQ(evaluations, 1);  // the condition IS evaluated when contracts are on
}

#else  // Release: the macros must vanish entirely.

TEST(ContractsRelease, ConditionIsNeverEvaluated) {
  int evaluations = 0;
  ADC_EXPECT([&] { ++evaluations; return false; }(), "compiled out");
  ADC_ENSURE([&] { ++evaluations; return false; }(), "compiled out");
  EXPECT_EQ(evaluations, 0);
}

#endif

}  // namespace
