/// Unit tests for DNL/INL extraction (histogram and edge-based).
#include "dsp/linearity.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"

namespace ad = adc::dsp;

namespace {

/// Quantize a voltage in [-1, 1] with an ideal `bits` quantizer.
int ideal_code(double v, int bits) {
  const double levels = std::pow(2.0, bits);
  auto code = static_cast<int>(std::floor((v + 1.0) / 2.0 * levels));
  if (code < 0) code = 0;
  if (code >= static_cast<int>(levels)) code = static_cast<int>(levels) - 1;
  return code;
}

/// Codes from an overdriving sine through an ideal quantizer.
std::vector<int> ideal_sine_codes(int bits, std::size_t n, double amplitude) {
  std::vector<int> codes(n);
  // Incommensurate frequency for uniform phase coverage.
  const double w = 2.0 * std::numbers::pi * 0.38196601125010515;
  for (std::size_t i = 0; i < n; ++i) {
    codes[i] = ideal_code(amplitude * std::sin(w * static_cast<double>(i)), bits);
  }
  return codes;
}

}  // namespace

TEST(HistogramLinearity, IdealQuantizerHasZeroDnl) {
  const auto codes = ideal_sine_codes(8, 1 << 20, 1.05);
  const auto r = ad::histogram_linearity(codes, 8);
  EXPECT_LT(r.dnl_max, 0.05);
  EXPECT_GT(r.dnl_min, -0.05);
  EXPECT_LT(r.inl_max, 0.08);
  EXPECT_GT(r.inl_min, -0.08);
  EXPECT_TRUE(r.missing_codes.empty());
}

TEST(HistogramLinearity, AmplitudeIndependent) {
  // The arcsine correction must remove the sine's density for any overdrive.
  for (double a : {1.02, 1.2, 1.6}) {
    const auto codes = ideal_sine_codes(6, 1 << 18, a);
    const auto r = ad::histogram_linearity(codes, 6);
    EXPECT_LT(std::abs(r.dnl_max), 0.08) << "amplitude " << a;
    EXPECT_LT(std::abs(r.dnl_min), 0.08) << "amplitude " << a;
  }
}

TEST(HistogramLinearity, DetectsWideCode) {
  // Make code 100 twice as wide by stealing code 101 entirely.
  const auto raw = ideal_sine_codes(8, 1 << 20, 1.05);
  std::vector<int> codes = raw;
  for (auto& c : codes) {
    if (c == 101) c = 100;
  }
  const auto r = ad::histogram_linearity(codes, 8);
  EXPECT_NEAR(r.dnl[100], 1.0, 0.15);  // double width
  EXPECT_NEAR(r.dnl[101], -1.0, 0.05);  // missing
  ASSERT_FALSE(r.missing_codes.empty());
  EXPECT_EQ(r.missing_codes[0], 101);
}

TEST(HistogramLinearity, RequiresOverdrive) {
  const auto codes = ideal_sine_codes(8, 1 << 16, 0.8);  // never reaches the ends
  EXPECT_THROW((void)ad::histogram_linearity(codes, 8), adc::common::MeasurementError);
}

TEST(HistogramLinearity, RejectsBadInput) {
  EXPECT_THROW((void)ad::histogram_linearity(std::vector<int>{}, 8),
               adc::common::ConfigError);
  const std::vector<int> out_of_range{0, 1, 256};
  EXPECT_THROW((void)ad::histogram_linearity(out_of_range, 8), adc::common::ConfigError);
}

TEST(EdgesLinearity, UniformEdgesAreZeroDnl) {
  const int bits = 8;
  std::vector<double> edges;
  for (int k = 1; k < 256; ++k) edges.push_back(static_cast<double>(k));
  const auto r = ad::edges_linearity(edges, bits);
  EXPECT_NEAR(r.dnl_max, 0.0, 1e-9);
  EXPECT_NEAR(r.dnl_min, 0.0, 1e-9);
  EXPECT_NEAR(r.inl_max, 0.0, 1e-9);
}

TEST(EdgesLinearity, KnownDnlRecovered) {
  // Code 10 is 1.5 LSB wide, code 11 is 0.5 LSB wide; everything else 1 LSB.
  const int bits = 6;
  std::vector<double> edges;
  double x = 0.0;
  for (int k = 1; k < 64; ++k) {
    double width = 1.0;
    if (k - 1 == 10) width = 1.5;
    if (k - 1 == 11) width = 0.5;
    x += width;
    edges.push_back(x);
  }
  const auto r = ad::edges_linearity(edges, bits);
  // The average interior width is slightly off 1.0, but the two codes stand out.
  EXPECT_NEAR(r.dnl[10], 0.5, 0.02);
  EXPECT_NEAR(r.dnl[11], -0.5, 0.02);
}

TEST(EdgesLinearity, GainErrorRemovedByEndpointCorrection) {
  // A pure gain error (all widths scaled by 1.1) has zero DNL and zero INL.
  const int bits = 6;
  std::vector<double> edges;
  for (int k = 1; k < 64; ++k) edges.push_back(1.1 * static_cast<double>(k));
  const auto r = ad::edges_linearity(edges, bits);
  EXPECT_NEAR(r.dnl_max, 0.0, 1e-9);
  EXPECT_NEAR(r.inl_max, 0.0, 1e-9);
}

TEST(EdgesLinearity, BowShowsInInl) {
  // Smooth quadratic bow in the transfer: INL-dominant, small DNL.
  const int bits = 8;
  std::vector<double> edges;
  for (int k = 1; k < 256; ++k) {
    const double t = static_cast<double>(k) / 256.0;
    edges.push_back(static_cast<double>(k) + 4.0 * t * (1.0 - t));  // +1 LSB bow
  }
  const auto r = ad::edges_linearity(edges, bits);
  EXPECT_GT(r.inl_max, 0.8);
  EXPECT_LT(r.dnl_max, 0.1);
}

TEST(EdgesLinearity, SizeMismatchThrows) {
  const std::vector<double> edges(100, 1.0);
  EXPECT_THROW((void)ad::edges_linearity(edges, 8), adc::common::ConfigError);
}

TEST(Monotonicity, DetectsDecrease) {
  EXPECT_TRUE(ad::is_monotonic(std::vector<int>{0, 0, 1, 2, 2, 3}));
  EXPECT_FALSE(ad::is_monotonic(std::vector<int>{0, 1, 3, 2}));
  EXPECT_TRUE(ad::is_monotonic(std::vector<int>{}));
}

class HistogramResolutionSweep : public ::testing::TestWithParam<int> {};

TEST_P(HistogramResolutionSweep, IdealIsCleanAcrossResolutions) {
  const int bits = GetParam();
  const auto codes = ideal_sine_codes(bits, 1 << 19, 1.1);
  const auto r = ad::histogram_linearity(codes, bits);
  EXPECT_EQ(r.bits, bits);
  EXPECT_LT(std::abs(r.dnl_max), 0.15);
  EXPECT_TRUE(r.missing_codes.empty());
}

INSTANTIATE_TEST_SUITE_P(Resolutions, HistogramResolutionSweep,
                         ::testing::Values(4, 6, 8, 10));
