/// Cross-cutting property tests on the spectral analyzer: results must be
/// invariant to analysis choices (window, record length) within tolerance —
/// the guarantee that lets benches pick options freely.
#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "dsp/signal.hpp"
#include "dsp/spectrum.hpp"
#include "pipeline/design.hpp"
#include "testbench/dynamic_test.hpp"

namespace ad = adc::dsp;

namespace {

/// Noisy distorted tone with known composition: amplitude 1, HD3 -62 dBc,
/// white noise for SNR 60 dB.
std::vector<double> synthetic_record(std::size_t n, double cycles, std::uint64_t seed) {
  adc::common::Rng rng(seed);
  std::vector<double> x(n);
  const double hd3 = std::pow(10.0, -62.0 / 20.0);
  const double sigma = std::pow(10.0, -60.0 / 20.0) / std::sqrt(2.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double th =
        2.0 * std::numbers::pi * cycles * static_cast<double>(i) / static_cast<double>(n);
    x[i] = std::sin(th) + hd3 * std::sin(3.0 * th) + rng.gaussian(sigma);
  }
  return x;
}

}  // namespace

class WindowInvariance : public ::testing::TestWithParam<ad::WindowType> {};

TEST_P(WindowInvariance, MetricsAgreeAcrossWindows) {
  // A coherent record analyzed through any window gives the same SNR/THD
  // within a fraction of a dB (normalization correctness).
  const std::size_t n = 1 << 13;
  const auto x = synthetic_record(n, 701.0, 42);
  ad::SpectrumOptions opt;
  opt.window = GetParam();
  const auto m = ad::analyze_tone(x, 100e6, opt);
  EXPECT_NEAR(m.snr_db, 60.0, 0.8) << ad::to_string(GetParam());
  EXPECT_NEAR(m.thd_db, -62.0, 0.5) << ad::to_string(GetParam());
  EXPECT_NEAR(m.signal_amplitude, 1.0, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowInvariance,
                         ::testing::Values(ad::WindowType::kRectangular,
                                           ad::WindowType::kHann,
                                           ad::WindowType::kBlackmanHarris4));

class RecordLengthInvariance : public ::testing::TestWithParam<int> {};

TEST_P(RecordLengthInvariance, MetricsIndependentOfRecordLength) {
  // SNR/THD are power ratios: doubling the record must not move them
  // (only their variance). Distinct odd cycle counts per length.
  const auto log2n = static_cast<std::size_t>(GetParam());
  const std::size_t n = 1ull << log2n;
  const double cycles = static_cast<double>((n / 11) | 1u);
  const auto x = synthetic_record(n, cycles, 99);
  const auto m = ad::analyze_tone(x, 100e6);
  EXPECT_NEAR(m.snr_db, 60.0, 1.2) << n;
  EXPECT_NEAR(m.thd_db, -62.0, 0.8) << n;
}

INSTANTIATE_TEST_SUITE_P(Lengths, RecordLengthInvariance, ::testing::Values(11, 12, 13, 14));

TEST(ConverterAnalysisInvariance, RecordLengthDoesNotMoveTheNominalMetrics) {
  // The full converter measured with 4k and 16k records agrees within the
  // estimator's scatter — the property that justifies the benches' 8k
  // default.
  adc::pipeline::PipelineAdc a(adc::pipeline::nominal_design());
  adc::pipeline::PipelineAdc b(adc::pipeline::nominal_design());
  adc::testbench::DynamicTestOptions small;
  small.record_length = 1 << 12;
  adc::testbench::DynamicTestOptions big;
  big.record_length = 1 << 14;
  const auto ms = adc::testbench::run_dynamic_test(a, small).metrics;
  const auto mb = adc::testbench::run_dynamic_test(b, big).metrics;
  EXPECT_NEAR(ms.snr_db, mb.snr_db, 1.0);
  EXPECT_NEAR(ms.sndr_db, mb.sndr_db, 1.0);
}

TEST(ConverterAnalysisInvariance, AmplitudePhaseDoesNotMatter) {
  // Two captures of the same die with different tone phases (fresh noise
  // draws shift the effective phase) give the same metrics within scatter.
  adc::pipeline::PipelineAdc die(adc::pipeline::nominal_design());
  adc::testbench::DynamicTestOptions opt;
  opt.record_length = 1 << 12;
  const auto m1 = adc::testbench::run_dynamic_test(die, opt).metrics;
  const auto m2 = adc::testbench::run_dynamic_test(die, opt).metrics;
  EXPECT_NEAR(m1.sndr_db, m2.sndr_db, 1.0);
}
