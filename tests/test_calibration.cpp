/// Tests for foreground digital calibration — the post-paper extension that
/// measures realized stage weights and reconstructs with them.
#include "calibration/foreground.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dsp/linearity.hpp"
#include "dsp/signal.hpp"
#include "dsp/spectrum.hpp"
#include "pipeline/design.hpp"
#include "testbench/dynamic_test.hpp"

namespace ac = adc::calibration;
namespace ap = adc::pipeline;

namespace {

/// A converter with exaggerated static errors and no noise: the worst case
/// for raw linearity, the best case for observing what calibration fixes.
ap::AdcConfig sloppy_design() {
  ap::AdcConfig cfg = ap::ideal_design();
  cfg.enable.capacitor_mismatch = true;
  cfg.enable.finite_opamp_gain = true;
  cfg.stage.c1.sigma_mismatch = 0.004;  // 8x the paper's matching
  cfg.stage.c2.sigma_mismatch = 0.004;
  cfg.stage1_dac_skew = 0.004;
  cfg.stage.opamp.dc_gain = 2000.0;  // 66 dB: a cheap, low-power opamp
  return cfg;
}

adc::dsp::SpectrumMetrics metrics_with(ap::PipelineAdc& adc,
                                        const ac::CalibrationTable& table,
                                        bool fractional = false) {
  const double fs = adc.conversion_rate();
  const auto tone = adc::dsp::coherent_frequency(10e6, fs, 1 << 13);
  const adc::dsp::SineSignal sig(0.985 * adc.full_scale_vpp() / 2.0, tone.frequency_hz);
  const auto raws = adc.convert_raw(sig, 1 << 13);
  const ac::CalibratedReconstructor recon(table);
  std::vector<double> volts;
  if (fractional) {
    const double lsb = adc.full_scale_vpp() / 4096.0;
    volts.reserve(raws.size());
    for (const auto& raw : raws) volts.push_back((recon.reconstruct(raw) - 2047.5) * lsb);
  } else {
    volts = adc::dsp::codes_to_volts(recon.codes(raws), adc.resolution_bits(),
                                     adc.full_scale_vpp());
  }
  adc::dsp::SpectrumOptions opt;
  opt.fundamental_bin = tone.cycles;
  return adc::dsp::analyze_tone(volts, fs, opt);
}

double sfdr_with(ap::PipelineAdc& adc, const ac::CalibrationTable& table) {
  return metrics_with(adc, table).sfdr_db;
}

}  // namespace

TEST(CalibrationTable, NominalWeightsArePowersOfTwo) {
  const auto t = ac::CalibrationTable::nominal(10, 2);
  EXPECT_EQ(t.resolution_bits(), 12);
  EXPECT_DOUBLE_EQ(t.stage_weights[0], 1024.0);
  EXPECT_DOUBLE_EQ(t.stage_weights[9], 2.0);
  EXPECT_DOUBLE_EQ(t.offset, 2046.0);
}

TEST(ForegroundCalibration, IdealConverterMeasuresIdealWeights) {
  ap::PipelineAdc adc(ap::ideal_design());
  const ac::ForegroundCalibrator cal({/*averaging=*/32});
  const auto table = cal.calibrate(adc);
  const auto nominal = ac::CalibrationTable::nominal(10, 2);
  for (std::size_t i = 0; i < table.stage_weights.size(); ++i) {
    EXPECT_NEAR(table.stage_weights[i], nominal.stage_weights[i],
                1e-3 * nominal.stage_weights[i])
        << "stage " << i;
  }
}

TEST(ForegroundCalibration, RestoresNormalOperation) {
  ap::PipelineAdc adc(ap::ideal_design());
  const ac::ForegroundCalibrator cal({32});
  (void)cal.calibrate(adc);
  // No stage left forced: conversion works normally afterwards.
  for (std::size_t i = 0; i < adc.stage_count(); ++i) {
    EXPECT_FALSE(adc.stage(i).forced_code().has_value()) << i;
  }
  EXPECT_NEAR(adc.convert_dc(0.0), 2048, 1);
}

TEST(ForegroundCalibration, MeasuresRealizedWeightsOnSloppyDie) {
  ap::PipelineAdc adc(sloppy_design());
  const ac::ForegroundCalibrator cal({32});
  const auto table = cal.calibrate(adc);
  // Stage-1 weight deviates from 1024 by the DAC/gain error (~0.5 %), far
  // beyond measurement noise (the design is noiseless here).
  EXPECT_NE(table.stage_weights[0], 1024.0);
  EXPECT_NEAR(table.stage_weights[0], 1024.0, 0.03 * 1024.0);
}

TEST(ForegroundCalibration, FixesStaticLinearityOfSloppyDie) {
  ap::PipelineAdc adc(sloppy_design());
  const ac::ForegroundCalibrator cal({32});
  const auto measured = cal.calibrate(adc);

  const double sfdr_raw = sfdr_with(adc, ac::CalibrationTable::nominal(10, 2));
  const double sfdr_cal = sfdr_with(adc, measured);
  // The sloppy die is badly nonlinear raw; calibration buys >= 10 dB.
  EXPECT_LT(sfdr_raw, 62.0);
  EXPECT_GT(sfdr_cal, sfdr_raw + 10.0);
}

TEST(ForegroundCalibration, NominalDieTradeoffs) {
  // On the already-well-matched nominal die the picture is subtler than
  // "calibration helps": removing the mismatch errors (a) lowers the noise
  // floor (they are noise-like across codes) and (b) exposes the front-end
  // charge-injection HD3 that the raw transfer partially cancels on this
  // particular die. Both effects are physical; assert them directly.
  ap::PipelineAdc adc(ap::nominal_design());
  const ac::ForegroundCalibrator cal({512});
  const auto measured = cal.calibrate(adc);
  const auto raw = metrics_with(adc, ac::CalibrationTable::nominal(10, 2));
  const auto cal_frac = metrics_with(adc, measured, /*fractional=*/true);
  // (a) mismatch pseudo-noise removed: SNR improves.
  EXPECT_GT(cal_frac.snr_db, raw.snr_db + 0.8);
  // (b) the calibrated transfer is front-end-limited: THD lands at the
  // injection level, within ~2.5 dB of the tracking-only configuration.
  EXPECT_GT(cal_frac.sfdr_db, 64.0);
  EXPECT_LT(cal_frac.sfdr_db, raw.sfdr_db + 6.0);
}

TEST(ForegroundCalibration, FractionalOutputAvoidsRequantizationLoss) {
  ap::PipelineAdc adc(ap::nominal_design());
  const ac::ForegroundCalibrator cal({512});
  const auto measured = cal.calibrate(adc);
  const auto rounded = metrics_with(adc, measured, /*fractional=*/false);
  const auto frac = metrics_with(adc, measured, /*fractional=*/true);
  // Rounding calibrated (non-integer) levels back to 12 bits costs SFDR.
  EXPECT_GE(frac.sfdr_db, rounded.sfdr_db);
}

TEST(CalibratedReconstructor, MatchesBuiltInCorrectionWithNominalTable) {
  ap::PipelineAdc adc(ap::ideal_design());
  const ac::CalibratedReconstructor recon(ac::CalibrationTable::nominal(10, 2));
  for (double v : {-0.9, -0.31, 0.0, 0.123, 0.77}) {
    const auto raw = adc.convert_dc_raw(v);
    EXPECT_EQ(recon.code(raw), adc.convert_dc(v)) << v;
  }
}

TEST(CalibratedReconstructor, ClampsOutOfRange) {
  auto table = ac::CalibrationTable::nominal(10, 2);
  ac::CalibratedReconstructor recon(table);
  adc::digital::RawConversion raw;
  raw.stage_codes.assign(10, adc::digital::StageCode::kPlus);
  raw.flash_code = 3;
  EXPECT_EQ(recon.code(raw), 4095);
  raw.stage_codes.assign(10, adc::digital::StageCode::kMinus);
  raw.flash_code = 0;
  EXPECT_EQ(recon.code(raw), 0);
}

TEST(CalibratedReconstructor, RejectsGeometryMismatch) {
  const ac::CalibratedReconstructor recon(ac::CalibrationTable::nominal(10, 2));
  adc::digital::RawConversion raw;
  raw.stage_codes.assign(8, adc::digital::StageCode::kZero);
  EXPECT_THROW((void)recon.reconstruct(raw), adc::common::ConfigError);
}
