/// Generalization tests: the library is not hard-wired to the paper's
/// 10-stage/2-bit-flash geometry — any 1.5-bit chain + flash builds, meets
/// its ideal resolution, and keeps the redundancy property.
#include <cmath>

#include <gtest/gtest.h>

#include "dsp/linearity.hpp"
#include "pipeline/adc.hpp"
#include "pipeline/design.hpp"
#include "testbench/dynamic_test.hpp"

namespace ap = adc::pipeline;
namespace tb = adc::testbench;

namespace {

ap::AdcConfig geometry(int stages, int flash_bits, bool ideal) {
  ap::AdcConfig cfg = ideal ? ap::ideal_design() : ap::nominal_design();
  cfg.num_stages = stages;
  cfg.flash_bits = flash_bits;
  return cfg;
}

}  // namespace

class GeometrySweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GeometrySweep, IdealConverterMeetsItsResolution) {
  const auto [stages, flash_bits] = GetParam();
  ap::PipelineAdc adc(geometry(stages, flash_bits, /*ideal=*/true));
  const int bits = stages + flash_bits;
  EXPECT_EQ(adc.resolution_bits(), bits);

  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 12;
  const auto m = tb::run_dynamic_test(adc, opt).metrics;
  EXPECT_NEAR(m.enob, static_cast<double>(bits), 0.15) << stages << "+" << flash_bits;
}

TEST_P(GeometrySweep, MidScaleAndEndpoints) {
  const auto [stages, flash_bits] = GetParam();
  ap::PipelineAdc adc(geometry(stages, flash_bits, true));
  const int max_code = (1 << (stages + flash_bits)) - 1;
  EXPECT_NEAR(adc.convert_dc(0.0), (max_code + 1) / 2, 1);
  EXPECT_EQ(adc.convert_dc(-1.1), 0);
  EXPECT_EQ(adc.convert_dc(1.1), max_code);
}

TEST_P(GeometrySweep, MonotoneTransfer) {
  const auto [stages, flash_bits] = GetParam();
  ap::PipelineAdc adc(geometry(stages, flash_bits, true));
  std::vector<double> ramp;
  for (double v = -1.05; v <= 1.05; v += 0.002) ramp.push_back(v);
  EXPECT_TRUE(adc::dsp::is_monotonic(adc.convert_samples(ramp)));
}

INSTANTIATE_TEST_SUITE_P(Chains, GeometrySweep,
                         ::testing::Values(std::make_tuple(6, 2),    // 8 bit
                                           std::make_tuple(8, 2),    // 10 bit
                                           std::make_tuple(8, 3),    // 11 bit
                                           std::make_tuple(10, 2),   // the paper
                                           std::make_tuple(12, 2))); // 14 bit

TEST(Geometry, RedundancyHoldsOnAlternateChain) {
  // The 8-stage/3-bit geometry absorbs stage-1 comparator offsets below
  // V_REF/4 just like the paper's chain.
  ap::PipelineAdc adc(geometry(8, 3, true));
  adc.stage_mutable(0).inject_comparator_offset(1, 0.2);
  adc.stage_mutable(0).inject_comparator_offset(0, -0.2);
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 12;
  EXPECT_GT(tb::run_dynamic_test(adc, opt).metrics.enob, 10.9);
}

TEST(Geometry, FourteenBitNeedsBetterAnalog) {
  // Scaling the paper's analog to 14 bits without touching the noise budget
  // leaves ENOB far short of 14: the noise floor (sized for 12 bits)
  // dominates. The architecture scales; the circuit budget must too.
  ap::PipelineAdc adc(geometry(12, 2, /*ideal=*/false));
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 12;
  const auto m = tb::run_dynamic_test(adc, opt).metrics;
  EXPECT_GT(m.enob, 9.5);
  EXPECT_LT(m.enob, 11.5);
}

TEST(Geometry, LatencyFollowsChainLength) {
  EXPECT_EQ(ap::PipelineAdc(geometry(6, 2, true)).latency_cycles(), (6 + 3) / 2);
  EXPECT_EQ(ap::PipelineAdc(geometry(12, 2, true)).latency_cycles(), (12 + 3) / 2);
}

TEST(Geometry, NominalDesignAlternateSeedsStayInBand) {
  // Any die of the nominal design lands near Table I (the MC bench covers
  // this broadly; here a fast smoke check of three seeds).
  for (std::uint64_t seed : {7ull, 1234ull, 987654ull}) {
    ap::PipelineAdc adc(ap::nominal_design(seed));
    tb::DynamicTestOptions opt;
    opt.record_length = 1 << 12;
    const auto m = tb::run_dynamic_test(adc, opt).metrics;
    EXPECT_GT(m.enob, 10.0) << seed;
    EXPECT_LT(m.enob, 10.9) << seed;
  }
}
