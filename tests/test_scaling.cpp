/// Unit tests for stage scaling policies.
#include "pipeline/scaling.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ap = adc::pipeline;

TEST(ScalingPolicy, PaperProfile) {
  const auto p = ap::ScalingPolicy::paper();
  EXPECT_DOUBLE_EQ(p.factor(0), 1.0);
  EXPECT_DOUBLE_EQ(p.factor(1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(p.factor(2), 1.0 / 3.0);
  // "...and the rest of the stages with 1/3": the profile repeats.
  EXPECT_DOUBLE_EQ(p.factor(9), 1.0 / 3.0);
  EXPECT_EQ(p.name(), "paper-1-2/3-1/3");
}

TEST(ScalingPolicy, PaperTotalForTenStages) {
  const auto p = ap::ScalingPolicy::paper();
  // 1 + 2/3 + 8*(1/3) = 4.333..: the pipeline costs 4.33 stage-1 units of
  // capacitance and bias instead of 10 — the paper's area/power saving.
  EXPECT_NEAR(p.total(10), 13.0 / 3.0, 1e-12);
}

TEST(ScalingPolicy, UniformIsAllOnes) {
  const auto p = ap::ScalingPolicy::uniform();
  for (std::size_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(p.factor(i), 1.0);
  EXPECT_DOUBLE_EQ(p.total(10), 10.0);
}

TEST(ScalingPolicy, GeometricDecaysToFloor) {
  const auto p = ap::ScalingPolicy::geometric(0.5, 0.25);
  EXPECT_DOUBLE_EQ(p.factor(0), 1.0);
  EXPECT_DOUBLE_EQ(p.factor(1), 0.5);
  EXPECT_DOUBLE_EQ(p.factor(2), 0.25);
  EXPECT_DOUBLE_EQ(p.factor(9), 0.25);  // floor holds
}

TEST(ScalingPolicy, FactorsVector) {
  const auto f = ap::ScalingPolicy::paper().factors(5);
  ASSERT_EQ(f.size(), 5u);
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_DOUBLE_EQ(f[4], 1.0 / 3.0);
}

TEST(ScalingPolicy, Custom) {
  const auto p = ap::ScalingPolicy::custom({1.0, 0.8}, "my-policy");
  EXPECT_DOUBLE_EQ(p.factor(5), 0.8);
  EXPECT_EQ(p.name(), "my-policy");
}

TEST(ScalingPolicy, RejectsBadFactors) {
  EXPECT_THROW((void)ap::ScalingPolicy::custom({}, "empty"), adc::common::ConfigError);
  EXPECT_THROW((void)ap::ScalingPolicy::custom({1.5}, "big"), adc::common::ConfigError);
  EXPECT_THROW((void)ap::ScalingPolicy::custom({0.0}, "zero"), adc::common::ConfigError);
  EXPECT_THROW((void)ap::ScalingPolicy::geometric(1.0, 0.5), adc::common::ConfigError);
}
