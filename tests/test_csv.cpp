/// Tests for the CSV export utility.
#include "common/csv.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ac = adc::common;

TEST(Csv, SerializesNumbers) {
  ac::CsvTable t({"x", "y"});
  t.add_row({1.0, 2.5});
  t.add_row({110e6, 97e-3});
  const auto s = t.to_string();
  EXPECT_NE(s.find("x,y\n"), std::string::npos);
  EXPECT_NE(s.find("1,2.5\n"), std::string::npos);
  EXPECT_NE(s.find("110000000"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Csv, QuotesSpecialCells) {
  ac::CsvTable t({"name", "note"});
  t.add_text_row({"a,b", "he said \"hi\""});
  const auto s = t.to_string();
  EXPECT_NE(s.find("\"a,b\""), std::string::npos);
  EXPECT_NE(s.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Csv, RowWidthChecked) {
  ac::CsvTable t({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), ac::ConfigError);
  EXPECT_THROW(t.add_text_row({"only"}), ac::ConfigError);
}

TEST(Csv, WritesAndReadsBackFile) {
  ac::CsvTable t({"k", "v"});
  t.add_row({1.0, 42.0});
  const std::string path = "/tmp/adc_csv_test.csv";
  t.write(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k,v");
  std::getline(in, line);
  EXPECT_EQ(line, "1,42");
  std::remove(path.c_str());
}

TEST(Csv, WriteFailureThrows) {
  ac::CsvTable t({"a"});
  EXPECT_THROW(t.write("/nonexistent-dir/file.csv"), ac::ConfigError);
}

TEST(Csv, BenchDirRespectsEnvironment) {
  unsetenv("ADC_BENCH_CSV_DIR");
  EXPECT_FALSE(ac::bench_csv_dir().has_value());
  ac::CsvTable t({"a"});
  t.add_row({1.0});
  EXPECT_FALSE(ac::write_bench_csv("unit_test", t).has_value());

  setenv("ADC_BENCH_CSV_DIR", "/tmp", 1);
  ASSERT_TRUE(ac::bench_csv_dir().has_value());
  const auto path = ac::write_bench_csv("unit_test", t);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, "/tmp/unit_test.csv");
  std::ifstream in(*path);
  EXPECT_TRUE(in.good());
  std::remove(path->c_str());
  unsetenv("ADC_BENCH_CSV_DIR");
}
