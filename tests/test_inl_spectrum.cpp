/// Tests for static-to-dynamic harmonic prediction from the INL curve.
#include "dsp/inl_spectrum.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dsp/linearity.hpp"
#include "dsp/signal.hpp"
#include "dsp/spectrum.hpp"
#include "pipeline/design.hpp"
#include "testbench/static_test.hpp"

namespace ad = adc::dsp;
namespace ap = adc::pipeline;

namespace {

/// Synthetic INL of a pure cubic error: inl(v) = a3*v^3 in LSB of a
/// `bits`-bit converter, over the code axis.
std::vector<double> cubic_inl(int bits, double a3_lsb) {
  const auto n = static_cast<std::size_t>(1) << bits;
  std::vector<double> inl(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double v = 2.0 * (static_cast<double>(k) + 0.5) / static_cast<double>(n) - 1.0;
    inl[k] = a3_lsb * v * v * v;
  }
  return inl;
}

}  // namespace

TEST(InlSpectrum, PureCubicPredictsHd3Exactly) {
  // e(v) = a3 v^3 driven by v = sin(theta): the HD3 amplitude is a3/4.
  const int bits = 12;
  const double a3 = 8.0;  // LSB at full scale
  const auto inl = cubic_inl(bits, a3);
  const auto r = ad::predict_harmonics_from_inl(inl, bits, 1.0);
  const double expected_hd3 =
      20.0 * std::log10((a3 / 4.0) / std::pow(2.0, bits - 1));
  EXPECT_NEAR(r.harmonic_dbc[3], expected_hd3, 0.1);
  EXPECT_EQ(r.worst_order, 3);
  // A cubic produces no even harmonics.
  EXPECT_LT(r.harmonic_dbc[2], expected_hd3 - 40.0);
}

TEST(InlSpectrum, QuadraticPredictsHd2) {
  const int bits = 10;
  const auto n = static_cast<std::size_t>(1) << bits;
  std::vector<double> inl(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double v = 2.0 * (static_cast<double>(k) + 0.5) / static_cast<double>(n) - 1.0;
    inl[k] = 4.0 * v * v;
  }
  const auto r = ad::predict_harmonics_from_inl(inl, bits, 1.0);
  // e = a2 v^2 -> HD2 amplitude a2/2.
  const double expected = 20.0 * std::log10((4.0 / 2.0) / std::pow(2.0, bits - 1));
  EXPECT_NEAR(r.harmonic_dbc[2], expected, 0.1);
  EXPECT_EQ(r.worst_order, 2);
}

TEST(InlSpectrum, AmplitudeScalingForCubic) {
  // HD3 of a cubic scales 2 dB per dB of amplitude (relative to the tone).
  const auto inl = cubic_inl(12, 8.0);
  const auto full = ad::predict_harmonics_from_inl(inl, 12, 1.0);
  const auto half = ad::predict_harmonics_from_inl(inl, 12, 0.5);
  EXPECT_NEAR(full.harmonic_dbc[3] - half.harmonic_dbc[3], 12.0, 0.3);
}

TEST(InlSpectrum, ZeroInlPredictsSilence) {
  const std::vector<double> inl(4096, 0.0);
  const auto r = ad::predict_harmonics_from_inl(inl, 12);
  EXPECT_LT(r.thd_db, -250.0);
}

TEST(InlSpectrum, PredictsTheNominalDieStaticFloor) {
  // Measure the nominal die's INL (noiseless edge extraction), predict the
  // harmonics, and compare with the *measured* low-frequency dynamic test:
  // at 1 MHz the dynamic mechanisms are asleep, so the static prediction
  // must land within a couple of dB.
  auto cfg = ap::nominal_design();
  cfg.enable.thermal_noise = false;
  cfg.enable.aperture_jitter = false;
  cfg.enable.comparator_imperfections = false;
  cfg.enable.bias_ripple = false;
  ap::PipelineAdc adc(cfg);
  const auto edges = adc::testbench::extract_transfer_edges(adc, 30);
  const auto lin = ad::edges_linearity(edges, 12);
  const auto predicted = ad::predict_harmonics_from_inl(lin.inl, 12, 0.985);

  // Measured: slow coherent tone through the same noiseless converter.
  const double fs = adc.conversion_rate();
  const auto tone = ad::coherent_frequency(1e6, fs, 1 << 13);
  const ad::SineSignal sig(0.985, tone.frequency_hz);
  const auto codes = adc.convert(sig, 1 << 13);
  const auto volts = ad::codes_to_volts(codes, 12, 2.0);
  ad::SpectrumOptions opt;
  opt.fundamental_bin = tone.cycles;
  const auto measured = ad::analyze_tone(volts, fs, opt);

  EXPECT_NEAR(predicted.thd_db, measured.thd_db, 2.5);
  // The dominant predicted harmonic is the dominant measured one.
  EXPECT_EQ(predicted.worst_order, measured.spur_harmonic_order);
}

TEST(InlSpectrum, RejectsBadInput) {
  const std::vector<double> wrong(100, 0.0);
  EXPECT_THROW((void)ad::predict_harmonics_from_inl(wrong, 12), adc::common::ConfigError);
  const std::vector<double> ok(4096, 0.0);
  EXPECT_THROW((void)ad::predict_harmonics_from_inl(ok, 12, -0.1), adc::common::ConfigError);
  EXPECT_THROW((void)ad::predict_harmonics_from_inl(ok, 12, 0.9, 1), adc::common::ConfigError);
}
