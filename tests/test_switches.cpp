/// Unit tests for the sampling-switch models — including the paper's two
/// switch claims: bulk switching lowers the PMOS on-resistance, and the
/// un-bootstrapped input switch is the distortion bottleneck.
#include "analog/switches.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace aa = adc::analog;

namespace {

aa::SwitchConfig make_config(aa::SwitchType type) {
  aa::SwitchConfig c;
  c.type = type;
  c.w_over_l_nmos = 60.0;
  c.w_over_l_pmos = 120.0;
  c.vdd = 1.8;
  return c;
}

}  // namespace

TEST(SwitchModel, BulkSwitchingLowersOnResistance) {
  // The paper's claim (section 3): tying the PMOS N-well to the source when
  // on removes the body effect and lowers the on-resistance wherever the
  // PMOS conducts.
  const aa::SwitchModel plain(make_config(aa::SwitchType::kTransmissionGate));
  const aa::SwitchModel bulk(make_config(aa::SwitchType::kBulkSwitchedTg));
  for (double u = 0.6; u <= 1.4; u += 0.1) {
    EXPECT_LE(bulk.r_on(u), plain.r_on(u) * 1.0001) << "u=" << u;
  }
  // At mid-rail the improvement is substantial.
  EXPECT_LT(bulk.r_on(0.9), 0.88 * plain.r_on(0.9));
}

TEST(SwitchModel, BootstrappedIsFlattest) {
  // Relative on-resistance variation across the signal range, per type.
  auto variation = [](const aa::SwitchModel& m) {
    double lo = 1e12;
    double hi = 0.0;
    for (double u = 0.4; u <= 1.4; u += 0.05) {
      lo = std::min(lo, m.r_on(u));
      hi = std::max(hi, m.r_on(u));
    }
    return hi / lo;
  };
  const aa::SwitchModel boot(make_config(aa::SwitchType::kBootstrapped));
  const aa::SwitchModel bulk(make_config(aa::SwitchType::kBulkSwitchedTg));
  const aa::SwitchModel plain(make_config(aa::SwitchType::kTransmissionGate));
  EXPECT_LT(variation(boot), 1.01);              // essentially constant
  EXPECT_LT(variation(bulk), variation(plain));  // bulk switching helps
  EXPECT_GT(variation(bulk), 1.2);               // but is no bootstrap
}

TEST(SwitchModel, NmosOnlyDiesNearVdd) {
  const aa::SwitchModel nmos(make_config(aa::SwitchType::kNmosOnly));
  EXPECT_LT(nmos.r_on(0.2), 1e3);
  EXPECT_GT(nmos.r_on(1.6), 1e5);  // no drive left near the positive rail
}

TEST(SwitchModel, JunctionCapDecreasesWithReverseBias) {
  const aa::SwitchModel m(make_config(aa::SwitchType::kBulkSwitchedTg));
  EXPECT_GT(m.c_junction(0.2), m.c_junction(0.9));
  EXPECT_GT(m.c_junction(0.9), m.c_junction(1.6));
  EXPECT_NEAR(m.c_junction(0.0), m.config().cj0, 1e-18);
}

TEST(SwitchModel, TimeConstantIncludesJunction) {
  const aa::SwitchModel m(make_config(aa::SwitchType::kBulkSwitchedTg));
  const double c_load = 0.5e-12;
  EXPECT_GT(m.time_constant(0.9, c_load), m.r_on(0.9) * c_load);
}

TEST(SwitchModel, ChannelChargeSigns) {
  const aa::SwitchModel nmos(make_config(aa::SwitchType::kNmosOnly));
  EXPECT_LT(nmos.channel_charge(0.5), 0.0);  // electrons
  const aa::SwitchModel boot(make_config(aa::SwitchType::kBootstrapped));
  // Constant for the bootstrapped switch.
  EXPECT_DOUBLE_EQ(boot.channel_charge(0.4), boot.channel_charge(1.2));
}

TEST(DifferentialSampler, TrackingErrorZeroAtZeroSlope) {
  const aa::DifferentialSampler s(make_config(aa::SwitchType::kBulkSwitchedTg), 0.9,
                                  0.55e-12);
  EXPECT_DOUBLE_EQ(s.tracking_error(0.3, 0.0), 0.0);
}

TEST(DifferentialSampler, TrackingErrorProportionalToSlope) {
  const aa::DifferentialSampler s(make_config(aa::SwitchType::kBulkSwitchedTg), 0.9,
                                  0.55e-12);
  const double e1 = s.tracking_error(0.2, 1e8);
  const double e2 = s.tracking_error(0.2, 2e8);
  EXPECT_NEAR(e2, 2.0 * e1, 1e-15);
  EXPECT_LT(e1, 0.0);  // the sample lags a rising input
}

TEST(DifferentialSampler, TimeConstantIsEvenInSignal) {
  const aa::DifferentialSampler s(make_config(aa::SwitchType::kBulkSwitchedTg), 0.9,
                                  0.55e-12);
  EXPECT_NEAR(s.average_time_constant(0.7), s.average_time_constant(-0.7), 1e-18);
  // And genuinely signal dependent (the distortion source).
  EXPECT_NE(s.average_time_constant(0.0), s.average_time_constant(1.0));
}

TEST(DifferentialSampler, ChargeInjectionIsOdd) {
  auto cfg = make_config(aa::SwitchType::kBulkSwitchedTg);
  cfg.injection_fraction = 0.05;
  const aa::DifferentialSampler s(cfg, 0.9, 0.55e-12);
  EXPECT_NEAR(s.charge_injection_error(0.0), 0.0, 1e-15);
  EXPECT_NEAR(s.charge_injection_error(0.6), -s.charge_injection_error(-0.6), 1e-15);
  EXPECT_NE(s.charge_injection_error(0.6), 0.0);
}

TEST(DifferentialSampler, ChargeInjectionNonlinear) {
  // The error must not be purely linear in v (otherwise no distortion).
  auto cfg = make_config(aa::SwitchType::kBulkSwitchedTg);
  cfg.injection_fraction = 0.05;
  const aa::DifferentialSampler s(cfg, 0.9, 0.55e-12);
  const double e_half = s.charge_injection_error(0.5);
  const double e_full = s.charge_injection_error(1.0);
  EXPECT_GT(std::abs(e_full - 2.0 * e_half), 1e-6 * std::abs(e_full));
}

TEST(DifferentialSampler, BootstrappedHasNoInjectionDistortion) {
  auto cfg = make_config(aa::SwitchType::kBootstrapped);
  cfg.injection_fraction = 0.05;
  const aa::DifferentialSampler s(cfg, 0.9, 0.55e-12);
  // Constant per-side charge cancels differentially.
  EXPECT_NEAR(s.charge_injection_error(0.8), 0.0, 1e-15);
}

TEST(DifferentialSampler, ZeroFractionDisables) {
  auto cfg = make_config(aa::SwitchType::kBulkSwitchedTg);
  cfg.injection_fraction = 0.0;
  const aa::DifferentialSampler s(cfg, 0.9, 0.55e-12);
  EXPECT_DOUBLE_EQ(s.charge_injection_error(0.7), 0.0);
}

TEST(DifferentialSampler, InvalidConfigThrows) {
  const auto cfg = make_config(aa::SwitchType::kBulkSwitchedTg);
  EXPECT_THROW(aa::DifferentialSampler(cfg, 0.9, 0.0), adc::common::ConfigError);
  EXPECT_THROW(aa::DifferentialSampler(cfg, 2.5, 1e-12), adc::common::ConfigError);
}

class TrackingDistortionSweep : public ::testing::TestWithParam<double> {};

TEST_P(TrackingDistortionSweep, ErrorBoundedByTauTimesSlope) {
  // |e| <= max_tau * |dv/dt| for any operating point: the first-order model
  // never exceeds its own time constant bound.
  const double v = GetParam();
  const aa::DifferentialSampler s(make_config(aa::SwitchType::kBulkSwitchedTg), 0.9,
                                  0.55e-12);
  const double slope = 6.28e8;  // 100 MHz full-scale-ish
  double max_tau = 0.0;
  for (double u = 0.0; u <= 1.8; u += 0.01) {
    max_tau = std::max(max_tau, s.switch_model().time_constant(u, 0.55e-12));
  }
  EXPECT_LE(std::abs(s.tracking_error(v, slope)), max_tau * slope * 1.0001);
}

INSTANTIATE_TEST_SUITE_P(Signals, TrackingDistortionSweep,
                         ::testing::Values(-1.0, -0.5, 0.0, 0.5, 1.0));
