/// Tests for the parallel simulation runtime: work-stealing pool mechanics
/// (steal path, backpressure, cancellation), the deterministic batch API
/// (index ordering, thread-count invariance, exception propagation), and the
/// telemetry/manifest layer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "runtime/manifest.hpp"
#include "runtime/metrics.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"

namespace rt = adc::runtime;

namespace {

/// A deterministic, mildly expensive pure function of an index (splitmix64
/// finisher) — a stand-in for "fabricate die i and measure it".
double job_value(std::size_t i) {
  std::uint64_t z = static_cast<std::uint64_t>(i) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z) / 1e19;
}

/// A manual gate: jobs block on wait() until the test calls open().
class Gate {
 public:
  void open() {
    {
      std::lock_guard<std::mutex> lock(m_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  bool open_ = false;
};

}  // namespace

TEST(ThreadPool, RunsEveryJobOnce) {
  rt::ThreadPool pool({4, 128});
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
  const auto c = pool.counters();
  EXPECT_EQ(c.submitted, 100u);
  EXPECT_EQ(c.executed, 100u);
  EXPECT_EQ(c.failed, 0u);
  EXPECT_EQ(pool.latency_histogram().total(), 100u);
}

TEST(ThreadPool, StealPathMovesJobsOffABlockedWorker) {
  // Two workers, round-robin submission: a gate job parks worker 0, then the
  // quick jobs dealt to worker 0's deque can only finish if worker 1 steals
  // them. Require all quick jobs to complete *while the gate is still shut*.
  rt::ThreadPool pool({2, 128});
  Gate gate;
  std::atomic<int> quick_done{0};
  pool.submit([&gate] { gate.wait(); });
  const int quick_jobs = 8;
  for (int i = 0; i < quick_jobs; ++i) {
    pool.submit([&quick_done] { quick_done.fetch_add(1); });
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (quick_done.load() < quick_jobs) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "steal path never drained";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(pool.counters().stolen, 1u);
  gate.open();
  pool.wait_idle();
}

TEST(ThreadPool, TrySubmitReportsBackpressure) {
  // One worker parked on a gate; capacity 2. The parked job has been *popped*
  // (running, not queued), so two try_submits fill the queue and the third
  // must be rejected.
  rt::ThreadPool pool({1, 2});
  Gate gate;
  std::atomic<bool> gate_running{false};
  pool.submit([&gate, &gate_running] {
    gate_running.store(true);
    gate.wait();
  });
  // Wait until the gate job has left the queue and is running.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!gate_running.load()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::atomic<int> done{0};
  auto quick = [&done] { done.fetch_add(1); };
  bool accepted_all = true;
  int accepted = 0;
  for (int i = 0; i < 3; ++i) {
    if (pool.try_submit(quick)) {
      ++accepted;
    } else {
      accepted_all = false;
    }
  }
  EXPECT_FALSE(accepted_all);
  EXPECT_LE(accepted, 2);
  gate.open();
  pool.wait_idle();
  EXPECT_EQ(done.load(), accepted);
}

TEST(ThreadPool, BlockingSubmitWaitsForSpaceInsteadOfFailing) {
  rt::ThreadPool pool({1, 1});
  Gate gate;
  std::atomic<int> done{0};
  pool.submit([&gate] { gate.wait(); });
  pool.submit([&done] { done.fetch_add(1); });  // fills the queue
  // This submit must block until the gate opens; run it from a helper thread
  // and verify it has not returned while the pool is saturated.
  std::atomic<bool> third_accepted{false};
  std::thread producer([&] {
    pool.submit([&done] { done.fetch_add(1); });
    third_accepted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_accepted.load());
  gate.open();
  producer.join();
  pool.wait_idle();
  EXPECT_TRUE(third_accepted.load());
  EXPECT_EQ(done.load(), 2);
  EXPECT_GE(pool.counters().backpressure_waits, 1u);
}

TEST(ThreadPool, RawJobExceptionIsCapturedNotFatal) {
  rt::ThreadPool pool({2, 16});
  pool.submit([] { throw adc::common::MeasurementError("raw job boom"); });
  pool.wait_idle();
  EXPECT_EQ(pool.counters().failed, 1u);
  const auto error = pool.first_job_error();
  ASSERT_TRUE(error);
  EXPECT_THROW(std::rethrow_exception(error), adc::common::MeasurementError);
}

TEST(ParallelMap, ReturnsResultsInIndexOrder) {
  const std::size_t n = 100;
  rt::BatchOptions opts;
  opts.threads = 4;
  rt::BatchStats stats;
  opts.stats = &stats;
  const auto out = rt::parallel_map<double>(n, job_value, opts);
  ASSERT_EQ(out.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(out[i], job_value(i)) << "slot " << i;
  }
  EXPECT_EQ(stats.jobs, n);
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_GE(stats.wall_seconds, 0.0);
}

TEST(ParallelMap, BitIdenticalAcrossThreadCounts) {
  const std::size_t n = 64;
  std::vector<std::vector<double>> runs;
  for (const unsigned threads : {1u, 2u, 5u, 8u}) {
    rt::BatchOptions opts;
    opts.threads = threads;
    runs.push_back(rt::parallel_map<double>(n, job_value, opts));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[0], runs[r]) << "thread-count run " << r << " diverged";
  }
}

TEST(ParallelMap, SingleFailureRethrownOnCaller) {
  rt::BatchOptions opts;
  opts.threads = 4;
  const auto run = [&] {
    (void)rt::parallel_map<double>(
        64,
        [](std::size_t i) {
          if (i == 17) throw adc::common::MeasurementError("die 17 failed");
          return job_value(i);
        },
        opts);
  };
  try {
    run();
    FAIL() << "expected MeasurementError";
  } catch (const adc::common::MeasurementError& e) {
    EXPECT_STREQ(e.what(), "die 17 failed");
  }
  // The pool survives a failed batch and runs subsequent work.
  const auto again = rt::parallel_map<double>(8, job_value, opts);
  EXPECT_EQ(again.size(), 8u);
}

TEST(ParallelMap, FailureCancelsRemainingJobs) {
  std::atomic<std::uint64_t> executed{0};
  rt::BatchOptions opts;
  opts.threads = 2;
  rt::BatchStats stats;
  opts.stats = &stats;
  bool threw = false;
  try {
    (void)rt::parallel_map<double>(
        256,
        [&executed](std::size_t i) {
          executed.fetch_add(1);
          if (i == 0) throw adc::common::MeasurementError("first job fails");
          std::this_thread::sleep_for(std::chrono::microseconds(50));
          return job_value(i);
        },
        opts);
  } catch (const adc::common::MeasurementError&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  // Cancellation is cooperative, so some in-flight jobs complete, but the
  // tail of the batch must have been skipped.
  EXPECT_LT(executed.load(), 256u);
  EXPECT_GT(stats.skipped, 0u);
}

TEST(ParallelMap, PreCancelledBatchSkipsEverything) {
  rt::CancellationToken cancel;
  cancel.cancel();
  rt::BatchOptions opts;
  opts.threads = 2;
  opts.cancel = &cancel;
  rt::BatchStats stats;
  opts.stats = &stats;
  std::atomic<int> executed{0};
  const auto out = rt::parallel_map<double>(
      32,
      [&executed](std::size_t i) {
        executed.fetch_add(1);
        return job_value(i);
      },
      opts);
  EXPECT_EQ(executed.load(), 0);
  EXPECT_EQ(stats.skipped, 32u);
  EXPECT_EQ(out.size(), 32u);  // default-filled slots
}

TEST(ParallelMap, NestedBatchRunsInlineWithoutDeadlock) {
  rt::BatchOptions opts;
  opts.threads = 2;
  const auto out = rt::parallel_map<double>(
      8,
      [](std::size_t i) {
        // A batch inside a worker must serialize, not deadlock.
        const auto inner =
            rt::parallel_map<double>(4, [i](std::size_t j) { return job_value(i * 4 + j); });
        double sum = 0.0;
        for (const double v : inner) sum += v;
        return sum;
      },
      opts);
  ASSERT_EQ(out.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    double expect = 0.0;
    for (std::size_t j = 0; j < 4; ++j) expect += job_value(i * 4 + j);
    EXPECT_DOUBLE_EQ(out[i], expect);
  }
}

TEST(ParallelMap, ScopedOverridePinsThreadCountAndNests) {
  EXPECT_EQ(rt::effective_thread_count(3), 3u);
  {
    const rt::ScopedThreadOverride outer(1);
    EXPECT_EQ(rt::effective_thread_count(0), 1u);
    {
      const rt::ScopedThreadOverride inner(4);
      EXPECT_EQ(rt::effective_thread_count(0), 4u);
    }
    EXPECT_EQ(rt::effective_thread_count(0), 1u);
    // Serial reference path under the override.
    const auto out = rt::parallel_map<double>(16, job_value);
    for (std::size_t i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(out[i], job_value(i));
  }
}

TEST(ParallelMap, EmptyAndSingleElementBatches) {
  const auto none = rt::parallel_map<double>(0, job_value);
  EXPECT_TRUE(none.empty());
  const auto one = rt::parallel_map<double>(1, job_value);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], job_value(0));
}

TEST(RuntimeConfig, EnvThreadOverrideParses) {
  ASSERT_EQ(setenv("ADC_RUNTIME_THREADS", "3", 1), 0);
  EXPECT_EQ(rt::default_thread_count(), 3u);
  ASSERT_EQ(setenv("ADC_RUNTIME_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(rt::default_thread_count(), 1u);  // falls back to hardware
  ASSERT_EQ(setenv("ADC_RUNTIME_THREADS", "0", 1), 0);
  EXPECT_GE(rt::default_thread_count(), 1u);
  ASSERT_EQ(unsetenv("ADC_RUNTIME_THREADS"), 0);
}

TEST(Metrics, HistogramBucketsAndQuantiles) {
  rt::LatencyHistogram hist;
  hist.record(std::chrono::microseconds(1));    // bucket 0
  hist.record(std::chrono::microseconds(3));    // bucket 1
  hist.record(std::chrono::microseconds(100));  // bucket 6
  hist.record(std::chrono::nanoseconds(10));    // sub-µs -> bucket 0
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.total(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[6], 1u);
  EXPECT_EQ(snap.quantile_upper_us(0.0), 2u);
  EXPECT_EQ(snap.quantile_upper_us(1.0), 128u);
  EXPECT_EQ(rt::HistogramSnapshot{}.quantile_upper_us(0.5), 0u);
}

TEST(Manifest, JsonCarriesProvenancePhasesAndTelemetry) {
  rt::RunManifest manifest("unit_test_run");
  manifest.set_seed_range(42, 25);
  manifest.set_count("threads", 8);
  manifest.set_number("speedup", 3.5);
  manifest.set_text("note", "quote \" backslash \\ done");
  {
    auto scope = manifest.phase("simulate", 25);
    scope.set_jobs(25);
  }
  manifest.add_phase({"analyze", 0.25, 0.5, 3});

  rt::ThreadPool pool({2, 16});
  std::atomic<int> n{0};
  for (int i = 0; i < 10; ++i) pool.submit([&n] { n.fetch_add(1); });
  pool.wait_idle();
  manifest.set_pool_telemetry(pool.counters(), pool.latency_histogram());

  const auto json = manifest.to_json();
  for (const char* needle :
       {"\"run\": \"unit_test_run\"", "\"git_describe\"", "\"schema_version\": 2",
        "\"first_seed\": 42", "\"seed_count\": 25", "\"threads\": 8",
        "\"name\": \"simulate\"", "\"jobs\": 25", "\"name\": \"analyze\"",
        "\"pool\"", "\"executed\": 10", "\"job_latency_us\"",
        "quote \\\" backslash \\\\ done"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << "missing " << needle << "\n" << json;
  }
  // Structural sanity: braces and brackets balance.
  long braces = 0;
  long brackets = 0;
  for (const char c : json) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

// Schema v2 contract: the emitted manifest is a valid strict-JSON document
// that round-trips through the shared parser with nothing lost — parse it,
// re-emit it, and the bytes match.
TEST(Manifest, JsonParseEmitRoundTripIsExact) {
  rt::RunManifest manifest("roundtrip_run");
  manifest.set_seed_range(7, 3);
  manifest.set_number("wall_speedup", 0.69999999999999996);  // 17-digit double
  manifest.set_text("note", "tab\there \"quoted\" \\slash");
  {
    auto scope = manifest.phase("measure", 3);
  }
  rt::ThreadPool pool({2, 16});
  for (int i = 0; i < 4; ++i) pool.submit([] {});
  pool.wait_idle();
  manifest.set_pool_telemetry(pool.counters(), pool.latency_histogram());

  const std::string emitted = manifest.to_json();
  const auto parsed = adc::common::json::parse(emitted);
  EXPECT_EQ(adc::common::json::dump(parsed), emitted);
  EXPECT_TRUE(parsed == manifest.to_json_value());

  // Spot-check typed access through the parsed tree.
  EXPECT_EQ(parsed.find("schema_version")->as_uint64(), 2u);
  EXPECT_EQ(parsed.find("first_seed")->as_uint64(), 7u);
  ASSERT_EQ(parsed.find("phases")->items().size(), 1u);
  EXPECT_EQ(parsed.find("phases")->items()[0].find("name")->as_string(), "measure");
  EXPECT_EQ(parsed.find("pool")->find("executed")->as_uint64(), 4u);
}

TEST(Manifest, WritesToEnvDirWhenSet) {
  rt::RunManifest manifest("env_dir_probe");
  EXPECT_FALSE(manifest.write_to_env_dir().has_value());  // unset -> disabled

  const auto dir = ::testing::TempDir();
  ASSERT_EQ(setenv("ADC_RUNTIME_MANIFEST_DIR", dir.c_str(), 1), 0);
  const auto path = manifest.write_to_env_dir();
  ASSERT_EQ(unsetenv("ADC_RUNTIME_MANIFEST_DIR"), 0);
  ASSERT_TRUE(path.has_value());
  std::ifstream in(*path);
  ASSERT_TRUE(in.good()) << *path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), manifest.to_json());
  ASSERT_EQ(std::remove(path->c_str()), 0);
}

TEST(Manifest, WriteToBadPathThrows) {
  const rt::RunManifest manifest("bad_path");
  EXPECT_THROW(manifest.write("/nonexistent-dir-for-sure/x.json"),
               adc::common::ConfigError);
}
