/// \file test_profile_parity.cpp
/// Cross-profile physics parity on the characterized nominal die.
///
/// The two fidelity profiles are different *determinism contracts* over the
/// same physics: a (design, seed) pair fabricates the same die under either
/// (construction-time Monte-Carlo always uses the exact Rng), and only the
/// per-sample noise stream and the rounding of the per-sample math differ.
/// So every figure of merit must agree to within measurement noise:
///
///   ENOB        |Delta| <= 0.05 bit
///   SNDR, THD   |Delta| <= 0.3 dB
///   DNL, INL    |Delta| <= 0.05 LSB (worst-case endpoints)
///
/// These bands are the ISSUE acceptance criteria; they are ~10x wider than
/// the observed deltas, so a real physics divergence (a surrogate fit gone
/// out of span, a mis-scaled noise slot, a dropped droop term) trips them
/// while profile-legal rounding noise never does.
#include <gtest/gtest.h>

#include <cmath>

#include "common/fidelity.hpp"
#include "dsp/linearity.hpp"
#include "pipeline/adc.hpp"
#include "pipeline/design.hpp"
#include "testbench/dynamic_test.hpp"
#include "testbench/static_test.hpp"

namespace {

using adc::common::FidelityProfile;
using adc::pipeline::AdcConfig;
using adc::pipeline::PipelineAdc;

AdcConfig profiled_nominal(FidelityProfile profile) {
  AdcConfig config = adc::pipeline::nominal_design();
  config.fidelity = profile;
  return config;
}

TEST(ProfileParity, DynamicMetricsAgreeOnNominalDie) {
  PipelineAdc exact(profiled_nominal(FidelityProfile::kExact));
  PipelineAdc fast(profiled_nominal(FidelityProfile::kFast));

  adc::testbench::DynamicTestOptions options;
  options.record_length = 1 << 13;
  // Average a few records so the comparison measures the converter, not the
  // single-record variance of two independent noise streams.
  options.averages = 4;

  const auto exact_result = adc::testbench::run_dynamic_test(exact, options);
  const auto fast_result = adc::testbench::run_dynamic_test(fast, options);

  EXPECT_NEAR(fast_result.metrics.enob, exact_result.metrics.enob, 0.05)
      << "exact ENOB " << exact_result.metrics.enob << ", fast ENOB "
      << fast_result.metrics.enob;
  EXPECT_NEAR(fast_result.metrics.sndr_db, exact_result.metrics.sndr_db, 0.3);
  EXPECT_NEAR(fast_result.metrics.thd_db, exact_result.metrics.thd_db, 0.3);
}

TEST(ProfileParity, StaticLinearityAgreesOnNominalDie) {
  PipelineAdc exact(profiled_nominal(FidelityProfile::kExact));
  PipelineAdc fast(profiled_nominal(FidelityProfile::kFast));

  adc::testbench::HistogramTestOptions options;
  const auto exact_lin = adc::testbench::run_histogram_test(exact, options);
  const auto fast_lin = adc::testbench::run_histogram_test(fast, options);

  EXPECT_NEAR(fast_lin.dnl_min, exact_lin.dnl_min, 0.05);
  EXPECT_NEAR(fast_lin.dnl_max, exact_lin.dnl_max, 0.05);
  EXPECT_NEAR(fast_lin.inl_min, exact_lin.inl_min, 0.05);
  EXPECT_NEAR(fast_lin.inl_max, exact_lin.inl_max, 0.05);
  EXPECT_TRUE(fast_lin.missing_codes.empty());
  EXPECT_TRUE(exact_lin.missing_codes.empty());
}

TEST(ProfileParity, DcTransferAgreesToOneLsb) {
  // Noise-free sanity cut through the whole residue chain: quantizing a DC
  // grid under both profiles may differ only by profile-legal rounding of
  // the analog math, never by more than a code.
  PipelineAdc exact(profiled_nominal(FidelityProfile::kExact));
  PipelineAdc fast(profiled_nominal(FidelityProfile::kFast));
  for (int i = -9; i <= 9; ++i) {
    const double v = 0.1 * i;
    const int ce = exact.convert_dc(v);
    const int cf = fast.convert_dc(v);
    EXPECT_NEAR(cf, ce, 1.0) << "v_in " << v;
  }
}

}  // namespace
