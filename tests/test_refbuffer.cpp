/// Unit tests for the reference buffer with off-chip decoupling.
#include "analog/refbuffer.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"

namespace aa = adc::analog;

namespace {

aa::RefBufferSpec clean_spec() {
  aa::RefBufferSpec s;
  s.nominal_vref = 1.0;
  s.common_mode = 0.9;
  s.output_resistance = 2.0;
  s.decap_farad = 100e-9;
  s.charge_per_event = 1e-12;
  s.sigma_level = 0.0;
  return s;
}

}  // namespace

TEST(ReferenceBuffer, IdealHasNoErrors) {
  auto buf = aa::ReferenceBuffer::ideal(1.0, 0.9);
  EXPECT_DOUBLE_EQ(buf.vref(), 1.0);
  EXPECT_DOUBLE_EQ(buf.common_mode(), 0.9);
  buf.consume(10.0, 9e-9);
  EXPECT_DOUBLE_EQ(buf.vref(), 1.0);
}

TEST(ReferenceBuffer, ConsumeDroopsReference) {
  adc::common::Rng rng(1);
  aa::ReferenceBuffer buf(clean_spec(), rng);
  const double v0 = buf.vref();
  buf.consume(10.0, 9e-9);
  EXPECT_LT(buf.vref(), v0);
  // Droop magnitude: activity * q / C, partially recovered over the 9 ns
  // sample period with the 200 ns buffer time constant.
  const double expected = 10.0 * 1e-12 / 100e-9 * std::exp(-9e-9 / 200e-9);
  EXPECT_NEAR(v0 - buf.vref(), expected, 1e-8);
}

TEST(ReferenceBuffer, RecoversBetweenSamples) {
  adc::common::Rng rng(2);
  aa::ReferenceBuffer buf(clean_spec(), rng);
  const double v0 = buf.vref();
  buf.consume(10.0, 9e-9);
  const double drooped = buf.vref();
  // A long idle period (many time constants) recovers the decap.
  buf.consume(0.0, 1.0);
  EXPECT_GT(buf.vref(), drooped);
  EXPECT_NEAR(buf.vref(), v0, 1e-12);
}

TEST(ReferenceBuffer, SteadyStateDroopBounded) {
  adc::common::Rng rng(3);
  aa::ReferenceBuffer buf(clean_spec(), rng);
  for (int i = 0; i < 100000; ++i) buf.consume(5.0, 9e-9);
  // Equilibrium: droop_ss = dv / (1 - exp(-T/tau)) ~ dv * tau/T.
  const double dv = 5.0 * 1e-12 / 100e-9;
  const double tau = 2.0 * 100e-9;
  EXPECT_NEAR(1.0 - buf.vref(), dv * tau / 9e-9, 0.2 * dv * tau / 9e-9);
}

TEST(ReferenceBuffer, ResetClearsDroop) {
  adc::common::Rng rng(4);
  aa::ReferenceBuffer buf(clean_spec(), rng);
  buf.consume(10.0, 9e-9);
  buf.reset();
  EXPECT_DOUBLE_EQ(buf.vref(), 1.0);
}

TEST(ReferenceBuffer, StaticLevelError) {
  auto spec = clean_spec();
  spec.sigma_level = 5e-3;
  spec.charge_per_event = 0.0;
  adc::common::Rng rng(5);
  const aa::ReferenceBuffer buf(spec, rng);
  EXPECT_NE(buf.vref(), 1.0);
  EXPECT_NEAR(buf.vref(), 1.0, 25e-3);  // within 5 sigma
}

TEST(ReferenceBuffer, InvalidSpecThrows) {
  auto spec = clean_spec();
  spec.decap_farad = 0.0;
  adc::common::Rng rng(6);
  EXPECT_THROW(aa::ReferenceBuffer(spec, rng), adc::common::ConfigError);
}
