/// Unit tests for the SC bias current generator — the paper's eq. (1):
/// I_BIAS = C_B * f_CR * V_BIAS.
#include "bias/sc_bias.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/random.hpp"

namespace ab = adc::bias;

namespace {

ab::ScBiasSpec clean_spec() {
  ab::ScBiasSpec s;
  s.cb = {12e-12, 0.0, 0.0};
  s.v_bias = 0.6;
  s.ota_gain = 1e9;  // no loop error for the equation checks
  s.ripple_sigma = 0.0;
  return s;
}

}  // namespace

TEST(ScBias, EquationOne) {
  adc::common::Rng rng(1);
  const ab::ScBiasGenerator gen(clean_spec(), rng);
  EXPECT_NEAR(gen.master_current(110e6), 12e-12 * 110e6 * 0.6, 1e-12);
  EXPECT_NEAR(gen.master_current(20e6), 12e-12 * 20e6 * 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(gen.master_current(0.0), 0.0);
}

TEST(ScBias, LinearInConversionRate) {
  adc::common::Rng rng(2);
  const ab::ScBiasGenerator gen(clean_spec(), rng);
  std::vector<double> f;
  std::vector<double> i;
  for (double rate = 10e6; rate <= 200e6; rate += 10e6) {
    f.push_back(rate);
    i.push_back(gen.master_current(rate));
  }
  const auto fit = adc::common::linear_fit(f, i);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 0.0, 1e-15);
  EXPECT_NEAR(fit.slope, 12e-12 * 0.6, 1e-20);
}

TEST(ScBias, TracksAbsoluteCapacitance) {
  // The feature a fixed generator lacks: the current follows the realized
  // C_B across process corners, so the bias always matches the load the
  // stages actually present.
  for (double corner : {-0.2, 0.0, 0.2}) {
    auto spec = clean_spec();
    spec.cb.global_spread = corner;
    adc::common::Rng rng(3);
    const ab::ScBiasGenerator gen(spec, rng);
    EXPECT_NEAR(gen.realized_cb(), 12e-12 * (1.0 + corner), 1e-18);
    EXPECT_NEAR(gen.master_current(110e6), gen.realized_cb() * 110e6 * 0.6, 1e-12);
  }
}

TEST(ScBias, FiniteOtaGainLeavesSmallDeficit) {
  auto spec = clean_spec();
  spec.ota_gain = 1000.0;
  adc::common::Rng rng(4);
  const ab::ScBiasGenerator gen(spec, rng);
  const double ideal = 12e-12 * 110e6 * 0.6;
  const double actual = gen.master_current(110e6);
  EXPECT_LT(actual, ideal);
  EXPECT_NEAR(actual / ideal, 1000.0 / 1001.0, 1e-9);
}

TEST(ScBias, RippleStatistics) {
  auto spec = clean_spec();
  spec.ripple_sigma = 0.01;
  adc::common::Rng rng(5);
  const ab::ScBiasGenerator gen(spec, rng);
  adc::common::Rng noise(6);
  const double mean_i = gen.master_current(110e6);
  std::vector<double> draws;
  for (int k = 0; k < 20000; ++k) draws.push_back(gen.sampled_current(110e6, noise));
  EXPECT_NEAR(adc::common::mean(draws), mean_i, 0.002 * mean_i);
  EXPECT_NEAR(adc::common::std_dev(draws), 0.01 * mean_i, 0.001 * mean_i);
}

TEST(ScBias, CapacitorMismatchIsReproducible) {
  auto spec = clean_spec();
  spec.cb.sigma_mismatch = 0.01;
  adc::common::Rng a(7);
  adc::common::Rng b(7);
  EXPECT_DOUBLE_EQ(ab::ScBiasGenerator(spec, a).realized_cb(),
                   ab::ScBiasGenerator(spec, b).realized_cb());
}

TEST(ScBias, InvalidSpecThrows) {
  auto spec = clean_spec();
  spec.v_bias = -0.1;
  adc::common::Rng rng(8);
  EXPECT_THROW(ab::ScBiasGenerator(spec, rng), adc::common::ConfigError);
}

class RateCornerSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RateCornerSweep, EquationHoldsEverywhere) {
  const auto [rate, corner] = GetParam();
  auto spec = clean_spec();
  spec.cb.global_spread = corner;
  adc::common::Rng rng(9);
  const ab::ScBiasGenerator gen(spec, rng);
  EXPECT_NEAR(gen.master_current(rate), 12e-12 * (1.0 + corner) * rate * 0.6,
              1e-9 * gen.master_current(rate) + 1e-18);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RateCornerSweep,
    ::testing::Combine(::testing::Values(1e6, 20e6, 110e6, 140e6, 220e6),
                       ::testing::Values(-0.2, -0.1, 0.0, 0.1, 0.2)));
