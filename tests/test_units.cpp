/// Tests for the unit literals and physical constants.
#include "common/units.hpp"

#include <gtest/gtest.h>

#include "common/constants.hpp"

using namespace adc::common::literals;

TEST(Units, TimeLiterals) {
  EXPECT_DOUBLE_EQ(1.0_s, 1.0);
  EXPECT_DOUBLE_EQ(1.0_ms, 1e-3);
  EXPECT_DOUBLE_EQ(4.5_ns, 4.5e-9);
  EXPECT_DOUBLE_EQ(0.45_ps, 0.45e-12);
  EXPECT_DOUBLE_EQ(120.0_fs, 1.2e-13);
}

TEST(Units, FrequencyLiterals) {
  EXPECT_DOUBLE_EQ(110.0_MHz, 110e6);
  EXPECT_DOUBLE_EQ(110.0_MSps, 110e6);
  EXPECT_DOUBLE_EQ(1.5_GHz, 1.5e9);
  EXPECT_DOUBLE_EQ(10.0_kHz, 1e4);
}

TEST(Units, ElectricalLiterals) {
  EXPECT_DOUBLE_EQ(1.8_V, 1.8);
  EXPECT_DOUBLE_EQ(250.0_mV, 0.25);
  EXPECT_DOUBLE_EQ(64.3_uV, 64.3e-6);
  EXPECT_DOUBLE_EQ(7.9_mA, 7.9e-3);
  EXPECT_DOUBLE_EQ(0.8_nA, 0.8e-9);
  EXPECT_DOUBLE_EQ(550.0_fF, 550e-15);
  EXPECT_DOUBLE_EQ(12.0_pF, 12e-12);
  EXPECT_DOUBLE_EQ(2.0_kOhm, 2000.0);
  EXPECT_DOUBLE_EQ(97.0_mW, 0.097);
}

TEST(Units, AreaLiterals) {
  EXPECT_DOUBLE_EQ(0.86_mm2, 0.86e-6);
  EXPECT_DOUBLE_EQ(100.0_um2, 1e-10);
}

TEST(Units, ReadsLikeADatasheet) {
  // The intended configuration idiom compiles and evaluates consistently.
  const double sampling_cap = 2.0 * 275.0_fF;
  const double rate = 110.0_MSps;
  EXPECT_DOUBLE_EQ(sampling_cap, 550e-15);
  EXPECT_DOUBLE_EQ(12.0_pF * rate * 0.6_V, 12e-12 * 110e6 * 0.6);  // eq. (1)
}

TEST(Constants, PhysicalValues) {
  namespace c = adc::common;
  EXPECT_NEAR(c::k_boltzmann, 1.380649e-23, 1e-28);
  EXPECT_NEAR(c::kt_nominal, 4.14e-21, 0.01e-21);
  EXPECT_NEAR(c::vt_thermal, 25.85e-3, 0.1e-3);
  EXPECT_DOUBLE_EQ(c::vdd_nominal, 1.8);
  EXPECT_GT(c::process_018um::kp_nmos, c::process_018um::kp_pmos);
}
