/// Unit tests for the two-stage Miller opamp macromodel.
#include "analog/opamp.hpp"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace aa = adc::analog;

namespace {

aa::OpampParams nominal() {
  aa::OpampParams p;
  p.dc_gain = 10000.0;
  p.gbw_hz = 800e6;
  p.slew_rate = 1.5e9;
  p.bias_nominal = 8e-3;
  p.output_swing = 1.45;
  p.gm_compression = 0.0;  // enable per test
  return p;
}

}  // namespace

TEST(Opamp, StaticErrorMatchesFiniteGain) {
  const aa::Opamp amp(nominal());
  const double beta = 0.45;
  // Settle "forever": only the static term remains.
  const auto r = amp.settle(1.0, 1.0, beta, 8e-3);
  const double expected = 1.0 / (1.0 + 1.0 / (10000.0 * beta));
  EXPECT_NEAR(r.output, expected, 1e-12);
  EXPECT_NEAR(r.static_error, 1.0 - expected, 1e-12);
  EXPECT_NEAR(r.dynamic_error, 0.0, 1e-12);
}

TEST(Opamp, LinearSettlingIsExponential) {
  auto p = nominal();
  p.slew_rate = 1e12;  // never slews
  const aa::Opamp amp(p);
  const double beta = 0.45;
  const double tau = amp.time_constant(beta, p.bias_nominal);
  const double target = 0.5;
  for (double nt : {2.0, 5.0, 9.0}) {
    const auto r = amp.settle(target, nt * tau, beta, p.bias_nominal);
    const double expect_err = target * std::exp(-nt) /
                              (1.0 + 1.0 / (p.dc_gain * beta));
    EXPECT_NEAR(std::abs(r.dynamic_error), expect_err, 0.02 * expect_err) << nt;
    EXPECT_FALSE(r.slew_limited);
  }
}

TEST(Opamp, TimeConstantFormula) {
  const aa::Opamp amp(nominal());
  const double tau = amp.time_constant(0.5, 8e-3);
  EXPECT_NEAR(tau, 1.0 / (2.0 * std::numbers::pi * 0.5 * 800e6), 1e-15);
}

TEST(Opamp, GbwScalesAsSqrtBias) {
  const aa::Opamp amp(nominal());
  EXPECT_NEAR(amp.gbw_at_bias(8e-3), 800e6, 1.0);
  EXPECT_NEAR(amp.gbw_at_bias(2e-3), 400e6, 1.0);  // I/4 -> GBW/2
  EXPECT_DOUBLE_EQ(amp.gbw_at_bias(0.0), 0.0);
}

TEST(Opamp, SlewScalesLinearlyWithBias) {
  const aa::Opamp amp(nominal());
  EXPECT_NEAR(amp.slew_at_bias(4e-3), 0.75e9, 1.0);
  EXPECT_DOUBLE_EQ(amp.slew_at_bias(0.0), 0.0);
}

TEST(Opamp, SlewLimitedRegimeDetected) {
  auto p = nominal();
  p.slew_rate = 2e8;  // slow: SR*tau << 1 V steps
  const aa::Opamp amp(p);
  const double beta = 0.45;
  const double tau = amp.time_constant(beta, p.bias_nominal);
  const auto r = amp.settle(1.0, 5.0 * tau, beta, p.bias_nominal);
  EXPECT_TRUE(r.slew_limited);
  // Mid-slew sampling: the output is SR * t.
  const auto mid = amp.settle(1.0, 1e-9, beta, p.bias_nominal);
  EXPECT_TRUE(mid.slew_limited);
  EXPECT_NEAR(mid.output, 2e8 * 1e-9, 1e-3);
}

TEST(Opamp, SlewedSettlingWorseThanLinear) {
  auto fast = nominal();
  fast.slew_rate = 1e12;
  auto slow = nominal();
  slow.slew_rate = 3e8;
  const double beta = 0.45;
  const double ts = 4e-9;
  const auto r_fast = aa::Opamp(fast).settle(1.0, ts, beta, 8e-3);
  const auto r_slow = aa::Opamp(slow).settle(1.0, ts, beta, 8e-3);
  EXPECT_GT(std::abs(r_slow.dynamic_error), std::abs(r_fast.dynamic_error));
}

TEST(Opamp, OutputClips) {
  const aa::Opamp amp(nominal());
  const auto r = amp.settle(2.5, 1.0, 0.45, 8e-3);
  EXPECT_TRUE(r.clipped);
  EXPECT_DOUBLE_EQ(r.output, 1.45);
  const auto rn = amp.settle(-2.5, 1.0, 0.45, 8e-3);
  EXPECT_DOUBLE_EQ(rn.output, -1.45);
}

TEST(Opamp, GmCompressionIsSignalDependent) {
  auto p = nominal();
  p.gm_compression = 0.3;
  const aa::Opamp amp(p);
  const double beta = 0.45;
  const double ts = 4e-9;
  // Relative settling error grows with amplitude when compression is on.
  const auto small = amp.settle(0.1, ts, beta, p.bias_nominal);
  const auto large = amp.settle(1.0, ts, beta, p.bias_nominal);
  const double rel_small = std::abs(small.dynamic_error) / 0.1;
  const double rel_large = std::abs(large.dynamic_error) / 1.0;
  EXPECT_GT(rel_large, 1.5 * rel_small);
}

TEST(Opamp, NegativeTargetsSymmetric) {
  const aa::Opamp amp(nominal());
  const auto pos = amp.settle(0.8, 3e-9, 0.45, 8e-3);
  const auto neg = amp.settle(-0.8, 3e-9, 0.45, 8e-3);
  EXPECT_NEAR(pos.output, -neg.output, 1e-12);
}

TEST(Opamp, LowerBiasSettlesWorse) {
  const aa::Opamp amp(nominal());
  // The Fig. 5 mechanism: at reduced bias (lower rate, or fixed-bias corner)
  // the same settling window leaves more error.
  const auto full = amp.settle(1.0, 3e-9, 0.45, 8e-3);
  const auto half = amp.settle(1.0, 3e-9, 0.45, 2e-3);
  EXPECT_GT(std::abs(half.dynamic_error), std::abs(full.dynamic_error));
}

TEST(Opamp, InvalidParamsThrow) {
  auto p = nominal();
  p.dc_gain = 0.5;
  EXPECT_THROW(aa::Opamp{p}, adc::common::ConfigError);
  p = nominal();
  p.gbw_hz = -1.0;
  EXPECT_THROW(aa::Opamp{p}, adc::common::ConfigError);
  const aa::Opamp ok(nominal());
  EXPECT_THROW((void)ok.settle(1.0, 1e-9, 0.0, 8e-3), adc::common::ConfigError);
  EXPECT_THROW((void)ok.settle(1.0, 1e-9, 1.5, 8e-3), adc::common::ConfigError);
}

class SettlingTimeSweep : public ::testing::TestWithParam<double> {};

TEST_P(SettlingTimeSweep, ErrorMonotoneDecreasingInTime) {
  const aa::Opamp amp(nominal());
  const double ts = GetParam();
  const auto r1 = amp.settle(1.0, ts, 0.45, 8e-3);
  const auto r2 = amp.settle(1.0, 1.5 * ts, 0.45, 8e-3);
  EXPECT_LE(std::abs(r2.dynamic_error), std::abs(r1.dynamic_error) + 1e-15);
}

INSTANTIATE_TEST_SUITE_P(Times, SettlingTimeSweep,
                         ::testing::Values(0.5e-9, 1e-9, 2e-9, 4e-9, 8e-9));
