/// Unit tests for the bias-mirror distribution bank.
#include "bias/distribution.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"

namespace ab = adc::bias;

TEST(MirrorBank, ExactRatiosWithoutMismatch) {
  ab::MirrorBankSpec spec;
  spec.ratios = {10.0, 20.0 / 3.0, 10.0 / 3.0};
  spec.sigma_mismatch = 0.0;
  adc::common::Rng rng(1);
  const ab::MirrorBank bank(spec, rng);
  ASSERT_EQ(bank.size(), 3u);
  EXPECT_DOUBLE_EQ(bank.leg_current(0, 1e-3), 10e-3);
  EXPECT_NEAR(bank.leg_current(1, 1e-3), 6.667e-3, 1e-6);
  EXPECT_NEAR(bank.total_current(1e-3), 20e-3, 1e-6);
}

TEST(MirrorBank, CurrentsVectorMatchesLegs) {
  ab::MirrorBankSpec spec;
  spec.ratios = {1.0, 0.5, 0.25};
  spec.sigma_mismatch = 0.02;
  adc::common::Rng rng(2);
  const ab::MirrorBank bank(spec, rng);
  const auto v = bank.currents(2e-3);
  ASSERT_EQ(v.size(), 3u);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_DOUBLE_EQ(v[i], bank.leg_current(i, 2e-3));
  }
}

TEST(MirrorBank, MismatchSmallAndReproducible) {
  ab::MirrorBankSpec spec;
  spec.ratios = {1.0};
  spec.sigma_mismatch = 0.01;
  adc::common::Rng a(3);
  adc::common::Rng b(3);
  const ab::MirrorBank bank_a(spec, a);
  const ab::MirrorBank bank_b(spec, b);
  EXPECT_DOUBLE_EQ(bank_a.realized_gain(0), bank_b.realized_gain(0));
  EXPECT_NEAR(bank_a.realized_gain(0), 1.0, 0.06);  // within 6 sigma
}

TEST(MirrorBank, InvalidSpecsThrow) {
  adc::common::Rng rng(4);
  ab::MirrorBankSpec empty;
  EXPECT_THROW(ab::MirrorBank(empty, rng), adc::common::ConfigError);
  ab::MirrorBankSpec bad;
  bad.ratios = {1.0, -1.0};
  EXPECT_THROW(ab::MirrorBank(bad, rng), adc::common::ConfigError);
}
