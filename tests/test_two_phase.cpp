/// Unit tests for the two-phase clocking schemes — the paper's non-overlap
/// removal is about reclaiming settling time, verified here directly.
#include "clocking/two_phase.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ck = adc::clocking;

namespace {

ck::PhaseTimingSpec spec_for(ck::ClockingScheme scheme) {
  ck::PhaseTimingSpec s;
  s.scheme = scheme;
  s.non_overlap_s = 700e-12;
  s.local_sequence_delay_s = 120e-12;
  s.phase_overhead_s = 150e-12;
  return s;
}

}  // namespace

TEST(PhaseGenerator, WindowsAtNominalRate) {
  const ck::PhaseGenerator gen(spec_for(ck::ClockingScheme::kLocalSequential));
  const auto w = gen.windows(110e6);
  EXPECT_NEAR(w.period_s, 9.09e-9, 0.01e-9);
  // settle = T/2 - (local delay + overhead).
  EXPECT_NEAR(w.settle_s, w.period_s / 2.0 - 270e-12, 1e-15);
  EXPECT_DOUBLE_EQ(w.track_s, w.settle_s);
  EXPECT_DOUBLE_EQ(w.hold_s, w.period_s / 2.0);
}

TEST(PhaseGenerator, NonOverlapRemovalBuysSettlingTime) {
  // The paper's claim, quantified: at 110 MS/s the local scheme gains the
  // 580 ps difference of the two guard intervals.
  const ck::PhaseGenerator conv(spec_for(ck::ClockingScheme::kConventionalNonOverlap));
  const ck::PhaseGenerator local(spec_for(ck::ClockingScheme::kLocalSequential));
  const double gain = local.windows(110e6).settle_s - conv.windows(110e6).settle_s;
  EXPECT_NEAR(gain, 580e-12, 1e-15);
  // Relative gain grows with conversion rate (fixed overhead, shrinking T).
  const double rel_110 = gain / conv.windows(110e6).settle_s;
  const double rel_140 = (local.windows(140e6).settle_s - conv.windows(140e6).settle_s) /
                         conv.windows(140e6).settle_s;
  EXPECT_GT(rel_140, rel_110);
}

TEST(PhaseGenerator, DeadTimePerScheme) {
  EXPECT_DOUBLE_EQ(
      ck::PhaseGenerator(spec_for(ck::ClockingScheme::kConventionalNonOverlap)).dead_time(),
      700e-12);
  EXPECT_DOUBLE_EQ(
      ck::PhaseGenerator(spec_for(ck::ClockingScheme::kLocalSequential)).dead_time(),
      120e-12);
}

TEST(PhaseGenerator, TooFastThrows) {
  const ck::PhaseGenerator conv(spec_for(ck::ClockingScheme::kConventionalNonOverlap));
  // At 600 MS/s the half period (833 ps) is consumed by 850 ps of overheads.
  EXPECT_THROW((void)conv.windows(600e6), adc::common::ConfigError);
  // The local scheme still has (a little) room there.
  const ck::PhaseGenerator local(spec_for(ck::ClockingScheme::kLocalSequential));
  EXPECT_GT(local.windows(600e6).settle_s, 0.0);
}

TEST(PhaseGenerator, InvalidSpecThrows) {
  auto s = spec_for(ck::ClockingScheme::kLocalSequential);
  s.non_overlap_s = -1.0;
  EXPECT_THROW(ck::PhaseGenerator{s}, adc::common::ConfigError);
}

class RateSweep : public ::testing::TestWithParam<double> {};

TEST_P(RateSweep, WindowsScaleWithPeriod) {
  const ck::PhaseGenerator gen(spec_for(ck::ClockingScheme::kLocalSequential));
  const double f = GetParam();
  const auto w = gen.windows(f);
  EXPECT_NEAR(w.period_s, 1.0 / f, 1e-18);
  EXPECT_GT(w.settle_s, 0.0);
  EXPECT_LT(w.settle_s, w.period_s / 2.0);
  EXPECT_DOUBLE_EQ(w.hold_s, w.period_s / 2.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, RateSweep,
                         ::testing::Values(2e6, 20e6, 110e6, 140e6, 200e6));
