/// Unit tests for the dynamic-latch comparator model.
#include "analog/comparator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"

namespace aa = adc::analog;

namespace {

aa::ComparatorSpec clean_spec(double threshold) {
  aa::ComparatorSpec s;
  s.threshold = threshold;
  s.sigma_offset = 0.0;
  s.noise_rms = 0.0;
  s.metastable_window = 0.0;
  return s;
}

}  // namespace

TEST(Comparator, CleanDecisionsAreDeterministic) {
  adc::common::Rng rng(1);
  aa::Comparator cmp(clean_spec(0.25), rng);
  EXPECT_TRUE(cmp.decide(0.3));
  EXPECT_FALSE(cmp.decide(0.2));
  EXPECT_FALSE(cmp.decide(0.25));  // exactly at threshold: not above
}

TEST(Comparator, OffsetShiftsThreshold) {
  adc::common::Rng rng(2);
  aa::Comparator cmp(clean_spec(0.0), rng);
  cmp.set_offset(0.05);
  EXPECT_DOUBLE_EQ(cmp.effective_threshold(), 0.05);
  EXPECT_FALSE(cmp.decide(0.04));
  EXPECT_TRUE(cmp.decide(0.06));
}

TEST(Comparator, DrawnOffsetStatistics) {
  aa::ComparatorSpec s = clean_spec(0.0);
  s.sigma_offset = 10e-3;
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 20000;
  adc::common::Rng parent(3);
  for (int i = 0; i < n; ++i) {
    auto rng = parent.child("cmp", static_cast<std::uint64_t>(i));
    const aa::Comparator cmp(s, rng);
    sum += cmp.offset();
    sum2 += cmp.offset() * cmp.offset();
  }
  const double mean = sum / n;
  const double sigma = std::sqrt(sum2 / n - mean * mean);
  EXPECT_NEAR(mean, 0.0, 0.5e-3);
  EXPECT_NEAR(sigma, 10e-3, 0.5e-3);
}

TEST(Comparator, NoiseFlipsNearThresholdOnly) {
  aa::ComparatorSpec s = clean_spec(0.0);
  s.noise_rms = 1e-3;
  adc::common::Rng rng(4);
  aa::Comparator cmp(s, rng);
  // Far from threshold: always correct.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(cmp.decide(10e-3));
    EXPECT_FALSE(cmp.decide(-10e-3));
  }
  // At the threshold: roughly a coin flip.
  int ones = 0;
  for (int i = 0; i < 4000; ++i) {
    if (cmp.decide(0.0)) ++ones;
  }
  EXPECT_GT(ones, 1600);
  EXPECT_LT(ones, 2400);
}

TEST(Comparator, MetastableWindowRandomizes) {
  aa::ComparatorSpec s = clean_spec(0.0);
  s.metastable_window = 1e-3;
  adc::common::Rng rng(5);
  aa::Comparator cmp(s, rng);
  int ones = 0;
  for (int i = 0; i < 2000; ++i) {
    if (cmp.decide(0.5e-3)) ++ones;  // inside the window despite being > 0
  }
  EXPECT_GT(ones, 700);
  EXPECT_LT(ones, 1300);
  // Outside the window: deterministic again.
  EXPECT_TRUE(cmp.decide(2e-3));
}

TEST(Comparator, DecideWithThresholdTracksReference) {
  adc::common::Rng rng(6);
  aa::Comparator cmp(clean_spec(0.25), rng);
  // The stage passes vref/4 explicitly; a 1% low reference moves the code
  // boundary accordingly.
  EXPECT_TRUE(cmp.decide_with_threshold(0.249, 0.2475));
  EXPECT_FALSE(cmp.decide_with_threshold(0.246, 0.2475));
}

TEST(Comparator, InvalidSpecThrows) {
  adc::common::Rng rng(7);
  aa::ComparatorSpec s = clean_spec(0.0);
  s.noise_rms = -1.0;
  EXPECT_THROW(aa::Comparator(s, rng), adc::common::ConfigError);
}
