/// Tests for the two-tone intermodulation bench.
#include "testbench/two_tone.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "pipeline/design.hpp"

namespace ap = adc::pipeline;
namespace tb = adc::testbench;

TEST(TwoTone, IdealConverterHasNoImd) {
  ap::PipelineAdc adc(ap::ideal_design());
  tb::TwoToneOptions opt;
  opt.record_length = 1 << 12;
  const auto r = tb::run_two_tone_test(adc, opt);
  // Quantization floor only: products far below -90 dBc.
  EXPECT_LT(r.worst_imd_dbc, -85.0);
  EXPECT_NEAR(r.tone_power_db, -6.2, 0.5);
  EXPECT_LT(r.f1_hz, r.f2_hz);
}

TEST(TwoTone, NominalConverterShowsThirdOrderProducts) {
  ap::PipelineAdc adc(ap::nominal_design());
  tb::TwoToneOptions opt;
  opt.record_length = 1 << 13;
  const auto r = tb::run_two_tone_test(adc, opt);
  // IMD3 visible but serviceable for a comms IF (around the paper's
  // distortion level, minus back-off benefit); IMD2 suppressed by the
  // differential topology.
  EXPECT_LT(r.worst_imd_dbc, -55.0);
  EXPECT_GT(r.worst_imd_dbc, -90.0);
  EXPECT_LT(r.imd2_dbc, r.worst_imd_dbc + 1e-9);
}

TEST(TwoTone, Imd3GrowsWithToneLevelForSmoothNonlinearity) {
  // Third-order products of a smooth (cubic) nonlinearity grow 2 dB per dB
  // of tone level *relative to the tones*. Isolate the front-end cubic
  // (charge injection) — on the full nominal die the mismatch spur forest
  // masks the law.
  ap::AdcConfig cfg = ap::nominal_design();
  cfg.enable = ap::NonIdealities::all_off();
  cfg.enable.tracking_nonlinearity = true;
  ap::PipelineAdc adc(cfg);
  tb::TwoToneOptions lo;
  lo.record_length = 1 << 13;
  lo.amplitude_fraction = 0.25;
  tb::TwoToneOptions hi = lo;
  hi.amplitude_fraction = 0.5;
  const auto rl = tb::run_two_tone_test(adc, lo);
  const auto rh = tb::run_two_tone_test(adc, hi);
  // +6 dB per tone -> IMD3 relative to tone up by ~12 dB (allow slack for
  // the non-polynomial shape of the injection curve).
  EXPECT_GT(rh.imd3_low_dbc, rl.imd3_low_dbc + 6.0);
}

TEST(TwoTone, RejectsBadOptions) {
  ap::PipelineAdc adc(ap::ideal_design());
  tb::TwoToneOptions opt;
  opt.amplitude_fraction = 0.8;  // two tones would clip
  EXPECT_THROW((void)tb::run_two_tone_test(adc, opt), adc::common::ConfigError);
  opt.amplitude_fraction = 0.4;
  opt.spacing_hz = -1.0;
  EXPECT_THROW((void)tb::run_two_tone_test(adc, opt), adc::common::ConfigError);
}
