/// Bit-true cross-check of the structural (gate-level) correction against
/// the arithmetic model, plus the hardware inventory.
#include "digital/structural.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"
#include "digital/correction.hpp"

namespace ad = adc::digital;

namespace {

ad::RawConversion random_raw(int stages, int flash_bits, adc::common::Rng& rng) {
  ad::RawConversion raw;
  raw.stage_codes.reserve(static_cast<std::size_t>(stages));
  for (int i = 0; i < stages; ++i) {
    raw.stage_codes.push_back(static_cast<ad::StageCode>(static_cast<int>(rng.index(3)) - 1));
  }
  raw.flash_code = static_cast<ad::FlashCode>(rng.index(1u << flash_bits));
  return raw;
}

}  // namespace

TEST(Structural, MatchesArithmeticModelExhaustivelyOnSmallChain) {
  // 4 stages + 2-bit flash: 3^4 * 4 = 324 inputs, checked exhaustively.
  const ad::ErrorCorrection arithmetic(4, 2);
  const ad::StructuralCorrection gates(4, 2);
  for (int pattern = 0; pattern < 81; ++pattern) {
    ad::RawConversion raw;
    int p = pattern;
    for (int i = 0; i < 4; ++i) {
      raw.stage_codes.push_back(static_cast<ad::StageCode>(p % 3 - 1));
      p /= 3;
    }
    for (unsigned f = 0; f < 4; ++f) {
      raw.flash_code = static_cast<ad::FlashCode>(f);
      EXPECT_EQ(gates.correct(raw), arithmetic.correct(raw))
          << "pattern " << pattern << " flash " << f;
    }
  }
}

TEST(Structural, MatchesArithmeticModelRandomlyOnPaperChain) {
  const ad::ErrorCorrection arithmetic(10, 2);
  const ad::StructuralCorrection gates(10, 2);
  adc::common::Rng rng(123);
  for (int trial = 0; trial < 20000; ++trial) {
    const auto raw = random_raw(10, 2, rng);
    ASSERT_EQ(gates.correct(raw), arithmetic.correct(raw)) << trial;
  }
}

TEST(Structural, EndpointsAndSaturation) {
  const ad::StructuralCorrection gates(10, 2);
  ad::RawConversion raw;
  raw.stage_codes.assign(10, ad::StageCode::kMinus);
  raw.flash_code = 0;
  EXPECT_EQ(gates.correct(raw), 0);
  raw.stage_codes.assign(10, ad::StageCode::kPlus);
  raw.flash_code = 3;
  EXPECT_EQ(gates.correct(raw), 4095);
}

TEST(Structural, GateInventory) {
  const ad::StructuralCorrection gates(10, 2);
  const auto g = gates.gates();
  // 11 ripple passes of 13 bits each.
  EXPECT_EQ(g.full_adders, 11 * 13);
  // Alignment fabric (110 bits) + 12-bit output register.
  EXPECT_EQ(g.flip_flops, 110 + 12);
  EXPECT_EQ(g.gates_equivalent, 6 * g.full_adders + 8 * g.flip_flops);
}

TEST(Structural, ActivityIsCounted) {
  const ad::StructuralCorrection gates(10, 2);
  ad::RawConversion raw;
  raw.stage_codes.assign(10, ad::StageCode::kZero);
  raw.flash_code = 2;
  (void)gates.correct(raw);
  EXPECT_EQ(gates.last_adder_activity(), 11 * 13);
}

TEST(Structural, SwitchedCapacitanceGroundsThePowerLump) {
  // The structural correction fabric accounts for ~1-2 pF of the power
  // model's 39 pF digital lump; the rest is clock tree and output drivers.
  // This pins the decomposition so the lump can never silently absorb the
  // logic twice.
  const ad::StructuralCorrection gates(10, 2);
  const double c = gates.switched_capacitance();
  EXPECT_GT(c, 0.5e-12);
  EXPECT_LT(c, 5e-12);
}

TEST(Structural, RejectsBadInput) {
  EXPECT_THROW(ad::StructuralCorrection(0, 2), adc::common::ConfigError);
  const ad::StructuralCorrection gates(10, 2);
  ad::RawConversion wrong;
  wrong.stage_codes.assign(9, ad::StageCode::kZero);
  EXPECT_THROW((void)gates.correct(wrong), adc::common::ConfigError);
}

class StructuralGeometrySweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StructuralGeometrySweep, AgreesAcrossGeometries) {
  const auto [stages, flash_bits] = GetParam();
  const ad::ErrorCorrection arithmetic(stages, flash_bits);
  const ad::StructuralCorrection gates(stages, flash_bits);
  adc::common::Rng rng(7);
  for (int trial = 0; trial < 3000; ++trial) {
    const auto raw = random_raw(stages, flash_bits, rng);
    ASSERT_EQ(gates.correct(raw), arithmetic.correct(raw));
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, StructuralGeometrySweep,
                         ::testing::Values(std::make_tuple(6, 2), std::make_tuple(8, 3),
                                           std::make_tuple(12, 2),
                                           std::make_tuple(10, 4)));
