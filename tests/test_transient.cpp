/// Cross-validation of the closed-form settling model against a numerical
/// (RK4) transient solution of the same amplifier.
#include "analog/transient.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "pipeline/design.hpp"

namespace aa = adc::analog;

namespace {

aa::OpampParams nominal() {
  auto cfg = adc::pipeline::nominal_design();
  auto p = cfg.stage.opamp;
  p.gm_compression = 0.0;  // the closed form's compression is heuristic
  return p;
}

constexpr double kBeta = 0.423;

}  // namespace

TEST(Rk4, SolvesExponentialDecayExactly) {
  // dy/dt = -y: y(1) = e^-1.
  const auto f = [](double, double y) { return -y; };
  EXPECT_NEAR(aa::integrate_rk4(f, 1.0, 0.0, 0.01, 100), std::exp(-1.0), 1e-9);
}

TEST(Rk4, SolvesDrivenLinearSystem) {
  // dy/dt = (1 - y)/tau: y(t) = 1 - e^(-t/tau).
  const double tau = 0.5;
  const auto f = [tau](double, double y) { return (1.0 - y) / tau; };
  EXPECT_NEAR(aa::integrate_rk4(f, 0.0, 0.0, 0.001, 1000), 1.0 - std::exp(-2.0), 1e-9);
}

TEST(Rk4, TrajectoryEndsAtIntegrate) {
  const auto f = [](double, double y) { return -2.0 * y; };
  const auto traj = aa::integrate_rk4_trajectory(f, 3.0, 0.0, 0.01, 50);
  ASSERT_EQ(traj.size(), 51u);
  EXPECT_DOUBLE_EQ(traj.front(), 3.0);
  EXPECT_NEAR(traj.back(), aa::integrate_rk4(f, 3.0, 0.0, 0.01, 50), 1e-12);
}

TEST(Rk4, RejectsBadArguments) {
  const auto f = [](double, double y) { return -y; };
  EXPECT_THROW((void)aa::integrate_rk4(f, 1.0, 0.0, -0.1, 10), adc::common::ConfigError);
  EXPECT_THROW((void)aa::integrate_rk4(f, 1.0, 0.0, 0.1, 0), adc::common::ConfigError);
}

TEST(MdacTransient, MatchesClosedFormInLinearRegion) {
  // Small steps never slew: both models are pure exponentials.
  const auto params = nominal();
  const aa::Opamp closed(params);
  const aa::MdacTransient numeric(params, kBeta, params.bias_nominal);
  const double half_lsb = 0.5 * 2.0 / 4096.0;
  for (double target : {0.05, 0.1, -0.2}) {
    for (double nt : {3.0, 6.0, 9.0}) {
      const double ts = nt * numeric.tau();
      const double a = closed.settle(target, ts, kBeta, params.bias_nominal).output;
      const double b = numeric.settle(target, ts);
      // tanh is never exactly linear (the ODE settles a touch slower early
      // on); agreement within half an LSB is the model-consistency bound.
      EXPECT_NEAR(a, b, half_lsb) << target << " " << nt;
    }
  }
}

TEST(MdacTransient, MatchesClosedFormThroughSlewRegion) {
  // Large steps slew first; the closed form's two-region split must track
  // the smooth tanh dynamics within fractions of an LSB at realistic
  // settling times.
  auto params = nominal();
  params.slew_rate = 6e8;  // force deep slewing on 1 V steps
  const aa::Opamp closed(params);
  const aa::MdacTransient numeric(params, kBeta, params.bias_nominal);
  const double lsb = 2.0 / 4096.0;
  for (double target : {0.8, 1.0, -1.0}) {
    // tanh rounds the slew-to-linear corner, the piecewise form does not:
    // right after the corner (nt ~ 6) they differ by a few LSB; by the
    // design point (nt >= 9, the converter's operating region) they agree
    // within an LSB.
    for (double nt : {9.0, 12.0}) {
      const double ts = nt * numeric.tau();
      const double a = closed.settle(target, ts, kBeta, params.bias_nominal).output;
      const double b = numeric.settle(target, ts);
      EXPECT_NEAR(a, b, lsb) << target << " " << nt;
    }
    const double near_corner = 6.0 * numeric.tau();
    EXPECT_NEAR(closed.settle(target, near_corner, kBeta, params.bias_nominal).output,
                numeric.settle(target, near_corner), 10.0 * lsb)
        << target;
  }
}

TEST(MdacTransient, FinalValueIncludesFiniteGain) {
  const auto params = nominal();
  const aa::MdacTransient numeric(params, kBeta, params.bias_nominal);
  const double expected = 1.0 / (1.0 + 1.0 / (params.dc_gain * kBeta));
  EXPECT_NEAR(numeric.final_value(1.0), expected, 1e-12);
  // Long integration converges to it.
  EXPECT_NEAR(numeric.settle(1.0, 40.0 * numeric.tau()), expected, 1e-6);
}

TEST(MdacTransient, MidSlewSamplingMatches) {
  // Sample while still slewing: output = SR * t in both models.
  auto params = nominal();
  params.slew_rate = 3e8;
  const aa::MdacTransient numeric(params, kBeta, params.bias_nominal);
  const double ts = 1e-9;
  const double expected = 3e8 * ts;
  EXPECT_NEAR(numeric.settle(1.2, ts), expected, 0.05 * expected);
}

TEST(MdacTransient, TrajectoryIsMonotoneForStep) {
  const auto params = nominal();
  const aa::MdacTransient numeric(params, kBeta, params.bias_nominal);
  const auto traj = numeric.trajectory(0.8, 10.0 * numeric.tau(), 200);
  for (std::size_t i = 1; i < traj.size(); ++i) {
    EXPECT_GE(traj[i], traj[i - 1] - 1e-12);
  }
  EXPECT_NEAR(traj.back(), numeric.final_value(0.8), 1e-4);
}

TEST(MdacTransient, ClipsAtSwing) {
  auto params = nominal();
  params.output_swing = 0.6;
  const aa::MdacTransient numeric(params, kBeta, params.bias_nominal);
  EXPECT_DOUBLE_EQ(numeric.settle(2.0, 50.0 * numeric.tau()), 0.6);
}

class BiasSweepAgreement : public ::testing::TestWithParam<double> {};

TEST_P(BiasSweepAgreement, ModelsAgreeAlongTheOperatingLine) {
  // The SC bias generator ties bias current to conversion rate, so the
  // converter's real operating line pairs a scaled bias with a 1/scaled
  // settling window (the Fig. 5 x-axis). Closed form and ODE must agree
  // everywhere on that line.
  const double rate_frac = GetParam();  // f_CR relative to 110 MS/s
  const auto params = nominal();
  const double ibias = params.bias_nominal * rate_frac;  // eq. (1)
  const double ts = 4.27e-9 / rate_frac;                 // half period - overhead
  const aa::Opamp closed(params);
  const aa::MdacTransient numeric(params, kBeta, ibias);
  const double lsb = 2.0 / 4096.0;
  for (double target : {0.3, 1.0}) {
    const double a = closed.settle(target, ts, kBeta, ibias).output;
    const double b = numeric.settle(target, ts);
    EXPECT_NEAR(a, b, lsb) << rate_frac << " " << target;
  }
}

INSTANTIATE_TEST_SUITE_P(RateRange, BiasSweepAgreement,
                         ::testing::Values(0.2, 0.5, 1.0, 1.3, 1.6));
