/// Unit tests for the delay-alignment register model.
#include "digital/alignment.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ad = adc::digital;

namespace {

ad::RawConversion tagged(int num_stages, int tag) {
  ad::RawConversion raw;
  raw.stage_codes.assign(static_cast<std::size_t>(num_stages), ad::StageCode::kZero);
  raw.flash_code = static_cast<ad::FlashCode>(tag & 0x3);
  // Encode the tag in the first stage codes so ordering is observable.
  raw.stage_codes[0] = static_cast<ad::StageCode>((tag % 3) - 1);
  return raw;
}

}  // namespace

TEST(DelayAlignment, LatencyForPaperGeometry) {
  ad::DelayAlignment align(10);
  // Ten 1.5-bit stages + flash resolve by half-clock 2n+11; the output
  // registers on full clock n+6.
  EXPECT_EQ(align.latency_cycles(), 6);
}

TEST(DelayAlignment, PipelineFillThenStream) {
  ad::DelayAlignment align(10);
  int produced = 0;
  for (int k = 0; k < 20; ++k) {
    auto out = align.push(tagged(10, k));
    if (k < align.latency_cycles()) {
      EXPECT_FALSE(out.has_value()) << k;
    } else {
      ASSERT_TRUE(out.has_value()) << k;
      ++produced;
    }
  }
  EXPECT_EQ(produced, 20 - align.latency_cycles());
}

TEST(DelayAlignment, OrderPreserved) {
  ad::DelayAlignment align(10);
  std::vector<int> seen;
  for (int k = 0; k < 30; ++k) {
    if (auto out = align.push(tagged(10, k))) {
      seen.push_back(static_cast<int>(out->flash_code));
    }
  }
  while (auto out = align.flush()) {
    seen.push_back(static_cast<int>(out->flash_code));
  }
  ASSERT_EQ(seen.size(), 30u);
  for (int k = 0; k < 30; ++k) EXPECT_EQ(seen[static_cast<std::size_t>(k)], k & 0x3);
}

TEST(DelayAlignment, FlushDrainsEverything) {
  ad::DelayAlignment align(10);
  for (int k = 0; k < 4; ++k) (void)align.push(tagged(10, k));
  int drained = 0;
  while (align.flush()) ++drained;
  EXPECT_EQ(drained, 4);
  EXPECT_FALSE(align.flush().has_value());
}

TEST(DelayAlignment, ResetClearsRegisters) {
  ad::DelayAlignment align(10);
  for (int k = 0; k < 5; ++k) (void)align.push(tagged(10, k));
  align.reset();
  EXPECT_FALSE(align.flush().has_value());
  // After reset the fill period starts over.
  EXPECT_FALSE(align.push(tagged(10, 0)).has_value());
}

TEST(DelayAlignment, RegisterBitCount) {
  ad::DelayAlignment align(10);
  // Stage i passes through (11-i) half-clock registers of 2 bits, i=1..10:
  // 2*(10+9+...+1) = 110, plus the 12-bit output register.
  EXPECT_EQ(align.register_bit_count(), 2 * 55 + 12);
}

TEST(DelayAlignment, ShortPipeline) {
  ad::DelayAlignment align(2);
  EXPECT_EQ(align.latency_cycles(), (2 + 2 + 1) / 2);
  EXPECT_THROW((void)align.push(tagged(3, 0)), adc::common::ConfigError);
}

TEST(DelayAlignment, InvalidConstruction) {
  EXPECT_THROW(ad::DelayAlignment(0), adc::common::ConfigError);
}
