/// Self-test for the lint_physics domain linter: every rule must fire on its
/// known-bad fixture and stay silent on the known-good one. Fixture files live
/// in tools/lint_physics/fixtures/src/ (ADC_LINT_FIXTURE_DIR) and are never
/// compiled; they are test data.
#include "lint_rules.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace {

using adc::lint::Finding;
using adc::lint::lint_file;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(ADC_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::size_t count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<std::size_t>(std::count_if(
      findings.begin(), findings.end(), [&](const Finding& f) { return f.rule == rule; }));
}

TEST(LintPhysics, GoodFixtureIsClean) {
  const auto findings = lint_file("src/fixture/good_model.hpp", read_fixture("good_model.hpp"));
  for (const auto& f : findings) ADD_FAILURE() << adc::lint::to_string(f);
  EXPECT_TRUE(findings.empty());
}

TEST(LintPhysics, RngFacadeRuleFiresOnRawRandomness) {
  const auto findings = lint_file("src/fixture/bad_rng.cpp", read_fixture("bad_rng.cpp"));
  // srand + time(nullptr) on one line, std::rand, and std::random_device.
  EXPECT_GE(count_rule(findings, "rng-facade"), 3u);
}

TEST(LintPhysics, RngFacadeRuleExemptsTheFacadeItself) {
  const std::string facade = "std::uint64_t seed() { std::random_device rd; return rd(); }\n";
  EXPECT_TRUE(lint_file("src/common/random.cpp", facade).empty());
  EXPECT_EQ(count_rule(lint_file("src/analog/noise.cpp", facade), "rng-facade"), 1u);
}

TEST(LintPhysics, ProfileMathRuleFiresInModelLayers) {
  const auto contents = read_fixture("analog/bad_cmath.cpp");
  // The exp, pow, and log1p(exp(...)) lines each fire once; the lint-ok'd
  // cached site and the sqrt/abs line stay silent.
  EXPECT_EQ(count_rule(lint_file("src/analog/bad_cmath.cpp", contents), "profile-math"), 3u);
  EXPECT_EQ(count_rule(lint_file("src/pipeline/bad_cmath.cpp", contents), "profile-math"), 3u);
  // Outside the per-sample model layers the same code is fine: dsp and
  // testbench run per-record, not per-sample, and libm is their contract.
  EXPECT_EQ(count_rule(lint_file("src/dsp/bad_cmath.cpp", contents), "profile-math"), 0u);
  EXPECT_EQ(count_rule(lint_file("tests/bad_cmath.cpp", contents), "profile-math"), 0u);
}

TEST(LintPhysics, ProfileMathRuleAllowlistsExactOnlyFiles) {
  // The transient solver has no fast variant; direct libm is its contract.
  const std::string text = "double v = std::tanh(x);\n";
  EXPECT_EQ(count_rule(lint_file("src/analog/transient.cpp", text), "profile-math"), 0u);
  EXPECT_EQ(count_rule(lint_file("src/analog/opamp.cpp", text), "profile-math"), 1u);
}

TEST(LintPhysics, PrintfRuleFiresInSrcOnly) {
  const auto contents = read_fixture("bad_printf.cpp");
  EXPECT_EQ(count_rule(lint_file("src/fixture/bad_printf.cpp", contents), "no-printf"), 1u);
  // The same code in a tool is allowed: CLIs print by design.
  EXPECT_EQ(count_rule(lint_file("tools/fixture/cli.cpp", contents), "no-printf"), 0u);
}

TEST(LintPhysics, SiLiteralRuleFiresOnRawScaleFactors) {
  const auto findings = lint_file("src/fixture/bad_magic.hpp", read_fixture("bad_magic.hpp"));
  EXPECT_EQ(count_rule(findings, "si-literal"), 3u);
}

TEST(LintPhysics, SiLiteralRuleIgnoresConstexprPhysicalConstants) {
  const std::string constants = "inline constexpr double kp_nmos = 340e-6;\n";
  EXPECT_TRUE(lint_file("src/common/constants.hpp", constants).empty());
}

TEST(LintPhysics, NodiscardRuleFiresOnBareConstAccessors) {
  const auto findings =
      lint_file("src/fixture/bad_nodiscard.hpp", read_fixture("bad_nodiscard.hpp"));
  EXPECT_EQ(count_rule(findings, "nodiscard-accessor"), 2u);
}

TEST(LintPhysics, NodiscardOnPrecedingLineIsAccepted) {
  const std::string decl =
      "class M {\n public:\n  [[nodiscard]]\n  double enob() const;\n};\n";
  EXPECT_EQ(count_rule(lint_file("src/fixture/meter.hpp", decl), "nodiscard-accessor"), 0u);
}

TEST(LintPhysics, CommentsAndStringsAreInvisibleToRules) {
  const std::string text =
      "// std::rand() in prose\n"
      "/* printf(\"x\") in a block comment */\n"
      "const char* msg = \"std::rand() inside a string\";\n";
  EXPECT_TRUE(lint_file("src/fixture/prose.cpp", text).empty());
}

TEST(LintPhysics, LintOkSuppressionDisablesTheLine) {
  const std::string text = "unsigned s = std::rand();  // lint-ok: documented exception\n";
  EXPECT_TRUE(lint_file("src/fixture/suppressed.cpp", text).empty());
}

}  // namespace
