/// Self-test for the lint_physics domain linter: every rule must fire on its
/// known-bad fixture and stay silent on the known-good one. Fixture files live
/// in tools/lint_physics/fixtures/src/ (ADC_LINT_FIXTURE_DIR) and are never
/// compiled; they are test data.
#include "lexer.hpp"
#include "lint_rules.hpp"
#include "report.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace {

using adc::lint::Finding;
using adc::lint::lint_file;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(ADC_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::size_t count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<std::size_t>(std::count_if(
      findings.begin(), findings.end(), [&](const Finding& f) { return f.rule == rule; }));
}

bool has_finding_at(const std::vector<Finding>& findings, const std::string& rule,
                    std::size_t line) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.rule == rule && f.line == line;
  });
}

// ---------------------------------------------------------------- lexer

TEST(LintLexer, ExtractsIncludesWithAngledFlagAndLine) {
  const std::string text =
      "#include <vector>\n"
      "// #include <chrono> in a comment is not an include\n"
      "#include \"analog/opamp.hpp\"\n";
  const auto lexed = adc::lint::lex(text);
  ASSERT_EQ(lexed.includes.size(), 2u);
  EXPECT_EQ(lexed.includes[0].path, "vector");
  EXPECT_TRUE(lexed.includes[0].angled);
  EXPECT_EQ(lexed.includes[0].line, 1u);
  EXPECT_EQ(lexed.includes[1].path, "analog/opamp.hpp");
  EXPECT_FALSE(lexed.includes[1].angled);
  EXPECT_EQ(lexed.includes[1].line, 3u);
}

TEST(LintLexer, TokensCarryLineNumbersAcrossCommentsAndStrings) {
  const std::string text =
      "int a; /* block\n"
      "comment */ int b;\n"
      "const char* s = \"int c;\";\n";
  const auto lexed = adc::lint::lex(text);
  // "int c;" inside the string must not produce identifier tokens.
  const auto idents = std::count_if(
      lexed.tokens.begin(), lexed.tokens.end(),
      [](const adc::lint::Token& t) { return t.kind == adc::lint::TokenKind::kIdentifier; });
  EXPECT_EQ(idents, 7);  // int a int b const char s
  EXPECT_EQ(lexed.tokens.front().line, 1u);
}

TEST(LintLexer, SuppressionNeedsMarkerPositionNotJustSubstring) {
  const std::string text =
      "// the lint-ok-hygiene rule polices lint-ok markers\n"
      "int a = 1;  // lint-ok: real marker\n"
      "double slew = 2.0;  ///< [V/s] doc text  // lint-ok: trailing doc pair\n";
  const auto lexed = adc::lint::lex(text);
  ASSERT_EQ(lexed.suppressions.size(), 2u);
  EXPECT_EQ(lexed.suppressions[0].line, 2u);
  EXPECT_TRUE(lexed.suppressions[0].has_reason);
  EXPECT_EQ(lexed.suppressions[0].reason, "real marker");
  EXPECT_EQ(lexed.suppressions[1].line, 3u);
  EXPECT_EQ(lexed.suppressions[1].reason, "trailing doc pair");
}

// ---------------------------------------------------------------- legacy rules

TEST(LintPhysics, GoodFixtureIsClean) {
  const auto findings = lint_file("src/fixture/good_model.hpp", read_fixture("good_model.hpp"));
  for (const auto& f : findings) ADD_FAILURE() << adc::lint::to_string(f);
  EXPECT_TRUE(findings.empty());
}

TEST(LintPhysics, RngFacadeRuleFiresOnRawRandomness) {
  const auto findings = lint_file("src/fixture/bad_rng.cpp", read_fixture("bad_rng.cpp"));
  // srand + time(nullptr) on one line, std::rand, and std::random_device.
  EXPECT_GE(count_rule(findings, "rng-facade"), 3u);
}

TEST(LintPhysics, RngFacadeRuleExemptsTheFacadeItself) {
  const std::string facade = "std::uint64_t seed() { std::random_device rd; return rd(); }\n";
  EXPECT_TRUE(lint_file("src/common/random.cpp", facade).empty());
  EXPECT_EQ(count_rule(lint_file("src/analog/noise.cpp", facade), "rng-facade"), 1u);
}

TEST(LintPhysics, ProfileMathRuleFiresInModelLayers) {
  const auto contents = read_fixture("analog/bad_cmath.cpp");
  // exp, pow, and the softplus line's log1p + exp: four call sites. The
  // lint-ok'd cached site and the sqrt/abs line stay silent.
  EXPECT_EQ(count_rule(lint_file("src/analog/bad_cmath.cpp", contents), "profile-math"), 4u);
  EXPECT_EQ(count_rule(lint_file("src/pipeline/bad_cmath.cpp", contents), "profile-math"), 4u);
  // Outside the per-sample model layers the same code is fine: dsp and
  // testbench run per-record, not per-sample, and libm is their contract.
  EXPECT_EQ(count_rule(lint_file("src/dsp/bad_cmath.cpp", contents), "profile-math"), 0u);
  EXPECT_EQ(count_rule(lint_file("tests/bad_cmath.cpp", contents), "profile-math"), 0u);
}

TEST(LintPhysics, ProfileMathRuleAllowlistsExactOnlyFiles) {
  // The transient solver has no fast variant; direct libm is its contract.
  const std::string text = "double v = std::tanh(x);\n";
  EXPECT_EQ(count_rule(lint_file("src/analog/transient.cpp", text), "profile-math"), 0u);
  EXPECT_EQ(count_rule(lint_file("src/analog/opamp.cpp", text), "profile-math"), 1u);
}

TEST(LintPhysics, ProfileMathRuleCoversDrawPipeline) {
  const auto contents = read_fixture("common/counter_rng_bad.hpp");
  // sqrt + log on the radius line, cos, and hypot: four findings. The
  // abs/fma line and the lint-ok'd diagnostic sqrt stay silent.
  const auto findings = lint_file("src/common/counter_rng_bad.hpp", contents);
  EXPECT_EQ(count_rule(findings, "profile-math"), 4u);
  // The same scope applies to every draw-pipeline file, headers and TUs.
  EXPECT_EQ(count_rule(lint_file("src/common/noise_plane.hpp", contents), "profile-math"), 4u);
  EXPECT_EQ(count_rule(lint_file("src/common/counter_rng.cpp", contents), "profile-math"), 4u);
  // Elsewhere under src/common the rule keeps its old scope: not a model
  // layer, so the same code is clean.
  EXPECT_EQ(count_rule(lint_file("src/common/json.cpp", contents), "profile-math"), 0u);
}

TEST(LintPhysics, ProfileMathSqrtIsDrawPipelineOnly) {
  // std::sqrt stays a single-instruction non-finding in the model layers;
  // only the draw pipeline (division/sqrt-free by fast contract v2) bans it.
  const std::string text = "double r = std::sqrt(x);\n";
  EXPECT_EQ(count_rule(lint_file("src/analog/opamp.cpp", text), "profile-math"), 0u);
  EXPECT_EQ(count_rule(lint_file("src/common/counter_rng_tile.hpp", text), "profile-math"), 1u);
}

TEST(LintPhysics, PrintfRuleFiresInSrcOnly) {
  const auto contents = read_fixture("bad_printf.cpp");
  EXPECT_EQ(count_rule(lint_file("src/fixture/bad_printf.cpp", contents), "no-printf"), 1u);
  // The same code in a tool is allowed: CLIs print by design.
  EXPECT_EQ(count_rule(lint_file("tools/fixture/cli.cpp", contents), "no-printf"), 0u);
}

TEST(LintPhysics, SiLiteralRuleFiresOnRawScaleFactors) {
  const auto findings = lint_file("src/fixture/bad_magic.hpp", read_fixture("bad_magic.hpp"));
  EXPECT_EQ(count_rule(findings, "si-literal"), 3u);
}

TEST(LintPhysics, SiLiteralRuleIgnoresConstexprPhysicalConstants) {
  const std::string constants = "inline constexpr double kp_nmos = 340e-6;\n";
  EXPECT_TRUE(lint_file("src/common/constants.hpp", constants).empty());
}

TEST(LintPhysics, NodiscardRuleFiresOnBareConstAccessors) {
  const auto findings =
      lint_file("src/fixture/bad_nodiscard.hpp", read_fixture("bad_nodiscard.hpp"));
  EXPECT_EQ(count_rule(findings, "nodiscard-accessor"), 2u);
}

TEST(LintPhysics, NodiscardOnPrecedingLineIsAccepted) {
  const std::string decl =
      "class M {\n public:\n  [[nodiscard]]\n  double enob() const;\n};\n";
  EXPECT_EQ(count_rule(lint_file("src/fixture/meter.hpp", decl), "nodiscard-accessor"), 0u);
}

TEST(LintPhysics, CommentsAndStringsAreInvisibleToRules) {
  const std::string text =
      "// std::rand() in prose\n"
      "/* printf(\"x\") in a block comment */\n"
      "const char* msg = \"std::rand() inside a string\";\n";
  EXPECT_TRUE(lint_file("src/fixture/prose.cpp", text).empty());
}

TEST(LintPhysics, RawStringFixtureIsClean) {
  // Banned tokens live only inside comments, strings, and a raw string with an
  // embedded quote and a lookalike terminator — the lexer must hide them all.
  const auto findings =
      lint_file("src/analog/good_raw_string.cpp", read_fixture("analog/good_raw_string.cpp"));
  for (const auto& f : findings) ADD_FAILURE() << adc::lint::to_string(f);
  EXPECT_TRUE(findings.empty());
}

TEST(LintPhysics, LintOkSuppressionDisablesTheLine) {
  const std::string text = "unsigned s = std::rand();  // lint-ok: documented exception\n";
  EXPECT_TRUE(lint_file("src/fixture/suppressed.cpp", text).empty());
}

// ---------------------------------------------------------------- hot-path-alloc

TEST(LintPhysics, HotPathAllocFixturePinsFourFindings) {
  const auto contents = read_fixture("analog/bad_alloc.cpp");
  const auto findings = lint_file("src/analog/bad_alloc.cpp", contents);
  EXPECT_EQ(count_rule(findings, "hot-path-alloc"), 4u);
  EXPECT_TRUE(has_finding_at(findings, "hot-path-alloc", 12));  // unreserved push_back
  EXPECT_TRUE(has_finding_at(findings, "hot-path-alloc", 16));  // new double[n]
  EXPECT_TRUE(has_finding_at(findings, "hot-path-alloc", 20));  // std::malloc
  EXPECT_TRUE(has_finding_at(findings, "hot-path-alloc", 25));  // macro-hidden push_back
  // The same code outside the alloc layers is not the rule's business.
  EXPECT_EQ(count_rule(lint_file("src/dsp/bad_alloc.cpp", contents), "hot-path-alloc"), 0u);
}

TEST(LintPhysics, HotPathAllocAcceptsReserveThenGrow) {
  const std::string text =
      "void fill(std::vector<double>& out, std::size_t n) {\n"
      "  out.reserve(n);\n"
      "  for (std::size_t i = 0; i < n; ++i) out.push_back(0.0);\n"
      "}\n";
  EXPECT_EQ(count_rule(lint_file("src/analog/fill.cpp", text), "hot-path-alloc"), 0u);
}

TEST(LintPhysics, HotPathAllocReserveDoesNotLeakAcrossScopes) {
  // The reserve in fill() must not license the push in grow().
  const std::string text =
      "void fill(std::vector<double>& v) { v.reserve(8); v.push_back(0.0); }\n"
      "void grow(std::vector<double>& v) { v.push_back(1.0); }\n";
  const auto findings = lint_file("src/digital/grow.cpp", text);
  EXPECT_EQ(count_rule(findings, "hot-path-alloc"), 1u);
  EXPECT_TRUE(has_finding_at(findings, "hot-path-alloc", 2));
}

TEST(LintPhysics, HotPathAllocMacroBodyIsVisible) {
  const std::string text = "#define APPEND(v, x) (v).push_back(x)\n";
  EXPECT_EQ(count_rule(lint_file("src/pipeline/macros.hpp", text), "hot-path-alloc"), 1u);
}

TEST(LintPhysics, HotPathAllocHonoursLintOkEscape) {
  const std::string text =
      "void wire() {\n"
      "  auto p = std::make_unique<int>(7);  // lint-ok: construction-time wiring\n"
      "}\n";
  EXPECT_TRUE(lint_file("src/pipeline/wire.cpp", text).empty());
}

// ---------------------------------------------------------------- determinism

TEST(LintPhysics, DeterminismFixturePinsFiveFindings) {
  const auto contents = read_fixture("bad_determinism.cpp");
  const auto findings = lint_file("src/fixture/bad_determinism.cpp", contents);
  EXPECT_EQ(count_rule(findings, "determinism"), 5u);
}

TEST(LintPhysics, DeterminismRuntimeLayerOwnsClocks) {
  // src/runtime/ is the telemetry layer: wall-clock reads are its contract.
  const std::string clocks = "auto t0 = std::chrono::steady_clock::now();\n";
  EXPECT_EQ(count_rule(lint_file("src/runtime/manifest.cpp", clocks), "determinism"), 0u);
  EXPECT_EQ(count_rule(lint_file("src/dsp/fft.cpp", clocks), "determinism"), 1u);
}

TEST(LintPhysics, DeterminismServiceLayerOwnsSocketDeadlines) {
  // src/service/ drives poll()/accept timeouts and status telemetry, so
  // wall-clock reads are legal there exactly as in src/runtime/.
  const std::string clocks = "auto t0 = std::chrono::steady_clock::now();\n";
  EXPECT_EQ(count_rule(lint_file("src/service/server.cpp", clocks), "determinism"), 0u);
  EXPECT_EQ(count_rule(lint_file("src/scenario/runner.cpp", clocks), "determinism"), 1u);
}

TEST(LintPhysics, DeterminismUnorderedContainersFlaggedEvenInRuntime) {
  // Iteration order can leak into serialized manifests, so the unordered
  // half of the rule has no runtime exemption.
  const std::string text = "std::unordered_map<std::string, double> m;\n";
  EXPECT_EQ(count_rule(lint_file("src/runtime/manifest.cpp", text), "determinism"), 1u);
  // Outside src/ (tests, tools) the rule does not apply.
  EXPECT_EQ(count_rule(lint_file("tests/scratch.cpp", text), "determinism"), 0u);
}

TEST(LintPhysics, DeterminismDoesNotFlagTimeLikeDeclarations) {
  // Identifiers merely containing "time", and declarations of functions that
  // shadow libc names, are not wall-clock reads.
  const std::string text =
      "double dead_time(double tau) { return 5.0 * tau; }\n"
      "double time_constant(double r, double c) { return r * c; }\n";
  EXPECT_EQ(count_rule(lint_file("src/analog/settle.cpp", text), "determinism"), 0u);
}

// ---------------------------------------------------------------- include-layering

TEST(LintPhysics, IncludeLayeringFlagsUpwardInclude) {
  const auto contents = read_fixture("analog/bad_layer_up.hpp");
  const auto findings = lint_file("src/analog/bad_layer_up.hpp", contents);
  EXPECT_EQ(count_rule(findings, "include-layering"), 1u);
  EXPECT_TRUE(has_finding_at(findings, "include-layering", 9));
}

TEST(LintPhysics, IncludeLayeringAcceptsDownwardInclude) {
  const auto contents = read_fixture("pipeline/layer_down.hpp");
  const auto findings = lint_file("src/pipeline/layer_down.hpp", contents);
  for (const auto& f : findings) ADD_FAILURE() << adc::lint::to_string(f);
  EXPECT_TRUE(findings.empty());
}

TEST(LintPhysics, DefaultLayerDagIsAcyclic) {
  EXPECT_TRUE(adc::lint::find_dag_cycle(adc::lint::default_layer_dag()).empty());
  EXPECT_TRUE(adc::lint::dag_closure(adc::lint::default_layer_dag()).has_value());
}

TEST(LintPhysics, ServiceLayerSitsAboveScenarioAndBelowTools) {
  // service may include scenario/runtime/common ...
  const std::string down =
      "#include \"scenario/runner.hpp\"\n"
      "#include \"runtime/thread_pool.hpp\"\n"
      "#include \"common/json.hpp\"\n";
  EXPECT_EQ(count_rule(lint_file("src/service/server.cpp", down), "include-layering"), 0u);
  // ... but nothing below service may reach up into it.
  const std::string up = "#include \"service/protocol.hpp\"\n";
  EXPECT_EQ(count_rule(lint_file("src/scenario/runner.cpp", up), "include-layering"), 1u);
  EXPECT_EQ(count_rule(lint_file("src/runtime/manifest.cpp", up), "include-layering"), 1u);
}

TEST(LintPhysics, CyclicLayerDagIsRejectedLoudly) {
  adc::lint::LayerDag cyclic;
  cyclic.deps = {{"a", {"b"}}, {"b", {"c"}}, {"c", {"a"}}};
  EXPECT_FALSE(adc::lint::find_dag_cycle(cyclic).empty());
  EXPECT_FALSE(adc::lint::dag_closure(cyclic).has_value());
}

TEST(LintPhysics, IncludeEdgesAreCollectedPerFile) {
  const auto contents = read_fixture("pipeline/layer_down.hpp");
  const auto report = adc::lint::lint_file_report("src/pipeline/layer_down.hpp", contents);
  ASSERT_FALSE(report.edges.empty());
  EXPECT_EQ(report.edges.front().from, "pipeline");
  EXPECT_EQ(report.edges.front().to, "analog");
  EXPECT_TRUE(report.edges.front().allowed);
}

// ---------------------------------------------------------------- lint-ok-hygiene

TEST(LintPhysics, LintOkHygieneFlagsStaleAndReasonless) {
  const auto contents = read_fixture("bad_stale_ok.cpp");
  const auto findings = lint_file("src/fixture/bad_stale_ok.cpp", contents);
  EXPECT_EQ(count_rule(findings, "lint-ok-hygiene"), 2u);
  EXPECT_TRUE(has_finding_at(findings, "lint-ok-hygiene", 7));   // stale
  EXPECT_TRUE(has_finding_at(findings, "lint-ok-hygiene", 10));  // reasonless
}

TEST(LintPhysics, LintOkProseMentionIsNotASuppression) {
  // A comment discussing the marker must neither suppress nor count as stale.
  const std::string text = "// the lint-ok-hygiene rule polices lint-ok rot\nint a = 1;\n";
  EXPECT_TRUE(lint_file("src/fixture/prose.cpp", text).empty());
}

// ---------------------------------------------------------------- reports

TEST(LintReport, JsonCarriesSchemaRuleAndRelativePath) {
  std::vector<Finding> findings{{"/repo/src/analog/mos.hpp", 19, "si-literal", "raw factor"}};
  const std::string json = adc::lint::to_json(findings, "/repo");
  EXPECT_NE(json.find("lint_physics/findings/v1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"si-literal\""), std::string::npos);
  EXPECT_NE(json.find("\"file\":\"src/analog/mos.hpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":19"), std::string::npos);
}

TEST(LintReport, SarifCarriesVersionRuleIdAndRegion) {
  std::vector<Finding> findings{{"/repo/src/analog/mos.hpp", 19, "si-literal", "raw factor"}};
  const std::string sarif = adc::lint::to_sarif(findings, "/repo");
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"si-literal\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":19"), std::string::npos);
  EXPECT_NE(sarif.find("src/analog/mos.hpp"), std::string::npos);
}

TEST(LintReport, SarifListsEveryCatalogRule) {
  const std::string sarif = adc::lint::to_sarif({}, {});
  for (const auto& rule : adc::lint::rule_catalog()) {
    EXPECT_NE(sarif.find("\"id\":\"" + std::string(rule.id) + "\""), std::string::npos)
        << "rule missing from SARIF catalog: " << rule.id;
  }
}

TEST(LintReport, IncludeGraphJsonIsDeterministic) {
  adc::lint::IncludeGraph graph;
  graph.edges = {{"analog", "common", 3, true}, {"pipeline", "power", 1, false}};
  const std::string json = adc::lint::to_json(graph);
  EXPECT_NE(json.find("lint_physics/include_graph/v1"), std::string::npos);
  EXPECT_NE(json.find("\"from\":\"analog\""), std::string::npos);
  EXPECT_NE(json.find("\"allowed\":false"), std::string::npos);
  EXPECT_EQ(json, adc::lint::to_json(graph));
}

}  // namespace
