/// Tests for the FIR decimator and the oversampling process-gain law.
#include "dsp/decimate.hpp"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"
#include "dsp/signal.hpp"
#include "dsp/spectrum.hpp"
#include "pipeline/design.hpp"

namespace ad = adc::dsp;

TEST(FirDesign, UnityDcGainAndSymmetry) {
  const auto h = ad::design_lowpass_fir(0.1, 65);
  double sum = 0.0;
  for (double v : h) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  for (std::size_t k = 0; k < h.size() / 2; ++k) {
    EXPECT_NEAR(h[k], h[h.size() - 1 - k], 1e-15) << k;  // linear phase
  }
}

TEST(FirDesign, PassbandAndStopband) {
  const auto h = ad::design_lowpass_fir(0.1, 129);
  EXPECT_NEAR(ad::fir_magnitude(h, 0.0), 1.0, 1e-9);
  EXPECT_NEAR(ad::fir_magnitude(h, 0.05), 1.0, 0.01);
  EXPECT_NEAR(ad::fir_magnitude(h, 0.1), 0.5, 0.03);  // -6 dB at the cutoff
  EXPECT_LT(ad::fir_magnitude(h, 0.2), 3e-4);         // ~ -70 dB stopband
  EXPECT_LT(ad::fir_magnitude(h, 0.4), 3e-4);
}

TEST(FirDesign, RejectsBadArguments) {
  EXPECT_THROW((void)ad::design_lowpass_fir(0.6, 65), adc::common::ConfigError);
  EXPECT_THROW((void)ad::design_lowpass_fir(0.1, 64), adc::common::ConfigError);
  EXPECT_THROW((void)ad::design_lowpass_fir(0.1, 3), adc::common::ConfigError);
}

TEST(Decimate, PassesInBandTone) {
  // A tone well inside the post-decimation band survives with unity gain.
  const std::size_t n = 1 << 14;
  std::vector<double> x(n);
  const double f_norm = 1.0 / 128.0;  // far below 0.4/4 = 0.1
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0 * std::numbers::pi * f_norm * static_cast<double>(i));
  }
  const auto y = ad::decimate_by(x, 4);
  double peak = 0.0;
  for (double v : y) peak = std::max(peak, std::abs(v));
  EXPECT_NEAR(peak, 1.0, 0.01);
  EXPECT_NEAR(static_cast<double>(y.size()), static_cast<double>(n) / 4.0,
              static_cast<double>(n) / 16.0);
}

TEST(Decimate, RejectsAliasBandTone) {
  // A tone just above the output Nyquist must not alias through.
  const std::size_t n = 1 << 14;
  std::vector<double> x(n);
  const double f_norm = 0.2;  // aliases to 0.05 of the output rate if leaked
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0 * std::numbers::pi * f_norm * static_cast<double>(i));
  }
  const auto y = ad::decimate_by(x, 4);
  double peak = 0.0;
  for (double v : y) peak = std::max(peak, std::abs(v));
  EXPECT_LT(peak, 1e-3);
}

TEST(Decimate, WhiteNoisePowerDropsByFactor) {
  adc::common::Rng rng(9);
  const std::size_t n = 1 << 15;
  std::vector<double> x(n);
  for (auto& v : x) v = rng.gaussian(1.0);
  const auto y = ad::decimate_by(x, 4);
  double p = 0.0;
  for (double v : y) p += v * v;
  p /= static_cast<double>(y.size());
  // The filter keeps ~0.8/4 of the band (cutoff at 80% of output Nyquist):
  // output power ~ 2*cutoff = 0.2.
  EXPECT_NEAR(p, 0.2, 0.04);
}

TEST(Decimate, ProcessGainOnTheRealConverter) {
  // The headline use case: digitize a 1 MHz tone at 110 MS/s, decimate 8x,
  // and gain ~9 dB of SNR (white noise assumption) — until the static
  // distortion floor, which decimation cannot remove, limits SNDR.
  adc::pipeline::PipelineAdc converter(adc::pipeline::nominal_design());
  const double fs = converter.conversion_rate();
  const std::size_t n = 1 << 15;
  const auto tone = ad::coherent_frequency(1e6, fs, n);
  const ad::SineSignal sig(0.985, tone.frequency_hz);
  const auto codes = converter.convert(sig, n);
  const auto volts = ad::codes_to_volts(codes, 12, 2.0);

  ad::SpectrumOptions opt;
  opt.fundamental_bin = tone.cycles;
  const auto before = ad::analyze_tone(volts, fs, opt);

  auto y = ad::decimate_by(volts, 8);
  y.resize(1 << 12);  // power-of-two record for the analyzer
  // The decimated record is no longer bin-coherent (odd cycle count / 8):
  // analyze through a Blackman-Harris window, as any bench would.
  ad::SpectrumOptions opt_after;
  opt_after.window = ad::WindowType::kBlackmanHarris4;
  const auto after = ad::analyze_tone(y, fs / 8.0, opt_after);

  // Ideal process gain is 10*log10(8) = 9 dB; the anti-alias filter also
  // trims the top 20 % of the output band (cutoff at 0.8 Nyquist), adding
  // ~1 dB, and the windowed noise estimate carries ~1 dB of bias.
  EXPECT_GT(after.snr_db, before.snr_db + 6.0);
  EXPECT_LT(after.snr_db, before.snr_db + 14.0);
  // Distortion is in-band and survives: SNDR improves less than SNR.
  EXPECT_LT(after.sndr_db - before.sndr_db, after.snr_db - before.snr_db);
}

TEST(Decimate, ErrorsOnBadInput) {
  const std::vector<double> x(100, 0.0);
  const std::vector<double> fir(128, 0.0);
  EXPECT_THROW((void)ad::decimate(x, fir, 2), adc::common::ConfigError);
  EXPECT_THROW((void)ad::decimate_by(x, 1), adc::common::ConfigError);
}
