/// Unit tests for continuous-time test signals and coherent-tone selection.
#include "dsp/signal.hpp"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace ad = adc::dsp;

TEST(SineSignal, ValueAndAmplitude) {
  const ad::SineSignal s(1.0, 1e6, 0.0, 0.1);
  EXPECT_NEAR(s.value(0.0), 0.1, 1e-12);                 // offset at phase 0
  EXPECT_NEAR(s.value(0.25e-6), 1.1, 1e-9);              // quarter period: peak
  EXPECT_DOUBLE_EQ(s.amplitude(), 1.0);
  EXPECT_DOUBLE_EQ(s.frequency(), 1e6);
}

TEST(SineSignal, SlopeMatchesNumericDerivative) {
  const ad::SineSignal s(0.8, 10e6, 0.7);
  const double h = 1e-12;
  for (double t : {0.0, 3.7e-9, 41e-9, 1e-7}) {
    const double numeric = (s.value(t + h) - s.value(t - h)) / (2.0 * h);
    EXPECT_NEAR(s.slope(t), numeric, 1e-3 * std::abs(numeric) + 1.0);
  }
}

TEST(SineSignal, PeakSlopeIsTwoPiFA) {
  const ad::SineSignal s(1.0, 10e6);
  EXPECT_NEAR(s.slope(0.0), 2.0 * std::numbers::pi * 10e6, 1.0);
}

TEST(MultiToneSignal, SumsTones) {
  const ad::MultiToneSignal s({{0.5, 1e6, 0.0}, {0.25, 3e6, 0.0}});
  const ad::SineSignal a(0.5, 1e6);
  const ad::SineSignal b(0.25, 3e6);
  for (double t : {0.0, 1e-7, 3.3e-7}) {
    EXPECT_NEAR(s.value(t), a.value(t) + b.value(t), 1e-12);
    EXPECT_NEAR(s.slope(t), a.slope(t) + b.slope(t), 1e-6);
  }
}

TEST(MultiToneSignal, EmptyThrows) {
  EXPECT_THROW(ad::MultiToneSignal({}), adc::common::ConfigError);
}

TEST(RampSignal, LinearAndSaturating) {
  const ad::RampSignal r(-1.0, 1.0, 10e-6);
  EXPECT_DOUBLE_EQ(r.value(-1.0), -1.0);
  EXPECT_DOUBLE_EQ(r.value(0.0), -1.0);
  EXPECT_NEAR(r.value(5e-6), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.value(10e-6), 1.0);
  EXPECT_DOUBLE_EQ(r.value(20e-6), 1.0);
  EXPECT_NEAR(r.slope(5e-6), 2.0 / 10e-6, 1e-3);
  EXPECT_DOUBLE_EQ(r.slope(20e-6), 0.0);
}

TEST(DcSignal, ConstantEverywhere) {
  const ad::DcSignal d(0.42);
  EXPECT_DOUBLE_EQ(d.value(0.0), 0.42);
  EXPECT_DOUBLE_EQ(d.value(1.0), 0.42);
  EXPECT_DOUBLE_EQ(d.slope(0.5), 0.0);
}

TEST(CoherentFrequency, PicksOddCycleCount) {
  const auto tone = ad::coherent_frequency(10e6, 110e6, 8192);
  EXPECT_EQ(tone.cycles % 2, 1u);
  // Exactly on the bin grid.
  const double bin = 110e6 / 8192.0;
  EXPECT_NEAR(tone.frequency_hz, static_cast<double>(tone.cycles) * bin, 1e-6);
  // Close to the request (within one bin).
  EXPECT_NEAR(tone.frequency_hz, 10e6, 2.0 * bin);
}

TEST(CoherentFrequency, OddCyclesAreCoprimeWithPowerOfTwo) {
  // Every code gets exercised: gcd(cycles, n) == 1.
  for (double target : {1e6, 10e6, 37e6, 54e6}) {
    const auto tone = ad::coherent_frequency(target, 110e6, 4096);
    EXPECT_EQ(adc::common::gcd(tone.cycles, 4096), 1u) << target;
  }
}

TEST(CoherentFrequency, ClampsNearNyquist) {
  const auto tone = ad::coherent_frequency(54.9e6, 110e6, 256);
  EXPECT_LT(tone.cycles, 128u);
  EXPECT_EQ(tone.cycles % 2, 1u);
}

TEST(CoherentFrequency, MinimumOneCycle) {
  const auto tone = ad::coherent_frequency(1.0, 110e6, 4096);
  EXPECT_EQ(tone.cycles, 1u);
}

TEST(CoherentFrequency, RejectsOutOfRange) {
  EXPECT_THROW((void)ad::coherent_frequency(60e6, 110e6, 4096), adc::common::ConfigError);
  EXPECT_THROW((void)ad::coherent_frequency(-1.0, 110e6, 4096), adc::common::ConfigError);
  EXPECT_THROW((void)ad::coherent_frequency(1e6, 110e6, 2), adc::common::ConfigError);
}

class CoherentSweep : public ::testing::TestWithParam<double> {};

TEST_P(CoherentSweep, AlwaysOddAndInBand) {
  const double fs = 110e6;
  const std::size_t n = 8192;
  const auto tone = ad::coherent_frequency(GetParam(), fs, n);
  EXPECT_EQ(tone.cycles % 2, 1u);
  EXPECT_GT(tone.frequency_hz, 0.0);
  EXPECT_LT(tone.frequency_hz, fs / 2.0);
}

INSTANTIATE_TEST_SUITE_P(Targets, CoherentSweep,
                         ::testing::Values(0.1e6, 1e6, 5e6, 10e6, 20e6, 37.7e6, 50e6,
                                           54.99e6));
