/// Unit tests for the bandgap reference model.
#include "analog/bandgap.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"

namespace aa = adc::analog;

TEST(Bandgap, IdealIsExactEverywhere) {
  const auto bg = aa::Bandgap::ideal(1.2);
  EXPECT_DOUBLE_EQ(bg.output(), 1.2);
  EXPECT_DOUBLE_EQ(bg.output(233.0, 1.6), 1.2);
  EXPECT_DOUBLE_EQ(bg.output(398.0, 2.0), 1.2);
}

TEST(Bandgap, CurvatureIsSecondOrder) {
  aa::BandgapSpec spec;
  spec.sigma_process = 0.0;
  adc::common::Rng rng(1);
  const aa::Bandgap bg(spec, rng);
  const double v0 = bg.output(spec.t0_kelvin, spec.vdd_nominal);
  const double v_hot = bg.output(spec.t0_kelvin + 100.0, spec.vdd_nominal);
  const double v_cold = bg.output(spec.t0_kelvin - 100.0, spec.vdd_nominal);
  // Symmetric deviation (no first-order term) and small (tens of uV).
  EXPECT_NEAR(v_hot, v_cold, 1e-9);
  EXPECT_LT(std::abs(v_hot - v0), 100e-6);
  EXPECT_GT(std::abs(v_hot - v0), 1e-6);
}

TEST(Bandgap, SupplySensitivity) {
  aa::BandgapSpec spec;
  spec.sigma_process = 0.0;
  spec.supply_sensitivity = 2e-3;
  adc::common::Rng rng(2);
  const aa::Bandgap bg(spec, rng);
  const double dv = bg.output(spec.t0_kelvin, 2.0) - bg.output(spec.t0_kelvin, 1.8);
  EXPECT_NEAR(dv, 2e-3 * 0.2, 1e-12);
}

TEST(Bandgap, ProcessSpreadReproducible) {
  aa::BandgapSpec spec;
  spec.sigma_process = 5e-3;
  adc::common::Rng a(9);
  adc::common::Rng b(9);
  EXPECT_DOUBLE_EQ(aa::Bandgap(spec, a).output(), aa::Bandgap(spec, b).output());
  adc::common::Rng c = a.child("x");
  adc::common::Rng d = a.child("y");
  EXPECT_NE(aa::Bandgap(spec, c).output(), aa::Bandgap(spec, d).output());
}

TEST(Bandgap, InvalidSpecThrows) {
  aa::BandgapSpec spec;
  spec.nominal_output = -1.0;
  adc::common::Rng rng(3);
  EXPECT_THROW(aa::Bandgap(spec, rng), adc::common::ConfigError);
}
