/// Tests for the strict minimal JSON layer (src/common/json.*): parsing,
/// strictness diagnostics, exact number round-trip, and the canonical form
/// the scenario hasher consumes.
#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>

#include "common/error.hpp"

namespace json = adc::common::json;
using adc::common::ConfigError;
using json::JsonValue;

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_TRUE(json::parse("true").as_bool());
  EXPECT_FALSE(json::parse("false").as_bool());
  EXPECT_EQ(json::parse("42").as_int64(), 42);
  EXPECT_EQ(json::parse("-7").as_int64(), -7);
  EXPECT_DOUBLE_EQ(json::parse("2.5e3").as_double(), 2500.0);
  EXPECT_EQ(json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, IntegerStorageIsPreserved) {
  EXPECT_EQ(json::parse("0").type(), JsonValue::Type::kInt);
  EXPECT_EQ(json::parse("1.0").type(), JsonValue::Type::kDouble);
  // INT64_MAX + 1 still fits unsigned storage; larger falls back to double.
  EXPECT_EQ(json::parse("9223372036854775808").as_uint64(), 9223372036854775808ull);
  EXPECT_EQ(json::parse("99999999999999999999999").type(), JsonValue::Type::kDouble);
}

TEST(JsonParse, NestedDocument) {
  const auto doc = json::parse(R"({"a": [1, 2.5, {"b": null}], "c": {"d": true}})");
  ASSERT_TRUE(doc.is_object());
  const auto* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_EQ(a->items()[0].as_int64(), 1);
  EXPECT_TRUE(a->items()[2].find("b")->is_null());
  EXPECT_TRUE(doc.find("c")->find("d")->as_bool());
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(json::parse(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(json::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(json::parse(R"("é")").as_string(), "\xc3\xa9");         // é
  EXPECT_EQ(json::parse(R"("😀")").as_string(), "\xf0\x9f\x98\x80");  // emoji
}

TEST(JsonParse, StrictnessRejections) {
  EXPECT_THROW((void)json::parse(""), ConfigError);
  EXPECT_THROW((void)json::parse("{,}"), ConfigError);
  EXPECT_THROW((void)json::parse("[1, 2,]"), ConfigError);           // trailing comma
  EXPECT_THROW((void)json::parse(R"({"a": 1,})"), ConfigError);      // trailing comma
  EXPECT_THROW((void)json::parse(R"({"a": 1} )" "x"), ConfigError);  // trailing garbage
  EXPECT_THROW((void)json::parse(R"({"a": 1, "a": 2})"), ConfigError);  // duplicate key
  EXPECT_THROW((void)json::parse("01"), ConfigError);                // leading zero
  EXPECT_THROW((void)json::parse("1."), ConfigError);
  EXPECT_THROW((void)json::parse("+1"), ConfigError);
  EXPECT_THROW((void)json::parse("'single'"), ConfigError);
  EXPECT_THROW((void)json::parse("{\"a\": 1 // comment\n}"), ConfigError);
  EXPECT_THROW((void)json::parse("\"unterminated"), ConfigError);
  EXPECT_THROW((void)json::parse("\"bad \\x escape\""), ConfigError);
  EXPECT_THROW((void)json::parse("1e999"), ConfigError);             // out of double range
  EXPECT_THROW((void)json::parse(std::string(300, '[')), ConfigError);  // nesting bomb
}

TEST(JsonParse, ErrorsCarryLineAndColumn) {
  try {
    (void)json::parse("{\n  \"a\": 1,\n  \"a\": 2\n}");
    FAIL() << "duplicate key accepted";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("duplicate object key \"a\""), std::string::npos) << what;
  }
}

TEST(JsonValueApi, TypeMismatchThrows) {
  const auto v = json::parse("[1]");
  EXPECT_THROW((void)v.as_string(), ConfigError);
  EXPECT_THROW((void)v.members(), ConfigError);
  EXPECT_THROW((void)json::parse("1.5").as_int64(), ConfigError);
  EXPECT_THROW((void)json::parse("-1").as_uint64(), ConfigError);
}

TEST(JsonValueApi, ObjectSetPreservesInsertionOrder) {
  auto obj = JsonValue::object();
  obj.set("zeta", 1);
  obj.set("alpha", 2);
  obj.set("zeta", 3);  // replace in place, not re-append
  ASSERT_EQ(obj.members().size(), 2u);
  EXPECT_EQ(obj.members()[0].key, "zeta");
  EXPECT_EQ(obj.members()[0].value.as_int64(), 3);
  EXPECT_TRUE(obj.erase("zeta"));
  EXPECT_FALSE(obj.erase("zeta"));
  ASSERT_EQ(obj.members().size(), 1u);
}

TEST(JsonDump, CompactAndPretty) {
  const auto doc = json::parse(R"({"b": [1, 2], "a": {"x": true}, "e": [], "o": {}})");
  EXPECT_EQ(json::dump_compact(doc), R"({"b":[1,2],"a":{"x":true},"e":[],"o":{}})");
  EXPECT_EQ(json::dump(doc),
            "{\n"
            "  \"b\": [\n    1,\n    2\n  ],\n"
            "  \"a\": {\n    \"x\": true\n  },\n"
            "  \"e\": [],\n"
            "  \"o\": {}\n"
            "}\n");
}

TEST(JsonDump, RoundTripReproducesDocumentExactly) {
  const char* text =
      R"({"name": "x", "v": [0.1, -0.0, 1e-300, 12345678901234567890, -42, 0.69999999999999996],)"
      R"( "s": "é\n", "n": null})";
  const auto doc = json::parse(text);
  const auto reparsed = json::parse(json::dump(doc));
  EXPECT_TRUE(doc == reparsed);
  // And the dump of the reparse is byte-identical (stable fixpoint).
  EXPECT_EQ(json::dump(doc), json::dump(reparsed));
}

TEST(JsonDump, DoubleFormattingRoundTripsBitExactly) {
  const double cases[] = {0.1,
                          1.0 / 3.0,
                          6.02214076e23,
                          -1.6e-19,
                          5e-324,  // min subnormal
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::min(),
                          -0.0,
                          110e6,
                          0.69999999999999996};
  for (const double v : cases) {
    const auto text = json::format_double(v);
    const double back = json::parse(text).as_double();
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::memcpy(&a, &v, sizeof a);
    std::memcpy(&b, &back, sizeof b);
    EXPECT_EQ(a, b) << v << " -> " << text;
  }
  EXPECT_EQ(json::format_double(2.5), "2.5");
  EXPECT_EQ(json::format_double(4.0), "4.0");  // stays a double token
  EXPECT_THROW((void)json::format_double(std::nan("")), ConfigError);
  EXPECT_THROW((void)json::format_double(INFINITY), ConfigError);
}

TEST(JsonCanonical, SortsKeysAtEveryLevel) {
  const auto a = json::parse(R"({"b": {"z": 1, "a": 2}, "a": [{"q": 1, "p": 2}]})");
  const auto b = json::parse(R"({"a": [{"p": 2, "q": 1}], "b": {"a": 2, "z": 1}})");
  EXPECT_EQ(json::canonical(a), json::canonical(b));
  EXPECT_EQ(json::canonical(a), R"({"a":[{"p":2,"q":1}],"b":{"a":2,"z":1}})");
  // Array order is data, not presentation: reordering arrays changes the form.
  const auto c = json::parse(R"({"a": [{"p": 2, "q": 1}], "b": {"a": 2, "z": 2}})");
  EXPECT_NE(json::canonical(a), json::canonical(c));
}
