/// Unit tests for table/plot rendering and the paper-comparison blocks.
#include <string>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "testbench/compare.hpp"
#include "testbench/report.hpp"

namespace tb = adc::testbench;

TEST(AsciiTable, RendersAlignedColumns) {
  tb::AsciiTable table({"metric", "value"});
  table.add_row({"SNR", "67.1 dB"});
  table.add_row({"a-longer-metric-name", "1"});
  const auto s = table.render();
  EXPECT_NE(s.find("| metric"), std::string::npos);
  EXPECT_NE(s.find("| SNR"), std::string::npos);
  EXPECT_NE(s.find("a-longer-metric-name"), std::string::npos);
  // Every data line has the same width.
  std::size_t first_len = s.find('\n');
  for (std::size_t pos = 0; pos < s.size();) {
    const auto next = s.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(AsciiTable, CellCountMismatchThrows) {
  tb::AsciiTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), adc::common::ConfigError);
}

TEST(AsciiTable, NumberFormatting) {
  EXPECT_EQ(tb::AsciiTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(tb::AsciiTable::num(-1.0, 0), "-1");
  EXPECT_EQ(tb::AsciiTable::eng(97e-3, "W"), "97.0 mW");
  EXPECT_EQ(tb::AsciiTable::eng(110e6, "Hz"), "110.0 MHz");
  EXPECT_EQ(tb::AsciiTable::eng(0.55e-12, "F", 2), "550.00 fF");
}

TEST(RenderPlot, ContainsSymbolsAxesAndLegend) {
  tb::PlotSeries s;
  s.label = "power";
  s.symbol = 'o';
  s.x = {10.0, 60.0, 110.0};
  s.y = {28.0, 62.0, 97.0};
  tb::PlotOptions opt;
  opt.title = "Fig 4";
  opt.x_label = "MS/s";
  const auto plot = tb::render_plot(std::vector<tb::PlotSeries>{s}, opt);
  EXPECT_NE(plot.find("Fig 4"), std::string::npos);
  EXPECT_NE(plot.find('o'), std::string::npos);
  EXPECT_NE(plot.find("legend:"), std::string::npos);
  EXPECT_NE(plot.find("o = power"), std::string::npos);
  EXPECT_NE(plot.find("MS/s"), std::string::npos);
}

TEST(RenderPlot, MultiSeriesUsesDistinctSymbols) {
  tb::PlotSeries a{"snr", 's', {1.0, 2.0}, {60.0, 61.0}};
  tb::PlotSeries b{"sfdr", 'f', {1.0, 2.0}, {70.0, 71.0}};
  const auto plot =
      tb::render_plot(std::vector<tb::PlotSeries>{a, b}, tb::PlotOptions{});
  EXPECT_NE(plot.find('s'), std::string::npos);
  EXPECT_NE(plot.find('f'), std::string::npos);
}

TEST(RenderPlot, LogAxesWork) {
  tb::PlotSeries s{"fm", '*', {0.1, 1.0, 10.0}, {1.0, 100.0, 10000.0}};
  tb::PlotOptions opt;
  opt.log_x = true;
  opt.log_y = true;
  const auto plot = tb::render_plot(std::vector<tb::PlotSeries>{s}, opt);
  EXPECT_NE(plot.find('*'), std::string::npos);
}

TEST(RenderPlot, LogAxisRejectsNonPositive) {
  tb::PlotSeries s{"bad", '*', {-1.0, 1.0}, {1.0, 2.0}};
  tb::PlotOptions opt;
  opt.log_x = true;
  EXPECT_THROW((void)tb::render_plot(std::vector<tb::PlotSeries>{s}, opt),
               adc::common::ConfigError);
}

TEST(RenderPlot, EmptyThrows) {
  EXPECT_THROW((void)tb::render_plot(std::vector<tb::PlotSeries>{}, tb::PlotOptions{}),
               adc::common::ConfigError);
}

TEST(PaperComparison, RendersRows) {
  tb::PaperComparison cmp("Table I");
  cmp.add_numeric("SNR", 67.1, 67.4, "dB");
  cmp.add("technology", "0.18um CMOS", "behavioral model", "substitution");
  cmp.add_shape("power vs rate", "linear", "linear (R2=0.9999)", true);
  const auto s = cmp.render();
  EXPECT_NE(s.find("Table I"), std::string::npos);
  EXPECT_NE(s.find("67.1"), std::string::npos);
  EXPECT_NE(s.find("+0.3 dB"), std::string::npos);
  EXPECT_NE(s.find("shape: MATCH"), std::string::npos);
}
