/// Integration tests: each non-ideality, enabled in isolation, must move the
/// right metric in the right direction — the causal structure behind the
/// paper's Figs. 5 and 6.
#include <cmath>

#include <gtest/gtest.h>

#include "pipeline/adc.hpp"
#include "pipeline/design.hpp"
#include "testbench/dynamic_test.hpp"
#include "testbench/sweep.hpp"

namespace ap = adc::pipeline;
namespace tb = adc::testbench;

namespace {

ap::AdcConfig with_only(void (*set)(ap::NonIdealities&)) {
  ap::AdcConfig cfg = ap::nominal_design();
  cfg.enable = ap::NonIdealities::all_off();
  set(cfg.enable);
  return cfg;
}

tb::DynamicTestResult measure(const ap::AdcConfig& cfg, double fin = 10e6) {
  ap::PipelineAdc adc(cfg);
  tb::DynamicTestOptions opt;
  opt.target_fin_hz = fin;
  opt.record_length = 1 << 12;
  return tb::run_dynamic_test(adc, opt);
}

double ideal_snr() {
  static const double snr =
      measure(ap::ideal_design()).metrics.snr_db;
  return snr;
}

}  // namespace

TEST(NonIdealities, ThermalNoiseLowersSnrNotSfdr) {
  const auto m = measure(with_only([](ap::NonIdealities& e) { e.thermal_noise = true; }));
  EXPECT_LT(m.metrics.snr_db, ideal_snr() - 2.0);
  EXPECT_GT(m.metrics.sfdr_db, 85.0);  // noise is not a spur
}

TEST(NonIdealities, JitterMattersOnlyAtHighInputFrequency) {
  // Use 10x the design jitter so the effect is unambiguous against the
  // quantization floor: SNR_jit = -20log10(2*pi*fin*sigma) = 60.5 dB at
  // 50 MHz but 88.5 dB at 2 MHz.
  auto cfg = with_only([](ap::NonIdealities& e) { e.aperture_jitter = true; });
  cfg.clock.jitter_rms_s = 3e-12;
  const auto lo = measure(cfg, 2e6);
  const auto hi = measure(cfg, 50e6);
  EXPECT_GT(lo.metrics.snr_db, ideal_snr() - 1.0);  // invisible at 2 MHz
  EXPECT_LT(hi.metrics.snr_db, 64.0);               // dominant at 50 MHz
  EXPECT_NEAR(hi.metrics.snr_db, 60.5, 2.0);
}

TEST(NonIdealities, MismatchCreatesStaticDistortion) {
  const auto m =
      measure(with_only([](ap::NonIdealities& e) { e.capacitor_mismatch = true; }));
  EXPECT_LT(m.metrics.sfdr_db, 85.0);
  EXPECT_LT(m.metrics.sndr_db, ideal_snr());
}

TEST(NonIdealities, ComparatorImperfectionsAreAbsorbedByRedundancy) {
  // The paper's ADSC offsets are far inside V_REF/4: enabling them barely
  // moves any metric.
  const auto m = measure(
      with_only([](ap::NonIdealities& e) { e.comparator_imperfections = true; }));
  EXPECT_GT(m.metrics.enob, 11.9);
}

TEST(NonIdealities, FiniteGainCostsLinearity) {
  const auto m =
      measure(with_only([](ap::NonIdealities& e) { e.finite_opamp_gain = true; }));
  EXPECT_LT(m.metrics.sfdr_db, 95.0);
  EXPECT_GT(m.metrics.enob, 11.5);  // 86 dB gain: small but visible
}

TEST(NonIdealities, SettlingDegradesWithConversionRate) {
  // The Fig. 5 high-rate mechanism.
  auto cfg = with_only([](ap::NonIdealities& e) { e.incomplete_settling = true; });
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 12;
  const auto pts = tb::sweep_conversion_rate(cfg, {110e6, 180e6}, opt);
  EXPECT_GT(pts[0].result.metrics.sndr_db, pts[1].result.metrics.sndr_db + 1.0);
}

TEST(NonIdealities, TrackingDistortionGrowsWithInputFrequency) {
  // The Fig. 6 mechanism, isolated: disable the (frequency-independent)
  // charge injection so only the R_on(v)*C tracking term remains; its
  // distortion grows linearly with input frequency.
  auto cfg = with_only([](ap::NonIdealities& e) { e.tracking_nonlinearity = true; });
  cfg.input_switch.injection_fraction = 0.0;
  const auto lo = measure(cfg, 5e6);
  const auto hi = measure(cfg, 45e6);
  EXPECT_GT(hi.metrics.thd_db, lo.metrics.thd_db + 6.0);  // more distortion power
  EXPECT_LT(hi.metrics.sndr_db, lo.metrics.sndr_db - 3.0);
}

TEST(NonIdealities, ChargeInjectionIsFrequencyIndependent) {
  // The static half of the input-switch nonlinearity: same THD at 5 and
  // 45 MHz once the tau term is turned off (huge switches).
  auto cfg = with_only([](ap::NonIdealities& e) { e.tracking_nonlinearity = true; });
  cfg.input_switch.w_over_l_nmos = 6000.0;
  cfg.input_switch.w_over_l_pmos = 12000.0;
  // Keep the injected charge at the design value despite the big devices.
  cfg.input_switch.injection_fraction = 0.130 * 60.0 / 6000.0;
  const auto lo = measure(cfg, 5e6);
  const auto hi = measure(cfg, 45e6);
  EXPECT_NEAR(hi.metrics.thd_db, lo.metrics.thd_db, 2.5);
}

TEST(NonIdealities, LeakageOnlyHurtsSlowClocks) {
  // The Fig. 5 low-rate mechanism.
  auto cfg = with_only([](ap::NonIdealities& e) { e.hold_leakage = true; });
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 12;
  const auto pts = tb::sweep_conversion_rate(cfg, {2e6, 110e6}, opt);
  EXPECT_LT(pts[0].result.metrics.sfdr_db, pts[1].result.metrics.sfdr_db - 3.0);
}

TEST(NonIdealities, SeedReproducibility) {
  const auto cfg = ap::nominal_design();
  ap::PipelineAdc a(cfg);
  ap::PipelineAdc b(cfg);
  const adc::dsp::SineSignal tone(0.9, 10.0037e6);
  EXPECT_EQ(a.convert(tone, 512), b.convert(tone, 512));
}

TEST(NonIdealities, DifferentSeedsAreDifferentDies) {
  auto cfg1 = ap::nominal_design(1);
  auto cfg2 = ap::nominal_design(2);
  ap::PipelineAdc a(cfg1);
  ap::PipelineAdc b(cfg2);
  // Different mismatch draws: the DC transfers differ somewhere.
  int diffs = 0;
  for (double v = -0.9; v <= 0.9; v += 0.0123) {
    if (a.convert_dc(v) != b.convert_dc(v)) ++diffs;
  }
  EXPECT_GT(diffs, 0);
}

TEST(NonIdealities, NominalMeetsTableOne) {
  // The headline check, asserted with generous margins so the test stays
  // robust to re-calibration; bench/table1 prints the precise comparison.
  ap::PipelineAdc adc(ap::nominal_design());
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 13;
  const auto m = tb::run_dynamic_test(adc, opt).metrics;
  EXPECT_NEAR(m.snr_db, 67.1, 1.5);
  EXPECT_NEAR(m.sndr_db, 64.2, 1.5);
  EXPECT_NEAR(m.sfdr_db, 69.4, 2.5);
  EXPECT_NEAR(m.enob, 10.4, 0.25);
}

TEST(NonIdealities, FixedBiasSchemeStillConverts) {
  auto cfg = ap::nominal_design();
  cfg.bias_scheme = ap::BiasScheme::kFixed;
  ap::PipelineAdc adc(cfg);
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 12;
  const auto m = tb::run_dynamic_test(adc, opt).metrics;
  EXPECT_GT(m.enob, 9.5);
  // And burns rate-independent current.
  EXPECT_DOUBLE_EQ(adc.pipeline_bias_current(10e6), adc.pipeline_bias_current(140e6));
}
