/// \file test_fast_rng.cpp
/// The `fast` profile's noise contract: statistical equivalence and
/// positional determinism.
///
/// The exact profile's golden-code tests pin *sequences*; the fast profile's
/// contract is positional — draw N is a pure function of (key, stream, N) —
/// so the things to pin are different:
///  * the batched fill and the scalar positional lookup must agree
///    bit-for-bit at every chunking (the batched cipher is a separately
///    vectorized round-major implementation of the same Philox network);
///  * a NoisePlane window regenerated anywhere must reproduce the same
///    draws for the same absolute sample index;
///  * the deviates must actually be standard normals (moments + KS), since
///    branch-free Box–Muller replaces the exact profile's polar method;
///  * the polynomial transcendental kernels must track libm to the few-ulp
///    bounds documented in common/fastmath.hpp over their stated domains —
///    including, under fast contract v2, the division-free log and the
///    rsqrt-seeded Newton sqrt that carry the Box–Muller radius.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/counter_rng.hpp"
#include "common/fastmath.hpp"
#include "common/noise_plane.hpp"

namespace {

using adc::common::NoisePlane;
using adc::common::philox4x32;
using adc::common::philox_normal_at;
using adc::common::philox_normal_fill;
namespace fastmath = adc::common::fastmath;

constexpr std::uint64_t kKey = 0x5EED2004u;
constexpr std::uint64_t kStream = 7u;

/// Distance in units-in-the-last-place between two finite doubles of the
/// same sign (monotone bit-pattern trick).
std::uint64_t ulp_distance(double a, double b) {
  auto ordered = [](double x) {
    const auto bits = std::bit_cast<std::int64_t>(x);
    return bits < 0 ? std::numeric_limits<std::int64_t>::min() - bits : bits;
  };
  const std::int64_t da = ordered(a);
  const std::int64_t db = ordered(b);
  return static_cast<std::uint64_t>(da > db ? da - db : db - da);
}

TEST(PhiloxRng, FillMatchesPositionalLookupAtAnyChunking) {
  constexpr std::size_t kTotal = 4096 + 37;  // off the tile boundary
  std::vector<double> whole(kTotal);
  philox_normal_fill(kKey, kStream, 0, whole);

  // Scalar positional lookup: the batched round-major cipher and the
  // reference network must be the same function.
  for (std::size_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(whole[i], philox_normal_at(kKey, kStream, i)) << "index " << i;
  }

  // Refill in odd-sized chunks, including chunks that start mid-block (odd
  // first index) and mid-tile: bit-identical to the single-shot fill.
  for (const std::size_t chunk : {1u, 2u, 3u, 5u, 31u, 64u, 1000u}) {
    std::vector<double> pieces(kTotal);
    for (std::size_t first = 0; first < kTotal; first += chunk) {
      const std::size_t n = std::min(chunk, kTotal - first);
      philox_normal_fill(kKey, kStream, first,
                         std::span<double>(pieces.data() + first, n));
    }
    ASSERT_EQ(pieces, whole) << "chunk " << chunk;
  }
}

TEST(PhiloxRng, StreamsAndKeysAreIndependentAxes) {
  // Changing any coordinate of (key, stream, index) must change the draw —
  // the cipher treats them as independent axes, which is what lets every
  // noise slot own a disjoint stream.
  const double base = philox_normal_at(kKey, kStream, 123);
  EXPECT_NE(base, philox_normal_at(kKey + 1, kStream, 123));
  EXPECT_NE(base, philox_normal_at(kKey, kStream + 1, 123));
  EXPECT_NE(base, philox_normal_at(kKey, kStream, 124));
}

TEST(PhiloxRng, NoisePlaneRegenerationIsBitIdentical) {
  constexpr std::uint32_t kSlots = 37;
  constexpr std::uint64_t kEpoch = 3;
  NoisePlane reference(kKey, kSlots);
  reference.generate(kEpoch, 0, 1000);

  // A window opened anywhere must reproduce the same rows: the plane is a
  // view of one infinite positional sequence, not a stateful generator.
  NoisePlane window(kKey, kSlots);
  for (const std::uint64_t first : {0ull, 1ull, 499ull, 900ull}) {
    window.generate(kEpoch, first, 100);
    for (std::uint64_t s = first; s < first + 100; ++s) {
      const double* a = reference.row(s);
      const double* b = window.row(s);
      for (std::uint32_t k = 0; k < kSlots; ++k) {
        ASSERT_EQ(a[k], b[k]) << "sample " << s << " slot " << k;
      }
    }
  }

  // Epochs are disjoint: a re-capture must not replay the previous capture's
  // noise.
  window.generate(kEpoch + 1, 0, 1);
  EXPECT_NE(window.row(0)[0], reference.row(0)[0]);
}

TEST(PhiloxRng, ChunkedRegenerationAcrossEpochBoundaries) {
  // The batch engine regenerates a plane in kChunkSamples windows and bumps
  // the epoch between captures, interleaving (epoch, window) pairs in
  // whatever order the die-blocks run. Contract: a chunk regenerated after
  // *any* sequence of other (epoch, window) fills — including fills of a
  // different epoch in between — is bit-identical to the one-shot plane of
  // its own epoch. A draw-math kernel with hidden state (or an epoch mixed
  // into anything but the stream coordinate) would break this.
  constexpr std::uint32_t kSlots = 36;
  constexpr std::size_t kRows = 640;  // spans several 128-block tiles
  const std::uint64_t epochs[] = {11, 12};

  NoisePlane ref_a(kKey, kSlots);
  ref_a.generate(epochs[0], 0, kRows);
  std::vector<double> plane_a(ref_a.row(0), ref_a.row(0) + kRows * kSlots);
  NoisePlane ref_b(kKey, kSlots);
  ref_b.generate(epochs[1], 0, kRows);
  std::vector<double> plane_b(ref_b.row(0), ref_b.row(0) + kRows * kSlots);

  // Same positions, adjacent epochs: the planes must be fully decorrelated,
  // not shifted copies.
  std::size_t equal = 0;
  for (std::size_t i = 0; i < plane_a.size(); ++i) {
    if (plane_a[i] == plane_b[i]) ++equal;
  }
  EXPECT_LT(equal, 4u);

  // Ping-pong chunked regeneration between the two epochs, with window
  // starts chosen to straddle tile boundaries (a tile is 128 blocks = 256
  // deviates; a 36-slot row never aligns with it).
  NoisePlane window(kKey, kSlots);
  for (const std::uint64_t first : {0ull, 1ull, 127ull, 255ull, 256ull, 500ull}) {
    for (int flip = 0; flip < 2; ++flip) {
      const std::uint64_t epoch = epochs[flip];
      const std::vector<double>& plane = (flip == 0) ? plane_a : plane_b;
      window.generate(epoch, first, 100);
      for (std::uint64_t s = first; s < first + 100; ++s) {
        const double* got = window.row(s);
        const double* want = plane.data() + s * kSlots;
        for (std::uint32_t k = 0; k < kSlots; ++k) {
          ASSERT_EQ(got[k], want[k])
              << "epoch " << epoch << " sample " << s << " slot " << k;
        }
      }
    }
  }
}

TEST(PhiloxRng, FirstDrawsArePinned) {
  // Golden regression guard for the fast contract: these exact doubles may
  // only change with an explicit contract bump and a regeneration of the
  // fast golden-code tables (mirrors kGoldenConvert64 for the exact
  // profile). Any change to the cipher, the bits->uniform mapping, or the
  // Box-Muller kernels moves them.
  //
  // Pinned under fast contract v2 (kFastContractVersion == 2): the
  // division-free log/sqrt draw math. The first two deviates moved by 1-2
  // ulp relative to contract v1; the last two happen to round identically.
  const std::vector<double> expected = {
      -2.28277845513356115e-01,
      -2.55481661112267278e-01,
      -1.07492898757829658e+00,
      1.11749836576973705e+00,
  };
  std::vector<double> filled(4);
  philox_normal_fill(kKey, kStream, 0, filled);
  EXPECT_EQ(filled, expected);
}

TEST(PhiloxRng, MomentsMatchStandardNormal) {
  constexpr std::size_t kN = 1u << 20;  // ~1.05e6 draws
  std::vector<double> draws(kN);
  philox_normal_fill(kKey, kStream, 0, draws);

  double mean = 0.0;
  for (const double z : draws) mean += z;
  mean /= static_cast<double>(kN);

  double m2 = 0.0;
  double m3 = 0.0;
  double m4 = 0.0;
  for (const double z : draws) {
    const double d = z - mean;
    const double d2 = d * d;
    m2 += d2;
    m3 += d2 * d;
    m4 += d2 * d2;
  }
  m2 /= static_cast<double>(kN);
  m3 /= static_cast<double>(kN);
  m4 /= static_cast<double>(kN);
  const double skew = m3 / (m2 * std::sqrt(m2));
  const double excess_kurtosis = m4 / (m2 * m2) - 3.0;

  // 5-sigma acceptance bands for N(0,1) sample moments at this N: the test
  // is deterministic (fixed key), the margin documents how close it lands.
  EXPECT_NEAR(mean, 0.0, 5.0 / std::sqrt(static_cast<double>(kN)));
  EXPECT_NEAR(m2, 1.0, 5.0 * std::sqrt(2.0 / static_cast<double>(kN)));
  EXPECT_NEAR(skew, 0.0, 5.0 * std::sqrt(6.0 / static_cast<double>(kN)));
  EXPECT_NEAR(excess_kurtosis, 0.0, 5.0 * std::sqrt(24.0 / static_cast<double>(kN)));
}

TEST(PhiloxRng, KolmogorovSmirnovAgainstNormalCdf) {
  constexpr std::size_t kN = 1u << 20;
  std::vector<double> draws(kN);
  philox_normal_fill(kKey, kStream + 1, 0, draws);
  std::sort(draws.begin(), draws.end());

  // One-sample KS statistic against Phi(x) = erfc(-x/sqrt(2))/2.
  double d_max = 0.0;
  for (std::size_t i = 0; i < kN; ++i) {
    const double cdf = 0.5 * std::erfc(-draws[i] / std::sqrt(2.0));
    const double lo = static_cast<double>(i) / static_cast<double>(kN);
    const double hi = static_cast<double>(i + 1) / static_cast<double>(kN);
    d_max = std::max({d_max, std::abs(cdf - lo), std::abs(cdf - hi)});
  }
  // Critical value at alpha = 0.01 is 1.628/sqrt(N) ~ 1.59e-3. A generator
  // defect (clipped tails, lattice artifacts, a wrong Box-Muller branch)
  // shows up orders of magnitude above this.
  EXPECT_LT(d_max, 1.628 / std::sqrt(static_cast<double>(kN)));
}

TEST(PhiloxRng, TailsAreFullRange) {
  // u1 in (0, 1] gives a largest representable deviate of ~8.57 sigma and
  // excludes log(0); over 2^20 draws the extremes should comfortably exceed
  // 4 sigma (P(miss) < 1e-14) yet stay below the hard ceiling.
  constexpr std::size_t kN = 1u << 20;
  std::vector<double> draws(kN);
  philox_normal_fill(kKey, kStream, 0, draws);
  const auto [lo, hi] = std::minmax_element(draws.begin(), draws.end());
  EXPECT_LT(*lo, -4.0);
  EXPECT_GT(*hi, 4.0);
  EXPECT_GT(*lo, -8.6);
  EXPECT_LT(*hi, 8.6);
  for (const double z : draws) ASSERT_TRUE(std::isfinite(z));
}

// ---------------------------------------------------------------------------
// Polynomial transcendental kernels vs libm over their documented domains.
// ---------------------------------------------------------------------------

/// Deterministic log-uniform sweep over [lo, hi] (sign preserved).
std::vector<double> log_sweep(double lo, double hi, int points) {
  std::vector<double> xs;
  const double llo = std::log(std::abs(lo));
  const double lhi = std::log(std::abs(hi));
  for (int i = 0; i <= points; ++i) {
    const double t = llo + (lhi - llo) * i / points;
    xs.push_back(std::copysign(std::exp(t), lo));
  }
  return xs;
}

TEST(Fastmath, ExpTracksLibmWithinUlpBound) {
  std::uint64_t worst = 0;
  for (const double mag : log_sweep(1e-6, 700.0, 4000)) {
    for (const double x : {mag, -mag}) {
      worst = std::max(worst, ulp_distance(fastmath::exp_fast(x), std::exp(x)));
    }
  }
  EXPECT_LE(worst, 4u);  // documented ~2 ulp over [-708, 709]
  EXPECT_EQ(fastmath::exp_fast(0.0), 1.0);
  EXPECT_EQ(fastmath::exp_fast(710.0), std::numeric_limits<double>::infinity());
  EXPECT_EQ(fastmath::exp_fast(-746.0), 0.0);
}

TEST(Fastmath, LogTracksLibmWithinUlpBound) {
  std::uint64_t worst = 0;
  for (const double x : log_sweep(1e-300, 1e300, 6000)) {
    worst = std::max(worst, ulp_distance(fastmath::log_fast(x), std::log(x)));
  }
  // Near x = 1 the ulp of log(x) shrinks while the absolute error floor does
  // not; sweep that band separately with an absolute bound.
  for (int i = -1000; i <= 1000; ++i) {
    const double x = 1.0 + i * 1e-3;
    if (x < 0.5) continue;
    EXPECT_NEAR(fastmath::log_fast(x), std::log(x), 4e-16) << "x " << x;
  }
  EXPECT_LE(worst, 4u);
  EXPECT_EQ(fastmath::log_fast(1.0), 0.0);
}

TEST(Fastmath, Log1pTracksLibmWithinUlpBound) {
  for (const double mag : log_sweep(1e-12, 0.2, 2000)) {
    for (const double x : {mag, -mag}) {
      EXPECT_LE(ulp_distance(fastmath::log1p_fast(x), std::log1p(x)), 4u) << "x " << x;
    }
  }
  for (const double x : log_sweep(0.5, 1e6, 1000)) {
    EXPECT_LE(ulp_distance(fastmath::log1p_fast(x), std::log1p(x)), 4u) << "x " << x;
  }
  EXPECT_EQ(fastmath::log1p_fast(0.0), 0.0);
}

TEST(Fastmath, SqrtTracksLibmWithinUlpBound) {
  // The rsqrt-seeded Newton radius of fast contract v2. Sweep the full
  // normal range (the documented domain) plus the Box-Muller radius-squared
  // band [~1e-16, 73.7] the draw pipeline actually feeds it.
  std::uint64_t worst = 0;
  for (const double x : log_sweep(1e-300, 1e300, 6000)) {
    worst = std::max(worst, ulp_distance(fastmath::sqrt_fast(x), std::sqrt(x)));
  }
  for (const double x : log_sweep(1e-16, 73.7, 6000)) {
    worst = std::max(worst, ulp_distance(fastmath::sqrt_fast(x), std::sqrt(x)));
  }
  EXPECT_LE(worst, 2u);  // documented ~1 ulp
  // Anchors the draw pipeline can hit: u1 == 1 gives a -0.0 radius argument
  // (std::sqrt(-0.0) is -0.0, and the Newton form preserves that), and small
  // perfect squares land exactly.
  EXPECT_EQ(fastmath::sqrt_fast(0.0), 0.0);
  EXPECT_TRUE(std::signbit(fastmath::sqrt_fast(-0.0)));
  EXPECT_EQ(fastmath::sqrt_fast(1.0), 1.0);
  EXPECT_EQ(fastmath::sqrt_fast(4.0), 2.0);
}

TEST(Fastmath, PowTracksLibmOverModelExponents) {
  // The simulator's pow sites are junction-capacitance grading exponents:
  // x in (1, ~5), y in (0.3, 0.9). |y ln x| stays tiny, so the composition
  // error is a handful of ulps.
  for (double x = 1.05; x < 5.0; x += 0.07) {
    for (double y = 0.3; y < 0.9; y += 0.05) {
      EXPECT_LE(ulp_distance(fastmath::pow_fast(x, y), std::pow(x, y)), 8u)
          << "x " << x << " y " << y;
    }
  }
}

TEST(Fastmath, SincosTracksLibmOverReductionDomain) {
  // Absolute bound: sin/cos have unit amplitude, and near the zeros the
  // Cody-Waite reduction residue dominates the relative error.
  double worst = 0.0;
  for (const double mag : log_sweep(1e-3, 1e6, 8000)) {
    for (const double x : {mag, -mag}) {
      double s = 0.0;
      double c = 0.0;
      fastmath::sincos_fast(x, s, c);
      worst = std::max({worst, std::abs(s - std::sin(x)), std::abs(c - std::cos(x))});
    }
  }
  EXPECT_LT(worst, 2e-15);  // ~4.5 ulp of 1.0
  double s0 = -1.0;
  double c0 = 0.0;
  fastmath::sincos_fast(0.0, s0, c0);
  EXPECT_EQ(s0, 0.0);
  EXPECT_EQ(c0, 1.0);
}

}  // namespace
