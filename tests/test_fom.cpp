/// Unit tests for the figures of merit (the paper's eq. 2 and Walden).
#include "power/fom.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pw = adc::power;

TEST(PaperFm, TableOneValue) {
  // FM = 2^10.4 * 110 / (0.86 * 97) ~ 1781 with the paper's units
  // (MS/s, mm^2, mW).
  const double fm = pw::paper_fm(10.4, 110e6, 0.86e-6, 97e-3);
  EXPECT_NEAR(fm, 1781.0, 10.0);
}

TEST(PaperFm, UnitConventions) {
  // Doubling the area or the power halves FM; doubling the rate doubles it.
  const double base = pw::paper_fm(10.0, 100e6, 1e-6, 100e-3);
  EXPECT_NEAR(pw::paper_fm(10.0, 200e6, 1e-6, 100e-3), 2.0 * base, 1e-9);
  EXPECT_NEAR(pw::paper_fm(10.0, 100e6, 2e-6, 100e-3), base / 2.0, 1e-9);
  EXPECT_NEAR(pw::paper_fm(10.0, 100e6, 1e-6, 200e-3), base / 2.0, 1e-9);
  // One extra effective bit doubles FM.
  EXPECT_NEAR(pw::paper_fm(11.0, 100e6, 1e-6, 100e-3), 2.0 * base, 1e-9);
}

TEST(WaldenFom, PaperOperatingPoint) {
  // 97 mW / (2^10.4 * 110 MS/s) = 0.65 pJ/step.
  EXPECT_NEAR(pw::walden_pj_per_step(10.4, 110e6, 97e-3), 0.653, 0.01);
  EXPECT_NEAR(pw::walden_energy_per_step(10.4, 110e6, 97e-3), 0.653e-12, 1e-14);
}

TEST(Fom, RejectsNonPositive) {
  EXPECT_THROW((void)pw::paper_fm(10.0, 0.0, 1e-6, 0.1), adc::common::ConfigError);
  EXPECT_THROW((void)pw::paper_fm(10.0, 1e8, -1e-6, 0.1), adc::common::ConfigError);
  EXPECT_THROW((void)pw::walden_energy_per_step(10.0, 1e8, 0.0), adc::common::ConfigError);
}
