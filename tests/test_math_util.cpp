/// Unit tests for adc::common math helpers.
#include "common/math_util.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ac = adc::common;

TEST(MathUtil, DbFromPowerRatio) {
  EXPECT_DOUBLE_EQ(ac::db_from_power_ratio(1.0), 0.0);
  EXPECT_DOUBLE_EQ(ac::db_from_power_ratio(10.0), 10.0);
  EXPECT_NEAR(ac::db_from_power_ratio(2.0), 3.0103, 1e-3);
}

TEST(MathUtil, DbFromAmplitudeRatio) {
  EXPECT_DOUBLE_EQ(ac::db_from_amplitude_ratio(10.0), 20.0);
  EXPECT_NEAR(ac::db_from_amplitude_ratio(2.0), 6.0206, 1e-3);
}

TEST(MathUtil, DbRoundTrips) {
  for (double db : {-80.0, -12.5, 0.0, 3.0, 40.0}) {
    EXPECT_NEAR(ac::db_from_power_ratio(ac::power_ratio_from_db(db)), db, 1e-12);
    EXPECT_NEAR(ac::db_from_amplitude_ratio(ac::amplitude_ratio_from_db(db)), db, 1e-12);
  }
}

TEST(MathUtil, EnobConventions) {
  // The classic identity: a perfect 12-bit converter has SNDR 74.0 dB.
  EXPECT_NEAR(ac::sndr_db_from_enob(12.0), 74.0, 0.1);
  EXPECT_NEAR(ac::enob_from_sndr_db(74.0), 12.0, 0.01);
  // Paper Table I: SNDR 64.2 dB <-> ENOB 10.4.
  EXPECT_NEAR(ac::enob_from_sndr_db(64.2), 10.37, 0.01);
}

TEST(MathUtil, EnobRoundTrip) {
  for (double enob : {6.0, 10.4, 12.0, 14.0}) {
    EXPECT_NEAR(ac::enob_from_sndr_db(ac::sndr_db_from_enob(enob)), enob, 1e-12);
  }
}

TEST(MathUtil, IsPowerOfTwo) {
  EXPECT_TRUE(ac::is_power_of_two(1));
  EXPECT_TRUE(ac::is_power_of_two(2));
  EXPECT_TRUE(ac::is_power_of_two(4096));
  EXPECT_FALSE(ac::is_power_of_two(0));
  EXPECT_FALSE(ac::is_power_of_two(3));
  EXPECT_FALSE(ac::is_power_of_two(4095));
}

TEST(MathUtil, MeanVarianceRms) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(ac::mean(x), 2.5);
  EXPECT_DOUBLE_EQ(ac::variance(x), 1.25);
  EXPECT_DOUBLE_EQ(ac::std_dev(x), std::sqrt(1.25));
  EXPECT_DOUBLE_EQ(ac::rms(x), std::sqrt(30.0 / 4.0));
}

TEST(MathUtil, EmptyStatsAreZero) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(ac::mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(ac::variance(empty), 0.0);
  EXPECT_DOUBLE_EQ(ac::rms(empty), 0.0);
}

TEST(MathUtil, MinMax) {
  const std::vector<double> x{3.0, -1.0, 2.0};
  const auto mm = ac::min_max(x);
  EXPECT_DOUBLE_EQ(mm.min, -1.0);
  EXPECT_DOUBLE_EQ(mm.max, 3.0);
  EXPECT_THROW((void)ac::min_max(std::vector<double>{}), ac::ConfigError);
}

TEST(MathUtil, LinearFitExact) {
  const std::vector<double> x{0.0, 1.0, 2.0, 3.0};
  std::vector<double> y;
  for (double v : x) y.push_back(2.5 * v - 1.0);
  const auto fit = ac::linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(MathUtil, LinearFitNoisyR2BelowOne) {
  const std::vector<double> x{0.0, 1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{0.1, 0.9, 2.2, 2.8, 4.1};
  const auto fit = ac::linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 1.0, 0.1);
  EXPECT_LT(fit.r_squared, 1.0);
  EXPECT_GT(fit.r_squared, 0.98);
}

TEST(MathUtil, LinearFitErrors) {
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)ac::linear_fit(one, one), ac::ConfigError);
  const std::vector<double> x{1.0, 1.0};
  const std::vector<double> y{1.0, 2.0};
  EXPECT_THROW((void)ac::linear_fit(x, y), ac::ConfigError);
}

TEST(MathUtil, Gcd) {
  EXPECT_EQ(ac::gcd(12, 18), 6u);
  EXPECT_EQ(ac::gcd(17, 4096), 1u);
  EXPECT_EQ(ac::gcd(0, 5), 5u);
}

TEST(MathUtil, Linspace) {
  const auto v = ac::linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
  EXPECT_EQ(ac::linspace(3.0, 9.0, 1).size(), 1u);
}

TEST(MathUtil, Logspace) {
  const auto v = ac::logspace(1.0, 1000.0, 4);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_NEAR(v[0], 1.0, 1e-9);
  EXPECT_NEAR(v[1], 10.0, 1e-9);
  EXPECT_NEAR(v[3], 1000.0, 1e-9);
  EXPECT_THROW((void)ac::logspace(0.0, 1.0, 3), ac::ConfigError);
}

TEST(MathUtil, Clamp) {
  EXPECT_DOUBLE_EQ(ac::clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(ac::clamp(-2.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(ac::clamp(9.0, 0.0, 1.0), 1.0);
}

TEST(MathUtil, SumDbPowers) {
  // Two equal contributions add 3 dB.
  const std::vector<double> two{-70.0, -70.0};
  EXPECT_NEAR(ac::sum_db_powers(two), -66.99, 0.02);
  // A much smaller contribution barely moves the total.
  const std::vector<double> skewed{-60.0, -90.0};
  EXPECT_NEAR(ac::sum_db_powers(skewed), -60.0, 0.01);
}

/// SNR/THD decomposition identity used throughout the calibration:
/// combining the paper's SNR (67.1) and THD (-67.3 dBc) must give SNDR 64.2.
TEST(MathUtil, PaperSndrDecomposition) {
  const std::vector<double> parts{-67.1, -67.3};
  EXPECT_NEAR(ac::sum_db_powers(parts), -64.2, 0.1);
}

class DbPowerSumSweep : public ::testing::TestWithParam<double> {};

TEST_P(DbPowerSumSweep, DominantTermBoundsTheSum) {
  const double a = GetParam();
  const std::vector<double> parts{a, a - 20.0};
  const double total = ac::sum_db_powers(parts);
  EXPECT_GT(total, a);          // adding power always increases it
  EXPECT_LT(total, a + 0.05);   // a -20 dB contribution adds < 0.05 dB
}

INSTANTIATE_TEST_SUITE_P(Levels, DbPowerSumSweep,
                         ::testing::Values(-90.0, -70.0, -64.2, -40.0, -10.0));
