/// Tests for the PVT (process/voltage/temperature) environment knobs.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "pipeline/adc.hpp"
#include "pipeline/design.hpp"
#include "testbench/dynamic_test.hpp"
#include "testbench/sweep.hpp"

namespace ap = adc::pipeline;
namespace tb = adc::testbench;

namespace {

double sndr_at(ap::AdcConfig cfg, double fin = 10e6) {
  ap::PipelineAdc adc(cfg);
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 12;
  opt.target_fin_hz = fin;
  return tb::run_dynamic_test(adc, opt).metrics.sndr_db;
}

double snr_at(ap::AdcConfig cfg) {
  ap::PipelineAdc adc(cfg);
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 12;
  return tb::run_dynamic_test(adc, opt).metrics.snr_db;
}

}  // namespace

TEST(Pvt, HotDieIsNoisier) {
  // kT/C: 398 K vs 300 K is +1.2 dB of thermal noise power.
  auto cold = ap::nominal_design();
  auto hot = ap::nominal_design();
  hot.temperature_k = 398.0;
  EXPECT_GT(snr_at(cold), snr_at(hot) + 0.2);
}

TEST(Pvt, HotDieDroopsSoonerAtLowRates) {
  // Junction leakage doubles every ~10 K: at 398 K it is ~900x the 300 K
  // value, so the Fig. 5 low-rate SFDR corner moves right.
  auto hot = ap::nominal_design();
  hot.temperature_k = 398.0;
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 12;
  const auto cold_pts = tb::sweep_conversion_rate(ap::nominal_design(), {20e6}, opt);
  const auto hot_pts = tb::sweep_conversion_rate(hot, {20e6}, opt);
  EXPECT_LT(hot_pts[0].result.metrics.sfdr_db,
            cold_pts[0].result.metrics.sfdr_db - 3.0);
}

TEST(Pvt, HotDieLosesSettlingMarginAtSpeed) {
  // Mobility ~T^-1.5 lowers GBW ~34 % at 398 K: the high-rate SNDR corner
  // moves left.
  auto hot = ap::nominal_design();
  hot.temperature_k = 398.0;
  tb::DynamicTestOptions opt;
  opt.record_length = 1 << 12;
  const auto cold_pts = tb::sweep_conversion_rate(ap::nominal_design(), {160e6}, opt);
  const auto hot_pts = tb::sweep_conversion_rate(hot, {160e6}, opt);
  EXPECT_LT(hot_pts[0].result.metrics.sndr_db,
            cold_pts[0].result.metrics.sndr_db - 1.0);
}

TEST(Pvt, ColdDieIsFine) {
  auto cold = ap::nominal_design();
  cold.temperature_k = 233.0;
  EXPECT_GT(sndr_at(cold), 63.5);
}

TEST(Pvt, SupplyVariationIsAsymmetric) {
  // The bandgap holds the references (2 mV/V sensitivity), so the supply
  // mostly acts on the *switch overdrive*: +10 % VDD is free, while -10 %
  // VDD visibly strains the un-bootstrapped transmission gates — the very
  // low-voltage headache the paper's bulk switching addresses.
  auto high = ap::nominal_design();
  high.vdd = 1.98;
  high.input_switch.vdd = 1.98;
  EXPECT_GT(sndr_at(high), 63.5);
  auto low = ap::nominal_design();
  low.vdd = 1.62;
  low.input_switch.vdd = 1.62;
  EXPECT_GT(sndr_at(low), 59.0);         // still >9.5 ENOB
  EXPECT_LT(sndr_at(low), sndr_at(high));  // but the strain is real
}

TEST(Pvt, NominalTemperatureIsNeutral) {
  auto a = ap::nominal_design();
  auto b = ap::nominal_design();
  b.temperature_k = 300.0;
  EXPECT_DOUBLE_EQ(sndr_at(a), sndr_at(b));
}

TEST(Pvt, RejectsAbsurdTemperatures) {
  auto cfg = ap::nominal_design();
  cfg.temperature_k = 50.0;
  EXPECT_THROW(ap::PipelineAdc{cfg}, adc::common::ConfigError);
  cfg.temperature_k = 700.0;
  EXPECT_THROW(ap::PipelineAdc{cfg}, adc::common::ConfigError);
}
