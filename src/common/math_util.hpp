/// \file math_util.hpp
/// Small numeric helpers shared by the DSP and circuit models.
#pragma once

#include <cmath>
#include <cstddef>
#include <numbers>
#include <span>
#include <vector>

namespace adc::common {

/// Chebyshev interpolant of a smooth function on [lo, hi]: fitted once at
/// the degree+1 Chebyshev roots, evaluated by the Clenshaw recurrence. The
/// `fast` fidelity profile uses these as construction-time surrogates for
/// per-sample transcendental chains (e.g. the sampling-switch network);
/// for the smooth circuit curves involved, a degree ~12 fit is accurate to
/// well below the converter's noise floor.
class Chebyshev {
 public:
  Chebyshev() = default;

  /// Interpolate `f` on [lo, hi] with a polynomial of degree `degree`.
  template <typename F>
  [[nodiscard]] static Chebyshev fit(const F& f, double lo, double hi, int degree) {
    Chebyshev c;
    const int n = degree + 1;
    c.mid_ = 0.5 * (hi + lo);
    c.half_ = 0.5 * (hi - lo);
    c.inv_half_ = 1.0 / c.half_;
    std::vector<double> fx(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
      const double theta = std::numbers::pi * (static_cast<double>(k) + 0.5) /
                           static_cast<double>(n);
      fx[static_cast<std::size_t>(k)] = f(c.mid_ + c.half_ * std::cos(theta));
    }
    c.coef_.resize(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      double s = 0.0;
      for (int k = 0; k < n; ++k) {
        s += fx[static_cast<std::size_t>(k)] *
             std::cos(std::numbers::pi * static_cast<double>(j) *
                      (static_cast<double>(k) + 0.5) / static_cast<double>(n));
      }
      c.coef_[static_cast<std::size_t>(j)] = 2.0 * s / static_cast<double>(n);
    }
    c.coef_[0] *= 0.5;
    return c;
  }

  /// Evaluate at x (callers keep x inside [lo, hi]; outside, the polynomial
  /// extrapolates and accuracy degrades rapidly).
  [[nodiscard]] double operator()(double x) const {
    const double y = (x - mid_) * inv_half_;
    const double two_y = 2.0 * y;
    double b1 = 0.0;
    double b2 = 0.0;
    for (std::size_t k = coef_.size(); k-- > 1;) {
      const double b0 = two_y * b1 - b2 + coef_[k];
      b2 = b1;
      b1 = b0;
    }
    return y * b1 - b2 + coef_[0];
  }

  // --- surrogate introspection (batch engine, src/batch) ---
  // Raw Clenshaw inputs, so SoA kernels can evaluate the identical
  // recurrence on coefficient arrays without touching this class.
  [[nodiscard]] const std::vector<double>& coefficients() const { return coef_; }
  [[nodiscard]] double mid() const { return mid_; }
  [[nodiscard]] double inv_half() const { return inv_half_; }

  [[nodiscard]] bool valid() const { return !coef_.empty(); }
  [[nodiscard]] double lo() const { return mid_ - half_; }
  [[nodiscard]] double hi() const { return mid_ + half_; }

 private:
  std::vector<double> coef_;
  double mid_ = 0.0;
  double half_ = 1.0;
  double inv_half_ = 1.0;
};

/// Power ratio to decibels: 10*log10(ratio). `ratio` must be > 0.
[[nodiscard]] double db_from_power_ratio(double ratio);

/// Amplitude ratio to decibels: 20*log10(ratio). `ratio` must be > 0.
[[nodiscard]] double db_from_amplitude_ratio(double ratio);

/// Decibels to power ratio: 10^(db/10).
[[nodiscard]] double power_ratio_from_db(double db);

/// Decibels to amplitude ratio: 10^(db/20).
[[nodiscard]] double amplitude_ratio_from_db(double db);

/// SNDR in dB to effective number of bits: (SNDR - 1.76) / 6.02.
[[nodiscard]] double enob_from_sndr_db(double sndr_db);

/// ENOB to the SNDR of an ideal converter of that resolution.
[[nodiscard]] double sndr_db_from_enob(double enob);

/// True when n is a power of two (n >= 1).
[[nodiscard]] bool is_power_of_two(std::size_t n);

/// Arithmetic mean. Empty input returns 0.
[[nodiscard]] double mean(std::span<const double> x);

/// Population variance (divide by N). Empty input returns 0.
[[nodiscard]] double variance(std::span<const double> x);

/// Population standard deviation.
[[nodiscard]] double std_dev(std::span<const double> x);

/// Root-mean-square value. Empty input returns 0.
[[nodiscard]] double rms(std::span<const double> x);

/// Minimum and maximum of a non-empty span.
struct MinMax {
  double min = 0.0;
  double max = 0.0;
};
[[nodiscard]] MinMax min_max(std::span<const double> x);

/// Least-squares straight-line fit y = slope*x + intercept.
/// Requires at least two points.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination R^2 of the fit.
  double r_squared = 0.0;
};
[[nodiscard]] LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Clamp x into [lo, hi].
[[nodiscard]] constexpr double clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// Greatest common divisor (for coherent-sampling bin selection).
[[nodiscard]] std::size_t gcd(std::size_t a, std::size_t b);

/// Linearly spaced vector of n points from lo to hi inclusive (n >= 2),
/// or {lo} when n == 1.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t n);

/// Logarithmically spaced vector of n points from lo to hi inclusive.
/// Requires lo > 0 and hi > 0.
[[nodiscard]] std::vector<double> logspace(double lo, double hi, std::size_t n);

/// Combine independent noise/distortion contributions expressed in dBc into a
/// single dBc figure (power sum). Example: sum_db_powers({-67.0, -70.0}).
[[nodiscard]] double sum_db_powers(std::span<const double> levels_db);

}  // namespace adc::common
