/// \file math_util.hpp
/// Small numeric helpers shared by the DSP and circuit models.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace adc::common {

/// Power ratio to decibels: 10*log10(ratio). `ratio` must be > 0.
[[nodiscard]] double db_from_power_ratio(double ratio);

/// Amplitude ratio to decibels: 20*log10(ratio). `ratio` must be > 0.
[[nodiscard]] double db_from_amplitude_ratio(double ratio);

/// Decibels to power ratio: 10^(db/10).
[[nodiscard]] double power_ratio_from_db(double db);

/// Decibels to amplitude ratio: 10^(db/20).
[[nodiscard]] double amplitude_ratio_from_db(double db);

/// SNDR in dB to effective number of bits: (SNDR - 1.76) / 6.02.
[[nodiscard]] double enob_from_sndr_db(double sndr_db);

/// ENOB to the SNDR of an ideal converter of that resolution.
[[nodiscard]] double sndr_db_from_enob(double enob);

/// True when n is a power of two (n >= 1).
[[nodiscard]] bool is_power_of_two(std::size_t n);

/// Arithmetic mean. Empty input returns 0.
[[nodiscard]] double mean(std::span<const double> x);

/// Population variance (divide by N). Empty input returns 0.
[[nodiscard]] double variance(std::span<const double> x);

/// Population standard deviation.
[[nodiscard]] double std_dev(std::span<const double> x);

/// Root-mean-square value. Empty input returns 0.
[[nodiscard]] double rms(std::span<const double> x);

/// Minimum and maximum of a non-empty span.
struct MinMax {
  double min = 0.0;
  double max = 0.0;
};
[[nodiscard]] MinMax min_max(std::span<const double> x);

/// Least-squares straight-line fit y = slope*x + intercept.
/// Requires at least two points.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination R^2 of the fit.
  double r_squared = 0.0;
};
[[nodiscard]] LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Clamp x into [lo, hi].
[[nodiscard]] constexpr double clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// Greatest common divisor (for coherent-sampling bin selection).
[[nodiscard]] std::size_t gcd(std::size_t a, std::size_t b);

/// Linearly spaced vector of n points from lo to hi inclusive (n >= 2),
/// or {lo} when n == 1.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t n);

/// Logarithmically spaced vector of n points from lo to hi inclusive.
/// Requires lo > 0 and hi > 0.
[[nodiscard]] std::vector<double> logspace(double lo, double hi, std::size_t n);

/// Combine independent noise/distortion contributions expressed in dBc into a
/// single dBc figure (power sum). Example: sum_db_powers({-67.0, -70.0}).
[[nodiscard]] double sum_db_powers(std::span<const double> levels_db);

}  // namespace adc::common
