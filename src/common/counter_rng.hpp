/// \file counter_rng.hpp
/// Counter-based random numbers for the `fast` fidelity profile.
///
/// The exact-profile `Rng` facade is *sequential*: draw k+1 cannot be
/// computed before draw k (Mersenne state stepping, the polar method's
/// data-dependent rejection loop). That pins roughly half the per-sample
/// cost of the nominal conversion kernel. The `fast` profile instead derives
/// every deviate from its *position*: a Philox4x32-10 block cipher maps
/// `(key, stream, counter)` to 128 random bits, and a branch-free Box–Muller
/// transform turns each block into two standard normals. Draw N is a pure
/// function of N — draws can be generated in any order, in batches, in
/// vectorizable straight-line loops, and regenerating any sub-range is
/// bit-identical at any thread count.
///
/// Philox4x32-10 is the counter-based generator of Salmon et al. (SC'11,
/// "Parallel random numbers: as easy as 1, 2, 3"); it passes BigCrush and is
/// the standard choice for GPU/SIMD Monte-Carlo. The implementation below is
/// the reference 10-round network with the published round and Weyl
/// constants.
#pragma once

#include <cstdint>
#include <span>

#include "common/fastmath.hpp"

namespace adc::common {

/// 128 random bits: one Philox output block.
struct PhiloxBlock {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
};

/// Philox4x32-10: encrypt the 128-bit counter (`counter`, `stream`) under
/// the 64-bit `key`. Distinct (key, stream, counter) triples give
/// independent blocks; nearby counters are as independent as distant ones.
[[nodiscard]] ADC_ALWAYS_INLINE inline PhiloxBlock philox4x32(std::uint64_t counter, std::uint64_t stream,
                                            std::uint64_t key) {
  constexpr std::uint32_t kMul0 = 0xD2511F53u;
  constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
  constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
  constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1
  std::uint32_t c0 = static_cast<std::uint32_t>(counter);
  std::uint32_t c1 = static_cast<std::uint32_t>(counter >> 32);
  std::uint32_t c2 = static_cast<std::uint32_t>(stream);
  std::uint32_t c3 = static_cast<std::uint32_t>(stream >> 32);
  std::uint32_t k0 = static_cast<std::uint32_t>(key);
  std::uint32_t k1 = static_cast<std::uint32_t>(key >> 32);
  for (int round = 0; round < 10; ++round) {
    const std::uint64_t p0 = static_cast<std::uint64_t>(kMul0) * c0;
    const std::uint64_t p1 = static_cast<std::uint64_t>(kMul1) * c2;
    const std::uint32_t hi0 = static_cast<std::uint32_t>(p0 >> 32);
    const std::uint32_t lo0 = static_cast<std::uint32_t>(p0);
    const std::uint32_t hi1 = static_cast<std::uint32_t>(p1 >> 32);
    const std::uint32_t lo1 = static_cast<std::uint32_t>(p1);
    c0 = hi1 ^ c1 ^ k0;
    c1 = lo1;
    c2 = hi0 ^ c3 ^ k1;
    c3 = lo0;
    k0 += kWeyl0;
    k1 += kWeyl1;
  }
  PhiloxBlock out;
  out.lo = static_cast<std::uint64_t>(c0) | (static_cast<std::uint64_t>(c1) << 32);
  out.hi = static_cast<std::uint64_t>(c2) | (static_cast<std::uint64_t>(c3) << 32);
  return out;
}

/// Two independent standard normals from one block: branch-free Box–Muller.
/// u1 lands in (0, 1] (so the log argument is a positive normal and a
/// full-entropy u1 never repeats the polar method's rejection), u2 in
/// [0, 1); the largest representable deviate is ~8.57 sigma.
///
/// Fast contract v2 (kFastContractVersion in common/fidelity.hpp): the
/// radius uses fastmath::sqrt_fast — together with the division-free
/// log_fast this makes the whole draw multiply/add-only, which is what lets
/// the batch engine's SoA fill run off the divider port. The deviate values
/// differ from contract v1 at the last few ulp; all v2 golden vectors are
/// pinned in tests/test_fast_rng.cpp and tests/test_golden_codes_fast.cpp.
ADC_ALWAYS_INLINE inline void philox_normal_pair(const PhiloxBlock& block, double& z0, double& z1) {
  const double u1 = (static_cast<double>(block.lo >> 11) + 1.0) * 0x1p-53;
  const double u2 = static_cast<double>(block.hi >> 11) * 0x1p-53;
  const double r = fastmath::sqrt_fast(-2.0 * fastmath::log_fast(u1));
  double s = 0.0;
  double c = 0.0;
  fastmath::sincos_fast(fastmath::kTwoPi * u2, s, c);
  z0 = r * c;
  z1 = r * s;
}

/// The standard normal at position `index` of stream (`key`, `stream`):
/// deviates are numbered so that block k = index/2 carries deviates 2k
/// (cos lane) and 2k+1 (sin lane).
[[nodiscard]] ADC_ALWAYS_INLINE inline double philox_normal_at(std::uint64_t key, std::uint64_t stream,
                                             std::uint64_t index) {
  double z0 = 0.0;
  double z1 = 0.0;
  philox_normal_pair(philox4x32(index >> 1, stream, key), z0, z1);
  return (index & 1u) == 0 ? z0 : z1;
}

/// Fill `out[i] = philox_normal_at(key, stream, first + i)` block-wise (the
/// batched straight-line loop the noise planes are generated with).
void philox_normal_fill(std::uint64_t key, std::uint64_t stream, std::uint64_t first,
                        std::span<double> out);

}  // namespace adc::common
