/// \file fidelity.hpp
/// The fidelity-profile axis of the simulator.
///
/// A profile names a *determinism contract*, not an accuracy knob:
///
///  * `kExact` — the original bit-identity contract. Every floating-point
///    operation and every RNG draw in program order is observable behavior;
///    `tests/test_golden_codes.cpp` pins the exact output codes of the
///    characterized nominal die. Noise draws come sequentially from the
///    Marsaglia-polar `Rng` facade (bit-identical to libstdc++'s
///    `std::normal_distribution`), and transcendentals are glibc libm.
///
///  * `kFast` — an equally deterministic contract with its *own* golden
///    vectors (`tests/test_golden_codes_fast.cpp`). Per-sample noise draws
///    come from a counter-based Philox generator through a branch-free
///    Box–Muller transform, pre-generated as contiguous *noise planes*
///    indexed by `(sample, draw_slot)` — determinism is positional, not
///    sequential — and the hot transcendentals route through the
///    SIMD-friendly polynomial kernels of `common/fastmath.hpp`.
///
/// Construction-time Monte-Carlo draws (capacitor mismatch, comparator
/// offsets, reference level errors, ...) always use the exact `Rng` facade
/// in both profiles, so a `(design, seed)` pair fabricates the *same die*
/// under either profile; only the per-sample noise stream and the rounding
/// of the per-sample math differ. That is what makes the cross-profile
/// physics-parity test (ENOB/SNDR/THD/DNL/INL within measurement noise)
/// meaningful.
///
/// See docs/PERFORMANCE.md for the two-contract table.
#pragma once

#include <cstdint>
#include <string_view>

namespace adc::common {

/// Which determinism contract the per-sample simulation kernel honors.
enum class FidelityProfile {
  kExact,  ///< bit-identity contract (sequential polar RNG, libm)
  kFast,   ///< positional-determinism contract (counter RNG, fastmath)
};

/// Version of the *fast*-profile determinism contract: the pinned draw math
/// behind every `kFast` deviate and transcendental. Bump whenever the fast
/// kernels change their output bits (the exact profile has no version — its
/// contract *is* bit-identity with the original implementation).
///
/// The scenario engine folds this constant into the golden-code fingerprint
/// (src/scenario/hash.cpp), so a contract bump retires every cached fast
/// result atomically: entries written under different contract versions can
/// never cross-pollinate, even if the regenerated codes happened to collide.
///
/// History:
///   v1 — PR 5 contract: Philox4x32-10 + branch-free Box–Muller with
///        artanh-series log ((m-1)/(m+1) quotient) and std::sqrt radius.
///   v2 — division-free draw math: minimax ln(1+t) polynomial on the
///        mantissa split, rsqrt-seeded Newton–Raphson radius. Same positional
///        indexing (key, epoch, sample, slot); deviates differ at the last
///        few ulp.
inline constexpr std::uint64_t kFastContractVersion = 2;

/// Spelling used in scenario specs, reports and cache keys.
[[nodiscard]] constexpr std::string_view to_string(FidelityProfile profile) {
  return profile == FidelityProfile::kFast ? "fast" : "exact";
}

}  // namespace adc::common
