/// \file counter_rng_tile.hpp
/// The tiled structure-of-arrays body of `philox_normal_fill`, shared between
/// the baseline translation unit (counter_rng.cpp) and the batch engine's
/// per-ISA kernels (src/batch/), which re-compile it with AVX2 / AVX-512
/// code generation enabled.
///
/// Everything here is ADC_ALWAYS_INLINE: these bodies must never be emitted
/// as out-of-line COMDAT copies from a wide-ISA translation unit (the linker
/// could pick such a copy for baseline callers and crash SSE2 hosts). The
/// arithmetic is element-wise IEEE with no contraction-sensitive idioms, so
/// every ISA tier produces bit-identical output — the positional-determinism
/// contract the batch engine's parity tests pin.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/counter_rng.hpp"
#include "common/fastmath.hpp"

namespace adc::common::tile {

/// Blocks per tile of the structure-of-arrays bulk loop. 128 blocks = 256
/// deviates; the scratch arrays stay inside L1 while each pass is long
/// enough for the auto-vectorizer.
inline constexpr std::size_t kTileBlocks = 128;

/// Philox4x32-10 over a tile of consecutive counters, round-major: the four
/// cipher words live in structure-of-arrays form and each round is a flat
/// loop across the tile. Calling philox4x32() per block keeps the 10-round
/// dependency chain inside one iteration and compiles scalar — round-major
/// is ~1.5x faster and bit-identical (same round network, same constants;
/// the per-round key is a scalar loop invariant).
///
/// The cipher words are held as 32-bit values in *64-bit* lanes (each array
/// element stays < 2^32 by construction: every store is either a masked low
/// half or a 32-bit shift-down of a 64-bit product). A u32-lane layout packs
/// twice as many words per vector, but the widening 32x32->64 multiply then
/// forces the vectorizer to emit zero-extends, lane extracts and cross-lane
/// compaction permutes around every product; in u64 lanes the same
/// multiply, shift, mask and xor are all straight vertical ops. Measured on
/// the dev box the u64-lane form is ~7% faster end-to-end, and it avoids
/// the shuffle-port pressure entirely on microarchitectures where 64-bit
/// lane multiplies are cheap.
ADC_ALWAYS_INLINE inline void philox4x32_tile(std::uint64_t block, std::uint64_t stream,
                                              std::uint64_t key, std::size_t tile,
                                              std::uint64_t* lo, std::uint64_t* hi) {
  constexpr std::uint64_t kMask32 = 0xffffffffull;
  constexpr std::uint64_t kMul0 = 0xD2511F53u;
  constexpr std::uint64_t kMul1 = 0xCD9E8D57u;
  constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
  constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1
  std::uint64_t c0[kTileBlocks];
  std::uint64_t c1[kTileBlocks];
  std::uint64_t c2[kTileBlocks];
  std::uint64_t c3[kTileBlocks];
  const std::uint64_t s_lo = stream & kMask32;
  const std::uint64_t s_hi = stream >> 32;
  for (std::size_t b = 0; b < tile; ++b) {
    const std::uint64_t ctr = block + b;
    c0[b] = ctr & kMask32;
    c1[b] = ctr >> 32;
    c2[b] = s_lo;
    c3[b] = s_hi;
  }
  std::uint32_t k0 = static_cast<std::uint32_t>(key);
  std::uint32_t k1 = static_cast<std::uint32_t>(key >> 32);
  for (int round = 0; round < 10; ++round) {
    const std::uint64_t rk0 = k0;
    const std::uint64_t rk1 = k1;
    for (std::size_t b = 0; b < tile; ++b) {
      // The & kMask32 is a no-op on the value (the words are 32-bit clean)
      // but tells the vectorizer the product needs no 64-bit-high correction.
      const std::uint64_t p0 = kMul0 * (c0[b] & kMask32);
      const std::uint64_t p1 = kMul1 * (c2[b] & kMask32);
      c0[b] = (p1 >> 32) ^ c1[b] ^ rk0;
      c1[b] = p1 & kMask32;
      c2[b] = (p0 >> 32) ^ c3[b] ^ rk1;
      c3[b] = p0 & kMask32;
    }
    k0 += kWeyl0;
    k1 += kWeyl1;
  }
  for (std::size_t b = 0; b < tile; ++b) {
    lo[b] = c0[b] | (c1[b] << 32);
    hi[b] = c2[b] | (c3[b] << 32);
  }
}

/// `out[i] = philox_normal_at(key, stream, first + i)` for i in [0, n), on
/// raw pointers (no std::span: the batch TUs must stay free of template
/// instantiations that could leak wide-ISA COMDAT bodies). Identical
/// algorithm and bits as the public `philox_normal_fill`.
ADC_ALWAYS_INLINE inline void philox_normal_fill_ptr(std::uint64_t key, std::uint64_t stream,
                                                     std::uint64_t first, double* out,
                                                     std::size_t n) {
  std::size_t i = 0;
  if (n == 0) return;
  // Leading odd lane: position `first` is the sin lane of block first/2.
  if ((first & 1u) != 0) {
    out[i++] = philox_normal_at(key, stream, first);
  }
  // Whole blocks, tiled structure-of-arrays: separate passes for the integer
  // cipher, the radius, and the angle keep each loop body uniform (no mixed
  // int/double dependency chains), so the vectorizer can work on every pass.
  // Elementwise the operations are exactly philox_normal_pair's, so the bulk
  // loop is bit-identical to philox_normal_at at every position.
  std::uint64_t block = (first + i) >> 1;
  std::uint64_t lo[kTileBlocks];
  std::uint64_t hi[kTileBlocks];
  double u1[kTileBlocks];
  double radius[kTileBlocks];
  double angle[kTileBlocks];
  while (n - i >= 2) {
    const std::size_t tile = ((n - i) / 2 < kTileBlocks) ? (n - i) / 2 : kTileBlocks;
    philox4x32_tile(block, stream, key, tile, lo, hi);
    for (std::size_t b = 0; b < tile; ++b) {
      // The 53-bit uniforms converted as hi22*2^31 + lo31: two *signed*
      // 32-bit int->double conversions (the only width SSE2 can vectorize)
      // whose halves are non-negative and whose sum is an exact integer
      // below 2^53 — bit-identical to the direct 64-bit conversion in
      // philox_normal_pair.
      const std::uint64_t b1 = lo[b] >> 11;
      const std::uint64_t b2 = hi[b] >> 11;
      const double d1 =
          static_cast<double>(static_cast<std::int32_t>(b1 >> 31)) * 0x1p31 +
          static_cast<double>(static_cast<std::int32_t>(b1 & 0x7fffffffu));
      const double d2 =
          static_cast<double>(static_cast<std::int32_t>(b2 >> 31)) * 0x1p31 +
          static_cast<double>(static_cast<std::int32_t>(b2 & 0x7fffffffu));
      u1[b] = (d1 + 1.0) * 0x1p-53;
      angle[b] = fastmath::kTwoPi * (d2 * 0x1p-53);
    }
    // Radius pass, fast contract v2: division-free log_fast + rsqrt-seeded
    // sqrt_fast, so the whole pass is multiplies and adds — under AVX-512
    // this loop issues zero vdivpd/vsqrtpd (the divider-port wall that
    // capped contract v1 at ~2x; see docs/PERFORMANCE.md).
    for (std::size_t b = 0; b < tile; ++b) {
      radius[b] = fastmath::sqrt_fast(-2.0 * fastmath::log_fast(u1[b]));
    }
    for (std::size_t b = 0; b < tile; ++b) {
      double s = 0.0;
      double c = 0.0;
      fastmath::sincos_fast(angle[b], s, c);
      out[i + 2 * b] = radius[b] * c;
      out[i + 2 * b + 1] = radius[b] * s;
    }
    block += tile;
    i += 2 * tile;
  }
  // Trailing even lane.
  if (i < n) {
    out[i] = philox_normal_at(key, stream, first + i);
  }
}

}  // namespace adc::common::tile
