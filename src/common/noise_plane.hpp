/// \file noise_plane.hpp
/// Capture-batched noise draws for the `fast` fidelity profile.
///
/// Under the `fast` contract a conversion kernel does not draw noise one
/// deviate at a time; before the sample loop it generates a contiguous
/// *noise plane* — `count` rows of `slots_per_sample` standard normals —
/// and each sample reads its row by pointer. The deviate in
/// `(sample, slot)` is `philox_normal_at(key, epoch, sample·slots + slot)`:
/// a pure function of position, so the plane is bit-identical whether it is
/// generated in one shot, in chunks, or re-generated on another thread
/// count, and a model that skips a slot (e.g. the low comparator when the
/// high one already decided) does not shift any other model's draws.
///
/// `epoch` distinguishes captures: the converter bumps it once per capture
/// so repeated captures see fresh noise, mirroring how the sequential
/// exact-profile stream advances across calls.
///
/// The deviate *values* are owned by the fast determinism contract
/// (`kFastContractVersion` in common/fidelity.hpp): positional indexing is
/// stable across contract versions, but the pinned draw math — and hence
/// every bit of the plane — changes when the contract version bumps, and
/// the scenario cache keys on that version.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/contracts.hpp"
#include "common/counter_rng.hpp"

namespace adc::common {

/// A (sample × slot) matrix of standard-normal deviates with positional
/// determinism. Reusable: `generate` only grows the backing buffer.
class NoisePlane {
 public:
  NoisePlane() = default;

  NoisePlane(std::uint64_t key, std::uint32_t slots_per_sample)
      : key_(key), slots_(slots_per_sample) {}

  /// Materialize rows [first_sample, first_sample + count) of capture
  /// `epoch`. Any previous contents are replaced.
  void generate(std::uint64_t epoch, std::uint64_t first_sample, std::size_t count) {
    epoch_ = epoch;
    first_sample_ = first_sample;
    count_ = count;
    buffer_.resize(count * slots_);
    philox_normal_fill(key_, epoch, first_sample * slots_, buffer_);
  }

  /// Row of `slots_per_sample()` deviates for `sample` (must lie in the
  /// generated window).
  [[nodiscard]] const double* row(std::uint64_t sample) const {
    ADC_EXPECT(sample >= first_sample_ && sample - first_sample_ < count_,
               "NoisePlane::row: sample outside the generated window");
    return buffer_.data() + (sample - first_sample_) * slots_;
  }

  [[nodiscard]] std::uint32_t slots_per_sample() const { return slots_; }
  [[nodiscard]] std::uint64_t key() const { return key_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

 private:
  std::uint64_t key_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t first_sample_ = 0;
  std::size_t count_ = 0;
  std::uint32_t slots_ = 0;
  std::vector<double> buffer_;
};

}  // namespace adc::common
