/// \file units.hpp
/// User-defined literals for the physical units that appear in the models.
///
/// All quantities in the library are plain `double` in SI base units
/// (volts, amperes, seconds, hertz, farads, ohms, watts, square metres).
/// These literals exist so that configuration code reads like a datasheet:
///
///     cfg.sampling_cap   = 550.0_fF;
///     cfg.conversion_rate = 110.0_MHz;
///     cfg.jitter_rms      = 0.45_ps;
#pragma once

namespace adc::common::literals {

// --- time ---
constexpr double operator""_s(long double v) { return static_cast<double>(v); }
constexpr double operator""_ms(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_us(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_ns(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_ps(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_fs(long double v) { return static_cast<double>(v) * 1e-15; }

// --- frequency ---
constexpr double operator""_Hz(long double v) { return static_cast<double>(v); }
constexpr double operator""_kHz(long double v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_MHz(long double v) { return static_cast<double>(v) * 1e6; }
constexpr double operator""_GHz(long double v) { return static_cast<double>(v) * 1e9; }
/// Conversion-rate literal: mega-samples per second (equals MHz numerically).
constexpr double operator""_MSps(long double v) { return static_cast<double>(v) * 1e6; }

// --- voltage ---
constexpr double operator""_V(long double v) { return static_cast<double>(v); }
constexpr double operator""_mV(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_uV(long double v) { return static_cast<double>(v) * 1e-6; }

// --- current ---
constexpr double operator""_A(long double v) { return static_cast<double>(v); }
constexpr double operator""_mA(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_uA(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nA(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_pA(long double v) { return static_cast<double>(v) * 1e-12; }

// --- capacitance ---
constexpr double operator""_F(long double v) { return static_cast<double>(v); }
constexpr double operator""_uF(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nF(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_pF(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_fF(long double v) { return static_cast<double>(v) * 1e-15; }

// --- resistance ---
constexpr double operator""_Ohm(long double v) { return static_cast<double>(v); }
constexpr double operator""_kOhm(long double v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_MOhm(long double v) { return static_cast<double>(v) * 1e6; }

// --- power ---
constexpr double operator""_W(long double v) { return static_cast<double>(v); }
constexpr double operator""_mW(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_uW(long double v) { return static_cast<double>(v) * 1e-6; }

// --- charge ---
constexpr double operator""_C(long double v) { return static_cast<double>(v); }
constexpr double operator""_nC(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_pC(long double v) { return static_cast<double>(v) * 1e-12; }

// --- energy ---
constexpr double operator""_J(long double v) { return static_cast<double>(v); }
constexpr double operator""_nJ(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_pJ(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_fJ(long double v) { return static_cast<double>(v) * 1e-15; }

// --- area ---
constexpr double operator""_mm2(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_um2(long double v) { return static_cast<double>(v) * 1e-12; }

}  // namespace adc::common::literals
