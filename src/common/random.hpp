/// \file random.hpp
/// Deterministic random-number façade used by every stochastic model.
///
/// All Monte-Carlo behaviour in the library (mismatch draws, thermal noise,
/// jitter, comparator noise) flows through `Rng` so that a single seed makes a
/// whole converter instance reproducible. Independent sub-streams are derived
/// with `child()`, which hash-splits the parent seed: two models never share a
/// stream, so adding noise draws to one model does not perturb another.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <span>
#include <string_view>
#include <vector>

namespace adc::common {

/// Seeded random-number generator with named sub-stream derivation.
class Rng {
 public:
  /// Construct from a 64-bit seed.
  explicit Rng(std::uint64_t seed);

  /// Derive an independent child generator. The child seed is a hash of the
  /// parent seed, the tag and the index, so `child("stage", 3)` is stable
  /// across runs and distinct from `child("stage", 4)` and `child("cmp", 3)`.
  [[nodiscard]] Rng child(std::string_view tag, std::uint64_t index = 0) const;

  /// Standard-normal draw scaled by `sigma` (mean zero).
  ///
  /// Implemented inline as the Marsaglia polar method with the exact
  /// floating-point operation sequence of libstdc++'s
  /// `std::normal_distribution<double>` (including its spare-value caching
  /// and the `generate_canonical` clamp), so the produced stream is
  /// bit-identical to the `std::normal_distribution` this class used through
  /// PR 2 — pinned by a regression test. Inlining the draw removes the
  /// out-of-line distribution call from the conversion hot path, where ~32
  /// draws per sample make the RNG roughly half the per-sample cost.
  double gaussian(double sigma) { return sigma * next_normal(); }

  /// Uniform draw in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli draw with probability `p` of true.
  bool bernoulli(double p);

  /// Uniform integer in [0, n).
  std::uint64_t index(std::uint64_t n);

  /// Fill `out` with independent gaussian(sigma) draws, no allocation.
  /// Buffer-reuse form of `gaussian_vector` for batched callers.
  void gaussian_fill(std::span<double> out, double sigma);

  /// A vector of n independent gaussian(sigma) draws.
  [[nodiscard]] std::vector<double> gaussian_vector(std::size_t n, double sigma);

  /// The seed this generator was constructed with.
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  /// One `std::generate_canonical<double, 53>` draw from mt19937_64: with a
  /// 64-bit engine range the template's loop collapses to a single engine
  /// word scaled by 2^-64 (an exact power-of-two scaling, so multiplication
  /// matches the library's division bit for bit), plus the clamp that keeps
  /// the rounded-up top-of-range values below 1.0.
  double canonical() {
    const double r = static_cast<double>(engine_()) * 0x1p-64;
    return r >= 1.0 ? 0x1.fffffffffffffp-1 : r;
  }

  /// Standard-normal draw: Marsaglia polar, caching the spare deviate
  /// exactly like std::normal_distribution. The trailing `+ 0.0` reproduces
  /// the distribution's affine step (`ret * stddev + mean` with stddev 1,
  /// mean 0), which maps -0.0 to +0.0 in the r2 == 1.0 corner.
  double next_normal() {
    if (saved_available_) {
      saved_available_ = false;
      return saved_ + 0.0;
    }
    double x = 0.0;
    double y = 0.0;
    double r2 = 0.0;
    do {
      x = 2.0 * canonical() - 1.0;
      y = 2.0 * canonical() - 1.0;
      r2 = x * x + y * y;
      // r2 is a sum of squares, so `<= 0.0` is exactly the library's
      // `== 0.0` rejection without tripping -Wfloat-equal.
    } while (r2 > 1.0 || r2 <= 0.0);
    const double mult = std::sqrt(-2.0 * std::log(r2) / r2);
    saved_ = x * mult;
    saved_available_ = true;
    return y * mult + 0.0;
  }

  std::uint64_t seed_;
  std::mt19937_64 engine_;
  double saved_ = 0.0;
  bool saved_available_ = false;
};

}  // namespace adc::common
