/// \file random.hpp
/// Deterministic random-number façade used by every stochastic model.
///
/// All Monte-Carlo behaviour in the library (mismatch draws, thermal noise,
/// jitter, comparator noise) flows through `Rng` so that a single seed makes a
/// whole converter instance reproducible. Independent sub-streams are derived
/// with `child()`, which hash-splits the parent seed: two models never share a
/// stream, so adding noise draws to one model does not perturb another.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace adc::common {

/// Seeded random-number generator with named sub-stream derivation.
class Rng {
 public:
  /// Construct from a 64-bit seed.
  explicit Rng(std::uint64_t seed);

  /// Derive an independent child generator. The child seed is a hash of the
  /// parent seed, the tag and the index, so `child("stage", 3)` is stable
  /// across runs and distinct from `child("stage", 4)` and `child("cmp", 3)`.
  [[nodiscard]] Rng child(std::string_view tag, std::uint64_t index = 0) const;

  /// Standard-normal draw scaled by `sigma` (mean zero).
  double gaussian(double sigma);

  /// Uniform draw in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli draw with probability `p` of true.
  bool bernoulli(double p);

  /// Uniform integer in [0, n).
  std::uint64_t index(std::uint64_t n);

  /// A vector of n independent gaussian(sigma) draws.
  [[nodiscard]] std::vector<double> gaussian_vector(std::size_t n, double sigma);

  /// The seed this generator was constructed with.
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace adc::common
