/// \file json.hpp
/// Strict minimal JSON: a value tree, an RFC 8259 parser and deterministic
/// writers. No third-party dependencies.
///
/// This is the serialization substrate of the scenario engine and the run
/// manifests: scenario specs are *parsed* from disk, results and manifests
/// are *emitted*, and the content-addressed cache *hashes* the canonical
/// form. Three properties matter more than generality:
///
///   * **Strictness** — no comments, no trailing commas, no duplicate object
///     keys, single top-level value. A malformed spec fails loudly with a
///     `line:column` diagnostic instead of silently mis-hashing.
///   * **Exact number round-trip** — doubles are written with the shortest
///     decimal form that parses back bit-identically (15..17 significant
///     digits), and integers keep their integer spelling. `parse(dump(v))`
///     reproduces `v` exactly, which is what makes cached results
///     bit-identical to freshly computed ones.
///   * **Canonical form** — `canonical()` serializes with object keys sorted
///     and no whitespace, so semantically equal specs hash equally no matter
///     how their authors ordered the keys.
///
/// Objects preserve insertion order (manifests read naturally); only the
/// canonical writer sorts.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace adc::common::json {

class JsonValue;

/// One key/value pair of an object. A struct (not std::pair) so the
/// containing vector can name an incomplete element type.
struct JsonMember;

/// A JSON document node: null, bool, number (integer or double), string,
/// array, or object. Numbers parsed without a fraction or exponent keep
/// integer storage so counters survive a round trip textually unchanged.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::vector<JsonMember>;

  enum class Type { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  // Implicit construction from the scalar types is the point of the value
  // tree (document literals read naturally), hence the NOLINTs.
  JsonValue() noexcept : type_(Type::kNull), int_(0) {}
  JsonValue(std::nullptr_t) noexcept : type_(Type::kNull), int_(0) {}          // NOLINT
  JsonValue(bool value) noexcept : type_(Type::kBool), bool_(value) {}         // NOLINT
  JsonValue(std::int64_t value) noexcept : type_(Type::kInt), int_(value) {}  // NOLINT
  // Unsigned values that fit int64 normalize to int storage, so a value's
  // storage type depends only on the number itself, never on which overload
  // built it — parse(dump(v)) then reproduces v exactly.
  JsonValue(std::uint64_t value) noexcept : type_(Type::kUint), uint_(value) {  // NOLINT
    if ((value >> 63) == 0) {
      type_ = Type::kInt;
      int_ = static_cast<std::int64_t>(value);
    }
  }
  JsonValue(int value) noexcept : JsonValue(static_cast<std::int64_t>(value)) {}  // NOLINT
  JsonValue(double value) noexcept : type_(Type::kDouble), double_(value) {}   // NOLINT
  JsonValue(std::string value) : type_(Type::kString), int_(0), string_(std::move(value)) {}  // NOLINT
  JsonValue(const char* value) : type_(Type::kString), int_(0), string_(value) {}  // NOLINT

  /// Empty aggregates (distinct from null).
  [[nodiscard]] static JsonValue array();
  [[nodiscard]] static JsonValue object();

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kUint || type_ == Type::kDouble;
  }
  [[nodiscard]] bool is_integer() const { return type_ == Type::kInt || type_ == Type::kUint; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  /// Checked accessors; each throws ConfigError naming the expected type on
  /// mismatch. `as_double()` accepts any number; `as_int64()`/`as_uint64()`
  /// accept integer storage within range.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int64() const;
  [[nodiscard]] std::uint64_t as_uint64() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& items() const;
  [[nodiscard]] const Object& members() const;

  /// Array append (value must be an array).
  void push_back(JsonValue value);

  /// Object member lookup; nullptr when absent (value must be an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view key) const { return find(key) != nullptr; }
  /// Insert or replace, preserving first-insertion order (value must be an
  /// object).
  void set(std::string_view key, JsonValue value);
  /// Remove a member if present; returns whether it was (value must be an
  /// object).
  bool erase(std::string_view key);

  /// Deep structural equality. Doubles compare bitwise (NaN never occurs in
  /// documents: the writer rejects non-finite values), so round-trip tests
  /// can assert exact reproduction including signed zero.
  [[nodiscard]] bool equals(const JsonValue& other) const;

 private:
  Type type_;
  union {
    bool bool_;
    std::int64_t int_;
    std::uint64_t uint_;
    double double_;
  };
  std::string string_;
  Array array_;
  Object object_;
};

struct JsonMember {
  std::string key;
  JsonValue value;
};

inline bool operator==(const JsonValue& a, const JsonValue& b) { return a.equals(b); }
inline bool operator!=(const JsonValue& a, const JsonValue& b) { return !a.equals(b); }

/// Parse one strict JSON document. Throws ConfigError with a
/// "json parse error at line L, column C: ..." message on any violation
/// (trailing garbage, duplicate keys, bad escapes, nesting deeper than 200).
[[nodiscard]] JsonValue parse(std::string_view text);

/// Pretty-print with 2-space indentation and a trailing newline — the
/// on-disk format of manifests, reports and cache entries.
[[nodiscard]] std::string dump(const JsonValue& value);

/// Single-line form with no whitespace.
[[nodiscard]] std::string dump_compact(const JsonValue& value);

/// Canonical form: compact with object keys sorted bytewise at every level.
/// Two documents that differ only in key order canonicalize identically —
/// the input of the scenario hasher.
[[nodiscard]] std::string canonical(const JsonValue& value);

/// Render one double exactly as the writers do: the shortest decimal
/// spelling (15..17 significant digits) that strtod's back bit-identically.
/// Throws ConfigError for non-finite values (JSON cannot represent them).
[[nodiscard]] std::string format_double(double value);

}  // namespace adc::common::json
