/// \file isa_dispatch.hpp
/// Runtime ISA selection for the batch conversion kernels.
///
/// The batch engine compiles its structure-of-arrays kernel three times —
/// baseline SSE2 (the plain x86-64 ABI floor), AVX2, and AVX-512 — and picks
/// one implementation per process at startup from CPUID. Every tier computes
/// bit-identical results (the kernels are element-wise IEEE with contraction
/// disabled), so the choice is purely a throughput decision and is safe to
/// override for testing.
///
/// `ADC_BATCH_ISA` (environment) forces a tier by name: `sse2`, `avx2` or
/// `avx512`. Requesting a tier the CPU cannot execute clamps *down* to the
/// best supported one (a CI matrix can export `ADC_BATCH_ISA=avx512`
/// everywhere without crashing SSE2 runners); an unrecognized value throws
/// ConfigError so typos fail loudly instead of silently benchmarking the
/// wrong kernel.
#pragma once

#include <optional>
#include <string_view>

namespace adc::common {

/// Instruction-set tiers the batch kernels are compiled for, ordered weakest
/// to strongest so tiers compare with `<`.
enum class BatchIsa {
  kSse2 = 0,    ///< baseline x86-64 (always available)
  kAvx2 = 1,    ///< 256-bit lanes + FMA-capable hardware (FMA unused: bit-identity)
  kAvx512 = 2,  ///< 512-bit lanes (F/DQ/VL/BW)
};

/// Lower-case tier name (`"sse2"`, `"avx2"`, `"avx512"`).
[[nodiscard]] const char* to_string(BatchIsa isa);

/// Parse a tier name as accepted by `ADC_BATCH_ISA`. Returns nullopt for an
/// unrecognized name (callers decide whether that is fatal).
[[nodiscard]] std::optional<BatchIsa> parse_batch_isa(std::string_view name);

/// Strongest tier this CPU can execute, from CPUID. Pure hardware probe —
/// ignores the environment.
[[nodiscard]] BatchIsa detect_batch_isa();

/// The tier `ADC_BATCH_ISA=name` resolves to on hardware supporting
/// `detected`: the named tier, clamped down to `detected` when the hardware
/// is weaker. Throws ConfigError on an unrecognized name. Exposed separately
/// from the environment lookup so the policy is unit-testable.
[[nodiscard]] BatchIsa resolve_batch_isa(std::string_view name, BatchIsa detected);

/// The process-wide tier: CPUID detection combined with the `ADC_BATCH_ISA`
/// override, evaluated once on first call and cached (the environment is not
/// re-read). This is what the batch engine dispatches on by default.
[[nodiscard]] BatchIsa active_batch_isa();

}  // namespace adc::common
