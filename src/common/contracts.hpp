/// \file contracts.hpp
/// Debug-build contracts for numerical hot paths.
///
/// Configuration errors throw ConfigError (see error.hpp); the sample-rate hot
/// path must never throw. Instead it states its pre/postconditions with these
/// macros, which compile to nothing in Release and abort with location in
/// Debug. The intended failure mode of this library is a crash at the first
/// non-finite intermediate, not a quietly-wrong ENOB three layers later.
///
///     double Opamp::settle(...) {
///       ADC_EXPECT(std::isfinite(target), "settle: non-finite target");
///       ...
///       ADC_ENSURE(std::isfinite(r.output), "settle: non-finite output");
///     }
///
/// ADC_EXPECT states a precondition, ADC_ENSURE a postcondition; both behave
/// identically, the split is documentation. Neither evaluates its condition
/// when contracts are off, so conditions must be side-effect free.
///
/// Contracts are on when NDEBUG is unset (Debug builds) and can be forced
/// either way with -DADC_ENABLE_CONTRACTS=0/1.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <span>

#ifndef ADC_ENABLE_CONTRACTS
#ifdef NDEBUG
#define ADC_ENABLE_CONTRACTS 0
#else
#define ADC_ENABLE_CONTRACTS 1
#endif
#endif

namespace adc::common {

/// Backing for the contract macros: report and abort. Not for direct use.
[[noreturn]] inline void contract_failed(const char* kind, const char* cond, const char* msg,
                                         const char* file, int line) {
  // stderr + abort rather than an exception: a broken numerical invariant
  // means the model state is already garbage, and an abort gives sanitizers
  // and debuggers the exact faulting frame.
  std::fprintf(stderr, "%s:%d: %s(%s) failed: %s\n",  // lint-ok: abort-path diagnostic
               file, line, kind, cond, msg);
  std::abort();
}

/// True when every element of `xs` is finite (no NaN/Inf crept in).
inline bool all_finite(std::span<const double> xs) {
  for (const double x : xs) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

/// True when `x` lies in the closed interval [lo, hi].
inline bool in_closed_range(double x, double lo, double hi) { return x >= lo && x <= hi; }

/// True when `xs` is sorted ascending (non-strict). Used for transfer-curve
/// and sweep-grid postconditions.
inline bool is_nondecreasing(std::span<const double> xs) {
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (xs[i] < xs[i - 1]) return false;
  }
  return true;
}

}  // namespace adc::common

#if ADC_ENABLE_CONTRACTS
#define ADC_CONTRACT_IMPL(kind, cond, msg)                                        \
  do {                                                                            \
    if (!(cond)) ::adc::common::contract_failed(kind, #cond, msg, __FILE__, __LINE__); \
  } while (false)
/// Precondition: must hold on entry. No-op in Release.
#define ADC_EXPECT(cond, msg) ADC_CONTRACT_IMPL("ADC_EXPECT", cond, msg)
/// Postcondition: must hold on exit. No-op in Release.
#define ADC_ENSURE(cond, msg) ADC_CONTRACT_IMPL("ADC_ENSURE", cond, msg)
#else
#define ADC_EXPECT(cond, msg) static_cast<void>(0)
#define ADC_ENSURE(cond, msg) static_cast<void>(0)
#endif
