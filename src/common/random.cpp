#include "common/random.hpp"

namespace adc::common {

namespace {

/// FNV-1a 64-bit hash, used only for seed splitting (not cryptographic).
std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  constexpr std::uint64_t prime = 1099511628211ULL;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= prime;
  }
  return h;
}

constexpr std::uint64_t fnv_offset = 14695981039346656037ULL;

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed), engine_(seed) {}

Rng Rng::child(std::string_view tag, std::uint64_t index) const {
  std::uint64_t h = fnv_offset;
  h = fnv1a(h, &seed_, sizeof(seed_));
  h = fnv1a(h, tag.data(), tag.size());
  h = fnv1a(h, &index, sizeof(index));
  return Rng(h);
}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::uint64_t Rng::index(std::uint64_t n) {
  std::uniform_int_distribution<std::uint64_t> dist(0, n - 1);
  return dist(engine_);
}

void Rng::gaussian_fill(std::span<double> out, double sigma) {
  for (auto& x : out) x = gaussian(sigma);
}

std::vector<double> Rng::gaussian_vector(std::size_t n, double sigma) {
  std::vector<double> out(n);
  gaussian_fill(out, sigma);
  return out;
}

}  // namespace adc::common
