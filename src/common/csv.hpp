/// \file csv.hpp
/// Minimal CSV writer for bench reproducibility.
///
/// Every figure bench can dump its series as CSV next to the ASCII plot, so
/// downstream users can re-plot the paper figures with their own tooling.
/// Writing is opt-in: benches write only when the ADC_BENCH_CSV_DIR
/// environment variable names a directory.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace adc::common {

/// A rectangular table destined for a .csv file.
class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> header);

  /// Append one row; must match the header width.
  void add_row(const std::vector<double>& values);
  /// Append a row of pre-formatted cells (for mixed text/number tables).
  void add_text_row(const std::vector<std::string>& cells);

  /// Serialize to CSV text (RFC-4180-style quoting for cells containing
  /// commas or quotes).
  [[nodiscard]] std::string to_string() const;

  /// Write to `path`. Throws ConfigError on I/O failure.
  void write(const std::string& path) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// The bench CSV output directory from ADC_BENCH_CSV_DIR, if set and
/// non-empty.
[[nodiscard]] std::optional<std::string> bench_csv_dir();

/// Convenience used by the bench binaries: write `table` as
/// `<ADC_BENCH_CSV_DIR>/<name>.csv` when the variable is set; returns the
/// path written, or nullopt when CSV output is disabled.
[[nodiscard]] std::optional<std::string> write_bench_csv(const std::string& name,
                                                         const CsvTable& table);

}  // namespace adc::common
