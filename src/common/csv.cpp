#include "common/csv.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace adc::common {

namespace {

std::string quote_if_needed(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string format_number(double v) {
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

}  // namespace

CsvTable::CsvTable(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "CsvTable: empty header");
}

void CsvTable::add_row(const std::vector<double>& values) {
  require(values.size() == header_.size(), "CsvTable: row width mismatch");
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_number(v));
  rows_.push_back(std::move(cells));
}

void CsvTable::add_text_row(const std::vector<std::string>& cells) {
  require(cells.size() == header_.size(), "CsvTable: row width mismatch");
  rows_.push_back(cells);
}

std::string CsvTable::to_string() const {
  std::ostringstream out;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) out << ',';
    out << quote_if_needed(header_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << quote_if_needed(row[c]);
    }
    out << '\n';
  }
  return out.str();
}

void CsvTable::write(const std::string& path) const {
  std::ofstream file(path);
  require(file.good(), "CsvTable: cannot open " + path);
  file << to_string();
  require(file.good(), "CsvTable: write failed for " + path);
}

std::optional<std::string> bench_csv_dir() {
  const char* dir = std::getenv("ADC_BENCH_CSV_DIR");
  if (dir == nullptr || dir[0] == '\0') return std::nullopt;
  return std::string(dir);
}

std::optional<std::string> write_bench_csv(const std::string& name, const CsvTable& table) {
  const auto dir = bench_csv_dir();
  if (!dir) return std::nullopt;
  const std::string path = *dir + "/" + name + ".csv";
  table.write(path);
  return path;
}

}  // namespace adc::common
