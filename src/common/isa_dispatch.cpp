#include "common/isa_dispatch.hpp"

#include <cstdlib>
#include <string>

#include "common/error.hpp"

namespace adc::common {

const char* to_string(BatchIsa isa) {
  switch (isa) {
    case BatchIsa::kSse2:
      return "sse2";
    case BatchIsa::kAvx2:
      return "avx2";
    case BatchIsa::kAvx512:
      return "avx512";
  }
  return "sse2";
}

std::optional<BatchIsa> parse_batch_isa(std::string_view name) {
  if (name == "sse2") return BatchIsa::kSse2;
  if (name == "avx2") return BatchIsa::kAvx2;
  if (name == "avx512") return BatchIsa::kAvx512;
  return std::nullopt;
}

BatchIsa detect_batch_isa() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  // The AVX-512 kernel is compiled with F+DQ+VL+BW; require the full set the
  // code generator may use, not just the foundation.
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl") && __builtin_cpu_supports("avx512bw")) {
    return BatchIsa::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return BatchIsa::kAvx2;
#endif
  return BatchIsa::kSse2;
}

BatchIsa resolve_batch_isa(std::string_view name, BatchIsa detected) {
  const auto requested = parse_batch_isa(name);
  require(requested.has_value(),
          "ADC_BATCH_ISA: unknown tier '" + std::string(name) + "' (expected sse2|avx2|avx512)");
  // Clamp down, never up: forcing a weaker tier is always legal (every tier
  // is bit-identical), forcing an unsupported stronger one would SIGILL.
  return *requested < detected ? *requested : detected;
}

BatchIsa active_batch_isa() {
  static const BatchIsa active = [] {
    const BatchIsa detected = detect_batch_isa();
    const char* env = std::getenv("ADC_BATCH_ISA");
    if (env == nullptr || *env == '\0') return detected;
    return resolve_batch_isa(env, detected);
  }();
  return active;
}

}  // namespace adc::common
