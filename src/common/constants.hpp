/// \file constants.hpp
/// Physical and process constants used throughout the behavioral models.
#pragma once

namespace adc::common {

/// Boltzmann constant [J/K].
inline constexpr double k_boltzmann = 1.380649e-23;

/// Elementary charge [C].
inline constexpr double q_electron = 1.602176634e-19;

/// Default junction temperature for all noise calculations [K].
/// The paper characterizes at room temperature; 300 K is the conventional
/// value for kT/C budgeting.
inline constexpr double t_nominal_kelvin = 300.0;

/// kT at the nominal temperature [J].
inline constexpr double kt_nominal = k_boltzmann * t_nominal_kelvin;

/// Thermal voltage kT/q at nominal temperature [V].
inline constexpr double vt_thermal = kt_nominal / q_electron;

/// Nominal supply voltage of the 0.18um digital CMOS process [V] (paper, Table I).
inline constexpr double vdd_nominal = 1.8;

/// Silicon bandgap voltage extrapolated to 0 K [V]; used by the bandgap model.
inline constexpr double silicon_vg0 = 1.205;

namespace process_018um {
/// Representative 0.18um digital CMOS device constants. These are textbook
/// values for a generic 0.18um node, not any specific foundry PDK; they only
/// need to be *typical* since the behavioral models are calibrated at the
/// converter level (see DESIGN.md, calibration policy).

/// NMOS process transconductance u0*Cox [A/V^2].
inline constexpr double kp_nmos = 340e-6;
/// PMOS process transconductance u0*Cox [A/V^2] (~1/4 of NMOS mobility).
inline constexpr double kp_pmos = 80e-6;
/// NMOS threshold voltage [V].
inline constexpr double vth_nmos = 0.45;
/// PMOS threshold voltage magnitude [V].
inline constexpr double vth_pmos = 0.48;
/// Body-effect coefficient gamma [sqrt(V)] for the bulk-switching model.
inline constexpr double body_gamma = 0.45;
/// Surface potential 2*phi_F [V] for the body-effect model.
inline constexpr double body_2phif = 0.85;
/// Mobility degradation coefficient theta [1/V].
inline constexpr double mobility_theta = 0.25;
}  // namespace process_018um

}  // namespace adc::common
