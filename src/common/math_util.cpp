#include "common/math_util.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace adc::common {

double db_from_power_ratio(double ratio) { return 10.0 * std::log10(ratio); }

double db_from_amplitude_ratio(double ratio) { return 20.0 * std::log10(ratio); }

double power_ratio_from_db(double db) { return std::pow(10.0, db / 10.0); }

double amplitude_ratio_from_db(double db) { return std::pow(10.0, db / 20.0); }

double enob_from_sndr_db(double sndr_db) { return (sndr_db - 1.76) / 6.02; }

double sndr_db_from_enob(double enob) { return 6.02 * enob + 1.76; }

bool is_power_of_two(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

double mean(std::span<const double> x) {
  if (x.empty()) return 0.0;
  double s = 0.0;
  for (double v : x) s += v;
  return s / static_cast<double>(x.size());
}

double variance(std::span<const double> x) {
  if (x.empty()) return 0.0;
  const double m = mean(x);
  double s = 0.0;
  for (double v : x) s += (v - m) * (v - m);
  return s / static_cast<double>(x.size());
}

double std_dev(std::span<const double> x) { return std::sqrt(variance(x)); }

double rms(std::span<const double> x) {
  if (x.empty()) return 0.0;
  double s = 0.0;
  for (double v : x) s += v * v;
  return std::sqrt(s / static_cast<double>(x.size()));
}

MinMax min_max(std::span<const double> x) {
  require(!x.empty(), "min_max: empty input");
  auto [lo, hi] = std::minmax_element(x.begin(), x.end());
  return {*lo, *hi};
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  require(x.size() == y.size(), "linear_fit: size mismatch");
  require(x.size() >= 2, "linear_fit: need at least two points");
  const auto n = static_cast<double>(x.size());
  const double mx = mean(x);
  const double my = mean(y);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  require(sxx > 0.0, "linear_fit: degenerate x values");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  (void)n;
  return fit;
}

std::size_t gcd(std::size_t a, std::size_t b) {
  while (b != 0) {
    const std::size_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  require(n >= 1, "linspace: need at least one point");
  if (n == 1) return {lo};
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) out[i] = lo + step * static_cast<double>(i);
  return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t n) {
  require(lo > 0.0 && hi > 0.0, "logspace: bounds must be positive");
  auto exps = linspace(std::log10(lo), std::log10(hi), n);
  for (auto& e : exps) e = std::pow(10.0, e);
  return exps;
}

double sum_db_powers(std::span<const double> levels_db) {
  double p = 0.0;
  for (double l : levels_db) p += power_ratio_from_db(l);
  return db_from_power_ratio(p);
}

}  // namespace adc::common
