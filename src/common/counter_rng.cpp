#include "common/counter_rng.hpp"

#include <cstddef>

#include "common/counter_rng_tile.hpp"

namespace adc::common {

void philox_normal_fill(std::uint64_t key, std::uint64_t stream, std::uint64_t first,
                        std::span<double> out) {
  // Body lives in counter_rng_tile.hpp so the batch engine's per-ISA
  // translation units can re-compile the identical algorithm with wider
  // vector code generation. This baseline-compiled symbol stays the one the
  // scalar fast profile (NoisePlane) links against.
  tile::philox_normal_fill_ptr(key, stream, first, out.data(), out.size());
}

}  // namespace adc::common
