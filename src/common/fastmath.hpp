/// \file fastmath.hpp
/// SIMD-friendly polynomial transcendental kernels and the fidelity-profile
/// math dispatch.
///
/// The per-sample conversion kernel is libm-bound under the `exact` profile:
/// settling `exp`, softplus `log1p(exp)`, junction `pow`, stimulus
/// `sin`/`cos` are called for every sample with genuinely changing
/// arguments. The `fast` profile routes those calls through the kernels
/// below — straight-line Horner polynomials with no tables, no errno, no
/// data-dependent branches on the value path — so the surrounding loops stay
/// vectorizable and the call overhead of libm disappears.
///
/// Accuracy contract (verified against libm by `tests/test_fast_rng.cpp`,
/// randomized over each kernel's stated domain):
///
///   | kernel         | domain                      | max observed error |
///   | -------------- | --------------------------- | ------------------ |
///   | `exp_fast`     | [-708, 709]                 | ~2 ulp             |
///   | `log_fast`     | normal positive doubles     | ~2 ulp             |
///   | `log1p_fast`   | x > -1 (normal 1+x)         | ~2 ulp             |
///   | `sqrt_fast`    | +0 and positive normals     | ~1 ulp             |
///   | `pow_fast`     | x > 0, |y·log x| ≤ 700      | ~1e-14 relative    |
///   | `sin/cos_fast` | |x| ≤ ~1e6 rad              | ~2 ulp             |
///
/// "2 ulp-class" is the design target, not a proof: the polynomials are
/// truncated Taylor / near-minimax expansions whose truncation error is
/// below 1 ulp on the reduced range, plus rounding of the Horner
/// evaluation. This is legal *only* under the `fast` profile, which owns
/// its golden vectors; `exact` dispatch compiles to the libm calls the
/// bit-identity contract pins.
///
/// Fast contract v2 (see common/fidelity.hpp): every kernel on the
/// noise-draw path is division- and sqrt-instruction-free. `log_fast`
/// evaluates a minimax polynomial directly in t = m - 1 (no `(m-1)/(m+1)`
/// quotient), and `sqrt_fast` is an integer-seeded Newton–Raphson rsqrt
/// refinement — multiplies and FMA-less adds only, so the batch engine's
/// SoA loops never touch the divider port.
///
/// Domain edges: `exp_fast` flushes to 0 below -708 (no subnormal outputs)
/// and returns +inf above 709; `log_fast` expects a positive *normal*
/// argument (debug contracts trip otherwise). The simulator's physics never
/// leaves these domains.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/contracts.hpp"
#include "common/fidelity.hpp"

/// Force the kernels below to inline into every caller. Correctness, not just
/// speed: the batch engine re-compiles its translation units with AVX2 and
/// AVX-512 enabled, and an ordinary `inline` function used there would be
/// emitted as a weak out-of-line COMDAT copy built with wide instructions —
/// which the linker may then select for *baseline* callers, crashing SSE2
/// hosts. always_inline leaves no out-of-line body to leak.
#if defined(__GNUC__) || defined(__clang__)
#define ADC_ALWAYS_INLINE [[gnu::always_inline]]
#else
#define ADC_ALWAYS_INLINE
#endif

namespace adc::common::fastmath {

inline constexpr double kTwoPi = 6.28318530717958647693;

/// Round-to-nearest-even for |x| < 2^51 without the libm `nearbyint` call
/// (plain -O3 targets baseline x86-64, where `std::nearbyint` is an opaque
/// PLT call that blocks inlining and vectorization of every caller). Adding
/// 1.5·2^52 forces the significand ulp to 1, so the FPU's default
/// ties-to-even rounding performs the job; subtracting recovers the integer.
inline constexpr double kRoundMagic = 0x1.8p52;

ADC_ALWAYS_INLINE inline double round_even_small(double x) { return (x + kRoundMagic) - kRoundMagic; }

/// e^x via Cody–Waite reduction (x = k·ln2 + r, |r| ≤ ln2/2) and a
/// degree-13 Taylor polynomial; 2^k applied with one exponent-field cast.
/// The polynomial is evaluated as even/odd halves in r² (Estrin): the two
/// degree-6 Horner chains have no data dependence on each other, halving
/// the latency of the serial chain for the scalar per-stage settle call.
ADC_ALWAYS_INLINE inline double exp_fast(double x) {
  if (x > 709.0) return std::numeric_limits<double>::infinity();
  if (x < -708.0) return 0.0;  // flush-to-zero below the normal range
  constexpr double kInvLn2 = 1.44269504088896340736;
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  const double kd = round_even_small(x * kInvLn2);
  const double r = (x - kd * kLn2Hi) - kd * kLn2Lo;
  // Taylor coefficients 1/n!; truncation < 1e-17 at |r| = ln2/2.
  const double r2 = r * r;
  double pe = 1.0 / 479001600.0;
  double po = 1.0 / 6227020800.0;
  pe = pe * r2 + 1.0 / 3628800.0;
  po = po * r2 + 1.0 / 39916800.0;
  pe = pe * r2 + 1.0 / 40320.0;
  po = po * r2 + 1.0 / 362880.0;
  pe = pe * r2 + 1.0 / 720.0;
  po = po * r2 + 1.0 / 5040.0;
  pe = pe * r2 + 1.0 / 24.0;
  po = po * r2 + 1.0 / 120.0;
  pe = pe * r2 + 1.0 / 2.0;
  po = po * r2 + 1.0 / 6.0;
  pe = pe * r2 + 1.0;
  po = po * r2 + 1.0;
  const double p = pe + r * po;
  // k is in [-1021, 1023] after the early-outs, so 2^k is a normal double.
  const auto k = static_cast<int>(kd);
  const auto scale = std::bit_cast<double>(static_cast<std::uint64_t>(k + 1023) << 52);
  return p * scale;
}

/// ln(1+t) for t in [sqrt(1/2)-1, sqrt(2)-1], the residual left after
/// log_fast's mantissa normalization. Division-free: instead of the classic
/// artanh form (whose s = (m-1)/(m+1) quotient put one vdivpd per lane-block
/// into the noise fill), this evaluates ln(1+t) = t + t²·Q(t) with Q a
/// degree-21 near-minimax polynomial (Chebyshev fit of (ln(1+t) - t)/t²
/// over the exact reduction interval; fit residual 1.7e-18, well under the
/// ~3.3e-17 truncation budget of the old series). Q's low-order
/// coefficients converge to the Mercator series (-1/2, 1/3, -1/4, ...);
/// the high-order ones absorb the equioscillating remainder. Evaluated as
/// even/odd Horner halves in t² (Estrin) so the two chains overlap — the
/// serial latency matters in the scalar fast path, and the split costs
/// nothing in the vectorized tile loop.
ADC_ALWAYS_INLINE inline double log1p_core(double t) {
  const double z = t * t;
  double qe = -0x1.b84eb3675fb3dp-5;
  double qo = 0x1.71fa6946fffa6p-6;
  qe = qe * z - 0x1.a819e6c8ef461p-5;
  qo = qo * z + 0x1.eae53af3a72f8p-5;
  qe = qe * z - 0x1.c18b98ee208c6p-5;
  qo = qo * z + 0x1.9d7de44e09c67p-5;
  qe = qe * z - 0x1.005c6a487093cp-4;
  qo = qo * z + 0x1.e3563f3dbe6fcp-5;
  qe = qe * z - 0x1.248bcf9445c16p-4;
  qo = qo * z + 0x1.110a2d0520b86p-4;
  qe = qe * z - 0x1.55559a56f4d74p-4;
  qo = qo * z + 0x1.3b13b0170b913p-4;
  qe = qe * z - 0x1.999997e043d16p-4;
  qo = qo * z + 0x1.745d19c12a3e2p-4;
  qe = qe * z - 0x1.000000032a3bfp-3;
  qo = qo * z + 0x1.c71c71b0e4c8cp-4;
  qe = qe * z - 0x1.555555554f613p-3;
  qo = qo * z + 0x1.24924924bb7f3p-3;
  qe = qe * z - 0x1.0000000000023p-2;
  qo = qo * z + 0x1.99999999995b4p-3;
  qe = qe * z - 0x1.0000000000000p-1;
  qo = qo * z + 0x1.5555555555556p-2;
  const double q = qe + t * qo;
  return t + z * q;
}

/// ln(x) for positive normal x: exponent split via the bit pattern, mantissa
/// normalized into [sqrt(1/2), sqrt(2)), then the division-free ln(1+t)
/// polynomial on t = m - 1 (exact by Sterbenz: m is within [1/2, 2] of 1).
ADC_ALWAYS_INLINE inline double log_fast(double x) {
  ADC_EXPECT(x >= 0x1p-1022, "log_fast: argument must be a positive normal double");
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  const auto bits = std::bit_cast<std::uint64_t>(x);
  double m = std::bit_cast<double>((bits & 0x000fffffffffffffull) | 0x3fe0000000000000ull);
  // Branchless normalization: when m < sqrt(1/2), double m (m + m is exact)
  // and debit the exponent term. The condition is materialized as 0.0/1.0 by
  // extracting the sign bit of m - sqrt(1/2) — plain arithmetic, because the
  // baseline-SSE2 vectorizer refuses compare-selects with variable arms, and
  // a branch or select here would keep every caller scalar. m == sqrt(1/2)
  // gives +0 (sign 0), matching the strict `<`; small-integer double
  // arithmetic is exact, so `ed` is bit-identical to the integer original.
  const double low_half = static_cast<double>(static_cast<std::int32_t>(
      std::bit_cast<std::uint64_t>(m - 0.70710678118654752440) >> 63));
  m += low_half * m;
  const double e_biased = static_cast<double>(
      static_cast<std::int32_t>((bits >> 52) & 0x7ffu));
  const double ed = e_biased - 1022.0 - low_half;
  const double logm = log1p_core(m - 1.0);
  return ed * kLn2Hi + (logm + ed * kLn2Lo);
}

/// ln(1+x). Small |x| feeds the ln(1+t) polynomial directly (no
/// cancellation, no renormalization); larger x falls through to
/// log_fast(1+x). The direct window sits strictly inside the polynomial's
/// fitted interval [sqrt(1/2)-1, sqrt(2)-1].
ADC_ALWAYS_INLINE inline double log1p_fast(double x) {
  if (x > -0.25 && x < 0.4) {
    return log1p_core(x);
  }
  return log_fast(1.0 + x);
}

/// sqrt(x) for +0 and positive normal x, with no divide or sqrt
/// instruction: integer-shift rsqrt seed (the 0x5FE6EB50C7B537A9 magic,
/// ~6 good bits), three Newton–Raphson refinements of y ≈ 1/sqrt(x)
/// (y ← y·(3/2 − x/2·y²); quadratic: 6 → 12 → 25 → 50 bits), then one
/// Heron-style correction on the product s = x·y to polish the last bits:
/// s + y/2·(x − s²). Worst observed error 1 ulp over the draw-pipeline
/// domain and random positive normals (tests/test_fast_rng.cpp).
///
/// The seed is deliberately *software* integer arithmetic, not a hardware
/// rsqrt approximation (`vrsqrt14pd` etc.): hardware seeds are
/// vendor-specific, and the fast contract's positional determinism must
/// hold across every machine that shares a scenario cache or fleet merge.
/// Association matters: `(h·y)·y` keeps intermediates normal even at
/// DBL_MAX, where `h·(y·y)` would round through a subnormal.
ADC_ALWAYS_INLINE inline double sqrt_fast(double x) {
  ADC_EXPECT(x == 0.0 || x >= 0x1p-1022,
             "sqrt_fast: argument must be +0 or a positive normal double");
  const double h = 0.5 * x;
  double y = std::bit_cast<double>(0x5FE6EB50C7B537A9ull -
                                   (std::bit_cast<std::uint64_t>(x) >> 1));
  y = y * (1.5 - h * y * y);
  y = y * (1.5 - h * y * y);
  y = y * (1.5 - h * y * y);
  const double s = x * y;
  return s + 0.5 * y * (x - s * s);
}

/// x^y for x > 0 as exp(y·ln x). The relative error grows with |y·ln x|
/// (~1e-14 at |y·ln x| ≈ 10); the simulator's junction exponents keep it
/// far below that.
ADC_ALWAYS_INLINE inline double pow_fast(double x, double y) { return exp_fast(y * log_fast(x)); }

/// sin and cos together: one π/2 Cody–Waite quadrant reduction (three-part
/// constant, good to |x| ~ 1e6 rad) feeding degree-15/16 Taylor kernels on
/// [-π/4, π/4], then the quadrant swap.
ADC_ALWAYS_INLINE inline void sincos_fast(double x, double& sin_out, double& cos_out) {
  constexpr double kTwoOverPi = 0.63661977236758134308;
  constexpr double kPio2Hi = 1.57079632673412561417e+00;
  constexpr double kPio2Mid = 6.07710050650619224932e-11;
  constexpr double kPio2Lo = 2.02226624871116645580e-21;
  // Magic-number rounding doubles as the quadrant extractor: the biased sum
  // holds 2^51 + n in its significand, and 2^51 ≡ 0 (mod 4), so the two low
  // mantissa bits are n mod 4 even for negative n.
  const double biased = x * kTwoOverPi + kRoundMagic;
  const auto quadrant = std::bit_cast<std::uint64_t>(biased);
  const double nd = biased - kRoundMagic;
  double r = x - nd * kPio2Hi;
  r -= nd * kPio2Mid;
  r -= nd * kPio2Lo;
  const double r2 = r * r;

  double sp = -1.0 / 1307674368000.0;
  sp = sp * r2 + 1.0 / 6227020800.0;
  sp = sp * r2 - 1.0 / 39916800.0;
  sp = sp * r2 + 1.0 / 362880.0;
  sp = sp * r2 - 1.0 / 5040.0;
  sp = sp * r2 + 1.0 / 120.0;
  sp = sp * r2 - 1.0 / 6.0;
  const double sr = r + r * r2 * sp;

  double cp = 1.0 / 20922789888000.0;
  cp = cp * r2 - 1.0 / 87178291200.0;
  cp = cp * r2 + 1.0 / 479001600.0;
  cp = cp * r2 - 1.0 / 3628800.0;
  cp = cp * r2 + 1.0 / 40320.0;
  cp = cp * r2 - 1.0 / 720.0;
  cp = cp * r2 + 1.0 / 24.0;
  cp = cp * r2 - 1.0 / 2.0;
  const double cr = 1.0 + r2 * cp;

  // Branchless quadrant swap/negate in the bit domain (masks and sign-bit
  // XORs, so the whole function vectorizes): sin picks the cos kernel in odd
  // quadrants and flips sign in quadrants 2 and 3; cos flips in 1 and 2.
  const auto sr_bits = std::bit_cast<std::uint64_t>(sr);
  const auto cr_bits = std::bit_cast<std::uint64_t>(cr);
  const std::uint64_t swap_mask = 0u - (quadrant & 1u);
  const std::uint64_t smag = (sr_bits & ~swap_mask) | (cr_bits & swap_mask);
  const std::uint64_t cmag = (cr_bits & ~swap_mask) | (sr_bits & swap_mask);
  sin_out = std::bit_cast<double>(smag ^ ((quadrant & 2u) << 62));
  cos_out = std::bit_cast<double>(cmag ^ (((quadrant + 1u) & 2u) << 62));
}

ADC_ALWAYS_INLINE inline double sin_fast(double x) {
  double s = 0.0;
  double c = 0.0;
  sincos_fast(x, s, c);
  return s;
}

ADC_ALWAYS_INLINE inline double cos_fast(double x) {
  double s = 0.0;
  double c = 0.0;
  sincos_fast(x, s, c);
  return c;
}

}  // namespace adc::common::fastmath

namespace adc::common::math {

/// Profile-dispatched transcendentals. Per-sample hot-path code calls these
/// instead of <cmath> directly (enforced by the `profile-math` rule of
/// tools/lint_physics): `kExact` compiles to the libm call the bit-identity
/// contract pins, `kFast` to the polynomial kernel above. Models branch on
/// their stored profile once and instantiate the whole kernel per profile,
/// so the dispatch costs nothing inside the loop.

template <FidelityProfile P>
inline double exp_p(double x) {
  if constexpr (P == FidelityProfile::kFast) {
    return fastmath::exp_fast(x);
  } else {
    return std::exp(x);
  }
}

template <FidelityProfile P>
inline double log_p(double x) {
  if constexpr (P == FidelityProfile::kFast) {
    return fastmath::log_fast(x);
  } else {
    return std::log(x);
  }
}

template <FidelityProfile P>
inline double log1p_p(double x) {
  if constexpr (P == FidelityProfile::kFast) {
    return fastmath::log1p_fast(x);
  } else {
    return std::log1p(x);
  }
}

template <FidelityProfile P>
inline double pow_p(double x, double y) {
  if constexpr (P == FidelityProfile::kFast) {
    return fastmath::pow_fast(x, y);
  } else {
    return std::pow(x, y);
  }
}

template <FidelityProfile P>
inline double sin_p(double x) {
  if constexpr (P == FidelityProfile::kFast) {
    return fastmath::sin_fast(x);
  } else {
    return std::sin(x);
  }
}

template <FidelityProfile P>
inline double cos_p(double x) {
  if constexpr (P == FidelityProfile::kFast) {
    return fastmath::cos_fast(x);
  } else {
    return std::cos(x);
  }
}

template <FidelityProfile P>
inline void sincos_p(double x, double& sin_out, double& cos_out) {
  if constexpr (P == FidelityProfile::kFast) {
    fastmath::sincos_fast(x, sin_out, cos_out);
  } else {
    sin_out = std::sin(x);
    cos_out = std::cos(x);
  }
}

}  // namespace adc::common::math
