/// \file error.hpp
/// Error types for the library. Configuration errors throw; numerical code on
/// the hot path never throws (it asserts preconditions in debug builds).
#pragma once

#include <stdexcept>
#include <string>

namespace adc::common {

/// Base class for all errors raised by the library.
class AdcError : public std::runtime_error {
 public:
  explicit AdcError(const std::string& what) : std::runtime_error(what) {}
};

/// An invalid or inconsistent configuration was supplied (e.g. a negative
/// capacitance, a non-power-of-two FFT length, an empty pipeline).
class ConfigError : public AdcError {
 public:
  explicit ConfigError(const std::string& what) : AdcError(what) {}
};

/// A measurement could not be evaluated (e.g. no fundamental tone found in a
/// spectrum, histogram with empty bins in the analysed range).
class MeasurementError : public AdcError {
 public:
  explicit MeasurementError(const std::string& what) : AdcError(what) {}
};

/// Throw ConfigError with `msg` when `ok` is false. For use in constructors
/// that establish class invariants from user-supplied configuration.
inline void require(bool ok, const std::string& msg) {
  if (!ok) throw ConfigError(msg);
}

}  // namespace adc::common
