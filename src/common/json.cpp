#include "common/json.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace adc::common::json {

namespace {

/// Maximum array/object nesting the parser accepts; beyond this a document
/// is hostile, not data (and unbounded recursion would overflow the stack).
constexpr int kMaxDepth = 200;

[[noreturn]] void type_error(const char* want, JsonValue::Type got) {
  static constexpr const char* kNames[] = {"null",   "bool",  "int",   "uint",
                                           "double", "string", "array", "object"};
  throw ConfigError(std::string("json: expected ") + want + ", value holds " +
                    kNames[static_cast<int>(got)]);
}

bool bits_equal(double a, double b) {
  std::uint64_t ia = 0;
  std::uint64_t ib = 0;
  std::memcpy(&ia, &a, sizeof ia);
  std::memcpy(&ib, &b, sizeof ib);
  return ia == ib;
}

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",  // lint-ok: JSON escape, not I/O
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, const JsonValue& v) {
  switch (v.type()) {
    case JsonValue::Type::kInt:
      out += std::to_string(v.as_int64());
      return;
    case JsonValue::Type::kUint:
      out += std::to_string(v.as_uint64());
      return;
    default:
      out += format_double(v.as_double());
      return;
  }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

struct WriteOptions {
  bool pretty = false;
  bool sorted = false;  ///< canonical form: object keys bytewise-sorted
};

void write_value(std::string& out, const JsonValue& v, const WriteOptions& opt, int depth) {
  const auto newline_indent = [&out, &opt](int d) {
    if (!opt.pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(d) * 2, ' ');
  };

  switch (v.type()) {
    case JsonValue::Type::kNull:
      out += "null";
      return;
    case JsonValue::Type::kBool:
      out += v.as_bool() ? "true" : "false";
      return;
    case JsonValue::Type::kInt:
    case JsonValue::Type::kUint:
    case JsonValue::Type::kDouble:
      append_number(out, v);
      return;
    case JsonValue::Type::kString:
      append_quoted(out, v.as_string());
      return;
    case JsonValue::Type::kArray: {
      const auto& items = v.items();
      if (items.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != 0) out += ',';
        newline_indent(depth + 1);
        write_value(out, items[i], opt, depth + 1);
      }
      newline_indent(depth);
      out += ']';
      return;
    }
    case JsonValue::Type::kObject: {
      const auto& members = v.members();
      if (members.empty()) {
        out += "{}";
        return;
      }
      std::vector<const JsonMember*> order;
      order.reserve(members.size());
      for (const auto& m : members) order.push_back(&m);
      if (opt.sorted) {
        std::sort(order.begin(), order.end(),
                  [](const JsonMember* a, const JsonMember* b) { return a->key < b->key; });
      }
      out += '{';
      for (std::size_t i = 0; i < order.size(); ++i) {
        if (i != 0) out += ',';
        newline_indent(depth + 1);
        append_quoted(out, order[i]->key);
        out += opt.pretty ? ": " : ":";
        write_value(out, order[i]->value, opt, depth + 1);
      }
      newline_indent(depth);
      out += '}';
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    skip_whitespace();
    JsonValue v = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after the document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    std::ostringstream os;
    os << "json parse error at line " << line << ", column " << column << ": " << message;
    throw ConfigError(os.str());
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return at_end() ? '\0' : text_[pos_]; }
  char take() {
    if (at_end()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("invalid literal (expected '" + std::string(word) + "')");
    }
    pos_ += word.size();
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 200 levels");
    skip_whitespace();
    if (at_end()) fail("unexpected end of input");
    switch (peek()) {
      case 'n':
        expect_literal("null");
        return JsonValue(nullptr);
      case 't':
        expect_literal("true");
        return JsonValue(true);
      case 'f':
        expect_literal("false");
        return JsonValue(false);
      case '"':
        return JsonValue(parse_string());
      case '[':
        return parse_array(depth);
      case '{':
        return parse_object(depth);
      default:
        return parse_number();
    }
  }

  std::string parse_string() {
    if (take() != '"') fail("expected '\"'");
    std::string out;
    for (;;) {
      if (at_end()) fail("unterminated string");
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u':
          append_codepoint(out);
          break;
        default:
          fail(std::string("invalid escape '\\") + esc + "'");
      }
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape (need 4 hex digits)");
      }
    }
    return value;
  }

  /// \uXXXX (with a surrogate pair for the astral planes), encoded as UTF-8.
  void append_codepoint(std::string& out) {
    std::uint32_t cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (take() != '\\' || take() != 'u') fail("high surrogate not followed by \\u escape");
      const std::uint32_t low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired low surrogate");
    }
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (at_end()) fail("truncated number");
    if (peek() == '0') {
      ++pos_;
    } else if (peek() >= '1' && peek() <= '9') {
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    } else {
      fail("invalid number");
    }
    bool integral = true;
    if (!at_end() && peek() == '.') {
      integral = false;
      ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') fail("digit required after decimal point");
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') fail("digit required in exponent");
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);

    if (integral) {
      std::int64_t i = 0;
      auto [p, ec] = std::from_chars(token.data(), token.data() + token.size(), i);
      if (ec == std::errc() && p == token.data() + token.size()) return JsonValue(i);
      if (token.front() != '-') {
        std::uint64_t u = 0;
        auto [pu, ecu] = std::from_chars(token.data(), token.data() + token.size(), u);
        if (ecu == std::errc() && pu == token.data() + token.size()) return JsonValue(u);
      }
      // Falls through: an integer too large for 64 bits becomes a double.
    }
    const std::string buf(token);
    char* end = nullptr;
    const double d = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size()) fail("invalid number");
    if (!std::isfinite(d)) fail("number out of double range");
    return JsonValue(d);
  }

  JsonValue parse_array(int depth) {
    take();  // '['
    JsonValue out = JsonValue::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char c = take();
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']' in array");
      skip_whitespace();
      if (peek() == ']') fail("trailing comma in array");
    }
  }

  JsonValue parse_object(int depth) {
    take();  // '{'
    JsonValue out = JsonValue::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_whitespace();
      if (peek() != '"') fail("expected '\"' to start an object key");
      std::string key = parse_string();
      if (out.contains(key)) fail("duplicate object key \"" + key + "\"");
      skip_whitespace();
      if (take() != ':') fail("expected ':' after object key");
      out.set(key, parse_value(depth + 1));
      skip_whitespace();
      const char c = take();
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}' in object");
      skip_whitespace();
      if (peek() == '}') fail("trailing comma in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// JsonValue
// ---------------------------------------------------------------------------

JsonValue JsonValue::array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double JsonValue::as_double() const {
  switch (type_) {
    case Type::kInt:
      return static_cast<double>(int_);
    case Type::kUint:
      return static_cast<double>(uint_);
    case Type::kDouble:
      return double_;
    default:
      type_error("number", type_);
  }
}

std::int64_t JsonValue::as_int64() const {
  if (type_ == Type::kInt) return int_;
  if (type_ == Type::kUint) {
    if (uint_ > static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
      throw ConfigError("json: unsigned value does not fit in int64");
    }
    return static_cast<std::int64_t>(uint_);
  }
  type_error("integer", type_);
}

std::uint64_t JsonValue::as_uint64() const {
  if (type_ == Type::kUint) return uint_;
  if (type_ == Type::kInt) {
    if (int_ < 0) throw ConfigError("json: negative value does not fit in uint64");
    return static_cast<std::uint64_t>(int_);
  }
  type_error("integer", type_);
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const JsonValue::Array& JsonValue::items() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const JsonValue::Object& JsonValue::members() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

void JsonValue::push_back(JsonValue value) {
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(value));
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  for (const auto& m : object_) {
    if (m.key == key) return &m.value;
  }
  return nullptr;
}

void JsonValue::set(std::string_view key, JsonValue value) {
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& m : object_) {
    if (m.key == key) {
      m.value = std::move(value);
      return;
    }
  }
  object_.push_back(JsonMember{std::string(key), std::move(value)});
}

bool JsonValue::erase(std::string_view key) {
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto it = object_.begin(); it != object_.end(); ++it) {
    if (it->key == key) {
      object_.erase(it);
      return true;
    }
  }
  return false;
}

bool JsonValue::equals(const JsonValue& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kInt:
      return int_ == other.int_;
    case Type::kUint:
      return uint_ == other.uint_;
    case Type::kDouble:
      return bits_equal(double_, other.double_);
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray: {
      if (array_.size() != other.array_.size()) return false;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (!array_[i].equals(other.array_[i])) return false;
      }
      return true;
    }
    case Type::kObject: {
      if (object_.size() != other.object_.size()) return false;
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (object_[i].key != other.object_[i].key) return false;
        if (!object_[i].value.equals(other.object_[i].value)) return false;
      }
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

JsonValue parse(std::string_view text) { return Parser(text).run(); }

std::string dump(const JsonValue& value) {
  std::string out;
  write_value(out, value, {/*pretty=*/true, /*sorted=*/false}, 0);
  out += '\n';
  return out;
}

std::string dump_compact(const JsonValue& value) {
  std::string out;
  write_value(out, value, {/*pretty=*/false, /*sorted=*/false}, 0);
  return out;
}

std::string canonical(const JsonValue& value) {
  std::string out;
  write_value(out, value, {/*pretty=*/false, /*sorted=*/true}, 0);
  return out;
}

std::string format_double(double value) {
  if (!std::isfinite(value)) {
    throw ConfigError("json: cannot serialize a non-finite number");
  }
  // Shortest spelling in 15..17 significant digits that round-trips exactly.
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g",  // lint-ok: number formatting, not I/O
                  precision, value);
    if (bits_equal(std::strtod(buf, nullptr), value)) break;
  }
  std::string out = buf;
  // Keep the token recognizably floating-point so it re-parses into double
  // storage (integers travel through the int paths instead).
  if (out.find_first_of(".eE") == std::string::npos) out += ".0";
  return out;
}

}  // namespace adc::common::json
