/// \file span_math.hpp
/// Structure-of-arrays ports of the fastmath transcendental kernels.
///
/// The scalar kernels in fastmath.hpp are already straight-line polynomials,
/// but `exp_fast`'s two domain early-outs are *branches*, which stop the
/// loop vectorizer cold. The span variants below compute the in-range body
/// unconditionally on a clamped argument and apply the domain edges as
/// selects afterwards — element-wise bit-identical to the scalar kernel for
/// every input (in-range arguments are untouched by the clamp; out-of-range
/// lanes are overridden by the same ±inf/0 the scalar early-outs return),
/// while the whole loop stays if-convertible.
///
/// Everything is ADC_ALWAYS_INLINE for the same reason as fastmath.hpp: the
/// batch engine re-compiles these bodies in AVX2/AVX-512 translation units,
/// and no out-of-line COMDAT copy may leak to baseline callers.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "common/fastmath.hpp"

namespace adc::common::spanmath {

/// `out[i] = exp_fast(x[i])`, branch-free. The 2^k scale factor is built
/// with the magic-number trick instead of a scalar int cast: kd is an exact
/// integer double, so `kd + kRoundMagic` holds 2^51 + kd in its low mantissa
/// bits and the biased exponent field is one integer add + shift away —
/// pure integer SIMD on every tier.
ADC_ALWAYS_INLINE inline void exp_span(const double* x, double* out, std::size_t n) {
  constexpr double kInvLn2 = 1.44269504088896340736;
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  // bit_cast(0x1.8p52) == 0x4338000000000000; (u + kScaleBias) << 52
  // reproduces static_cast<uint64_t>(k + 1023) << 52 for |k| <= 1023.
  constexpr std::uint64_t kScaleBias = 1023ull - 0x4338000000000000ull;
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = x[i];
    // Clamp keeps kd in range for the exponent construction; in-range
    // arguments pass through unchanged, so their result is bit-identical to
    // the scalar kernel's post-early-out body.
    const double xc = xi < -709.0 ? -709.0 : (xi > 709.0 ? 709.0 : xi);
    const double kd = fastmath::round_even_small(xc * kInvLn2);
    const double r = (xc - kd * kLn2Hi) - kd * kLn2Lo;
    const double r2 = r * r;
    double pe = 1.0 / 479001600.0;
    double po = 1.0 / 6227020800.0;
    pe = pe * r2 + 1.0 / 3628800.0;
    po = po * r2 + 1.0 / 39916800.0;
    pe = pe * r2 + 1.0 / 40320.0;
    po = po * r2 + 1.0 / 362880.0;
    pe = pe * r2 + 1.0 / 720.0;
    po = po * r2 + 1.0 / 5040.0;
    pe = pe * r2 + 1.0 / 24.0;
    po = po * r2 + 1.0 / 120.0;
    pe = pe * r2 + 1.0 / 2.0;
    po = po * r2 + 1.0 / 6.0;
    pe = pe * r2 + 1.0;
    po = po * r2 + 1.0;
    const double p = pe + r * po;
    const std::uint64_t u = std::bit_cast<std::uint64_t>(kd + fastmath::kRoundMagic);
    const auto scale = std::bit_cast<double>((u + kScaleBias) << 52);
    double res = p * scale;
    res = xi > 709.0 ? std::numeric_limits<double>::infinity() : res;
    res = xi < -708.0 ? 0.0 : res;
    out[i] = res;
  }
}

/// `sincos_fast(x[i], s[i], c[i])` for every i. The scalar kernel is already
/// branch-free; this is the contiguous-array form the vectorizer wants.
ADC_ALWAYS_INLINE inline void sincos_span(const double* x, double* sin_out, double* cos_out,
                                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    double c = 0.0;
    fastmath::sincos_fast(x[i], s, c);
    sin_out[i] = s;
    cos_out[i] = c;
  }
}

}  // namespace adc::common::spanmath
