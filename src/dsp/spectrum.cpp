#include "dsp/spectrum.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"
#include "dsp/fft.hpp"
#include "dsp/window.hpp"

namespace adc::dsp {

using adc::common::MeasurementError;
using adc::common::require;

double alias_frequency(double f, double fs) {
  double r = std::fmod(std::abs(f), fs);
  if (r > fs / 2.0) r = fs - r;
  return r;
}

std::vector<double> codes_to_volts(std::span<const int> codes, int bits, double full_scale_vpp) {
  require(bits >= 1 && bits <= 24, "codes_to_volts: unreasonable bit count");
  const double levels = std::ldexp(1.0, bits);
  const double lsb = full_scale_vpp / levels;
  const double mid = (levels - 1.0) / 2.0;
  std::vector<double> volts(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    volts[i] = (static_cast<double>(codes[i]) - mid) * lsb;
  }
  return volts;
}

namespace {

/// Integrate the power of a tone whose centre bin is `bin`, spreading over
/// +/- span bins (window leakage). Bins are clamped to [0, n/2].
double integrate_group(const std::vector<double>& ps, std::size_t bin, std::size_t span) {
  const std::size_t half = ps.size() - 1;
  const std::size_t lo = bin > span ? bin - span : 0;
  const std::size_t hi = std::min(half, bin + span);
  double p = 0.0;
  for (std::size_t k = lo; k <= hi; ++k) p += ps[k];
  return p;
}

/// Mark the bins belonging to a tone group as used.
void mark_group(std::set<std::size_t>& used, std::size_t bin, std::size_t span, std::size_t half) {
  const std::size_t lo = bin > span ? bin - span : 0;
  const std::size_t hi = std::min(half, bin + span);
  for (std::size_t k = lo; k <= hi; ++k) used.insert(k);
}

}  // namespace

namespace {

/// Metrics from an already-computed one-sided power spectrum (possibly an
/// average of several records). `ng` is the window's noise gain.
SpectrumMetrics analyze_power_spectrum(const std::vector<double>& ps, std::size_t n,
                                       double sample_rate_hz, double ng,
                                       const SpectrumOptions& options);

}  // namespace

SpectrumMetrics analyze_tone(std::span<const double> samples, double sample_rate_hz,
                             const SpectrumOptions& options) {
  require(samples.size() >= 16, "analyze_tone: record too short");
  require(adc::common::is_power_of_two(samples.size()),
          "analyze_tone: record length must be a power of two");
  require(sample_rate_hz > 0.0, "analyze_tone: non-positive sample rate");

  const std::size_t n = samples.size();
  // Window, then FFT. Integrated tone-group power is corrected by the noise
  // gain (Parseval: the windowed tone's total spectral power is
  // P_tone * sum(w^2)/n, independent of where the tone sits between bins).
  // Noise corrects by the same factor, so all ratios are consistent.
  const auto window = shared_window(options.window, n);
  std::vector<double> data(samples.begin(), samples.end());
  apply_window(data, window->coeff);
  return analyze_power_spectrum(power_spectrum(data), n, sample_rate_hz, window->noise_gain,
                                options);
}

SpectrumMetrics analyze_tone_averaged(const std::vector<std::vector<double>>& records,
                                      double sample_rate_hz, const SpectrumOptions& options) {
  require(!records.empty(), "analyze_tone_averaged: no records");
  const std::size_t n = records.front().size();
  require(n >= 16 && adc::common::is_power_of_two(n),
          "analyze_tone_averaged: record length must be a power of two >= 16");
  const auto window = shared_window(options.window, n);
  std::vector<double> avg(n / 2 + 1, 0.0);
  for (const auto& record : records) {
    require(record.size() == n, "analyze_tone_averaged: record lengths differ");
    std::vector<double> data(record.begin(), record.end());
    apply_window(data, window->coeff);
    const auto ps = power_spectrum(data);
    for (std::size_t k = 0; k < avg.size(); ++k) avg[k] += ps[k];
  }
  const double inv = 1.0 / static_cast<double>(records.size());
  for (auto& v : avg) v *= inv;
  return analyze_power_spectrum(avg, n, sample_rate_hz, window->noise_gain, options);
}

namespace {

SpectrumMetrics analyze_power_spectrum(const std::vector<double>& ps_in, std::size_t n,
                                       double sample_rate_hz, double ng,
                                       const SpectrumOptions& options) {
  ADC_EXPECT(adc::common::all_finite(ps_in), "analyze_tone: non-finite power-spectrum bin");
  const auto& ps = ps_in;
  const std::size_t half = n / 2;
  const double bin_hz = sample_rate_hz / static_cast<double>(n);

  const std::size_t span = leakage_span_bins(options.window);
  std::set<std::size_t> used;

  // Exclude DC (and near-DC drift) from everything.
  const std::size_t dc_hi = std::min(half, options.dc_span);
  for (std::size_t k = 0; k <= dc_hi; ++k) used.insert(k);

  // Locate the fundamental: forced bin or the largest non-DC peak.
  std::size_t fbin = 0;
  if (options.fundamental_bin) {
    fbin = *options.fundamental_bin;
    require(fbin > dc_hi && fbin < half, "analyze_tone: forced fundamental bin out of range");
  } else {
    double best = -1.0;
    for (std::size_t k = dc_hi + 1; k < half; ++k) {
      if (ps[k] > best) {
        best = ps[k];
        fbin = k;
      }
    }
    if (best <= 0.0) throw MeasurementError("analyze_tone: no fundamental tone found");
  }

  SpectrumMetrics m;
  m.sample_rate_hz = sample_rate_hz;
  m.record_length = n;
  m.fundamental_bin = fbin;
  m.fundamental_freq_hz = static_cast<double>(fbin) * bin_hz;
  m.signal_power = integrate_group(ps, fbin, span) / ng;
  if (m.signal_power <= 0.0) throw MeasurementError("analyze_tone: zero signal power");
  m.signal_amplitude = std::sqrt(2.0 * m.signal_power);
  mark_group(used, fbin, span, half);

  // Harmonics 2..max_harmonic, folded into the first Nyquist zone. For
  // undersampled captures the harmonic grid follows the true tone frequency,
  // not the folded fundamental.
  const double harmonic_base = options.harmonic_base_hz.value_or(m.fundamental_freq_hz);
  for (int h = 2; h <= options.max_harmonic; ++h) {
    const double fh = alias_frequency(static_cast<double>(h) * harmonic_base,
                                      sample_rate_hz);
    const auto hbin = static_cast<std::size_t>(std::llround(fh / bin_hz));
    if (hbin <= dc_hi || hbin >= half) continue;  // folded onto DC/Nyquist: skip
    if (used.count(hbin) > 0 && hbin == fbin) continue;
    HarmonicInfo info;
    info.order = h;
    info.bin = hbin;
    info.frequency_hz = fh;
    info.power = integrate_group(ps, hbin, span) / ng;
    info.dbc = adc::common::db_from_power_ratio(std::max(info.power, 1e-30) / m.signal_power);
    // A harmonic can alias onto another harmonic's bin; only count the power
    // once in THD.
    if (used.count(hbin) == 0) m.thd_power += info.power;
    mark_group(used, hbin, span, half);
    m.harmonics.push_back(info);
  }

  // Noise: everything not yet claimed.
  double noise = 0.0;
  for (std::size_t k = 0; k <= half; ++k) {
    if (used.count(k) == 0) noise += ps[k];
  }
  m.noise_power = noise / ng;

  // SFDR spur: the largest single tone group other than the fundamental,
  // searched over all bins (harmonic or not), DC excluded.
  double spur_best = -1.0;
  std::size_t spur_bin = 0;
  for (std::size_t k = dc_hi + 1; k < half; ++k) {
    const std::size_t flo = fbin > span ? fbin - span : 0;
    const std::size_t fhi = fbin + span;
    if (k >= flo && k <= fhi) continue;
    if (ps[k] > spur_best) {
      spur_best = ps[k];
      spur_bin = k;
    }
  }
  if (spur_best >= 0.0) {
    m.spur_bin = spur_bin;
    m.spur_freq_hz = static_cast<double>(spur_bin) * bin_hz;
    m.spur_power = integrate_group(ps, spur_bin, span) / ng;
    for (const auto& h : m.harmonics) {
      const auto delta = h.bin > spur_bin ? h.bin - spur_bin : spur_bin - h.bin;
      if (delta <= span) {
        m.spur_harmonic_order = h.order;
        break;
      }
    }
  }

  const double eps = 1e-30;
  m.snr_db = adc::common::db_from_power_ratio(m.signal_power / std::max(m.noise_power, eps));
  m.sndr_db = adc::common::db_from_power_ratio(m.signal_power /
                                               std::max(m.noise_power + m.thd_power, eps));
  m.thd_db = adc::common::db_from_power_ratio(std::max(m.thd_power, eps) / m.signal_power);
  m.sfdr_db = adc::common::db_from_power_ratio(m.signal_power / std::max(m.spur_power, eps));
  m.enob = adc::common::enob_from_sndr_db(m.sndr_db);
  ADC_ENSURE(m.noise_power >= 0.0, "analyze_tone: negative integrated noise power");
  ADC_ENSURE(std::isfinite(m.snr_db) && std::isfinite(m.sndr_db) && std::isfinite(m.enob),
             "analyze_tone: non-finite dynamic metric");
  return m;
}

}  // namespace

}  // namespace adc::dsp
