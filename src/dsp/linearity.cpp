#include "dsp/linearity.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace adc::dsp {

using adc::common::MeasurementError;
using adc::common::require;

namespace {

/// Endpoint-corrected INL from DNL: integrate, then remove the straight line
/// through the first and last defined code so gain/offset errors drop out
/// (the paper's INL convention).
void finalize(LinearityResult& r) {
  const std::size_t ncodes = r.dnl.size();
  r.inl.assign(ncodes, 0.0);
  double acc = 0.0;
  for (std::size_t k = 1; k + 1 < ncodes; ++k) {
    acc += r.dnl[k];
    r.inl[k] = acc;
  }
  // Endpoint correction over the interior codes.
  const std::size_t first = 1;
  const std::size_t last = ncodes >= 3 ? ncodes - 2 : 1;
  const double i0 = r.inl[first];
  const double i1 = r.inl[last];
  const double denom = static_cast<double>(last - first);
  for (std::size_t k = first; k <= last; ++k) {
    const double frac = denom > 0.0 ? static_cast<double>(k - first) / denom : 0.0;
    r.inl[k] -= i0 + (i1 - i0) * frac;
  }

  r.dnl_min = 0.0;
  r.dnl_max = 0.0;
  r.inl_min = 0.0;
  r.inl_max = 0.0;
  for (std::size_t k = first; k <= last; ++k) {
    r.dnl_min = std::min(r.dnl_min, r.dnl[k]);
    r.dnl_max = std::max(r.dnl_max, r.dnl[k]);
    r.inl_min = std::min(r.inl_min, r.inl[k]);
    r.inl_max = std::max(r.inl_max, r.inl[k]);
    if (r.dnl[k] <= -0.999) r.missing_codes.push_back(static_cast<int>(k));
  }
}

}  // namespace

LinearityResult histogram_linearity(std::span<const int> codes, int bits) {
  require(bits >= 2 && bits <= 20, "histogram_linearity: unreasonable resolution");
  require(!codes.empty(), "histogram_linearity: empty record");
  const auto ncodes = static_cast<std::size_t>(1) << bits;

  std::vector<double> hist(ncodes, 0.0);
  for (int c : codes) {
    require(c >= 0 && static_cast<std::size_t>(c) < ncodes,
            "histogram_linearity: code out of range");
    hist[static_cast<std::size_t>(c)] += 1.0;
  }
  // Bins hold integer counts, so "empty" is exactly representable below 0.5.
  if (hist.front() < 0.5 || hist.back() < 0.5) {
    throw MeasurementError(
        "histogram_linearity: end codes never hit; sine must overdrive the full scale");
  }

  // Estimate the sine amplitude/offset from the clipped end-bin populations:
  // for a sine of amplitude A (in units of the converter range R centred on
  // the range), the fraction of samples below the first transition level is
  // p0 = hist[0]/N. The transition level is then t0 = -A*cos(pi*p0) with the
  // range mapped to [-1, 1]. Standard code-density identities follow.
  const auto total = static_cast<double>(codes.size());
  const double p_low = hist.front() / total;
  const double p_high = hist.back() / total;
  require(p_low > 0.0 && p_high > 0.0, "histogram_linearity: degenerate end bins");

  // Cumulative histogram -> transition levels via the arcsine transform.
  // v_k = -cos(pi * CDF_k); this removes the sine's nonuniform density.
  std::vector<double> transitions(ncodes - 1, 0.0);
  double cum = 0.0;
  for (std::size_t k = 0; k + 1 < ncodes; ++k) {
    cum += hist[k];
    const double cdf = cum / total;
    transitions[k] = -std::cos(std::numbers::pi * cdf);
  }

  // Code widths from consecutive transitions; average interior width = 1 LSB.
  LinearityResult r;
  r.bits = bits;
  r.sample_count = codes.size();
  r.dnl.assign(ncodes, 0.0);

  double width_sum = 0.0;
  std::size_t width_count = 0;
  for (std::size_t k = 1; k + 1 < ncodes; ++k) {
    const double w = transitions[k] - transitions[k - 1];
    width_sum += w;
    ++width_count;
  }
  require(width_count > 0 && width_sum > 0.0, "histogram_linearity: no interior codes");
  const double lsb = width_sum / static_cast<double>(width_count);

  for (std::size_t k = 1; k + 1 < ncodes; ++k) {
    const double w = transitions[k] - transitions[k - 1];
    r.dnl[k] = w / lsb - 1.0;
  }
  // The arcsine transform of a cumulative histogram is non-decreasing by
  // construction; a violation means the CDF accumulation itself broke.
  ADC_ENSURE(adc::common::is_nondecreasing(transitions),
             "histogram_linearity: transition levels not monotonic");
  finalize(r);
  ADC_ENSURE(adc::common::all_finite(r.dnl) && adc::common::all_finite(r.inl),
             "histogram_linearity: non-finite DNL/INL entry");
  return r;
}

LinearityResult edges_linearity(std::span<const double> edges, int bits) {
  require(bits >= 2 && bits <= 20, "edges_linearity: unreasonable resolution");
  const auto ncodes = static_cast<std::size_t>(1) << bits;
  require(edges.size() == ncodes - 1, "edges_linearity: need 2^bits - 1 edges");

  LinearityResult r;
  r.bits = bits;
  r.sample_count = edges.size();
  r.dnl.assign(ncodes, 0.0);

  double width_sum = 0.0;
  std::size_t width_count = 0;
  for (std::size_t k = 1; k + 1 < ncodes; ++k) {
    width_sum += edges[k] - edges[k - 1];
    ++width_count;
  }
  require(width_count > 0 && width_sum > 0.0, "edges_linearity: non-increasing edges");
  const double lsb = width_sum / static_cast<double>(width_count);

  for (std::size_t k = 1; k + 1 < ncodes; ++k) {
    r.dnl[k] = (edges[k] - edges[k - 1]) / lsb - 1.0;
  }
  finalize(r);
  ADC_ENSURE(adc::common::all_finite(r.dnl) && adc::common::all_finite(r.inl),
             "edges_linearity: non-finite DNL/INL entry");
  return r;
}

bool is_monotonic(std::span<const int> codes_from_ramp) {
  for (std::size_t i = 1; i < codes_from_ramp.size(); ++i) {
    if (codes_from_ramp[i] < codes_from_ramp[i - 1]) return false;
  }
  return true;
}

}  // namespace adc::dsp
