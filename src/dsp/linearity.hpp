/// \file linearity.hpp
/// Static-linearity extraction: DNL and INL via the sine-wave histogram
/// (code-density) method, plus helpers for missing-code and monotonicity
/// checks. This reproduces the measurement behind the paper's Table I rows
/// "DNL +/-1.2 LSB" and "INL -1.5/+1 LSB".
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace adc::dsp {

/// Result of a static-linearity measurement.
struct LinearityResult {
  int bits = 0;
  /// DNL per code transition, in LSB. Index k is the differential
  /// non-linearity of code k (codes 1..2^bits-2; the two end codes are not
  /// defined and are stored as 0).
  std::vector<double> dnl;
  /// INL per code, in LSB (endpoint-corrected cumulative sum of DNL).
  std::vector<double> inl;

  double dnl_min = 0.0;
  double dnl_max = 0.0;
  double inl_min = 0.0;
  double inl_max = 0.0;

  /// Codes with an estimated width of zero (DNL == -1).
  std::vector<int> missing_codes;
  /// Total samples used.
  std::size_t sample_count = 0;
};

/// Sine-histogram DNL/INL. `codes` must come from a sine that slightly
/// overdrives both ends of the converter's range so every code is hit; the
/// standard arcsine probability-density correction is applied. `bits` is the
/// converter resolution. Requires a few hundred samples per code on average
/// for a trustworthy estimate (the bench uses >= 4M samples for 12 bits).
/// Throws MeasurementError if the record never reaches the end codes.
[[nodiscard]] LinearityResult histogram_linearity(std::span<const int> codes, int bits);

/// DNL/INL from an explicitly measured transfer function: `edges[k]` is the
/// input voltage of the transition between code k and k+1 (size 2^bits - 1).
/// Used by the fast ramp-based extraction in the test bench.
[[nodiscard]] LinearityResult edges_linearity(std::span<const double> edges, int bits);

/// True when the code sequence produced by a monotonically increasing input
/// never decreases.
[[nodiscard]] bool is_monotonic(std::span<const int> codes_from_ramp);

}  // namespace adc::dsp
