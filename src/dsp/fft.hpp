/// \file fft.hpp
/// Radix-2 iterative FFT, implemented from scratch for the measurement bench.
///
/// The spectral tests in the paper (Figs. 5, 6 and the Table I dynamic
/// metrics) are single-tone coherent captures; a power-of-two radix-2
/// transform with double precision is exactly what an ADC characterization
/// bench uses. Forward transform is unnormalized; the inverse divides by N so
/// that ifft(fft(x)) == x.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace adc::dsp {

using Complex = std::complex<double>;

/// In-place forward FFT. `data.size()` must be a power of two (>= 1).
void fft_in_place(std::vector<Complex>& data);

/// In-place inverse FFT (normalized by 1/N).
void ifft_in_place(std::vector<Complex>& data);

/// Forward FFT of a real sequence. Returns the full complex spectrum of
/// length n (power of two required).
[[nodiscard]] std::vector<Complex> fft_real(std::span<const double> x);

/// One-sided magnitude-squared spectrum of a real sequence: bins 0..n/2
/// inclusive. Bin k holds |X_k|^2 * (k in {0, n/2} ? 1 : 2) / n^2, i.e. the
/// power of the corresponding real sinusoid so that a full-scale coherent
/// tone of amplitude A lands at A^2/2 regardless of n.
[[nodiscard]] std::vector<double> power_spectrum(std::span<const double> x);

}  // namespace adc::dsp
