/// \file fft.hpp
/// Radix-2 iterative FFT with cached plans, implemented from scratch for the
/// measurement bench.
///
/// The spectral tests in the paper (Figs. 5, 6 and the Table I dynamic
/// metrics) are single-tone coherent captures; a power-of-two radix-2
/// transform with double precision is exactly what an ADC characterization
/// bench uses. Forward transform is unnormalized; the inverse divides by N so
/// that ifft(fft(x)) == x.
///
/// A sweep reruns the same record length ~15 times (one capture per rate or
/// input-frequency point), so the setup work — bit-reversal permutation and
/// twiddle factors — is hoisted into an `FftPlan` that is computed once per
/// length and shared process-wide through a thread-safe cache. The twiddles
/// are tabulated directly from cos/sin instead of the classic `w *= wlen`
/// recurrence, whose rounding error accumulates over a 65536-point pass.
/// Real-input transforms run as a half-length complex FFT plus an O(n)
/// unpacking pass (the standard packing trick), halving both work and memory
/// traffic.
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace adc::dsp {

using Complex = std::complex<double>;

/// Precomputed tables for one power-of-two transform length. Plans are
/// immutable after construction and safe to share between threads; get one
/// from `FftPlan::shared()` (cached) or construct directly (uncached).
class FftPlan {
 public:
  /// Build the tables for length `n` (power of two >= 1).
  explicit FftPlan(std::size_t n);

  /// The process-wide cached plan for length `n`. The first request for a
  /// length pays the table construction; later requests (the other ~14
  /// captures of a sweep, any thread) reuse it.
  [[nodiscard]] static std::shared_ptr<const FftPlan> shared(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// In-place forward transform of `data` (`data.size() == size()`).
  void forward(std::span<Complex> data) const;

  /// In-place inverse transform, normalized by 1/N.
  void inverse(std::span<Complex> data) const;

  /// Forward transform of the real sequence `x` (`x.size() == size()`) into
  /// the full complex spectrum of length n, using a half-length complex
  /// transform internally. `out.size()` must equal `size()`.
  void forward_real(std::span<const double> x, std::span<Complex> out) const;

 private:
  void transform(std::span<Complex> a, bool inverse) const;

  std::size_t n_;
  /// Bit-reversal permutation: for each i, the index it swaps with.
  std::vector<std::uint32_t> bitrev_;
  /// Twiddle table: w_[k] = exp(-2*pi*i*k/n) for k in [0, n/2). Stage `len`
  /// of the transform reads it with stride n/len.
  std::vector<Complex> w_;
  /// The half-length plan backing `forward_real` (null for n < 2).
  std::shared_ptr<const FftPlan> half_;
};

/// In-place forward FFT. `data.size()` must be a power of two (>= 1).
/// Uses the cached plan for that length.
void fft_in_place(std::vector<Complex>& data);

/// In-place inverse FFT (normalized by 1/N).
void ifft_in_place(std::vector<Complex>& data);

/// Forward FFT of a real sequence. Returns the full complex spectrum of
/// length n (power of two required).
[[nodiscard]] std::vector<Complex> fft_real(std::span<const double> x);

/// One-sided magnitude-squared spectrum of a real sequence: bins 0..n/2
/// inclusive. Bin k holds |X_k|^2 * (k in {0, n/2} ? 1 : 2) / n^2, i.e. the
/// power of the corresponding real sinusoid so that a full-scale coherent
/// tone of amplitude A lands at A^2/2 regardless of n.
[[nodiscard]] std::vector<double> power_spectrum(std::span<const double> x);

}  // namespace adc::dsp
