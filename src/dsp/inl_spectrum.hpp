/// \file inl_spectrum.hpp
/// Harmonic prediction from static linearity.
///
/// A converter's INL curve *is* its static transfer error; driving a sine
/// through it predicts the static part of the measured harmonics (the
/// frequency-independent floor of the paper's Fig. 6). Comparing the
/// prediction against the measured low-frequency spectrum separates static
/// error (capacitor mismatch, charge injection, finite gain) from dynamic
/// error (tracking, settling, jitter) — a standard characterization
/// cross-check, implemented here by sampling the INL over one sine period
/// and reading its Fourier series.
#pragma once

#include <span>
#include <vector>

namespace adc::dsp {

/// Predicted static harmonics.
struct InlSpectrumResult {
  /// harmonic_dbc[h] is the level of HD(h) relative to the fundamental,
  /// for h = 2..max_harmonic (index 0/1 unused, set to -inf-ish).
  std::vector<double> harmonic_dbc;
  /// All predicted harmonics 2..max summed [dBc].
  double thd_db = 0.0;
  /// Largest single predicted harmonic [dBc] and its order.
  double worst_dbc = 0.0;
  int worst_order = 0;
};

/// Predict the harmonics a full-scale-fraction `amplitude_fraction` sine
/// would show, given the INL curve `inl_lsb` (one entry per output code, in
/// LSB, as produced by histogram_linearity/edges_linearity) of a `bits`-bit
/// converter. `max_harmonic` bounds the prediction order.
[[nodiscard]] InlSpectrumResult predict_harmonics_from_inl(std::span<const double> inl_lsb,
                                                           int bits,
                                                           double amplitude_fraction = 0.985,
                                                           int max_harmonic = 10);

}  // namespace adc::dsp
