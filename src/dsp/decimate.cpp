#include "dsp/decimate.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace adc::dsp {

std::vector<double> design_lowpass_fir(double cutoff_norm, std::size_t taps) {
  adc::common::require(cutoff_norm > 0.0 && cutoff_norm < 0.5,
                       "design_lowpass_fir: cutoff outside (0, 0.5)");
  adc::common::require(taps >= 5 && taps % 2 == 1,
                       "design_lowpass_fir: need an odd tap count >= 5");
  const auto m = static_cast<double>(taps - 1);
  std::vector<double> h(taps);
  double sum = 0.0;
  for (std::size_t k = 0; k < taps; ++k) {
    const double x = static_cast<double>(k) - m / 2.0;
    // Ideal low-pass impulse response (x == 0 exactly when k is the centre tap,
    // which only exists for odd tap counts).
    const double sinc = 2 * k + 1 == taps ? 2.0 * cutoff_norm
                                          : std::sin(2.0 * std::numbers::pi * cutoff_norm * x) /
                                                (std::numbers::pi * x);
    // ...shaped by a Blackman window (-74 dB sidelobes).
    const double w = 0.42 -
                     0.5 * std::cos(2.0 * std::numbers::pi * static_cast<double>(k) / m) +
                     0.08 * std::cos(4.0 * std::numbers::pi * static_cast<double>(k) / m);
    h[k] = sinc * w;
    sum += h[k];
  }
  // Unity DC gain.
  for (auto& v : h) v /= sum;
  return h;
}

double fir_magnitude(std::span<const double> taps, double f_norm) {
  double re = 0.0;
  double im = 0.0;
  for (std::size_t k = 0; k < taps.size(); ++k) {
    const double phase = -2.0 * std::numbers::pi * f_norm * static_cast<double>(k);
    re += taps[k] * std::cos(phase);
    im += taps[k] * std::sin(phase);
  }
  return std::sqrt(re * re + im * im);
}

std::vector<double> decimate(std::span<const double> x, std::span<const double> fir,
                             std::size_t factor) {
  adc::common::require(factor >= 1, "decimate: factor must be >= 1");
  adc::common::require(!fir.empty(), "decimate: empty filter");
  adc::common::require(x.size() > fir.size(), "decimate: record shorter than the filter");
  std::vector<double> out;
  out.reserve((x.size() - fir.size()) / factor + 1);
  for (std::size_t start = 0; start + fir.size() <= x.size(); start += factor) {
    double acc = 0.0;
    for (std::size_t k = 0; k < fir.size(); ++k) acc += fir[k] * x[start + k];
    out.push_back(acc);
  }
  return out;
}

std::vector<double> decimate_by(std::span<const double> x, std::size_t factor,
                                std::size_t taps_per_phase) {
  adc::common::require(factor >= 2, "decimate_by: factor must be >= 2");
  adc::common::require(taps_per_phase >= 4, "decimate_by: too few taps per phase");
  std::size_t taps = factor * taps_per_phase + 1;
  if (taps % 2 == 0) ++taps;
  // Cut off at 80 % of the post-decimation Nyquist: full rejection of the
  // aliasing bands with a modest transition.
  const auto fir = design_lowpass_fir(0.4 / static_cast<double>(factor), taps);
  return decimate(x, fir, factor);
}

}  // namespace adc::dsp
