#include "dsp/inl_spectrum.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "dsp/fft.hpp"

namespace adc::dsp {

InlSpectrumResult predict_harmonics_from_inl(std::span<const double> inl_lsb, int bits,
                                             double amplitude_fraction, int max_harmonic) {
  adc::common::require(bits >= 2 && bits <= 20, "predict_harmonics_from_inl: bad resolution");
  const auto ncodes = static_cast<std::size_t>(1) << bits;
  adc::common::require(inl_lsb.size() == ncodes,
                       "predict_harmonics_from_inl: INL must have one entry per code");
  adc::common::require(amplitude_fraction > 0.0 && amplitude_fraction <= 1.05,
                       "predict_harmonics_from_inl: amplitude outside (0, 1.05]");
  adc::common::require(max_harmonic >= 2 && max_harmonic <= 100,
                       "predict_harmonics_from_inl: bad harmonic bound");

  // Drive one exact sine period through the static error curve. 2^14 phase
  // points put the sampling images far above max_harmonic.
  const std::size_t n = 1 << 14;
  const double mid = (static_cast<double>(ncodes) - 1.0) / 2.0;
  std::vector<double> error(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double theta =
        2.0 * std::numbers::pi * static_cast<double>(i) / static_cast<double>(n);
    const double v = amplitude_fraction * std::sin(theta);  // in full-scale halves
    // Map to the code axis and linearly interpolate the INL curve.
    double code = (v + 1.0) / 2.0 * static_cast<double>(ncodes) - 0.5;
    code = adc::common::clamp(code, 0.0, static_cast<double>(ncodes) - 1.0);
    const auto k0 = static_cast<std::size_t>(code);
    const auto k1 = std::min(k0 + 1, ncodes - 1);
    const double frac = code - static_cast<double>(k0);
    error[i] = (1.0 - frac) * inl_lsb[k0] + frac * inl_lsb[k1];
    (void)mid;
  }

  const auto ps = power_spectrum(error);

  InlSpectrumResult r;
  r.harmonic_dbc.assign(static_cast<std::size_t>(max_harmonic) + 1, -300.0);
  // Signal amplitude on the code axis: amplitude_fraction * 2^(bits-1) LSB.
  const double signal_power =
      std::pow(amplitude_fraction * std::ldexp(1.0, bits - 1), 2.0) / 2.0;
  double thd_power = 0.0;
  r.worst_dbc = -300.0;
  for (int h = 2; h <= max_harmonic; ++h) {
    const double p = ps[static_cast<std::size_t>(h)];
    const double dbc =
        adc::common::db_from_power_ratio(std::max(p, 1e-30) / signal_power);
    r.harmonic_dbc[static_cast<std::size_t>(h)] = dbc;
    thd_power += p;
    if (dbc > r.worst_dbc) {
      r.worst_dbc = dbc;
      r.worst_order = h;
    }
  }
  r.thd_db =
      adc::common::db_from_power_ratio(std::max(thd_power, 1e-30) / signal_power);
  return r;
}

}  // namespace adc::dsp
