#include "dsp/fft.hpp"

#include <cmath>
#include <numbers>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"

namespace adc::dsp {

namespace {

/// Bit-reversal permutation for radix-2 decimation-in-time.
void bit_reverse(std::vector<Complex>& a) {
  const std::size_t n = a.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
}

void transform(std::vector<Complex>& a, bool inverse) {
  const std::size_t n = a.size();
  adc::common::require(adc::common::is_power_of_two(n), "fft: length must be a power of two");
  bit_reverse(a);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = a[i + k];
        const Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace

void fft_in_place(std::vector<Complex>& data) { transform(data, /*inverse=*/false); }

void ifft_in_place(std::vector<Complex>& data) {
  transform(data, /*inverse=*/true);
  const double inv_n = 1.0 / static_cast<double>(data.size());
  for (auto& v : data) v *= inv_n;
}

std::vector<Complex> fft_real(std::span<const double> x) {
  ADC_EXPECT(adc::common::all_finite(x), "fft_real: non-finite sample in input record");
  std::vector<Complex> data(x.begin(), x.end());
  fft_in_place(data);
  return data;
}

std::vector<double> power_spectrum(std::span<const double> x) {
  const std::size_t n = x.size();
  auto spec = fft_real(x);
  const std::size_t half = n / 2;
  std::vector<double> power(half + 1);
  const double norm = 1.0 / (static_cast<double>(n) * static_cast<double>(n));
  for (std::size_t k = 0; k <= half; ++k) {
    const double mag2 = std::norm(spec[k]) * norm;
    // Fold the negative-frequency half into bins 1..n/2-1; DC and Nyquist
    // have no mirror.
    power[k] = (k == 0 || k == half) ? mag2 : 2.0 * mag2;
  }
  ADC_ENSURE(adc::common::all_finite(power), "power_spectrum: non-finite bin power");
  return power;
}

}  // namespace adc::dsp
