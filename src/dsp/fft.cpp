#include "dsp/fft.hpp"

#include <cmath>
#include <map>
#include <mutex>
#include <numbers>
#include <utility>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"

namespace adc::dsp {

FftPlan::FftPlan(std::size_t n) : n_(n) {
  adc::common::require(adc::common::is_power_of_two(n), "fft: length must be a power of two");

  // Bit-reversal permutation table (the same j-walk the in-place transform
  // used to redo on every call).
  bitrev_.resize(n);
  std::size_t j = 0;
  bitrev_[0] = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    bitrev_[i] = static_cast<std::uint32_t>(j);
  }

  // Twiddle table w_[k] = exp(-2*pi*i*k/n), tabulated from cos/sin per entry
  // rather than the multiplicative recurrence (whose rounding error grows
  // with k and with the record length).
  w_.resize(n / 2);
  const double step = -2.0 * std::numbers::pi / static_cast<double>(n);
  for (std::size_t k = 0; k < w_.size(); ++k) {
    const double angle = step * static_cast<double>(k);
    w_[k] = Complex(std::cos(angle), std::sin(angle));
  }

  if (n >= 2) half_ = std::make_shared<const FftPlan>(n / 2);
}

std::shared_ptr<const FftPlan> FftPlan::shared(std::size_t n) {
  static std::mutex mutex;
  // Record lengths come from capture configurations (a handful of powers of
  // two per process), so an ever-growing cache is the right trade.
  static std::map<std::size_t, std::shared_ptr<const FftPlan>> cache;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    const auto it = cache.find(n);
    if (it != cache.end()) return it->second;
  }
  // Build outside the lock: two racing threads at worst build one extra plan
  // and the loser's copy is dropped by emplace.
  auto plan = std::make_shared<const FftPlan>(n);
  const std::lock_guard<std::mutex> lock(mutex);
  return cache.emplace(n, std::move(plan)).first->second;
}

void FftPlan::transform(std::span<Complex> a, bool inverse) const {
  ADC_EXPECT(a.size() == n_, "FftPlan::transform: length does not match the plan");
  for (std::size_t i = 1; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(a[i], a[j]);
  }
  // Butterflies on explicit re/im pairs: std::complex multiplication may
  // fall back to the NaN-propagating __muldc3 helper, which the transform
  // never needs (all twiddles are finite by construction).
  const double conj_sign = inverse ? -1.0 : 1.0;
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t stride = n_ / len;
    for (std::size_t i = 0; i < n_; i += len) {
      const Complex* w = w_.data();
      for (std::size_t k = 0; k < half; ++k, w += stride) {
        const double wr = w->real();
        const double wi = conj_sign * w->imag();
        Complex& lo = a[i + k];
        Complex& hi = a[i + k + half];
        const double vr = hi.real() * wr - hi.imag() * wi;
        const double vi = hi.real() * wi + hi.imag() * wr;
        const double ur = lo.real();
        const double ui = lo.imag();
        lo = Complex(ur + vr, ui + vi);
        hi = Complex(ur - vr, ui - vi);
      }
    }
  }
}

void FftPlan::forward(std::span<Complex> data) const { transform(data, /*inverse=*/false); }

void FftPlan::inverse(std::span<Complex> data) const {
  transform(data, /*inverse=*/true);
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (auto& v : data) v *= inv_n;
}

void FftPlan::forward_real(std::span<const double> x, std::span<Complex> out) const {
  ADC_EXPECT(x.size() == n_ && out.size() == n_,
             "FftPlan::forward_real: length does not match the plan");
  if (n_ == 1) {
    out[0] = Complex(x[0], 0.0);
    return;
  }

  // Pack adjacent real samples into complex points and run the half-length
  // transform: z[j] = x[2j] + i*x[2j+1].
  const std::size_t m = n_ / 2;
  std::vector<Complex> z(m);
  for (std::size_t i = 0; i < m; ++i) z[i] = Complex(x[2 * i], x[2 * i + 1]);
  half_->forward(z);

  // Unpack with the full-length twiddles: with E/O the spectra of the even
  // and odd subsequences, X[k] = E_k + W_n^k O_k and X[k+m] = E_k - W_n^k O_k.
  out[0] = Complex(z[0].real() + z[0].imag(), 0.0);
  out[m] = Complex(z[0].real() - z[0].imag(), 0.0);
  for (std::size_t k = 1; k < m; ++k) {
    const Complex zk = z[k];
    const Complex zmk = std::conj(z[m - k]);
    const double er = 0.5 * (zk.real() + zmk.real());
    const double ei = 0.5 * (zk.imag() + zmk.imag());
    // O_k = (Z_k - conj(Z_{m-k})) / (2i)
    const double orr = 0.5 * (zk.imag() - zmk.imag());
    const double oi = -0.5 * (zk.real() - zmk.real());
    const double wr = w_[k].real();
    const double wi = w_[k].imag();
    const double tr = orr * wr - oi * wi;
    const double ti = orr * wi + oi * wr;
    out[k] = Complex(er + tr, ei + ti);
    out[n_ - k] = Complex(er + tr, -(ei + ti));  // conjugate symmetry of a real input
  }
}

void fft_in_place(std::vector<Complex>& data) { FftPlan::shared(data.size())->forward(data); }

void ifft_in_place(std::vector<Complex>& data) { FftPlan::shared(data.size())->inverse(data); }

std::vector<Complex> fft_real(std::span<const double> x) {
  ADC_EXPECT(adc::common::all_finite(x), "fft_real: non-finite sample in input record");
  const auto plan = FftPlan::shared(x.size());
  std::vector<Complex> out(x.size());
  plan->forward_real(x, out);
  return out;
}

std::vector<double> power_spectrum(std::span<const double> x) {
  const std::size_t n = x.size();
  auto spec = fft_real(x);
  const std::size_t half = n / 2;
  std::vector<double> power(half + 1);
  const double norm = 1.0 / (static_cast<double>(n) * static_cast<double>(n));
  for (std::size_t k = 0; k <= half; ++k) {
    const double mag2 = std::norm(spec[k]) * norm;
    // Fold the negative-frequency half into bins 1..n/2-1; DC and Nyquist
    // have no mirror.
    power[k] = (k == 0 || k == half) ? mag2 : 2.0 * mag2;
  }
  ADC_ENSURE(adc::common::all_finite(power), "power_spectrum: non-finite bin power");
  return power;
}

}  // namespace adc::dsp
