/// \file decimate.hpp
/// Oversampling post-processing: FIR low-pass + decimation.
///
/// The converter's IP pitch (paper section 1) includes applications that run
/// it far above the signal bandwidth — an ultrasound probe sampling a 5 MHz
/// transducer at 40 MS/s, say. Digital decimation then trades the spare
/// bandwidth for resolution: every halving of the rate removes half the
/// (white) noise power, +3 dB SNR = +0.5 ENOB per octave, until the
/// converter's distortion floor takes over. This module provides a windowed-
/// sinc FIR designer and a polyphase-free reference decimator; the process-
/// gain law is verified against the full converter model in the tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace adc::dsp {

/// Design a linear-phase low-pass FIR by the windowed-sinc method.
/// `cutoff_norm` is the -6 dB cutoff as a fraction of the *input* sample
/// rate (0 < cutoff < 0.5); `taps` must be odd for a symmetric type-I
/// filter. A Blackman window sets ~-74 dB stopband.
[[nodiscard]] std::vector<double> design_lowpass_fir(double cutoff_norm, std::size_t taps);

/// Frequency response magnitude of an FIR at normalized frequency f (0..0.5).
[[nodiscard]] double fir_magnitude(std::span<const double> taps, double f_norm);

/// Filter-then-decimate by integer `factor`. The FIR should cut off at or
/// below 0.5/factor of the input rate. Transient-free output: the first
/// output sample uses fully-primed filter state, so the output length is
/// (n - taps) / factor + 1 (approximately n/factor).
[[nodiscard]] std::vector<double> decimate(std::span<const double> x,
                                           std::span<const double> fir, std::size_t factor);

/// Convenience: design the right FIR and decimate in one call. `factor`
/// must be >= 2; `taps_per_phase` scales the filter length (quality knob).
[[nodiscard]] std::vector<double> decimate_by(std::span<const double> x, std::size_t factor,
                                              std::size_t taps_per_phase = 16);

}  // namespace adc::dsp
