#include "dsp/signal.hpp"

#include <cmath>
#include <numbers>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/fastmath.hpp"

namespace adc::dsp {

namespace {
constexpr double two_pi = 2.0 * std::numbers::pi;
}

SineSignal::SineSignal(double amplitude, double frequency_hz, double phase_rad,
                       double offset)
    : amplitude_(amplitude), frequency_(frequency_hz), phase_(phase_rad), offset_(offset) {
  adc::common::require(frequency_hz >= 0.0, "SineSignal: negative frequency");
}

double SineSignal::value(double t) const {
  return offset_ + amplitude_ * std::sin(two_pi * frequency_ * t + phase_);
}

double SineSignal::slope(double t) const {
  return amplitude_ * two_pi * frequency_ * std::cos(two_pi * frequency_ * t + phase_);
}

void SineSignal::sample_fast(double t, double& value_out, double& slope_out) const {
  double s = 0.0;
  double c = 0.0;
  adc::common::fastmath::sincos_fast(two_pi * frequency_ * t + phase_, s, c);
  value_out = offset_ + amplitude_ * s;
  slope_out = amplitude_ * two_pi * frequency_ * c;
}

MultiToneSignal::MultiToneSignal(std::vector<Tone> tones) : tones_(std::move(tones)) {
  adc::common::require(!tones_.empty(), "MultiToneSignal: no tones");
}

double MultiToneSignal::value(double t) const {
  double v = 0.0;
  for (const auto& tone : tones_) {
    v += tone.amplitude * std::sin(two_pi * tone.frequency_hz * t + tone.phase_rad);
  }
  return v;
}

double MultiToneSignal::slope(double t) const {
  double v = 0.0;
  for (const auto& tone : tones_) {
    v += tone.amplitude * two_pi * tone.frequency_hz *
         std::cos(two_pi * tone.frequency_hz * t + tone.phase_rad);
  }
  return v;
}

void MultiToneSignal::sample_fast(double t, double& value_out, double& slope_out) const {
  double v = 0.0;
  double dv = 0.0;
  for (const auto& tone : tones_) {
    double s = 0.0;
    double c = 0.0;
    adc::common::fastmath::sincos_fast(two_pi * tone.frequency_hz * t + tone.phase_rad, s, c);
    v += tone.amplitude * s;
    dv += tone.amplitude * two_pi * tone.frequency_hz * c;
  }
  value_out = v;
  slope_out = dv;
}

RampSignal::RampSignal(double start, double stop, double duration_s)
    : start_(start), stop_(stop), duration_(duration_s) {
  adc::common::require(duration_s > 0.0, "RampSignal: non-positive duration");
}

double RampSignal::value(double t) const {
  if (t <= 0.0) return start_;
  if (t >= duration_) return stop_;
  return start_ + (stop_ - start_) * (t / duration_);
}

double RampSignal::slope(double t) const {
  if (t <= 0.0 || t >= duration_) return 0.0;
  return (stop_ - start_) / duration_;
}

CoherentTone coherent_frequency(double target_hz, double fs, std::size_t n) {
  adc::common::require(n >= 4, "coherent_frequency: record too short");
  adc::common::require(target_hz > 0.0 && target_hz < fs / 2.0,
                       "coherent_frequency: target outside (0, fs/2)");
  const double bin = fs / static_cast<double>(n);
  auto m = static_cast<std::size_t>(std::llround(target_hz / bin));
  if (m < 1) m = 1;
  if (m % 2 == 0) {
    // Prefer the odd neighbour closest to the target.
    const double lo_err = std::abs(static_cast<double>(m - 1) * bin - target_hz);
    const double hi_err = std::abs(static_cast<double>(m + 1) * bin - target_hz);
    m = (m + 1 < n / 2 && hi_err <= lo_err) ? m + 1 : m - 1;
    if (m < 1) m = 1;
  }
  if (m >= n / 2) m = n / 2 - 1;
  ADC_ENSURE(m >= 1 && m < n / 2, "coherent_frequency: bin escaped (0, n/2)");
  return {static_cast<double>(m) * bin, m};
}

}  // namespace adc::dsp
