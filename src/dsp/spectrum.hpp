/// \file spectrum.hpp
/// Single-tone spectral metrics: SNR, SNDR, THD, SFDR, ENOB.
///
/// This mirrors the dynamic characterization bench of the paper: capture a
/// record of converter output while a filtered sine is applied, FFT it, and
/// integrate signal, harmonic and noise power. All conventions follow IEEE
/// Std 1241 (single-tone sine-wave testing of ADCs):
///   SNR  = P_signal / P_noise               (harmonics excluded from noise)
///   SNDR = P_signal / (P_noise + P_harmonics + P_spurs)
///   THD  = P_harmonics(2..H) / P_signal
///   SFDR = P_signal / P_largest_spur        (harmonic or not)
///   ENOB = (SNDR_dB - 1.76) / 6.02
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "dsp/window.hpp"

namespace adc::dsp {

/// Options for `analyze_tone`.
struct SpectrumOptions {
  /// Window applied before the FFT. Coherent captures use rectangular.
  WindowType window = WindowType::kRectangular;
  /// Highest harmonic order included in THD (2..max_harmonic).
  int max_harmonic = 10;
  /// Bins 0..dc_span excluded from all power integrals (DC and offset drift).
  std::size_t dc_span = 3;
  /// Force the fundamental to a known bin instead of peak-searching.
  std::optional<std::size_t> fundamental_bin;
  /// True (pre-aliasing) tone frequency [Hz] for undersampled captures:
  /// harmonic h is then looked up at alias(h * harmonic_base_hz) instead of
  /// h times the folded fundamental.
  std::optional<double> harmonic_base_hz;
};

/// One harmonic of the fundamental, folded into the first Nyquist zone.
struct HarmonicInfo {
  int order = 0;            ///< 2 for HD2, 3 for HD3, ...
  std::size_t bin = 0;      ///< centre bin after aliasing
  double frequency_hz = 0;  ///< folded frequency
  double power = 0.0;       ///< integrated power [V^2]
  double dbc = 0.0;         ///< level relative to the fundamental [dBc]
};

/// Full result of a single-tone spectral measurement.
struct SpectrumMetrics {
  double sample_rate_hz = 0.0;
  std::size_t record_length = 0;

  std::size_t fundamental_bin = 0;
  double fundamental_freq_hz = 0.0;
  double signal_power = 0.0;      ///< [V^2]
  double signal_amplitude = 0.0;  ///< [V peak]

  double noise_power = 0.0;  ///< non-harmonic, non-DC [V^2]
  double thd_power = 0.0;    ///< harmonics 2..max_harmonic [V^2]

  double snr_db = 0.0;
  double sndr_db = 0.0;
  double thd_db = 0.0;   ///< dBc (negative for real converters)
  double sfdr_db = 0.0;  ///< dB below the fundamental
  double enob = 0.0;

  /// The spur that sets SFDR.
  std::size_t spur_bin = 0;
  double spur_freq_hz = 0.0;
  double spur_power = 0.0;
  /// Harmonic order of the SFDR spur, or 0 if it is not one of the tracked
  /// harmonics.
  int spur_harmonic_order = 0;

  std::vector<HarmonicInfo> harmonics;
};

/// Analyze a single-tone record. `samples` is the converter output expressed
/// in volts (or any consistent unit); length must be a power of two >= 16.
/// Throws MeasurementError when no fundamental can be identified.
[[nodiscard]] SpectrumMetrics analyze_tone(std::span<const double> samples, double sample_rate_hz,
                                           const SpectrumOptions& options = {});

/// Analyze multiple records of the same tone by averaging their *power
/// spectra* before reading the metrics (the bench technique for tightening
/// the noise/spur estimates; expectation values are unchanged). All records
/// must share one length.
[[nodiscard]] SpectrumMetrics analyze_tone_averaged(
    const std::vector<std::vector<double>>& records, double sample_rate_hz,
    const SpectrumOptions& options = {});

/// Fold frequency `f` into the first Nyquist zone [0, fs/2].
[[nodiscard]] double alias_frequency(double f, double fs);

/// Convert an ADC code record (integers stored as double, or raw codes) into
/// volts around mid-scale: v = (code - (2^bits-1)/2) * lsb.
[[nodiscard]] std::vector<double> codes_to_volts(std::span<const int> codes, int bits,
                                                 double full_scale_vpp);

}  // namespace adc::dsp
