#include "dsp/window.hpp"

#include <cmath>
#include <map>
#include <mutex>
#include <numbers>
#include <utility>

#include "common/error.hpp"

namespace adc::dsp {

std::string to_string(WindowType type) {
  switch (type) {
    case WindowType::kRectangular: return "rectangular";
    case WindowType::kHann: return "hann";
    case WindowType::kBlackmanHarris4: return "blackman-harris-4";
  }
  return "unknown";
}

std::vector<double> make_window(WindowType type, std::size_t n) {
  adc::common::require(n >= 1, "make_window: length must be >= 1");
  std::vector<double> w(n, 1.0);
  const double two_pi = 2.0 * std::numbers::pi;
  switch (type) {
    case WindowType::kRectangular:
      break;
    case WindowType::kHann:
      for (std::size_t i = 0; i < n; ++i) {
        const double x = two_pi * static_cast<double>(i) / static_cast<double>(n);
        w[i] = 0.5 - 0.5 * std::cos(x);
      }
      break;
    case WindowType::kBlackmanHarris4: {
      constexpr double a0 = 0.35875;
      constexpr double a1 = 0.48829;
      constexpr double a2 = 0.14128;
      constexpr double a3 = 0.01168;
      for (std::size_t i = 0; i < n; ++i) {
        const double x = two_pi * static_cast<double>(i) / static_cast<double>(n);
        w[i] = a0 - a1 * std::cos(x) + a2 * std::cos(2.0 * x) - a3 * std::cos(3.0 * x);
      }
      break;
    }
  }
  return w;
}

std::shared_ptr<const WindowTable> shared_window(WindowType type, std::size_t n) {
  static std::mutex mutex;
  static std::map<std::pair<WindowType, std::size_t>, std::shared_ptr<const WindowTable>> cache;
  const auto key = std::make_pair(type, n);
  {
    const std::lock_guard<std::mutex> lock(mutex);
    const auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }
  auto table = std::make_shared<WindowTable>();
  table->coeff = make_window(type, n);
  table->coherent_gain = coherent_gain(table->coeff);
  table->noise_gain = noise_gain(table->coeff);
  const std::lock_guard<std::mutex> lock(mutex);
  return cache.emplace(key, std::move(table)).first->second;
}

double coherent_gain(std::span<const double> window) {
  adc::common::require(!window.empty(), "coherent_gain: empty window");
  double s = 0.0;
  for (double v : window) s += v;
  return s / static_cast<double>(window.size());
}

double noise_gain(std::span<const double> window) {
  adc::common::require(!window.empty(), "noise_gain: empty window");
  double s = 0.0;
  for (double v : window) s += v * v;
  return s / static_cast<double>(window.size());
}

double enbw_bins(std::span<const double> window) {
  double s1 = 0.0;
  double s2 = 0.0;
  for (double v : window) {
    s1 += v;
    s2 += v * v;
  }
  adc::common::require(std::abs(s1) > 0.0, "enbw_bins: zero-sum window");
  return static_cast<double>(window.size()) * s2 / (s1 * s1);
}

std::size_t leakage_span_bins(WindowType type) {
  switch (type) {
    case WindowType::kRectangular: return 0;  // coherent capture: no leakage
    case WindowType::kHann: return 2;
    case WindowType::kBlackmanHarris4: return 4;
  }
  return 0;
}

void apply_window(std::span<double> x, std::span<const double> window) {
  adc::common::require(x.size() == window.size(), "apply_window: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) x[i] *= window[i];
}

}  // namespace adc::dsp
