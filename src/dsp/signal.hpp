/// \file signal.hpp
/// Continuous-time test signals applied to the converter's analog input.
///
/// The behavioral front-end needs both the instantaneous value and the time
/// derivative of the source (the derivative drives the signal-dependent
/// tracking error of the un-bootstrapped input switches, the mechanism behind
/// the paper's Fig. 6 SFDR roll-off). Signals therefore expose `value(t)` and
/// `slope(t)` analytically.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace adc::dsp {

/// A differential continuous-time signal v(t) in volts. For a converter with
/// full scale 2 V_P-P differential, a full-scale sine has amplitude 1.0.
class Signal {
 public:
  virtual ~Signal() = default;
  /// Instantaneous differential value [V] at time t [s].
  [[nodiscard]] virtual double value(double t) const = 0;
  /// Instantaneous time derivative [V/s] at time t [s].
  [[nodiscard]] virtual double slope(double t) const = 0;

  /// `fast`-profile evaluation: value and slope together, with the
  /// transcendentals routed through common/fastmath.hpp where a source
  /// overrides it (sines share one sincos). The default falls back to the
  /// exact pair, so purely algebraic sources need no override.
  virtual void sample_fast(double t, double& value_out, double& slope_out) const {
    value_out = value(t);
    slope_out = slope(t);
  }
};

/// Pure sine: offset + amplitude * sin(2*pi*f*t + phase).
class SineSignal final : public Signal {
 public:
  SineSignal(double amplitude, double frequency_hz, double phase_rad = 0.0,
             double offset = 0.0);

  [[nodiscard]] double value(double t) const override;
  [[nodiscard]] double slope(double t) const override;
  void sample_fast(double t, double& value_out, double& slope_out) const override;

  [[nodiscard]] double amplitude() const { return amplitude_; }
  [[nodiscard]] double frequency() const { return frequency_; }
  [[nodiscard]] double phase() const { return phase_; }
  [[nodiscard]] double offset() const { return offset_; }

 private:
  double amplitude_;
  double frequency_;
  double phase_;
  double offset_;
};

/// Sum of sines; used for two-tone intermodulation tests.
class MultiToneSignal final : public Signal {
 public:
  struct Tone {
    double amplitude = 0.0;
    double frequency_hz = 0.0;
    double phase_rad = 0.0;
  };
  explicit MultiToneSignal(std::vector<Tone> tones);

  [[nodiscard]] double value(double t) const override;
  [[nodiscard]] double slope(double t) const override;
  void sample_fast(double t, double& value_out, double& slope_out) const override;

  [[nodiscard]] const std::vector<Tone>& tones() const { return tones_; }

 private:
  std::vector<Tone> tones_;
};

/// Slow linear ramp from `start` to `stop` over `duration`; used for fast
/// static-transfer extraction. Values saturate outside [0, duration].
class RampSignal final : public Signal {
 public:
  RampSignal(double start, double stop, double duration_s);

  [[nodiscard]] double value(double t) const override;
  [[nodiscard]] double slope(double t) const override;

 private:
  double start_;
  double stop_;
  double duration_;
};

/// Constant DC level (slope 0); used for code-boundary probing.
class DcSignal final : public Signal {
 public:
  explicit DcSignal(double level) : level_(level) {}
  [[nodiscard]] double value(double) const override { return level_; }
  [[nodiscard]] double slope(double) const override { return 0.0; }

 private:
  double level_;
};

/// Result of coherent-frequency selection.
struct CoherentTone {
  double frequency_hz = 0.0;  ///< exact coherent tone frequency
  std::size_t cycles = 0;     ///< integer number of cycles in the record
};

/// Choose the coherent tone closest to `target_hz` for a record of `n`
/// samples at rate `fs`: f = M*fs/n with M odd (hence coprime with the
/// power-of-two n), so every code is exercised and bins never smear.
/// Requires 0 < target < fs/2 and n >= 4.
[[nodiscard]] CoherentTone coherent_frequency(double target_hz, double fs, std::size_t n);

}  // namespace adc::dsp
