/// \file window.hpp
/// Window functions for spectral analysis of captured ADC output.
///
/// Coherent captures (the default in the measurement harness, mirroring the
/// paper's bench) use the rectangular window; non-coherent captures use a
/// 4-term Blackman-Harris whose -92 dB sidelobes sit below a 12-bit
/// converter's noise floor.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace adc::dsp {

enum class WindowType {
  kRectangular,
  kHann,
  kBlackmanHarris4,  ///< 4-term Blackman-Harris, -92 dB sidelobes.
};

/// Human-readable window name (for reports).
[[nodiscard]] std::string to_string(WindowType type);

/// Generate the window coefficients of length n (n >= 1).
[[nodiscard]] std::vector<double> make_window(WindowType type, std::size_t n);

/// One cached window realization: the coefficients plus the gains every
/// spectral measurement needs. Immutable and shared between threads.
struct WindowTable {
  std::vector<double> coeff;
  double coherent_gain = 1.0;  ///< sum(w)/n
  double noise_gain = 1.0;     ///< sum(w^2)/n
};

/// Process-wide cached window for (type, n). A sweep reanalyzes records of
/// one length ~15 times; the trig to build the window (and the gain sums) is
/// paid once.
[[nodiscard]] std::shared_ptr<const WindowTable> shared_window(WindowType type, std::size_t n);

/// Coherent gain: sum(w)/n. Scales tone amplitudes measured through the window.
[[nodiscard]] double coherent_gain(std::span<const double> window);

/// Noise gain: sum(w^2)/n. Scales noise power measured through the window.
[[nodiscard]] double noise_gain(std::span<const double> window);

/// Equivalent noise bandwidth in bins: n*sum(w^2)/sum(w)^2.
[[nodiscard]] double enbw_bins(std::span<const double> window);

/// Number of FFT bins on each side of a tone's centre bin that hold
/// significant leakage energy for this window; the spectrum analyser
/// integrates (2*span+1) bins per tone.
[[nodiscard]] std::size_t leakage_span_bins(WindowType type);

/// Multiply x by the window in place. Sizes must match.
void apply_window(std::span<double> x, std::span<const double> window);

}  // namespace adc::dsp
