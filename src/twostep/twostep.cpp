#include "twostep/twostep.hpp"

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"

namespace adc::twostep {

using adc::common::require;

TwoStepNonIdealities TwoStepNonIdealities::all_off() {
  TwoStepNonIdealities f;
  f.thermal_noise = false;
  f.aperture_jitter = false;
  f.ladder_mismatch = false;
  f.comparator_imperfections = false;
  f.incomplete_settling = false;
  f.tracking_nonlinearity = false;
  return f;
}

TwoStepConfig TwoStepAdc::normalize(TwoStepConfig c) {
  require(c.coarse_bits >= 3 && c.coarse_bits <= 8, "TwoStepConfig: coarse bits 3..8");
  require(c.fine_bits >= 3 && c.fine_bits <= 9, "TwoStepConfig: fine bits 3..9");
  require(c.full_scale_vpp > 0.0, "TwoStepConfig: non-positive full scale");
  require(c.conversion_rate > 0.0, "TwoStepConfig: non-positive rate");
  require(c.sh_cap > 0.0, "TwoStepConfig: non-positive S/H capacitance");
  require(c.settle_fraction > 0.0 && c.settle_fraction <= 1.0,
          "TwoStepConfig: settle fraction outside (0, 1]");

  c.clock.frequency_hz = c.conversion_rate;
  const TwoStepNonIdealities& e = c.enable;
  if (!e.thermal_noise) c.noise_excess = 0.0;
  if (!e.aperture_jitter) c.clock.jitter_rms_s = 0.0;
  if (!e.ladder_mismatch) c.ladder_sigma = 0.0;
  if (!e.comparator_imperfections) {
    for (auto* spec : {&c.coarse_comparator, &c.fine_comparator}) {
      spec->sigma_offset = 0.0;
      spec->noise_rms = 0.0;
      spec->metastable_window = 0.0;
    }
  }
  if (!e.tracking_nonlinearity) c.input_switch.injection_fraction = 0.0;
  return c;
}

namespace {

/// Realized resistor-ladder thresholds over [-vref, +vref]: 2^bits segments
/// with relative width mismatch sigma, ends pinned to the references.
std::vector<double> realize_ladder(int bits, double vref, double sigma,
                                   adc::common::Rng& rng) {
  const auto segments = static_cast<std::size_t>(1) << bits;
  std::vector<double> widths(segments);
  double total = 0.0;
  for (auto& w : widths) {
    w = 1.0 + (sigma > 0.0 ? rng.gaussian(sigma) : 0.0);
    require(w > 0.0, "realize_ladder: segment width collapsed");
    total += w;
  }
  std::vector<double> thresholds(segments - 1);
  double acc = 0.0;
  for (std::size_t k = 0; k + 1 < segments; ++k) {
    acc += widths[k];
    thresholds[k] = -vref + 2.0 * vref * acc / total;
  }
  return thresholds;
}

/// Comparator bank at the realized thresholds.
std::vector<adc::analog::Comparator> make_bank(const std::vector<double>& thresholds,
                                               const adc::analog::ComparatorSpec& spec,
                                               adc::common::Rng& rng, const char* tag) {
  std::vector<adc::analog::Comparator> bank;
  bank.reserve(thresholds.size());
  for (std::size_t k = 0; k < thresholds.size(); ++k) {
    adc::analog::ComparatorSpec s = spec;
    s.threshold = thresholds[k];
    auto cmp_rng = rng.child(tag, k);
    bank.emplace_back(s, cmp_rng);
  }
  return bank;
}

/// Thermometer decode.
int decode(std::vector<adc::analog::Comparator>& bank, double v) {
  int count = 0;
  for (auto& cmp : bank) {
    if (cmp.decide(v)) ++count;
  }
  return count;
}

/// Segment midpoint of a realized ladder for code `c`.
double segment_mid(const std::vector<double>& thresholds, int c, double vref) {
  const double lo = c == 0 ? -vref : thresholds[static_cast<std::size_t>(c - 1)];
  const double hi = c == static_cast<int>(thresholds.size())
                        ? vref
                        : thresholds[static_cast<std::size_t>(c)];
  return 0.5 * (lo + hi);
}

}  // namespace

TwoStepAdc::TwoStepAdc(const TwoStepConfig& config)
    : config_(normalize(config)),
      rng_(config_.seed),
      noise_rng_(rng_.child("noise")),
      sampler_(config_.input_switch, 0.9, config_.sh_cap),
      clock_([this] {
        auto clk_rng = rng_.child("clock");
        return adc::clocking::SamplingClock(config_.clock, clk_rng);
      }()),
      residue_amp_(config_.residue_amp),
      residue_gain_(std::ldexp(1.0, config_.fine_bits - 2)),
      sigma_sample_(0.0) {
  const double vref = config_.full_scale_vpp / 2.0;
  if (config_.noise_excess > 0.0) {
    sigma_sample_ =
        std::sqrt(config_.noise_excess * 2.0 * adc::common::kt_nominal / config_.sh_cap);
  }
  auto ladder_rng = rng_.child("coarse-ladder");
  coarse_thresholds_ =
      realize_ladder(config_.coarse_bits, vref, config_.ladder_sigma, ladder_rng);
  auto fine_rng = rng_.child("fine-ladder");
  fine_thresholds_ =
      realize_ladder(config_.fine_bits, vref, config_.ladder_sigma, fine_rng);
  auto coarse_cmp_rng = rng_.child("coarse-cmp");
  coarse_ = make_bank(coarse_thresholds_, config_.coarse_comparator, coarse_cmp_rng, "c");
  auto fine_cmp_rng = rng_.child("fine-cmp");
  fine_ = make_bank(fine_thresholds_, config_.fine_comparator, fine_cmp_rng, "f");
}

int TwoStepAdc::quantize_sample(double sampled) {
  const double vref = config_.full_scale_vpp / 2.0;
  if (sigma_sample_ > 0.0) sampled += noise_rng_.gaussian(sigma_sample_);

  // Phase 1: coarse flash and DAC (the DAC taps the same realized ladder, so
  // coarse comparator offsets become residue growth that the fine range
  // absorbs, not missing codes).
  const int c = decode(coarse_, sampled);
  const double dac = segment_mid(coarse_thresholds_, c, vref);
  const double residue = sampled - dac;

  // Phase 2: residue amplification by two cascaded sqrt(G) stages (a single
  // closed-loop x32 amplifier would need ~9 GHz of GBW; real two-steps
  // cascade or subrange). Each stage gets half the settling window.
  const double g_stage = std::sqrt(residue_gain_);
  const double beta_stage = 1.0 / (g_stage + 1.0);
  const double window = config_.enable.incomplete_settling
                            ? config_.settle_fraction * 0.5 / config_.conversion_rate / 2.0
                            : 1.0;
  double amplified = residue;
  for (int stage = 0; stage < 2; ++stage) {
    const auto settled = residue_amp_.settle(g_stage * amplified, window, beta_stage,
                                             config_.residue_amp.bias_nominal);
    amplified = settled.output;
  }

  // Fine flash over +/- vref (2x over-range relative to the nominal
  // +/- vref/2 residue swing: the redundancy that absorbs coarse errors).
  const int f = decode(fine_, amplified);

  // Digital combine: the adder knows only the *nominal* level spacing
  // (D = c*2^(fine-1)/2 + f - overlap in hardware); the realized-ladder
  // deviations in the analog path above are exactly the converter's INL.
  const double coarse_step = 2.0 * vref / std::ldexp(1.0, config_.coarse_bits);
  const double fine_step = 2.0 * vref / std::ldexp(1.0, config_.fine_bits);
  const double dac_nominal = -vref + (static_cast<double>(c) + 0.5) * coarse_step;
  const double fine_nominal = -vref + (static_cast<double>(f) + 0.5) * fine_step;
  const double v_hat = dac_nominal + fine_nominal / residue_gain_;
  const double levels = std::ldexp(1.0, resolution_bits());
  auto code = static_cast<int>(std::llround((v_hat + vref) / (2.0 * vref) * levels - 0.5));
  const auto max_code = static_cast<int>(levels) - 1;
  return std::clamp(code, 0, max_code);
}

std::vector<int> TwoStepAdc::convert(const adc::dsp::Signal& signal, std::size_t n) {
  std::vector<int> codes;
  codes.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double t = clock_.sample_instant(k);
    const double v = signal.value(t);
    double tracked = v;
    if (config_.enable.tracking_nonlinearity) {
      tracked += sampler_.tracking_error(v, signal.slope(t));
      tracked += sampler_.charge_injection_error(v);
    }
    codes.push_back(quantize_sample(tracked));
  }
  return codes;
}

int TwoStepAdc::convert_dc(double v_diff) {
  double tracked = v_diff;
  if (config_.enable.tracking_nonlinearity) {
    tracked += sampler_.charge_injection_error(v_diff);
  }
  return quantize_sample(tracked);
}

TwoStepConfig reference_design(std::uint64_t seed) {
  TwoStepConfig c;
  c.seed = seed;
  c.coarse_bits = 6;
  c.fine_bits = 7;
  c.full_scale_vpp = 2.0;
  c.vdd = 1.8;
  c.conversion_rate = 80e6;  // [5]'s headline rate

  c.sh_cap = 1.0e-12;
  c.noise_excess = 1.5;
  c.ladder_sigma = 0.0008;

  // Coarse comparators can be sloppy (fine over-range covers them); fine
  // comparators carry the resolution and are auto-zeroed (small offsets).
  c.coarse_comparator.sigma_offset = 6e-3;
  c.coarse_comparator.noise_rms = 0.5e-3;
  c.fine_comparator.sigma_offset = 2.5e-3;
  c.fine_comparator.noise_rms = 0.5e-3;

  c.input_switch.type = adc::analog::SwitchType::kBulkSwitchedTg;
  c.input_switch.w_over_l_nmos = 60.0;
  c.input_switch.w_over_l_pmos = 120.0;
  c.input_switch.injection_fraction = 0.10;
  c.input_switch.injection_softening = 0.08;
  c.clock.jitter_rms_s = 0.3e-12;

  // Residue amplifier: high bandwidth at heavy bias -- the two-step's cost.
  c.residue_amp.dc_gain = 20000.0;
  c.residue_amp.gbw_hz = 2.4e9;
  c.residue_amp.slew_rate = 4e9;
  c.residue_amp.bias_nominal = 12e-3;
  c.residue_amp.output_swing = 1.45;
  c.residue_amp.gm_compression = 0.08;
  c.settle_fraction = 0.85;
  return c;
}

double estimate_power(const TwoStepAdc& adc) {
  const auto& c = adc.config();
  // Clocked comparators: 1 pJ per coarse, 1.6 pJ per fine (auto-zeroing).
  const auto coarse_n = static_cast<double>((1 << c.coarse_bits) - 1);
  const auto fine_n = static_cast<double>((1 << c.fine_bits) - 1);
  const double p_cmp = (coarse_n * 1.0e-12 + fine_n * 1.6e-12) * c.conversion_rate;
  // Two residue-amplifier stages at full bias.
  const double p_amp = 2.0 * c.residue_amp.bias_nominal * c.vdd;
  // S/H buffer and ladder/reference drivers (rate-independent).
  const double p_sh = 10e-3 * c.vdd;
  const double p_ladder = 12e-3 * c.vdd;
  // Digital combine + clocking.
  const double p_dig = 12e-12 * c.vdd * c.vdd * c.conversion_rate;
  return p_cmp + p_amp + p_sh + p_ladder + p_dig;
}

}  // namespace adc::twostep
