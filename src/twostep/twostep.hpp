/// \file twostep.hpp
/// Behavioral two-step (subranging) ADC — the architecture of the paper's
/// closest competitor ([5] Zjajo et al., ESSCIRC 2003: a 1.8 V 12-bit
/// 80 MS/s two-step ADC in 0.18 um).
///
/// The paper's Fig. 8 places [5] nearest to its own design in FM and area;
/// this module implements that baseline on the same device substrate so the
/// architectural comparison (pipeline vs two-step) can be made inside one
/// model world:
///
///   S/H -> 6-bit coarse flash -> DAC -> subtract -> x32 residue amplifier
///       -> 7-bit fine flash -> digital combine (1 bit of overlap)
///
/// The decisive architectural differences the models expose:
///  * the residue amplifier runs at feedback factor ~1/32 (vs ~0.42 for a
///    1.5-bit pipeline stage), so the same settling accuracy needs ~13x the
///    closed-loop bandwidth — the power reason pipelines won at speed;
///  * 190 clocked comparators versus the pipeline's 23;
///  * conversion latency of 2 cycles versus the pipeline's 6 — the two-step
///    advantage that kept it alive in control loops.
#pragma once

#include <cstdint>
#include <vector>

#include "analog/comparator.hpp"
#include "analog/opamp.hpp"
#include "analog/switches.hpp"
#include "clocking/clock.hpp"
#include "common/random.hpp"
#include "common/units.hpp"
#include "dsp/signal.hpp"

namespace adc::twostep {

using namespace adc::common::literals;

/// Error-mechanism switches (a subset of the pipeline's, same semantics).
struct TwoStepNonIdealities {
  bool thermal_noise = true;
  bool aperture_jitter = true;
  bool ladder_mismatch = true;
  bool comparator_imperfections = true;
  bool incomplete_settling = true;
  bool tracking_nonlinearity = true;

  static TwoStepNonIdealities all_off();
};

/// Full configuration of the two-step converter.
struct TwoStepConfig {
  int coarse_bits = 6;
  int fine_bits = 7;  ///< one bit of overlap: resolution = coarse + fine - 1
  double full_scale_vpp = 2.0;
  double vdd = 1.8;
  double conversion_rate = 80.0_MHz;

  /// Per-side sampling capacitance of the S/H [F].
  double sh_cap = 1.0_pF;
  /// Excess factor on the S/H kT/C noise.
  double noise_excess = 1.5;

  /// Reference-ladder segment mismatch (one sigma, relative). Sets the
  /// coarse DAC / fine threshold INL.
  double ladder_sigma = 0.0008;

  adc::analog::ComparatorSpec coarse_comparator;
  adc::analog::ComparatorSpec fine_comparator;
  adc::analog::SwitchConfig input_switch;
  adc::clocking::ClockSpec clock;

  /// Residue amplifier (gain 2^(fine_bits-2), feedback factor ~ 1/gain).
  adc::analog::OpampParams residue_amp;
  /// Fraction of the half period available for residue settling.
  double settle_fraction = 0.85;

  TwoStepNonIdealities enable;
  std::uint64_t seed = 1;
};

/// One realized two-step converter.
class TwoStepAdc {
 public:
  explicit TwoStepAdc(const TwoStepConfig& config);

  /// Convert n samples of a continuous-time signal.
  [[nodiscard]] std::vector<int> convert(const adc::dsp::Signal& signal, std::size_t n);

  /// One DC conversion.
  [[nodiscard]] int convert_dc(double v_diff);

  [[nodiscard]] int resolution_bits() const {
    return config_.coarse_bits + config_.fine_bits - 1;
  }
  [[nodiscard]] double full_scale_vpp() const { return config_.full_scale_vpp; }
  [[nodiscard]] double conversion_rate() const { return config_.conversion_rate; }
  /// Sample-to-output latency: coarse phase + fine phase.
  [[nodiscard]] int latency_cycles() const { return 2; }

  /// Total clocked comparators (the two-step's power signature).
  [[nodiscard]] std::size_t comparator_count() const {
    return coarse_.size() + fine_.size();
  }
  /// Interstage (residue) gain.
  [[nodiscard]] double residue_gain() const { return residue_gain_; }
  /// Residue-amplifier feedback factor (the settling-bandwidth handicap).
  [[nodiscard]] double beta() const { return 1.0 / (residue_gain_ + 1.0); }

  [[nodiscard]] const TwoStepConfig& config() const { return config_; }

 private:
  static TwoStepConfig normalize(TwoStepConfig config);
  [[nodiscard]] int quantize_sample(double sampled);

  TwoStepConfig config_;
  adc::common::Rng rng_;
  adc::common::Rng noise_rng_;
  adc::analog::DifferentialSampler sampler_;
  adc::clocking::SamplingClock clock_;
  adc::analog::Opamp residue_amp_;

  double residue_gain_;
  double sigma_sample_;
  /// Realized ladder tap voltages for the coarse flash/DAC (2^coarse - 1
  /// thresholds) and the fine flash (2^fine - 1 thresholds).
  std::vector<double> coarse_thresholds_;
  std::vector<double> fine_thresholds_;
  std::vector<adc::analog::Comparator> coarse_;
  std::vector<adc::analog::Comparator> fine_;
};

/// A reference design loosely matched to [5]'s headline numbers (12 bits,
/// 80 MS/s, 1.8 V): used by the architecture-comparison bench.
[[nodiscard]] TwoStepConfig reference_design(std::uint64_t seed = 0x25A10);

/// Crude supply-power estimate of the two-step converter [W]: clocked
/// comparators + S/H + residue amplifier + ladder/reference drivers.
[[nodiscard]] double estimate_power(const TwoStepAdc& adc);

}  // namespace adc::twostep
