/// \file survey.hpp
/// The 12-bit ADC survey behind the paper's Fig. 8: FM (eq. 2) versus 1/A
/// for 15 converters grouped by supply voltage.
#pragma once

#include <string>
#include <vector>

namespace adc::survey {

/// Supply-voltage class — the legend groups of Fig. 8.
enum class SupplyClass {
  k1V8,        ///< 1.8 V
  k2V5to2V7,   ///< 2.5 .. 2.7 V
  k3Vto3V3,    ///< 3.0 .. 3.3 V
  k5V,         ///< 5 V
  k10V,        ///< 10 V
};

[[nodiscard]] std::string to_string(SupplyClass c);

/// Classify a supply voltage into its Fig. 8 legend group.
[[nodiscard]] SupplyClass classify_supply(double supply_v);

/// One published converter.
struct SurveyEntry {
  std::string name;        ///< short identifier, e.g. "This design", "[5] Zjajo'03"
  int year = 0;
  std::string venue;
  int resolution_bits = 12;
  double supply_v = 0.0;
  double f_cr_msps = 0.0;  ///< conversion rate [MS/s]
  double area_mm2 = 0.0;
  double power_mw = 0.0;
  double enob = 0.0;
  bool is_this_design = false;
  /// True for the representative entries synthesized from typical
  /// ISSCC/VLSI-era parts (documented in survey_data.cpp); false for parts
  /// with numbers taken from the cited publications or this paper.
  bool synthetic = false;
};

/// Entry plus derived quantities for plotting.
struct SurveyPoint {
  SurveyEntry entry;
  double fm = 0.0;           ///< paper eq. 2, MS/s / (mm^2 * mW) units
  double inv_area = 0.0;     ///< 1/A [1/mm^2]
  SupplyClass supply_class = SupplyClass::k5V;
};

/// The 15-entry dataset of Fig. 8 (including "This design" with the paper's
/// published numbers; benches may substitute simulated numbers).
[[nodiscard]] std::vector<SurveyEntry> fig8_dataset();

/// Compute FM and 1/A for every entry.
[[nodiscard]] std::vector<SurveyPoint> evaluate(const std::vector<SurveyEntry>& entries);

/// Rank of `name` by descending FM (1 = best). Throws if absent.
[[nodiscard]] std::size_t fm_rank(const std::vector<SurveyPoint>& points,
                                  const std::string& name);

/// Rank of `name` by ascending area (1 = smallest).
[[nodiscard]] std::size_t area_rank(const std::vector<SurveyPoint>& points,
                                    const std::string& name);

}  // namespace adc::survey
