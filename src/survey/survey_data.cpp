/// \file survey_data.cpp
/// The 15-converter dataset of Fig. 8.
///
/// Provenance:
///  * "This design": the paper's Table I (ENOB 10.4, 110 MS/s, 0.86 mm^2,
///    97 mW, 1.8 V).
///  * [5]-[7]: the comparison parts the paper cites as "closest in FM and
///    area". Their headline rate/power/supply come from the cited titles;
///    area and ENOB are filled with values representative of those parts'
///    publications (exact numbers were not reprinted in this paper).
///  * The remaining 11 entries stand in for "12b ADCs from IEEE Proc. of
///    ISSCC and Symposium on VLSI Circuits over the last 9 years" (1995-2004,
///    paper section 4). They are *synthetic but era-typical*: supply voltage,
///    power, speed and area follow the published trajectory of 12-bit
///    pipeline/two-step converters across the 0.6um(5V) -> 0.35um(3.3V) ->
///    0.25um(2.5V) -> 0.18um(1.8V) generations. They exist to reproduce the
///    *shape* of Fig. 8 — the supply-voltage banding and this design's
///    top-right position — not to attribute numbers to specific papers; each
///    is marked `synthetic = true`.
#include "survey/survey.hpp"

namespace adc::survey {

std::vector<SurveyEntry> fig8_dataset() {
  std::vector<SurveyEntry> v;
  auto add = [&v](const char* name, int year, const char* venue, double supply, double msps,
                  double area, double mw, double enob, bool this_design, bool synthetic) {
    SurveyEntry e;
    e.name = name;
    e.year = year;
    e.venue = venue;
    e.resolution_bits = 12;
    e.supply_v = supply;
    e.f_cr_msps = msps;
    e.area_mm2 = area;
    e.power_mw = mw;
    e.enob = enob;
    e.is_this_design = this_design;
    e.synthetic = synthetic;
    v.push_back(e);
  };

  // --- the paper and its cited comparators ---
  add("This design", 2004, "DATE", 1.8, 110.0, 0.86, 97.0, 10.4, true, false);
  add("[5] Zjajo'03 two-step", 2003, "ESSCIRC", 1.8, 80.0, 1.60, 165.0, 10.2, false, false);
  add("[6] Kulhalli'02", 2002, "ISSCC", 2.7, 21.0, 1.10, 30.0, 10.6, false, false);
  add("[7] Ploeg'01", 2001, "ISSCC", 2.5, 54.0, 1.00, 295.0, 10.2, false, false);

  // --- era-typical ISSCC/VLSI 12-bit parts, 1995-2004 (synthetic) ---
  // 5 V / 0.8-0.6 um generation: slow, hot, large.
  add("5V pipeline '95", 1995, "ISSCC", 5.0, 10.0, 25.0, 900.0, 10.6, false, true);
  add("5V two-step '96", 1996, "ISSCC", 5.0, 20.0, 16.0, 750.0, 10.3, false, true);
  add("10V hybrid '95", 1995, "VLSI", 10.0, 5.0, 40.0, 1500.0, 10.8, false, true);
  // 3.0-3.3 V / 0.5-0.35 um generation.
  add("3.3V pipeline '97", 1997, "ISSCC", 3.3, 30.0, 8.0, 400.0, 10.4, false, true);
  add("3.3V pipeline '98", 1998, "VLSI", 3.3, 50.0, 5.5, 380.0, 10.2, false, true);
  add("3V CMOS ADC '99", 1999, "ISSCC", 3.0, 65.0, 4.0, 340.0, 10.3, false, true);
  add("3.3V IF ADC '00", 2000, "ISSCC", 3.3, 80.0, 3.2, 410.0, 10.5, false, true);
  // 2.5-2.7 V / 0.25 um generation.
  add("2.5V pipeline '01", 2001, "VLSI", 2.5, 40.0, 2.2, 180.0, 10.3, false, true);
  add("2.7V pipeline '02", 2002, "ISSCC", 2.7, 65.0, 1.9, 220.0, 10.4, false, true);
  // Smallest-area part of the survey (the paper holds the *2nd* lowest area).
  add("2.5V SoC ADC '03", 2003, "VLSI", 2.5, 75.0, 0.75, 160.0, 10.1, false, true);
  // Note the 1.8 V series stays at exactly two points ("this converter is
  // the 2nd published 12b ADC with 1.8V supply voltage"; [5] is the first).
  add("3.3V pipeline '04", 2004, "ISSCC", 3.3, 100.0, 2.6, 450.0, 10.6, false, true);

  return v;
}

}  // namespace adc::survey
