#include "survey/survey.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "power/fom.hpp"

namespace adc::survey {

std::string to_string(SupplyClass c) {
  switch (c) {
    case SupplyClass::k1V8: return "1.8V";
    case SupplyClass::k2V5to2V7: return "2.5-2.7V";
    case SupplyClass::k3Vto3V3: return "3.0-3.3V";
    case SupplyClass::k5V: return "5V";
    case SupplyClass::k10V: return "10V";
  }
  return "?";
}

SupplyClass classify_supply(double supply_v) {
  if (supply_v < 2.2) return SupplyClass::k1V8;
  if (supply_v < 2.9) return SupplyClass::k2V5to2V7;
  if (supply_v < 4.0) return SupplyClass::k3Vto3V3;
  if (supply_v < 7.5) return SupplyClass::k5V;
  return SupplyClass::k10V;
}

std::vector<SurveyPoint> evaluate(const std::vector<SurveyEntry>& entries) {
  std::vector<SurveyPoint> points;
  points.reserve(entries.size());
  for (const auto& e : entries) {
    SurveyPoint p;
    p.entry = e;
    p.fm = adc::power::paper_fm(e.enob, e.f_cr_msps * 1e6, e.area_mm2 * 1e-6,
                                e.power_mw * 1e-3);
    p.inv_area = 1.0 / e.area_mm2;
    p.supply_class = classify_supply(e.supply_v);
    points.push_back(p);
  }
  return points;
}

namespace {

const SurveyPoint& find(const std::vector<SurveyPoint>& points, const std::string& name) {
  for (const auto& p : points) {
    if (p.entry.name == name) return p;
  }
  throw adc::common::MeasurementError("survey: entry not found: " + name);
}

}  // namespace

std::size_t fm_rank(const std::vector<SurveyPoint>& points, const std::string& name) {
  const auto& target = find(points, name);
  std::size_t rank = 1;
  for (const auto& p : points) {
    if (p.fm > target.fm) ++rank;
  }
  return rank;
}

std::size_t area_rank(const std::vector<SurveyPoint>& points, const std::string& name) {
  const auto& target = find(points, name);
  std::size_t rank = 1;
  for (const auto& p : points) {
    if (p.entry.area_mm2 < target.entry.area_mm2) ++rank;
  }
  return rank;
}

}  // namespace adc::survey
