#include "runtime/metrics.hpp"

#include <algorithm>
#include <bit>
#include <ctime>

namespace adc::runtime {

std::uint64_t HistogramSnapshot::total() const {
  std::uint64_t sum = 0;
  for (const auto c : counts) sum += c;
  return sum;
}

std::uint64_t HistogramSnapshot::quantile_upper_us(double q) const {
  const std::uint64_t n = total();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(n - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen > rank) return std::uint64_t{1} << (i + 1);
  }
  return std::uint64_t{1} << counts.size();
}

void LatencyHistogram::record(std::chrono::nanoseconds latency) noexcept {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(latency).count();
  const auto magnitude = us <= 0 ? std::uint64_t{1} : static_cast<std::uint64_t>(us);
  const auto bucket =
      std::min<std::size_t>(static_cast<std::size_t>(std::bit_width(magnitude) - 1),
                            kBuckets - 1);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot snap;
  snap.counts.resize(kBuckets);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

namespace {

std::int64_t process_cpu_ns() {
  // clock() measures process CPU (all threads) on POSIX; good enough to show
  // cpu/wall > 1 under real parallelism, which is what the manifest reports.
  return static_cast<std::int64_t>(static_cast<double>(std::clock()) /
                                   static_cast<double>(CLOCKS_PER_SEC) * 1e9);
}

}  // namespace

Stopwatch::Stopwatch()
    : wall_start_(std::chrono::steady_clock::now()), cpu_start_ns_(process_cpu_ns()) {}

double Stopwatch::wall_seconds() const {
  const auto elapsed = std::chrono::steady_clock::now() - wall_start_;
  return std::chrono::duration<double>(elapsed).count();
}

double Stopwatch::cpu_seconds() const {
  return static_cast<double>(process_cpu_ns() - cpu_start_ns_) / 1e9;
}

}  // namespace adc::runtime
