/// \file parallel.hpp
/// Deterministic batch execution on top of the work-stealing pool.
///
/// The repo's parallel workloads are all *index-keyed job streams*: die `i`
/// of a Monte-Carlo run is `(config, first_seed + i)`, point `i` of a sweep
/// is `(config, seed, operating-point[i])`. `parallel_map` exploits that
/// shape to give a hard determinism contract:
///
///   - Job `i` writes only slot `i` of the result vector, so the returned
///     vector is in index (seed/point) order regardless of worker count or
///     steal interleaving.
///   - Jobs must be pure functions of their index (each fabricates its own
///     converter from config + seed); given that, results are bit-identical
///     at threads=1 and threads=N and across repeated runs.
///   - A throwing job cancels the rest of the batch cooperatively and the
///     exception is rethrown on the *calling* thread. When exactly one job
///     throws, that exception is the one rethrown; when several race, the
///     lowest-index captured exception wins.
///
/// Thread-count resolution, in priority order: `BatchOptions::threads`, the
/// innermost active `ScopedThreadOverride`, then `default_thread_count()`
/// (the `ADC_RUNTIME_THREADS` environment override, else hardware
/// concurrency). A batch started *from inside a pool worker* runs inline on
/// the caller (nested parallelism never deadlocks, it serializes).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "runtime/thread_pool.hpp"

namespace adc::runtime {

/// Worker-thread default: the ADC_RUNTIME_THREADS environment variable when
/// set to a positive integer, otherwise std::thread::hardware_concurrency().
[[nodiscard]] unsigned default_thread_count();

/// The process-wide shared pool, created on first use with
/// default_thread_count() workers.
[[nodiscard]] ThreadPool& global_pool();

/// RAII thread-count override for the calling thread; nests. Used by tests
/// and benches to pin a batch to a reference serial run (`{1}`) or an exact
/// worker count without re-plumbing options through every call site.
class ScopedThreadOverride {
 public:
  explicit ScopedThreadOverride(unsigned threads);
  ~ScopedThreadOverride();
  ScopedThreadOverride(const ScopedThreadOverride&) = delete;
  ScopedThreadOverride& operator=(const ScopedThreadOverride&) = delete;

 private:
  unsigned previous_;
};

/// The thread count a batch would use right now for `requested` (0 = apply
/// override/default resolution).
[[nodiscard]] unsigned effective_thread_count(unsigned requested);

/// Telemetry for one parallel_map call.
struct BatchStats {
  std::uint64_t jobs = 0;
  std::uint64_t skipped = 0;  ///< jobs skipped by cancellation
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
};

/// Options for one batch.
struct BatchOptions {
  /// Worker threads for this batch (0 = override/default resolution).
  unsigned threads = 0;
  /// Optional external cancellation; the batch also cancels itself on the
  /// first job failure.
  CancellationToken* cancel = nullptr;
  /// Optional telemetry sink, written before return (also on the throw path
  /// via the batch's internal accounting — stats are valid once the call
  /// returns normally).
  BatchStats* stats = nullptr;
};

namespace detail {

/// Completion latch + error slots shared by one batch.
struct BatchState {
  explicit BatchState(std::size_t n) : errors(n) {}
  std::mutex mutex;
  std::condition_variable all_done;
  std::size_t done = 0;
  std::uint64_t skipped = 0;
  std::vector<std::exception_ptr> errors;

  void finish_one(bool was_skipped) {
    std::lock_guard<std::mutex> lock(mutex);
    if (was_skipped) ++skipped;
    ++done;
    if (done == errors.size()) all_done.notify_all();
  }
  void wait(std::size_t n) {
    std::unique_lock<std::mutex> lock(mutex);
    all_done.wait(lock, [&] { return done == n; });
  }
  /// Rethrow the lowest-index captured exception, if any.
  void rethrow_first() {
    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }
};

}  // namespace detail

/// Run `fn(0) ... fn(n-1)` and return the results in index order. `T` must
/// be default-constructible and move-assignable; `fn` must be safe to call
/// concurrently from multiple threads for distinct indices. See the file
/// header for the determinism and exception contract.
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> parallel_map(std::size_t n, Fn&& fn,
                                          const BatchOptions& options = {}) {
  std::vector<T> out(n);
  if (n == 0) {
    if (options.stats) *options.stats = {};
    return out;
  }

  const Stopwatch watch;
  CancellationToken local_cancel;
  CancellationToken* cancel = options.cancel ? options.cancel : &local_cancel;
  const unsigned threads = effective_thread_count(options.threads);

  if (threads <= 1 || n == 1 || ThreadPool::on_worker_thread()) {
    // Serial reference path; also taken for nested batches (see file header).
    std::uint64_t skipped = 0;
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < n; ++i) {
      if (cancel->cancelled()) {
        ++skipped;
        continue;
      }
      try {
        out[i] = fn(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
        cancel->cancel();
      }
    }
    if (options.stats) {
      *options.stats = {n, skipped, watch.wall_seconds(), watch.cpu_seconds()};
    }
    if (first_error) std::rethrow_exception(first_error);
    return out;
  }

  // A batch at the global default size shares the global pool; an explicit
  // different width gets a private pool for exactly this batch.
  std::optional<ThreadPool> private_pool;
  ThreadPool* pool = &global_pool();
  if (threads != pool->thread_count()) {
    private_pool.emplace(ThreadPoolOptions{threads, std::max<std::size_t>(n, 64)});
    pool = &*private_pool;
  }

  detail::BatchState state(n);
  for (std::size_t i = 0; i < n; ++i) {
    pool->submit([&, i] {
      if (cancel->cancelled()) {
        state.finish_one(true);
        return;
      }
      try {
        out[i] = fn(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(state.mutex);
          state.errors[i] = std::current_exception();
        }
        cancel->cancel();
      }
      state.finish_one(false);
    });
  }
  state.wait(n);

  if (options.stats) {
    *options.stats = {n, state.skipped, watch.wall_seconds(), watch.cpu_seconds()};
  }
  state.rethrow_first();
  return out;
}

}  // namespace adc::runtime
