/// \file manifest.hpp
/// JSON run manifests: the provenance record of one parallel run.
///
/// Every heavy bench can export *what* it ran (seed range, operating points),
/// *how* (thread count, git revision, hardware concurrency) and *how fast*
/// (per-phase wall/CPU timings, pool counters, job latency histogram) as a
/// machine-readable JSON file. Schema documented in docs/RUNTIME.md.
///
/// Writing is opt-in, mirroring ADC_BENCH_CSV_DIR: manifests are written only
/// when ADC_RUNTIME_MANIFEST_DIR names a directory.
///
/// Schema version 2: serialization moved onto the shared strict JSON layer
/// (common/json.hpp) — same key set and semantics as v1, but every object
/// member is pretty-printed on its own line and consumers can round-trip the
/// document through `common::json::parse`. See docs/RUNTIME.md for the diff.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"

namespace adc::runtime {

/// The `git describe --always --dirty` of the tree this binary was built
/// from ("unknown" when the build was not configured inside a git checkout).
[[nodiscard]] const char* git_describe();

/// Accumulates one run's provenance and telemetry, then serializes to JSON.
/// Construction stamps the standard fields: run name, git revision, schema
/// version, default thread count, and hardware concurrency.
class RunManifest {
 public:
  explicit RunManifest(std::string run_name);

  /// Set a free-form string/number/count field (last set wins per key).
  void set_text(const std::string& key, const std::string& value);
  void set_number(const std::string& key, double value);
  void set_count(const std::string& key, std::uint64_t value);
  /// Convenience for the determinism contract: records first seed and count.
  void set_seed_range(std::uint64_t first_seed, std::uint64_t count);

  /// Record a completed phase (appended in call order).
  void add_phase(const PhaseTiming& phase);

  /// RAII phase timer: times construction-to-destruction and appends the
  /// phase on destruction.
  class PhaseScope {
   public:
    PhaseScope(RunManifest& manifest, std::string name, std::uint64_t jobs = 0);
    ~PhaseScope();
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;
    /// Update the job count before the scope closes.
    void set_jobs(std::uint64_t jobs) { jobs_ = jobs; }

   private:
    RunManifest& manifest_;
    std::string name_;
    std::uint64_t jobs_;
    Stopwatch watch_;
  };
  [[nodiscard]] PhaseScope phase(std::string name, std::uint64_t jobs = 0) {
    return PhaseScope(*this, std::move(name), jobs);
  }

  /// Attach pool telemetry (counters + latency histogram snapshot).
  void set_pool_telemetry(const PoolCounters& counters, const HistogramSnapshot& latency);

  /// The manifest as a JSON value tree (fields in set order, then `phases`,
  /// `pool`, `job_latency_us`).
  [[nodiscard]] adc::common::json::JsonValue to_json_value() const;
  /// `to_json_value()` pretty-printed; ends with a newline.
  [[nodiscard]] std::string to_json() const;
  /// Write `to_json()` to `path`. Throws ConfigError on I/O failure.
  void write(const std::string& path) const;
  /// Write `<ADC_RUNTIME_MANIFEST_DIR>/<run_name>_manifest.json` when the
  /// variable is set; returns the path written, nullopt when disabled.
  [[nodiscard]] std::optional<std::string> write_to_env_dir() const;

 private:
  std::string run_name_;
  adc::common::json::JsonValue fields_ = adc::common::json::JsonValue::object();
  std::vector<PhaseTiming> phases_;
  bool has_pool_telemetry_ = false;
  PoolCounters pool_counters_;
  HistogramSnapshot pool_latency_;
};

}  // namespace adc::runtime
