/// \file thread_pool.hpp
/// Work-stealing thread pool — the execution substrate for every parallel
/// workload in the repo (Monte-Carlo yield, rate/frequency sweeps, PVT
/// corners).
///
/// Shape: one deque per worker. External submissions are dealt round-robin to
/// the worker deques; a worker drains its own deque from the front and, when
/// empty, steals from the *back* of a sibling's deque (classic work-stealing,
/// so a long-running job on one worker never strands the jobs queued behind
/// it). Submission is bounded: `submit` blocks once `queue_capacity` jobs are
/// queued, giving producers backpressure instead of unbounded memory growth.
///
/// The pool itself runs opaque `void()` jobs and never throws across the
/// worker boundary: a throwing job is counted in `counters().failed` and its
/// first exception is retained for inspection. Callers that need per-job
/// exception *propagation* (rethrow on the calling thread) should use the
/// batch API in parallel.hpp, which wraps jobs with capture/rethrow plumbing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/metrics.hpp"

namespace adc::runtime {

/// Cooperative cancellation flag shared between a producer and its jobs.
/// Cancelling never interrupts a running job; jobs (and the batch layer)
/// test the flag at their entry points and skip the remaining work.
class CancellationToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Construction options for a pool.
struct ThreadPoolOptions {
  /// Worker threads (0 = default_thread_count(): ADC_RUNTIME_THREADS or
  /// hardware concurrency).
  unsigned threads = 0;
  /// Maximum queued-but-not-yet-running jobs before `submit` blocks.
  std::size_t queue_capacity = 4096;
};

/// Monotonic event counters, readable while the pool runs.
struct PoolCounters {
  std::uint64_t submitted = 0;  ///< jobs accepted into a deque
  std::uint64_t executed = 0;   ///< jobs run to completion (incl. failed)
  std::uint64_t stolen = 0;     ///< jobs executed by a non-assigned worker
  std::uint64_t failed = 0;     ///< jobs that exited with an exception
  std::uint64_t backpressure_waits = 0;  ///< submit calls that had to block
};

class ThreadPool {
 public:
  using Job = std::function<void()>;

  explicit ThreadPool(ThreadPoolOptions options = {});
  /// Drains every queued job, then joins the workers. Must not race live
  /// `submit` calls (producers must be done before destruction).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Queue `job`; blocks while the pending queue is at capacity.
  void submit(Job job);
  /// Queue `job` only if capacity allows; returns false when full.
  [[nodiscard]] bool try_submit(Job job);

  /// Block until every submitted job has finished executing.
  void wait_idle();

  [[nodiscard]] unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size());
  }
  [[nodiscard]] std::size_t queue_capacity() const { return capacity_; }
  [[nodiscard]] PoolCounters counters() const;
  /// Per-job wall-latency distribution (log2 microsecond buckets).
  [[nodiscard]] HistogramSnapshot latency_histogram() const {
    return latency_.snapshot();
  }
  /// First exception a raw-submitted job exited with, if any. Batch jobs
  /// from parallel.hpp capture their own exceptions and never surface here.
  [[nodiscard]] std::exception_ptr first_job_error() const;

  /// True when the calling thread is a worker of *any* ThreadPool. The batch
  /// API uses this to run nested parallel sections inline instead of
  /// deadlocking on a blocking wait inside a worker.
  [[nodiscard]] static bool on_worker_thread() noexcept;

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Job> jobs;
  };

  void worker_loop(std::size_t self);
  [[nodiscard]] bool pop_local(std::size_t self, Job& out);
  [[nodiscard]] bool steal(std::size_t self, Job& out);
  void run_job(Job& job);

  std::vector<std::unique_ptr<WorkerQueue>> workers_;
  std::vector<std::thread> threads_;
  std::size_t capacity_;

  // queued_/running_ transitions that cross a wait predicate are made under
  // state_mutex_ so condition-variable wakeups cannot be lost.
  std::mutex state_mutex_;
  std::condition_variable work_available_;
  std::condition_variable space_available_;
  std::condition_variable idle_;
  std::size_t queued_ = 0;
  std::size_t running_ = 0;
  bool stopping_ = false;

  std::atomic<std::uint64_t> next_worker_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> backpressure_waits_{0};
  LatencyHistogram latency_;

  mutable std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

}  // namespace adc::runtime
