#include "runtime/manifest.hpp"

#include <cstdlib>
#include <fstream>
#include <utility>

#include "common/error.hpp"
#include "runtime/parallel.hpp"

#ifndef ADC_GIT_DESCRIBE
#define ADC_GIT_DESCRIBE "unknown"
#endif

namespace adc::runtime {

namespace json = adc::common::json;

const char* git_describe() { return ADC_GIT_DESCRIBE; }

RunManifest::RunManifest(std::string run_name) : run_name_(std::move(run_name)) {
  set_text("run", run_name_);
  set_count("schema_version", 2);
  set_text("git_describe", git_describe());
  set_count("default_threads", default_thread_count());
  set_count("hardware_concurrency", std::thread::hardware_concurrency());
}

void RunManifest::set_text(const std::string& key, const std::string& value) {
  fields_.set(key, value);
}

void RunManifest::set_number(const std::string& key, double value) { fields_.set(key, value); }

void RunManifest::set_count(const std::string& key, std::uint64_t value) {
  fields_.set(key, value);
}

void RunManifest::set_seed_range(std::uint64_t first_seed, std::uint64_t count) {
  set_count("first_seed", first_seed);
  set_count("seed_count", count);
}

void RunManifest::add_phase(const PhaseTiming& phase) { phases_.push_back(phase); }

RunManifest::PhaseScope::PhaseScope(RunManifest& manifest, std::string name,
                                    std::uint64_t jobs)
    : manifest_(manifest), name_(std::move(name)), jobs_(jobs) {}

RunManifest::PhaseScope::~PhaseScope() {
  manifest_.add_phase({name_, watch_.wall_seconds(), watch_.cpu_seconds(), jobs_});
}

void RunManifest::set_pool_telemetry(const PoolCounters& counters,
                                     const HistogramSnapshot& latency) {
  has_pool_telemetry_ = true;
  pool_counters_ = counters;
  pool_latency_ = latency;
}

json::JsonValue RunManifest::to_json_value() const {
  json::JsonValue doc = fields_;

  auto phases = json::JsonValue::array();
  for (const auto& p : phases_) {
    auto phase = json::JsonValue::object();
    phase.set("name", p.name);
    phase.set("wall_seconds", p.wall_seconds);
    phase.set("cpu_seconds", p.cpu_seconds);
    phase.set("jobs", p.jobs);
    phases.push_back(std::move(phase));
  }
  doc.set("phases", std::move(phases));

  if (has_pool_telemetry_) {
    auto pool = json::JsonValue::object();
    pool.set("submitted", pool_counters_.submitted);
    pool.set("executed", pool_counters_.executed);
    pool.set("stolen", pool_counters_.stolen);
    pool.set("failed", pool_counters_.failed);
    pool.set("backpressure_waits", pool_counters_.backpressure_waits);
    doc.set("pool", std::move(pool));

    auto latency = json::JsonValue::object();
    latency.set("total", pool_latency_.total());
    latency.set("p50_upper", pool_latency_.quantile_upper_us(0.5));
    latency.set("p99_upper", pool_latency_.quantile_upper_us(0.99));
    auto buckets = json::JsonValue::array();
    for (const auto count : pool_latency_.counts) buckets.push_back(count);
    latency.set("log2_buckets", std::move(buckets));
    doc.set("job_latency_us", std::move(latency));
  }
  return doc;
}

std::string RunManifest::to_json() const { return json::dump(to_json_value()); }

void RunManifest::write(const std::string& path) const {
  std::ofstream out(path);
  adc::common::require(out.good(), "RunManifest::write: cannot open " + path);
  out << to_json();
  out.flush();
  adc::common::require(out.good(), "RunManifest::write: write failed for " + path);
}

std::optional<std::string> RunManifest::write_to_env_dir() const {
  const char* dir = std::getenv("ADC_RUNTIME_MANIFEST_DIR");
  if (dir == nullptr || *dir == '\0') return std::nullopt;
  std::string path = std::string(dir) + "/" + run_name_ + "_manifest.json";
  write(path);
  return path;
}

}  // namespace adc::runtime
