#include "runtime/manifest.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "runtime/parallel.hpp"

#ifndef ADC_GIT_DESCRIBE
#define ADC_GIT_DESCRIBE "unknown"
#endif

namespace adc::runtime {

const char* git_describe() { return ADC_GIT_DESCRIBE; }

namespace {

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",  // lint-ok: JSON escape, not I/O
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  return os.str();
}

}  // namespace

RunManifest::RunManifest(std::string run_name) : run_name_(std::move(run_name)) {
  set_text("run", run_name_);
  set_count("schema_version", 1);
  set_text("git_describe", git_describe());
  set_count("default_threads", default_thread_count());
  set_count("hardware_concurrency", std::thread::hardware_concurrency());
}

void RunManifest::set_field(const std::string& key, std::string json_value) {
  for (auto& f : fields_) {
    if (f.key == key) {
      f.json_value = std::move(json_value);
      return;
    }
  }
  fields_.push_back({key, std::move(json_value)});
}

void RunManifest::set_text(const std::string& key, const std::string& value) {
  set_field(key, json_quote(value));
}

void RunManifest::set_number(const std::string& key, double value) {
  set_field(key, json_number(value));
}

void RunManifest::set_count(const std::string& key, std::uint64_t value) {
  set_field(key, std::to_string(value));
}

void RunManifest::set_seed_range(std::uint64_t first_seed, std::uint64_t count) {
  set_count("first_seed", first_seed);
  set_count("seed_count", count);
}

void RunManifest::add_phase(const PhaseTiming& phase) { phases_.push_back(phase); }

RunManifest::PhaseScope::PhaseScope(RunManifest& manifest, std::string name,
                                    std::uint64_t jobs)
    : manifest_(manifest), name_(std::move(name)), jobs_(jobs) {}

RunManifest::PhaseScope::~PhaseScope() {
  manifest_.add_phase({name_, watch_.wall_seconds(), watch_.cpu_seconds(), jobs_});
}

void RunManifest::set_pool_telemetry(const PoolCounters& counters,
                                     const HistogramSnapshot& latency) {
  has_pool_telemetry_ = true;
  pool_counters_ = counters;
  pool_latency_ = latency;
}

std::string RunManifest::to_json() const {
  std::ostringstream os;
  os << "{\n";
  for (const auto& f : fields_) {
    os << "  " << json_quote(f.key) << ": " << f.json_value << ",\n";
  }
  os << "  \"phases\": [";
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    const auto& p = phases_[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"name\": " << json_quote(p.name)
       << ", \"wall_seconds\": " << json_number(p.wall_seconds)
       << ", \"cpu_seconds\": " << json_number(p.cpu_seconds) << ", \"jobs\": " << p.jobs
       << "}";
  }
  os << (phases_.empty() ? "]" : "\n  ]");
  if (has_pool_telemetry_) {
    os << ",\n  \"pool\": {\"submitted\": " << pool_counters_.submitted
       << ", \"executed\": " << pool_counters_.executed
       << ", \"stolen\": " << pool_counters_.stolen
       << ", \"failed\": " << pool_counters_.failed
       << ", \"backpressure_waits\": " << pool_counters_.backpressure_waits << "}";
    os << ",\n  \"job_latency_us\": {\"total\": " << pool_latency_.total()
       << ", \"p50_upper\": " << pool_latency_.quantile_upper_us(0.5)
       << ", \"p99_upper\": " << pool_latency_.quantile_upper_us(0.99)
       << ", \"log2_buckets\": [";
    for (std::size_t i = 0; i < pool_latency_.counts.size(); ++i) {
      os << (i == 0 ? "" : ", ") << pool_latency_.counts[i];
    }
    os << "]}";
  }
  os << "\n}\n";
  return os.str();
}

void RunManifest::write(const std::string& path) const {
  std::ofstream out(path);
  adc::common::require(out.good(), "RunManifest::write: cannot open " + path);
  out << to_json();
  out.flush();
  adc::common::require(out.good(), "RunManifest::write: write failed for " + path);
}

std::optional<std::string> RunManifest::write_to_env_dir() const {
  const char* dir = std::getenv("ADC_RUNTIME_MANIFEST_DIR");
  if (dir == nullptr || *dir == '\0') return std::nullopt;
  std::string path = std::string(dir) + "/" + run_name_ + "_manifest.json";
  write(path);
  return path;
}

}  // namespace adc::runtime
