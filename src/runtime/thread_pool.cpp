#include "runtime/thread_pool.hpp"

#include <utility>

#include "common/error.hpp"
#include "runtime/parallel.hpp"

namespace adc::runtime {

namespace {
// Set while a thread is inside any pool's worker loop; lets the batch layer
// detect nested parallelism and fall back to inline execution.
thread_local bool tl_on_worker = false;
}  // namespace

bool ThreadPool::on_worker_thread() noexcept { return tl_on_worker; }

ThreadPool::ThreadPool(ThreadPoolOptions options)
    : capacity_(options.queue_capacity) {
  adc::common::require(capacity_ >= 1, "ThreadPool: queue capacity must be >= 1");
  const unsigned n = options.threads > 0 ? options.threads : default_thread_count();
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) workers_.push_back(std::make_unique<WorkerQueue>());
  threads_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  space_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(Job job) {
  adc::common::require(static_cast<bool>(job), "ThreadPool::submit: empty job");
  const std::size_t target =
      next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    std::unique_lock<std::mutex> lock(state_mutex_);
    if (queued_ >= capacity_) {
      backpressure_waits_.fetch_add(1, std::memory_order_relaxed);
      space_available_.wait(lock, [this] { return queued_ < capacity_ || stopping_; });
    }
    adc::common::require(!stopping_, "ThreadPool::submit: pool is shutting down");
    ++queued_;
  }
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->jobs.push_back(std::move(job));
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  work_available_.notify_one();
}

bool ThreadPool::try_submit(Job job) {
  adc::common::require(static_cast<bool>(job), "ThreadPool::try_submit: empty job");
  const std::size_t target =
      next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (queued_ >= capacity_ || stopping_) return false;
    ++queued_;
  }
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->jobs.push_back(std::move(job));
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  work_available_.notify_one();
  return true;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  idle_.wait(lock, [this] { return queued_ == 0 && running_ == 0; });
}

PoolCounters ThreadPool::counters() const {
  PoolCounters c;
  c.submitted = submitted_.load(std::memory_order_relaxed);
  c.executed = executed_.load(std::memory_order_relaxed);
  c.stolen = stolen_.load(std::memory_order_relaxed);
  c.failed = failed_.load(std::memory_order_relaxed);
  c.backpressure_waits = backpressure_waits_.load(std::memory_order_relaxed);
  return c;
}

std::exception_ptr ThreadPool::first_job_error() const {
  std::lock_guard<std::mutex> lock(error_mutex_);
  return first_error_;
}

bool ThreadPool::pop_local(std::size_t self, Job& out) {
  auto& q = *workers_[self];
  std::lock_guard<std::mutex> lock(q.mutex);
  if (q.jobs.empty()) return false;
  out = std::move(q.jobs.front());
  q.jobs.pop_front();
  return true;
}

bool ThreadPool::steal(std::size_t self, Job& out) {
  const std::size_t n = workers_.size();
  for (std::size_t step = 1; step < n; ++step) {
    auto& victim = *workers_[(self + step) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (victim.jobs.empty()) continue;
    out = std::move(victim.jobs.back());
    victim.jobs.pop_back();
    stolen_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::run_job(Job& job) {
  const auto start = std::chrono::steady_clock::now();
  try {
    job();
  } catch (...) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  latency_.record(std::chrono::steady_clock::now() - start);
  executed_.fetch_add(1, std::memory_order_relaxed);
}

void ThreadPool::worker_loop(std::size_t self) {
  tl_on_worker = true;
  for (;;) {
    Job job;
    if (pop_local(self, job) || steal(self, job)) {
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        --queued_;
        ++running_;
      }
      space_available_.notify_one();
      run_job(job);
      job = nullptr;  // release captures before signalling idle
      bool now_idle = false;
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        --running_;
        now_idle = queued_ == 0 && running_ == 0;
      }
      if (now_idle) idle_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(state_mutex_);
    if (stopping_ && queued_ == 0) return;
    work_available_.wait(lock, [this] { return queued_ > 0 || stopping_; });
    if (stopping_ && queued_ == 0) return;
  }
}

}  // namespace adc::runtime
