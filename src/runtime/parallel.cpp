#include "runtime/parallel.hpp"

#include <cstdlib>
#include <string>
#include <thread>

namespace adc::runtime {

namespace {

// Innermost ScopedThreadOverride for this thread (0 = none active).
thread_local unsigned tl_thread_override = 0;

unsigned parse_env_threads() {
  const char* raw = std::getenv("ADC_RUNTIME_THREADS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0' || value == 0 || value > 1024) return 0;
  return static_cast<unsigned>(value);
}

}  // namespace

unsigned default_thread_count() {
  const unsigned from_env = parse_env_threads();
  if (from_env > 0) return from_env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool& global_pool() {
  // Sized once, on first parallel workload; ADC_RUNTIME_THREADS must be set
  // before that point (normal for an environment variable).
  static ThreadPool pool{ThreadPoolOptions{default_thread_count(), 4096}};
  return pool;
}

ScopedThreadOverride::ScopedThreadOverride(unsigned threads)
    : previous_(tl_thread_override) {
  adc::common::require(threads >= 1, "ScopedThreadOverride: thread count must be >= 1");
  tl_thread_override = threads;
}

ScopedThreadOverride::~ScopedThreadOverride() { tl_thread_override = previous_; }

unsigned effective_thread_count(unsigned requested) {
  if (requested > 0) return requested;
  if (tl_thread_override > 0) return tl_thread_override;
  return default_thread_count();
}

}  // namespace adc::runtime
