/// \file metrics.hpp
/// Run telemetry primitives for the parallel runtime: a lock-free latency
/// histogram, wall/CPU phase timers, and plain snapshot structs that the
/// manifest layer serializes to JSON.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace adc::runtime {

/// Immutable copy of a LatencyHistogram, safe to pass across threads and
/// into the manifest writer.
struct HistogramSnapshot {
  /// counts[i] holds samples with latency in [2^i, 2^(i+1)) microseconds;
  /// counts[0] additionally absorbs sub-microsecond samples.
  std::vector<std::uint64_t> counts;

  [[nodiscard]] std::uint64_t total() const;
  /// Upper bound (µs) of the bucket containing quantile `q` in [0, 1];
  /// 0 when the histogram is empty.
  [[nodiscard]] std::uint64_t quantile_upper_us(double q) const;
};

/// Log2-bucketed latency histogram over microseconds. `record` is wait-free
/// (a single relaxed atomic increment) so workers can stamp every job.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void record(std::chrono::nanoseconds latency) noexcept;
  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// One completed phase of a run: wall and CPU seconds plus an optional job
/// count (0 = not a batched phase).
struct PhaseTiming {
  std::string name;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  std::uint64_t jobs = 0;
};

/// Stopwatch capturing wall time (steady clock) and process CPU time from
/// construction. CPU time covers the whole process, so with worker threads
/// active cpu_seconds() > wall_seconds() indicates real parallelism.
class Stopwatch {
 public:
  Stopwatch();
  [[nodiscard]] double wall_seconds() const;
  [[nodiscard]] double cpu_seconds() const;

 private:
  std::chrono::steady_clock::time_point wall_start_;
  std::int64_t cpu_start_ns_ = 0;
};

}  // namespace adc::runtime
