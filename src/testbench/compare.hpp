/// \file compare.hpp
/// Paper-versus-simulation comparison blocks printed by every bench binary,
/// so EXPERIMENTS.md rows can be regenerated mechanically.
#pragma once

#include <string>
#include <vector>

namespace adc::testbench {

/// Accumulates "paper said X, we measured Y" rows.
class PaperComparison {
 public:
  explicit PaperComparison(std::string experiment_id);

  /// Free-text row.
  void add(const std::string& metric, const std::string& paper, const std::string& simulated,
           const std::string& note = "");

  /// Numeric row; the deviation column is filled automatically.
  void add_numeric(const std::string& metric, double paper, double simulated,
                   const std::string& unit, const std::string& note = "");

  /// Shape/qualitative row (e.g. "linear in f_CR", "roll-off above 100 MHz").
  void add_shape(const std::string& aspect, const std::string& paper,
                 const std::string& simulated, bool matches);

  [[nodiscard]] std::string render() const;

 private:
  struct Row {
    std::string metric;
    std::string paper;
    std::string simulated;
    std::string note;
  };
  std::string id_;
  std::vector<Row> rows_;
};

}  // namespace adc::testbench
