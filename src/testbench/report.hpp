/// \file report.hpp
/// Terminal rendering for the bench binaries: aligned tables and ASCII
/// line/scatter plots (linear or logarithmic axes) so every figure of the
/// paper can be regenerated as text.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace adc::testbench {

/// Simple column-aligned table.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  [[nodiscard]] std::string render() const;

  /// Format a double with `precision` digits after the point.
  [[nodiscard]] static std::string num(double v, int precision = 2);
  /// Engineering formatting with a unit, e.g. eng(97e-3, "W") -> "97.0 mW".
  [[nodiscard]] static std::string eng(double v, const std::string& unit, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// One plotted series.
struct PlotSeries {
  std::string label;
  char symbol = '*';
  std::vector<double> x;
  std::vector<double> y;
};

/// Plot canvas options.
struct PlotOptions {
  std::string title;
  std::string x_label;
  std::string y_label;
  int width = 72;   ///< plot-area columns
  int height = 20;  ///< plot-area rows
  bool log_x = false;
  bool log_y = false;
  /// Optional fixed axis ranges; NaN = auto.
  double x_min = 0.0, x_max = 0.0, y_min = 0.0, y_max = 0.0;
  bool fixed_x = false, fixed_y = false;
};

/// Render one or more series on a shared canvas with axes and a legend.
[[nodiscard]] std::string render_plot(std::span<const PlotSeries> series,
                                      const PlotOptions& options);

}  // namespace adc::testbench
