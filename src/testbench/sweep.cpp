#include "testbench/sweep.hpp"

#include <cmath>
#include <cstddef>

#include "common/error.hpp"
#include "dsp/signal.hpp"
#include "runtime/parallel.hpp"

namespace adc::testbench {

std::vector<SweepPoint> sweep_conversion_rate(const adc::pipeline::AdcConfig& base,
                                              const std::vector<double>& rates_hz,
                                              const DynamicTestOptions& options,
                                              double max_fin_fraction) {
  adc::common::require(max_fin_fraction > 0.0 && max_fin_fraction < 1.0,
                       "sweep_conversion_rate: fin fraction outside (0, 1)");
  // One job per operating point, keyed by (base config+seed, rates_hz[i]);
  // each re-instantiates the same die re-clocked, so points are independent
  // and the runtime returns them in point order at any thread count.
  return adc::runtime::parallel_map<SweepPoint>(
      rates_hz.size(), [&base, &rates_hz, &options, max_fin_fraction](std::size_t i) {
        const double rate = rates_hz[i];
        adc::pipeline::AdcConfig cfg = base;
        cfg.conversion_rate = rate;
        adc::pipeline::PipelineAdc adc(cfg);  // same seed: the same die, re-clocked

        DynamicTestOptions opt = options;
        // Keep the tone inside the first Nyquist zone at low rates.
        opt.target_fin_hz = std::min(options.target_fin_hz, max_fin_fraction * rate / 2.0);

        SweepPoint p;
        p.x = rate;
        p.result = run_dynamic_test(adc, opt);
        return p;
      });
}

std::vector<SweepPoint> sweep_input_frequency(const adc::pipeline::AdcConfig& base,
                                              const std::vector<double>& fins_hz,
                                              const DynamicTestOptions& options) {
  const double fs = base.conversion_rate;
  const std::size_t n = options.record_length;
  const double bin_hz = fs / static_cast<double>(n);

  return adc::runtime::parallel_map<SweepPoint>(
      fins_hz.size(), [&base, &fins_hz, &options, fs, n, bin_hz](std::size_t i) {
        const double fin = fins_hz[i];
        adc::pipeline::PipelineAdc adc(base);  // same die for every point

        // Snap to an odd coherent multiple of the bin spacing; above Nyquist the
        // tone is captured under-sampled and analysed at its alias bin.
        auto m = static_cast<std::size_t>(std::llround(fin / bin_hz));
        if (m < 1) m = 1;
        if (m % 2 == 0) ++m;
        const double f_true = static_cast<double>(m) * bin_hz;
        const double f_alias = adc::dsp::alias_frequency(f_true, fs);
        const auto alias_bin = static_cast<std::size_t>(std::llround(f_alias / bin_hz));
        adc::common::require(alias_bin >= 1 && alias_bin < n / 2,
                             "sweep_input_frequency: tone aliases onto DC/Nyquist; "
                             "pick a different frequency");

        const double amplitude = options.amplitude_fraction * adc.full_scale_vpp() / 2.0;
        const adc::dsp::SineSignal tone(amplitude, f_true);
        const auto codes = adc.convert(tone, n);
        const auto volts =
            adc::dsp::codes_to_volts(codes, adc.resolution_bits(), adc.full_scale_vpp());

        adc::dsp::SpectrumOptions spec = options.spectrum;
        spec.fundamental_bin = alias_bin;
        spec.harmonic_base_hz = f_true;

        SweepPoint p;
        p.x = f_true;
        p.result.tone = {f_true, m};
        p.result.metrics = adc::dsp::analyze_tone(volts, fs, spec);
        return p;
      });
}

}  // namespace adc::testbench
