/// \file two_tone.hpp
/// Two-tone intermodulation characterization.
///
/// Communication receivers (the paper's third target application) care about
/// IMD3 as much as single-tone THD: two blockers at f1 and f2 intermodulate
/// in the converter's nonlinearities and the 2f1-f2 / 2f2-f1 products land
/// right next to the wanted channel. This bench applies two coherent tones
/// (each backed off 6 dB so the sum stays within full scale) and integrates
/// the close-in third-order products.
#pragma once

#include <cstddef>

#include "common/units.hpp"
#include "dsp/spectrum.hpp"
#include "pipeline/adc.hpp"

namespace adc::testbench {

using namespace adc::common::literals;

/// Options for the two-tone measurement.
struct TwoToneOptions {
  std::size_t record_length = 1 << 13;
  /// Requested tone centre [Hz]; both tones are snapped to odd coherent bins
  /// around it, `spacing_hz` apart.
  double center_hz = 10.0_MHz;
  double spacing_hz = 1.2_MHz;
  /// Per-tone amplitude as a fraction of full scale (0.49 ~ -6.2 dBFS each).
  double amplitude_fraction = 0.49;
};

/// Result of a two-tone measurement.
struct TwoToneResult {
  double f1_hz = 0.0;
  double f2_hz = 0.0;
  double tone_power_db = 0.0;  ///< per-tone level relative to full scale [dB]
  /// Third-order intermod levels relative to one tone [dBc].
  double imd3_low_dbc = 0.0;   ///< at 2*f1 - f2
  double imd3_high_dbc = 0.0;  ///< at 2*f2 - f1
  /// Second-order product at f1 + f2 [dBc] (differential circuits keep this low).
  double imd2_dbc = 0.0;
  /// Worst of the three products [dBc].
  double worst_imd_dbc = 0.0;
};

/// Run a two-tone test on a realized converter.
[[nodiscard]] TwoToneResult run_two_tone_test(adc::pipeline::PipelineAdc& adc,
                                              const TwoToneOptions& options = {});

}  // namespace adc::testbench
