#include "testbench/dynamic_test.hpp"

#include <algorithm>
#include <utility>

#include "batch/converter.hpp"
#include "common/error.hpp"
#include "runtime/parallel.hpp"

namespace adc::testbench {

DynamicTestResult run_dynamic_test(adc::pipeline::PipelineAdc& adc,
                                   const DynamicTestOptions& options) {
  adc::common::require(options.amplitude_fraction > 0.0 && options.amplitude_fraction <= 1.05,
                       "run_dynamic_test: amplitude fraction outside (0, 1.05]");
  const double fs = adc.conversion_rate();
  const std::size_t n = options.record_length;

  DynamicTestResult result;
  result.tone = adc::dsp::coherent_frequency(options.target_fin_hz, fs, n);

  adc::common::require(options.averages >= 1, "run_dynamic_test: averages must be >= 1");
  const double amplitude = options.amplitude_fraction * adc.full_scale_vpp() / 2.0;
  const adc::dsp::SineSignal tone(amplitude, result.tone.frequency_hz);

  adc::dsp::SpectrumOptions spec = options.spectrum;
  spec.fundamental_bin = result.tone.cycles;
  if (options.averages == 1) {
    const auto codes = adc.convert(tone, n);
    const auto volts =
        adc::dsp::codes_to_volts(codes, adc.resolution_bits(), adc.full_scale_vpp());
    result.metrics = adc::dsp::analyze_tone(volts, fs, spec);
  } else {
    std::vector<std::vector<double>> records;
    records.reserve(static_cast<std::size_t>(options.averages));
    for (int r = 0; r < options.averages; ++r) {
      const auto codes = adc.convert(tone, n);
      records.push_back(
          adc::dsp::codes_to_volts(codes, adc.resolution_bits(), adc.full_scale_vpp()));
    }
    result.metrics = adc::dsp::analyze_tone_averaged(records, fs, spec);
  }
  return result;
}

namespace {

/// Scalar fallback: fabricate and measure the block's dies one at a time.
std::vector<DynamicTestResult> run_block_scalar(const adc::pipeline::AdcConfig& base,
                                                std::span<const std::uint64_t> seeds,
                                                const DynamicTestOptions& options) {
  std::vector<DynamicTestResult> out;
  out.reserve(seeds.size());
  for (const std::uint64_t seed : seeds) {
    adc::pipeline::AdcConfig cfg = base;
    cfg.seed = seed;
    adc::pipeline::PipelineAdc die(cfg);
    out.push_back(run_dynamic_test(die, options));
  }
  return out;
}

/// Batch path: one BatchConverter per block, every capture runs all dies
/// through the SoA kernel. The tone setup mirrors run_dynamic_test line by
/// line (same coherent snap, same amplitude, same spectrum options), and the
/// capture sequence per die matches the scalar averages loop — each
/// convert() advances every die's noise epoch exactly once, like repeated
/// scalar convert() calls on a per-die converter would.
std::vector<DynamicTestResult> run_block_batched(const adc::pipeline::AdcConfig& base,
                                                 std::span<const std::uint64_t> seeds,
                                                 const DynamicTestOptions& options) {
  adc::batch::BatchConverter conv(base, seeds);
  const double fs = conv.conversion_rate();
  const std::size_t n = options.record_length;
  const adc::dsp::CoherentTone coherent =
      adc::dsp::coherent_frequency(options.target_fin_hz, fs, n);
  const double amplitude = options.amplitude_fraction * conv.full_scale_vpp() / 2.0;
  const adc::dsp::SineSignal tone(amplitude, coherent.frequency_hz);

  adc::dsp::SpectrumOptions spec = options.spectrum;
  spec.fundamental_bin = coherent.cycles;

  std::vector<DynamicTestResult> out(seeds.size());
  for (auto& r : out) r.tone = coherent;
  if (options.averages == 1) {
    const auto codes = conv.convert(tone, n);
    for (std::size_t d = 0; d < seeds.size(); ++d) {
      const auto volts =
          adc::dsp::codes_to_volts(codes[d], conv.resolution_bits(), conv.full_scale_vpp());
      out[d].metrics = adc::dsp::analyze_tone(volts, fs, spec);
    }
  } else {
    std::vector<std::vector<std::vector<double>>> records(seeds.size());
    for (auto& r : records) r.reserve(static_cast<std::size_t>(options.averages));
    for (int r = 0; r < options.averages; ++r) {
      const auto codes = conv.convert(tone, n);
      for (std::size_t d = 0; d < seeds.size(); ++d) {
        records[d].push_back(
            adc::dsp::codes_to_volts(codes[d], conv.resolution_bits(), conv.full_scale_vpp()));
      }
    }
    for (std::size_t d = 0; d < seeds.size(); ++d) {
      out[d].metrics = adc::dsp::analyze_tone_averaged(records[d], fs, spec);
    }
  }
  return out;
}

}  // namespace

std::vector<DynamicTestResult> run_dynamic_test_block(const adc::pipeline::AdcConfig& base,
                                                      std::span<const std::uint64_t> seeds,
                                                      const DynamicTestOptions& options) {
  adc::common::require(!seeds.empty(), "run_dynamic_test_block: need at least one seed");
  adc::common::require(options.amplitude_fraction > 0.0 && options.amplitude_fraction <= 1.05,
                       "run_dynamic_test: amplitude fraction outside (0, 1.05]");
  adc::common::require(options.averages >= 1, "run_dynamic_test: averages must be >= 1");

  const bool batchable = adc::batch::BatchConverter::supports_config(base);
  std::vector<DynamicTestResult> out;
  out.reserve(seeds.size());
  for (std::size_t lo = 0; lo < seeds.size(); lo += adc::batch::kLanes) {
    const std::size_t count = std::min(adc::batch::kLanes, seeds.size() - lo);
    const auto chunk = seeds.subspan(lo, count);
    const bool use_batch = batchable && count >= adc::batch::kMinBatchDies;
    auto block =
        use_batch ? run_block_batched(base, chunk, options) : run_block_scalar(base, chunk, options);
    for (auto& r : block) out.push_back(std::move(r));
  }
  return out;
}

std::vector<DynamicTestResult> run_dynamic_test_dies(const adc::pipeline::AdcConfig& base,
                                                     std::span<const std::uint64_t> seeds,
                                                     const DynamicTestOptions& options,
                                                     int threads) {
  adc::common::require(!seeds.empty(), "run_dynamic_test_dies: need at least one seed");

  constexpr std::size_t kLanes = adc::batch::kLanes;
  const std::size_t num_blocks = (seeds.size() + kLanes - 1) / kLanes;

  adc::runtime::BatchOptions pool;
  pool.threads = threads > 0 ? static_cast<unsigned>(threads) : 0;

  // One job per kLanes-aligned die block. Blocks are independent, so the
  // runtime's determinism contract keeps the flattened result in seed order
  // and bit-identical at any thread count. The trailing ragged block (and
  // every block when the profile is not fast) takes the scalar fallback
  // inside run_dynamic_test_block.
  const auto blocks = adc::runtime::parallel_map<std::vector<DynamicTestResult>>(
      num_blocks,
      [&base, &seeds, &options](std::size_t b) {
        const std::size_t lo = b * adc::batch::kLanes;
        const std::size_t count = std::min(adc::batch::kLanes, seeds.size() - lo);
        return run_dynamic_test_block(base, seeds.subspan(lo, count), options);
      },
      pool);

  std::vector<DynamicTestResult> out;
  out.reserve(seeds.size());
  for (auto& block : blocks) {
    for (auto& r : block) out.push_back(std::move(r));
  }
  return out;
}

}  // namespace adc::testbench
