#include "testbench/dynamic_test.hpp"

#include "common/error.hpp"

namespace adc::testbench {

DynamicTestResult run_dynamic_test(adc::pipeline::PipelineAdc& adc,
                                   const DynamicTestOptions& options) {
  adc::common::require(options.amplitude_fraction > 0.0 && options.amplitude_fraction <= 1.05,
                       "run_dynamic_test: amplitude fraction outside (0, 1.05]");
  const double fs = adc.conversion_rate();
  const std::size_t n = options.record_length;

  DynamicTestResult result;
  result.tone = adc::dsp::coherent_frequency(options.target_fin_hz, fs, n);

  adc::common::require(options.averages >= 1, "run_dynamic_test: averages must be >= 1");
  const double amplitude = options.amplitude_fraction * adc.full_scale_vpp() / 2.0;
  const adc::dsp::SineSignal tone(amplitude, result.tone.frequency_hz);

  adc::dsp::SpectrumOptions spec = options.spectrum;
  spec.fundamental_bin = result.tone.cycles;
  if (options.averages == 1) {
    const auto codes = adc.convert(tone, n);
    const auto volts =
        adc::dsp::codes_to_volts(codes, adc.resolution_bits(), adc.full_scale_vpp());
    result.metrics = adc::dsp::analyze_tone(volts, fs, spec);
  } else {
    std::vector<std::vector<double>> records;
    records.reserve(static_cast<std::size_t>(options.averages));
    for (int r = 0; r < options.averages; ++r) {
      const auto codes = adc.convert(tone, n);
      records.push_back(
          adc::dsp::codes_to_volts(codes, adc.resolution_bits(), adc.full_scale_vpp()));
    }
    result.metrics = adc::dsp::analyze_tone_averaged(records, fs, spec);
  }
  return result;
}

}  // namespace adc::testbench
