#include "testbench/compare.hpp"

#include <cmath>
#include <sstream>

#include "testbench/report.hpp"

namespace adc::testbench {

PaperComparison::PaperComparison(std::string experiment_id) : id_(std::move(experiment_id)) {}

void PaperComparison::add(const std::string& metric, const std::string& paper,
                          const std::string& simulated, const std::string& note) {
  rows_.push_back({metric, paper, simulated, note});
}

void PaperComparison::add_numeric(const std::string& metric, double paper, double simulated,
                                  const std::string& unit, const std::string& note) {
  std::ostringstream dev;
  if (std::abs(paper) > 0.0) {
    dev.setf(std::ios::fixed);
    dev.precision(1);
    dev << (simulated - paper >= 0.0 ? "+" : "") << (simulated - paper) << " " << unit;
    if (!note.empty()) dev << "; " << note;
  }
  rows_.push_back({metric, AsciiTable::num(paper, 1) + " " + unit,
                   AsciiTable::num(simulated, 1) + " " + unit, dev.str()});
}

void PaperComparison::add_shape(const std::string& aspect, const std::string& paper,
                                const std::string& simulated, bool matches) {
  rows_.push_back({aspect, paper, simulated, matches ? "shape: MATCH" : "shape: MISMATCH"});
}

std::string PaperComparison::render() const {
  AsciiTable table({"metric (" + id_ + ")", "paper", "simulated", "delta / note"});
  for (const auto& r : rows_) table.add_row({r.metric, r.paper, r.simulated, r.note});
  return table.render();
}

}  // namespace adc::testbench
