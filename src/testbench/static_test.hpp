/// \file static_test.hpp
/// Static-linearity benches: the sine-histogram test (as a real bench would
/// run it, noise and all) and a fast noiseless edge-search extraction for
/// unit tests.
#pragma once

#include <cstddef>

#include "dsp/linearity.hpp"
#include "pipeline/adc.hpp"

namespace adc::testbench {

/// Options for the sine-histogram static test.
struct HistogramTestOptions {
  /// Record length; >= ~1000 samples per code for a trustworthy 12-bit DNL
  /// (the Table I bench uses 2^22).
  std::size_t samples = 1 << 22;
  /// Overdrive beyond full scale so the end codes saturate cleanly.
  double overdrive_fraction = 1.02;
  /// Input frequency as an irrational-ish fraction of f_CR for uniform phase
  /// coverage (never locks to the sampling grid).
  double fin_fraction = 0.382197186342054;  // ~ (golden ratio - 1)/phi^2-ish
};

/// Run the sine-histogram DNL/INL measurement.
[[nodiscard]] adc::dsp::LinearityResult run_histogram_test(
    adc::pipeline::PipelineAdc& adc, const HistogramTestOptions& options = {});

/// Noiseless transfer-edge extraction via binary search on DC conversions.
/// Requires a converter configured without thermal/comparator noise
/// (deterministic transfer); throws MeasurementError if the transfer is not
/// reproducible. Returns all 2^bits - 1 code-transition voltages.
[[nodiscard]] std::vector<double> extract_transfer_edges(adc::pipeline::PipelineAdc& adc,
                                                         int search_iterations = 40);

}  // namespace adc::testbench
