#include "testbench/report.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace adc::testbench {

AsciiTable::AsciiTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  adc::common::require(!headers_.empty(), "AsciiTable: no columns");
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  adc::common::require(cells.size() == headers_.size(), "AsciiTable: cell count mismatch");
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    out << '\n';
  };
  auto emit_rule = [&] {
    out << "+";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out << std::string(widths[c] + 2, '-') << '+';
    }
    out << '\n';
  };

  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return out.str();
}

std::string AsciiTable::num(double v, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << v;
  return out.str();
}

std::string AsciiTable::eng(double v, const std::string& unit, int precision) {
  static constexpr struct {
    double scale;
    const char* prefix;
  } kPrefixes[] = {{1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},
                   {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"}};
  const double mag = std::abs(v);
  for (const auto& p : kPrefixes) {
    if (mag >= p.scale || (&p == std::end(kPrefixes) - 1)) {
      return num(v / p.scale, precision) + " " + p.prefix + unit;
    }
  }
  return num(v, precision) + " " + unit;
}

namespace {

double axis_transform(double v, bool log_scale) {
  if (!log_scale) return v;
  adc::common::require(v > 0.0, "render_plot: log axis requires positive values");
  return std::log10(v);
}

std::string format_tick(double v) {
  std::ostringstream out;
  if (std::abs(v) > 0.0 && (std::abs(v) >= 1e5 || std::abs(v) < 1e-3)) {
    out.precision(1);
    out << std::scientific << v;
  } else {
    out.precision(std::abs(v) >= 100.0 ? 0 : 2);
    out.setf(std::ios::fixed);
    out << v;
  }
  return out.str();
}

}  // namespace

std::string render_plot(std::span<const PlotSeries> series, const PlotOptions& options) {
  adc::common::require(!series.empty(), "render_plot: no series");
  adc::common::require(options.width >= 16 && options.height >= 6,
                       "render_plot: canvas too small");

  // Gather transformed data ranges.
  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin;
  double ymin = xmin;
  double ymax = -xmin;
  for (const auto& s : series) {
    adc::common::require(s.x.size() == s.y.size(), "render_plot: series size mismatch");
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const double tx = axis_transform(s.x[i], options.log_x);
      const double ty = axis_transform(s.y[i], options.log_y);
      xmin = std::min(xmin, tx);
      xmax = std::max(xmax, tx);
      ymin = std::min(ymin, ty);
      ymax = std::max(ymax, ty);
    }
  }
  if (options.fixed_x) {
    xmin = axis_transform(options.x_min, options.log_x);
    xmax = axis_transform(options.x_max, options.log_x);
  }
  if (options.fixed_y) {
    ymin = axis_transform(options.y_min, options.log_y);
    ymax = axis_transform(options.y_max, options.log_y);
  }
  adc::common::require(std::isfinite(xmin) && std::isfinite(ymin),
                       "render_plot: no data points");
  if (xmax <= xmin) xmax = xmin + 1.0;
  if (ymax <= ymin) ymax = ymin + 1.0;
  // A little headroom so points never sit on the frame (auto axes only;
  // fixed ranges are respected exactly).
  if (!options.fixed_x) {
    const double xpad = 0.02 * (xmax - xmin);
    xmin -= xpad;
    xmax += xpad;
  }
  if (!options.fixed_y) {
    const double ypad = 0.05 * (ymax - ymin);
    ymin -= ypad;
    ymax += ypad;
  }

  const int w = options.width;
  const int h = options.height;
  std::vector<std::string> canvas(static_cast<std::size_t>(h),
                                  std::string(static_cast<std::size_t>(w), ' '));

  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const double tx = axis_transform(s.x[i], options.log_x);
      const double ty = axis_transform(s.y[i], options.log_y);
      if (tx < xmin || tx > xmax || ty < ymin || ty > ymax) continue;
      const int col = static_cast<int>(std::lround((tx - xmin) / (xmax - xmin) * (w - 1)));
      const int row = static_cast<int>(std::lround((ty - ymin) / (ymax - ymin) * (h - 1)));
      canvas[static_cast<std::size_t>(h - 1 - row)][static_cast<std::size_t>(col)] = s.symbol;
    }
  }

  std::ostringstream out;
  if (!options.title.empty()) out << options.title << '\n';

  auto untransform = [](double v, bool log_scale) {
    return log_scale ? std::pow(10.0, v) : v;
  };

  // Y-axis labels on the left of the frame, at top/middle/bottom.
  const std::string ytop = format_tick(untransform(ymax, options.log_y));
  const std::string ymid = format_tick(untransform(0.5 * (ymin + ymax), options.log_y));
  const std::string ybot = format_tick(untransform(ymin, options.log_y));
  std::size_t label_w = std::max({ytop.size(), ymid.size(), ybot.size()});

  auto margin = [&](const std::string& label) {
    return std::string(label_w - label.size(), ' ') + label;
  };

  out << margin(ytop) << " +" << std::string(static_cast<std::size_t>(w), '-') << "+\n";
  for (int r = 0; r < h; ++r) {
    if (r == h / 2) {
      out << margin(ymid) << " |";
    } else {
      out << std::string(label_w, ' ') << " |";
    }
    out << canvas[static_cast<std::size_t>(r)] << "|\n";
  }
  out << margin(ybot) << " +" << std::string(static_cast<std::size_t>(w), '-') << "+\n";

  const std::string xlo = format_tick(untransform(xmin, options.log_x));
  const std::string xhi = format_tick(untransform(xmax, options.log_x));
  out << std::string(label_w + 2, ' ') << xlo;
  const auto used = xlo.size() + xhi.size();
  if (static_cast<std::size_t>(w) > used) {
    out << std::string(static_cast<std::size_t>(w) - used, ' ');
  }
  out << xhi << '\n';
  if (!options.x_label.empty() || !options.y_label.empty()) {
    out << std::string(label_w + 2, ' ') << options.x_label;
    if (!options.y_label.empty()) out << "   (y: " << options.y_label << ")";
    out << '\n';
  }

  out << std::string(label_w + 2, ' ') << "legend:";
  for (const auto& s : series) out << "  " << s.symbol << " = " << s.label;
  out << '\n';
  return out.str();
}

}  // namespace adc::testbench
