/// \file monte_carlo.hpp
/// Monte-Carlo yield analysis across fabricated dies.
///
/// An IP block (the paper's product) is sold against a datasheet that every
/// die must meet: the seed of `AdcConfig` is the die, so yield analysis is a
/// loop over seeds. The runner fabricates N dies, measures a user-supplied
/// metric on each (in parallel on the shared runtime pool, see
/// src/runtime/parallel.hpp), and reports the distribution plus the fraction
/// meeting a limit. Results are in seed order and bit-identical at any
/// thread count; a throwing metric cancels the remaining dies and the
/// exception is rethrown on the calling thread.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "pipeline/adc.hpp"
#include "testbench/dynamic_test.hpp"

namespace adc::testbench {

/// Options for a Monte-Carlo run.
struct MonteCarloOptions {
  int num_dies = 25;
  std::uint64_t first_seed = 1000;
  /// Worker threads (0 = runtime default: ADC_RUNTIME_THREADS, an active
  /// ScopedThreadOverride, or hardware concurrency — see runtime/parallel.hpp).
  int threads = 0;
};

/// Distribution summary of one metric across dies.
struct MonteCarloResult {
  std::vector<double> values;  ///< one per die, in seed order
  double mean = 0.0;
  double std_dev = 0.0;
  double min = 0.0;
  double max = 0.0;

  /// Fraction of dies with value >= limit (for lower-is-fail specs).
  [[nodiscard]] double yield_at_least(double limit) const;
  /// Fraction of dies with value <= limit (for upper-is-fail specs).
  [[nodiscard]] double yield_at_most(double limit) const;
};

/// Metric evaluated on one fabricated die.
using DieMetric = std::function<double(adc::pipeline::PipelineAdc&)>;

/// Fabricate `options.num_dies` dies from `base` (seeds first_seed,
/// first_seed+1, ...) and evaluate `metric` on each. Thread-safe as long as
/// `metric` touches only its own converter instance.
[[nodiscard]] MonteCarloResult run_monte_carlo(const adc::pipeline::AdcConfig& base,
                                               const DieMetric& metric,
                                               const MonteCarloOptions& options = {});

/// Metric projected from a full dynamic-test result (e.g. metrics.sndr_db).
using DynamicMetric = std::function<double(const DynamicTestResult&)>;

/// Monte-Carlo over the dynamic (single-tone) bench: fabricate the dies,
/// run `test` on each through run_dynamic_test_dies — which routes
/// fast-profile die blocks through the batch conversion engine — and reduce
/// `metric` over the per-die results. Values are byte-identical to
/// run_monte_carlo with a metric lambda that calls run_dynamic_test, in
/// seed order, at any thread count; the batch engine only changes the
/// throughput.
[[nodiscard]] MonteCarloResult run_monte_carlo_dynamic(const adc::pipeline::AdcConfig& base,
                                                       const DynamicTestOptions& test,
                                                       const DynamicMetric& metric,
                                                       const MonteCarloOptions& options = {});

}  // namespace adc::testbench
