/// \file dynamic_test.hpp
/// The dynamic (single-tone) characterization bench.
///
/// Mirrors the paper's measurement setup: a filtered sine near full scale is
/// applied, a coherent record is captured and FFT'd, and SNR/SNDR/SFDR/ENOB
/// are read from the spectrum. The tone frequency is snapped to the nearest
/// odd coherent bin so the rectangular window applies.
#pragma once

#include <cstddef>

#include "common/units.hpp"
#include "dsp/signal.hpp"
#include "dsp/spectrum.hpp"
#include "pipeline/adc.hpp"

namespace adc::testbench {

using namespace adc::common::literals;

/// Options for one dynamic measurement.
struct DynamicTestOptions {
  std::size_t record_length = 1 << 13;
  /// Requested input frequency [Hz]; snapped to the nearest odd coherent bin.
  double target_fin_hz = 10.0_MHz;
  /// Signal amplitude as a fraction of full scale (the paper measures "near
  /// full scale", 2 V_P-P).
  double amplitude_fraction = 0.985;
  /// Analysis options (window, harmonic count).
  adc::dsp::SpectrumOptions spectrum;
  /// Number of records whose *power spectra* are averaged before the
  /// metrics are read (bench practice for tightening the noise estimate;
  /// tone and spur levels are unaffected, their variance shrinks).
  int averages = 1;
};

/// Result: the exact tone used plus the spectral metrics.
struct DynamicTestResult {
  adc::dsp::CoherentTone tone;
  adc::dsp::SpectrumMetrics metrics;
};

/// Run one dynamic measurement on a realized converter.
[[nodiscard]] DynamicTestResult run_dynamic_test(adc::pipeline::PipelineAdc& adc,
                                                 const DynamicTestOptions& options = {});

}  // namespace adc::testbench
