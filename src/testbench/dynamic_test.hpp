/// \file dynamic_test.hpp
/// The dynamic (single-tone) characterization bench.
///
/// Mirrors the paper's measurement setup: a filtered sine near full scale is
/// applied, a coherent record is captured and FFT'd, and SNR/SNDR/SFDR/ENOB
/// are read from the spectrum. The tone frequency is snapped to the nearest
/// odd coherent bin so the rectangular window applies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "dsp/signal.hpp"
#include "dsp/spectrum.hpp"
#include "pipeline/adc.hpp"

namespace adc::testbench {

using namespace adc::common::literals;

/// Options for one dynamic measurement.
struct DynamicTestOptions {
  std::size_t record_length = 1 << 13;
  /// Requested input frequency [Hz]; snapped to the nearest odd coherent bin.
  double target_fin_hz = 10.0_MHz;
  /// Signal amplitude as a fraction of full scale (the paper measures "near
  /// full scale", 2 V_P-P).
  double amplitude_fraction = 0.985;
  /// Analysis options (window, harmonic count).
  adc::dsp::SpectrumOptions spectrum;
  /// Number of records whose *power spectra* are averaged before the
  /// metrics are read (bench practice for tightening the noise estimate;
  /// tone and spur levels are unaffected, their variance shrinks).
  int averages = 1;
};

/// Result: the exact tone used plus the spectral metrics.
struct DynamicTestResult {
  adc::dsp::CoherentTone tone;
  adc::dsp::SpectrumMetrics metrics;
};

/// Run one dynamic measurement on a realized converter.
[[nodiscard]] DynamicTestResult run_dynamic_test(adc::pipeline::PipelineAdc& adc,
                                                 const DynamicTestOptions& options = {});

/// Run the same dynamic measurement on many fabricated dies (each seed
/// overrides base.seed). Dies are partitioned into blocks of
/// adc::batch::kLanes and the blocks distributed over the runtime pool; a
/// block routes through the batch conversion engine when the configuration
/// is inside its contract (fast fidelity profile) and the block holds at
/// least adc::batch::kMinBatchDies dies — otherwise it converts die by die.
/// Either way each entry of the result is byte-identical to calling
/// run_dynamic_test on a fresh PipelineAdc fabricated with that seed, in
/// seed order, at any thread count (0 = runtime default).
[[nodiscard]] std::vector<DynamicTestResult> run_dynamic_test_dies(
    const adc::pipeline::AdcConfig& base, std::span<const std::uint64_t> seeds,
    const DynamicTestOptions& options = {}, int threads = 0);

/// The synchronous building block of run_dynamic_test_dies: measure the
/// given seeds on the calling thread, kLanes dies at a time, routing each
/// chunk through the batch engine when supported and large enough. Exposed
/// so callers that already sit inside a runtime-pool job (the scenario
/// runner's execute phase) can batch without nesting parallel_map.
[[nodiscard]] std::vector<DynamicTestResult> run_dynamic_test_block(
    const adc::pipeline::AdcConfig& base, std::span<const std::uint64_t> seeds,
    const DynamicTestOptions& options = {});

}  // namespace adc::testbench
