#include "testbench/static_test.hpp"

#include <cmath>

#include "common/error.hpp"
#include "dsp/signal.hpp"

namespace adc::testbench {

adc::dsp::LinearityResult run_histogram_test(adc::pipeline::PipelineAdc& adc,
                                             const HistogramTestOptions& options) {
  adc::common::require(options.samples >= 1024, "run_histogram_test: record too short");
  adc::common::require(options.overdrive_fraction > 1.0,
                       "run_histogram_test: sine must overdrive the full scale");
  const double fs = adc.conversion_rate();
  const double amplitude = options.overdrive_fraction * adc.full_scale_vpp() / 2.0;
  const adc::dsp::SineSignal sine(amplitude, options.fin_fraction * fs);

  const auto codes = adc.convert(sine, options.samples);
  return adc::dsp::histogram_linearity(codes, adc.resolution_bits());
}

std::vector<double> extract_transfer_edges(adc::pipeline::PipelineAdc& adc,
                                           int search_iterations) {
  adc::common::require(search_iterations >= 8, "extract_transfer_edges: too few iterations");
  const int bits = adc.resolution_bits();
  const auto ncodes = static_cast<std::size_t>(1) << bits;
  const double half_fs = adc.full_scale_vpp() / 2.0;

  // Determinism check: the transfer must be noise-free for edge search.
  // Repeat several conversions at several probes; with any noise enabled,
  // a probe near a code edge flips codes almost surely.
  for (int p = 0; p < 16; ++p) {
    const double probe = (-0.9 + 0.113 * p) * half_fs;
    const int first = adc.convert_dc(probe);
    for (int rep = 0; rep < 8; ++rep) {
      if (adc.convert_dc(probe) != first) {
        throw adc::common::MeasurementError(
            "extract_transfer_edges: converter is noisy; disable thermal/comparator "
            "noise");
      }
    }
  }

  std::vector<double> edges(ncodes - 1);
  for (std::size_t k = 0; k + 1 < ncodes; ++k) {
    // Edge between code k and k+1: binary search assuming monotone transfer.
    double lo = -1.05 * half_fs;
    double hi = 1.05 * half_fs;
    const int target = static_cast<int>(k);
    for (int it = 0; it < search_iterations; ++it) {
      const double mid = 0.5 * (lo + hi);
      if (adc.convert_dc(mid) <= target) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    edges[k] = 0.5 * (lo + hi);
  }
  return edges;
}

}  // namespace adc::testbench
