#include "testbench/monte_carlo.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace adc::testbench {

double MonteCarloResult::yield_at_least(double limit) const {
  if (values.empty()) return 0.0;
  const auto pass = std::count_if(values.begin(), values.end(),
                                  [limit](double v) { return v >= limit; });
  return static_cast<double>(pass) / static_cast<double>(values.size());
}

double MonteCarloResult::yield_at_most(double limit) const {
  if (values.empty()) return 0.0;
  const auto pass = std::count_if(values.begin(), values.end(),
                                  [limit](double v) { return v <= limit; });
  return static_cast<double>(pass) / static_cast<double>(values.size());
}

MonteCarloResult run_monte_carlo(const adc::pipeline::AdcConfig& base, const DieMetric& metric,
                                 const MonteCarloOptions& options) {
  adc::common::require(options.num_dies >= 1, "run_monte_carlo: need at least one die");
  adc::common::require(static_cast<bool>(metric), "run_monte_carlo: empty metric");

  MonteCarloResult result;
  result.values.assign(static_cast<std::size_t>(options.num_dies), 0.0);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const auto nthreads = static_cast<unsigned>(
      options.threads > 0 ? static_cast<unsigned>(options.threads)
                          : std::min<unsigned>(hw, static_cast<unsigned>(options.num_dies)));

  std::atomic<int> next{0};
  auto worker = [&] {
    for (;;) {
      const int die = next.fetch_add(1);
      if (die >= options.num_dies) return;
      adc::pipeline::AdcConfig cfg = base;
      cfg.seed = options.first_seed + static_cast<std::uint64_t>(die);
      adc::pipeline::PipelineAdc converter(cfg);
      result.values[static_cast<std::size_t>(die)] = metric(converter);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(nthreads);
  for (unsigned t = 0; t < nthreads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  result.mean = adc::common::mean(result.values);
  result.std_dev = adc::common::std_dev(result.values);
  const auto mm = adc::common::min_max(result.values);
  result.min = mm.min;
  result.max = mm.max;
  return result;
}

}  // namespace adc::testbench
