#include "testbench/monte_carlo.hpp"

#include <algorithm>
#include <cstddef>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "runtime/parallel.hpp"

namespace adc::testbench {

double MonteCarloResult::yield_at_least(double limit) const {
  if (values.empty()) return 0.0;
  const auto pass = std::count_if(values.begin(), values.end(),
                                  [limit](double v) { return v >= limit; });
  return static_cast<double>(pass) / static_cast<double>(values.size());
}

double MonteCarloResult::yield_at_most(double limit) const {
  if (values.empty()) return 0.0;
  const auto pass = std::count_if(values.begin(), values.end(),
                                  [limit](double v) { return v <= limit; });
  return static_cast<double>(pass) / static_cast<double>(values.size());
}

namespace {

/// Shared distribution reduction: mean / sigma / extremes over the values.
void summarize(MonteCarloResult& result) {
  result.mean = adc::common::mean(result.values);
  result.std_dev = adc::common::std_dev(result.values);
  const auto mm = adc::common::min_max(result.values);
  result.min = mm.min;
  result.max = mm.max;
}

}  // namespace

MonteCarloResult run_monte_carlo(const adc::pipeline::AdcConfig& base, const DieMetric& metric,
                                 const MonteCarloOptions& options) {
  adc::common::require(options.num_dies >= 1, "run_monte_carlo: need at least one die");
  adc::common::require(static_cast<bool>(metric), "run_monte_carlo: empty metric");

  // Each die is one job keyed by (base config, first_seed + die): a pure
  // function of its index, so the runtime's determinism contract makes the
  // result vector bit-identical at any thread count. A throwing metric
  // cancels the remaining dies and rethrows here, on the caller.
  adc::runtime::BatchOptions batch;
  batch.threads = options.threads > 0 ? static_cast<unsigned>(options.threads) : 0;

  MonteCarloResult result;
  result.values = adc::runtime::parallel_map<double>(
      static_cast<std::size_t>(options.num_dies),
      [&base, &metric, &options](std::size_t die) {
        adc::pipeline::AdcConfig cfg = base;
        cfg.seed = options.first_seed + static_cast<std::uint64_t>(die);
        adc::pipeline::PipelineAdc converter(cfg);
        return metric(converter);
      },
      batch);

  summarize(result);
  return result;
}

MonteCarloResult run_monte_carlo_dynamic(const adc::pipeline::AdcConfig& base,
                                         const DynamicTestOptions& test,
                                         const DynamicMetric& metric,
                                         const MonteCarloOptions& options) {
  adc::common::require(options.num_dies >= 1, "run_monte_carlo_dynamic: need at least one die");
  adc::common::require(static_cast<bool>(metric), "run_monte_carlo_dynamic: empty metric");

  // The per-die work (capture + FFT) lives in run_dynamic_test_dies, which
  // blocks the dies by adc::batch::kLanes and hoists die fabrication, plan
  // extraction and the noise-plane workspace out of the per-die loop — one
  // BatchConverter per block instead of one PipelineAdc (plus its plane
  // buffers) per die.
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(options.num_dies));
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    seeds[i] = options.first_seed + static_cast<std::uint64_t>(i);
  }
  const auto die_results = run_dynamic_test_dies(base, seeds, test, options.threads);

  MonteCarloResult result;
  result.values.reserve(die_results.size());
  for (const auto& r : die_results) result.values.push_back(metric(r));
  summarize(result);
  return result;
}

}  // namespace adc::testbench
