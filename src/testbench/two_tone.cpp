#include "testbench/two_tone.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "dsp/fft.hpp"
#include "dsp/signal.hpp"

namespace adc::testbench {

TwoToneResult run_two_tone_test(adc::pipeline::PipelineAdc& adc,
                                const TwoToneOptions& options) {
  adc::common::require(options.spacing_hz > 0.0, "run_two_tone_test: non-positive spacing");
  adc::common::require(options.amplitude_fraction > 0.0 && options.amplitude_fraction <= 0.5,
                       "run_two_tone_test: per-tone amplitude must be in (0, 0.5] FS");
  const double fs = adc.conversion_rate();
  const std::size_t n = options.record_length;

  // Snap both tones to odd coherent bins around the requested centre.
  const auto t1 = adc::dsp::coherent_frequency(options.center_hz - options.spacing_hz / 2.0,
                                               fs, n);
  auto t2 = adc::dsp::coherent_frequency(options.center_hz + options.spacing_hz / 2.0, fs, n);
  adc::common::require(t2.cycles != t1.cycles, "run_two_tone_test: tones collapsed; widen spacing");

  const double amp = options.amplitude_fraction * adc.full_scale_vpp() / 2.0;
  const adc::dsp::MultiToneSignal signal(
      {{amp, t1.frequency_hz, 0.0}, {amp, t2.frequency_hz, 1.234}});
  const auto codes = adc.convert(signal, n);
  const auto volts =
      adc::dsp::codes_to_volts(codes, adc.resolution_bits(), adc.full_scale_vpp());
  const auto ps = adc::dsp::power_spectrum(volts);

  const auto bin_of = [&](double f) {
    return static_cast<std::size_t>(
        std::llround(adc::dsp::alias_frequency(f, fs) / (fs / static_cast<double>(n))));
  };
  const auto power_at = [&](std::size_t bin) {
    return bin > 0 && bin < ps.size() ? ps[bin] : 0.0;
  };

  TwoToneResult r;
  r.f1_hz = t1.frequency_hz;
  r.f2_hz = t2.frequency_hz;
  const double p1 = power_at(t1.cycles);
  const double p2 = power_at(t2.cycles);
  const double p_tone = 0.5 * (p1 + p2);
  adc::common::require(p_tone > 0.0, "run_two_tone_test: tones not found in spectrum");

  const double full_scale_power =
      (adc.full_scale_vpp() / 2.0) * (adc.full_scale_vpp() / 2.0) / 2.0;
  r.tone_power_db = adc::common::db_from_power_ratio(p_tone / full_scale_power);

  const double eps = 1e-30;
  r.imd3_low_dbc = adc::common::db_from_power_ratio(
      std::max(power_at(bin_of(2.0 * r.f1_hz - r.f2_hz)), eps) / p_tone);
  r.imd3_high_dbc = adc::common::db_from_power_ratio(
      std::max(power_at(bin_of(2.0 * r.f2_hz - r.f1_hz)), eps) / p_tone);
  r.imd2_dbc = adc::common::db_from_power_ratio(
      std::max(power_at(bin_of(r.f1_hz + r.f2_hz)), eps) / p_tone);
  r.worst_imd_dbc = std::max({r.imd3_low_dbc, r.imd3_high_dbc, r.imd2_dbc});
  return r;
}

}  // namespace adc::testbench
