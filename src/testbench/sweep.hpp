/// \file sweep.hpp
/// Parameter sweeps over conversion rate and input frequency — the x-axes of
/// the paper's Figs. 4, 5 and 6.
///
/// Each sweep point re-instantiates the converter from the same config and
/// seed, so every point measures the *same die* (identical Monte-Carlo
/// draws) under different operating conditions — exactly what the paper's
/// bench did with its single packaged part.
///
/// Points are measured in parallel on the shared runtime pool (one job per
/// operating point, see src/runtime/parallel.hpp); the returned vector is
/// always in input order and bit-identical at any thread count. A point that
/// throws (e.g. a tone aliasing onto DC) cancels the remaining points and
/// rethrows on the caller.
#pragma once

#include <vector>

#include "pipeline/adc.hpp"
#include "testbench/dynamic_test.hpp"

namespace adc::testbench {

/// One point of a dynamic sweep.
struct SweepPoint {
  double x = 0.0;  ///< the swept variable (rate [Hz] or fin [Hz])
  DynamicTestResult result;
};

/// Dynamic metrics versus conversion rate (paper Fig. 5). The input tone
/// follows `options.target_fin_hz` but is capped at `max_fin_fraction` of
/// Nyquist so low-rate points stay in the first Nyquist zone.
[[nodiscard]] std::vector<SweepPoint> sweep_conversion_rate(
    const adc::pipeline::AdcConfig& base, const std::vector<double>& rates_hz,
    const DynamicTestOptions& options, double max_fin_fraction = 0.9);

/// Dynamic metrics versus input frequency at a fixed rate (paper Fig. 6).
/// Frequencies above Nyquist are measured under-sampled (as the paper does
/// up to 150 MHz at 110 MS/s): the tone aliases in-band and the analysis
/// tracks the aliased bin.
[[nodiscard]] std::vector<SweepPoint> sweep_input_frequency(
    const adc::pipeline::AdcConfig& base, const std::vector<double>& fins_hz,
    const DynamicTestOptions& options);

}  // namespace adc::testbench
