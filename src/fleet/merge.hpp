/// \file merge.hpp
/// Fleet coordination read-side: merge shard results into the single
/// report, and inspect a fleet's live state.
///
/// Merging is trivially correct by construction: workers only ever *fill
/// the cache*, so the merged report is produced by re-planning the spec and
/// loading every payload from the shared cache — the exact code path a
/// single-process `adc_scenario run` takes on a warm cache. The bytes are
/// identical because they are the same function of the same inputs, not
/// because anything is carefully reconciled. Shard manifests are checked
/// for identity (spec hash + golden fingerprint) and folded into a fleet
/// manifest for observability; they carry no payload data.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "fleet/manifest.hpp"
#include "scenario/cache.hpp"
#include "scenario/spec.hpp"

namespace adc::fleet {

/// Options for one merge.
struct MergeOptions {
  /// Cache root the fleet shared ("" = default resolution).
  std::string cache_dir;
  /// Where shard manifests live ("" = `<cache root>/fleet`).
  std::string manifest_dir;
  /// Directory for `<name>_report.json` / `<name>_report.csv` ("" = the
  /// report document is returned but not written).
  std::string report_dir;
  unsigned shards = 1;  ///< fleet width W (how many manifests to expect)
  /// Require all W shard manifests (the `adc_fleet merge` contract). When
  /// false only the cache must be complete — used by `adc_fleet run`, which
  /// already holds the workers' results in memory.
  bool require_manifests = true;
};

/// Outcome of one merge.
struct MergeResult {
  /// The merged report — byte-identical to single-process `adc_scenario
  /// run` of the same spec.
  adc::common::json::JsonValue report;
  std::string report_json_path;  ///< "" unless report_dir was set
  std::string report_csv_path;   ///< "" unless report_dir was set
  /// Fleet manifest (identity, per-shard summaries) written next to the
  /// shard manifests.
  std::string fleet_manifest_path;
  std::size_t jobs_total = 0;
  std::vector<ShardManifest> manifests;  ///< empty when !require_manifests
  /// Smallest per-worker warm-hit fraction (cache_hits / jobs_total) across
  /// the manifests; 0 when manifests were not required. The resume-health
  /// number CI gates on.
  double min_hit_rate = 0.0;
};

/// Merge a completed fleet run: verify every grid payload is in the cache
/// (throws MeasurementError naming the missing shards otherwise), verify
/// manifest identity, build and optionally write the report, and write the
/// fleet manifest.
MergeResult merge_fleet(const adc::scenario::ScenarioSpec& spec,
                        const MergeOptions& options);

/// Live view of a fleet mid-run, for `adc_fleet status`.
struct FleetStatus {
  std::size_t jobs_total = 0;
  std::size_t cached = 0;  ///< grid payloads already in the cache
  /// Every claim sidecar on disk (owner + heartbeat age tells who is live).
  std::vector<adc::scenario::ClaimRecord> claims;
};

/// Probe the cache for the spec's grid and list outstanding claims.
[[nodiscard]] FleetStatus fleet_status(const adc::scenario::ScenarioSpec& spec,
                                       const std::string& cache_dir);

}  // namespace adc::fleet
