#include "fleet/plan.hpp"

#include <charconv>

#include "common/error.hpp"

namespace adc::fleet {

std::uint64_t hash_value(const std::string& hash) {
  adc::common::require(hash.size() == 16, "fleet: job hash must be 16 hex digits: " + hash);
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(hash.data(), hash.data() + hash.size(), value, 16);
  adc::common::require(ec == std::errc() && ptr == hash.data() + hash.size(),
                       "fleet: malformed job hash: " + hash);
  return value;
}

unsigned shard_of_hash(const std::string& hash, unsigned shards) {
  adc::common::require(shards != 0, "fleet: shard count must be positive");
  // Uniform range partition: multiply-shift keeps every shard's hash range
  // contiguous and exactly 2^64 / W wide (up to rounding), with no modulo
  // bias.
  const unsigned __int128 scaled =
      static_cast<unsigned __int128>(hash_value(hash)) * shards;
  return static_cast<unsigned>(scaled >> 64);
}

FleetPlan plan_fleet(const adc::scenario::ScenarioSpec& spec, unsigned shards) {
  adc::common::require(shards != 0, "fleet: shard count must be positive");
  FleetPlan fleet;
  fleet.scenario = adc::scenario::plan_scenario(spec);
  fleet.shards = shards;
  fleet.shard_of.reserve(fleet.scenario.hashes.size());
  fleet.shard_sizes.assign(shards, 0);
  for (const auto& hash : fleet.scenario.hashes) {
    const unsigned shard = shard_of_hash(hash, shards);
    fleet.shard_of.push_back(shard);
    ++fleet.shard_sizes[shard];
  }
  return fleet;
}

}  // namespace adc::fleet
