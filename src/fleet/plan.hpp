/// \file plan.hpp
/// Deterministic sharding of a scenario's resolved-job grid.
///
/// A fleet partitions work by *job-hash range*: the 16-hex-digit content
/// address of each resolved job is read as a uint64 and mapped to one of W
/// shards by uniform range partition. Because the hash already folds in the
/// full job identity (spec axes, seed, schema version, golden fingerprint),
/// the partition is a pure function of the spec — every worker, on any
/// machine, derives the identical assignment with no coordination traffic.
/// Hashes are uniform over the 64-bit space, so shard sizes concentrate
/// tightly around jobs/W without any balancing pass.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace adc::fleet {

/// Numeric value of a 16-hex-digit job hash (the to_hex form produced by
/// scenario/hash.hpp). Throws ConfigError on malformed input.
[[nodiscard]] std::uint64_t hash_value(const std::string& hash);

/// The shard (0-based) owning `hash` under a `shards`-way partition:
/// `floor(value * shards / 2^64)` — a uniform split of the hash space into
/// W contiguous ranges. Throws ConfigError when `shards` is zero.
[[nodiscard]] unsigned shard_of_hash(const std::string& hash, unsigned shards);

/// A scenario plan plus its W-way shard assignment.
struct FleetPlan {
  adc::scenario::ScenarioPlan scenario;
  unsigned shards = 1;
  /// shard_of[i] = shard owning scenario.jobs[i]; aligned with the plan.
  std::vector<unsigned> shard_of;
  /// shard_sizes[k] = number of jobs assigned to shard k.
  std::vector<std::size_t> shard_sizes;
};

/// Expand `spec` through the shared planner and assign every job to its
/// shard. Every process that plans the same spec with the same W gets the
/// identical partition.
[[nodiscard]] FleetPlan plan_fleet(const adc::scenario::ScenarioSpec& spec,
                                   unsigned shards);

}  // namespace adc::fleet
