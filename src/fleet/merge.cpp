#include "fleet/merge.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "fleet/plan.hpp"
#include "scenario/hash.hpp"
#include "scenario/runner.hpp"

namespace adc::fleet {

namespace json = adc::common::json;

MergeResult merge_fleet(const adc::scenario::ScenarioSpec& spec,
                        const MergeOptions& options) {
  adc::common::require(options.shards != 0, "fleet merge: shard count must be positive");
  const FleetPlan fleet = plan_fleet(spec, options.shards);
  const adc::scenario::ScenarioPlan& plan = fleet.scenario;
  adc::scenario::ResultCache cache(options.cache_dir);

  MergeResult result;
  result.jobs_total = plan.jobs.size();

  // The merge *is* a warm cache read: load every payload the fleet stored.
  std::vector<std::optional<json::JsonValue>> payloads(plan.jobs.size());
  std::vector<std::size_t> missing_per_shard(options.shards, 0);
  std::size_t missing = 0;
  for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
    payloads[i] = cache.load(plan.hashes[i]);
    if (!payloads[i].has_value()) {
      ++missing;
      ++missing_per_shard[fleet.shard_of[i]];
    }
  }
  if (missing != 0) {
    std::string detail;
    for (unsigned k = 0; k < options.shards; ++k) {
      if (missing_per_shard[k] == 0) continue;
      if (!detail.empty()) detail += ", ";
      detail += "shard " + std::to_string(k) + ": " +
                std::to_string(missing_per_shard[k]);
    }
    throw adc::common::MeasurementError(
        "fleet merge: " + std::to_string(missing) + " of " +
        std::to_string(plan.jobs.size()) + " jobs missing from cache " +
        cache.root() + " (" + detail + ") — did every worker finish?");
  }

  const std::string manifest_dir = options.manifest_dir.empty()
                                       ? manifest_dir_for_cache(cache.root())
                                       : options.manifest_dir;
  const std::string fingerprint =
      adc::scenario::to_hex(adc::scenario::golden_code_fingerprint());
  if (options.require_manifests) {
    result.min_hit_rate = 1.0;
    for (unsigned k = 0; k < options.shards; ++k) {
      ShardManifest m = load_manifest(manifest_dir, spec.name, k, options.shards);
      adc::common::require(m.spec_hash == plan.spec_hash,
                           "fleet merge: shard " + std::to_string(k) +
                               " manifest was produced from a different spec");
      adc::common::require(m.fingerprint == fingerprint,
                           "fleet merge: shard " + std::to_string(k) +
                               " manifest was produced by different code (golden "
                               "fingerprint mismatch)");
      adc::common::require(m.jobs_total == plan.jobs.size(),
                           "fleet merge: shard " + std::to_string(k) +
                               " manifest job count does not match the plan");
      const double hit_rate = m.jobs_total == 0
                                  ? 1.0
                                  : static_cast<double>(m.cache_hits) /
                                        static_cast<double>(m.jobs_total);
      result.min_hit_rate = std::min(result.min_hit_rate, hit_rate);
      result.manifests.push_back(std::move(m));
    }
  }

  // Same builder, same payload bytes, same report — the fleet's
  // byte-identity contract falls out of sharing this code path.
  result.report = adc::scenario::build_report(spec, plan, payloads);
  if (!options.report_dir.empty()) {
    const auto paths =
        adc::scenario::write_report_files(result.report, spec.name, options.report_dir);
    result.report_json_path = paths.json_path;
    result.report_csv_path = paths.csv_path;
  }

  // The fleet manifest: run identity plus every shard summary, one document
  // for CI artifacts and post-mortems.
  auto doc = json::JsonValue::object();
  doc.set("scenario", spec.name);
  doc.set("spec_hash", plan.spec_hash);
  doc.set("fingerprint", fingerprint);
  doc.set("shards", static_cast<std::uint64_t>(options.shards));
  doc.set("jobs_total", static_cast<std::uint64_t>(plan.jobs.size()));
  doc.set("min_hit_rate", result.min_hit_rate);
  auto shard_docs = json::JsonValue::array();
  for (const auto& m : result.manifests) shard_docs.push_back(manifest_document(m));
  doc.set("shard_manifests", std::move(shard_docs));
  {
    // Write <scenario>_fleet.json atomically alongside the shard manifests.
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(manifest_dir, ec);
    adc::common::require(!ec, "fleet merge: cannot create " + manifest_dir);
    const std::string path = manifest_dir + "/" + spec.name + "_fleet.json";
    const std::string tmp = path + ".tmpmerge";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      adc::common::require(out.good(), "fleet merge: cannot open " + tmp);
      out << json::dump(doc);
      out.flush();
      adc::common::require(out.good(), "fleet merge: write failed for " + tmp);
    }
    fs::rename(tmp, path, ec);
    if (ec) {
      fs::remove(tmp, ec);
      throw adc::common::MeasurementError("fleet merge: cannot rename into " + path);
    }
    result.fleet_manifest_path = path;
  }
  return result;
}

FleetStatus fleet_status(const adc::scenario::ScenarioSpec& spec,
                         const std::string& cache_dir) {
  adc::scenario::ResultCache cache(cache_dir);
  const adc::scenario::ScenarioPlan plan = adc::scenario::plan_scenario(spec);
  FleetStatus status;
  status.jobs_total = plan.jobs.size();
  for (const auto& hash : plan.hashes) {
    if (cache.load(hash).has_value()) ++status.cached;
  }
  status.claims = cache.claims();
  return status;
}

}  // namespace adc::fleet
