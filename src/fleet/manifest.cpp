#include "fleet/manifest.hpp"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace adc::fleet {

namespace fs = std::filesystem;
namespace json = adc::common::json;

namespace {

std::uint64_t field_u64(const json::JsonValue& doc, const std::string& key) {
  const auto* value = doc.find(key);
  adc::common::require(value != nullptr && value->is_integer(),
                       "fleet manifest: missing integer field \"" + key + "\"");
  return value->as_uint64();
}

std::string field_string(const json::JsonValue& doc, const std::string& key) {
  const auto* value = doc.find(key);
  adc::common::require(value != nullptr && value->is_string(),
                       "fleet manifest: missing string field \"" + key + "\"");
  return value->as_string();
}

}  // namespace

json::JsonValue manifest_document(const ShardManifest& m) {
  auto doc = json::JsonValue::object();
  doc.set("scenario", m.scenario);
  doc.set("spec_hash", m.spec_hash);
  doc.set("fingerprint", m.fingerprint);
  doc.set("shard", static_cast<std::uint64_t>(m.shard));
  doc.set("shards", static_cast<std::uint64_t>(m.shards));
  doc.set("owner", m.owner);
  doc.set("jobs_total", static_cast<std::uint64_t>(m.jobs_total));
  doc.set("shard_jobs", static_cast<std::uint64_t>(m.shard_jobs));
  doc.set("cache_hits", static_cast<std::uint64_t>(m.cache_hits));
  doc.set("computed", static_cast<std::uint64_t>(m.computed));
  doc.set("scavenged", static_cast<std::uint64_t>(m.scavenged));
  doc.set("elsewhere", static_cast<std::uint64_t>(m.elsewhere));
  doc.set("skipped", static_cast<std::uint64_t>(m.skipped));
  doc.set("pool_jobs", m.pool_jobs);
  doc.set("complete", m.complete);
  return doc;
}

ShardManifest parse_manifest(const json::JsonValue& doc) {
  adc::common::require(doc.is_object(), "fleet manifest: document is not an object");
  ShardManifest m;
  m.scenario = field_string(doc, "scenario");
  m.spec_hash = field_string(doc, "spec_hash");
  m.fingerprint = field_string(doc, "fingerprint");
  m.shard = static_cast<unsigned>(field_u64(doc, "shard"));
  m.shards = static_cast<unsigned>(field_u64(doc, "shards"));
  m.owner = field_string(doc, "owner");
  m.jobs_total = field_u64(doc, "jobs_total");
  m.shard_jobs = field_u64(doc, "shard_jobs");
  m.cache_hits = field_u64(doc, "cache_hits");
  m.computed = field_u64(doc, "computed");
  m.scavenged = field_u64(doc, "scavenged");
  m.elsewhere = field_u64(doc, "elsewhere");
  m.skipped = field_u64(doc, "skipped");
  m.pool_jobs = field_u64(doc, "pool_jobs");
  const auto* complete = doc.find("complete");
  adc::common::require(complete != nullptr && complete->is_bool(),
                       "fleet manifest: missing bool field \"complete\"");
  m.complete = complete->as_bool();
  adc::common::require(m.shards != 0 && m.shard < m.shards,
                       "fleet manifest: shard index out of range");
  return m;
}

std::string manifest_filename(const std::string& scenario, unsigned shard,
                              unsigned shards) {
  return scenario + "_shard_" + std::to_string(shard) + "_of_" +
         std::to_string(shards) + ".json";
}

std::string manifest_dir_for_cache(const std::string& cache_root) {
  return cache_root + "/fleet";
}

std::string write_manifest(const ShardManifest& m, const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  adc::common::require(!ec, "fleet manifest: cannot create " + dir);
  const std::string path =
      dir + "/" + manifest_filename(m.scenario, m.shard, m.shards);
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp = path + ".tmp" + std::to_string(static_cast<long>(::getpid())) +
                          "_" + std::to_string(counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    adc::common::require(out.good(), "fleet manifest: cannot open " + tmp);
    out << json::dump(manifest_document(m));
    out.flush();
    adc::common::require(out.good(), "fleet manifest: write failed for " + tmp);
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw adc::common::MeasurementError("fleet manifest: cannot rename into " + path);
  }
  return path;
}

ShardManifest load_manifest(const std::string& dir, const std::string& scenario,
                            unsigned shard, unsigned shards) {
  const std::string path = dir + "/" + manifest_filename(scenario, shard, shards);
  std::ifstream in(path, std::ios::binary);
  adc::common::require(in.good(), "fleet manifest: cannot open " + path +
                                      " (shard " + std::to_string(shard) +
                                      " never wrote its manifest?)");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  ShardManifest m = parse_manifest(json::parse(buffer.str()));
  adc::common::require(m.shard == shard && m.shards == shards && m.scenario == scenario,
                       "fleet manifest: " + path + " does not match shard " +
                           std::to_string(shard) + "/" + std::to_string(shards));
  return m;
}

}  // namespace adc::fleet
