#include "fleet/worker.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "fleet/plan.hpp"
#include "runtime/parallel.hpp"
#include "scenario/cache.hpp"
#include "scenario/hash.hpp"
#include "scenario/runner.hpp"

namespace adc::fleet {

namespace json = adc::common::json;
using adc::scenario::ClaimOutcome;
using adc::scenario::ResultCache;

std::uint64_t wall_clock_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::string default_owner() {
  char host[256] = {};
  if (::gethostname(host, sizeof(host) - 1) != 0) host[0] = '\0';
  return std::string(host[0] != '\0' ? host : "localhost") + ":" +
         std::to_string(static_cast<long>(::getpid()));
}

namespace {

/// Tracks the claims this worker currently holds and re-stamps their
/// heartbeats from a background thread at lease/3, so a live worker's
/// claims never look stale no matter how long one execute unit takes.
/// acquire/release are called concurrently from pool workers.
class ClaimGuard {
 public:
  ClaimGuard(ResultCache& cache, std::string owner, std::uint64_t lease_ms)
      : cache_(cache), owner_(std::move(owner)), lease_ms_(lease_ms) {
    thread_ = std::thread([this] { heartbeat_loop(); });
  }

  ~ClaimGuard() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    // Claims normally drain as jobs store; anything left (budget stop,
    // exception unwind) is released so other workers need not wait out the
    // lease.
    for (const auto& hash : snapshot()) cache_.release_claim(hash, owner_);
  }

  bool acquire(const std::string& hash) {
    if (cache_.try_claim(hash, owner_, wall_clock_ms(), lease_ms_) !=
        ClaimOutcome::kAcquired) {
      return false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    held_.insert(hash);
    return true;
  }

  void release(const std::string& hash) {
    cache_.release_claim(hash, owner_);
    std::lock_guard<std::mutex> lock(mutex_);
    held_.erase(hash);
  }

 private:
  std::vector<std::string> snapshot() {
    std::lock_guard<std::mutex> lock(mutex_);
    return {held_.begin(), held_.end()};
  }

  void heartbeat_loop() {
    const auto interval =
        std::chrono::milliseconds(std::max<std::uint64_t>(lease_ms_ / 3, 1));
    std::unique_lock<std::mutex> lock(mutex_);
    while (!cv_.wait_for(lock, interval, [this] { return stop_; })) {
      const std::vector<std::string> held(held_.begin(), held_.end());
      lock.unlock();
      const std::uint64_t now = wall_clock_ms();
      for (const auto& hash : held) {
        // A false return means the claim was stolen (we stalled past the
        // lease). The in-flight job still stores identical bytes, so this
        // is only lost exclusivity, not lost work.
        (void)cache_.refresh_claim(hash, owner_, now);
      }
      lock.lock();
    }
  }

  ResultCache& cache_;
  const std::string owner_;
  const std::uint64_t lease_ms_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::set<std::string> held_;
  std::thread thread_;
};

}  // namespace

WorkerResult run_worker(const adc::scenario::ScenarioSpec& spec,
                        const WorkerOptions& options) {
  adc::common::require(options.shards != 0, "fleet worker: shard count must be positive");
  adc::common::require(options.shard < options.shards,
                       "fleet worker: shard index " + std::to_string(options.shard) +
                           " out of range for " + std::to_string(options.shards) +
                           " shards");
  adc::common::require(options.lease_ms > 0, "fleet worker: lease must be positive");

  const FleetPlan fleet = plan_fleet(spec, options.shards);
  const adc::scenario::ScenarioPlan& plan = fleet.scenario;
  ResultCache cache(options.cache_dir);
  cache.ensure_writable();
  const std::string owner = options.owner.empty() ? default_owner() : options.owner;

  WorkerResult result;
  ShardManifest& m = result.manifest;
  m.scenario = spec.name;
  m.spec_hash = plan.spec_hash;
  m.fingerprint = adc::scenario::to_hex(adc::scenario::golden_code_fingerprint());
  m.shard = options.shard;
  m.shards = options.shards;
  m.owner = owner;
  m.jobs_total = plan.jobs.size();
  m.shard_jobs = fleet.shard_sizes[options.shard];

  result.pool_before = adc::runtime::global_pool().counters();

  std::vector<std::optional<json::JsonValue>> payloads(plan.jobs.size());
  const auto done_count = [&] {
    std::size_t done = 0;
    for (const auto& payload : payloads) {
      if (payload.has_value()) ++done;
    }
    return done;
  };

  // Initial probe over the full grid: everything already in the shared
  // cache — previous runs, other machines — is a warm hit.
  for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
    payloads[i] = cache.load(plan.hashes[i]);
    if (payloads[i].has_value()) ++m.cache_hits;
  }

  const auto report_progress = [&](bool scavenging) {
    if (!options.progress) return;
    WorkerProgress p;
    p.scavenging = scavenging;
    p.done = done_count();
    p.total = m.jobs_total;
    p.cache_hits = m.cache_hits;
    p.computed = m.computed;
    p.elsewhere = m.elsewhere;
    options.progress(p);
  };
  report_progress(false);

  bool budget_exhausted = false;
  {
    ClaimGuard guard(cache, owner, options.lease_ms);

    // Pass 0: our shard. Pass 1 (scavenge): everyone else's leftovers, so
    // a dead worker's shard is finished by the survivors.
    const int passes = options.scavenge ? 2 : 1;
    for (int pass = 0; pass < passes && !budget_exhausted; ++pass) {
      const bool scavenging = pass == 1;
      const auto candidate = [&](std::size_t i) {
        return scavenging || fleet.shard_of[i] == options.shard;
      };
      while (true) {
        // Re-probe the candidates still missing: another worker may have
        // stored them since we last looked.
        std::size_t missing = 0;
        for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
          if (payloads[i].has_value() || !candidate(i)) continue;
          payloads[i] = cache.load(plan.hashes[i]);
          if (payloads[i].has_value()) {
            ++m.elsewhere;
          } else {
            ++missing;
          }
        }
        if (missing == 0) break;
        if (options.max_jobs != 0 && m.computed >= options.max_jobs) {
          budget_exhausted = true;
          break;
        }

        adc::scenario::ExecuteOptions execute;
        execute.threads = options.threads;
        execute.max_jobs = options.max_jobs != 0 ? options.max_jobs - m.computed : 0;
        execute.cache = &cache;
        execute.candidate = candidate;
        execute.hooks.acquire = [&](std::size_t, const std::string& hash) {
          // Decline anything another worker stored since our last probe —
          // the next probe round picks it up as `elsewhere`. The re-check
          // *after* acquiring matters: a finished owner stores before it
          // releases, so holding the claim and still missing the entry
          // proves the job was never completed. That makes computation
          // exactly-once (outside crash/steal recovery) rather than
          // merely usually-once.
          if (cache.load(hash).has_value()) return false;
          if (!guard.acquire(hash)) return false;
          if (cache.load(hash).has_value()) {
            guard.release(hash);
            return false;
          }
          return true;
        };
        execute.hooks.stored = [&](std::size_t, const std::string& hash) {
          guard.release(hash);
        };
        const auto outcome = adc::scenario::execute_plan(spec, plan, payloads, execute);
        m.computed += outcome.computed;
        if (scavenging) m.scavenged += outcome.computed;
        report_progress(scavenging);
        if (outcome.skipped > 0) {
          budget_exhausted = true;
          break;
        }
        // Everything left is claimed by other live workers: wait one poll
        // interval for their stores to land, then probe again.
        if (outcome.computed == 0 && outcome.claimed_elsewhere > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(options.poll_ms));
        }
      }
    }
  }

  result.pool_after = adc::runtime::global_pool().counters();
  m.pool_jobs = result.pool_after.submitted - result.pool_before.submitted;
  const std::size_t done = done_count();
  m.skipped = m.jobs_total - done;
  m.complete = done == m.jobs_total;
  adc::common::require(m.complete || budget_exhausted,
                       "fleet worker: exited with missing payloads but no budget stop");

  const std::string dir = options.manifest_dir.empty()
                              ? manifest_dir_for_cache(cache.root())
                              : options.manifest_dir;
  result.manifest_path = write_manifest(m, dir);
  return result;
}

}  // namespace adc::fleet
