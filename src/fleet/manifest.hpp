/// \file manifest.hpp
/// Per-worker shard manifests: the record each fleet worker leaves behind.
///
/// A ShardManifest summarizes one worker's pass over the grid — identity
/// (spec hash + golden fingerprint, so merges refuse mismatched code or
/// spec), its shard coordinates, and the hit/computed/scavenged tallies the
/// coordinator folds into the fleet report. Manifests live in the `fleet/`
/// subdirectory of the cache root (excluded from cache walks), which is how
/// workers on separate machines sharing a cache directory hand their
/// results to `adc_fleet merge` without any other channel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace adc::fleet {

/// One worker's summary of its run over a W-way sharded scenario.
struct ShardManifest {
  std::string scenario;     ///< spec name
  std::string spec_hash;    ///< request identity (scenario/hash.hpp)
  std::string fingerprint;  ///< golden_code_fingerprint() of the worker
  unsigned shard = 0;       ///< 0-based shard index
  unsigned shards = 0;      ///< fleet width W
  std::string owner;        ///< claim owner id (host:pid)
  std::size_t jobs_total = 0;   ///< jobs in the full grid
  std::size_t shard_jobs = 0;   ///< jobs assigned to this shard
  std::size_t cache_hits = 0;   ///< grid payloads warm at worker start
  std::size_t computed = 0;     ///< jobs this worker computed (all shards)
  std::size_t scavenged = 0;    ///< of `computed`, jobs outside its shard
  std::size_t elsewhere = 0;    ///< payloads other workers landed mid-run
  std::size_t skipped = 0;      ///< jobs left uncomputed by --max-jobs
  std::uint64_t pool_jobs = 0;  ///< pool jobs submitted (0 on a warm run)
  bool complete = false;        ///< full grid had payloads at exit
};

/// Serialize to the on-disk JSON document (deterministic key order).
[[nodiscard]] adc::common::json::JsonValue manifest_document(const ShardManifest& m);

/// Parse a manifest document; throws ConfigError on malformed input.
[[nodiscard]] ShardManifest parse_manifest(const adc::common::json::JsonValue& doc);

/// `<scenario>_shard_<k>_of_<W>.json`.
[[nodiscard]] std::string manifest_filename(const std::string& scenario, unsigned shard,
                                            unsigned shards);

/// The manifest directory for a cache root: `<root>/fleet` (the subtree
/// ResultCache walks skip).
[[nodiscard]] std::string manifest_dir_for_cache(const std::string& cache_root);

/// Write `m` into `dir` (created if needed) under its canonical filename;
/// returns the path. Atomic (write temp + rename), like cache stores.
std::string write_manifest(const ShardManifest& m, const std::string& dir);

/// Load and parse `dir`'s manifest for shard k/W of `scenario`. Throws
/// ConfigError when the file is absent or malformed — the merge's "shard k
/// never finished" diagnostic.
[[nodiscard]] ShardManifest load_manifest(const std::string& dir,
                                          const std::string& scenario, unsigned shard,
                                          unsigned shards);

}  // namespace adc::fleet
