/// \file worker.hpp
/// One fleet worker: claim-gated execution of a shard, plus scavenging.
///
/// A worker owns one shard of the fleet plan and runs in rounds: probe the
/// shared cache for payloads that landed since the last look, push the
/// remaining misses through the shared execute phase (scenario/runner.hpp)
/// with a claim gate, and — when every remaining miss is claimed by someone
/// else — sleep one poll interval and probe again. A background heartbeat
/// thread re-stamps every held claim well inside the lease, so only a
/// crashed or stalled worker's claims ever go stale. After its own shard is
/// done the worker scavenges: it sweeps the rest of the grid the same way,
/// so a killed worker's leftovers are finished by the survivors and a
/// re-issued fleet run starts ~fully warm.
///
/// This layer owns the clocks and sleeps (wall time for heartbeats, polling
/// for coordination); everything below it stays deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "fleet/manifest.hpp"
#include "runtime/thread_pool.hpp"
#include "scenario/spec.hpp"

namespace adc::fleet {

/// Snapshot handed to the progress callback after the initial probe and
/// after every execute round.
struct WorkerProgress {
  bool scavenging = false;      ///< past its own shard, sweeping leftovers
  std::size_t done = 0;         ///< grid payloads present so far
  std::size_t total = 0;        ///< jobs in the full grid
  std::size_t cache_hits = 0;   ///< payloads warm at worker start
  std::size_t computed = 0;     ///< computed by this worker so far
  std::size_t elsewhere = 0;    ///< payloads other workers landed mid-run
};

/// Options for one worker process.
struct WorkerOptions {
  /// Cache root shared by the whole fleet ("" = default resolution).
  std::string cache_dir;
  unsigned shards = 1;  ///< fleet width W
  unsigned shard = 0;   ///< this worker's shard, 0-based
  /// Claim owner id ("" = "<host>:<pid>").
  std::string owner;
  /// A claim whose heartbeat is older than this is considered abandoned
  /// and stolen. Must comfortably exceed the heartbeat interval (lease/3).
  std::uint64_t lease_ms = 10000;
  /// Sleep between probes while every remaining miss is claimed elsewhere.
  std::uint64_t poll_ms = 50;
  /// Worker threads for the execute phase (0 = runtime default).
  unsigned threads = 0;
  /// Compute at most this many jobs then stop (0 = unlimited); the
  /// manifest reports the remainder as skipped and complete=false.
  std::size_t max_jobs = 0;
  /// Sweep other shards' leftovers after finishing our own (default on; a
  /// fleet of scavenging workers finishes even when some workers die).
  bool scavenge = true;
  /// Manifest output directory ("" = `<cache root>/fleet`).
  std::string manifest_dir;
  /// Progress callback (called on the worker's coordinating thread).
  std::function<void(const WorkerProgress&)> progress;
};

/// Outcome of one worker run.
struct WorkerResult {
  ShardManifest manifest;
  std::string manifest_path;
  /// Global pool counters around the run; equal submitted counts prove a
  /// fully warm run (zero pool jobs).
  adc::runtime::PoolCounters pool_before;
  adc::runtime::PoolCounters pool_after;
};

/// Run one worker to completion: probe/execute rounds over its shard, then
/// scavenging, then write the shard manifest. Returns when every grid
/// payload exists (complete=true) or the max_jobs budget ran out
/// (complete=false). Throws ConfigError/MeasurementError on invalid
/// options, specs, or I/O failure.
WorkerResult run_worker(const adc::scenario::ScenarioSpec& spec,
                        const WorkerOptions& options);

/// The default claim owner id for this process: "<host>:<pid>".
[[nodiscard]] std::string default_owner();

/// Wall-clock milliseconds since the Unix epoch — the fleet's claim
/// heartbeat clock. Lives here (not in src/scenario) so lower layers stay
/// deterministic.
[[nodiscard]] std::uint64_t wall_clock_ms();

}  // namespace adc::fleet
