#include "service/protocol.hpp"

#include <utility>

#include "common/error.hpp"

namespace adc::service {

namespace json = adc::common::json;
using adc::common::ConfigError;

Request parse_request(const std::string& line) {
  json::JsonValue doc;
  try {
    doc = json::parse(line);
  } catch (const ConfigError& e) {
    throw ConfigError(std::string("request is not valid JSON: ") + e.what());
  }
  if (!doc.is_object()) throw ConfigError("request must be a JSON object");
  const auto* type = doc.find("type");
  if (type == nullptr || !type->is_string()) {
    throw ConfigError("request lacks a string \"type\"");
  }

  Request request;
  const std::string& kind = type->as_string();
  if (kind == "run") {
    request.type = Request::Type::kRun;
  } else if (kind == "cancel") {
    request.type = Request::Type::kCancel;
  } else if (kind == "status") {
    request.type = Request::Type::kStatus;
  } else if (kind == "shutdown") {
    request.type = Request::Type::kShutdown;
  } else {
    throw ConfigError("unknown request type \"" + kind + "\"");
  }

  if (const auto* id = doc.find("id")) {
    if (!id->is_string()) throw ConfigError("request \"id\" must be a string");
    request.id = id->as_string();
  }
  if (request.type == Request::Type::kRun || request.type == Request::Type::kCancel) {
    if (request.id.empty()) {
      throw ConfigError("\"" + kind + "\" request requires a non-empty \"id\"");
    }
  }

  if (request.type == Request::Type::kRun) {
    const auto* spec = doc.find("spec");
    if (spec == nullptr || !spec->is_object()) {
      throw ConfigError("\"run\" request requires an object \"spec\"");
    }
    request.spec = *spec;
    if (const auto* options = doc.find("options")) {
      if (!options->is_object()) throw ConfigError("request \"options\" must be an object");
      for (const auto& member : options->members()) {
        if (member.key == "max_jobs") {
          if (!member.value.is_integer()) {
            throw ConfigError("option \"max_jobs\" must be an integer");
          }
          request.max_jobs = member.value.as_uint64();
        } else {
          throw ConfigError("unknown option \"" + member.key + "\"");
        }
      }
    }
  }
  return request;
}

const char* to_string(CellOrigin origin) {
  switch (origin) {
    case CellOrigin::kHit: return "hit";
    case CellOrigin::kMiss: return "miss";
    case CellOrigin::kDedup: return "dedup";
  }
  return "unknown";
}

namespace {

json::JsonValue make_event(const char* name) {
  auto event = json::JsonValue::object();
  event.set("event", name);
  return event;
}

}  // namespace

json::JsonValue hello_event(const std::string& fingerprint) {
  auto event = make_event("hello");
  event.set("protocol", kProtocolVersion);
  event.set("server", "adc_scenariod");
  event.set("fingerprint", fingerprint);
  return event;
}

json::JsonValue accepted_event(const std::string& id, const std::string& scenario,
                               const std::string& spec_hash, std::uint64_t jobs) {
  auto event = make_event("accepted");
  event.set("id", id);
  event.set("scenario", scenario);
  event.set("spec_hash", spec_hash);
  event.set("jobs", jobs);
  return event;
}

json::JsonValue cell_event(const std::string& id, std::uint64_t index,
                           const std::string& hash, CellOrigin origin,
                           json::JsonValue metrics) {
  auto event = make_event("cell");
  event.set("id", id);
  event.set("index", index);
  event.set("hash", hash);
  event.set("origin", to_string(origin));
  event.set("metrics", std::move(metrics));
  return event;
}

json::JsonValue summary_event(const std::string& id, std::uint64_t jobs,
                              std::uint64_t cache_hits, std::uint64_t deduped,
                              std::uint64_t computed, std::uint64_t skipped,
                              json::JsonValue report) {
  auto event = make_event("summary");
  event.set("id", id);
  event.set("jobs", jobs);
  event.set("cache_hits", cache_hits);
  event.set("deduped", deduped);
  event.set("computed", computed);
  event.set("skipped", skipped);
  event.set("report", std::move(report));
  return event;
}

json::JsonValue cancelled_event(const std::string& id, std::uint64_t delivered) {
  auto event = make_event("cancelled");
  event.set("id", id);
  event.set("delivered", delivered);
  return event;
}

json::JsonValue error_event(const std::string& id, const std::string& code,
                            const std::string& message) {
  auto event = make_event("error");
  if (!id.empty()) event.set("id", id);
  event.set("code", code);
  event.set("message", message);
  return event;
}

json::JsonValue bye_event() { return make_event("bye"); }

std::string encode_event(const json::JsonValue& event) {
  return json::dump_compact(event);
}

std::string event_type(const json::JsonValue& event) {
  if (!event.is_object()) return {};
  const auto* type = event.find("event");
  return type != nullptr && type->is_string() ? type->as_string() : std::string();
}

}  // namespace adc::service
