#include "service/server.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "runtime/manifest.hpp"
#include "runtime/parallel.hpp"
#include "scenario/hash.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace adc::service {

namespace json = adc::common::json;
using adc::common::AdcError;
using adc::common::ConfigError;

/// Poll granularity of the accept/read loops: how quickly a stop flag is
/// observed, not a correctness knob.
constexpr int kPollMs = 200;

/// Hard bound on one connection's queued-but-unwritten event lines. Hitting
/// it means the client stopped draining its socket; the connection is killed
/// rather than buffered without limit.
constexpr std::size_t kMaxQueuedLines = 4096;
/// Soft bound: above this queue depth the scheduler stops starting new cells
/// for the tenant, giving a slow-but-alive client time to catch up before
/// the hard bound disconnects it.
constexpr std::size_t kSendQueueBackpressure = kMaxQueuedLines / 2;
/// Per-line write deadline for the connection writer threads. A peer whose
/// socket accepts no bytes for this long is treated as gone.
constexpr int kWriteDeadlineMs = 5000;

struct ScenarioService::Connection {
  std::uint64_t id = 0;
  UnixStream stream;
  /// False once the peer is gone (EOF, write failure, or send-queue
  /// overflow). Guarded by the service mutex_ for state decisions.
  bool open = true;
  std::size_t inflight = 0;         ///< computing cells owned by this tenant
  std::size_t active_requests = 0;  ///< admitted run requests
  std::thread reader;

  // Outbound delivery: a bounded FIFO drained by `writer`. send_mutex is a
  // leaf lock — safe to take while holding the service mutex_, never the
  // other way around.
  std::mutex send_mutex;
  std::condition_variable send_cv;
  std::deque<std::string> send_queue;
  bool send_closed = false;  ///< no further enqueues; the writer drains and exits
  std::atomic<std::size_t> queued{0};  ///< send_queue.size(), for lock-free peeks
  std::thread writer;
};

struct ScenarioService::RunState {
  std::shared_ptr<Connection> conn;
  std::string id;         ///< client correlation id
  std::uint64_t seq = 0;  ///< service-wide sequence (manifest naming)
  adc::scenario::ScenarioSpec spec;
  adc::scenario::ScenarioPlan plan;
  adc::runtime::CancellationToken cancel;
  std::vector<std::optional<json::JsonValue>> payloads;

  std::size_t next_job = 0;          ///< scheduler cursor into plan.jobs
  std::size_t scheduled_misses = 0;  ///< misses dispatched (max_jobs budget)
  std::uint64_t max_jobs = 0;        ///< 0 = unlimited
  std::size_t inflight = 0;          ///< own pool jobs still running
  std::size_t subscriptions = 0;     ///< dedup deliveries still pending

  std::uint64_t processed = 0;  ///< hits + computed + deduped + skipped
  std::uint64_t delivered = 0;  ///< cells streamed (payload recorded)
  std::uint64_t hits = 0;
  std::uint64_t deduped = 0;
  std::uint64_t computed = 0;
  std::uint64_t skipped = 0;

  bool cancel_requested = false;  ///< explicit cancel (gets a terminal event)
  bool failed = false;            ///< terminal error event already sent
  bool finished = false;          ///< removed from scheduling
};

/// One in-flight computation; subscribers[0] is the owner that pays for it.
struct ScenarioService::Inflight {
  std::vector<std::pair<std::shared_ptr<RunState>, std::size_t>> subscribers;
};

ScenarioService::ScenarioService(ServiceOptions options)
    : options_(std::move(options)), cache_(options_.cache_dir) {
  adc::common::require(!options_.socket_path.empty(),
                       "ScenarioService: socket_path is required");
  adc::common::require(options_.max_inflight_per_connection > 0 &&
                           options_.max_requests_per_connection > 0,
                       "ScenarioService: admission bounds must be positive");
}

ScenarioService::~ScenarioService() { stop(); }

void ScenarioService::start() {
  adc::common::require(!started_, "ScenarioService: already started");
  cache_.ensure_writable();
  listener_ = std::make_unique<UnixListener>(options_.socket_path);
  stopping_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { accept_loop(); });
  scheduler_thread_ = std::thread([this] { scheduler_loop(); });
  started_ = true;
}

void ScenarioService::stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Join the accept loop *before* touching the listener: accept() polls the
  // listening descriptor, so closing it concurrently would race on the fd
  // (and a reused descriptor number could be polled by accident). The loop
  // observes stopping_ within one kPollMs tick.
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_->close();

  // Disconnect every client: shutdown wakes blocked readers with EOF.
  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    connections = connections_;
  }
  for (const auto& conn : connections) conn->stream.shutdown_both();
  for (const auto& conn : connections) {
    if (conn->reader.joinable()) conn->reader.join();
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& run : active_) run->cancel.cancel();
  }
  work_cv_.notify_all();
  if (scheduler_thread_.joinable()) scheduler_thread_.join();

  // Drain pool jobs still carrying references into this object.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    drain_cv_.wait(lock, [this] { return pending_pool_jobs_ == 0; });
  }

  // Nothing enqueues anymore: retire the writers. Their streams are already
  // shut down, so a remaining backlog fails fast instead of waiting out
  // write deadlines.
  for (const auto& conn : connections) close_send_queue(conn);
  for (const auto& conn : connections) {
    if (conn->writer.joinable()) conn->writer.join();
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    active_.clear();
    inflight_.clear();
    connections_.clear();
  }
  listener_.reset();
  started_ = false;
}

ServiceCounters ScenarioService::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

// ---------------------------------------------------------------------------
// Connection handling

void ScenarioService::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto stream = listener_->accept(kPollMs);

    // Reap readers that finished on their own (client hung up).
    std::vector<std::shared_ptr<Connection>> dead;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto it = connections_.begin(); it != connections_.end();) {
        if (!(*it)->open && (*it)->active_requests == 0 && (*it)->inflight == 0) {
          dead.push_back(*it);
          it = connections_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (const auto& conn : dead) {
      if (conn->reader.joinable()) conn->reader.join();
      close_send_queue(conn);
      if (conn->writer.joinable()) conn->writer.join();
    }

    if (!stream.has_value()) continue;
    auto conn = std::make_shared<Connection>();
    conn->stream = std::move(*stream);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      conn->id = next_connection_id_++;
      connections_.push_back(conn);
      ++counters_.connections_accepted;
    }
    conn->writer = std::thread([this, conn] { writer_loop(conn); });
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
  }
}

void ScenarioService::reader_loop(const std::shared_ptr<Connection>& conn) {
  send_line(conn, encode_event(hello_event(
                      adc::scenario::to_hex(adc::scenario::golden_code_fingerprint()))));
  std::string line;
  while (!stopping_.load(std::memory_order_relaxed)) {
    const auto status = conn->stream.read_line(line, kPollMs);
    if (status == UnixStream::ReadStatus::kTimeout) continue;
    if (status == UnixStream::ReadStatus::kClosed) break;
    handle_line(conn, line);
  }
  on_disconnect(conn);
}

void ScenarioService::handle_line(const std::shared_ptr<Connection>& conn,
                                  const std::string& line) {
  Request request;
  try {
    request = parse_request(line);
  } catch (const ConfigError& e) {
    send_line(conn, encode_event(error_event("", error_code::kBadRequest, e.what())));
    return;
  }
  switch (request.type) {
    case Request::Type::kRun: handle_run(conn, std::move(request)); break;
    case Request::Type::kCancel: handle_cancel(conn, request); break;
    case Request::Type::kStatus: handle_status(conn); break;
    case Request::Type::kShutdown: handle_shutdown(conn); break;
  }
}

void ScenarioService::handle_run(const std::shared_ptr<Connection>& conn,
                                 Request request) {
  if (shutdown_requested_.load(std::memory_order_relaxed) ||
      stopping_.load(std::memory_order_relaxed)) {
    send_line(conn, encode_event(error_event(request.id, error_code::kShuttingDown,
                                             "service is shutting down")));
    return;
  }

  auto run = std::make_shared<RunState>();
  run->conn = conn;
  run->id = request.id;
  run->max_jobs = request.max_jobs;
  try {
    run->spec = adc::scenario::parse_spec(request.spec);
    run->plan = adc::scenario::plan_scenario(run->spec);
  } catch (const AdcError& e) {
    send_line(conn, encode_event(
                        error_event(request.id, error_code::kInvalidSpec, e.what())));
    return;
  }
  run->payloads.resize(run->plan.jobs.size());

  {
    std::lock_guard<std::mutex> lock(mutex_);
    const bool duplicate =
        std::any_of(active_.begin(), active_.end(), [&](const auto& other) {
          return other->conn == conn && other->id == request.id;
        });
    if (duplicate) {
      send_line(conn, encode_event(error_event(
                          request.id, error_code::kDuplicateId,
                          "request id \"" + request.id +
                              "\" is already active on this connection")));
      return;
    }
    if (conn->active_requests >= options_.max_requests_per_connection) {
      send_line(conn, encode_event(error_event(
                          request.id, error_code::kAdmission,
                          "connection already has " +
                              std::to_string(conn->active_requests) +
                              " active requests (limit " +
                              std::to_string(options_.max_requests_per_connection) +
                              ")")));
      return;
    }
    run->seq = next_run_seq_++;
    ++conn->active_requests;
    ++counters_.requests_accepted;
    // `accepted` goes onto the connection FIFO *before* the run is published
    // to active_, all under mutex_: the scheduler cannot enqueue a cell (or
    // a warm-cache summary) ahead of it.
    send_line(conn, encode_event(accepted_event(run->id, run->spec.name,
                                                run->plan.spec_hash,
                                                run->plan.jobs.size())));
    active_.push_back(run);
  }
  // An empty sweep (cannot happen today — expand_jobs yields >= 1 job) would
  // finalize on its first scheduler visit; no special case needed here.
  work_cv_.notify_all();
}

void ScenarioService::handle_cancel(const std::shared_ptr<Connection>& conn,
                                    const Request& request) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = std::find_if(active_.begin(), active_.end(), [&](const auto& run) {
      return run->conn == conn && run->id == request.id;
    });
    if (it == active_.end()) {
      send_line(conn, encode_event(error_event(
                          request.id, error_code::kUnknownRequest,
                          "no active request \"" + request.id + "\"")));
    } else {
      (*it)->cancel_requested = true;
      (*it)->cancel.cancel();
      maybe_finalize_locked(*it);
    }
  }
  work_cv_.notify_all();
}

void ScenarioService::handle_status(const std::shared_ptr<Connection>& conn) {
  auto requests = json::JsonValue::array();
  ServiceCounters counters;
  std::size_t inflight_entries = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& run : active_) {
      auto row = json::JsonValue::object();
      row.set("id", run->id);
      row.set("connection", run->conn->id);
      row.set("scenario", run->spec.name);
      row.set("jobs", static_cast<std::uint64_t>(run->plan.jobs.size()));
      row.set("delivered", run->delivered);
      row.set("inflight", static_cast<std::uint64_t>(run->inflight));
      row.set("cancelled", run->cancel.cancelled());
      requests.push_back(std::move(row));
    }
    counters = counters_;
    inflight_entries = inflight_.size();
  }

  auto totals = json::JsonValue::object();
  totals.set("connections_accepted", counters.connections_accepted);
  totals.set("requests_accepted", counters.requests_accepted);
  totals.set("requests_completed", counters.requests_completed);
  totals.set("requests_cancelled", counters.requests_cancelled);
  totals.set("requests_failed", counters.requests_failed);
  totals.set("cells_hit", counters.cells_hit);
  totals.set("cells_deduped", counters.cells_deduped);
  totals.set("cells_computed", counters.cells_computed);

  const auto pool_counters = adc::runtime::global_pool().counters();
  auto pool = json::JsonValue::object();
  pool.set("threads",
           static_cast<std::uint64_t>(adc::runtime::global_pool().thread_count()));
  pool.set("submitted", pool_counters.submitted);
  pool.set("executed", pool_counters.executed);
  pool.set("stolen", pool_counters.stolen);
  pool.set("failed", pool_counters.failed);

  auto event = json::JsonValue::object();
  event.set("event", "status");
  event.set("protocol", kProtocolVersion);
  event.set("requests", std::move(requests));
  event.set("inflight_cells", static_cast<std::uint64_t>(inflight_entries));
  event.set("counters", std::move(totals));
  event.set("pool", std::move(pool));
  // Disk walk outside the service lock; session counters are atomics.
  event.set("cache", cache_.stats_document());
  send_line(conn, encode_event(event));
}

void ScenarioService::handle_shutdown(const std::shared_ptr<Connection>& conn) {
  shutdown_requested_.store(true, std::memory_order_relaxed);
  send_line(conn, encode_event(bye_event()));
}

void ScenarioService::on_disconnect(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    conn->open = false;
    for (const auto& run : active_) {
      if (run->conn != conn) continue;
      run->cancel.cancel();
      maybe_finalize_locked(run);
    }
  }
  // The peer is gone: retire the writer (a remaining backlog fails fast).
  close_send_queue(conn);
  work_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Scheduling

void ScenarioService::scheduler_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::shared_ptr<RunState> run;
    std::size_t index = 0;
    if (!pick_next_locked(run, index)) {
      work_cv_.wait_for(lock, std::chrono::milliseconds(kPollMs));
      continue;
    }
    lock.unlock();
    dispatch_cell(run, index);
    lock.lock();
  }
}

bool ScenarioService::pick_next_locked(std::shared_ptr<RunState>& run,
                                       std::size_t& index) {
  const std::size_t n = active_.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t at = (rr_cursor_ + k) % n;
    const auto& candidate = active_[at];
    if (candidate->finished || candidate->cancel.cancelled()) continue;
    if (candidate->next_job >= candidate->plan.jobs.size()) continue;
    if (candidate->conn->inflight >= options_.max_inflight_per_connection) continue;
    // Backpressure: a tenant whose send queue is deep gets no new cells
    // until its client catches up (or overflows the hard bound and dies).
    if (candidate->conn->queued.load(std::memory_order_relaxed) >=
        kSendQueueBackpressure) {
      continue;
    }
    run = candidate;
    index = candidate->next_job++;
    rr_cursor_ = (at + 1) % n;  // fairness: the next turn goes to the next tenant
    return true;
  }
  return false;
}

void ScenarioService::dispatch_cell(const std::shared_ptr<RunState>& run,
                                    std::size_t index) {
  const std::string& hash = run->plan.hashes[index];

  // Phase 1 — join or claim the single-flight slot for this content hash.
  enum class Action { kNone, kProbeOwned, kProbeBudgetExhausted };
  Action action = Action::kNone;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (run->finished || run->cancel.cancelled()) return;
    const auto existing = inflight_.find(hash);
    if (existing != inflight_.end()) {
      // Someone is already computing (or probing) this exact cell: subscribe.
      existing->second->subscribers.emplace_back(run, index);
      ++run->subscriptions;
      return;
    }
    if (run->max_jobs != 0 && run->scheduled_misses >= run->max_jobs) {
      action = Action::kProbeBudgetExhausted;  // hits still served, misses skipped
    } else {
      auto entry = std::make_shared<Inflight>();
      entry->subscribers.emplace_back(run, index);
      inflight_[hash] = entry;
      action = Action::kProbeOwned;
    }
  }

  // Phase 2 — probe the shared warm tier (disk I/O, no lock held).
  auto payload = cache_.load(hash);

  // Phase 3 — deliver the hit, skip, or submit the computation.
  bool submit = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (action == Action::kProbeBudgetExhausted) {
      if (payload.has_value()) {
        record_payload_locked(run, index, *payload, CellOrigin::kHit);
      } else {
        ++run->skipped;
        ++run->processed;
        maybe_finalize_locked(run);
      }
    } else if (payload.has_value()) {
      // Deliver to the owner and to everyone who subscribed while probing.
      const auto entry = inflight_.find(hash)->second;
      inflight_.erase(hash);
      for (const auto& [subscriber, at] : entry->subscribers) {
        if (subscriber != run) --subscriber->subscriptions;
        record_payload_locked(subscriber, at, *payload, CellOrigin::kHit);
      }
    } else {
      ++run->scheduled_misses;
      ++run->inflight;
      ++run->conn->inflight;
      ++pending_pool_jobs_;
      submit = true;
    }
  }
  if (submit) {
    adc::runtime::global_pool().submit(
        [this, run, index, hash] { execute_cell(run, index, hash); });
  }
}

void ScenarioService::execute_cell(const std::shared_ptr<RunState>& run,
                                   std::size_t index, const std::string& hash) {
  json::JsonValue payload;
  std::string failure;
  try {
    payload = adc::scenario::ScenarioRunner::execute_job(
        adc::scenario::resolve_job(run->spec, run->plan.jobs[index]));
    // Persist before delivery — a cancelled or crashed request leaves its
    // finished cells behind for bit-identical resume.
    cache_.store(hash, payload);
  } catch (const std::exception& e) {
    failure = e.what();
    if (failure.empty()) failure = "unknown execution failure";
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto entry = inflight_.find(hash)->second;
    inflight_.erase(hash);
    for (const auto& [subscriber, at] : entry->subscribers) {
      const bool owner = subscriber == run && at == index;
      if (owner) {
        --run->inflight;
        --run->conn->inflight;
      } else {
        --subscriber->subscriptions;
      }
      if (!failure.empty()) {
        fail_request_locked(subscriber, failure);
      } else {
        record_payload_locked(subscriber, at, payload,
                              owner ? CellOrigin::kMiss : CellOrigin::kDedup);
      }
    }
    --pending_pool_jobs_;
    // Notify *inside* the critical section: pool workers are not joined by
    // stop() (only drained via pending_pool_jobs_), so a notify after the
    // unlock could touch condition variables of an already-destroyed
    // service. Under the lock, stop() cannot observe the zero count until
    // the notify has happened.
    drain_cv_.notify_all();
    work_cv_.notify_all();
  }
}

void ScenarioService::record_payload_locked(const std::shared_ptr<RunState>& run,
                                            std::size_t index,
                                            const json::JsonValue& payload,
                                            CellOrigin origin) {
  if (run->finished) return;
  run->payloads[index] = payload;
  ++run->processed;
  switch (origin) {
    case CellOrigin::kHit:
      ++run->hits;
      ++counters_.cells_hit;
      break;
    case CellOrigin::kMiss:
      ++run->computed;
      ++counters_.cells_computed;
      break;
    case CellOrigin::kDedup:
      ++run->deduped;
      ++counters_.cells_deduped;
      break;
  }
  // `delivered` counts only cell events actually placed on the wire queue:
  // cells finishing after a cancel (suppressed here) or after the queue
  // closed must not be claimed by the terminal `cancelled` event.
  if (run->conn->open && !run->cancel.cancelled() &&
      send_line(run->conn, encode_event(cell_event(run->id, index,
                                                   run->plan.hashes[index],
                                                   origin, payload)))) {
    ++run->delivered;
  }
  maybe_finalize_locked(run);
}

void ScenarioService::maybe_finalize_locked(const std::shared_ptr<RunState>& run) {
  if (run->finished) return;
  const bool drained = run->inflight == 0 && run->subscriptions == 0;
  if (!drained) return;

  const bool cancelled = run->cancel.cancelled();
  const bool complete = run->processed == run->plan.jobs.size();
  if (!cancelled && !complete) return;

  if (!cancelled && complete) {
    auto report =
        adc::scenario::build_report(run->spec, run->plan, run->payloads);
    if (run->conn->open) {
      send_line(run->conn,
                encode_event(summary_event(run->id, run->plan.jobs.size(),
                                           run->hits, run->deduped, run->computed,
                                           run->skipped, std::move(report))));
    }
    ++counters_.requests_completed;

    // Per-request provenance, opt-in via ADC_RUNTIME_MANIFEST_DIR.
    adc::runtime::RunManifest manifest("service_" + run->spec.name + "_" +
                                       std::to_string(run->seq));
    manifest.set_text("scenario", run->spec.name);
    manifest.set_text("spec_hash", run->plan.spec_hash);
    manifest.set_text("cache_dir", cache_.root());
    manifest.set_count("connection", run->conn->id);
    manifest.set_count("jobs_total", run->plan.jobs.size());
    manifest.set_count("cache_hits", run->hits);
    manifest.set_count("deduped", run->deduped);
    manifest.set_count("computed", run->computed);
    manifest.set_count("skipped", run->skipped);
    manifest.set_pool_telemetry(adc::runtime::global_pool().counters(),
                                adc::runtime::global_pool().latency_histogram());
    (void)manifest.write_to_env_dir();
  } else if (run->cancel_requested && !run->failed) {
    if (run->conn->open) {
      send_line(run->conn, encode_event(cancelled_event(run->id, run->delivered)));
    }
    ++counters_.requests_cancelled;
  } else if (!run->failed) {
    // Disconnect-driven cancellation: nobody left to notify.
    ++counters_.requests_cancelled;
  }

  run->finished = true;
  if (run->conn->active_requests > 0) --run->conn->active_requests;
  active_.erase(std::remove(active_.begin(), active_.end(), run), active_.end());
}

void ScenarioService::fail_request_locked(const std::shared_ptr<RunState>& run,
                                          const std::string& message) {
  if (run->finished) return;
  run->cancel.cancel();
  if (!run->failed) {
    run->failed = true;
    ++counters_.requests_failed;
    if (run->conn->open) {
      send_line(run->conn, encode_event(error_event(
                               run->id, error_code::kExecutionFailed, message)));
    }
  }
  maybe_finalize_locked(run);
}

// ---------------------------------------------------------------------------
// Output

bool ScenarioService::send_line(const std::shared_ptr<Connection>& conn,
                                const std::string& line) {
  bool overflow = false;
  {
    std::lock_guard<std::mutex> lock(conn->send_mutex);
    if (conn->send_closed) return false;
    if (conn->send_queue.size() >= kMaxQueuedLines) {
      conn->send_closed = true;
      conn->send_queue.clear();
      conn->queued.store(0, std::memory_order_relaxed);
      overflow = true;
    } else {
      conn->send_queue.push_back(line);
      conn->queued.store(conn->send_queue.size(), std::memory_order_relaxed);
    }
  }
  conn->send_cv.notify_one();
  if (overflow) {
    // The client stopped draining its socket and blew through the
    // backpressure bound: kill the connection. The reader observes the
    // shutdown as EOF and runs the disconnect/cancellation path.
    conn->stream.shutdown_both();
    return false;
  }
  return true;
}

void ScenarioService::close_send_queue(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->send_mutex);
    conn->send_closed = true;
  }
  conn->send_cv.notify_all();
}

void ScenarioService::writer_loop(const std::shared_ptr<Connection>& conn) {
  std::unique_lock<std::mutex> lock(conn->send_mutex);
  for (;;) {
    conn->send_cv.wait(
        lock, [&] { return conn->send_closed || !conn->send_queue.empty(); });
    if (conn->send_queue.empty()) return;  // closed and drained
    std::string line = std::move(conn->send_queue.front());
    conn->send_queue.pop_front();
    conn->queued.store(conn->send_queue.size(), std::memory_order_relaxed);
    lock.unlock();
    const bool delivered = conn->stream.write_line(line, kWriteDeadlineMs);
    lock.lock();
    if (!delivered) {
      // Stalled or vanished peer: drop the backlog and force the reader to
      // observe the disconnect, which runs the cancellation path.
      conn->send_closed = true;
      conn->send_queue.clear();
      conn->queued.store(0, std::memory_order_relaxed);
      conn->stream.shutdown_both();
      return;
    }
  }
}

}  // namespace adc::service
