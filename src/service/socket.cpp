#include "service/socket.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/error.hpp"

namespace adc::service {

using adc::common::ConfigError;

namespace {

/// Fill a sockaddr_un, validating the path fits (sun_path is ~108 bytes).
sockaddr_un make_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(address.sun_path)) {
    throw ConfigError("unix socket path \"" + path + "\" is empty or longer than " +
                      std::to_string(sizeof(address.sun_path) - 1) + " bytes");
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

/// Poll one descriptor for `events`; true when ready, false on timeout.
bool wait_ready(int fd, short events, int timeout_ms) {
  pollfd entry{};
  entry.fd = fd;
  entry.events = events;
  for (;;) {
    const int rc = ::poll(&entry, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) return true;  // let the caller's read/accept surface the error
  }
}

}  // namespace

UnixStream::~UnixStream() { close(); }

UnixStream::UnixStream(UnixStream&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

UnixStream& UnixStream::operator=(UnixStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

UnixStream UnixStream::connect(const std::string& path) {
  const sockaddr_un address = make_address(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw ConfigError(std::string("unix socket creation failed: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    const int err = errno;
    ::close(fd);
    throw ConfigError("cannot connect to \"" + path + "\": " + std::strerror(err));
  }
  return UnixStream(fd);
}

bool UnixStream::write_line(const std::string& line, int timeout_ms) {
  if (fd_ < 0) return false;
  const std::string framed = line + "\n";
  // MSG_DONTWAIT makes each send non-blocking regardless of the socket's
  // mode, so a full buffer surfaces as EAGAIN and the deadline below applies
  // instead of send() parking the thread indefinitely.
  const int flags = MSG_NOSIGNAL | (timeout_ms >= 0 ? MSG_DONTWAIT : 0);
  const auto start = std::chrono::steady_clock::now();
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent, flags);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      int wait_ms = -1;
      if (timeout_ms >= 0) {
        const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
        wait_ms = timeout_ms - static_cast<int>(elapsed);
        if (wait_ms <= 0) return false;  // deadline passed: the peer stalled
      }
      if (!wait_ready(fd_, POLLOUT, wait_ms)) return false;
      continue;
    }
    return false;  // EPIPE / ECONNRESET: the peer is gone
  }
  return true;
}

UnixStream::ReadStatus UnixStream::read_line(std::string& out, int timeout_ms) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      out.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return ReadStatus::kLine;
    }
    if (fd_ < 0) return ReadStatus::kClosed;
    if (!wait_ready(fd_, POLLIN, timeout_ms)) return ReadStatus::kTimeout;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return ReadStatus::kClosed;  // EOF or a hard error
  }
}

void UnixStream::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void UnixStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

UnixListener::UnixListener(const std::string& path) : path_(path) {
  const sockaddr_un address = make_address(path);
  // Never steal the path from a live daemon: if something answers a connect,
  // refuse to start. Only a stale file (connect refused — the daemon that
  // bound it crashed without unlinking) is reclaimed.
  const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (probe >= 0) {
    const bool alive =
        ::connect(probe, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) == 0;
    ::close(probe);
    if (alive) {
      throw ConfigError("socket \"" + path + "\" is already in use by a running daemon");
    }
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw ConfigError(std::string("unix socket creation failed: ") + std::strerror(errno));
  }
  ::unlink(path.c_str());  // a stale socket file from a crashed daemon
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw ConfigError("cannot bind \"" + path + "\": " + std::strerror(err));
  }
  if (::listen(fd_, 64) != 0) {
    const int err = errno;
    close();
    throw ConfigError("cannot listen on \"" + path + "\": " + std::strerror(err));
  }
}

UnixListener::~UnixListener() { close(); }

std::optional<UnixStream> UnixListener::accept(int timeout_ms) {
  if (fd_ < 0) return std::nullopt;
  if (!wait_ready(fd_, POLLIN, timeout_ms)) return std::nullopt;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return std::nullopt;
  return UnixStream(client);
}

void UnixListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    ::unlink(path_.c_str());
  }
}

}  // namespace adc::service
