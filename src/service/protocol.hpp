/// \file protocol.hpp
/// The scenario service wire protocol: newline-delimited JSON, version 1.
///
/// Every message is one strict-JSON object (common/json.hpp) on one line.
/// Clients send *requests*, the server sends *events*; a connection carries
/// any number of interleaved requests, correlated by the client-chosen
/// request `id`.
///
/// Requests (client → server):
///
/// ```json
/// {"type": "run", "id": "r1", "spec": {...ScenarioSpec document...},
///  "options": {"max_jobs": 100}}
/// {"type": "cancel", "id": "r1"}
/// {"type": "status"}
/// {"type": "shutdown"}
/// ```
///
/// Events (server → client), one per line as they happen:
///
///   * `hello`     — sent once on connect: protocol version, model
///                   fingerprint.
///   * `accepted`  — a run request passed validation and admission; carries
///                   the job count and spec hash.
///   * `cell`      — one completed sweep cell: job index, content hash, the
///                   origin (`hit` = served from the on-disk cache, `miss` =
///                   computed by this request, `dedup` = computed once by a
///                   concurrent request and shared), and the metrics payload.
///   * `summary`   — terminal success event: cache/compute counters plus the
///                   full deterministic report document — byte-identical to
///                   the `adc_scenario run` report for the same spec.
///   * `cancelled` — terminal event after a `cancel` request drained.
///   * `error`     — terminal (per-request) or connection-level failure with
///                   a stable machine-readable `code`.
///   * `status`    — answer to a `status` request: active requests, shared
///                   cache statistics (ResultCache::stats_document), pool
///                   counters.
///   * `bye`       — answer to `shutdown`; the server stops accepting work.
///
/// This header builds and parses those documents; it owns no I/O. The
/// schema is versioned by `kProtocolVersion`; incompatible changes bump it
/// and are rejected loudly (docs/SERVICE.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/json.hpp"

namespace adc::service {

/// Wire-protocol version; carried in `hello` and `status` events.
inline constexpr std::uint64_t kProtocolVersion = 1;

/// Stable machine-readable error codes carried by `error` events.
namespace error_code {
inline constexpr const char* kBadRequest = "bad_request";
inline constexpr const char* kInvalidSpec = "invalid_spec";
inline constexpr const char* kAdmission = "admission_rejected";
inline constexpr const char* kDuplicateId = "duplicate_request_id";
inline constexpr const char* kUnknownRequest = "unknown_request";
inline constexpr const char* kCacheUnwritable = "cache_unwritable";
inline constexpr const char* kExecutionFailed = "execution_failed";
inline constexpr const char* kShuttingDown = "shutting_down";
}  // namespace error_code

/// A parsed client request.
struct Request {
  enum class Type { kRun, kCancel, kStatus, kShutdown };
  Type type = Type::kStatus;
  /// Client-chosen correlation id (required for run/cancel).
  std::string id;
  /// The scenario document of a run request (unparsed ScenarioSpec).
  adc::common::json::JsonValue spec;
  /// Compute at most this many cache misses (0 = unlimited), mirroring the
  /// CLI's --max-jobs interruption budget.
  std::uint64_t max_jobs = 0;
};

/// Parse one request line. Throws ConfigError with a client-presentable
/// message on malformed JSON, unknown types, or missing fields.
[[nodiscard]] Request parse_request(const std::string& line);

/// How a cell's payload was obtained.
enum class CellOrigin { kHit, kMiss, kDedup };
[[nodiscard]] const char* to_string(CellOrigin origin);

// Event builders. Each returns a complete document; serialize with
// `encode_event` (compact single line, ready for UnixStream::write_line).
[[nodiscard]] adc::common::json::JsonValue hello_event(const std::string& fingerprint);
[[nodiscard]] adc::common::json::JsonValue accepted_event(const std::string& id,
                                                          const std::string& scenario,
                                                          const std::string& spec_hash,
                                                          std::uint64_t jobs);
[[nodiscard]] adc::common::json::JsonValue cell_event(const std::string& id,
                                                      std::uint64_t index,
                                                      const std::string& hash,
                                                      CellOrigin origin,
                                                      adc::common::json::JsonValue metrics);
/// Terminal success event; `report` is the build_report document.
[[nodiscard]] adc::common::json::JsonValue summary_event(
    const std::string& id, std::uint64_t jobs, std::uint64_t cache_hits,
    std::uint64_t deduped, std::uint64_t computed, std::uint64_t skipped,
    adc::common::json::JsonValue report);
[[nodiscard]] adc::common::json::JsonValue cancelled_event(const std::string& id,
                                                           std::uint64_t delivered);
/// `id` empty = connection-level error (no request to correlate with).
[[nodiscard]] adc::common::json::JsonValue error_event(const std::string& id,
                                                       const std::string& code,
                                                       const std::string& message);
[[nodiscard]] adc::common::json::JsonValue bye_event();

/// One line of wire text (no trailing newline; write_line frames it).
[[nodiscard]] std::string encode_event(const adc::common::json::JsonValue& event);

/// The `event` member of a server line; empty when absent. Helper for
/// clients dispatching on event type.
[[nodiscard]] std::string event_type(const adc::common::json::JsonValue& event);

}  // namespace adc::service
