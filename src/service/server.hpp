/// \file server.hpp
/// The scenario service: a long-running multi-tenant simulation server over
/// the content-addressed cache.
///
/// `ScenarioService` listens on a Unix-domain socket and speaks the
/// newline-delimited JSON protocol of protocol.hpp. Each connection is a
/// tenant; each validated `run` request is planned through the *same*
/// planner entry point as the batch CLI (scenario::plan_scenario), so the
/// daemon and `adc_scenario run` content-address every job identically and
/// share every cache entry.
///
/// Execution model:
///
///   * **One scheduler thread** drains all active requests in fair
///     round-robin order — one cell per turn — so a giant sweep never
///     starves a smoke run submitted next to it.
///   * **Admission control** is per tenant: at most
///     `max_requests_per_connection` active requests and at most
///     `max_inflight_per_connection` computing cells per connection;
///     requests beyond the bound are rejected with an `admission_rejected`
///     error event, cells beyond it simply wait their turn.
///   * **The shared warm tier**: every cell probes the content-addressed
///     ResultCache first. A hit is streamed directly from the scheduler
///     thread — a fully cached request completes with *zero* pool
///     submissions (the property CI asserts). Misses are computed on the
///     process-wide work-stealing pool (runtime::global_pool) and persisted
///     before delivery, so an interrupted request resumes bit-identically.
///   * **Single-flight dedup**: concurrent identical cells (same content
///     hash, any tenant) are computed exactly once; later requesters
///     subscribe to the in-flight computation and receive the payload as a
///     `dedup` cell. Fleet-wide, N identical requests cost one computation.
///   * **Cancellation**: every request carries a runtime::CancellationToken
///     that fires on an explicit `cancel` message or on client disconnect.
///     Cancelling stops *scheduling*; already-running cells complete and
///     their results are stored, so a later identical request resumes from
///     the cache bit-identically (nothing is poisoned).
///   * **Bounded delivery**: events are enqueued on a per-connection FIFO
///     (order fixed under the service lock — `accepted` always precedes the
///     run's `cell` events, which precede its terminal event) and drained by
///     a per-connection writer thread under a write deadline. A client that
///     stops draining its socket is disconnected on queue overflow or write
///     timeout; it can never stall the scheduler, the pool workers, or other
///     tenants.
///
/// Completed requests emit a terminal `summary` event whose embedded report
/// document is byte-identical to the batch CLI's report for the same spec
/// (both are scenario::build_report output). When ADC_RUNTIME_MANIFEST_DIR
/// is set, each completed request also writes a RunManifest
/// (`service_<scenario>_<seq>_manifest.json`).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <atomic>
#include <condition_variable>

#include "scenario/cache.hpp"
#include "service/protocol.hpp"
#include "service/socket.hpp"

namespace adc::service {

/// Construction options for one service instance.
struct ServiceOptions {
  /// Filesystem path of the Unix-domain listening socket (required).
  std::string socket_path;
  /// Cache root ("" = ADC_SCENARIO_CACHE_DIR, else ".adc-cache").
  std::string cache_dir;
  /// Maximum concurrently *computing* cells per connection. Cache hits and
  /// dedup subscriptions are not counted — they cost no pool time.
  std::size_t max_inflight_per_connection = 4;
  /// Maximum simultaneously active run requests per connection.
  std::size_t max_requests_per_connection = 8;
};

/// Monotonic service counters (since start), readable while running.
struct ServiceCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t requests_accepted = 0;
  std::uint64_t requests_completed = 0;
  std::uint64_t requests_cancelled = 0;
  std::uint64_t requests_failed = 0;
  std::uint64_t cells_hit = 0;      ///< served from the on-disk cache
  std::uint64_t cells_deduped = 0;  ///< shared from a concurrent computation
  std::uint64_t cells_computed = 0; ///< computed on the pool by this service
};

class ScenarioService {
 public:
  explicit ScenarioService(ServiceOptions options);
  /// Stops the service if still running.
  ~ScenarioService();

  ScenarioService(const ScenarioService&) = delete;
  ScenarioService& operator=(const ScenarioService&) = delete;

  /// Validate the cache root (ResultCache::ensure_writable), bind the
  /// socket, and spawn the accept + scheduler threads. Throws ConfigError
  /// on an unusable cache root or socket path.
  void start();

  /// Graceful stop: close the listener, disconnect clients, cancel active
  /// requests, and drain in-flight pool work. Idempotent.
  void stop();

  /// True once a client issued a `shutdown` request. The daemon polls this
  /// and calls stop(); in-process embedders may ignore it.
  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const std::string& socket_path() const { return options_.socket_path; }
  [[nodiscard]] const std::string& cache_root() const { return cache_.root(); }
  [[nodiscard]] ServiceCounters counters() const;

 private:
  struct Connection;
  struct RunState;
  struct Inflight;

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  /// Drains one connection's bounded send queue onto the socket, each line
  /// under a write deadline; a stalled or vanished peer kills the connection
  /// instead of blocking the threads that produce events.
  void writer_loop(const std::shared_ptr<Connection>& conn);
  void scheduler_loop();

  void handle_line(const std::shared_ptr<Connection>& conn, const std::string& line);
  void handle_run(const std::shared_ptr<Connection>& conn, Request request);
  void handle_cancel(const std::shared_ptr<Connection>& conn, const Request& request);
  void handle_status(const std::shared_ptr<Connection>& conn);
  void handle_shutdown(const std::shared_ptr<Connection>& conn);
  void on_disconnect(const std::shared_ptr<Connection>& conn);

  /// Pick the next (request, job index) in round-robin order; false when
  /// nothing is schedulable right now. Caller holds mutex_.
  bool pick_next_locked(std::shared_ptr<RunState>& run, std::size_t& index);
  /// Probe the cache / dedup registry for one cell and either stream the
  /// hit, subscribe, skip (budget), or submit a pool job.
  void dispatch_cell(const std::shared_ptr<RunState>& run, std::size_t index);
  /// Pool-worker body: compute, persist, deliver to every subscriber.
  void execute_cell(const std::shared_ptr<RunState>& run, std::size_t index,
                    const std::string& hash);

  void record_payload_locked(const std::shared_ptr<RunState>& run, std::size_t index,
                             const adc::common::json::JsonValue& payload,
                             CellOrigin origin);
  void maybe_finalize_locked(const std::shared_ptr<RunState>& run);
  void fail_request_locked(const std::shared_ptr<RunState>& run,
                           const std::string& message);

  /// Enqueue one event line on the connection's FIFO send queue (drained by
  /// writer_loop). Non-blocking and safe with or without mutex_ held —
  /// protocol event order is fixed at enqueue time, so emitters that must
  /// order against the scheduler enqueue while holding mutex_. Returns false
  /// when the line was dropped (queue closed, or overflow just killed the
  /// connection).
  bool send_line(const std::shared_ptr<Connection>& conn, const std::string& line);
  /// Close the send queue (no new lines; the writer drains and exits).
  static void close_send_queue(const std::shared_ptr<Connection>& conn);

  ServiceOptions options_;
  adc::scenario::ResultCache cache_;
  std::unique_ptr<UnixListener> listener_;
  std::thread accept_thread_;
  std::thread scheduler_thread_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
  bool started_ = false;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< wakes the scheduler
  std::condition_variable drain_cv_;  ///< wakes stop() when pool work drains
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::shared_ptr<RunState>> active_;
  std::size_t rr_cursor_ = 0;
  /// Single-flight registry: content hash → in-flight computation.
  std::map<std::string, std::shared_ptr<Inflight>> inflight_;
  std::size_t pending_pool_jobs_ = 0;
  ServiceCounters counters_;
  std::uint64_t next_connection_id_ = 1;
  std::uint64_t next_run_seq_ = 1;
};

}  // namespace adc::service
