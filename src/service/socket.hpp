/// \file socket.hpp
/// Minimal Unix-domain stream sockets for the scenario service.
///
/// Two RAII wrappers over the POSIX socket API, shaped for the service's
/// newline-delimited JSON protocol (protocol.hpp):
///
///   * `UnixListener` — bind + listen on a filesystem socket path; `accept`
///     polls with a timeout so the accept loop can observe a stop flag
///     without blocking forever. The path is unlinked on destruction.
///   * `UnixStream` — a connected byte stream with line framing: `read_line`
///     buffers partial reads and returns exactly one '\n'-terminated line at
///     a time; `write_line` appends the newline and retries short writes.
///     Writes use MSG_NOSIGNAL, so a vanished peer surfaces as a `false`
///     return instead of SIGPIPE killing the process.
///
/// Both wrappers throw ConfigError (common/error.hpp) on construction
/// failures (bad path, bind/connect errors) and report runtime peer failures
/// through return values — a dropped client is normal operation for a
/// server, not an exception.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace adc::service {

/// A connected Unix-domain byte stream with newline framing.
class UnixStream {
 public:
  UnixStream() = default;
  /// Adopts ownership of a connected socket descriptor.
  explicit UnixStream(int fd) : fd_(fd) {}
  ~UnixStream();

  UnixStream(UnixStream&& other) noexcept;
  UnixStream& operator=(UnixStream&& other) noexcept;
  UnixStream(const UnixStream&) = delete;
  UnixStream& operator=(const UnixStream&) = delete;

  /// Connect to a listening socket. Throws ConfigError when the path is too
  /// long for sockaddr_un or the connection is refused.
  [[nodiscard]] static UnixStream connect(const std::string& path);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Send `line` plus a trailing newline; retries short writes. Returns
  /// false when the peer is gone (EPIPE/ECONNRESET), the stream is closed,
  /// or — with a non-negative `timeout_ms` — the peer stopped draining its
  /// socket for longer than the deadline (the line may then be partially
  /// written; treat the stream as dead). Negative = wait indefinitely.
  bool write_line(const std::string& line, int timeout_ms = -1);

  enum class ReadStatus { kLine, kTimeout, kClosed };

  /// Read one newline-terminated line (the newline is stripped). Waits at
  /// most `timeout_ms` for *new* bytes when no buffered line is available
  /// (negative = wait indefinitely). kClosed means EOF or a read error;
  /// trailing bytes without a newline are discarded, as the protocol frames
  /// every message with one.
  [[nodiscard]] ReadStatus read_line(std::string& out, int timeout_ms);

  /// Shut down both directions, waking any blocked reader with EOF. The
  /// descriptor stays valid until destruction.
  void shutdown_both();

  void close();

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// A listening Unix-domain socket bound to a filesystem path.
class UnixListener {
 public:
  /// Bind + listen on `path`. A *stale* socket file (nothing answers a
  /// connect) from a crashed run is unlinked first, but a path a live
  /// daemon is still serving throws ConfigError("... already in use ...")
  /// instead of silently stealing it. Also throws on any other failure
  /// (path too long, bind refused, ...).
  explicit UnixListener(const std::string& path);
  ~UnixListener();

  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  [[nodiscard]] const std::string& path() const { return path_; }

  /// Accept one connection, waiting at most `timeout_ms` (negative = wait
  /// indefinitely). nullopt on timeout or when the listener was closed.
  [[nodiscard]] std::optional<UnixStream> accept(int timeout_ms);

  /// Close the listening descriptor, waking a blocked accept.
  void close();

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace adc::service
