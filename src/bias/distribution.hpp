/// \file distribution.hpp
/// Current-mirror distribution from the master bias to the ten stages.
///
/// The master current I through M0 is mirrored to IBIAS_1..IBIAS_10 (paper
/// Fig. 3). Each mirror leg carries the stage's scaling ratio (1 for the
/// first stage, 2/3 for the second, 1/3 for the rest — paper section 2) plus
/// a small random mirror mismatch.
#pragma once

#include <cstddef>
#include <vector>

#include "common/contracts.hpp"
#include "common/random.hpp"

namespace adc::bias {

/// Parameters of the mirror bank.
struct MirrorBankSpec {
  /// Per-stage nominal ratios relative to the master current.
  std::vector<double> ratios;
  /// One-sigma relative mismatch of each mirror leg.
  double sigma_mismatch = 0.01;
};

/// One realized mirror bank.
class MirrorBank {
 public:
  MirrorBank(const MirrorBankSpec& spec, adc::common::Rng& rng);

  /// Number of legs.
  [[nodiscard]] std::size_t size() const { return gains_.size(); }

  /// Current of leg `i` [A] given the master current. Called once per stage
  /// per sample, so it lives in the header: one multiply, with the bounds
  /// check compiled out in release builds.
  [[nodiscard]] double leg_current(std::size_t i, double master_current) const {
    ADC_EXPECT(i < gains_.size(), "MirrorBank::leg_current: leg index out of range");
    return gains_[i] * master_current;
  }

  /// All leg currents [A].
  [[nodiscard]] std::vector<double> currents(double master_current) const;

  /// Total current drawn by all legs [A].
  [[nodiscard]] double total_current(double master_current) const;

  /// Realized gain (ratio * mismatch) of leg `i`.
  [[nodiscard]] double realized_gain(std::size_t i) const { return gains_.at(i); }

 private:
  std::vector<double> gains_;
};

}  // namespace adc::bias
