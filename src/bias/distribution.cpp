#include "bias/distribution.hpp"

#include "common/error.hpp"

namespace adc::bias {

MirrorBank::MirrorBank(const MirrorBankSpec& spec, adc::common::Rng& rng) {
  adc::common::require(!spec.ratios.empty(), "MirrorBank: no mirror legs");
  adc::common::require(spec.sigma_mismatch >= 0.0, "MirrorBank: negative mismatch");
  gains_.reserve(spec.ratios.size());
  for (std::size_t i = 0; i < spec.ratios.size(); ++i) {
    adc::common::require(spec.ratios[i] > 0.0, "MirrorBank: non-positive ratio");
    gains_.push_back(spec.ratios[i] * (1.0 + rng.gaussian(spec.sigma_mismatch)));
  }
}

std::vector<double> MirrorBank::currents(double master_current) const {
  std::vector<double> out(gains_.size());
  for (std::size_t i = 0; i < gains_.size(); ++i) out[i] = gains_[i] * master_current;
  return out;
}

double MirrorBank::total_current(double master_current) const {
  double total = 0.0;
  for (double g : gains_) total += g * master_current;
  return total;
}

}  // namespace adc::bias
