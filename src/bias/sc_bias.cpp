#include "bias/sc_bias.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace adc::bias {

ScBiasGenerator::ScBiasGenerator(const ScBiasSpec& spec, adc::common::Rng& rng)
    : spec_(spec), cb_(spec.cb, rng) {
  adc::common::require(spec.v_bias > 0.0, "ScBiasGenerator: non-positive V_BIAS");
  adc::common::require(spec.ota_gain > 1.0, "ScBiasGenerator: OTA gain must exceed unity");
  adc::common::require(spec.ripple_sigma >= 0.0, "ScBiasGenerator: negative ripple");
}

double ScBiasGenerator::master_current(double f_cr) const {
  adc::common::require(f_cr >= 0.0, "ScBiasGenerator: negative conversion rate");
  // Unity-gain OTA forces BIAS to V_BIAS within its loop gain:
  // V_eff = V_BIAS * A/(1+A).
  const double v_eff = spec_.v_bias * spec_.ota_gain / (1.0 + spec_.ota_gain);
  const double i_bias = cb_.value() * f_cr * v_eff;
  ADC_ENSURE(std::isfinite(i_bias) && i_bias >= 0.0,
             "ScBiasGenerator::master_current: bad I_BIAS");
  return i_bias;
}

double ScBiasGenerator::sampled_current(double f_cr, adc::common::Rng& rng) const {
  const double mean = master_current(f_cr);
  if (spec_.ripple_sigma <= 0.0) return mean;
  const double sampled = mean * (1.0 + rng.gaussian(spec_.ripple_sigma));
  ADC_ENSURE(std::isfinite(sampled), "ScBiasGenerator::sampled_current: non-finite current");
  return sampled;
}

}  // namespace adc::bias
