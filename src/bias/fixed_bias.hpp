/// \file fixed_bias.hpp
/// Conventional fixed bias-current generator — the baseline the paper's SC
/// generator replaces.
///
/// A fixed generator cannot track capacitor corners or conversion rate, so it
/// must be sized for the *largest possible capacitive load* at the *maximum
/// conversion rate*: nominal current times a design margin. Everywhere else
/// the converter burns the margin as wasted power. Ablation bench A4 runs
/// both generators across capacitor corners and rates to quantify this.
#pragma once

#include "bias/bias_source.hpp"
#include "common/random.hpp"
#include "common/units.hpp"

namespace adc::bias {

using namespace adc::common::literals;

/// Design parameters of a conventional current reference.
struct FixedBiasSpec {
  /// Current required at the design point with nominal capacitors [A].
  double design_current = 1.0_mA;
  /// Over-design margin covering the slow-capacitor corner and the maximum
  /// intended rate (the paper's motivation: "large fixed bias currents ...
  /// that can handle the largest possible capacitive load").
  double margin = 1.35;
  /// One-sigma relative spread of the realized current (resistor spread of a
  /// V/R reference; far worse than the bandgap-over-C_B of eq. 1).
  double sigma_process = 0.10;
  /// Quiescent overhead of the generator [A].
  double overhead_current = 100.0_uA;
};

/// One realized fixed generator.
class FixedBiasGenerator final : public BiasSource {
 public:
  FixedBiasGenerator(const FixedBiasSpec& spec, adc::common::Rng& rng);

  /// Rate-independent output: design current times margin times the
  /// process-spread draw.
  [[nodiscard]] double master_current(double f_cr) const override;

  [[nodiscard]] double overhead_current() const override { return spec_.overhead_current; }

  [[nodiscard]] const FixedBiasSpec& spec() const { return spec_; }

 private:
  FixedBiasSpec spec_;
  double process_factor_;
};

}  // namespace adc::bias
