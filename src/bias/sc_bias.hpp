/// \file sc_bias.hpp
/// The paper's switched-capacitor bias current generator (section 3, Fig. 3).
///
/// An OTA in unity gain forces node BIAS to V_BIAS (from the bandgap). The
/// load at that node is the equivalent resistance of a switched capacitor
/// C_B clocked at the conversion rate: R_eq = 1/(C_B * f_CR). The current
/// through the OTA's output device is therefore
///
///     I_BIAS = C_B * f_CR * V_BIAS                                  (eq. 1)
///
/// and is mirrored to the ten stages. Two properties follow, both central to
/// the paper:
///  * power scales linearly and automatically with conversion rate (Fig. 4);
///  * the current tracks the *absolute* value of on-chip capacitance, so the
///    opamps are never under- or over-biased across capacitor corners —
///    a fixed generator must be over-designed for the slow-cap corner
///    (ablation A4 quantifies this).
#pragma once

#include "analog/bandgap.hpp"
#include "analog/capacitor.hpp"
#include "bias/bias_source.hpp"
#include "common/random.hpp"
#include "common/units.hpp"

namespace adc::bias {

using namespace adc::common::literals;

/// Design parameters of the SC bias generator.
struct ScBiasSpec {
  /// The switched capacitor C_B (nominal value plus statistics).
  adc::analog::CapacitorSpec cb{12.0_pF, 0.002, 0.0};
  /// V_BIAS derived from the bandgap [V].
  double v_bias = 0.6;
  /// OTA loop gain (finite gain leaves a small systematic error on BIAS).
  double ota_gain = 2000.0;
  /// Residual relative ripple of the mirrored current (switching ripple
  /// after the mirror's filtering), one sigma per sample.
  double ripple_sigma = 0.002;
  /// Quiescent current of OTA + mirror overhead [A].
  double overhead_current = 150.0_uA;
};

/// One realized SC bias generator.
class ScBiasGenerator final : public BiasSource {
 public:
  /// Draws C_B (local mismatch + global spread) and fixes the OTA error.
  ScBiasGenerator(const ScBiasSpec& spec, adc::common::Rng& rng);

  /// Master current per eq. (1): C_B * f_CR * V_BIAS, with the OTA's finite
  /// loop-gain correction.
  [[nodiscard]] double master_current(double f_cr) const override;

  [[nodiscard]] double overhead_current() const override { return spec_.overhead_current; }

  /// The realized C_B value [F].
  [[nodiscard]] double realized_cb() const { return cb_.value(); }

  /// Instantaneous current including switching ripple; consumes a random
  /// draw. The pipeline uses this per sample; the power model uses the mean.
  [[nodiscard]] double sampled_current(double f_cr, adc::common::Rng& rng) const;

  [[nodiscard]] const ScBiasSpec& spec() const { return spec_; }

 private:
  ScBiasSpec spec_;
  adc::analog::Capacitor cb_;
};

}  // namespace adc::bias
