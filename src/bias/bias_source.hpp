/// \file bias_source.hpp
/// Abstract bias-current source feeding the pipeline stages.
///
/// Two implementations exist: the paper's switched-capacitor generator
/// (current ~ C_B * f_CR * V_BIAS, eq. 1) and a conventional fixed generator
/// sized for the worst-case corner. The pipeline and the power model only
/// see this interface, so the two schemes are interchangeable for the
/// ablation bench A4.
#pragma once

namespace adc::bias {

/// A master bias-current source whose output may depend on the clock rate.
class BiasSource {
 public:
  virtual ~BiasSource() = default;

  /// Master output current [A] when clocked at conversion rate `f_cr` [Hz].
  [[nodiscard]] virtual double master_current(double f_cr) const = 0;

  /// Quiescent current of the generator itself [A] (for the power model).
  [[nodiscard]] virtual double overhead_current() const = 0;
};

}  // namespace adc::bias
