#include "bias/fixed_bias.hpp"

#include "common/error.hpp"

namespace adc::bias {

FixedBiasGenerator::FixedBiasGenerator(const FixedBiasSpec& spec, adc::common::Rng& rng)
    : spec_(spec), process_factor_(1.0 + rng.gaussian(spec.sigma_process)) {
  adc::common::require(spec.design_current > 0.0, "FixedBiasGenerator: non-positive current");
  adc::common::require(spec.margin >= 1.0, "FixedBiasGenerator: margin below unity");
}

double FixedBiasGenerator::master_current(double f_cr) const {
  (void)f_cr;  // a fixed generator cannot see the clock
  return spec_.design_current * spec_.margin * process_factor_;
}

}  // namespace adc::bias
