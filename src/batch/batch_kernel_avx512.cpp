/// AVX-512 tier (F/DQ/VL/BW, -mprefer-vector-width=512): the full 8-double
/// lane width, one die per lane. -ffp-contract=off is load-bearing here —
/// AVX-512F implies FMA and GCC's default contract=fast would fuse the
/// settle/polynomial chains, changing bits vs the SSE2 tier.
#define ADC_BATCH_ISA_NS avx512
#include "batch/batch_kernel_impl.hpp"
