/// Runtime ISA dispatch: one function-pointer table per tier, selected by
/// adc::common::BatchIsa. Baseline-compiled TU (no wide instructions here —
/// taking the address of a wide-TU entry point is safe; calling it is only
/// done after detection says the CPU can).
#include "batch/batch_api.hpp"

namespace adc::batch {

const KernelOps& kernel_ops(adc::common::BatchIsa isa) {
  static constexpr KernelOps kSse2{&sse2::convert_capture, &sse2::normal_fill, &sse2::exp_span,
                                   &sse2::sincos_span};
  static constexpr KernelOps kAvx2{&avx2::convert_capture, &avx2::normal_fill, &avx2::exp_span,
                                   &avx2::sincos_span};
  static constexpr KernelOps kAvx512{&avx512::convert_capture, &avx512::normal_fill,
                                     &avx512::exp_span, &avx512::sincos_span};
  switch (isa) {
    case adc::common::BatchIsa::kAvx512:
      return kAvx512;
    case adc::common::BatchIsa::kAvx2:
      return kAvx2;
    case adc::common::BatchIsa::kSse2:
      break;
  }
  return kSse2;
}

}  // namespace adc::batch
