/// \file batch_api.hpp
/// POD kernel interface of the batch conversion engine.
///
/// The batch engine marches S samples × 8 dies through the fast-profile
/// stage chain in structure-of-arrays form, one *die per SIMD lane*. The
/// serial cross-sample state of a die (reference droop, random-walk jitter)
/// stays inside its lane, so lanes are fully independent and every per-stage
/// invariant is hoisted once per die-block into the PlanView below.
///
/// The kernel is compiled three times — baseline SSE2, AVX2, AVX-512 — from
/// one implementation header (batch_kernel_impl.hpp). To keep wide-ISA code
/// from leaking into baseline callers (the COMDAT hazard documented in
/// fastmath.hpp), the interface is deliberately plain-old-data: raw pointers
/// and scalars only, no std:: templates, no classes with inline members.
/// BatchConverter (converter.hpp) owns the arrays and builds the views.
///
/// Bit-identity contract: for any die, the codes produced through this
/// interface are byte-identical to `PipelineAdc::convert()` under the fast
/// profile, on every ISA tier, at any batch shape — pinned by
/// tests/test_batch.cpp.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/isa_dispatch.hpp"

namespace adc::batch {

/// Dies per die-block: one per SIMD lane of the widest tier (AVX-512 holds
/// 8 doubles). Fixed at compile time so every lane temporary is a stack
/// array with a constant trip count — the shape the auto-vectorizer wants.
/// Ragged blocks are padded by replicating a real die; pad results are
/// discarded (lanes are independent, so padding cannot perturb real lanes).
inline constexpr std::size_t kLanes = 8;

/// Samples per noise-plane chunk. 256 samples × 36 slots × 8 lanes ≈ 590 KB
/// for the plane plus the same for the fill scratch — inside L2. Chunking is
/// value-neutral: draws are positional.
inline constexpr std::size_t kChunkSamples = 256;

/// Stage-count ceiling (sizes the kernel's stack arrays). The nominal
/// pipeline has 10 stages; BatchConverter rejects configs above this.
inline constexpr std::size_t kMaxBatchStages = 16;

/// Minimum dies in a group before routing it through the batch engine pays.
/// A ragged block still runs a full kLanes-wide kernel pass (pad lanes do
/// real work whose codes are discarded), so a group of g dies costs about
/// one 8-lane capture — ~2-3x a *single* scalar die. Measured on the dev
/// box the crossover sits between 3 and 4 dies; callers below this fall
/// back to per-die scalar conversion.
inline constexpr std::size_t kMinBatchDies = 4;

/// One stimulus tone, pre-hoisted exactly as the scalar fast path computes
/// it: argument = w·t + phase, value contribution = amp·sin, slope
/// contribution = slope_coef·cos.
struct ToneView {
  double w = 0.0;           ///< 2π·f, left-associated as the scalar path does
  double phase = 0.0;
  double amp = 0.0;
  double slope_coef = 0.0;  ///< (amp·2π)·f
};

/// Everything the kernel reads and never writes: block-uniform scalars,
/// per-lane die parameters, and per-(stage, lane) hoisted invariants.
/// All arrays are lane-minor (`[i * kLanes + lane]`), sized as annotated.
struct PlanView {
  // --- geometry ---
  std::size_t num_stages = 0;   ///< 1.5b stages (≤ kMaxBatchStages)
  std::size_t flash_count = 0;  ///< backend flash comparators
  std::size_t slots = 0;        ///< noise-plane slots per sample

  // --- block-uniform scalars (config-derived; verified uniform at build) ---
  double period = 0.0;           ///< 1 / f_CR [s]
  double settle_s = 0.0;         ///< effective settling window [s]
  double jitter_rms = 0.0;       ///< white aperture jitter sigma [s]
  double walk_rms = 0.0;         ///< random-walk jitter step sigma [s]
  double charge_per_event = 0.0; ///< reference charge per code event [C]
  double decap = 0.0;            ///< reference decoupling [F]
  double recharge_factor = 0.0;  ///< exp(-T/(Rout·C)), hoisted at build
  double fit_vmax2 = 0.0;        ///< sampler surrogate span in z = v²
  double tau_mid = 0.0;          ///< Clenshaw midpoint of the tau surrogate
  double tau_inv_half = 0.0;
  double inj_mid = 0.0;
  double inj_inv_half = 0.0;
  double tone_offset = 0.0;      ///< DC offset of a single-sine stimulus
  long long corr_offset = 0;     ///< correction accumulator start
  long long max_code = 0;        ///< (1 << bits) - 1
  bool tracking_nonlinearity = false;
  bool injection_on = false;     ///< sampler injection_fraction > 0
  bool thermal_on = false;       ///< per-stage kT/C sampling noise enabled
  bool ripple_on = false;        ///< bias-ripple gain modulation enabled
  bool consume_on = false;       ///< reference droop accumulation enabled
  bool recharge_on = false;      ///< exponential recharge between samples
  bool multi_tone = false;       ///< accumulate tones from 0 (MultiToneSignal)

  // --- block-uniform arrays ---
  const double* tau_coef = nullptr;   ///< [tau_count] Chebyshev coefficients
  std::size_t tau_count = 0;
  const double* inj_coef = nullptr;   ///< [inj_count]
  std::size_t inj_count = 0;
  const double* flash_frac = nullptr; ///< [flash_count] threshold fractions
  const ToneView* tones = nullptr;    ///< [tone_count]
  std::size_t tone_count = 0;
  const long long* weights = nullptr; ///< [num_stages] correction weights

  // --- per-lane die parameters [kLanes] ---
  const std::uint64_t* noise_key = nullptr;  ///< noise-plane Philox keys
  const double* nominal_vref = nullptr;      ///< bandgap-coupled references
  const double* level_error = nullptr;       ///< static reference level error
  const double* ripple_sigma = nullptr;      ///< per-sample gain ripple sigma

  // --- per-(stage, lane) invariants [num_stages * kLanes] ---
  const double* sigma_sample = nullptr;   ///< kT/C sampling noise sigma
  const double* off_hi = nullptr;         ///< +VREF/4 comparator offsets
  const double* off_lo = nullptr;         ///< -VREF/4 comparator offsets
  const double* noise_hi = nullptr;       ///< comparator input noise sigma
  const double* noise_lo = nullptr;
  const double* meta_hi = nullptr;        ///< metastability half-windows
  const double* meta_lo = nullptr;
  const double* droop_d0 = nullptr;       ///< hold-leakage affine terms
  const double* droop_d1 = nullptr;
  const double* gain = nullptr;           ///< realized interstage gain
  const double* gdac = nullptr;           ///< realized C1/C2 DAC gain
  const double* inv_gain_denom = nullptr; ///< settle coefficients...
  const double* neg_inv_tau0 = nullptr;
  const double* sr = nullptr;
  const double* sr_tau0 = nullptr;
  const double* inv_swing = nullptr;
  const double* gm_compression = nullptr; ///< opamp large-signal params
  const double* output_swing = nullptr;

  // --- per-(flash comparator, lane) [flash_count * kLanes] ---
  const double* flash_off = nullptr;
  const double* flash_noise = nullptr;
  const double* flash_meta = nullptr;

  // --- out-of-span sampler fallback ---
  // Lanes whose v² leaves the Chebyshev span re-run the exact surrogate
  // fallback through these baseline-compiled callbacks (the wide TUs must
  // not instantiate the sampler's code). ctx is a DifferentialSampler,
  // which is die-independent (no Monte-Carlo draws), so one context serves
  // every lane.
  const void* sampler_ctx = nullptr;
  double (*tau_fallback)(const void*, double) = nullptr;
  double (*inj_fallback)(const void*, double) = nullptr;
};

/// Mutable per-capture workspace, allocated once per BatchConverter and
/// reused across captures, chunks and die-blocks (hot-path-alloc contract:
/// nothing below is ever grown inside the sample loop).
struct StateView {
  double* scratch = nullptr;  ///< [kLanes * kChunkSamples * slots] die-major fill
  double* plane = nullptr;    ///< [kChunkSamples * slots * kLanes] lane-minor rows
  int* const* out = nullptr;  ///< [kLanes] per-die code buffers, length >= n
};

/// Per-ISA entry points (one strong symbol per tier; see the kernel TUs).
/// `convert_capture` runs one full capture of `n` samples for all kLanes
/// dies; `normal_fill`/`exp_span`/`sincos_span` are the SoA math ports,
/// exported so tests can pin cross-tier bit-identity directly.
namespace sse2 {
void convert_capture(const PlanView& plan, const StateView& state, std::uint64_t epoch,
                     std::size_t n);
void normal_fill(std::uint64_t key, std::uint64_t stream, std::uint64_t first, double* out,
                 std::size_t n);
void exp_span(const double* x, double* out, std::size_t n);
void sincos_span(const double* x, double* sin_out, double* cos_out, std::size_t n);
}  // namespace sse2
namespace avx2 {
void convert_capture(const PlanView& plan, const StateView& state, std::uint64_t epoch,
                     std::size_t n);
void normal_fill(std::uint64_t key, std::uint64_t stream, std::uint64_t first, double* out,
                 std::size_t n);
void exp_span(const double* x, double* out, std::size_t n);
void sincos_span(const double* x, double* sin_out, double* cos_out, std::size_t n);
}  // namespace avx2
namespace avx512 {
void convert_capture(const PlanView& plan, const StateView& state, std::uint64_t epoch,
                     std::size_t n);
void normal_fill(std::uint64_t key, std::uint64_t stream, std::uint64_t first, double* out,
                 std::size_t n);
void exp_span(const double* x, double* out, std::size_t n);
void sincos_span(const double* x, double* sin_out, double* cos_out, std::size_t n);
}  // namespace avx512

/// The function-pointer table runtime dispatch selects from.
struct KernelOps {
  void (*convert_capture)(const PlanView&, const StateView&, std::uint64_t, std::size_t) =
      nullptr;
  void (*normal_fill)(std::uint64_t, std::uint64_t, std::uint64_t, double*, std::size_t) =
      nullptr;
  void (*exp_span)(const double*, double*, std::size_t) = nullptr;
  void (*sincos_span)(const double*, double*, double*, std::size_t) = nullptr;
};

/// Kernel table for `isa`. The caller is responsible for not requesting a
/// tier the CPU cannot execute (adc::common::active_batch_isa() and
/// resolve_batch_isa() already clamp).
[[nodiscard]] const KernelOps& kernel_ops(adc::common::BatchIsa isa);

}  // namespace adc::batch
