/// AVX2 tier: 256-bit lanes. FMA is *not* allowed to fuse (-ffp-contract=off
/// on this TU) — contraction would change rounding and break the cross-tier
/// bit-identity contract.
#define ADC_BATCH_ISA_NS avx2
#include "batch/batch_kernel_impl.hpp"
